// Core-level test development flow: elaborate a core to gates, generate
// its precomputed test set with ATPG, grade coverage, study the
// quality/size trade-off by truncating the set, and run the memory BIST
// that covers the SOC's RAM (the part SOCET leaves to March tests).
//
// Build & run:   cmake --build build && ./build/examples/atpg_flow
#include <cstdio>

#include "socet/atpg/atpg.hpp"
#include "socet/bist/march.hpp"
#include "socet/soc/schedule.hpp"
#include "socet/synth/elaborate.hpp"
#include "socet/systems/systems.hpp"
#include "socet/util/table.hpp"

int main() {
  using namespace socet;

  // ---- 1. elaborate the DISPLAY core and generate its test set ---------
  auto display = systems::make_display_rtl();
  auto elab = synth::elaborate(display);
  std::printf("DISPLAY: %zu cells, %zu gates\n", elab.gates.cell_count(),
              elab.gates.gate_count());

  auto result = atpg::generate_tests(elab.gates, {.random_patterns = 64});
  auto coverage = result.coverage();
  std::printf("ATPG: %zu scan vectors, FC %.2f%%, TE %.2f%% "
              "(%zu untestable, %zu aborted of %zu faults)\n\n",
              result.vector_count(), coverage.fault_coverage(),
              coverage.test_efficiency(), coverage.untestable,
              coverage.aborted, result.faults.size());

  // ---- 2. coverage vs test length (why precomputed sets are compact) ---
  util::Table curve({"vectors applied", "fault coverage (%)"});
  for (double fraction : {0.1, 0.25, 0.5, 0.75, 1.0}) {
    const std::size_t count = static_cast<std::size_t>(
        fraction * static_cast<double>(result.patterns.size()));
    std::vector<faultsim::ScanPattern> prefix(result.patterns.begin(),
                                              result.patterns.begin() + count);
    auto graded = atpg::grade_patterns(elab.gates, prefix);
    curve.add_row({std::to_string(count),
                   util::Table::num(graded.fault_coverage(), 2)});
  }
  std::printf("%s\n", curve.to_text().c_str());

  // ---- 3. the no-DFT comparison (why scan is needed at all) ------------
  auto functional = atpg::sequential_coverage(elab.gates, 96, 5);
  std::printf("random functional testing (96 cycles): FC %.2f%% — the gap "
              "to %.2f%% is what HSCAN buys at core level\n\n",
              functional.fault_coverage(), coverage.fault_coverage());

  // ---- 4. memory BIST for the barcode system's 4KB RAM -----------------
  bist::FaultyMemory ram(4096, 8);
  auto march = bist::march_c_minus();
  auto clean = bist::run_march(ram, march);
  std::printf("%s on 4KB RAM: %llu cycles, clean memory %s\n",
              march.name.c_str(), clean.cycles,
              clean.pass ? "PASSES" : "FAILS");

  bist::FaultyMemory bad(4096, 8);
  bad.inject({bist::MemFaultKind::kStuckAt, 0x123, 4, true});
  auto caught = bist::run_march(bad, march);
  std::printf("with a stuck-at-1 cell at 0x123.4: %s (first fail at 0x%X)\n",
              caught.pass ? "MISSED" : "caught", caught.fail_address);

  // The BIST runs concurrently with SOCET logic testing (the paper's
  // Section 5 exclusion of memories), so chip TAT = max(logic, memory).
  auto system = systems::make_barcode_system();
  auto plan = soc::plan_chip_test(
      *system.soc, std::vector<unsigned>(system.soc->cores().size(), 0));
  std::printf("\nchip TAT: logic %llu cycles vs RAM BIST %llu cycles -> "
              "%s dominates\n",
              plan.total_tat, clean.cycles,
              plan.total_tat > clean.cycles ? "logic" : "memory");
  return 0;
}
