// Quickstart: prepare a core, inspect its version menu, build a two-core
// SOC, and plan its test — the whole SOCET flow in one page.
//
// Build & run:   cmake --build build && ./build/examples/quickstart
#include <cstdio>

#include "socet/opt/optimize.hpp"
#include "socet/soc/schedule.hpp"
#include "socet/systems/systems.hpp"
#include "socet/util/table.hpp"

int main() {
  using namespace socet;

  // 1. Core-level flow (normally done once by the core provider):
  //    HSCAN insertion + transparency version menu.
  core::Core cpu = core::Core::prepare(systems::make_cpu_rtl());
  std::printf("CPU: %u flip-flops, HSCAN overhead %u cells, max depth %u\n",
              cpu.flip_flop_count(), cpu.hscan_overhead_cells(),
              cpu.hscan().max_depth);

  util::Table menu({"version", "extra cells", "Data->AddrLo", "Data->AddrHi",
                    "Data->Addr total"});
  const auto data = cpu.netlist().find_port("Data");
  const auto alo = cpu.netlist().find_port("AddrLo");
  const auto ahi = cpu.netlist().find_port("AddrHi");
  for (const auto& version : cpu.versions()) {
    auto lo = version.latency(data, alo);
    auto hi = version.latency(data, ahi);
    menu.add_row({version.name, std::to_string(version.extra_cells),
                  lo ? std::to_string(*lo) : "-",
                  hi ? std::to_string(*hi) : "-",
                  std::to_string(version.total_latency_from(data))});
  }
  std::printf("%s\n", menu.to_text().c_str());

  // 2. Chip-level flow (the SOC integrator): wire the barcode system and
  //    plan its test with the minimum-area version of every core.
  auto system = systems::make_barcode_system();
  const std::vector<unsigned> min_area(system.soc->cores().size(), 0);
  auto plan = soc::plan_chip_test(*system.soc, min_area);

  util::Table plan_table(
      {"core", "period", "flush", "HSCAN vectors", "TAT (cycles)", "sys-mux"});
  for (const auto& core_plan : plan.cores) {
    const auto& core = system.soc->core(core_plan.core);
    plan_table.add_row({core.name(), std::to_string(core_plan.period),
                        std::to_string(core_plan.flush),
                        std::to_string(core.hscan_vectors()),
                        std::to_string(core_plan.tat),
                        std::to_string(core_plan.system_mux_cells)});
  }
  std::printf("%s", plan_table.to_text().c_str());
  std::printf(
      "chip: TAT %llu cycles, chip-level DFT %u cells "
      "(versions %u + system muxes %u + controller %u)\n\n",
      plan.total_tat, plan.total_overhead_cells(), plan.version_cells,
      plan.system_mux_cells, plan.controller_cells);

  // 3. Trade-off exploration: minimum TAT under a generous area budget.
  auto fast = opt::minimize_tat(*system.soc, 10'000);
  std::printf("min-TAT point: %llu cycles at %u cells (selection:",
              fast.tat, fast.overhead_cells);
  for (unsigned v : fast.selection) std::printf(" V%u", v + 1);
  std::printf(")\n");
  return 0;
}
