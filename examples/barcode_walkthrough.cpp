// Deep walkthrough of System 1 (the paper's barcode-scanning SOC):
//   1. inspect each core's HSCAN chains and transparency version menu;
//   2. plan the chip test and print every justification/observation route
//      (the textual equivalent of Figure 9's highlighted path);
//   3. explore the design space and pick points under area budgets;
//   4. generate the test controller FSM and measure its real area.
//
// Build & run:   cmake --build build && ./build/examples/barcode_walkthrough
#include <cstdio>

#include "socet/emit/dot.hpp"
#include "socet/opt/optimize.hpp"
#include "socet/soc/controller.hpp"
#include "socet/soc/parallel.hpp"
#include "socet/soc/testprogram.hpp"
#include "socet/soc/validate.hpp"
#include "socet/synth/elaborate.hpp"
#include "socet/systems/systems.hpp"
#include "socet/util/table.hpp"

namespace {

using namespace socet;

void print_core(const core::Core& core) {
  std::printf("-- %s: %u FFs, HSCAN %u cells (max depth %u)\n",
              core.name().c_str(), core.flip_flop_count(),
              core.hscan_overhead_cells(), core.hscan().max_depth);
  for (const auto& chain : core.hscan().chains) {
    std::printf("   chain %-10s:", core.netlist().port(chain.head).name.c_str());
    for (auto reg : chain.registers) {
      std::printf(" %s", core.netlist().reg(reg).name.c_str());
    }
    std::printf(" -> %s\n", core.netlist().port(chain.tail).name.c_str());
  }
  for (const auto& version : core.versions()) {
    std::printf("   %s (%3u cells):", version.name.c_str(),
                version.extra_cells);
    for (const auto& edge : version.edges) {
      std::printf(" %s->%s=%u%s", core.netlist().port(edge.input).name.c_str(),
                  core.netlist().port(edge.output).name.c_str(), edge.latency,
                  edge.via_added_mux ? "*" : "");
    }
    std::printf("\n");
  }
}

void print_routes(const soc::Soc& soc, const std::vector<unsigned>& selection,
                  const soc::ChipTestPlan& plan) {
  soc::Ccg ccg(soc, selection);
  for (const auto& core_plan : plan.cores) {
    const auto& cut = soc.core(core_plan.core);
    std::printf("-- testing %s: period %u, flush %u, TAT %llu\n",
                cut.name().c_str(), core_plan.period, core_plan.flush,
                core_plan.tat);
    auto print_route = [&](const char* tag, rtl::PortId port,
                           const soc::Route& route) {
      std::printf("   %s %-8s: ", tag, cut.netlist().port(port).name.c_str());
      if (route.via_system_mux) {
        std::printf("system-level test mux\n");
        return;
      }
      for (const auto& step : route.steps) {
        std::printf("%s -[%u..%u]-> ",
                    ccg.node_name(soc, ccg.edges()[step.edge].src).c_str(),
                    step.depart, step.arrive);
      }
      std::printf("%s\n",
                  route.steps.empty()
                      ? "(direct)"
                      : ccg.node_name(soc, ccg.edges()[route.steps.back().edge].dst)
                            .c_str());
    };
    for (const auto& [port, route] : core_plan.input_routes) {
      print_route("justify", port, route);
    }
    for (const auto& [port, route] : core_plan.output_routes) {
      print_route("observe", port, route);
    }
  }
}

}  // namespace

int main() {
  auto system = systems::make_barcode_system();

  std::printf("==== 1. core-level DFT and transparency menus ====\n");
  for (const auto& core : system.cores) print_core(*core);

  std::printf("\n==== 2. chip-level test plan (minimum-area versions) ====\n");
  const std::vector<unsigned> min_area(system.soc->cores().size(), 0);
  auto plan = soc::plan_chip_test(*system.soc, min_area);
  print_routes(*system.soc, min_area, plan);
  auto violations = soc::validate_plan(*system.soc, min_area, plan);
  std::printf("plan validation: %s\n",
              violations.empty() ? "sound" : violations.front().c_str());

  std::printf("\n==== 3. design-space exploration ====\n");
  auto points = opt::enumerate_design_space(*system.soc);
  auto front = opt::pareto_front(points);
  util::Table table({"pareto point", "selection", "area (cells)", "TAT"});
  for (const auto& p : front) {
    std::string sel;
    for (unsigned v : p.selection) sel += "V" + std::to_string(v + 1) + " ";
    table.add_row({std::to_string(&p - front.data() + 1), sel,
                   std::to_string(p.overhead_cells), std::to_string(p.tat)});
  }
  std::printf("%s", table.to_text().c_str());
  for (unsigned budget : {60u, 120u, 250u}) {
    auto best = opt::minimize_tat(*system.soc, budget);
    std::printf("budget %3u cells -> TAT %llu (overhead %u)\n", budget,
                best.tat, best.overhead_cells);
  }

  std::printf("\n==== 4. generated test controller ====\n");
  soc::Ccg ccg(*system.soc, min_area);
  auto spec = soc::derive_controller_spec(*system.soc, ccg, plan);
  auto controller = soc::generate_controller_rtl(spec);
  auto elab = synth::elaborate(controller);
  std::printf("controller: period %u cycles, %zu cells after elaboration\n",
              spec.period, elab.gates.cell_count());

  std::printf("\n==== 5. assembled test program (per-vector frames) ====\n");
  auto program = soc::assemble_test_program(*system.soc, min_area, plan);
  std::printf("%s", soc::describe_test_program(*system.soc, program).c_str());

  std::printf("\n==== 6. parallel sessions & figure regeneration ====\n");
  auto parallel = soc::schedule_parallel(*system.soc, min_area, plan);
  std::printf("parallel scheduling: %zu sessions, %.2fx speedup "
              "(a pipeline SOC cannot overlap: every core is its "
              "neighbour's conduit)\n",
              parallel.sessions.size(), parallel.speedup());
  const auto dot = emit::emit_dot(*system.soc, ccg);
  std::printf("CCG DOT (Figure 9): %zu bytes — pipe `socet dot --ccg` "
              "through graphviz to render it\n",
              dot.size());
  return 0;
}
