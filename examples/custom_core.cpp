// Bring your own core: build a multiply-accumulate-style datapath with the
// RTL API, run the provider-side SOCET flow on it, sanity-check its
// behaviour with the RTL interpreter, then integrate it with the GCD core
// from System 2 into a two-core SOC and plan the chip test.
//
// Build & run:   cmake --build build && ./build/examples/custom_core
#include <cstdio>

#include "socet/rtl/interpreter.hpp"
#include "socet/soc/schedule.hpp"
#include "socet/systems/systems.hpp"
#include "socet/transparency/rcg.hpp"

namespace {

using namespace socet;

/// An accumulating filter tap: ACC' = ACC + (COEF * ... simplified to
/// shifted adds), with a bypass path that the transparency search can
/// recruit.
rtl::Netlist make_mac_core() {
  rtl::Netlist n("MAC");
  auto x = n.add_input("X", 8);
  auto clear = n.add_input("Clear", 1, rtl::PortKind::kControl);
  auto y = n.add_output("Y", 8);

  auto xr = n.add_register("XR", 8);
  auto acc = n.add_register("ACC", 8);
  auto yr = n.add_register("YR", 8);

  auto shl = n.add_fu("SHL", rtl::FuKind::kShiftLeft, 8, 1);
  auto add = n.add_fu("ADD", rtl::FuKind::kAdd, 8, 2);
  auto zero = n.add_constant("ZERO", util::BitVector(8, 0));

  // XR <- X (sample register).
  n.connect(n.pin(x), n.reg_d(xr));
  // ACC <- 0 | ACC + (XR << 1)  (clear / accumulate).
  n.connect(n.reg_q(xr), n.fu_in(shl, 0));
  n.connect(n.reg_q(acc), n.fu_in(add, 0));
  n.connect(n.fu_out(shl), n.fu_in(add, 1));
  auto m_acc = n.add_mux("m_acc", 8, 2);
  n.connect(n.fu_out(add), n.mux_in(m_acc, 0));
  n.connect(n.const_out(zero), n.mux_in(m_acc, 1));
  n.connect(n.pin(clear), n.mux_select(m_acc));
  n.connect(n.mux_out(m_acc), n.reg_d(acc));
  // YR <- ACC | XR (output register with a pass-through path - this mux
  // edge is what makes the core cheaply transparent).
  auto m_y = n.add_mux("m_y", 8, 2);
  n.connect(n.reg_q(acc), n.mux_in(m_y, 0));
  n.connect(n.reg_q(xr), n.mux_in(m_y, 1));
  auto tsel = n.add_input("Tap", 1, rtl::PortKind::kControl);
  n.connect(n.pin(tsel), n.mux_select(m_y));
  n.connect(n.mux_out(m_y), n.reg_d(yr));
  n.connect(n.reg_q(yr), n.pin(y));
  n.validate();
  return n;
}

}  // namespace

int main() {
  // ---- 1. functional sanity check with the RTL interpreter ------------
  auto mac_rtl = make_mac_core();
  rtl::Interpreter sim(mac_rtl);
  sim.reset();
  sim.set_input("X", util::BitVector(8, 3));
  sim.set_input("Clear", util::BitVector(1, 0));
  sim.set_input("Tap", util::BitVector(1, 0));
  for (int i = 0; i < 4; ++i) sim.step();
  std::printf("MAC after 4 accumulate steps of x=3: Y = %llu\n",
              static_cast<unsigned long long>(sim.output("Y").to_u64()));

  // ---- 2. provider-side SOCET flow -------------------------------------
  core::Core mac = core::Core::prepare(make_mac_core());
  mac.set_scan_vectors(40);
  std::printf("\nMAC HSCAN: %u cells, depth %u\n", mac.hscan_overhead_cells(),
              mac.hscan().max_depth);

  transparency::Rcg rcg(mac.netlist(), &mac.hscan());
  std::printf("RCG: %zu nodes, %zu edges\n", rcg.nodes().size(),
              rcg.edges().size());
  for (const auto& version : mac.versions()) {
    std::printf("  %s: %u cells,", version.name.c_str(), version.extra_cells);
    for (const auto& edge : version.edges) {
      std::printf(" %s->%s=%u",
                  mac.netlist().port(edge.input).name.c_str(),
                  mac.netlist().port(edge.output).name.c_str(), edge.latency);
    }
    std::printf("\n");
  }

  // ---- 3. integrate with the System 2 GCD core -------------------------
  core::Core gcd = core::Core::prepare(systems::make_gcd_rtl());
  gcd.set_scan_vectors(55);

  soc::Soc chip("MAC+GCD");
  auto c_mac = chip.add_core(&mac);
  auto c_gcd = chip.add_core(&gcd);
  auto pi_x = chip.add_pi("X", 8);
  auto pi_clear = chip.add_pi("Clear", 1);
  auto pi_tap = chip.add_pi("Tap", 1);
  auto pi_b = chip.add_pi("B", 8);
  auto pi_start = chip.add_pi("Start", 1);
  auto po_res = chip.add_po("Result", 8);
  auto po_rdy = chip.add_po("Ready", 1);
  chip.connect(pi_x, c_mac, "X");
  chip.connect(pi_clear, c_mac, "Clear");
  chip.connect(pi_tap, c_mac, "Tap");
  chip.connect(c_mac, "Y", c_gcd, "A");  // MAC output feeds the GCD
  chip.connect(pi_b, c_gcd, "B");
  chip.connect(pi_start, c_gcd, "Start");
  chip.connect(c_gcd, "Result", po_res);
  chip.connect(c_gcd, "Ready", po_rdy);
  chip.validate();

  std::printf("\nchip test plans by MAC version:\n");
  for (unsigned v = 0; v < mac.version_count(); ++v) {
    auto plan = soc::plan_chip_test(chip, {v, 0});
    std::printf("  MAC %s: total TAT %llu cycles, DFT %u cells "
                "(GCD's A input justified through the MAC)\n",
                mac.version(v).name.c_str(), plan.total_tat,
                plan.total_overhead_cells());
  }
  return 0;
}
