// The hard-core scenario the paper's Section 1 describes: the core
// provider runs the one-time DFT flow and ships only a text interface
// (ports, scan summary, transparency menu, test-set size) — no netlist.
// The SOC integrator rebuilds Core objects from those interfaces and runs
// the entire chip-level flow against them.
//
// Build & run:   cmake --build build && ./build/examples/hard_core_exchange
#include <cstdio>

#include "socet/core/serialize.hpp"
#include "socet/opt/optimize.hpp"
#include "socet/soc/schedule.hpp"
#include "socet/systems/systems.hpp"

int main() {
  using namespace socet;

  // ---- provider side: prepare cores, ship interfaces --------------------
  std::vector<std::string> shipped;
  for (auto* make : {&systems::make_graphics_rtl, &systems::make_gcd_rtl,
                     &systems::make_x25_rtl}) {
    core::Core prepared = core::Core::prepare(make());
    // The provider also ships the precomputed test-set size (here the
    // defaults System 2 uses).
    prepared.set_scan_vectors(prepared.name() == "GCD" ? 55 : 125);
    shipped.push_back(core::serialize_interface(prepared));
    std::printf("shipped %s interface: %zu bytes of text, no RTL\n",
                prepared.name().c_str(), shipped.back().size());
  }

  // ---- integrator side: no netlists, only the shipped text --------------
  std::vector<std::unique_ptr<core::Core>> cores;
  for (const auto& text : shipped) {
    cores.push_back(std::make_unique<core::Core>(
        core::Core::from_interface(core::parse_interface(text))));
  }

  soc::Soc chip("System2-hard");
  auto gfx = chip.add_core(cores[0].get());
  auto gcd = chip.add_core(cores[1].get());
  auto x25 = chip.add_core(cores[2].get());
  auto cmd = chip.add_pi("CMD", 8);
  auto din = chip.add_pi("DIN", 8);
  auto go = chip.add_pi("GO", 1);
  auto start = chip.add_pi("Start", 1);
  auto ctl = chip.add_pi("CTL", 4);
  auto tx = chip.add_po("TX", 8);
  auto stat = chip.add_po("STAT", 4);
  auto done = chip.add_po("DONE", 1);
  auto ready = chip.add_po("READY", 1);
  chip.connect(cmd, gfx, "CMD");
  chip.connect(din, gfx, "DIN");
  chip.connect(go, gfx, "GO");
  chip.connect(start, gcd, "Start");
  chip.connect(ctl, x25, "CTL");
  chip.connect(gfx, "PX", gcd, "A");
  chip.connect(gfx, "PY", gcd, "B");
  chip.connect(gcd, "Result", x25, "RX");
  chip.connect(x25, "TX", tx);
  chip.connect(x25, "STAT", stat);
  chip.connect(gfx, "Done", done);
  chip.connect(gcd, "Ready", ready);
  chip.validate();

  // Everything chip-level works against the stubs: planning, optimizing.
  auto min_area =
      soc::plan_chip_test(chip, std::vector<unsigned>(3, 0));
  auto best = opt::minimize_tat(chip, 1'000'000);
  std::printf("\nplanned against shipped interfaces only:\n");
  std::printf("  min-area: %llu cycles at %u cells\n", min_area.total_tat,
              min_area.total_overhead_cells());
  std::printf("  min-TAT:  %llu cycles at %u cells\n", best.tat,
              best.overhead_cells);
  std::printf("\n(The integrator never saw a netlist — exactly the hard-core "
              "workflow of the paper.)\n");
  return 0;
}
