// socet — command-line driver for the SOCET flow.
//
//   socet menus    [--system barcode|system2]
//   socet plan     [--system ...] [--selection 1,2,3] [--pipelined]
//   socet optimize [--system ...] (--area-budget N | --tat-budget N |
//                  --w1 X --w2 Y)
//   socet explore  [--system ...]            # design-space CSV (Figure 10)
//   socet parallel [--system ...] [--selection 1,2,3]  # session schedule
//   socet batch    --jobs FILE [--threads N] # planning service (one job/line)
//   socet serve    [--port N] [--threads N]  # persistent planning daemon
//   socet client   --connect HOST:PORT (--jobs FILE | stats | health | metrics
//                  | journal | profile)
//   socet top      --connect HOST:PORT [--interval-ms N]  # live dashboard
//   socet tail     --connect HOST:PORT [--corr ID] [--type PREFIX]  # live journal
//   socet trace-merge --base A.json --overlay B.json  # one Chrome timeline
//   socet trace-analyze TRACE.json [--diff A B]  # critical path / attribution
//   socet sweep    [--system ...] [--threads N]  # parallel explore
//   socet program  [--system ...]            # assembled test program
//   socet verilog  --core CPU [--gates]      # Verilog to stdout
//   socet dot      (--core CPU | --ccg) [--system ...]   # Graphviz
//   socet interface --core CPU               # shippable core interface
//   socet explain  mux|version|route|reject [NAME [VERSION]] --journal FILE
//
// Core names: CPU, PREPROCESSOR, DISPLAY, GRAPHICS, GCD, X25.
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <iterator>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "socet/core/serialize.hpp"
#include "socet/emit/dot.hpp"
#include "socet/emit/verilog.hpp"
#include "socet/obs/explain.hpp"
#include "socet/obs/journal.hpp"
#include "socet/obs/metrics.hpp"
#include "socet/obs/report.hpp"
#include "socet/obs/resource.hpp"
#include "socet/obs/sampler.hpp"
#include "socet/obs/trace.hpp"
#include "socet/obs/traceanalyze.hpp"
#include "socet/obs/tracemerge.hpp"
#include "socet/opt/optimize.hpp"
#include "socet/service/client.hpp"
#include "socet/service/protocol.hpp"
#include "socet/service/server.hpp"
#include "socet/service/service.hpp"
#include "socet/soc/parallel.hpp"
#include "socet/soc/testprogram.hpp"
#include "socet/soc/validate.hpp"
#include "socet/synth/elaborate.hpp"
#include "socet/systems/systems.hpp"
#include "socet/util/table.hpp"

namespace {

using namespace socet;

struct Args {
  std::string command;
  std::map<std::string, std::string> options;
  std::vector<std::string> positionals;  ///< bare tokens ("explain mux CPU")

  bool has(const std::string& key) const { return options.count(key) != 0; }
  std::string get(const std::string& key, const std::string& fallback) const {
    auto it = options.find(key);
    return it == options.end() ? fallback : it->second;
  }
  std::string positional(std::size_t i) const {
    return i < positionals.size() ? positionals[i] : "";
  }
};

Args parse_args(int argc, char** argv) {
  Args args;
  if (argc >= 2) args.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    std::string token = argv[i];
    if (token.rfind("--", 0) != 0) {
      args.positionals.push_back(std::move(token));
      continue;
    }
    token = token.substr(2);
    if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
      args.options[token] = argv[++i];
    } else {
      args.options[token] = "";
    }
  }
  return args;
}

systems::System load_system(const Args& args) {
  const std::string name = args.get("system", "barcode");
  if (name == "barcode" || name == "system1") {
    return systems::make_barcode_system();
  }
  if (name == "system2") return systems::make_system2();
  util::raise("unknown system '" + name + "' (use barcode|system2)");
}

rtl::Netlist load_core_rtl(const std::string& name) {
  if (name == "CPU") return systems::make_cpu_rtl();
  if (name == "PREPROCESSOR") return systems::make_preprocessor_rtl();
  if (name == "DISPLAY") return systems::make_display_rtl();
  if (name == "GRAPHICS") return systems::make_graphics_rtl();
  if (name == "GCD") return systems::make_gcd_rtl();
  if (name == "X25") return systems::make_x25_rtl();
  util::raise("unknown core '" + name + "'");
}

std::vector<unsigned> parse_selection(const Args& args,
                                      const systems::System& system) {
  std::vector<unsigned> selection(system.soc->cores().size(), 0);
  const std::string spec = args.get("selection", "");
  if (spec.empty()) return selection;
  // Strict 1-based parse (rejects 0, empty, and trailing tokens).
  const auto tokens = service::parse_selection_spec(spec);
  util::require(tokens.size() <= selection.size(),
                "--selection has " + std::to_string(tokens.size()) +
                    " entries but the system has " +
                    std::to_string(selection.size()) + " cores");
  for (std::size_t c = 0; c < tokens.size(); ++c) {
    selection[c] = tokens[c];
    util::require(selection[c] < system.soc->core(static_cast<std::uint32_t>(c))
                                     .version_count(),
                  "selection out of range for core " + std::to_string(c + 1));
  }
  return selection;
}

int cmd_menus(const Args& args) {
  auto system = load_system(args);
  for (const auto& core : system.cores) {
    std::printf("%s (%u FFs, HSCAN %u cells, depth %u, %u scan vectors)\n",
                core->name().c_str(), core->flip_flop_count(),
                core->hscan_overhead_cells(), core->hscan().max_depth,
                core->scan_vectors());
    for (const auto& version : core->versions()) {
      std::printf("  %-10s %4u cells:", version.name.c_str(),
                  version.extra_cells);
      for (const auto& edge : version.edges) {
        std::printf(" %s->%s=%u",
                    core->netlist().port(edge.input).name.c_str(),
                    core->netlist().port(edge.output).name.c_str(),
                    edge.latency);
      }
      std::printf("\n");
    }
  }
  return 0;
}

int cmd_plan(const Args& args) {
  auto system = load_system(args);
  auto selection = parse_selection(args, system);
  soc::PlanOptions options;
  options.allow_pipelining = args.has("pipelined");
  auto plan = soc::plan_chip_test(*system.soc, selection, options);

  util::Table table({"core", "version", "period", "flush", "TAT (cycles)",
                     "sys-mux cells"});
  for (const auto& core_plan : plan.cores) {
    const auto& core = system.soc->core(core_plan.core);
    table.add_row({core.name(),
                   core.version(selection[core_plan.core]).name,
                   std::to_string(core_plan.period),
                   std::to_string(core_plan.flush),
                   std::to_string(core_plan.tat),
                   std::to_string(core_plan.system_mux_cells)});
  }
  std::printf("%s", table.to_text().c_str());
  std::printf("total: %llu cycles, %u chip-level DFT cells\n", plan.total_tat,
              plan.total_overhead_cells());
  auto violations = soc::validate_plan(*system.soc, selection, plan, options);
  for (const auto& violation : violations) {
    std::fprintf(stderr, "VIOLATION: %s\n", violation.c_str());
  }
  return violations.empty() ? 0 : 1;
}

int cmd_optimize(const Args& args) {
  auto system = load_system(args);
  opt::DesignPoint point;
  if (args.has("area-budget")) {
    point = opt::minimize_tat(
        *system.soc,
        static_cast<unsigned>(std::stoul(args.get("area-budget", "0"))));
  } else if (args.has("tat-budget")) {
    point = opt::minimize_area(
        *system.soc, std::stoull(args.get("tat-budget", "0")));
  } else if (args.has("w1") || args.has("w2")) {
    point = opt::minimize_weighted(*system.soc,
                                   std::stod(args.get("w1", "1")),
                                   std::stod(args.get("w2", "1")));
  } else {
    std::fprintf(stderr,
                 "optimize needs --area-budget, --tat-budget, or --w1/--w2\n");
    return 2;
  }
  std::printf("selection:");
  for (std::size_t c = 0; c < point.selection.size(); ++c) {
    std::printf(" %s=%s", system.soc->core(static_cast<std::uint32_t>(c))
                              .name()
                              .c_str(),
                system.soc->core(static_cast<std::uint32_t>(c))
                    .version(point.selection[c])
                    .name.c_str());
  }
  std::printf("\nTAT %llu cycles, overhead %u cells, constraint %s\n",
              point.tat, point.overhead_cells,
              point.met_constraint ? "met" : "NOT met");
  return point.met_constraint ? 0 : 1;
}

int cmd_explore(const Args& args) {
  auto system = load_system(args);
  auto points = opt::enumerate_design_space(*system.soc);
  std::printf("%s", opt::design_space_csv(std::move(points)).c_str());
  return 0;
}

unsigned long parse_option_count(const Args& args, const std::string& key,
                                 unsigned long fallback) {
  if (!args.has(key)) return fallback;
  const std::string text = args.get(key, "");
  try {
    std::size_t consumed = 0;
    const unsigned long value = std::stoul(text, &consumed);
    util::require(consumed == text.size(), "");
    return value;
  } catch (const std::exception&) {
    util::raise("bad --" + key + " '" + text + "' (want a number)");
  }
}

service::ServiceOptions service_options(const Args& args) {
  service::ServiceOptions options;
  options.threads =
      static_cast<unsigned>(parse_option_count(args, "threads", 1));
  util::require(options.threads >= 1, "--threads must be at least 1");
  options.cache_capacity =
      parse_option_count(args, "cache", options.cache_capacity);
  options.cache_bytes =
      parse_option_count(args, "cache-bytes", options.cache_bytes);
  return options;
}

std::vector<std::string> read_job_lines(const std::string& path,
                                        const char* who) {
  util::require(!path.empty(),
                std::string(who) + " needs --jobs FILE (or --jobs -)");
  std::vector<std::string> lines;
  std::string line;
  if (path == "-") {
    while (std::getline(std::cin, line)) lines.push_back(line);
  } else {
    std::ifstream file(path);
    util::require(file.good(), "cannot open jobs file '" + path + "'");
    while (std::getline(file, line)) lines.push_back(line);
  }
  return lines;
}

service::ClientOptions client_options(const Args& args) {
  const std::string connect = args.get("connect", "");
  const auto host_port = service::parse_host_port(connect);
  service::ClientOptions options;
  options.host = host_port.host;
  options.port = host_port.port;
  options.window = parse_option_count(args, "window", options.window);
  return options;
}

/// Replay a job file against a daemon and print records to stdout —
/// the remote path shared by `client --jobs` and `batch --connect`.
/// With --trace FILE the run is distributed-traced end to end: clock
/// handshake, per-job submit spans, daemon span collection, ONE merged
/// Chrome trace to FILE.  stdout is byte-identical either way.
int run_remote_jobs(const Args& args, const char* who) {
  const auto lines = read_job_lines(args.get("jobs", ""), who);
  const std::string trace_path = args.get("trace", "");
  auto options = client_options(args);
  options.trace = !trace_path.empty();
  service::Client client(options);
  const auto report = client.run_lines(lines);
  std::printf("%s", report.records_text().c_str());
  std::fprintf(stderr, "%s: %zu jobs via %s, %zu errors, %zu busy\n", who,
               report.jobs, args.get("connect", "").c_str(), report.errors,
               report.busy);
  if (options.trace) {
    std::ofstream out(trace_path);
    out << report.trace.chrome_trace();
    if (!out.good()) {
      std::fprintf(stderr, "error: cannot write trace '%s'\n",
                   trace_path.c_str());
      return 1;
    }
    std::fprintf(stderr,
                 "%s: merged trace: %zu client + %zu daemon spans, "
                 "clock offset %lld ns -> %s\n",
                 who, report.trace.client_spans.size(),
                 report.trace.daemon_spans.size(),
                 static_cast<long long>(report.trace.clock_offset_ns),
                 trace_path.c_str());
  }
  return (report.errors == 0 && report.busy == 0) ? 0 : 1;
}

int cmd_batch(const Args& args) {
  if (args.has("connect")) return run_remote_jobs(args, "batch");
  const auto lines = read_job_lines(args.get("jobs", ""), "batch");
  service::PlanningService service(service_options(args));
  const auto report = service.run_lines(lines);
  std::printf("%s", report.records_text().c_str());
  std::fprintf(stderr, "%s", report.summary_table().c_str());
  if (args.has("verbose")) {
    for (const auto& result : report.results) {
      std::fprintf(stderr, "job %zu queue_us=%.1f wall_us=%.1f cache=%s\n",
                   result.index + 1, result.queue_us, result.wall_us,
                   result.cache_hit ? "hit" : "miss");
    }
  }
  return report.errors == 0 ? 0 : 1;
}

int cmd_serve(const Args& args) {
  service::ServerOptions options;
  options.host = args.get("host", options.host);
  options.port =
      static_cast<unsigned short>(parse_option_count(args, "port", 0));
  options.threads =
      static_cast<unsigned>(parse_option_count(args, "threads", 1));
  util::require(options.threads >= 1, "--threads must be at least 1");
  options.cache_capacity =
      parse_option_count(args, "cache", options.cache_capacity);
  options.cache_bytes =
      parse_option_count(args, "cache-bytes", options.cache_bytes);
  options.max_queue =
      parse_option_count(args, "max-queue", options.max_queue);
  options.client_window =
      parse_option_count(args, "window", options.client_window);
  options.port_file = args.get("port-file", "");
  // Telemetry plane (docs/SERVICE.md "Live daemon telemetry").
  options.metrics_http =
      args.has("metrics-port") || args.has("metrics-port-file");
  if (args.has("metrics-port")) {
    options.metrics_port =
        static_cast<unsigned short>(parse_option_count(args, "metrics-port", 0));
  }
  options.metrics_host = args.get("metrics-host", options.metrics_host);
  options.metrics_port_file = args.get("metrics-port-file", "");
  options.access_log = args.get("access-log", "");
  options.access_log_max_bytes =
      parse_option_count(args, "access-log-max-bytes", 0);
  options.journal_ring = parse_option_count(args, "journal-ring", 0);
  options.window_interval = std::chrono::milliseconds(parse_option_count(
      args, "metrics-interval-ms",
      static_cast<unsigned long>(options.window_interval.count())));
  const std::string host = options.host;
  const unsigned threads = options.threads;
  const bool metrics_http = options.metrics_http;
  const std::string metrics_host = options.metrics_host;
  service::Server server(std::move(options));
  server.start();
  server.install_signal_handlers();
  std::fprintf(stderr, "socet serve: listening on %s:%u (%u worker%s)\n",
               host.c_str(), server.port(), threads,
               threads == 1 ? "" : "s");
  if (metrics_http) {
    std::fprintf(stderr, "socet serve: telemetry on http://%s:%u/metrics\n",
                 metrics_host.c_str(), server.metrics_port());
  }
  server.wait();  // until SIGTERM/SIGINT drains the daemon
  std::fprintf(stderr, "socet serve: drained: %s\n",
               server.stats().text().c_str());
  return 0;
}

int cmd_client(const Args& args) {
  const std::string verb = args.positional(0);
  if (verb == "stats" || verb == "health" || verb == "metrics" ||
      verb == "journal") {
    service::Client client(client_options(args));
    std::printf("%s\n", client.query(verb).c_str());
    return 0;
  }
  if (verb == "profile") {
    // On-demand remote profiling: arm the daemon's SIGPROF sampler for
    // --seconds and print "ok profile samples=N dropped=M" + folded
    // stacks (flamegraph-ready).
    service::Client client(client_options(args));
    const std::string reply =
        client.query("profile " + args.get("seconds", "1"));
    std::printf("%s\n", reply.c_str());
    return reply.rfind("ok ", 0) == 0 ? 0 : 1;
  }
  util::require(verb.empty(),
                "unknown client verb '" + verb +
                    "' (use stats|health|metrics|journal|profile or "
                    "--jobs FILE)");
  return run_remote_jobs(args, "client");
}

/// `socet tail --connect HOST:PORT [--corr ID] [--type PREFIX]`: watch
/// the daemon's decision journal live.  One JSONL event per line to
/// stdout; --count N exits after N events (tests/CI).
int cmd_tail(const Args& args) {
  const auto host_port =
      service::parse_host_port(args.get("connect", ""));
  const int fd = service::net_connect(host_port.host, host_port.port);
  std::string request = "tail";
  if (args.has("corr")) request += " corr=" + args.get("corr", "");
  if (args.has("type")) request += " type=" + args.get("type", "");
  service::write_frame(fd, request);
  const auto ack = service::read_frame(fd);
  if (!ack.has_value() || *ack != "ok tail") {
    std::fprintf(stderr, "error: daemon answered '%s'\n",
                 ack.value_or("<eof>").c_str());
    ::close(fd);
    return 1;
  }
  std::fprintf(stderr, "socet tail: watching %s (%s)\n",
               args.get("connect", "").c_str(),
               request == "tail" ? "all events" : request.c_str() + 5);
  const auto count = parse_option_count(args, "count", 0);
  unsigned long seen = 0;
  while (count == 0 || seen < count) {
    const auto event = service::read_frame(fd);
    if (!event.has_value()) break;  // daemon drained / connection closed
    std::printf("%s\n", event->c_str());
    std::fflush(stdout);
    ++seen;
  }
  ::close(fd);
  return 0;
}

/// `socet trace-merge --base A.json --overlay B.json [--offset-us X]`:
/// concatenate two Chrome trace documents onto one timeline (overlay
/// pids remapped past the base's, timestamps shifted by the offset).
int cmd_trace_merge(const Args& args) {
  const auto read_text = [](const std::string& path, const char* what) {
    util::require(!path.empty(),
                  std::string("trace-merge needs --") + what + " FILE");
    std::ifstream file(path);
    util::require(file.good(), "cannot open '" + path + "'");
    return std::string((std::istreambuf_iterator<char>(file)),
                       std::istreambuf_iterator<char>());
  };
  const std::string base = read_text(args.get("base", ""), "base");
  const std::string overlay = read_text(args.get("overlay", ""), "overlay");
  const double offset_us =
      std::strtod(args.get("offset-us", "0").c_str(), nullptr);
  std::string merged;
  std::string error;
  util::require(
      obs::merge_chrome_trace_files(base, overlay, offset_us, &merged, &error),
      "trace-merge: " + error);
  const std::string out_path = args.get("out", "");
  if (out_path.empty()) {
    std::printf("%s", merged.c_str());
    return 0;
  }
  std::ofstream out(out_path);
  out << merged;
  util::require(out.good(), "cannot write '" + out_path + "'");
  return 0;
}

/// `socet trace-analyze FILE... [--json] [--folded] [--top N] [--out F]`
/// or `socet trace-analyze --diff A.json B.json [--json]`: offline
/// analytics over Chrome-trace / journal artifacts — critical path,
/// per-stage latency distributions, and differential attribution
/// (docs/OBSERVABILITY.md "Analyzing traces").
int cmd_trace_analyze(const Args& args) {
  const auto read_text = [](const std::string& path) {
    std::ifstream file(path);
    util::require(file.good(), "cannot open '" + path + "'");
    return std::string((std::istreambuf_iterator<char>(file)),
                       std::istreambuf_iterator<char>());
  };
  const auto load = [&read_text](const std::string& path) {
    obs::analyze::TraceData trace;
    std::string error;
    util::require(obs::analyze::load_trace(read_text(path), &trace, &error),
                  "trace-analyze: " + path + ": " + error);
    return trace;
  };
  // parse_args folds the token after a bare flag into its value, so a
  // file name following --json/--folded is really another input.
  std::vector<std::string> inputs = args.positionals;
  for (const char* flag : {"json", "folded"}) {
    const std::string value = args.get(flag, "");
    if (!value.empty()) inputs.push_back(value);
  }
  const bool as_json = args.has("json");
  const std::size_t top =
      static_cast<std::size_t>(parse_option_count(args, "top", 12));

  std::string rendered;
  if (args.has("diff")) {
    const std::string a_path = args.get("diff", "");
    util::require(!a_path.empty() && inputs.size() == 1,
                  "trace-analyze --diff needs exactly two trace files");
    const obs::analyze::Aggregate a = obs::analyze::aggregate({load(a_path)});
    const obs::analyze::Aggregate b =
        obs::analyze::aggregate({load(inputs[0])});
    const obs::analyze::DiffResult result = obs::analyze::diff(a, b);
    rendered = as_json ? obs::analyze::diff_json(result)
                       : obs::analyze::diff_text(result, top);
  } else {
    util::require(!inputs.empty(),
                  "trace-analyze needs at least one trace file");
    std::vector<obs::analyze::TraceData> traces;
    traces.reserve(inputs.size());
    for (const std::string& path : inputs) traces.push_back(load(path));
    if (args.has("folded")) {
      rendered = obs::analyze::folded_stacks(traces);
    } else {
      std::vector<obs::analyze::CriticalPath> paths;
      for (const obs::analyze::TraceData& trace : traces) {
        for (obs::analyze::CriticalPath& path :
             obs::analyze::critical_paths(trace)) {
          paths.push_back(std::move(path));
        }
      }
      const obs::analyze::Aggregate agg = obs::analyze::aggregate(traces);
      rendered = as_json ? obs::analyze::analysis_json(paths, agg)
                         : obs::analyze::analysis_text(paths, agg, top);
    }
  }
  const std::string out_path = args.get("out", "");
  if (out_path.empty()) {
    std::printf("%s", rendered.c_str());
    return 0;
  }
  std::ofstream out(out_path);
  out << rendered;
  util::require(out.good(), "cannot write '" + out_path + "'");
  return 0;
}

/// Parse one Prometheus exposition into {sample line -> value}, keyed
/// by the full sample name including labels.
std::map<std::string, double> parse_exposition(const std::string& text) {
  std::map<std::string, double> samples;
  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    const std::string line = text.substr(start, end - start);
    start = end + 1;
    if (line.empty() || line[0] == '#') continue;
    const std::size_t space = line.rfind(' ');
    if (space == std::string::npos || space == 0) continue;
    samples[line.substr(0, space)] =
        std::strtod(line.c_str() + space + 1, nullptr);
  }
  return samples;
}

/// Parse "ok stats k=v k=v ..." into {k -> v}.
std::map<std::string, std::uint64_t> parse_stats(const std::string& reply) {
  std::map<std::string, std::uint64_t> stats;
  std::size_t pos = 0;
  while (pos < reply.size()) {
    std::size_t end = reply.find(' ', pos);
    if (end == std::string::npos) end = reply.size();
    const std::string token = reply.substr(pos, end - pos);
    pos = end + 1;
    const std::size_t eq = token.find('=');
    if (eq == std::string::npos) continue;
    stats[token.substr(0, eq)] =
        std::strtoull(token.c_str() + eq + 1, nullptr, 10);
  }
  return stats;
}

double window_sample(const std::map<std::string, double>& samples,
                     const char* window, const char* quantile) {
  const std::string key = std::string("socet_window_serve_request_us{window=\"") +
                          window + "\",quantile=\"" + quantile + "\"}";
  const auto it = samples.find(key);
  return it == samples.end() ? 0.0 : it->second;
}

/// `socet top`: poll stats + metrics over the framed protocol and
/// render a refreshing dashboard.  Requires a daemon started with a
/// telemetry flag (--metrics-port or --access-log) for the window
/// quantiles and busy%; throughput and queue figures work regardless.
int cmd_top(const Args& args) {
  const auto interval_ms = parse_option_count(args, "interval-ms", 1000);
  // 0 = until interrupted; tests and CI pass a small bound.
  const auto iterations = parse_option_count(args, "iterations", 0);
  const bool tty = ::isatty(STDOUT_FILENO) != 0;

  // The dashboard survives a daemon restart: a failed connect or query
  // drops the connection, prints a reconnecting banner, and retries
  // with capped exponential backoff instead of exiting.
  std::unique_ptr<service::Client> client;
  unsigned long backoff_ms = 0;
  bool have_prev = false;
  std::map<std::string, std::uint64_t> prev_stats;
  std::map<std::string, double> prev_samples;
  auto prev_at = std::chrono::steady_clock::now();
  for (unsigned long i = 0; iterations == 0 || i < iterations; ++i) {
    if (i > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
    }
    std::map<std::string, std::uint64_t> stats;
    std::map<std::string, double> samples;
    try {
      if (!client) {
        client = std::make_unique<service::Client>(client_options(args));
      }
      stats = parse_stats(client->query("stats"));
      samples = parse_exposition(client->query("metrics"));
      backoff_ms = 0;
    } catch (const std::exception& e) {
      client.reset();
      have_prev = false;  // rates restart once the daemon is back
      backoff_ms =
          backoff_ms == 0 ? 500 : std::min<unsigned long>(backoff_ms * 2, 5000);
      std::printf("socet top — %s — reconnecting in %lums (%s)\n",
                  args.get("connect", "").c_str(), backoff_ms, e.what());
      std::fflush(stdout);
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
      continue;
    }
    const auto now = std::chrono::steady_clock::now();
    const double elapsed_s =
        std::chrono::duration<double>(now - prev_at).count();
    const auto stat = [&stats](const char* key) -> std::uint64_t {
      const auto it = stats.find(key);
      return it == stats.end() ? 0 : it->second;
    };
    const auto rate = [&](const char* key) -> double {
      if (!have_prev || elapsed_s <= 0) return 0.0;
      const auto it = prev_stats.find(key);
      const std::uint64_t prev = it == prev_stats.end() ? 0 : it->second;
      return static_cast<double>(stat(key) - prev) / elapsed_s;
    };

    if (tty) std::printf("\033[H\033[2J");
    std::printf("socet top — %s — workers=%llu conns=%llu draining=%llu\n",
                args.get("connect", "").c_str(),
                static_cast<unsigned long long>(stat("workers")),
                static_cast<unsigned long long>(stat("connections")),
                static_cast<unsigned long long>(stat("draining")));
    std::printf(
        "requests=%llu (%.1f/s)  responses=%llu (%.1f/s)  errors=%llu  "
        "busy=%llu\n",
        static_cast<unsigned long long>(stat("requests")), rate("requests"),
        static_cast<unsigned long long>(stat("responses")), rate("responses"),
        static_cast<unsigned long long>(stat("errors")),
        static_cast<unsigned long long>(stat("busy")));
    std::printf("queue depth=%llu hwm=%llu inflight=%llu\n",
                static_cast<unsigned long long>(stat("queue_depth")),
                static_cast<unsigned long long>(stat("queue_hwm")),
                static_cast<unsigned long long>(stat("inflight")));
    const std::uint64_t hits = stat("cache_hits");
    const std::uint64_t misses = stat("cache_misses");
    std::printf(
        "cache hits=%llu misses=%llu hit%%=%.1f evictions=%llu "
        "evicted_bytes=%llu entries=%llu bytes=%llu\n",
        static_cast<unsigned long long>(hits),
        static_cast<unsigned long long>(misses),
        hits + misses == 0
            ? 0.0
            : 100.0 * static_cast<double>(hits) /
                  static_cast<double>(hits + misses),
        static_cast<unsigned long long>(stat("cache_evictions")),
        static_cast<unsigned long long>(stat("cache_evicted_bytes")),
        static_cast<unsigned long long>(stat("cache_entries")),
        static_cast<unsigned long long>(stat("cache_bytes")));

    util::Table windows({"window", "p50_us", "p95_us", "p99_us", "count"});
    for (const char* window : {"1m", "5m", "15m"}) {
      const auto count_it = samples.find(
          std::string("socet_window_serve_request_us_count{window=\"") +
          window + "\"}");
      windows.add_row(
          {window, util::Table::num(window_sample(samples, window, "0.5")),
           util::Table::num(window_sample(samples, window, "0.95")),
           util::Table::num(window_sample(samples, window, "0.99")),
           count_it == samples.end()
               ? "-"
               : std::to_string(
                     static_cast<std::uint64_t>(count_it->second))});
    }
    std::printf("%s", windows.to_text().c_str());

    std::printf("worker busy%%:");
    const std::uint64_t workers = stat("workers");
    for (std::uint64_t w = 1; w <= workers; ++w) {
      const std::string key =
          "socet_serve_worker" + std::to_string(w) + "_busy_us_total";
      const auto it = samples.find(key);
      const double busy_us = it == samples.end() ? 0.0 : it->second;
      const auto prev_it = prev_samples.find(key);
      const double prev_us =
          prev_it == prev_samples.end() ? 0.0 : prev_it->second;
      const double pct =
          (!have_prev || elapsed_s <= 0)
              ? 0.0
              : 100.0 * (busy_us - prev_us) / (elapsed_s * 1e6);
      std::printf(" w%llu=%.1f%%", static_cast<unsigned long long>(w), pct);
    }
    std::printf("\n");
    std::fflush(stdout);

    have_prev = true;
    prev_stats = std::move(stats);
    prev_samples = std::move(samples);
    prev_at = now;
  }
  return 0;
}

int cmd_sweep(const Args& args) {
  service::PlanningService service(service_options(args));
  const std::string csv =
      service::sweep_csv(args.get("system", "barcode"), service);
  std::printf("%s", csv.c_str());
  return 0;
}

int cmd_parallel(const Args& args) {
  auto system = load_system(args);
  auto selection = parse_selection(args, system);
  auto plan = soc::plan_chip_test(*system.soc, selection);
  auto schedule = soc::schedule_parallel(*system.soc, selection, plan);
  for (std::size_t s = 0; s < schedule.sessions.size(); ++s) {
    std::printf("session %zu:", s + 1);
    for (auto core : schedule.sessions[s]) {
      std::printf(" %s", system.soc->core(core).name().c_str());
    }
    std::printf("\n");
  }
  std::printf("sequential %llu cycles -> parallel %llu cycles (%.2fx)\n",
              schedule.sequential_tat, schedule.total_tat,
              schedule.speedup());
  return 0;
}

int cmd_program(const Args& args) {
  auto system = load_system(args);
  auto selection = parse_selection(args, system);
  auto plan = soc::plan_chip_test(*system.soc, selection);
  auto program = soc::assemble_test_program(*system.soc, selection, plan);
  std::printf("%s", soc::describe_test_program(*system.soc, program).c_str());
  return 0;
}

int cmd_verilog(const Args& args) {
  const std::string core = args.get("core", "");
  util::require(!core.empty(), "verilog needs --core <name>");
  auto rtl = load_core_rtl(core);
  if (args.has("gates")) {
    auto elab = synth::elaborate(rtl);
    std::printf("%s", emit::emit_verilog(elab.gates).c_str());
  } else {
    std::printf("%s", emit::emit_verilog(rtl).c_str());
  }
  return 0;
}

int cmd_dot(const Args& args) {
  if (args.has("ccg")) {
    auto system = load_system(args);
    auto selection = parse_selection(args, system);
    soc::Ccg ccg(*system.soc, selection);
    std::printf("%s", emit::emit_dot(*system.soc, ccg).c_str());
    return 0;
  }
  const std::string core = args.get("core", "");
  util::require(!core.empty(), "dot needs --core <name> or --ccg");
  auto rtl = load_core_rtl(core);
  auto hs = hscan::build_hscan(rtl);
  transparency::Rcg rcg(rtl, &hs);
  std::printf("%s", emit::emit_dot(rcg).c_str());
  return 0;
}

int cmd_interface(const Args& args) {
  const std::string name = args.get("core", "");
  util::require(!name.empty(), "interface needs --core <name>");
  auto prepared = core::Core::prepare(load_core_rtl(name));
  std::printf("%s", core::serialize_interface(prepared).c_str());
  return 0;
}

int cmd_explain(const Args& args) {
  std::string text;
  if (args.has("connect")) {
    // Query the daemon's in-memory journal ring directly — no file
    // shipping.  Needs `socet serve --journal-ring N`.
    service::Client client(client_options(args));
    const std::string reply = client.query("journal");
    const std::string prefix = "ok journal\n";
    util::require(reply.rfind(prefix, 0) == 0,
                  "daemon answered '" + reply.substr(0, 120) + "'");
    text = reply.substr(prefix.size());
  } else {
    const std::string path = args.get("journal", "");
    util::require(!path.empty(),
                  "explain needs --journal FILE (record one with e.g. "
                  "`socet plan --journal run.jsonl`) or --connect HOST:PORT");
    std::ifstream file(path);
    util::require(file.good(), "cannot open journal '" + path + "'");
    text.assign((std::istreambuf_iterator<char>(file)),
                std::istreambuf_iterator<char>());
  }

  obs::JournalDoc doc;
  std::string error;
  const std::string source = args.has("connect")
                                 ? args.get("connect", "")
                                 : args.get("journal", "");
  util::require(obs::load_journal(text, &doc, &error),
                "bad journal '" + source + "': " + error);

  const std::string query = args.positional(0);
  util::require(!query.empty(),
                "explain needs a query: mux|version|route|reject [args]");
  std::string answer;
  if (query == "mux") {
    answer = obs::explain_mux(doc, args.positional(1));
  } else if (query == "version") {
    answer = obs::explain_version(doc, args.positional(1));
  } else if (query == "route") {
    answer = obs::explain_route(doc, args.positional(1));
  } else if (query == "reject") {
    answer = obs::explain_reject(doc, args.positional(1), args.positional(2));
  } else {
    util::raise("unknown explain query '" + query +
                "' (use mux|version|route|reject)");
  }
  std::printf("%s", answer.c_str());
  return 0;
}

int usage() {
  std::fprintf(
      stderr,
      "usage: socet <command> [options]\n"
      "  menus     [--system barcode|system2]\n"
      "  plan      [--system ...] [--selection 1,2,3] [--pipelined]\n"
      "  optimize  [--system ...] --area-budget N | --tat-budget N |\n"
      "            --w1 X --w2 Y (weighted objective iii)\n"
      "  parallel  [--system ...] [--selection 1,2,3]\n"
      "  explore   [--system ...]\n"
      "  batch     --jobs FILE|- [--threads N] [--cache N]\n"
      "            [--cache-bytes N] [--verbose] [--connect HOST:PORT]\n"
      "            (planning service; one job per line, see docs/FORMATS.md;\n"
      "            --connect replays the file against a running daemon;\n"
      "            --connect --trace FILE writes ONE merged client+daemon\n"
      "            Chrome trace on aligned clocks)\n"
      "  serve     [--host H] [--port N] [--threads N] [--cache N]\n"
      "            [--cache-bytes N] [--max-queue N] [--window N]\n"
      "            [--port-file FILE]\n"
      "            [--metrics-port N] [--metrics-host H]\n"
      "            [--metrics-port-file FILE] [--access-log FILE]\n"
      "            [--access-log-max-bytes N] [--journal-ring N]\n"
      "            [--metrics-interval-ms N]\n"
      "            (persistent planning daemon, docs/SERVICE.md; drain\n"
      "            with SIGTERM; wire protocol in docs/FORMATS.md §6;\n"
      "            --metrics-port serves GET /metrics /healthz /readyz\n"
      "            /debug/slowreqs, --access-log writes one serve.access\n"
      "            JSONL line per request (docs/FORMATS.md §7, rotated to\n"
      "            .1 past --access-log-max-bytes), --journal-ring keeps\n"
      "            the newest N decision events for `journal`/explain)\n"
      "  client    --connect HOST:PORT (--jobs FILE|- | stats | health |\n"
      "            metrics | journal | profile [--seconds S]) [--window N]\n"
      "  top       --connect HOST:PORT [--interval-ms N] [--iterations N]\n"
      "            (live dashboard over stats+metrics; daemon needs a\n"
      "            telemetry flag for window quantiles and busy%%;\n"
      "            reconnects with backoff if the daemon restarts)\n"
      "  tail      --connect HOST:PORT [--corr ID] [--type PREFIX]\n"
      "            [--count N] (stream the daemon's decision journal\n"
      "            live, one JSONL event per line)\n"
      "  trace-merge --base FILE --overlay FILE [--offset-us X]\n"
      "            [--out FILE] (concatenate two Chrome traces onto one\n"
      "            timeline; overlay pids and colliding span ids are\n"
      "            remapped)\n"
      "  trace-analyze FILE... [--json] [--folded] [--top N] [--out FILE]\n"
      "            (critical path + per-stage latency distributions over\n"
      "            Chrome-trace / journal artifacts)\n"
      "  trace-analyze --diff A.json B.json [--json] [--out FILE]\n"
      "            (rank stages by contribution to the B-A delta)\n"
      "  sweep     [--system ...] [--threads N] (parallel explore)\n"
      "  program   [--system ...] [--selection 1,2,3]\n"
      "  verilog   --core NAME [--gates]\n"
      "  dot       --core NAME | --ccg [--system ...]\n"
      "  interface --core NAME\n"
      "  explain   mux|version|route|reject [NAME [VERSION]]\n"
      "            (--journal FILE | --connect HOST:PORT) (provenance\n"
      "            queries over a recorded decision journal, or the\n"
      "            daemon's live ring via --connect + --journal-ring)\n"
      "observability (any command; stdout is never touched):\n"
      "  --metrics       print the metrics table to stderr on exit\n"
      "  --trace FILE    write a Chrome trace-event JSON (chrome://tracing)\n"
      "  --report FILE   write a run-report JSON (metrics + span rollups +\n"
      "                  rusage/hw-counter resource accounting)\n"
      "  --profile FILE  sample the run with SIGPROF; folded stacks to\n"
      "                  FILE (flamegraph-ready), top functions to stderr\n"
      "  --journal FILE  record the decision journal (routes, optimizer\n"
      "                  moves, mux insertions, cache hits) as JSONL\n"
      "  --flight-recorder [N]  keep the last N decision events (default\n"
      "                  256) in a ring; dump them to stderr on a crash\n"
      "  (metric and span names: docs/OBSERVABILITY.md)\n");
  return 2;
}

using Command = int (*)(const Args&);

const std::map<std::string, Command>& commands() {
  static const std::map<std::string, Command> table = {
      {"menus", cmd_menus},       {"plan", cmd_plan},
      {"optimize", cmd_optimize}, {"explore", cmd_explore},
      {"batch", cmd_batch},       {"sweep", cmd_sweep},
      {"serve", cmd_serve},       {"client", cmd_client},
      {"top", cmd_top},           {"tail", cmd_tail},
      {"trace-merge", cmd_trace_merge},
      {"trace-analyze", cmd_trace_analyze},
      {"program", cmd_program},
      {"parallel", cmd_parallel}, {"verilog", cmd_verilog},
      {"dot", cmd_dot},           {"interface", cmd_interface},
      {"explain", cmd_explain}};
  return table;
}

}  // namespace

int main(int argc, char** argv) {
  // Validate the command before touching any option so a typo like
  // `socet pln` fails loudly instead of falling through.
  if (argc < 2) return usage();
  const auto command = commands().find(argv[1]);
  if (command == commands().end()) {
    std::fprintf(stderr, "error: unknown command '%s'\n", argv[1]);
    return usage();
  }
  const Args args = parse_args(argc, argv);

  // Observability switches.  A run report embeds the metrics snapshot,
  // the span rollups, and the resource accounting, so --report implies
  // all three collectors.
  const std::string trace_path = args.get("trace", "");
  const std::string report_path = args.get("report", "");
  const std::string profile_path = args.get("profile", "");
  // `batch/client --connect --trace FILE` owns its trace file: the
  // client writes ONE merged cross-process document there, so the local
  // tracer must not arm (and must not overwrite it on exit).
  const bool remote_trace =
      args.has("connect") &&
      (command->first == "batch" || command->first == "client");
  if (args.has("metrics") || !report_path.empty()) {
    obs::set_metrics_enabled(true);
  }
  if ((!trace_path.empty() && !remote_trace) || !report_path.empty()) {
    obs::set_trace_enabled(true);
  }
  if (!report_path.empty()) {
    obs::set_resources_enabled(true);  // also starts run hw counters
  }
  if (!profile_path.empty() && !obs::Sampler::start({})) {
    std::fprintf(stderr, "warning: --profile unavailable on this platform\n");
  }
  // For `explain`, --journal names the *input* document; every other
  // command records one.
  const bool is_explain = command->first == "explain";
  const std::string journal_path =
      is_explain ? std::string() : args.get("journal", "");
  if (!journal_path.empty()) obs::journal_start_memory();
  if (args.has("flight-recorder") && !is_explain) {
    const std::string capacity_text = args.get("flight-recorder", "");
    const unsigned long capacity =
        capacity_text.empty()
            ? 256
            : parse_option_count(args, "flight-recorder", 256);
    obs::journal_start_flight(capacity);
  }

  int status = 1;
  try {
    // The span name must outlive export; the command key is a static.
    static const std::string span_name = "cli/" + command->first;
    obs::Span span(span_name.c_str());
    status = command->second(args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    status = 1;
  }

  // Diagnostics go to stderr / side files only, after all worker pools
  // have joined, so stdout stays byte-identical to uninstrumented runs.
  if (obs::Sampler::running()) obs::Sampler::stop();
  if (args.has("metrics")) {
    std::fprintf(stderr, "%s",
                 obs::Registry::instance().table_text().c_str());
  }
  const auto write_file = [&status](const std::string& path,
                                    const std::string& text,
                                    const char* what) {
    std::ofstream out(path);
    out << text;
    if (!out.good()) {
      std::fprintf(stderr, "error: cannot write %s '%s'\n", what,
                   path.c_str());
      status = status == 0 ? 1 : status;
    }
  };
  if (!trace_path.empty() && !remote_trace) {
    write_file(trace_path, obs::chrome_trace_json(), "trace");
  }
  if (!journal_path.empty()) {
    obs::journal_stop();
    write_file(journal_path, obs::journal_jsonl(), "journal");
  }
  if (!report_path.empty()) {
    write_file(report_path, obs::run_report_json(command->first), "report");
  }
  if (!profile_path.empty() && obs::sampler_supported()) {
    write_file(profile_path, obs::Sampler::folded_stacks(), "profile");
    std::fprintf(stderr, "%s", obs::Sampler::top_functions_table().c_str());
  }
  return status;
}
