// socet_bench — benchmark runner and perf-trajectory regression gate.
//
//   socet_bench [--bin-dir DIR] [--filter a,b,c] [--repeat N]
//               [--out-dir DIR] [--label TEXT]
//               [--check FILE --tolerance-pct P]
//               [--update-baseline FILE] [--list]
//
// Discovers every `bench_*` executable under --bin-dir, runs each one
// --repeat times as a subprocess (stdout discarded, stderr captured),
// parses the machine-readable `BENCH_<name>.json` stderr line each
// bench emits (bench/report.hpp), and reports min/median/IQR wall time
// plus child rusage (peak RSS, user/system CPU).  Each bench gets one
// `BENCH_<name>.json` trajectory file in --out-dir (the repo root, by
// convention) with one point appended per harness run, so the perf
// trajectory of a branch is a set of small diffable JSON files.
//
// `--check bench/baseline.json --tolerance-pct 25` exits nonzero when
// any bench's median exceeds its baseline by more than the tolerance
// plus the run's own IQR (noise-adjusted), or when a bench fails
// outright.  Benches whose line carries `"skipped":true` (e.g. the
// service-throughput speedup gate on small hosts) are excluded from
// the gate instead of polluting the trajectory.  Schemas and the
// refresh workflow: docs/BENCHMARKS.md.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "socet/obs/benchgate.hpp"
#include "socet/obs/traceanalyze.hpp"
#include "socet/util/table.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <dirent.h>
#include <fcntl.h>
#include <sys/resource.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

namespace {

using namespace socet;
using obs::bench::BenchLine;
using obs::bench::CheckOutcome;
using obs::bench::RunRecord;

struct Options {
  std::string bin_dir = "bench";
  std::string out_dir = ".";
  std::string check_path;
  std::string update_baseline_path;
  std::string label;
  std::vector<std::string> filter;  // bench names, `bench_` prefix optional
  unsigned repeat = 3;
  double tolerance_pct = 25.0;
  bool list_only = false;
  bool capture_traces = false;  ///< attribution re-run on gate failure
};

int usage() {
  std::fprintf(
      stderr,
      "usage: socet_bench [options]\n"
      "  --bin-dir DIR          directory with bench_* binaries (default\n"
      "                         ./bench, i.e. run from the build dir)\n"
      "  --filter a,b,c         only these benches (names with or without\n"
      "                         the bench_ prefix)\n"
      "  --repeat N             repeats per bench (default 3)\n"
      "  --out-dir DIR          where BENCH_<name>.json trajectory files\n"
      "                         go (default ., i.e. run from the repo root)\n"
      "  --label TEXT           label for this trajectory point (e.g. a\n"
      "                         git SHA)\n"
      "  --check FILE           compare against a baseline; exit 1 on a\n"
      "                         noise-adjusted regression or bench failure\n"
      "  --tolerance-pct P      regression tolerance for --check\n"
      "                         (default 25)\n"
      "  --update-baseline FILE write medians as the new baseline\n"
      "  --capture-traces       when the --check gate fails, re-run each\n"
      "                         regressed bench once with tracing on\n"
      "                         (TRACE_<name>.json in --out-dir) and print\n"
      "                         a per-stage attribution table naming the\n"
      "                         guilty stage\n"
      "  --list                 list discovered benches and exit\n");
  return 2;
}

bool parse_options(int argc, char** argv, Options* out) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--list") {
      out->list_only = true;
    } else if (arg == "--capture-traces") {
      out->capture_traces = true;
    } else if (arg == "--bin-dir") {
      const char* v = value();
      if (v == nullptr) return false;
      out->bin_dir = v;
    } else if (arg == "--out-dir") {
      const char* v = value();
      if (v == nullptr) return false;
      out->out_dir = v;
    } else if (arg == "--check") {
      const char* v = value();
      if (v == nullptr) return false;
      out->check_path = v;
    } else if (arg == "--update-baseline") {
      const char* v = value();
      if (v == nullptr) return false;
      out->update_baseline_path = v;
    } else if (arg == "--label") {
      const char* v = value();
      if (v == nullptr) return false;
      out->label = v;
    } else if (arg == "--filter") {
      const char* v = value();
      if (v == nullptr) return false;
      std::stringstream stream(v);
      std::string token;
      while (std::getline(stream, token, ',')) {
        if (!token.empty()) out->filter.push_back(token);
      }
    } else if (arg == "--repeat") {
      const char* v = value();
      if (v == nullptr) return false;
      out->repeat = static_cast<unsigned>(std::strtoul(v, nullptr, 10));
      if (out->repeat == 0) return false;
    } else if (arg == "--tolerance-pct") {
      const char* v = value();
      if (v == nullptr) return false;
      out->tolerance_pct = std::strtod(v, nullptr);
    } else {
      std::fprintf(stderr, "error: unknown option '%s'\n", arg.c_str());
      return false;
    }
  }
  return true;
}

/// `bench_foo` -> `foo`; filters accept either spelling.
std::string strip_prefix(const std::string& binary) {
  return binary.rfind("bench_", 0) == 0 ? binary.substr(6) : binary;
}

bool filter_matches(const Options& options, const std::string& binary) {
  if (options.filter.empty()) return true;
  const std::string bare = strip_prefix(binary);
  return std::find(options.filter.begin(), options.filter.end(), binary) !=
             options.filter.end() ||
         std::find(options.filter.begin(), options.filter.end(), bare) !=
             options.filter.end();
}

std::vector<std::string> discover_benches(const std::string& bin_dir) {
  std::vector<std::string> names;
  DIR* dir = ::opendir(bin_dir.c_str());
  if (dir == nullptr) return names;
  while (dirent* entry = ::readdir(dir)) {
    const std::string name = entry->d_name;
    if (name.rfind("bench_", 0) != 0) continue;
    const std::string path = bin_dir + "/" + name;
    struct stat st{};
    if (::stat(path.c_str(), &st) != 0 || !S_ISREG(st.st_mode)) continue;
    if (::access(path.c_str(), X_OK) != 0) continue;
    names.push_back(name);
  }
  ::closedir(dir);
  std::sort(names.begin(), names.end());
  return names;
}

struct ChildResult {
  int exit_code = -1;
  std::string stderr_text;
  std::int64_t max_rss_kb = 0;
  double utime_ms = 0;
  double stime_ms = 0;
};

/// Run one bench binary: stdout to /dev/null (the human tables are not
/// ours to parse), stderr through a pipe, rusage via wait4.  A
/// non-empty `trace_path` exports SOCET_BENCH_TRACE to the child so it
/// records spans and writes a Chrome trace there (bench/report.hpp).
bool run_child(const std::string& path, ChildResult* out,
               const std::string& trace_path = "") {
  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) return false;
  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(pipe_fds[0]);
    ::close(pipe_fds[1]);
    return false;
  }
  if (pid == 0) {
    ::close(pipe_fds[0]);
    const int devnull = ::open("/dev/null", O_WRONLY);
    if (devnull >= 0) ::dup2(devnull, STDOUT_FILENO);
    ::dup2(pipe_fds[1], STDERR_FILENO);
    ::close(pipe_fds[1]);
    if (!trace_path.empty()) {
      ::setenv("SOCET_BENCH_TRACE", trace_path.c_str(), 1);
    }
    ::execl(path.c_str(), path.c_str(), static_cast<char*>(nullptr));
    _exit(127);
  }
  ::close(pipe_fds[1]);
  out->stderr_text.clear();
  char buffer[4096];
  ssize_t got = 0;
  while ((got = ::read(pipe_fds[0], buffer, sizeof(buffer))) > 0) {
    out->stderr_text.append(buffer, static_cast<std::size_t>(got));
  }
  ::close(pipe_fds[0]);
  int status = 0;
  rusage usage{};
  if (::wait4(pid, &status, 0, &usage) != pid) return false;
  out->exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
#if defined(__APPLE__)
  out->max_rss_kb = usage.ru_maxrss / 1024;
#else
  out->max_rss_kb = usage.ru_maxrss;
#endif
  out->utime_ms = static_cast<double>(usage.ru_utime.tv_sec) * 1e3 +
                  static_cast<double>(usage.ru_utime.tv_usec) / 1e3;
  out->stime_ms = static_cast<double>(usage.ru_stime.tv_sec) * 1e3 +
                  static_cast<double>(usage.ru_stime.tv_usec) / 1e3;
  return true;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) return {};
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

bool write_file(const std::string& path, const std::string& text) {
  std::ofstream out(path);
  out << text;
  return out.good();
}

/// Run one bench --repeat times and fold the repeats into a RunRecord.
/// Returns false only when the bench never produced a parseable line.
bool measure_bench(const Options& options, const std::string& binary,
                   RunRecord* record, std::string* error) {
  const std::string path = options.bin_dir + "/" + binary;
  std::vector<double> wall_samples;
  std::vector<double> utimes;
  std::vector<double> stimes;
  *record = RunRecord();
  record->name = strip_prefix(binary);
  for (unsigned r = 0; r < options.repeat; ++r) {
    ChildResult child;
    if (!run_child(path, &child)) {
      *error = "failed to spawn " + path;
      return false;
    }
    BenchLine line;
    if (!obs::bench::parse_bench_line(child.stderr_text, &line, error)) {
      return false;
    }
    record->name = line.name;
    record->ok = line.ok && child.exit_code == 0;
    record->skipped = record->skipped || line.skipped;
    record->extra = line.extra;
    wall_samples.push_back(line.wall_ms);
    utimes.push_back(child.utime_ms);
    stimes.push_back(child.stime_ms);
    record->max_rss_kb = std::max(record->max_rss_kb, child.max_rss_kb);
    if (!record->ok) break;  // no point repeating a failing bench
  }
  record->wall_ms = obs::bench::summarize_repeats(wall_samples);
  record->utime_ms = obs::bench::summarize_repeats(utimes).median;
  record->stime_ms = obs::bench::summarize_repeats(stimes).median;
  return true;
}

/// --capture-traces: re-run one regressed bench with tracing on and
/// print a per-stage wall-time attribution table, so the gate names
/// the guilty stage instead of leaving a human to open the trace.
/// Diagnostic only — a failed re-run prints a note, never flips the
/// gate verdict (the regression already did that).
void attribute_regression(const Options& options, const std::string& name) {
  const std::string path = options.bin_dir + "/bench_" + name;
  const std::string trace_path = options.out_dir + "/TRACE_" + name + ".json";
  std::fprintf(stderr, "re-running bench_%s with tracing for attribution...\n",
               name.c_str());
  ChildResult child;
  if (!run_child(path, &child, trace_path)) {
    std::printf("attribution: could not re-run bench_%s\n", name.c_str());
    return;
  }
  obs::analyze::TraceData trace;
  std::string error;
  if (!obs::analyze::load_trace(read_file(trace_path), &trace, &error)) {
    std::printf("attribution: bench_%s trace unreadable: %s\n", name.c_str(),
                error.c_str());
    return;
  }
  const obs::analyze::Aggregate agg = obs::analyze::aggregate({trace});
  util::Table table({"stage", "spans", "total (ms)", "self (ms)", "share %"});
  double self_total = 0;
  for (const obs::analyze::NameStats& stage : agg.by_stage) {
    self_total += stage.self_us;
  }
  // by_stage is total-sorted; rank by self so a slow leaf beats the
  // root span that merely contains it (same reasoning as diff()).
  std::vector<obs::analyze::NameStats> stages = agg.by_stage;
  std::sort(stages.begin(), stages.end(),
            [](const obs::analyze::NameStats& a,
               const obs::analyze::NameStats& b) {
              if (a.self_us != b.self_us) return a.self_us > b.self_us;
              return a.name < b.name;
            });
  for (const obs::analyze::NameStats& stage : stages) {
    table.add_row(
        {stage.name, std::to_string(stage.count),
         util::Table::num(stage.total_us / 1e3, 2),
         util::Table::num(stage.self_us / 1e3, 2),
         util::Table::num(
             self_total <= 0 ? 0 : 100.0 * stage.self_us / self_total, 1)});
  }
  std::printf("\nper-stage attribution for bench_%s (trace: %s):\n%s",
              name.c_str(), trace_path.c_str(), table.to_text().c_str());
  if (!stages.empty()) {
    std::printf("guilty stage: %s (%s ms self, %s%% of traced time)\n",
                stages.front().name.c_str(),
                util::Table::num(stages.front().self_us / 1e3, 2).c_str(),
                util::Table::num(self_total <= 0 ? 0
                                                 : 100.0 *
                                                       stages.front().self_us /
                                                       self_total,
                                 1)
                    .c_str());
  }
}

const char* verdict_text(CheckOutcome::Verdict verdict) {
  switch (verdict) {
    case CheckOutcome::Verdict::kPass: return "pass";
    case CheckOutcome::Verdict::kRegression: return "REGRESSION";
    case CheckOutcome::Verdict::kFailed: return "FAILED";
    case CheckOutcome::Verdict::kSkipped: return "skipped";
    case CheckOutcome::Verdict::kNoBaseline: return "no-baseline";
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  if (!parse_options(argc, argv, &options)) return usage();

  const auto binaries = discover_benches(options.bin_dir);
  if (binaries.empty()) {
    std::fprintf(stderr, "error: no bench_* executables in '%s'\n",
                 options.bin_dir.c_str());
    return 2;
  }
  if (options.list_only) {
    for (const auto& binary : binaries) {
      if (filter_matches(options, binary)) std::printf("%s\n", binary.c_str());
    }
    return 0;
  }

  // Trajectory files land in out_dir; create it (one level) if absent
  // so `--out-dir artifacts` works on a fresh checkout.
  if (!options.out_dir.empty() && options.out_dir != ".") {
    (void)::mkdir(options.out_dir.c_str(), 0775);
  }

  std::vector<RunRecord> records;
  // Median of each bench's newest comparable trajectory point *before*
  // this run appends its own — feeds the gate's delta-vs-prev column.
  std::map<std::string, double> prev_medians;
  bool all_parsed = true;
  util::Table table({"bench", "wall med (ms)", "iqr", "min", "rss (MB)",
                     "cpu (ms)", "status"});
  for (const auto& binary : binaries) {
    if (!filter_matches(options, binary)) continue;
    std::fprintf(stderr, "running %s x%u...\n", binary.c_str(),
                 options.repeat);
    RunRecord record;
    std::string error;
    if (!measure_bench(options, binary, &record, &error)) {
      std::fprintf(stderr, "error: %s: %s\n", binary.c_str(), error.c_str());
      all_parsed = false;
      continue;
    }
    table.add_row(
        {record.name, util::Table::num(record.wall_ms.median, 2),
         util::Table::num(record.wall_ms.iqr(), 2),
         util::Table::num(record.wall_ms.min, 2),
         util::Table::num(static_cast<double>(record.max_rss_kb) / 1024.0, 1),
         util::Table::num(record.utime_ms + record.stime_ms, 1),
         record.skipped ? "skipped" : (record.ok ? "ok" : "FAIL")});

    const std::string trajectory_path =
        options.out_dir + "/BENCH_" + record.name + ".json";
    const std::string prior = read_file(trajectory_path);
    double prev_ms = 0;
    if (obs::bench::trajectory_last_median(prior, &prev_ms)) {
      prev_medians[record.name] = prev_ms;
    }
    const std::string updated =
        obs::bench::trajectory_json(prior, record, options.label);
    if (!write_file(trajectory_path, updated)) {
      std::fprintf(stderr, "error: cannot write '%s'\n",
                   trajectory_path.c_str());
      all_parsed = false;
    }
    records.push_back(std::move(record));
  }
  std::printf("%s", table.to_text().c_str());

  // Per-bench extra metrics (BenchReport::metric), e.g. the fault-sim
  // kernel speedup inside `scaling`: one compact line per bench so the
  // headline numbers are visible without opening the trajectory files.
  for (const RunRecord& record : records) {
    if (record.extra.empty()) continue;
    std::printf("%s:", record.name.c_str());
    for (const auto& [key, value] : record.extra) {
      std::printf(" %s=%s", key.c_str(), util::Table::num(value, 2).c_str());
    }
    std::printf("\n");
  }

  if (!options.update_baseline_path.empty()) {
    if (!write_file(options.update_baseline_path,
                    obs::bench::baseline_json(records))) {
      std::fprintf(stderr, "error: cannot write baseline '%s'\n",
                   options.update_baseline_path.c_str());
      return 1;
    }
    std::printf("baseline written to %s\n",
                options.update_baseline_path.c_str());
  }

  int status = all_parsed ? 0 : 1;
  for (const RunRecord& record : records) {
    if (!record.ok && !record.skipped) status = 1;
  }

  if (!options.check_path.empty()) {
    obs::bench::Baseline baseline;
    std::string error;
    if (!obs::bench::parse_baseline(read_file(options.check_path), &baseline,
                                    &error)) {
      std::fprintf(stderr, "error: %s: %s\n", options.check_path.c_str(),
                   error.c_str());
      return 2;
    }
    const auto outcomes = obs::bench::check_against_baseline(
        records, baseline, options.tolerance_pct);
    util::Table gate({"bench", "baseline (ms)", "measured (ms)",
                      "vs prev (ms)", "margin (ms)", "iqr allow (ms)",
                      "limit (ms)", "verdict"});
    for (const CheckOutcome& outcome : outcomes) {
      // Drift against the previous trajectory point: visible before it
      // accumulates into a baseline breach.  "-" = no comparable point.
      std::string vs_prev = "-";
      const auto prev = prev_medians.find(outcome.name);
      if (prev != prev_medians.end() &&
          outcome.verdict != CheckOutcome::Verdict::kSkipped) {
        const double delta = outcome.measured_ms - prev->second;
        vs_prev = (delta >= 0 ? "+" : "") + util::Table::num(delta, 2);
      }
      gate.add_row({outcome.name, util::Table::num(outcome.baseline_ms, 2),
                    util::Table::num(outcome.measured_ms, 2), vs_prev,
                    util::Table::num(outcome.margin_ms, 2),
                    util::Table::num(outcome.iqr_allowance_ms, 2),
                    util::Table::num(outcome.limit_ms, 2),
                    verdict_text(outcome.verdict)});
    }
    std::printf("\nregression gate (tolerance %.0f%% + IQR):\n%s",
                options.tolerance_pct, gate.to_text().c_str());
    if (obs::bench::has_regression(outcomes)) {
      std::printf("GATE FAILED\n");
      status = 1;
      if (options.capture_traces) {
        for (const CheckOutcome& outcome : outcomes) {
          if (outcome.verdict != CheckOutcome::Verdict::kRegression) continue;
          attribute_regression(options, outcome.name);
        }
      }
    } else {
      std::printf("gate passed\n");
    }
  }
  return status;
}
