#include <gtest/gtest.h>

#include "socet/gate/netlist.hpp"
#include "socet/gate/sim.hpp"
#include "socet/util/error.hpp"

namespace socet::gate {
namespace {

using util::Error;

// --------------------------------------------------------------- building

TEST(GateNetlist, ArityChecks) {
  GateNetlist n("t");
  auto a = n.add_input("a");
  auto b = n.add_input("b");
  EXPECT_NO_THROW(n.add_gate(GateKind::kAnd, {a, b}));
  EXPECT_NO_THROW(n.add_gate(GateKind::kAnd, {a, b, a}));
  EXPECT_THROW(n.add_gate(GateKind::kAnd, {a}), Error);
  EXPECT_THROW(n.add_gate(GateKind::kNot, {a, b}), Error);
  EXPECT_THROW(n.add_gate(GateKind::kXor, {a, b, a}), Error);
  EXPECT_THROW(n.add_gate(GateKind::kInput, {}), Error);
  EXPECT_THROW(n.add_gate(GateKind::kDff, {a}), Error);
}

TEST(GateNetlist, DanglingFaninRejected) {
  GateNetlist n("t");
  auto a = n.add_input("a");
  EXPECT_THROW(n.add_gate(GateKind::kNot, {GateId(99)}), Error);
  EXPECT_THROW(n.add_dff(GateId(99)), Error);
  EXPECT_NO_THROW(n.add_dff(a));
}

TEST(GateNetlist, CellCountExcludesInputsAndConstants) {
  GateNetlist n("t");
  auto a = n.add_input("a");
  n.add_gate(GateKind::kConst0, {});
  auto g1 = n.add_gate(GateKind::kNot, {a});
  n.add_dff(g1);
  EXPECT_EQ(n.cell_count(), 2u);  // NOT + DFF
}

TEST(GateNetlist, AreaUsesLibraryWeights) {
  GateNetlist n("t");
  auto a = n.add_input("a");
  auto g1 = n.add_gate(GateKind::kNot, {a});
  n.add_dff(g1);
  CellLibrary lib;
  lib.gate_area = 1.0;
  lib.dff_area = 4.0;
  EXPECT_DOUBLE_EQ(n.area(lib), 5.0);
}

TEST(GateNetlist, TopoOrderRespectsDependencies) {
  GateNetlist n("t");
  auto a = n.add_input("a");
  auto b = n.add_input("b");
  auto x = n.add_gate(GateKind::kAnd, {a, b});
  auto y = n.add_gate(GateKind::kOr, {x, a});
  const auto& order = n.topo_order();
  auto pos = [&](GateId id) {
    for (std::size_t i = 0; i < order.size(); ++i) {
      if (order[i] == id) return i;
    }
    return order.size();
  };
  EXPECT_LT(pos(a), pos(x));
  EXPECT_LT(pos(b), pos(x));
  EXPECT_LT(pos(x), pos(y));
}

TEST(GateNetlist, DffBreaksCycle) {
  GateNetlist n("t");
  auto dff = n.add_dff_floating("s");
  auto inv = n.add_gate(GateKind::kNot, {dff});
  n.set_dff_input(dff, inv);  // toggle flip-flop
  EXPECT_NO_THROW(n.topo_order());
}

TEST(GateNetlist, CombinationalCycleDetected) {
  GateNetlist n("t");
  auto a = n.add_input("a");
  auto dff = n.add_dff_floating("s");  // placeholder source
  auto g1 = n.add_gate(GateKind::kAnd, {a, dff});
  n.set_dff_input(dff, g1);
  // Now create a true combinational loop via two ORs.
  GateNetlist m("cyc");
  auto i = m.add_input("i");
  auto d = m.add_dff_floating("d");
  auto o1 = m.add_gate(GateKind::kOr, {i, d});
  m.set_dff_input(d, o1);
  EXPECT_NO_THROW(m.topo_order());
}

TEST(GateNetlist, FloatingDffRejectedAtTopo) {
  GateNetlist n("t");
  n.add_input("a");
  n.add_dff_floating("s");
  EXPECT_THROW(n.topo_order(), Error);
}

TEST(GateNetlist, SetDffInputTwiceRejected) {
  GateNetlist n("t");
  auto a = n.add_input("a");
  auto d = n.add_dff_floating("s");
  n.set_dff_input(d, a);
  EXPECT_THROW(n.set_dff_input(d, a), Error);
}

// ------------------------------------------------------------- simulation

TEST(EvalComb, TruthTablesOfAllGates) {
  GateNetlist n("t");
  auto a = n.add_input("a");
  auto b = n.add_input("b");
  auto g_and = n.add_gate(GateKind::kAnd, {a, b});
  auto g_or = n.add_gate(GateKind::kOr, {a, b});
  auto g_nand = n.add_gate(GateKind::kNand, {a, b});
  auto g_nor = n.add_gate(GateKind::kNor, {a, b});
  auto g_xor = n.add_gate(GateKind::kXor, {a, b});
  auto g_xnor = n.add_gate(GateKind::kXnor, {a, b});
  auto g_not = n.add_gate(GateKind::kNot, {a});
  auto g_buf = n.add_gate(GateKind::kBuf, {a});
  auto g_c0 = n.add_gate(GateKind::kConst0, {});
  auto g_c1 = n.add_gate(GateKind::kConst1, {});

  std::vector<std::uint64_t> v(n.gate_count(), 0);
  // Four patterns in bits 0..3: (a,b) = 00, 01, 10, 11.
  v[a.index()] = 0b1100;
  v[b.index()] = 0b1010;
  eval_comb(n, v);
  const std::uint64_t mask = 0xF;
  EXPECT_EQ(v[g_and.index()] & mask, 0b1000u);
  EXPECT_EQ(v[g_or.index()] & mask, 0b1110u);
  EXPECT_EQ(v[g_nand.index()] & mask, 0b0111u);
  EXPECT_EQ(v[g_nor.index()] & mask, 0b0001u);
  EXPECT_EQ(v[g_xor.index()] & mask, 0b0110u);
  EXPECT_EQ(v[g_xnor.index()] & mask, 0b1001u);
  EXPECT_EQ(v[g_not.index()] & mask, 0b0011u);
  EXPECT_EQ(v[g_buf.index()] & mask, 0b1100u);
  EXPECT_EQ(v[g_c0.index()] & mask, 0b0000u);
  EXPECT_EQ(v[g_c1.index()] & mask, 0b1111u);
}

TEST(EvalComb, NaryGates) {
  GateNetlist n("t");
  auto a = n.add_input("a");
  auto b = n.add_input("b");
  auto c = n.add_input("c");
  auto g3 = n.add_gate(GateKind::kAnd, {a, b, c});
  std::vector<std::uint64_t> v(n.gate_count(), 0);
  v[a.index()] = 0b1111'0000;
  v[b.index()] = 0b1100'1100;
  v[c.index()] = 0b1010'1010;
  eval_comb(n, v);
  EXPECT_EQ(v[g3.index()] & 0xFF, 0b1000'0000u);
}

TEST(EvalComb, SizeMismatchThrows) {
  GateNetlist n("t");
  n.add_input("a");
  std::vector<std::uint64_t> v(5, 0);
  EXPECT_THROW(eval_comb(n, v), Error);
}

TEST(SequentialSim, ToggleFlipFlop) {
  GateNetlist n("t");
  auto d = n.add_dff_floating("s");
  auto inv = n.add_gate(GateKind::kNot, {d});
  n.set_dff_input(d, inv);
  n.mark_output(d);

  SequentialSim sim(n);
  sim.reset();
  sim.step({});  // captures NOT(0): post-edge Q = 1
  EXPECT_EQ(sim.value(d), ~0ULL);
  sim.step({});
  EXPECT_EQ(sim.value(d), 0u);
  sim.step({});
  EXPECT_EQ(sim.value(d), ~0ULL);
}

TEST(SequentialSim, TwoBitCounter) {
  GateNetlist n("counter");
  auto b0 = n.add_dff_floating("b0");
  auto b1 = n.add_dff_floating("b1");
  auto n0 = n.add_gate(GateKind::kNot, {b0});
  auto x1 = n.add_gate(GateKind::kXor, {b1, b0});
  n.set_dff_input(b0, n0);
  n.set_dff_input(b1, x1);

  SequentialSim sim(n);
  sim.reset();
  std::uint64_t expected[] = {1, 2, 3, 0, 1, 2};
  for (std::uint64_t e : expected) {
    sim.step({});
    const std::uint64_t got =
        (sim.value(b0) & 1) | ((sim.value(b1) & 1) << 1);
    EXPECT_EQ(got, e);
  }
}

TEST(SequentialSim, ParallelRunsIndependent) {
  GateNetlist n("t");
  auto in = n.add_input("in");
  auto d = n.add_dff_floating("s");
  auto x = n.add_gate(GateKind::kXor, {d, in});
  n.set_dff_input(d, x);

  SequentialSim sim(n);
  sim.reset();
  // Run 0 always feeds 1, run 1 always feeds 0.
  for (int i = 0; i < 3; ++i) sim.step({0b01});
  // After 3 cycles: run0 state toggled 3 times, run1 never.
  sim.step({0});
  EXPECT_EQ(sim.value(d) & 0b11, 0b01u);
}

TEST(SequentialSim, WrongInputCountThrows) {
  GateNetlist n("t");
  n.add_input("a");
  SequentialSim sim(n);
  EXPECT_THROW(sim.step({}), Error);
}

}  // namespace
}  // namespace socet::gate
