#include <gtest/gtest.h>

#include "socet/soc/testprogram.hpp"
#include "socet/systems/systems.hpp"

namespace socet::soc {
namespace {

struct Fixture {
  systems::System system = systems::make_barcode_system();
  std::vector<unsigned> selection =
      std::vector<unsigned>(system.soc->cores().size(), 0);
  ChipTestPlan plan = plan_chip_test(*system.soc, selection);
  TestProgram program =
      assemble_test_program(*system.soc, selection, plan);
};

TEST(TestProgram, CoversEveryCore) {
  Fixture f;
  ASSERT_EQ(f.program.cores.size(), 3u);
  EXPECT_EQ(f.program.total_cycles, f.plan.total_tat);
  for (std::size_t c = 0; c < f.program.cores.size(); ++c) {
    EXPECT_EQ(f.program.cores[c].total_cycles, f.plan.cores[c].tat);
    EXPECT_EQ(f.program.cores[c].period, f.plan.cores[c].period);
  }
}

TEST(TestProgram, FrameEventsSortedAndBounded) {
  Fixture f;
  for (const auto& cp : f.program.cores) {
    unsigned previous = 0;
    bool has_capture = false;
    for (const auto& ev : cp.frame) {
      EXPECT_GE(ev.cycle, previous);
      previous = ev.cycle;
      if (ev.kind == TestProgramEvent::Kind::kCapture) {
        has_capture = true;
        EXPECT_EQ(ev.cycle, cp.period - 1)
            << "capture closes the per-vector frame";
      }
      if (ev.kind == TestProgramEvent::Kind::kDrivePi ||
          ev.kind == TestProgramEvent::Kind::kTransfer) {
        EXPECT_LT(ev.cycle, cp.period);
      }
    }
    EXPECT_TRUE(has_capture);
  }
}

TEST(TestProgram, EveryCutInputDriven) {
  Fixture f;
  for (std::size_t c = 0; c < f.program.cores.size(); ++c) {
    const auto& cut = f.system.soc->core(f.program.cores[c].core);
    for (rtl::PortId in : cut.netlist().input_ports()) {
      bool driven = false;
      for (const auto& ev : f.program.cores[c].frame) {
        driven |= ev.kind == TestProgramEvent::Kind::kDrivePi &&
                  ev.target == in;
      }
      EXPECT_TRUE(driven) << cut.name() << "."
                          << cut.netlist().port(in).name;
    }
  }
}

TEST(TestProgram, EveryCutOutputObserved) {
  Fixture f;
  for (std::size_t c = 0; c < f.program.cores.size(); ++c) {
    const auto& cut = f.system.soc->core(f.program.cores[c].core);
    for (rtl::PortId out : cut.netlist().output_ports()) {
      bool observed = false;
      for (const auto& ev : f.program.cores[c].frame) {
        observed |= ev.kind == TestProgramEvent::Kind::kObservePo &&
                    ev.target == out;
      }
      EXPECT_TRUE(observed) << cut.name() << "."
                            << cut.netlist().port(out).name;
    }
  }
}

TEST(TestProgram, TransfersNameIntermediateCores) {
  // The DISPLAY's justification runs through PREPROCESSOR and CPU: both
  // must show up as transfer (clock-run) events in its frame.
  Fixture f;
  const auto disp = f.system.soc->find_core("DISPLAY");
  const auto pre = f.system.soc->find_core("PREPROCESSOR");
  const auto cpu = f.system.soc->find_core("CPU");
  bool saw_pre = false;
  bool saw_cpu = false;
  for (const auto& ev : f.program.cores[disp].frame) {
    if (ev.kind != TestProgramEvent::Kind::kTransfer) continue;
    saw_pre |= ev.core == pre;
    saw_cpu |= ev.core == cpu;
  }
  EXPECT_TRUE(saw_pre);
  EXPECT_TRUE(saw_cpu);
}

TEST(TestProgram, DescriptionMentionsKeyEvents) {
  Fixture f;
  const auto text = describe_test_program(*f.system.soc, f.program);
  EXPECT_NE(text.find("chip test program"), std::string::npos);
  EXPECT_NE(text.find("drive NUM"), std::string::npos);
  EXPECT_NE(text.find("capture into DISPLAY scan chains"),
            std::string::npos);
  EXPECT_NE(text.find("strobe response of Address"), std::string::npos)
      << "the PREPROCESSOR.Address response (via its system mux) must be "
         "strobed";
}

}  // namespace
}  // namespace socet::soc
