#include <gtest/gtest.h>

#include "socet/transparency/rcg.hpp"
#include "socet/transparency/search.hpp"
#include "socet/transparency/versions.hpp"

namespace socet::transparency {
namespace {

using rtl::FuKind;
using rtl::Netlist;
using rtl::NodeKind;
using rtl::PortId;

/// A CPU-like core reproducing the split-node structure of the paper's
/// Figure 7:
///
///   Data -> IR (O-split: high nibble vs low nibble)
///     IR(7-4) -> MARpage -> AHigh            (short branch)
///     IR(7-4) -> SR -> AC(7-4)   \  AC is C-split; branches reconverge
///     IR(3-0) -> AC(3-0)         /  at the O-split IR
///   AC -> PCoff -> MARoff -> ALow             (long branch)
///   Data -> MARoff via mux M                  (non-HSCAN shortcut, V2)
struct MiniCpu {
  Netlist n{"minicpu"};
  PortId data, alow, ahigh;

  MiniCpu() {
    data = n.add_input("Data", 8);
    alow = n.add_output("ALow", 8);
    ahigh = n.add_output("AHigh", 4);
    auto ir = n.add_register("IR", 8);
    auto sr = n.add_register("SR", 4);
    auto ac = n.add_register("AC", 8);
    auto pcoff = n.add_register("PCoff", 8);
    auto maroff = n.add_register("MARoff", 8);
    auto marpage = n.add_register("MARpage", 4);

    auto mux_edge = [&](rtl::PinRef from, unsigned from_lo, rtl::PinRef to,
                        unsigned to_lo, unsigned width, const std::string& nm) {
      auto m = n.add_mux(nm, width, 2);
      auto k = n.add_constant(nm + "k", util::BitVector(width, 0));
      n.connect(from, from_lo, n.mux_in(m, 0), 0, width);
      n.connect(n.const_out(k), n.mux_in(m, 1));
      n.connect(n.mux_out(m), 0, to, to_lo, width);
    };

    mux_edge(n.pin(data), 0, n.reg_d(ir), 0, 8, "m_ir");
    mux_edge(n.reg_q(ir), 4, n.reg_d(marpage), 0, 4, "m_mp");
    mux_edge(n.reg_q(ir), 4, n.reg_d(sr), 0, 4, "m_sr");
    mux_edge(n.reg_q(ir), 0, n.reg_d(ac), 0, 4, "m_acl");
    mux_edge(n.reg_q(sr), 0, n.reg_d(ac), 4, 4, "m_ach");
    mux_edge(n.reg_q(ac), 0, n.reg_d(pcoff), 0, 8, "m_pc");
    // MARoff: mux M with two sources - PCoff (scan path) and Data (the
    // paper's Version-2 shortcut).
    auto m = n.add_mux("M", 8, 2);
    n.connect(n.reg_q(pcoff), n.mux_in(m, 0));
    n.connect(n.pin(data), n.mux_in(m, 1));
    n.connect(n.mux_out(m), n.reg_d(maroff));

    n.connect(n.reg_q(maroff), n.pin(alow));
    n.connect(n.reg_q(marpage), n.pin(ahigh));
    n.validate();
  }

  /// Hand-marked HSCAN configuration: everything except the Data->MARoff
  /// shortcut lies on scan chains.
  hscan::HscanConfig hscan_config() const {
    hscan::HscanConfig config;
    auto reg = [&](const char* name) {
      return rtl::register_node(n.find_register(name));
    };
    auto port = [&](PortId id) { return rtl::port_node(n, id); };
    config.reused_edges = {
        {port(data), reg("IR")},       {reg("IR"), reg("MARpage")},
        {reg("IR"), reg("SR")},        {reg("IR"), reg("AC")},
        {reg("SR"), reg("AC")},        {reg("AC"), reg("PCoff")},
        {reg("PCoff"), reg("MARoff")}, {reg("MARoff"), port(alow)},
        {reg("MARpage"), port(ahigh)},
    };
    config.max_depth = 5;
    return config;
  }
};

// -------------------------------------------------------------------- RCG

TEST(Rcg, NodesCoverPortsAndRegisters) {
  MiniCpu cpu;
  Rcg rcg(cpu.n);
  // 1 input + 2 outputs + 6 registers.
  EXPECT_EQ(rcg.nodes().size(), 9u);
  EXPECT_EQ(rcg.input_nodes().size(), 1u);
  EXPECT_EQ(rcg.output_nodes().size(), 2u);
}

TEST(Rcg, DetectsSplitNodes) {
  MiniCpu cpu;
  Rcg rcg(cpu.n);
  const auto& ir = rcg.node(rcg.index_of(
      rtl::register_node(cpu.n.find_register("IR"))));
  EXPECT_TRUE(ir.o_split) << "IR fans out in disjoint nibbles";
  const auto& ac = rcg.node(rcg.index_of(
      rtl::register_node(cpu.n.find_register("AC"))));
  EXPECT_TRUE(ac.c_split) << "AC nibbles come from different sources";
  EXPECT_FALSE(ac.o_split);
  const auto& sr = rcg.node(rcg.index_of(
      rtl::register_node(cpu.n.find_register("SR"))));
  EXPECT_FALSE(sr.c_split);
}

TEST(Rcg, HscanEdgesMarked) {
  MiniCpu cpu;
  auto hs = cpu.hscan_config();
  Rcg rcg(cpu.n, &hs);
  unsigned hscan_edges = 0;
  unsigned shortcut_edges = 0;
  const auto data_node = rcg.index_of(rtl::port_node(cpu.n, cpu.data));
  const auto maroff_node =
      rcg.index_of(rtl::register_node(cpu.n.find_register("MARoff")));
  for (const auto& edge : rcg.edges()) {
    if (edge.hscan) ++hscan_edges;
    if (edge.src == data_node && edge.dst == maroff_node) {
      ++shortcut_edges;
      EXPECT_FALSE(edge.hscan) << "the mux-M shortcut is not a scan edge";
    }
  }
  EXPECT_EQ(hscan_edges, 9u);
  EXPECT_EQ(shortcut_edges, 1u);
}

// ----------------------------------------------------------------- search

TEST(Search, PropagationBranchesAtOSplit) {
  MiniCpu cpu;
  auto hs = cpu.hscan_config();
  Rcg rcg(cpu.n, &hs);
  auto result = find_propagation(rcg, rcg.index_of(rtl::port_node(cpu.n, cpu.data)),
                                 EdgeClass::kHscanOnly, {});
  ASSERT_TRUE(result.found);
  // Long branch: Data->IR->AC->PCoff->MARoff = 4 loads (the (3-0) slice
  // takes the direct IR->AC edge); short branch Data->IR->MARpage = 2.
  // Latency is the longer one.
  EXPECT_EQ(result.latency, 4u);
  // Both outputs appear among used edges' destinations.
  bool saw_alow = false, saw_ahigh = false;
  for (auto e : result.edges) {
    const auto& dst = rcg.node(rcg.edge(e).dst).ref;
    if (dst.kind == NodeKind::kOutputPort) {
      if (rcg.node_name(rcg.edge(e).dst) == "ALow") saw_alow = true;
      if (rcg.node_name(rcg.edge(e).dst) == "AHigh") saw_ahigh = true;
    }
  }
  EXPECT_TRUE(saw_alow);
  EXPECT_TRUE(saw_ahigh);
  // The shorter parallel branches need balancing freezes.
  EXPECT_GE(result.freeze_points, 1u);
}

TEST(Search, JustificationReconvergesAtOSplit) {
  MiniCpu cpu;
  auto hs = cpu.hscan_config();
  Rcg rcg(cpu.n, &hs);
  auto result = find_justification(
      rcg, rcg.index_of(rtl::port_node(cpu.n, cpu.alow)),
      EdgeClass::kHscanOnly, {});
  ASSERT_TRUE(result.found);
  // MARoff<-PCoff<-AC<-{IR | SR<-IR}<-Data: the SR detour dominates: 5.
  EXPECT_EQ(result.latency, 5u);
  // AC's two fanin branches are unbalanced by one cycle.
  EXPECT_GE(result.freeze_points, 1u);
  // Reconvergence: the Data->IR edge is shared, so it appears once.
  unsigned data_ir = 0;
  const auto data_node = rcg.index_of(rtl::port_node(cpu.n, cpu.data));
  for (auto e : result.edges) {
    if (rcg.edge(e).src == data_node &&
        rcg.node_name(rcg.edge(e).dst) == "IR") {
      ++data_ir;
    }
  }
  EXPECT_EQ(data_ir, 1u);
}

TEST(Search, AllEdgesFindShortcut) {
  MiniCpu cpu;
  auto hs = cpu.hscan_config();
  Rcg rcg(cpu.n, &hs);
  auto result = find_justification(
      rcg, rcg.index_of(rtl::port_node(cpu.n, cpu.alow)),
      EdgeClass::kAllExisting, {});
  ASSERT_TRUE(result.found);
  EXPECT_EQ(result.latency, 1u) << "mux-M shortcut gives one-cycle latency";
}

TEST(Search, ExcludedEdgesForceAlternative) {
  MiniCpu cpu;
  auto hs = cpu.hscan_config();
  Rcg rcg(cpu.n, &hs);
  // Exclude the shortcut: all-edges search must fall back to the chain.
  std::set<std::uint32_t> excluded;
  const auto data_node = rcg.index_of(rtl::port_node(cpu.n, cpu.data));
  for (std::uint32_t e = 0; e < rcg.edges().size(); ++e) {
    if (rcg.edge(e).src == data_node &&
        rcg.node_name(rcg.edge(e).dst) == "MARoff") {
      excluded.insert(e);
    }
  }
  auto result = find_justification(
      rcg, rcg.index_of(rtl::port_node(cpu.n, cpu.alow)),
      EdgeClass::kAllExisting, excluded);
  ASSERT_TRUE(result.found);
  EXPECT_EQ(result.latency, 5u);
}

TEST(Search, FailsWhenNoPathExists) {
  Netlist n("island");
  auto in = n.add_input("I", 4);
  auto out = n.add_output("O", 4);
  auto r = n.add_register("R", 4);
  // R drives the output but nothing drives R from I.
  n.connect(n.reg_q(r), n.pin(out));
  auto add = n.add_fu("A", FuKind::kAdd, 4, 2);
  n.connect(n.pin(in), n.fu_in(add, 0));
  n.connect(n.reg_q(r), n.fu_in(add, 1));
  n.connect(n.fu_out(add), n.reg_d(r));

  Rcg rcg(n);
  auto prop = find_propagation(rcg, rcg.index_of(rtl::port_node(n, in)),
                               EdgeClass::kAllExisting, {});
  EXPECT_FALSE(prop.found);
}

// --------------------------------------------------------------- versions

TEST(Versions, StandardMenuTradesLatencyForArea) {
  MiniCpu cpu;
  auto hs = cpu.hscan_config();
  Rcg rcg(cpu.n, &hs);
  auto versions = standard_versions(rcg);
  ASSERT_EQ(versions.size(), 3u);

  // Areas strictly increase along the menu.
  EXPECT_LT(versions[0].extra_cells, versions[1].extra_cells);
  EXPECT_LT(versions[1].extra_cells, versions[2].extra_cells);

  // V1 (HSCAN only): Data->ALow takes the long chain (propagation finds
  // the 4-cycle route; justification's SR detour costs 5, min wins).
  auto v1 = versions[0].latency(cpu.data, cpu.alow);
  ASSERT_TRUE(v1.has_value());
  EXPECT_EQ(*v1, 4u);

  // V2 recruits the mux-M shortcut: latency 1.
  auto v2 = versions[1].latency(cpu.data, cpu.alow);
  ASSERT_TRUE(v2.has_value());
  EXPECT_EQ(*v2, 1u);

  // V3 forces every pair to 1.
  for (const auto& edge : versions[2].edges) {
    EXPECT_EQ(edge.latency, 1u);
  }
}

TEST(Versions, SerialGroupsSequentializeSharedLogic) {
  MiniCpu cpu;
  auto hs = cpu.hscan_config();
  Rcg rcg(cpu.n, &hs);
  auto v1 = make_version(rcg, VersionPolicy{"V1", true, true, false});
  // Data->ALow (5) and Data->AHigh (2) share the Data->IR edge, so the
  // serialized total is their sum.
  auto lo = v1.latency(cpu.data, cpu.alow);
  auto hi = v1.latency(cpu.data, cpu.ahigh);
  ASSERT_TRUE(lo && hi);
  EXPECT_EQ(v1.total_latency_from(cpu.data), *lo + *hi);
}

TEST(Versions, TransMuxFallbackCoversUnreachableOutput) {
  Netlist n("unreach");
  auto in = n.add_input("I", 8);
  auto out = n.add_output("O", 8);
  auto r = n.add_register("R", 8);
  n.connect(n.pin(in), n.reg_d(r));
  // Output driven only by an adder: no existing transparency path.
  auto add = n.add_fu("A", FuKind::kAdd, 8, 2);
  n.connect(n.reg_q(r), n.fu_in(add, 0));
  n.connect(n.pin(in), n.fu_in(add, 1));
  n.connect(n.fu_out(add), n.pin(out));

  Rcg rcg(n);
  auto version = make_version(rcg, VersionPolicy{"V1", true, true, false});
  auto latency = version.latency(in, out);
  ASSERT_TRUE(latency.has_value()) << "fallback mux must create the pair";
  EXPECT_EQ(*latency, 1u);
  EXPECT_GT(version.extra_cells, 0u);
}

TEST(Versions, ControlBypassIsCheap) {
  Netlist n("ctrl");
  auto in = n.add_input("GO", 1, rtl::PortKind::kControl);
  auto out = n.add_output("DONE", 1, rtl::PortKind::kControl);
  auto r = n.add_register("S", 1);
  n.connect(n.pin(in), n.reg_d(r));
  auto cloud = n.add_random_logic("FSM", 1, 1, 20, 5);
  n.connect(n.reg_q(r), n.fu_in(cloud, 0));
  n.connect(n.fu_out(cloud), n.pin(out));

  Rcg rcg(n);
  TransparencyCostModel cost;
  auto version = make_version(rcg, VersionPolicy{"V1", true, true, false}, cost);
  ASSERT_TRUE(version.latency(in, out).has_value());
  // One-bit bypass plus select driver; nothing width-proportional.
  EXPECT_LE(version.extra_cells,
            cost.control_bypass_per_bit + cost.trans_mux_control +
                cost.trans_mux_per_bit + cost.trans_mux_control);
}

TEST(Versions, DeterministicConstruction) {
  MiniCpu cpu;
  auto hs = cpu.hscan_config();
  Rcg rcg(cpu.n, &hs);
  auto a = standard_versions(rcg);
  auto b = standard_versions(rcg);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].extra_cells, b[i].extra_cells);
    ASSERT_EQ(a[i].edges.size(), b[i].edges.size());
    for (std::size_t e = 0; e < a[i].edges.size(); ++e) {
      EXPECT_EQ(a[i].edges[e].latency, b[i].edges[e].latency);
    }
  }
}

}  // namespace
}  // namespace socet::transparency
