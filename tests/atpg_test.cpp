#include <gtest/gtest.h>

#include "socet/atpg/atpg.hpp"
#include "socet/atpg/podem.hpp"
#include "socet/rtl/netlist.hpp"
#include "socet/synth/elaborate.hpp"

namespace socet::atpg {
namespace {

using faultsim::Fault;
using faultsim::FaultStatus;
using gate::GateId;
using gate::GateKind;
using gate::GateNetlist;

// ------------------------------------------------------------------ PODEM

TEST(Podem, GeneratesTestForAndOutputFault) {
  GateNetlist n("and2");
  auto a = n.add_input("a");
  auto b = n.add_input("b");
  auto z = n.add_gate(GateKind::kAnd, {a, b}, "z");
  n.mark_output(z);

  auto r = podem(n, Fault{z, -1, false});
  ASSERT_EQ(r.outcome, PodemResult::Outcome::kFound);
  // s-a-0 at an AND output needs both inputs at 1.
  EXPECT_TRUE(r.pattern.pi.get(0));
  EXPECT_TRUE(r.pattern.pi.get(1));
}

TEST(Podem, GeneratesTestThroughReconvergence) {
  // z = (a AND b) OR (a AND c): test b-path fault with c blocking.
  GateNetlist n("rc");
  auto a = n.add_input("a");
  auto b = n.add_input("b");
  auto c = n.add_input("c");
  auto g1 = n.add_gate(GateKind::kAnd, {a, b}, "g1");
  auto g2 = n.add_gate(GateKind::kAnd, {a, c}, "g2");
  auto z = n.add_gate(GateKind::kOr, {g1, g2}, "z");
  n.mark_output(z);

  auto r = podem(n, Fault{g1, -1, false});
  ASSERT_EQ(r.outcome, PodemResult::Outcome::kFound);
  // Needs a=b=1 (activate) and c=0 (propagate past g2).
  EXPECT_TRUE(r.pattern.pi.get(0));
  EXPECT_TRUE(r.pattern.pi.get(1));
  EXPECT_FALSE(r.pattern.pi.get(2));
}

TEST(Podem, ProvesRedundantFaultUntestable) {
  // z = a OR (a AND b): AND output s-a-0 is redundant.
  GateNetlist n("red");
  auto a = n.add_input("a");
  auto b = n.add_input("b");
  auto g1 = n.add_gate(GateKind::kAnd, {a, b}, "g1");
  auto z = n.add_gate(GateKind::kOr, {a, g1}, "z");
  n.mark_output(z);

  auto r = podem(n, Fault{g1, -1, false});
  EXPECT_EQ(r.outcome, PodemResult::Outcome::kUntestable);
}

TEST(Podem, InputPinFault) {
  GateNetlist n("pin");
  auto a = n.add_input("a");
  auto b = n.add_input("b");
  auto z = n.add_gate(GateKind::kXor, {a, b}, "z");
  n.mark_output(z);

  auto r = podem(n, Fault{z, 0, true});  // pin a of XOR stuck at 1
  ASSERT_EQ(r.outcome, PodemResult::Outcome::kFound);
  EXPECT_FALSE(r.pattern.pi.get(0));  // a must be 0 to excite
}

TEST(Podem, UsesScanStateAsPseudoInputs) {
  // Output only depends on flip-flop contents: PODEM must assign the PPI.
  GateNetlist n("ff");
  auto d = n.add_dff_floating("q");
  auto a = n.add_input("a");
  auto z = n.add_gate(GateKind::kAnd, {a, d}, "z");
  n.set_dff_input(d, z);
  n.mark_output(z);

  auto r = podem(n, Fault{z, -1, false});
  ASSERT_EQ(r.outcome, PodemResult::Outcome::kFound);
  EXPECT_TRUE(r.pattern.pi.get(0));
  EXPECT_TRUE(r.pattern.ppi.get(0));
}

TEST(Podem, ObservesAtFlipFlopDPin) {
  // Fault cone ends at a DFF only (no PO): must still be testable.
  GateNetlist n("ppo");
  auto a = n.add_input("a");
  auto b = n.add_input("b");
  auto g = n.add_gate(GateKind::kOr, {a, b}, "g");
  auto d = n.add_dff_floating("q");
  n.set_dff_input(d, g);

  auto r = podem(n, Fault{g, -1, true});
  ASSERT_EQ(r.outcome, PodemResult::Outcome::kFound);
  EXPECT_FALSE(r.pattern.pi.get(0));
  EXPECT_FALSE(r.pattern.pi.get(1));
}

TEST(Podem, XorChainParityCircuit) {
  GateNetlist n("parity");
  std::vector<GateId> ins;
  for (int i = 0; i < 6; ++i) ins.push_back(n.add_input("i"));
  GateId acc = ins[0];
  for (int i = 1; i < 6; ++i) {
    acc = n.add_gate(GateKind::kXor, {acc, ins[i]}, "x");
  }
  n.mark_output(acc);

  for (const Fault f : {Fault{acc, -1, false}, Fault{ins[3], -1, true}}) {
    auto r = podem(n, f);
    EXPECT_EQ(r.outcome, PodemResult::Outcome::kFound)
        << describe_fault(n, f);
  }
}

// ------------------------------------------------------------- ATPG driver

TEST(Atpg, FullCoverageOnIrredundantCircuit) {
  GateNetlist n("c");
  auto a = n.add_input("a");
  auto b = n.add_input("b");
  auto c = n.add_input("c");
  auto g1 = n.add_gate(GateKind::kNand, {a, b}, "g1");
  auto g2 = n.add_gate(GateKind::kNor, {b, c}, "g2");
  auto z = n.add_gate(GateKind::kXor, {g1, g2}, "z");
  n.mark_output(z);

  auto result = generate_tests(n, {.random_patterns = 8, .seed = 3});
  auto cov = result.coverage();
  EXPECT_DOUBLE_EQ(cov.fault_coverage(), 100.0);
  EXPECT_DOUBLE_EQ(cov.test_efficiency(), 100.0);
  EXPECT_GT(result.vector_count(), 0u);
}

TEST(Atpg, RedundantFaultRaisesEfficiencyNotCoverage) {
  GateNetlist n("red");
  auto a = n.add_input("a");
  auto b = n.add_input("b");
  auto g1 = n.add_gate(GateKind::kAnd, {a, b}, "g1");
  auto z = n.add_gate(GateKind::kOr, {a, g1}, "z");
  n.mark_output(z);

  auto result = generate_tests(n, {.random_patterns = 8, .seed = 3});
  auto cov = result.coverage();
  EXPECT_LT(cov.fault_coverage(), 100.0);
  EXPECT_DOUBLE_EQ(cov.test_efficiency(), 100.0);
  EXPECT_GT(cov.untestable, 0u);
}

TEST(Atpg, GradePatternsMatchesGeneratedCoverage) {
  GateNetlist n("c");
  auto a = n.add_input("a");
  auto b = n.add_input("b");
  auto z = n.add_gate(GateKind::kXor, {a, b}, "z");
  n.mark_output(z);

  auto result = generate_tests(n, {.random_patterns = 4, .seed = 9});
  auto graded = grade_patterns(n, result.patterns);
  EXPECT_EQ(graded.detected, result.coverage().detected);
}

TEST(Atpg, ElaboratedRtlCoreReachesHighCoverage) {
  // A small datapath core: register + adder + mux, full-scan view.
  rtl::Netlist core("mini");
  auto in = core.add_input("IN", 4);
  auto out = core.add_output("OUT", 4);
  auto acc = core.add_register("ACC", 4);
  auto ld = core.add_input("LD", 1, rtl::PortKind::kControl);
  auto add = core.add_fu("ADD", rtl::FuKind::kAdd, 4, 2);
  auto m = core.add_mux("M", 4, 2);
  auto sel = core.add_input("SEL", 1, rtl::PortKind::kControl);
  core.connect(core.pin(in), core.fu_in(add, 0));
  core.connect(core.reg_q(acc), core.fu_in(add, 1));
  core.connect(core.fu_out(add), core.mux_in(m, 0));
  core.connect(core.pin(in), core.mux_in(m, 1));
  core.connect(core.pin(sel), core.mux_select(m));
  core.connect(core.mux_out(m), core.reg_d(acc));
  core.connect(core.pin(ld), core.reg_load(acc));
  core.connect(core.reg_q(acc), core.pin(out));
  core.validate();

  auto elab = synth::elaborate(core);
  auto result = generate_tests(elab.gates, {.random_patterns = 32, .seed = 1});
  auto cov = result.coverage();
  EXPECT_GT(cov.fault_coverage(), 95.0);
  EXPECT_GT(cov.test_efficiency(), 99.0);
}

TEST(Atpg, DeterministicAcrossRuns) {
  GateNetlist n("c");
  auto a = n.add_input("a");
  auto b = n.add_input("b");
  auto z = n.add_gate(GateKind::kNand, {a, b}, "z");
  n.mark_output(z);
  auto r1 = generate_tests(n, {.seed = 5});
  auto r2 = generate_tests(n, {.seed = 5});
  EXPECT_EQ(r1.vector_count(), r2.vector_count());
  for (std::size_t i = 0; i < r1.patterns.size(); ++i) {
    EXPECT_EQ(r1.patterns[i].pi, r2.patterns[i].pi);
  }
}

// --------------------------------------------------- sequential baselines

TEST(Atpg, SequentialCoverageIsLowWithoutDft) {
  // Deep counter: random functional vectors reach little of the state
  // space, so coverage stays far below scan-based testing.
  rtl::Netlist core("ctr");
  auto en = core.add_input("EN", 1, rtl::PortKind::kControl);
  auto out = core.add_output("OUT", 1);
  auto cnt = core.add_register("CNT", 12);
  auto inc = core.add_fu("INC", rtl::FuKind::kIncrement, 12, 1);
  auto top = core.add_fu("TOP", rtl::FuKind::kEqual, 12, 2);
  auto k = core.add_constant("KMAX", util::BitVector(12, 0xFFF));
  core.connect(core.reg_q(cnt), core.fu_in(inc, 0));
  core.connect(core.fu_out(inc), core.reg_d(cnt));
  core.connect(core.pin(en), core.reg_load(cnt));
  core.connect(core.reg_q(cnt), core.fu_in(top, 0));
  core.connect(core.const_out(k), core.fu_in(top, 1));
  core.connect(core.fu_out(top), core.pin(out));

  auto elab = synth::elaborate(core);
  auto seq = sequential_coverage(elab.gates, 64, 7);
  auto scan = generate_tests(elab.gates, {.random_patterns = 32}).coverage();
  EXPECT_LT(seq.fault_coverage(), scan.fault_coverage());
  EXPECT_LT(seq.fault_coverage(), 60.0);
}

TEST(Atpg, RandomSequenceShapeAndDeterminism) {
  GateNetlist n("c");
  n.add_input("a");
  n.add_input("b");
  auto s1 = random_sequence(n, 10, 3);
  auto s2 = random_sequence(n, 10, 3);
  ASSERT_EQ(s1.size(), 10u);
  EXPECT_EQ(s1[0].width(), 2u);
  for (std::size_t i = 0; i < 10; ++i) EXPECT_EQ(s1[i], s2[i]);
}

}  // namespace
}  // namespace socet::atpg
