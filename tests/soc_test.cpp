#include <gtest/gtest.h>

#include "socet/soc/ccg.hpp"
#include "socet/soc/schedule.hpp"
#include "socet/soc/soc.hpp"

namespace socet::soc {
namespace {

using rtl::FuKind;
using rtl::Netlist;

/// A trivially transparent pass-through core: IN -> R -> OUT, latency 1.
rtl::Netlist make_pass_core(const std::string& name, unsigned width) {
  Netlist n(name);
  auto in = n.add_input("IN", width);
  auto out = n.add_output("OUT", width);
  auto r = n.add_register("R", width);
  auto m = n.add_mux("M", width, 2);
  auto k = n.add_constant("K", util::BitVector(width, 0));
  n.connect(n.pin(in), n.mux_in(m, 0));
  n.connect(n.const_out(k), n.mux_in(m, 1));
  n.connect(n.mux_out(m), n.reg_d(r));
  n.connect(n.reg_q(r), n.pin(out));
  return n;
}

/// A slower pass-through: IN -> R1 -> R2 -> R3 -> OUT, latency 3.
rtl::Netlist make_slow_core(const std::string& name, unsigned width) {
  Netlist n(name);
  auto in = n.add_input("IN", width);
  auto out = n.add_output("OUT", width);
  auto r1 = n.add_register("R1", width);
  auto r2 = n.add_register("R2", width);
  auto r3 = n.add_register("R3", width);
  auto m = n.add_mux("M", width, 2);
  auto k = n.add_constant("K", util::BitVector(width, 0));
  n.connect(n.pin(in), n.mux_in(m, 0));
  n.connect(n.const_out(k), n.mux_in(m, 1));
  n.connect(n.mux_out(m), n.reg_d(r1));
  n.connect(n.reg_q(r1), n.reg_d(r2));
  n.connect(n.reg_q(r2), n.reg_d(r3));
  n.connect(n.reg_q(r3), n.pin(out));
  return n;
}

struct TwoCoreChip {
  core::Core a = core::Core::prepare(make_pass_core("A", 8));
  core::Core b = core::Core::prepare(make_pass_core("B", 8));
  Soc soc{"chip"};

  TwoCoreChip() {
    a.set_scan_vectors(10);
    b.set_scan_vectors(20);
    auto ca = soc.add_core(&a);
    auto cb = soc.add_core(&b);
    auto pi = soc.add_pi("PI", 8);
    auto po = soc.add_po("PO", 8);
    soc.connect(pi, ca, "IN");
    soc.connect(ca, "OUT", cb, "IN");
    soc.connect(cb, "OUT", po);
    soc.validate();
  }
};

// -------------------------------------------------------------------- Soc

TEST(Soc, WidthMismatchCaughtAtValidate) {
  core::Core a = core::Core::prepare(make_pass_core("A", 8));
  Soc soc("bad");
  auto ca = soc.add_core(&a);
  auto narrow = soc.add_pi("N", 4);
  soc.connect(narrow, ca, "IN");
  EXPECT_THROW(soc.validate(), util::Error);
}

TEST(Soc, DoubleDriveCaught) {
  core::Core a = core::Core::prepare(make_pass_core("A", 8));
  Soc soc("bad");
  auto ca = soc.add_core(&a);
  auto p1 = soc.add_pi("P1", 8);
  auto p2 = soc.add_pi("P2", 8);
  soc.connect(p1, ca, "IN");
  soc.connect(p2, ca, "IN");
  EXPECT_THROW(soc.validate(), util::Error);
}

TEST(Soc, DirectionChecks) {
  core::Core a = core::Core::prepare(make_pass_core("A", 8));
  Soc soc("bad");
  auto ca = soc.add_core(&a);
  auto pi = soc.add_pi("PI", 8);
  auto po = soc.add_po("PO", 8);
  EXPECT_THROW(soc.connect(pi, ca, "OUT"), util::Error);
  EXPECT_THROW(soc.connect(ca, "IN", po), util::Error);
}

TEST(Soc, Lookups) {
  TwoCoreChip chip;
  EXPECT_EQ(chip.soc.find_core("A"), 0u);
  EXPECT_EQ(chip.soc.find_core("B"), 1u);
  EXPECT_THROW(chip.soc.find_core("C"), util::Error);
  EXPECT_EQ(chip.soc.find_pi("PI").value(), 0u);
  EXPECT_THROW(chip.soc.find_po("nope"), util::Error);
}

// -------------------------------------------------------------------- Ccg

TEST(Ccg, NodeAndEdgeCounts) {
  TwoCoreChip chip;
  Ccg ccg(chip.soc, {0, 0});
  // Nodes: 1 PI + 1 PO + 2 ports per core x 2 cores = 6.
  EXPECT_EQ(ccg.nodes().size(), 6u);
  // Edges: 3 interconnect + >=1 transparency edge per core.
  EXPECT_GE(ccg.edges().size(), 5u);
}

TEST(Ccg, TransparencyEdgeLatencyFollowsVersion) {
  core::Core slow = core::Core::prepare(make_slow_core("S", 8));
  slow.set_scan_vectors(5);
  Soc soc("chip");
  auto cs = soc.add_core(&slow);
  auto pi = soc.add_pi("PI", 8);
  auto po = soc.add_po("PO", 8);
  soc.connect(pi, cs, "IN");
  soc.connect(cs, "OUT", po);

  Ccg ccg(soc, {0});
  unsigned max_latency = 0;
  for (const auto& edge : ccg.edges()) {
    if (edge.core == 0) max_latency = std::max(max_latency, edge.latency);
  }
  EXPECT_EQ(max_latency, 3u) << "version 1 of the 3-register core";
}

TEST(Ccg, ResourceIdsWellFormed) {
  TwoCoreChip chip;
  Ccg ccg(chip.soc, {0, 0});
  // Every edge's resource id is in range; independent edges get distinct
  // ids (resource count can only be <= edge count when groups share).
  for (const auto& edge : ccg.edges()) {
    EXPECT_LT(edge.resource, ccg.resource_count());
  }
  EXPECT_LE(ccg.resource_count(), ccg.edges().size());
}

// ------------------------------------------------------------ Reservations

TEST(Reservations, EarliestFreeSkipsBusyWindows) {
  Reservations r(2);
  r.reserve(0, 0, 5);
  EXPECT_EQ(r.earliest_free(0, 0, 3), 5u);
  EXPECT_EQ(r.earliest_free(0, 7, 3), 7u);
  EXPECT_EQ(r.earliest_free(1, 0, 3), 0u);  // other resource untouched
  r.reserve(0, 8, 2);
  // Window of 3 starting at 5 fits between [0,5) and [8,10).
  EXPECT_EQ(r.earliest_free(0, 0, 3), 5u);
  // Window of 4 does not; it must wait for cycle 10.
  EXPECT_EQ(r.earliest_free(0, 0, 4), 10u);
}

TEST(Reservations, BackToBackWindows) {
  Reservations r(1);
  r.reserve(0, 0, 6);
  r.reserve(0, 6, 2);
  EXPECT_EQ(r.earliest_free(0, 0, 1), 8u);
}

// --------------------------------------------------------------- planning

TEST(Plan, SingleCoreDirectlyAccessible) {
  core::Core a = core::Core::prepare(make_pass_core("A", 8));
  a.set_scan_vectors(10);
  Soc soc("chip");
  auto ca = soc.add_core(&a);
  auto pi = soc.add_pi("PI", 8);
  auto po = soc.add_po("PO", 8);
  soc.connect(pi, ca, "IN");
  soc.connect(ca, "OUT", po);

  auto plan = plan_chip_test(soc, {0});
  ASSERT_EQ(plan.cores.size(), 1u);
  EXPECT_EQ(plan.cores[0].period, 1u);
  EXPECT_EQ(plan.cores[0].system_mux_cells, 0u);
  // depth 1 -> flush = 0 + observe 0.
  EXPECT_EQ(plan.cores[0].flush, 0u);
  EXPECT_EQ(plan.cores[0].tat, a.hscan_vectors() * 1ull);
}

TEST(Plan, EmbeddedCorePaysNeighbourLatency) {
  TwoCoreChip chip;
  auto plan = plan_chip_test(chip.soc, {0, 0});
  // Core B's input is justified through A's 1-cycle transparency:
  // PI -> A.IN, A.IN -> A.OUT, A.OUT -> B.IN.
  const auto& plan_b = plan.cores[1];
  EXPECT_EQ(plan_b.period, 1u);
  EXPECT_EQ(plan_b.system_mux_cells, 0u);
  ASSERT_FALSE(plan_b.input_routes.empty());
  EXPECT_GE(plan_b.input_routes[0].second.steps.size(), 3u);
  // Core A's output is observed through B: nonzero observation flush.
  const auto& plan_a = plan.cores[0];
  EXPECT_GT(plan_a.flush, 0u);
}

TEST(Plan, UnreachablePortGetsSystemMux) {
  // Core whose input is fed by nothing.
  core::Core a = core::Core::prepare(make_pass_core("A", 8));
  a.set_scan_vectors(4);
  Soc soc("chip");
  auto ca = soc.add_core(&a);
  auto po = soc.add_po("PO", 8);
  soc.connect(ca, "OUT", po);  // IN left dangling

  auto plan = plan_chip_test(soc, {0});
  EXPECT_GT(plan.cores[0].system_mux_cells, 0u);
  EXPECT_EQ(plan.cores[0].period, 1u);  // direct mux access
}

TEST(Plan, ForcedMuxSkipsRouting) {
  TwoCoreChip chip;
  PlanOptions options;
  options.forced_input_muxes.push_back(
      CorePortRef{1, chip.b.netlist().find_port("IN")});
  auto plan = plan_chip_test(chip.soc, {0, 0}, options);
  const auto& plan_b = plan.cores[1];
  EXPECT_EQ(plan_b.period, 1u) << "forced mux bypasses core A";
  EXPECT_GT(plan_b.system_mux_cells, 0u);
}

TEST(Plan, MissingTestSetRejected) {
  core::Core a = core::Core::prepare(make_pass_core("A", 8));
  Soc soc("chip");
  auto ca = soc.add_core(&a);
  auto pi = soc.add_pi("PI", 8);
  auto po = soc.add_po("PO", 8);
  soc.connect(pi, ca, "IN");
  soc.connect(ca, "OUT", po);
  EXPECT_THROW(plan_chip_test(soc, {0}), util::Error);
}

TEST(Plan, TotalsAddUp) {
  TwoCoreChip chip;
  auto plan = plan_chip_test(chip.soc, {0, 0});
  unsigned long long tat = 0;
  for (const auto& p : plan.cores) tat += p.tat;
  EXPECT_EQ(plan.total_tat, tat);
  EXPECT_EQ(plan.total_overhead_cells(),
            plan.version_cells + plan.system_mux_cells +
                plan.controller_cells);
}

TEST(Plan, EdgeUseCountsRecorded) {
  TwoCoreChip chip;
  auto plan = plan_chip_test(chip.soc, {0, 0});
  // Core A's IN->OUT transparency is used to justify B's input and to
  // observe nothing (B observes directly), so at least one use.
  bool found = false;
  for (const auto& [key, count] : plan.edge_use) {
    if (std::get<0>(key) == 0) {
      found = true;
      EXPECT_GE(count, 1u);
    }
  }
  EXPECT_TRUE(found);
}

TEST(Plan, EdgeReuseSerializesAcrossVectors) {
  // Three cores in a line; testing the last one routes through both
  // predecessors: reusing the first core's single transparency edge for
  // nothing here, but period must at least cover the serial chain.
  core::Core a = core::Core::prepare(make_slow_core("A", 8));
  core::Core b = core::Core::prepare(make_slow_core("B", 8));
  a.set_scan_vectors(3);
  b.set_scan_vectors(3);
  Soc soc("chip");
  auto ca = soc.add_core(&a);
  auto cb = soc.add_core(&b);
  auto pi = soc.add_pi("PI", 8);
  auto po = soc.add_po("PO", 8);
  soc.connect(pi, ca, "IN");
  soc.connect(ca, "OUT", cb, "IN");
  soc.connect(cb, "OUT", po);

  auto plan = plan_chip_test(soc, {0, 0});
  // B's input arrives through A's 3-cycle transparency.
  EXPECT_GE(plan.cores[1].period, 3u);
}

}  // namespace
}  // namespace socet::soc
