// Bench harness plumbing: the JSON reader, BENCH_ line parsing
// (including the null-wall_ms and skipped cases), repeat statistics,
// trajectory files, and the noise-adjusted regression gate — the gate
// must fail on an injected 2x slowdown and pass at baseline.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "socet/obs/benchgate.hpp"
#include "socet/obs/jsonin.hpp"

namespace socet::obs {
namespace {

using bench::Baseline;
using bench::BenchLine;
using bench::CheckOutcome;
using bench::RepeatStats;
using bench::RunRecord;

// ------------------------------------------------------------------- jsonin

TEST(JsonInTest, ParsesScalarsAndContainers) {
  JsonValue doc;
  std::string error;
  ASSERT_TRUE(json_parse(
      R"({"s":"a\nb","n":-12.5,"t":true,"f":false,"z":null,"a":[1,2,3],"o":{"k":7}})",
      &doc, &error))
      << error;
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.get("s")->string_value, "a\nb");
  EXPECT_EQ(doc.get("n")->number_value, -12.5);
  EXPECT_TRUE(doc.get("t")->bool_value);
  EXPECT_FALSE(doc.get("f")->bool_value);
  EXPECT_TRUE(doc.get("z")->is_null());
  ASSERT_EQ(doc.get("a")->array_value.size(), 3u);
  EXPECT_EQ(doc.get("a")->array_value[2].number_value, 3.0);
  EXPECT_EQ(doc.get("o")->get("k")->number_value, 7.0);
  EXPECT_EQ(doc.get("missing"), nullptr);
}

TEST(JsonInTest, DecodesUnicodeEscapesAndScientificNumbers) {
  JsonValue doc;
  ASSERT_TRUE(json_parse(R"({"c":"Aé","e":1.5e3})", &doc));
  EXPECT_EQ(doc.get("c")->string_value, "A\xc3\xa9");
  EXPECT_EQ(doc.get("e")->number_value, 1500.0);
}

TEST(JsonInTest, RejectsMalformedDocuments) {
  JsonValue doc;
  std::string error;
  EXPECT_FALSE(json_parse("{\"a\":}", &doc, &error));
  EXPECT_FALSE(json_parse("{\"a\":1", &doc, &error));
  EXPECT_FALSE(json_parse("[1,2,]extra", &doc, &error));
  EXPECT_FALSE(json_parse("{\"a\":1}trailing", &doc, &error));
  EXPECT_FALSE(json_parse("", &doc, &error));
  EXPECT_NE(error.find("at byte"), std::string::npos);
}

TEST(JsonInTest, BoundsContainerNestingDepth) {
  // A hostile `[[[[...]]]]` must be rejected by the depth limit, not
  // overflow the parser's recursion stack.
  const std::string deep(200, '[');
  JsonValue doc;
  std::string error;
  EXPECT_FALSE(json_parse(deep + std::string(200, ']'), &doc, &error));
  EXPECT_NE(error.find("nesting too deep"), std::string::npos);

  // 90 levels is within the cap...
  std::string ok = std::string(90, '[') + "1" + std::string(90, ']');
  EXPECT_TRUE(json_parse(ok, &doc, &error)) << error;

  // ...and the counter unwinds on the way out: many *sibling*
  // containers never approach the limit.
  std::string wide = "[";
  for (int i = 0; i < 300; ++i) {
    if (i != 0) wide += ',';
    wide += "{\"a\":[1]}";
  }
  wide += "]";
  EXPECT_TRUE(json_parse(wide, &doc, &error)) << error;
  EXPECT_EQ(doc.array_value.size(), 300u);
}

// -------------------------------------------------------------- bench lines

TEST(BenchLineTest, ParsesLineWithExtrasAmongNoise) {
  const std::string stderr_text =
      "some warning\n"
      "BENCH_worked_example.json {\"name\":\"worked_example\",\"ok\":true,"
      "\"wall_ms\":12.5,\"speedup\":2.5}\n"
      "trailing noise\n";
  BenchLine line;
  std::string error;
  ASSERT_TRUE(bench::parse_bench_line(stderr_text, &line, &error)) << error;
  EXPECT_EQ(line.name, "worked_example");
  EXPECT_TRUE(line.ok);
  EXPECT_FALSE(line.skipped);
  EXPECT_EQ(line.wall_ms, 12.5);
  ASSERT_EQ(line.extra.size(), 1u);
  EXPECT_EQ(line.extra[0].first, "speedup");
  EXPECT_EQ(line.extra[0].second, 2.5);
}

TEST(BenchLineTest, ParsesSkippedFlag) {
  BenchLine line;
  ASSERT_TRUE(bench::parse_bench_line(
      "BENCH_t.json {\"name\":\"t\",\"ok\":true,\"skipped\":true,"
      "\"wall_ms\":3,\"skip_reason\":\"too few CPUs\"}\n",
      &line));
  EXPECT_TRUE(line.skipped);
  // skip_reason is a string, not a metric.
  EXPECT_TRUE(line.extra.empty());
}

TEST(BenchLineTest, NullWallMsIsRejectedNotZero) {
  // json_number renders NaN as null; the parser must refuse to turn
  // that into a zero-cost trajectory point.
  BenchLine line;
  std::string error;
  EXPECT_FALSE(bench::parse_bench_line(
      "BENCH_t.json {\"name\":\"t\",\"ok\":true,\"wall_ms\":null}\n", &line,
      &error));
  EXPECT_NE(error.find("wall_ms"), std::string::npos);
}

TEST(BenchLineTest, MissingLineOrFieldsFail) {
  BenchLine line;
  EXPECT_FALSE(bench::parse_bench_line("no bench output here\n", &line));
  EXPECT_FALSE(bench::parse_bench_line("BENCH_t.json {\"ok\":true}\n", &line));
  EXPECT_FALSE(
      bench::parse_bench_line("BENCH_t.json {\"name\":\"t\"}\n", &line));
  EXPECT_FALSE(bench::parse_bench_line("BENCH_t.json notjson\n", &line));
}

// -------------------------------------------------------------- statistics

TEST(RepeatStatsTest, OddAndEvenCounts) {
  RepeatStats odd = bench::summarize_repeats({30, 10, 20});
  EXPECT_EQ(odd.n, 3u);
  EXPECT_EQ(odd.min, 10);
  EXPECT_EQ(odd.median, 20);
  EXPECT_EQ(odd.q1, 15);
  EXPECT_EQ(odd.q3, 25);
  EXPECT_EQ(odd.iqr(), 10);

  RepeatStats even = bench::summarize_repeats({1, 2, 3, 4});
  EXPECT_EQ(even.median, 2.5);

  RepeatStats one = bench::summarize_repeats({7});
  EXPECT_EQ(one.median, 7);
  EXPECT_EQ(one.iqr(), 0);

  RepeatStats none = bench::summarize_repeats({});
  EXPECT_EQ(none.n, 0u);
  EXPECT_EQ(none.median, 0);
}

// -------------------------------------------------------------- trajectory

RunRecord make_record(const std::string& name, double median_ms,
                      double iqr_half = 0) {
  RunRecord record;
  record.name = name;
  record.ok = true;
  record.wall_ms = bench::summarize_repeats(
      {median_ms - iqr_half, median_ms, median_ms + iqr_half});
  record.max_rss_kb = 4096;
  record.utime_ms = median_ms;
  return record;
}

TEST(TrajectoryTest, AppendsPointsAcrossRuns) {
  const std::string first =
      bench::trajectory_json("", make_record("t", 10), "sha1");
  JsonValue doc;
  std::string error;
  ASSERT_TRUE(json_parse(first, &doc, &error)) << error << "\n" << first;
  EXPECT_EQ(doc.get("schema")->string_value, "socet-bench-trajectory-v1");
  EXPECT_EQ(doc.get("name")->string_value, "t");
  ASSERT_EQ(doc.get("points")->array_value.size(), 1u);
  const JsonValue& point = doc.get("points")->array_value[0];
  EXPECT_EQ(point.get("label")->string_value, "sha1");
  EXPECT_EQ(point.get("wall_ms_median")->number_value, 10.0);
  EXPECT_EQ(point.get("repeats")->number_value, 3.0);

  const std::string second =
      bench::trajectory_json(first, make_record("t", 12), "sha2");
  ASSERT_TRUE(json_parse(second, &doc, &error)) << error;
  ASSERT_EQ(doc.get("points")->array_value.size(), 2u);
  EXPECT_EQ(doc.get("points")->array_value[0].get("label")->string_value,
            "sha1");
  EXPECT_EQ(
      doc.get("points")->array_value[1].get("wall_ms_median")->number_value,
      12.0);
}

TEST(TrajectoryTest, CorruptExistingFileRestartsTrajectory) {
  const std::string text =
      bench::trajectory_json("{not json", make_record("t", 10), "");
  JsonValue doc;
  ASSERT_TRUE(json_parse(text, &doc));
  EXPECT_EQ(doc.get("points")->array_value.size(), 1u);
}

TEST(TrajectoryTest, LastMedianReturnsNewestComparablePoint) {
  std::string text = bench::trajectory_json("", make_record("t", 10), "a");
  text = bench::trajectory_json(text, make_record("t", 14), "b");
  double median = 0;
  ASSERT_TRUE(bench::trajectory_last_median(text, &median));
  EXPECT_EQ(median, 14.0);

  // A newer skipped point and a newer failed point both yield to the
  // last point that actually measured something.
  RunRecord skipped = make_record("t", 99);
  skipped.skipped = true;
  text = bench::trajectory_json(text, skipped, "c");
  RunRecord failed = make_record("t", 77);
  failed.ok = false;
  text = bench::trajectory_json(text, failed, "d");
  ASSERT_TRUE(bench::trajectory_last_median(text, &median));
  EXPECT_EQ(median, 14.0);
}

TEST(TrajectoryTest, LastMedianRejectsEmptyCorruptOrAllSkipped) {
  double median = 0;
  EXPECT_FALSE(bench::trajectory_last_median("", &median));
  EXPECT_FALSE(bench::trajectory_last_median("{not json", &median));
  EXPECT_FALSE(bench::trajectory_last_median(
      R"({"schema":"other-v1","points":[{"wall_ms_median":5}]})", &median));
  RunRecord skipped = make_record("t", 5);
  skipped.skipped = true;
  const std::string only_skipped =
      bench::trajectory_json("", skipped, "a");
  EXPECT_FALSE(bench::trajectory_last_median(only_skipped, &median));
}

// ---------------------------------------------------------------- baseline

TEST(BaselineTest, RoundTripsThroughRenderAndParse) {
  const std::vector<RunRecord> records = {make_record("a", 10),
                                          make_record("b", 20)};
  const std::string text = bench::baseline_json(records);
  Baseline baseline;
  std::string error;
  ASSERT_TRUE(bench::parse_baseline(text, &baseline, &error)) << error;
  EXPECT_EQ(baseline.wall_ms.at("a"), 10.0);
  EXPECT_EQ(baseline.wall_ms.at("b"), 20.0);
}

TEST(BaselineTest, SkippedAndFailedRunsAreExcluded) {
  RunRecord skipped = make_record("skippy", 10);
  skipped.skipped = true;
  RunRecord failed = make_record("brokey", 10);
  failed.ok = false;
  Baseline baseline;
  ASSERT_TRUE(bench::parse_baseline(
      bench::baseline_json({skipped, failed, make_record("goody", 5)}),
      &baseline));
  EXPECT_EQ(baseline.wall_ms.size(), 1u);
  EXPECT_EQ(baseline.wall_ms.count("goody"), 1u);
}

TEST(BaselineTest, RejectsWrongSchemaOrShape) {
  Baseline baseline;
  EXPECT_FALSE(bench::parse_baseline("{}", &baseline));
  EXPECT_FALSE(bench::parse_baseline(
      "{\"schema\":\"other\",\"benches\":{}}", &baseline));
  EXPECT_FALSE(bench::parse_baseline(
      "{\"schema\":\"socet-bench-baseline-v1\",\"benches\":"
      "{\"a\":{\"wall_ms\":null}}}",
      &baseline));
}

// -------------------------------------------------------------------- gate

Baseline baseline_of(std::initializer_list<std::pair<std::string, double>> entries) {
  Baseline baseline;
  for (const auto& [name, ms] : entries) baseline.wall_ms[name] = ms;
  return baseline;
}

TEST(GateTest, PassesAtBaselineAndFailsOnDoubledWallTime) {
  const Baseline baseline = baseline_of({{"steady", 100.0}});

  // Unchanged performance (within tolerance): pass.
  auto ok = bench::check_against_baseline({make_record("steady", 104, 2)},
                                          baseline, 25.0);
  ASSERT_EQ(ok.size(), 1u);
  EXPECT_EQ(ok[0].verdict, CheckOutcome::Verdict::kPass);
  EXPECT_FALSE(bench::has_regression(ok));

  // Injected 2x slowdown: regression, even with sizeable jitter.
  auto slow = bench::check_against_baseline({make_record("steady", 200, 10)},
                                            baseline, 25.0);
  EXPECT_EQ(slow[0].verdict, CheckOutcome::Verdict::kRegression);
  EXPECT_TRUE(bench::has_regression(slow));
}

TEST(GateTest, IqrAllowanceIsCappedAtTheToleranceMargin) {
  const Baseline baseline = baseline_of({{"jittery", 100.0}});
  // margin = 25ms, IQR capped at 25ms -> limit 150ms; a genuine 2x
  // slowdown cannot hide behind noise however wild the IQR.
  auto outcome = bench::check_against_baseline(
      {make_record("jittery", 200, 500)}, baseline, 25.0);
  EXPECT_EQ(outcome[0].limit_ms, 150.0);
  EXPECT_EQ(outcome[0].verdict, CheckOutcome::Verdict::kRegression);
}

TEST(GateTest, SkippedFailedAndUnknownBenchesAreLabelled) {
  const Baseline baseline = baseline_of({{"skippy", 10.0}, {"brokey", 10.0}});
  RunRecord skipped = make_record("skippy", 100);
  skipped.skipped = true;
  RunRecord failed = make_record("brokey", 5);
  failed.ok = false;
  const RunRecord unknown = make_record("newcomer", 5);

  const auto outcomes = bench::check_against_baseline(
      {skipped, failed, unknown}, baseline, 25.0);
  ASSERT_EQ(outcomes.size(), 3u);
  EXPECT_EQ(outcomes[0].verdict, CheckOutcome::Verdict::kSkipped);
  EXPECT_EQ(outcomes[1].verdict, CheckOutcome::Verdict::kFailed);
  EXPECT_EQ(outcomes[2].verdict, CheckOutcome::Verdict::kNoBaseline);
  // A skipped 10x-over-baseline bench is not a regression; the failed
  // one still fails the gate.
  EXPECT_TRUE(bench::has_regression(outcomes));
  EXPECT_FALSE(bench::has_regression({outcomes[0], outcomes[2]}));
}

}  // namespace
}  // namespace socet::obs
