#include <gtest/gtest.h>

#include "socet/emit/dot.hpp"
#include "socet/emit/verilog.hpp"
#include "socet/synth/elaborate.hpp"
#include "socet/systems/synthetic.hpp"
#include "socet/systems/systems.hpp"

namespace socet::emit {
namespace {

rtl::Netlist make_small() {
  rtl::Netlist n("small");
  auto a = n.add_input("A", 8);
  auto sel = n.add_input("SEL", 1, rtl::PortKind::kControl);
  auto z = n.add_output("Z", 8);
  auto r = n.add_register("R", 8);
  auto inc = n.add_fu("INC", rtl::FuKind::kIncrement, 8, 1);
  auto m = n.add_mux("M", 8, 2);
  n.connect(n.pin(a), n.mux_in(m, 0));
  n.connect(n.fu_out(inc), n.mux_in(m, 1));
  n.connect(n.pin(sel), n.mux_select(m));
  n.connect(n.mux_out(m), n.reg_d(r));
  n.connect(n.reg_q(r), n.fu_in(inc, 0));
  n.connect(n.reg_q(r), n.pin(z));
  n.validate();
  return n;
}

// ---------------------------------------------------------------- verilog

TEST(VerilogRtl, ContainsModuleStructure) {
  const auto v = emit_verilog(make_small());
  EXPECT_NE(v.find("module small ("), std::string::npos);
  EXPECT_NE(v.find("input wire clk"), std::string::npos);
  EXPECT_NE(v.find("input wire [7:0] A"), std::string::npos);
  EXPECT_NE(v.find("output wire [7:0] Z"), std::string::npos);
  EXPECT_NE(v.find("reg [7:0] R;"), std::string::npos);
  EXPECT_NE(v.find("always @(posedge clk)"), std::string::npos);
  EXPECT_NE(v.find("endmodule"), std::string::npos);
}

TEST(VerilogRtl, MuxBecomesTernary) {
  const auto v = emit_verilog(make_small());
  EXPECT_NE(v.find("assign M_y = (SEL == 1'd0) ? A : INC_y;"),
            std::string::npos)
      << v;
}

TEST(VerilogRtl, IncrementBecomesAdd) {
  const auto v = emit_verilog(make_small());
  EXPECT_NE(v.find("assign INC_y = R + 1'b1;"), std::string::npos) << v;
}

TEST(VerilogRtl, LoadEnableGuardsAssign) {
  rtl::Netlist n("ld");
  auto d = n.add_input("D", 4);
  auto en = n.add_input("EN", 1, rtl::PortKind::kControl);
  auto q = n.add_output("Q", 4);
  auto r = n.add_register("R", 4);
  n.connect(n.pin(d), n.reg_d(r));
  n.connect(n.pin(en), n.reg_load(r));
  n.connect(n.reg_q(r), n.pin(q));
  const auto v = emit_verilog(n);
  EXPECT_NE(v.find("if (EN) begin"), std::string::npos) << v;
}

TEST(VerilogRtl, SlicedWritesPreserved) {
  rtl::Netlist n("slice");
  auto hi = n.add_input("HI", 4);
  auto lo = n.add_input("LO", 4);
  auto q = n.add_output("Q", 8);
  auto r = n.add_register("R", 8, false);
  n.connect(n.pin(hi), 0, n.reg_d(r), 4, 4);
  n.connect(n.pin(lo), 0, n.reg_d(r), 0, 4);
  n.connect(n.reg_q(r), n.pin(q));
  const auto v = emit_verilog(n);
  EXPECT_NE(v.find("R[7:4] <= HI;"), std::string::npos) << v;
  EXPECT_NE(v.find("R[3:0] <= LO;"), std::string::npos) << v;
}

TEST(VerilogRtl, RejectsRandomLogic) {
  rtl::Netlist n("cloud");
  auto a = n.add_input("A", 4);
  auto z = n.add_output("Z", 4);
  auto c = n.add_random_logic("C", 4, 4, 10, 1);
  n.connect(n.pin(a), n.fu_in(c, 0));
  n.connect(n.fu_out(c), n.pin(z));
  EXPECT_THROW(emit_verilog(n), util::Error);
}

TEST(VerilogRtl, SanitizesNames) {
  rtl::Netlist n("my-core.v2");
  auto a = n.add_input("in[0]", 1);
  auto z = n.add_output("out", 1);
  auto r = n.add_register("state reg", 1, false);
  n.connect(n.pin(a), n.reg_d(r));
  n.connect(n.reg_q(r), n.pin(z));
  const auto v = emit_verilog(n);
  EXPECT_NE(v.find("module my_core_v2"), std::string::npos);
  EXPECT_NE(v.find("state_reg"), std::string::npos);
  EXPECT_EQ(v.find("state reg"), std::string::npos);
}

TEST(VerilogRtl, WholeSyntheticCoreEmits) {
  // The named cores carry control clouds (gate-level only); a cloudless
  // synthetic core exercises the full RTL writer end to end.
  systems::SyntheticCoreOptions options;
  options.registers = 8;
  options.with_cloud = false;
  const auto v =
      emit_verilog(systems::make_synthetic_core("big", 42, options));
  EXPECT_NE(v.find("module big"), std::string::npos);
  EXPECT_GT(v.size(), 800u);
}

TEST(VerilogGates, StructuralEmission) {
  auto elab = synth::elaborate(make_small());
  const auto v = emit_verilog(elab.gates);
  EXPECT_NE(v.find("module small_gates"), std::string::npos);
  EXPECT_NE(v.find("always @(posedge clk)"), std::string::npos);
  EXPECT_NE(v.find("assign po_0"), std::string::npos);
  // Every DFF appears.
  EXPECT_GE(static_cast<int>(elab.gates.dffs().size()), 8);
}

TEST(VerilogGates, HandlesClouds) {
  rtl::Netlist n("cloud");
  auto a = n.add_input("A", 4);
  auto z = n.add_output("Z", 4);
  auto c = n.add_random_logic("C", 4, 4, 30, 1);
  n.connect(n.pin(a), n.fu_in(c, 0));
  n.connect(n.fu_out(c), n.pin(z));
  auto elab = synth::elaborate(n);
  EXPECT_NO_THROW(emit_verilog(elab.gates));
}

TEST(Verilog, Deterministic) {
  EXPECT_EQ(emit_verilog(make_small()), emit_verilog(make_small()));
}

// -------------------------------------------------------------------- dot

TEST(Dot, RcgShowsSplitsAndHscanEdges) {
  auto cpu = systems::make_cpu_rtl();
  auto hs = hscan::build_hscan(cpu);
  transparency::Rcg rcg(cpu, &hs);
  const auto dot = emit_dot(rcg);
  EXPECT_NE(dot.find("digraph RCG"), std::string::npos);
  EXPECT_NE(dot.find("(C-split)"), std::string::npos);
  EXPECT_NE(dot.find("(O-split)"), std::string::npos);
  EXPECT_NE(dot.find("penwidth=2.5"), std::string::npos)
      << "darkened HSCAN edges";
  EXPECT_NE(dot.find("ACCUMULATOR"), std::string::npos);
}

TEST(Dot, CcgClustersCores) {
  auto system = systems::make_barcode_system();
  soc::Ccg ccg(*system.soc, {0, 0, 0});
  const auto dot = emit_dot(*system.soc, ccg);
  EXPECT_NE(dot.find("digraph CCG"), std::string::npos);
  EXPECT_NE(dot.find("subgraph cluster_0"), std::string::npos);
  EXPECT_NE(dot.find("label=\"CPU\""), std::string::npos);
  EXPECT_NE(dot.find("label=\"PREPROCESSOR\""), std::string::npos);
  // Latency-labelled transparency edges exist.
  EXPECT_NE(dot.find("color=slateblue"), std::string::npos);
}

TEST(Dot, BalancedBraces) {
  auto system = systems::make_barcode_system();
  soc::Ccg ccg(*system.soc, {0, 0, 0});
  for (const auto& dot :
       {emit_dot(*system.soc, ccg),
        emit_dot(transparency::Rcg(system.cores[0]->netlist()))}) {
    EXPECT_EQ(std::count(dot.begin(), dot.end(), '{'),
              std::count(dot.begin(), dot.end(), '}'));
  }
}

}  // namespace
}  // namespace socet::emit
