#include <gtest/gtest.h>

#include "socet/rtl/interpreter.hpp"
#include "socet/systems/systems.hpp"

namespace socet::rtl {
namespace {

using util::BitVector;

TEST(Interpreter, RegisterCapturesOnStep) {
  Netlist n("r");
  auto in = n.add_input("IN", 8);
  auto out = n.add_output("OUT", 8);
  auto r = n.add_register("R", 8);
  n.connect(n.pin(in), n.reg_d(r));
  n.connect(n.reg_q(r), n.pin(out));

  Interpreter sim(n);
  sim.reset();
  sim.set_input("IN", BitVector(8, 42));
  sim.step();
  EXPECT_EQ(sim.output("OUT").to_u64(), 42u);
  sim.set_input("IN", BitVector(8, 7));
  sim.step();
  EXPECT_EQ(sim.output("OUT").to_u64(), 7u);
}

TEST(Interpreter, LoadEnableHolds) {
  Netlist n("r");
  auto in = n.add_input("IN", 4);
  auto ld = n.add_input("LD", 1, PortKind::kControl);
  auto out = n.add_output("OUT", 4);
  auto r = n.add_register("R", 4);
  n.connect(n.pin(in), n.reg_d(r));
  n.connect(n.pin(ld), n.reg_load(r));
  n.connect(n.reg_q(r), n.pin(out));

  Interpreter sim(n);
  sim.reset();
  sim.set_input("IN", BitVector(4, 9));
  sim.set_input("LD", BitVector(1, 1));
  sim.step();
  sim.set_input("IN", BitVector(4, 3));
  sim.set_input("LD", BitVector(1, 0));
  sim.step();
  EXPECT_EQ(sim.output("OUT").to_u64(), 9u);
}

TEST(Interpreter, MuxSelects) {
  Netlist n("m");
  auto a = n.add_input("A", 8);
  auto b = n.add_input("B", 8);
  auto sel = n.add_input("SEL", 1, PortKind::kControl);
  auto out = n.add_output("OUT", 8);
  auto r = n.add_register("R", 8, false);
  auto m = n.add_mux("M", 8, 2);
  n.connect(n.pin(a), n.mux_in(m, 0));
  n.connect(n.pin(b), n.mux_in(m, 1));
  n.connect(n.pin(sel), n.mux_select(m));
  n.connect(n.mux_out(m), n.reg_d(r));
  n.connect(n.reg_q(r), n.pin(out));

  Interpreter sim(n);
  sim.reset();
  sim.set_input("A", BitVector(8, 11));
  sim.set_input("B", BitVector(8, 22));
  sim.set_input("SEL", BitVector(1, 0));
  sim.step();
  EXPECT_EQ(sim.output("OUT").to_u64(), 11u);
  sim.set_input("SEL", BitVector(1, 1));
  sim.step();
  EXPECT_EQ(sim.output("OUT").to_u64(), 22u);
}

TEST(Interpreter, ArithmeticUnits) {
  Netlist n("fu");
  auto a = n.add_input("A", 8);
  auto b = n.add_input("B", 8);
  auto sum = n.add_output("SUM", 8);
  auto lt = n.add_output("LT", 1);
  auto add = n.add_fu("ADD", FuKind::kAdd, 8, 2);
  auto less = n.add_fu("LESS", FuKind::kLess, 8, 2);
  n.connect(n.pin(a), n.fu_in(add, 0));
  n.connect(n.pin(b), n.fu_in(add, 1));
  n.connect(n.fu_out(add), n.pin(sum));
  n.connect(n.pin(a), n.fu_in(less, 0));
  n.connect(n.pin(b), n.fu_in(less, 1));
  n.connect(n.fu_out(less), n.pin(lt));

  Interpreter sim(n);
  sim.set_input("A", BitVector(8, 200));
  sim.set_input("B", BitVector(8, 100));
  sim.step();
  EXPECT_EQ(sim.output("SUM").to_u64(), (200u + 100u) & 0xFF);
  EXPECT_EQ(sim.output("LT").to_u64(), 0u);
  sim.set_input("A", BitVector(8, 5));
  sim.step();
  EXPECT_EQ(sim.output("LT").to_u64(), 1u);
}

TEST(Interpreter, SlicedConnections) {
  Netlist n("s");
  auto hi = n.add_input("HI", 4);
  auto lo = n.add_input("LO", 4);
  auto out = n.add_output("OUT", 8);
  auto r = n.add_register("R", 8, false);
  n.connect(n.pin(hi), 0, n.reg_d(r), 4, 4);
  n.connect(n.pin(lo), 0, n.reg_d(r), 0, 4);
  n.connect(n.reg_q(r), n.pin(out));

  Interpreter sim(n);
  sim.set_input("HI", BitVector(4, 0xB));
  sim.set_input("LO", BitVector(4, 0x3));
  sim.step();
  EXPECT_EQ(sim.output("OUT").to_u64(), 0xB3u);
}

TEST(Interpreter, SetRegisterDirectly) {
  Netlist n("r");
  auto out = n.add_output("OUT", 8);
  auto r = n.add_register("R", 8);
  n.connect(n.reg_q(r), n.pin(out));
  Interpreter sim(n);
  sim.set_register(r, BitVector(8, 0x5A));
  EXPECT_EQ(sim.output("OUT").to_u64(), 0x5Au);
}

TEST(Interpreter, RejectsRandomLogic) {
  Netlist n("cloud");
  auto in = n.add_input("IN", 4);
  auto out = n.add_output("OUT", 4);
  auto cloud = n.add_random_logic("C", 4, 4, 20, 3);
  n.connect(n.pin(in), n.fu_in(cloud, 0));
  n.connect(n.fu_out(cloud), n.pin(out));
  EXPECT_THROW(Interpreter sim(n), util::Error);
}

TEST(Interpreter, GcdCoreComputesGcdManually) {
  // Drive the reconstructed GCD datapath through one subtract step by
  // hand (controller cloud excluded: build a cloudless twin).
  Netlist n("gcd");
  auto a = n.add_input("A", 8);
  auto b = n.add_input("B", 8);
  auto sel_a = n.add_input("SELA", 1, PortKind::kControl);
  auto out = n.add_output("OUT", 8);
  auto ra = n.add_register("RA", 8, false);
  auto rb = n.add_register("RB", 8, false);
  auto sub = n.add_fu("SUB", FuKind::kSub, 8, 2);
  auto m = n.add_mux("MA", 8, 2);
  n.connect(n.pin(a), n.mux_in(m, 0));
  n.connect(n.fu_out(sub), n.mux_in(m, 1));
  n.connect(n.pin(sel_a), n.mux_select(m));
  n.connect(n.mux_out(m), n.reg_d(ra));
  n.connect(n.pin(b), n.reg_d(rb));
  n.connect(n.reg_q(ra), n.fu_in(sub, 0));
  n.connect(n.reg_q(rb), n.fu_in(sub, 1));
  n.connect(n.reg_q(ra), n.pin(out));

  Interpreter sim(n);
  sim.set_input("A", BitVector(8, 21));
  sim.set_input("B", BitVector(8, 14));
  sim.set_input("SELA", BitVector(1, 0));
  sim.step();  // RA=21, RB=14
  sim.set_input("SELA", BitVector(1, 1));
  sim.step();  // RA = 21-14 = 7
  EXPECT_EQ(sim.output("OUT").to_u64(), 7u);
}

}  // namespace
}  // namespace socet::rtl
