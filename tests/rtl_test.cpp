#include <gtest/gtest.h>

#include <algorithm>

#include "socet/rtl/netlist.hpp"
#include "socet/rtl/paths.hpp"
#include "socet/util/error.hpp"

namespace socet::rtl {
namespace {

using util::Error;

/// Find the unique transfer path between two named nodes, or nullptr.
const TransferPath* find_path(const std::vector<TransferPath>& paths,
                              const Netlist& n, const std::string& src,
                              const std::string& dst) {
  for (const auto& p : paths) {
    if (node_name(n, p.src) == src && node_name(n, p.dst) == dst) return &p;
  }
  return nullptr;
}

// ----------------------------------------------------------- construction

TEST(Netlist, PortsRegistersAndLookups) {
  Netlist n("toy");
  auto in = n.add_input("Data", 8);
  auto out = n.add_output("Address", 12);
  auto r = n.add_register("IR", 8);
  EXPECT_EQ(n.port(in).width, 8u);
  EXPECT_EQ(n.port(out).dir, PortDir::kOutput);
  EXPECT_EQ(n.reg(r).name, "IR");
  EXPECT_EQ(n.find_port("Data"), in);
  EXPECT_EQ(n.find_register("IR"), r);
  EXPECT_THROW(n.find_port("nope"), Error);
  EXPECT_THROW(n.find_register("nope"), Error);
  EXPECT_EQ(n.input_ports().size(), 1u);
  EXPECT_EQ(n.output_ports().size(), 1u);
}

TEST(Netlist, RejectsZeroWidthComponents) {
  Netlist n("toy");
  EXPECT_THROW(n.add_input("a", 0), Error);
  EXPECT_THROW(n.add_register("r", 0), Error);
  EXPECT_THROW(n.add_mux("m", 0, 2), Error);
  EXPECT_THROW(n.add_mux("m", 8, 1), Error);
}

TEST(Netlist, PinWidths) {
  Netlist n("toy");
  auto r = n.add_register("R", 16);
  auto m = n.add_mux("M", 16, 3);
  auto alu = n.add_fu("ALU", FuKind::kAlu, 8, 3);
  auto eq = n.add_fu("EQ", FuKind::kEqual, 8, 2);
  EXPECT_EQ(n.pin_width(n.reg_d(r)), 16u);
  EXPECT_EQ(n.pin_width(n.reg_load(r)), 1u);
  EXPECT_EQ(n.pin_width(n.mux_in(m, 2)), 16u);
  EXPECT_EQ(n.pin_width(n.mux_select(m)), 2u);  // 3 inputs need 2 bits
  EXPECT_EQ(n.pin_width(n.fu_in(alu, 2)), 2u);  // ALU op select
  EXPECT_EQ(n.pin_width(n.fu_in(alu, 0)), 8u);
  EXPECT_EQ(n.pin_width(n.fu_out(eq)), 1u);  // comparator output
}

TEST(Netlist, RandomLogicHasIndependentInWidth) {
  Netlist n("toy");
  auto cloud = n.add_random_logic("CTRL", 10, 4, 50, 99);
  EXPECT_EQ(n.pin_width(n.fu_in(cloud, 0)), 10u);
  EXPECT_EQ(n.pin_width(n.fu_out(cloud)), 4u);
  EXPECT_EQ(n.fu(cloud).gate_hint, 50u);
}

TEST(Netlist, ConnectChecksDirections) {
  Netlist n("toy");
  auto in = n.add_input("A", 8);
  auto out = n.add_output("Z", 8);
  auto r = n.add_register("R", 8);
  EXPECT_NO_THROW(n.connect(n.pin(in), n.reg_d(r)));
  EXPECT_NO_THROW(n.connect(n.reg_q(r), n.pin(out)));
  // Driving a driver, or sourcing from a sink, is rejected.
  EXPECT_THROW(n.connect(n.pin(in), n.reg_q(r)), Error);
  EXPECT_THROW(n.connect(n.reg_d(r), n.pin(out)), Error);
  // Width mismatch without slicing is rejected.
  auto wide = n.add_register("W", 16);
  EXPECT_THROW(n.connect(n.pin(in), n.reg_d(wide)), Error);
}

TEST(Netlist, SlicedConnectBoundsChecked) {
  Netlist n("toy");
  auto in = n.add_input("A", 8);
  auto r = n.add_register("R", 4);
  EXPECT_NO_THROW(n.connect(n.pin(in), 4, n.reg_d(r), 0, 4));
  EXPECT_THROW(n.connect(n.pin(in), 6, n.reg_d(r), 0, 4), Error);
  EXPECT_THROW(n.connect(n.pin(in), 0, n.reg_d(r), 2, 4), Error);
}

TEST(Netlist, ValidateDetectsDoubleDrive) {
  Netlist n("toy");
  auto a = n.add_input("A", 8);
  auto b = n.add_input("B", 8);
  auto r = n.add_register("R", 8);
  n.connect(n.pin(a), n.reg_d(r));
  EXPECT_NO_THROW(n.validate());
  n.connect(n.pin(b), 0, n.reg_d(r), 4, 4);  // overlaps bits 4..7
  EXPECT_THROW(n.validate(), Error);
}

TEST(Netlist, ValidateAllowsDisjointSliceDrivers) {
  Netlist n("toy");
  auto a = n.add_input("A", 4);
  auto b = n.add_input("B", 4);
  auto r = n.add_register("R", 8);
  n.connect(n.pin(a), 0, n.reg_d(r), 0, 4);
  n.connect(n.pin(b), 0, n.reg_d(r), 4, 4);
  EXPECT_NO_THROW(n.validate());
}

TEST(Netlist, FlipFlopCountSumsWidths) {
  Netlist n("toy");
  n.add_register("A", 8);
  n.add_register("B", 12);
  n.add_register("C", 1);
  EXPECT_EQ(n.flip_flop_count(), 21u);
}

TEST(Netlist, DescribePin) {
  Netlist n("toy");
  auto r = n.add_register("MAR", 8);
  auto m = n.add_mux("M1", 8, 2);
  EXPECT_EQ(describe_pin(n, n.reg_d(r)), "MAR.D");
  EXPECT_EQ(describe_pin(n, n.mux_in(m, 1)), "M1.IN1");
  EXPECT_EQ(describe_pin(n, n.mux_select(m)), "M1.SEL");
}

// ------------------------------------------------------------ path search

/// Builds: Data -> MUX(in0) -> REG1 ; REG1 -> REG2 (direct);
/// REG2 -> Out ; Const -> MUX(in1).
Netlist make_chain() {
  Netlist n("chain");
  auto data = n.add_input("Data", 8);
  auto out = n.add_output("Out", 8);
  auto r1 = n.add_register("REG1", 8);
  auto r2 = n.add_register("REG2", 8);
  auto m = n.add_mux("M", 8, 2);
  auto c = n.add_constant("K", util::BitVector(8, 0));
  n.connect(n.pin(data), n.mux_in(m, 0));
  n.connect(n.const_out(c), n.mux_in(m, 1));
  n.connect(n.mux_out(m), n.reg_d(r1));
  n.connect(n.reg_q(r1), n.reg_d(r2));
  n.connect(n.reg_q(r2), n.pin(out));
  n.validate();
  return n;
}

TEST(Paths, FindsMuxAndDirectPaths) {
  auto n = make_chain();
  auto paths = enumerate_transfer_paths(n);

  const auto* via_mux = find_path(paths, n, "Data", "REG1");
  ASSERT_NE(via_mux, nullptr);
  EXPECT_FALSE(via_mux->direct());
  ASSERT_EQ(via_mux->hops.size(), 1u);
  EXPECT_EQ(via_mux->hops[0].data_index, 0u);
  EXPECT_EQ(via_mux->width, 8u);

  const auto* direct = find_path(paths, n, "REG1", "REG2");
  ASSERT_NE(direct, nullptr);
  EXPECT_TRUE(direct->direct());

  const auto* to_out = find_path(paths, n, "REG2", "Out");
  ASSERT_NE(to_out, nullptr);
  EXPECT_TRUE(to_out->direct());
}

TEST(Paths, NoPathThroughFunctionalUnit) {
  Netlist n("fu");
  auto a = n.add_input("A", 8);
  auto r = n.add_register("R", 8);
  auto add = n.add_fu("ADD", FuKind::kAdd, 8, 2);
  n.connect(n.pin(a), n.fu_in(add, 0));
  n.connect(n.reg_q(r), n.fu_in(add, 1));
  n.connect(n.fu_out(add), n.reg_d(r));
  auto paths = enumerate_transfer_paths(n);
  EXPECT_EQ(find_path(paths, n, "A", "R"), nullptr);
}

TEST(Paths, SlicedConnectionTracksRanges) {
  Netlist n("slice");
  auto in = n.add_input("IN", 8);
  auto hi = n.add_register("HI", 4);
  auto lo = n.add_register("LO", 4);
  n.connect(n.pin(in), 4, n.reg_d(hi), 0, 4);
  n.connect(n.pin(in), 0, n.reg_d(lo), 0, 4);
  auto paths = enumerate_transfer_paths(n);

  const auto* to_hi = find_path(paths, n, "IN", "HI");
  ASSERT_NE(to_hi, nullptr);
  EXPECT_EQ(to_hi->src_lo, 4u);
  EXPECT_EQ(to_hi->dst_lo, 0u);
  EXPECT_EQ(to_hi->width, 4u);

  const auto* to_lo = find_path(paths, n, "IN", "LO");
  ASSERT_NE(to_lo, nullptr);
  EXPECT_EQ(to_lo->src_lo, 0u);
  EXPECT_EQ(to_lo->width, 4u);
}

TEST(Paths, SliceComposesThroughMux) {
  Netlist n("slice-mux");
  auto in = n.add_input("IN", 8);
  auto m = n.add_mux("M", 4, 2);
  auto r = n.add_register("R", 4);
  auto c = n.add_constant("K", util::BitVector(4, 0));
  // Only the high nibble of IN enters the mux.
  n.connect(n.pin(in), 4, n.mux_in(m, 0), 0, 4);
  n.connect(n.const_out(c), n.mux_in(m, 1));
  n.connect(n.mux_out(m), n.reg_d(r));
  auto paths = enumerate_transfer_paths(n);
  const auto* p = find_path(paths, n, "IN", "R");
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->src_lo, 4u);
  EXPECT_EQ(p->dst_lo, 0u);
  EXPECT_EQ(p->width, 4u);
  EXPECT_EQ(p->hops.size(), 1u);
}

TEST(Paths, TwoLevelMuxTreeRecordsBothHops) {
  Netlist n("tree");
  auto a = n.add_input("A", 8);
  auto c = n.add_constant("K", util::BitVector(8, 0));
  auto m1 = n.add_mux("M1", 8, 2);
  auto m2 = n.add_mux("M2", 8, 2);
  auto r = n.add_register("R", 8);
  n.connect(n.pin(a), n.mux_in(m1, 1));
  n.connect(n.const_out(c), n.mux_in(m1, 0));
  n.connect(n.mux_out(m1), n.mux_in(m2, 0));
  n.connect(n.const_out(c), n.mux_in(m2, 1));
  n.connect(n.mux_out(m2), n.reg_d(r));
  auto paths = enumerate_transfer_paths(n);
  const auto* p = find_path(paths, n, "A", "R");
  ASSERT_NE(p, nullptr);
  ASSERT_EQ(p->hops.size(), 2u);
  EXPECT_EQ(p->hops[0].data_index, 1u);
  EXPECT_EQ(p->hops[1].data_index, 0u);
}

TEST(Paths, CombinationalMuxLoopDoesNotHang) {
  Netlist n("loop");
  auto a = n.add_input("A", 4);
  auto m1 = n.add_mux("M1", 4, 2);
  auto m2 = n.add_mux("M2", 4, 2);
  auto r = n.add_register("R", 4);
  n.connect(n.pin(a), n.mux_in(m1, 0));
  n.connect(n.mux_out(m2), n.mux_in(m1, 1));  // loop back edge
  n.connect(n.mux_out(m1), n.mux_in(m2, 0));
  n.connect(n.mux_out(m1), n.reg_d(r));
  auto c = n.add_constant("K", util::BitVector(4, 0));
  n.connect(n.const_out(c), n.mux_in(m2, 1));
  auto paths = enumerate_transfer_paths(n);  // must terminate
  EXPECT_NE(find_path(paths, n, "A", "R"), nullptr);
}

TEST(Paths, RegisterToOutputDirect) {
  Netlist n("ro");
  auto r = n.add_register("MARpage", 4);
  auto out = n.add_output("AddrHi", 4);
  n.connect(n.reg_q(r), n.pin(out));
  auto paths = enumerate_transfer_paths(n);
  const auto* p = find_path(paths, n, "MARpage", "AddrHi");
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->src.kind, NodeKind::kRegister);
  EXPECT_EQ(p->dst.kind, NodeKind::kOutputPort);
}

TEST(Paths, NodeHelpers) {
  Netlist n("h");
  auto in = n.add_input("A", 8);
  auto r = n.add_register("R", 4);
  auto node_in = port_node(n, in);
  auto node_r = register_node(r);
  EXPECT_EQ(node_in.kind, NodeKind::kInputPort);
  EXPECT_EQ(node_width(n, node_in), 8u);
  EXPECT_EQ(node_width(n, node_r), 4u);
  EXPECT_EQ(node_name(n, node_r), "R");
}

}  // namespace
}  // namespace socet::rtl
