#include <gtest/gtest.h>

#include <set>

#include "socet/atpg/atpg.hpp"
#include "socet/atpg/sequential.hpp"
#include "socet/gate/sim.hpp"
#include "socet/rtl/netlist.hpp"
#include "socet/synth/elaborate.hpp"

namespace socet::atpg {
namespace {

using faultsim::Fault;
using faultsim::FaultStatus;
using gate::GateId;
using gate::GateKind;
using gate::GateNetlist;

/// in -> DFF -> DFF -> PO (a 2-deep shift register): detecting faults at
/// the tail needs 3 time frames from reset.
GateNetlist make_shift2() {
  GateNetlist n("shift2");
  auto in = n.add_input("in");
  auto s1 = n.add_dff(in, "s1");
  auto s2 = n.add_dff(s1, "s2");
  auto po = n.add_gate(GateKind::kBuf, {s2}, "po");
  n.mark_output(po);
  return n;
}

// ------------------------------------------------------------------ unroll

TEST(Unroll, StructureAndSizes) {
  auto n = make_shift2();
  auto unrolled = unroll(n, 3);
  // 3 inputs (one per frame), POs marked per frame.
  EXPECT_EQ(unrolled.netlist.inputs().size(), 3u);
  EXPECT_EQ(unrolled.netlist.outputs().size(), 3u);
  EXPECT_EQ(unrolled.frames, 3u);
  EXPECT_NO_THROW(unrolled.netlist.topo_order());
}

TEST(Unroll, FrameSemanticsMatchSequentialSim) {
  // Simulate the unrolled circuit combinationally and the original
  // sequentially on the same 3-cycle stimulus; outputs must agree.
  auto n = make_shift2();
  auto unrolled = unroll(n, 3);

  const bool stimulus[3] = {true, false, true};
  std::vector<std::uint64_t> values(unrolled.netlist.gate_count(), 0);
  for (unsigned f = 0; f < 3; ++f) {
    values[unrolled.pi_map[f][0].index()] = stimulus[f] ? ~0ULL : 0;
  }
  gate::eval_comb(unrolled.netlist, values);

  gate::SequentialSim sim(n);
  sim.reset();
  for (unsigned f = 0; f < 3; ++f) {
    sim.step({stimulus[f] ? ~0ULL : 0});
    // Output of frame f = PO after cycle f... with post-edge semantics the
    // sequential sim's PO reads s2 *after* capture; the unrolled frame's
    // PO reads the pre-capture state.  Compare frame f+1's unrolled PO
    // against cycle f's post-edge value where both exist.
    if (f + 1 < 3) {
      const GateId po_next = unrolled.netlist.outputs()[f + 1];
      EXPECT_EQ(values[po_next.index()] & 1, sim.value(n.outputs()[0]) & 1)
          << "frame " << f;
    }
  }
}

TEST(Unroll, RejectsZeroFrames) {
  auto n = make_shift2();
  EXPECT_THROW(unroll(n, 0), util::Error);
}

TEST(MapFault, OneSitePerFrame) {
  auto n = make_shift2();
  auto unrolled = unroll(n, 4);
  // Stem fault on s2 must appear once per frame, each a distinct gate.
  const Fault fault{n.dffs()[1], -1, true};
  auto sites = map_fault(unrolled, fault);
  EXPECT_EQ(sites.size(), 4u);
  std::set<std::uint32_t> distinct;
  for (const auto& site : sites) distinct.insert(site.gate.value());
  EXPECT_EQ(distinct.size(), 4u);
}

// ---------------------------------------------------------- sequential ATPG

TEST(SequentialAtpg, FullCoverageOnShiftRegister) {
  auto n = make_shift2();
  auto result = sequential_atpg(n, {.max_frames = 4, .random_cycles = 0});
  EXPECT_DOUBLE_EQ(result.coverage().fault_coverage(), 100.0)
      << "every fault in a shift register is sequentially testable";
  EXPECT_FALSE(result.sequences.empty());
  for (const auto& sequence : result.sequences) {
    EXPECT_LE(sequence.size(), 4u);
    for (const auto& vec : sequence) EXPECT_EQ(vec.width(), 1u);
  }
}

TEST(SequentialAtpg, SequencesVerifiedBySimulator) {
  // The driver only keeps simulator-verified sequences; re-verify here.
  auto n = make_shift2();
  auto result = sequential_atpg(n, {.max_frames = 4, .random_cycles = 8});
  auto faults = faultsim::enumerate_faults(n);
  std::vector<FaultStatus> statuses(faults.size(), FaultStatus::kUndetected);
  faultsim::SequentialFaultSim sim(n);
  for (const auto& sequence : result.sequences) {
    sim.run(faults, sequence, statuses);
  }
  EXPECT_EQ(faultsim::summarize(statuses).detected,
            result.coverage().detected);
}

TEST(SequentialAtpg, DeepCounterNeedsDeepFrames) {
  // A 3-bit counter with the PO on the top bit: exciting it requires
  // counting up — only reachable with enough frames.
  GateNetlist n("ctr3");
  auto en = n.add_input("en");
  std::vector<GateId> bits;
  GateId carry = en;
  for (int b = 0; b < 3; ++b) {
    auto d = n.add_dff_floating("b" + std::to_string(b));
    bits.push_back(d);
    auto x = n.add_gate(GateKind::kXor, {d, carry}, "x");
    auto c = n.add_gate(GateKind::kAnd, {d, carry}, "c");
    n.set_dff_input(d, x);
    carry = c;
  }
  auto po = n.add_gate(GateKind::kBuf, {bits[2]}, "po");
  n.mark_output(po);

  // The PO stuck-at-0 fault needs bit2 = 1, i.e. at least 4 enabled
  // cycles plus one to observe.
  const Fault target{po, -1, false};
  auto faults = faultsim::enumerate_faults(n);
  std::size_t target_index = faults.size();
  for (std::size_t i = 0; i < faults.size(); ++i) {
    if (faults[i] == target) target_index = i;
  }
  ASSERT_LT(target_index, faults.size());

  auto shallow = sequential_atpg(n, {.max_frames = 3, .random_cycles = 0});
  EXPECT_NE(shallow.statuses[target_index], FaultStatus::kDetected)
      << "3 frames cannot reach bit2=1";
  auto deep = sequential_atpg(n, {.max_frames = 8, .random_cycles = 0});
  EXPECT_EQ(deep.statuses[target_index], FaultStatus::kDetected);
}

TEST(SequentialAtpg, BeatsRandomOnStructuredLogic) {
  // A comparator against a specific constant: random vectors rarely hit
  // the magic value, deterministic frames do.
  rtl::Netlist core("magic");
  auto in = core.add_input("IN", 8);
  auto out = core.add_output("HIT", 1);
  auto r = core.add_register("R", 8, /*has_load_enable=*/false);
  auto eq = core.add_fu("EQ", rtl::FuKind::kEqual, 8, 2);
  auto k = core.add_constant("K", util::BitVector(8, 0xA7));
  core.connect(core.pin(in), core.reg_d(r));
  core.connect(core.reg_q(r), core.fu_in(eq, 0));
  core.connect(core.const_out(k), core.fu_in(eq, 1));
  core.connect(core.fu_out(eq), core.pin(out));
  auto elab = synth::elaborate(core);

  auto random_only = sequential_coverage(elab.gates, 16, 3);
  auto with_podem = sequential_atpg(
      elab.gates, {.max_frames = 3, .random_cycles = 16, .seed = 3});
  EXPECT_GT(with_podem.coverage().fault_coverage(),
            random_only.fault_coverage());
  EXPECT_GT(with_podem.coverage().fault_coverage(), 95.0);
}

TEST(SequentialAtpg, NoUntestableClaims) {
  auto n = make_shift2();
  // Add a genuinely redundant observation-free gate.
  auto dead = n.add_gate(GateKind::kNot, {n.inputs()[0]}, "dead");
  (void)dead;
  auto result = sequential_atpg(n, {.max_frames = 2, .random_cycles = 4});
  for (auto status : result.statuses) {
    EXPECT_NE(status, FaultStatus::kUntestable)
        << "bounded unrolling must not claim redundancy";
  }
}

}  // namespace
}  // namespace socet::atpg
