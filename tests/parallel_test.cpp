#include <gtest/gtest.h>

#include "socet/opt/optimize.hpp"
#include "socet/soc/parallel.hpp"
#include "socet/systems/synthetic.hpp"
#include "socet/systems/systems.hpp"

namespace socet::soc {
namespace {

using rtl::Netlist;

/// Two independent pass-through cores on separate pin pairs: perfectly
/// parallelizable.
struct IndependentChip {
  std::vector<std::unique_ptr<core::Core>> cores;
  Soc soc{"indep"};

  IndependentChip() {
    for (int i = 0; i < 2; ++i) {
      Netlist n("C" + std::to_string(i));
      auto in = n.add_input("IN", 8);
      auto out = n.add_output("OUT", 8);
      auto r = n.add_register("R", 8);
      auto m = n.add_mux("M", 8, 2);
      auto k = n.add_constant("K", util::BitVector(8, 0));
      n.connect(n.pin(in), n.mux_in(m, 0));
      n.connect(n.const_out(k), n.mux_in(m, 1));
      n.connect(n.mux_out(m), n.reg_d(r));
      n.connect(n.reg_q(r), n.pin(out));
      cores.push_back(std::make_unique<core::Core>(
          core::Core::prepare(std::move(n))));
      cores.back()->set_scan_vectors(20);
    }
    for (int i = 0; i < 2; ++i) {
      auto c = soc.add_core(cores[i].get());
      auto pi = soc.add_pi("PI" + std::to_string(i), 8);
      auto po = soc.add_po("PO" + std::to_string(i), 8);
      soc.connect(pi, c, "IN");
      soc.connect(c, "OUT", po);
    }
    soc.validate();
  }
};

TEST(Parallel, IndependentCoresShareOneSession) {
  IndependentChip chip;
  const std::vector<unsigned> selection(2, 0);
  auto plan = plan_chip_test(chip.soc, selection);
  auto schedule = schedule_parallel(chip.soc, selection, plan);
  ASSERT_EQ(schedule.sessions.size(), 1u);
  EXPECT_EQ(schedule.sessions[0].size(), 2u);
  EXPECT_EQ(schedule.total_tat,
            std::max(plan.cores[0].tat, plan.cores[1].tat));
  EXPECT_GT(schedule.speedup(), 1.5);
}

TEST(Parallel, ConduitCoresCannotOverlap) {
  // The barcode system: the DISPLAY's test drives the PREPROCESSOR and
  // CPU as conduits, so those three can never share a session.
  auto system = systems::make_barcode_system();
  const std::vector<unsigned> selection(3, 0);
  auto plan = plan_chip_test(*system.soc, selection);
  Ccg ccg(*system.soc, selection);
  const auto disp = system.soc->find_core("DISPLAY");
  const auto pre = system.soc->find_core("PREPROCESSOR");
  const auto cpu = system.soc->find_core("CPU");
  EXPECT_FALSE(sessions_compatible(*system.soc, ccg, plan, disp, pre));
  EXPECT_FALSE(sessions_compatible(*system.soc, ccg, plan, disp, cpu));
  EXPECT_FALSE(sessions_compatible(*system.soc, ccg, plan, cpu, pre));

  auto schedule = schedule_parallel(*system.soc, selection, plan);
  EXPECT_EQ(schedule.sessions.size(), 3u)
      << "the pipeline forces fully sequential testing";
  EXPECT_EQ(schedule.total_tat, schedule.sequential_tat);
}

TEST(Parallel, NeverSlowerThanSequential) {
  for (std::uint64_t seed : {2u, 9u, 17u, 23u}) {
    auto system = systems::make_synthetic_system(seed);
    const std::vector<unsigned> selection(system.soc->cores().size(), 0);
    auto plan = plan_chip_test(*system.soc, selection);
    auto schedule = schedule_parallel(*system.soc, selection, plan);
    EXPECT_LE(schedule.total_tat, schedule.sequential_tat) << seed;
    // Every core appears in exactly one session.
    std::set<std::uint32_t> seen;
    for (const auto& session : schedule.sessions) {
      for (auto core : session) {
        EXPECT_TRUE(seen.insert(core).second);
      }
    }
    EXPECT_EQ(seen.size(), system.soc->cores().size());
  }
}

TEST(Parallel, SessionsArePairwiseCompatible) {
  for (std::uint64_t seed : {4u, 12u}) {
    auto system = systems::make_synthetic_system(seed);
    const std::vector<unsigned> selection(system.soc->cores().size(), 0);
    auto plan = plan_chip_test(*system.soc, selection);
    Ccg ccg(*system.soc, selection);
    auto schedule = schedule_parallel(*system.soc, selection, plan);
    for (const auto& session : schedule.sessions) {
      for (std::size_t i = 0; i < session.size(); ++i) {
        for (std::size_t j = i + 1; j < session.size(); ++j) {
          EXPECT_TRUE(sessions_compatible(*system.soc, ccg, plan, session[i],
                                          session[j]))
              << "seed " << seed;
        }
      }
    }
  }
}

// ----------------------------------------------------- weighted objective

TEST(WeightedObjective, ExtremesMatchDedicatedObjectives) {
  auto system = systems::make_barcode_system();
  // All-area weight: never upgrade.
  auto area_heavy = opt::minimize_weighted(*system.soc, 0.0, 1.0);
  auto min_area = soc::plan_chip_test(
      *system.soc, std::vector<unsigned>(3, 0));
  EXPECT_EQ(area_heavy.tat, min_area.total_tat);
  // All-TAT weight: matches the unconstrained min-TAT walk (exact mode).
  opt::OptimizeOptions exact;
  exact.heuristic_ranking = false;
  auto tat_heavy = opt::minimize_weighted(*system.soc, 1.0, 0.0, exact);
  auto min_tat = opt::minimize_tat(*system.soc, 1'000'000, exact);
  EXPECT_EQ(tat_heavy.tat, min_tat.tat);
}

TEST(WeightedObjective, IntermediateWeightsInterpolate) {
  auto system = systems::make_barcode_system();
  auto cheap = opt::minimize_weighted(*system.soc, 1.0, 1000.0);
  auto balanced = opt::minimize_weighted(*system.soc, 1.0, 10.0);
  auto fast = opt::minimize_weighted(*system.soc, 1.0, 0.01);
  EXPECT_LE(cheap.overhead_cells, balanced.overhead_cells);
  EXPECT_LE(balanced.overhead_cells, fast.overhead_cells);
  EXPECT_GE(cheap.tat, balanced.tat);
  EXPECT_GE(balanced.tat, fast.tat);
}

TEST(WeightedObjective, RejectsBadWeights) {
  auto system = systems::make_barcode_system();
  EXPECT_THROW(opt::minimize_weighted(*system.soc, 0.0, 0.0), util::Error);
  EXPECT_THROW(opt::minimize_weighted(*system.soc, -1.0, 1.0), util::Error);
}

}  // namespace
}  // namespace socet::soc
