#include <gtest/gtest.h>

#include "socet/core/serialize.hpp"
#include "socet/soc/schedule.hpp"
#include "socet/systems/systems.hpp"

namespace socet::core {
namespace {

TEST(Serialize, RoundTripPreservesEverything) {
  Core cpu = Core::prepare(systems::make_cpu_rtl());
  cpu.set_scan_vectors(110);

  const std::string text = serialize_interface(cpu);
  auto parsed = parse_interface(text);
  Core restored = Core::from_interface(parsed);

  EXPECT_EQ(restored.name(), cpu.name());
  EXPECT_EQ(restored.scan_vectors(), cpu.scan_vectors());
  EXPECT_EQ(restored.hscan_overhead_cells(), cpu.hscan_overhead_cells());
  EXPECT_EQ(restored.hscan().max_depth, cpu.hscan().max_depth);
  EXPECT_EQ(restored.fscan_overhead_cells(), cpu.fscan_overhead_cells());
  EXPECT_EQ(restored.flip_flop_count(), cpu.flip_flop_count());
  EXPECT_EQ(restored.hscan_vectors(), cpu.hscan_vectors());
  EXPECT_EQ(restored.total_port_bits(), cpu.total_port_bits());

  ASSERT_EQ(restored.version_count(), cpu.version_count());
  for (std::size_t v = 0; v < cpu.version_count(); ++v) {
    const auto& a = cpu.version(v);
    const auto& b = restored.version(v);
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.extra_cells, b.extra_cells);
    ASSERT_EQ(a.edges.size(), b.edges.size());
    for (std::size_t e = 0; e < a.edges.size(); ++e) {
      EXPECT_EQ(a.edges[e].input, b.edges[e].input);
      EXPECT_EQ(a.edges[e].output, b.edges[e].output);
      EXPECT_EQ(a.edges[e].latency, b.edges[e].latency);
      EXPECT_EQ(a.edges[e].serial_group, b.edges[e].serial_group);
      EXPECT_EQ(a.edges[e].via_added_mux, b.edges[e].via_added_mux);
    }
  }
}

TEST(Serialize, SerializationIsStable) {
  Core cpu = Core::prepare(systems::make_cpu_rtl());
  cpu.set_scan_vectors(42);
  const std::string once = serialize_interface(cpu);
  Core restored = Core::from_interface(parse_interface(once));
  EXPECT_EQ(serialize_interface(restored), once) << "not a fixpoint";
}

TEST(Serialize, HardCorePlansIdenticallyToSoftCore) {
  // The integrator's whole point: a chip planned against shipped
  // interfaces must produce the same schedule as one planned against the
  // full cores.
  auto soft = systems::make_barcode_system();
  const std::vector<unsigned> selection(soft.soc->cores().size(), 0);
  auto soft_plan = soc::plan_chip_test(*soft.soc, selection);

  // Rebuild the SOC from serialized interfaces only.
  std::vector<std::unique_ptr<Core>> hard_cores;
  for (const auto& core : soft.cores) {
    hard_cores.push_back(std::make_unique<Core>(
        Core::from_interface(parse_interface(serialize_interface(*core)))));
  }
  soc::Soc chip("System1-hard");
  auto cpu = chip.add_core(hard_cores[0].get());
  auto pre = chip.add_core(hard_cores[1].get());
  auto disp = chip.add_core(hard_cores[2].get());
  auto video = chip.add_pi("Video", 1);
  auto num = chip.add_pi("NUM", 8);
  auto reset = chip.add_pi("Reset", 1);
  auto cpu_reset = chip.add_pi("CpuReset", 1);
  chip.connect(video, pre, "Video");
  chip.connect(num, pre, "NUM");
  chip.connect(reset, pre, "Reset");
  chip.connect(cpu_reset, cpu, "Reset");
  chip.connect(pre, "DB", cpu, "Data");
  chip.connect(pre, "Eoc", cpu, "Interrupt");
  chip.connect(cpu, "AddrLo", disp, "ALo");
  chip.connect(cpu, "AddrHi", disp, "AHi");
  chip.connect(pre, "DB", disp, "D");
  for (int i = 1; i <= 6; ++i) {
    auto po = chip.add_po("PO-PORT" + std::to_string(i), 7);
    chip.connect(disp, "PORT" + std::to_string(i), po);
  }
  chip.validate();

  auto hard_plan = soc::plan_chip_test(chip, selection);
  EXPECT_EQ(hard_plan.total_tat, soft_plan.total_tat);
  EXPECT_EQ(hard_plan.total_overhead_cells(),
            soft_plan.total_overhead_cells());
}

TEST(Serialize, ParserRejectsMalformedInput) {
  EXPECT_THROW(parse_interface(""), util::Error);
  EXPECT_THROW(parse_interface("garbage v1\nend\n"), util::Error);
  EXPECT_THROW(parse_interface("socet-core-interface v2\nend\n"),
               util::Error);
  EXPECT_THROW(parse_interface("socet-core-interface v1\ncore X\n"),
               util::Error)
      << "missing end";
  EXPECT_THROW(
      parse_interface("socet-core-interface v1\ncore X\nwtf 3\nend\n"),
      util::Error);
  EXPECT_THROW(
      parse_interface("socet-core-interface v1\ncore X\n"
                      "edge A B 1 0 0\nend\n"),
      util::Error)
      << "edge before version";
  EXPECT_THROW(
      parse_interface("socet-core-interface v1\ncore X\n"
                      "version V 1\nedge A B 1 0 0\nend\n"),
      util::Error)
      << "unknown port";
  EXPECT_THROW(
      parse_interface("socet-core-interface v1\ncore X\n"
                      "port A in data 0\nend\n"),
      util::Error)
      << "zero-width port";
}

TEST(Serialize, CommentsAndBlankLinesIgnored) {
  const std::string text =
      "socet-core-interface v1\n"
      "# a hard core\n"
      "core MINI\n"
      "\n"
      "flip_flops 8   # two registers\n"
      "scan_vectors 5\n"
      "hscan 4 2\n"
      "fscan 24\n"
      "port IN in data 8\n"
      "port OUT out data 8\n"
      "version Version_1 3\n"
      "edge IN OUT 2 -1 0\n"
      "end\n";
  auto parsed = parse_interface(text);
  EXPECT_EQ(parsed.name, "MINI");
  EXPECT_EQ(parsed.flip_flops, 8u);
  ASSERT_EQ(parsed.versions.size(), 1u);
  EXPECT_EQ(parsed.versions[0].name, "Version 1");
  ASSERT_EQ(parsed.versions[0].edges.size(), 1u);
  EXPECT_EQ(parsed.versions[0].edges[0].latency, 2u);
  EXPECT_EQ(parsed.versions[0].edges[0].serial_group, -1);
}

TEST(Serialize, FromInterfaceValidates) {
  CoreInterface bad;
  EXPECT_THROW(Core::from_interface(bad), util::Error);
  bad.name = "X";
  EXPECT_THROW(Core::from_interface(bad), util::Error) << "no versions";
}

}  // namespace
}  // namespace socet::core
