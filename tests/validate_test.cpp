#include <gtest/gtest.h>

#include "socet/soc/validate.hpp"
#include "socet/systems/synthetic.hpp"
#include "socet/systems/systems.hpp"

namespace socet::soc {
namespace {

TEST(ValidatePlan, Sys1AllSelectionsSound) {
  auto system = systems::make_barcode_system();
  for (unsigned v = 0; v < 3; ++v) {
    std::vector<unsigned> selection(system.soc->cores().size(), v);
    auto plan = plan_chip_test(*system.soc, selection);
    auto violations = validate_plan(*system.soc, selection, plan);
    for (const auto& violation : violations) {
      ADD_FAILURE() << "V" << (v + 1) << ": " << violation;
    }
  }
}

TEST(ValidatePlan, Sys2Sound) {
  auto system = systems::make_system2();
  const std::vector<unsigned> selection(system.soc->cores().size(), 0);
  auto plan = plan_chip_test(*system.soc, selection);
  EXPECT_TRUE(validate_plan(*system.soc, selection, plan).empty());
}

TEST(ValidatePlan, DetectsTamperedPeriod) {
  auto system = systems::make_barcode_system();
  const std::vector<unsigned> selection(system.soc->cores().size(), 0);
  auto plan = plan_chip_test(*system.soc, selection);
  plan.cores[0].period += 1;
  auto violations = validate_plan(*system.soc, selection, plan);
  EXPECT_FALSE(violations.empty());
}

TEST(ValidatePlan, DetectsTamperedTat) {
  auto system = systems::make_barcode_system();
  const std::vector<unsigned> selection(system.soc->cores().size(), 0);
  auto plan = plan_chip_test(*system.soc, selection);
  plan.cores[1].tat -= 1;
  auto violations = validate_plan(*system.soc, selection, plan);
  EXPECT_FALSE(violations.empty());
}

TEST(ValidatePlan, DetectsTamperedRouteTiming) {
  auto system = systems::make_barcode_system();
  const std::vector<unsigned> selection(system.soc->cores().size(), 0);
  auto plan = plan_chip_test(*system.soc, selection);
  bool tampered = false;
  for (auto& core_plan : plan.cores) {
    for (auto& [port, route] : core_plan.input_routes) {
      for (auto& step : route.steps) {
        if (step.depart > 0) {
          step.depart = 0;  // breaks arrive == depart + latency
          tampered = true;
          break;
        }
      }
      if (tampered) break;
    }
    if (tampered) break;
  }
  ASSERT_TRUE(tampered);
  EXPECT_FALSE(validate_plan(*system.soc, selection, plan).empty());
}

TEST(ValidatePlan, NaiveSchedulingFailsExclusivity) {
  // The ignore_reservations ablation produces overlapping resource use —
  // the validator must reject it somewhere (that is the ablation's point).
  auto system = systems::make_barcode_system();
  const std::vector<unsigned> selection(system.soc->cores().size(), 0);
  PlanOptions naive;
  naive.ignore_reservations = true;
  auto plan = plan_chip_test(*system.soc, selection, naive);
  auto violations = validate_plan(*system.soc, selection, plan);
  bool exclusivity = false;
  for (const auto& violation : violations) {
    exclusivity |= violation.find("double-booked") != std::string::npos;
  }
  EXPECT_TRUE(exclusivity);
}

// Property sweep: every synthetic SOC yields a sound plan in every
// uniform version selection.
class SyntheticPlanProperty : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(SyntheticPlanProperty, PlansAreAlwaysSound) {
  auto system = systems::make_synthetic_system(GetParam());
  for (unsigned v = 0; v < 3; ++v) {
    std::vector<unsigned> selection;
    for (const auto* core : system.soc->cores()) {
      selection.push_back(
          std::min<unsigned>(v, static_cast<unsigned>(core->version_count() - 1)));
    }
    auto plan = plan_chip_test(*system.soc, selection);
    auto violations = validate_plan(*system.soc, selection, plan);
    for (const auto& violation : violations) {
      ADD_FAILURE() << "seed " << GetParam() << " V" << (v + 1) << ": "
                    << violation;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SyntheticPlanProperty,
                         ::testing::Range<std::uint64_t>(1, 21));

}  // namespace
}  // namespace socet::soc
