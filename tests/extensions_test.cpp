// Tests for the extension features: pipelined transparency scheduling,
// test-set compaction, and the partial-isolation-ring baseline.
#include <gtest/gtest.h>

#include "socet/atpg/atpg.hpp"
#include "socet/baselines/baselines.hpp"
#include "socet/soc/validate.hpp"
#include "socet/synth/elaborate.hpp"
#include "socet/systems/synthetic.hpp"
#include "socet/systems/systems.hpp"

namespace socet {
namespace {

// ------------------------------------------------------------- pipelining

TEST(Pipelining, NeverSlowerAndValidatorAgrees) {
  auto system = systems::make_barcode_system();
  for (unsigned v = 0; v < 3; ++v) {
    std::vector<unsigned> selection(system.soc->cores().size(), v);
    soc::PlanOptions pipelined;
    pipelined.allow_pipelining = true;
    auto base = soc::plan_chip_test(*system.soc, selection);
    auto pipe = soc::plan_chip_test(*system.soc, selection, pipelined);
    EXPECT_LE(pipe.total_tat, base.total_tat);
    EXPECT_EQ(pipe.total_overhead_cells(), base.total_overhead_cells());
    EXPECT_TRUE(
        soc::validate_plan(*system.soc, selection, pipe, pipelined).empty());
    // Mixing accounting modes must be caught — wherever pipelining made a
    // difference at all.
    if (pipe.total_tat != base.total_tat) {
      EXPECT_FALSE(soc::validate_plan(*system.soc, selection, pipe).empty());
    }
  }
}

TEST(Pipelining, DirectlyAccessibleCoreUnaffected) {
  // A core with period 1 has II = 1: pipelining changes nothing.
  auto system = systems::make_barcode_system();
  const auto pre = system.soc->find_core("PREPROCESSOR");
  const std::vector<unsigned> selection(system.soc->cores().size(), 0);
  soc::PlanOptions pipelined;
  pipelined.allow_pipelining = true;
  auto base = soc::plan_chip_test(*system.soc, selection);
  auto pipe = soc::plan_chip_test(*system.soc, selection, pipelined);
  EXPECT_EQ(base.cores[pre].period, 1u);
  EXPECT_EQ(pipe.cores[pre].tat, base.cores[pre].tat);
}

TEST(Pipelining, SyntheticSweep) {
  for (std::uint64_t seed : {3u, 7u, 11u}) {
    auto system = systems::make_synthetic_system(seed);
    const std::vector<unsigned> selection(system.soc->cores().size(), 0);
    soc::PlanOptions pipelined;
    pipelined.allow_pipelining = true;
    auto base = soc::plan_chip_test(*system.soc, selection);
    auto pipe = soc::plan_chip_test(*system.soc, selection, pipelined);
    EXPECT_LE(pipe.total_tat, base.total_tat) << "seed " << seed;
  }
}

// -------------------------------------------------------------- compaction

TEST(Compaction, PreservesCoverageAndShrinks) {
  auto display = synth::elaborate(systems::make_display_rtl());
  auto result = atpg::generate_tests(display.gates, {.random_patterns = 64});
  auto compact = atpg::compact_patterns(display.gates, result.patterns);
  EXPECT_LT(compact.size(), result.patterns.size());
  const auto before = atpg::grade_patterns(display.gates, result.patterns);
  const auto after = atpg::grade_patterns(display.gates, compact);
  EXPECT_EQ(before.detected, after.detected);
}

TEST(Compaction, IdempotentOnCompactedSet) {
  auto gcd = synth::elaborate(systems::make_gcd_rtl());
  auto result = atpg::generate_tests(gcd.gates, {.random_patterns = 32});
  auto once = atpg::compact_patterns(gcd.gates, result.patterns);
  auto twice = atpg::compact_patterns(gcd.gates, once);
  // A second pass may reorder-drop a little, but never grows.
  EXPECT_LE(twice.size(), once.size());
  EXPECT_EQ(atpg::grade_patterns(gcd.gates, twice).detected,
            atpg::grade_patterns(gcd.gates, once).detected);
}

TEST(Compaction, EmptyInEmptyOut) {
  auto gcd = synth::elaborate(systems::make_gcd_rtl());
  EXPECT_TRUE(atpg::compact_patterns(gcd.gates, {}).empty());
}

// -------------------------------------------------------- isolation rings

TEST(IsolationRings, CheaperThanFullBoundaryScan) {
  for (auto* make : {&systems::make_barcode_system, &systems::make_system2}) {
    auto system = make({});
    auto full = baselines::fscan_bscan(*system.soc);
    auto partial = baselines::partial_isolation_rings(*system.soc);
    EXPECT_LT(partial.chip_level_cells, full.chip_level_cells);
    EXPECT_LE(partial.total_tat, full.total_tat);
    EXPECT_EQ(partial.core_level_cells, full.core_level_cells)
        << "both fully scan the cores";
  }
}

TEST(IsolationRings, RingBitsAreTheDanglingPorts) {
  // System 1's dangling ports: CPU AddrLo is wired, but DataOut/Read/Write
  // (8+1+1) and PREPROCESSOR Address (12) feed only the excluded memories.
  auto system = systems::make_barcode_system();
  auto partial = baselines::partial_isolation_rings(*system.soc);
  EXPECT_EQ(partial.ring_bits, 8u + 1 + 1 + 12);
}

TEST(IsolationRings, FullyWiredSocNeedsNoRings) {
  auto system = systems::make_synthetic_system(5);
  // Count dangling ports; rings must equal their width sum exactly.
  unsigned dangling_bits = 0;
  for (std::uint32_t c = 0; c < system.soc->cores().size(); ++c) {
    const auto& netlist = system.soc->core(c).netlist();
    for (std::uint32_t p = 0; p < netlist.ports().size(); ++p) {
      const rtl::PortId port(p);
      bool wired = false;
      for (const auto& link : system.soc->links()) {
        if (const auto* ref = std::get_if<soc::CorePortRef>(&link.from)) {
          wired |= ref->core == c && ref->port == port;
        }
        if (const auto* ref = std::get_if<soc::CorePortRef>(&link.to)) {
          wired |= ref->core == c && ref->port == port;
        }
      }
      if (!wired) dangling_bits += netlist.port(port).width;
    }
  }
  auto partial = baselines::partial_isolation_rings(*system.soc);
  EXPECT_EQ(partial.ring_bits, dangling_bits);
}

}  // namespace
}  // namespace socet
