#include <gtest/gtest.h>

#include "socet/faultsim/faults.hpp"
#include "socet/faultsim/scan_sim.hpp"
#include "socet/faultsim/seq_sim.hpp"
#include "socet/util/rng.hpp"

namespace socet::faultsim {
namespace {

using gate::GateId;
using gate::GateKind;
using gate::GateNetlist;
using util::BitVector;

/// a AND b -> z, all observable.
GateNetlist make_and2() {
  GateNetlist n("and2");
  auto a = n.add_input("a");
  auto b = n.add_input("b");
  auto z = n.add_gate(GateKind::kAnd, {a, b}, "z");
  n.mark_output(z);
  return n;
}

ScanPattern pat2(bool a, bool b) {
  ScanPattern p;
  p.pi = BitVector(2);
  p.pi.set(0, a);
  p.pi.set(1, b);
  p.ppi = BitVector(0);
  return p;
}

// ------------------------------------------------------------- fault lists

TEST(Faults, UncollapsedUniverseCountsAllPins) {
  auto n = make_and2();
  auto faults = enumerate_faults(n, /*collapse=*/false);
  // Stems: a, b, z (2 each) + 2 input pins of z (2 each) = 10.
  EXPECT_EQ(faults.size(), 10u);
}

TEST(Faults, CollapseRemovesControllingInputFaults) {
  auto n = make_and2();
  auto faults = enumerate_faults(n, /*collapse=*/true);
  // Collapsed: stems (6) + input s-a-1 on each AND pin (2) = 8.
  EXPECT_EQ(faults.size(), 8u);
  for (const auto& f : faults) {
    if (f.pin >= 0) {
      EXPECT_TRUE(f.stuck_at) << "AND input s-a-0 must collapse";
    }
  }
}

TEST(Faults, ConstantsCarryNoFaults) {
  GateNetlist n("c");
  auto c0 = n.add_gate(GateKind::kConst0, {});
  auto b = n.add_gate(GateKind::kBuf, {c0}, "z");
  n.mark_output(b);
  auto faults = enumerate_faults(n);
  for (const auto& f : faults) {
    EXPECT_NE(f.gate, c0);
  }
}

TEST(Faults, DescribeFormats) {
  auto n = make_and2();
  EXPECT_EQ(describe_fault(n, Fault{GateId(2), -1, true}), "z s-a-1");
  EXPECT_EQ(describe_fault(n, Fault{GateId(2), 1, false}), "z/in1 s-a-0");
}

TEST(Faults, SummaryMath) {
  std::vector<FaultStatus> s{FaultStatus::kDetected, FaultStatus::kDetected,
                             FaultStatus::kUntestable, FaultStatus::kUndetected,
                             FaultStatus::kAborted};
  auto sum = summarize(s);
  EXPECT_EQ(sum.total, 5u);
  EXPECT_EQ(sum.detected, 2u);
  EXPECT_EQ(sum.untestable, 1u);
  EXPECT_EQ(sum.aborted, 1u);
  EXPECT_DOUBLE_EQ(sum.fault_coverage(), 40.0);
  EXPECT_DOUBLE_EQ(sum.test_efficiency(), 60.0);
}

// --------------------------------------------------------------- scan sim

TEST(ScanSim, ExhaustivePatternsDetectAllAnd2Faults) {
  auto n = make_and2();
  auto faults = enumerate_faults(n);
  std::vector<FaultStatus> statuses(faults.size(), FaultStatus::kUndetected);
  std::vector<ScanPattern> patterns{pat2(0, 0), pat2(0, 1), pat2(1, 0),
                                    pat2(1, 1)};
  ScanFaultSim sim(n);
  sim.run(faults, patterns, statuses);
  EXPECT_DOUBLE_EQ(summarize(statuses).fault_coverage(), 100.0);
}

TEST(ScanSim, SinglePatternDetectsOnlyItsFaults) {
  auto n = make_and2();
  auto faults = enumerate_faults(n);
  std::vector<FaultStatus> statuses(faults.size(), FaultStatus::kUndetected);
  ScanFaultSim sim(n);
  // Pattern 11 detects z s-a-0, a s-a-0, b s-a-0 (all make output flip).
  sim.run(faults, {pat2(1, 1)}, statuses);
  auto sum = summarize(statuses);
  EXPECT_EQ(sum.detected, 3u);
}

TEST(ScanSim, RespectsExistingStatuses) {
  auto n = make_and2();
  auto faults = enumerate_faults(n);
  std::vector<FaultStatus> statuses(faults.size(), FaultStatus::kUntestable);
  ScanFaultSim sim(n);
  sim.run(faults, {pat2(1, 1)}, statuses);
  for (auto s : statuses) EXPECT_EQ(s, FaultStatus::kUntestable);
}

TEST(ScanSim, ObservesFaultsAtFlipFlopDPins) {
  // a -> AND(a, q) -> DFF, no PO at all: detection must come via the PPO.
  GateNetlist n("ff");
  auto a = n.add_input("a");
  auto d = n.add_dff_floating("q");
  auto g = n.add_gate(GateKind::kAnd, {a, d}, "g");
  n.set_dff_input(d, g);

  auto faults = enumerate_faults(n);
  std::vector<FaultStatus> statuses(faults.size(), FaultStatus::kUndetected);
  ScanFaultSim sim(n);
  ScanPattern p;
  p.pi = BitVector(1, 1);
  p.ppi = BitVector(1, 1);
  sim.run(faults, {p}, statuses);
  EXPECT_GT(summarize(statuses).detected, 0u);
}

TEST(ScanSim, RedundantFaultNeverDetected) {
  // z = a OR (a AND b): the AND's effect is masked when a=1, so the AND
  // output s-a-0 is undetectable.
  GateNetlist n("red");
  auto a = n.add_input("a");
  auto b = n.add_input("b");
  auto g1 = n.add_gate(GateKind::kAnd, {a, b}, "g1");
  auto z = n.add_gate(GateKind::kOr, {a, g1}, "z");
  n.mark_output(z);

  std::vector<Fault> faults{{g1, -1, false}};
  std::vector<FaultStatus> statuses{FaultStatus::kUndetected};
  std::vector<ScanPattern> patterns;
  for (unsigned v = 0; v < 4; ++v) patterns.push_back(pat2(v & 1, v >> 1));
  ScanFaultSim sim(n);
  sim.run(faults, patterns, statuses);
  EXPECT_EQ(statuses[0], FaultStatus::kUndetected);
}

TEST(ScanSim, ManyPatternsAcrossBlockBoundary) {
  auto n = make_and2();
  auto faults = enumerate_faults(n);
  std::vector<FaultStatus> statuses(faults.size(), FaultStatus::kUndetected);
  // 100 useless patterns then the 4 exhaustive ones: forces 2 blocks.
  std::vector<ScanPattern> patterns(100, pat2(0, 0));
  patterns.push_back(pat2(0, 1));
  patterns.push_back(pat2(1, 0));
  patterns.push_back(pat2(1, 1));
  ScanFaultSim sim(n);
  sim.run(faults, patterns, statuses);
  EXPECT_DOUBLE_EQ(summarize(statuses).fault_coverage(), 100.0);
}

TEST(ScanSim, GoodResponseMatchesLogic) {
  auto n = make_and2();
  ScanFaultSim sim(n);
  EXPECT_TRUE(sim.good_response(pat2(1, 1)).get(0));
  EXPECT_FALSE(sim.good_response(pat2(1, 0)).get(0));
}

// --------------------------------------------------------------- seq sim

TEST(SeqSim, DetectsFaultsInToggleCounter) {
  // DFF toggling via NOT, observed at a PO buffer.
  GateNetlist n("tog");
  auto d = n.add_dff_floating("q");
  auto inv = n.add_gate(GateKind::kNot, {d}, "inv");
  n.set_dff_input(d, inv);
  auto po = n.add_gate(GateKind::kBuf, {d}, "po");
  n.mark_output(po);

  auto faults = enumerate_faults(n);
  std::vector<FaultStatus> statuses(faults.size(), FaultStatus::kUndetected);
  SequentialFaultSim sim(n);
  std::vector<BitVector> sequence(4, BitVector(0));
  sim.run(faults, sequence, statuses);
  // Every stem fault in this tiny loop is detectable within 4 cycles.
  EXPECT_DOUBLE_EQ(summarize(statuses).fault_coverage(), 100.0);
}

TEST(SeqSim, UnobservableLogicStaysUndetected) {
  GateNetlist n("dead");
  auto a = n.add_input("a");
  auto dead = n.add_gate(GateKind::kNot, {a}, "dead");  // feeds nothing
  auto live = n.add_gate(GateKind::kBuf, {a}, "live");
  n.mark_output(live);
  (void)dead;

  auto faults = enumerate_faults(n);
  std::vector<FaultStatus> statuses(faults.size(), FaultStatus::kUndetected);
  SequentialFaultSim sim(n);
  std::vector<BitVector> sequence{BitVector(1, 0), BitVector(1, 1)};
  sim.run(faults, sequence, statuses);
  for (std::size_t i = 0; i < faults.size(); ++i) {
    const bool on_dead = faults[i].gate.value() == 1;
    EXPECT_EQ(statuses[i] == FaultStatus::kDetected, !on_dead)
        << describe_fault(n, faults[i]);
  }
}

TEST(SeqSim, AgreesWithScanSimOnCombinationalCircuit) {
  // For a purely combinational circuit, sequential simulation of the same
  // vectors must detect exactly the same faults as scan simulation.
  GateNetlist n("c17ish");
  auto a = n.add_input("a");
  auto b = n.add_input("b");
  auto c = n.add_input("c");
  auto g1 = n.add_gate(GateKind::kNand, {a, b}, "g1");
  auto g2 = n.add_gate(GateKind::kNand, {b, c}, "g2");
  auto g3 = n.add_gate(GateKind::kNand, {g1, g2}, "g3");
  auto g4 = n.add_gate(GateKind::kXor, {g1, c}, "g4");
  n.mark_output(g3);
  n.mark_output(g4);

  auto faults = enumerate_faults(n);
  std::vector<FaultStatus> scan_status(faults.size(),
                                       FaultStatus::kUndetected);
  std::vector<FaultStatus> seq_status(faults.size(),
                                      FaultStatus::kUndetected);

  std::vector<ScanPattern> patterns;
  std::vector<BitVector> sequence;
  for (unsigned v = 0; v < 8; ++v) {
    ScanPattern p;
    p.pi = BitVector(3, v);
    p.ppi = BitVector(0);
    patterns.push_back(p);
    sequence.push_back(BitVector(3, v));
  }
  ScanFaultSim scan(n);
  scan.run(faults, patterns, scan_status);
  SequentialFaultSim seq(n);
  seq.run(faults, sequence, seq_status);
  EXPECT_EQ(scan_status, seq_status);
}

TEST(SeqSim, LargeFaultCountSpansGroups) {
  // Chain of 70 inverters: > 63 fault sites forces multiple passes.
  GateNetlist n("chain");
  auto a = n.add_input("a");
  GateId prev = a;
  for (int i = 0; i < 70; ++i) {
    prev = n.add_gate(GateKind::kNot, {prev}, "n" + std::to_string(i));
  }
  n.mark_output(prev);

  auto faults = enumerate_faults(n);
  EXPECT_GT(faults.size(), 63u);
  std::vector<FaultStatus> statuses(faults.size(), FaultStatus::kUndetected);
  SequentialFaultSim sim(n);
  std::vector<BitVector> sequence{BitVector(1, 0), BitVector(1, 1)};
  sim.run(faults, sequence, statuses);
  EXPECT_DOUBLE_EQ(summarize(statuses).fault_coverage(), 100.0);
}

}  // namespace
}  // namespace socet::faultsim
