#include <gtest/gtest.h>

#include "socet/bist/march.hpp"
#include "socet/bist/memory.hpp"
#include "socet/util/rng.hpp"

namespace socet::bist {
namespace {

// --------------------------------------------------------------- memory

TEST(FaultyMemory, ReadBackWrites) {
  FaultyMemory mem(16, 8);
  mem.write(3, 0xAB);
  mem.write(15, 0x01);
  EXPECT_EQ(mem.read(3), 0xABu);
  EXPECT_EQ(mem.read(15), 0x01u);
  EXPECT_EQ(mem.read(0), 0u);
}

TEST(FaultyMemory, BoundsChecked) {
  FaultyMemory mem(4, 8);
  EXPECT_THROW(mem.read(4), util::Error);
  EXPECT_THROW(mem.write(4, 0), util::Error);
  EXPECT_THROW(FaultyMemory(0, 8), util::Error);
  EXPECT_THROW(FaultyMemory(4, 0), util::Error);
}

TEST(FaultyMemory, StuckAtCellDominates) {
  FaultyMemory mem(8, 8);
  mem.inject({MemFaultKind::kStuckAt, 2, 5, true});
  mem.write(2, 0x00);
  EXPECT_EQ(mem.read(2), 1u << 5);
  mem.inject({MemFaultKind::kStuckAt, 3, 0, false});
  mem.write(3, 0xFF);
  EXPECT_EQ(mem.read(3), 0xFEu);
}

TEST(FaultyMemory, TransitionFaultBlocksOneDirection) {
  FaultyMemory mem(4, 4);
  // Cell (1,2) cannot rise.
  mem.inject({MemFaultKind::kTransition, 1, 2, true});
  mem.write(1, 0b0100);
  EXPECT_EQ(mem.read(1), 0u) << "up-transition must fail";
  // But writing 0 over 0 and other bits still works.
  mem.write(1, 0b1011);
  EXPECT_EQ(mem.read(1), 0b1011u);
  // Falling transitions unaffected.
  mem.write(1, 0b0011);
  EXPECT_EQ(mem.read(1), 0b0011u);
}

TEST(FaultyMemory, CouplingFaultFlipsVictim) {
  FaultyMemory mem(8, 4);
  // Rising write on (5,0) forces (2,1) to 1.
  MemFault f;
  f.kind = MemFaultKind::kCouplingIdempotent;
  f.address = 2;
  f.bit = 1;
  f.value = true;
  f.aggressor_address = 5;
  f.aggressor_bit = 0;
  f.aggressor_rising = true;
  mem.inject(f);

  mem.write(2, 0);
  mem.write(5, 1);  // rising aggressor
  EXPECT_EQ(mem.read(2), 0b10u);
  mem.write(2, 0);
  mem.write(5, 1);  // no transition (already 1): victim stays
  EXPECT_EQ(mem.read(2), 0u);
}

TEST(FaultyMemory, InjectValidation) {
  FaultyMemory mem(4, 4);
  EXPECT_THROW(mem.inject({MemFaultKind::kStuckAt, 9, 0, false}),
               util::Error);
  MemFault self;
  self.kind = MemFaultKind::kCouplingIdempotent;
  self.address = 1;
  self.bit = 1;
  self.aggressor_address = 1;
  self.aggressor_bit = 1;
  EXPECT_THROW(mem.inject(self), util::Error);
}

// ----------------------------------------------------------- march tests

TEST(March, CleanMemoryPasses) {
  FaultyMemory mem(64, 8);
  auto result = run_march(mem, march_c_minus());
  EXPECT_TRUE(result.pass);
  EXPECT_EQ(result.cycles, march_c_minus().operation_count(64));
}

TEST(March, OperationCounts) {
  EXPECT_EQ(march_c_minus().operation_count(256), 10ull * 256);
  EXPECT_EQ(mats_plus().operation_count(256), 5ull * 256);
}

TEST(March, CMinusDetectsEveryStuckAt) {
  for (std::uint32_t addr : {0u, 7u, 31u}) {
    for (unsigned bit : {0u, 3u, 7u}) {
      for (bool value : {false, true}) {
        FaultyMemory mem(32, 8);
        mem.inject({MemFaultKind::kStuckAt, addr, bit, value});
        EXPECT_FALSE(run_march(mem, march_c_minus()).pass)
            << "SAF" << value << " @" << addr << "." << bit;
      }
    }
  }
}

TEST(March, CMinusDetectsEveryTransitionFault) {
  for (bool rising : {false, true}) {
    FaultyMemory mem(16, 8);
    mem.inject({MemFaultKind::kTransition, 5, 2, rising});
    EXPECT_FALSE(run_march(mem, march_c_minus()).pass)
        << (rising ? "rising" : "falling");
  }
}

TEST(March, CMinusDetectsCouplingFaults) {
  util::Rng rng(42);
  for (int trial = 0; trial < 20; ++trial) {
    FaultyMemory mem(32, 8);
    MemFault f;
    f.kind = MemFaultKind::kCouplingIdempotent;
    f.address = static_cast<std::uint32_t>(rng.next_below(32));
    f.bit = static_cast<unsigned>(rng.next_below(8));
    f.value = rng.next_bool();
    do {
      f.aggressor_address = static_cast<std::uint32_t>(rng.next_below(32));
      f.aggressor_bit = static_cast<unsigned>(rng.next_below(8));
    } while (f.aggressor_address == f.address && f.aggressor_bit == f.bit);
    f.aggressor_rising = rng.next_bool();
    mem.inject(f);
    EXPECT_FALSE(run_march(mem, march_c_minus()).pass)
        << "trial " << trial;
  }
}

TEST(March, MatsPlusMissesSomeCouplingFaults) {
  // MATS+ guarantees SAF coverage only; demonstrate a coupling fault it
  // cannot see but March C- can (the reason the paper's reference [8]
  // uses the stronger algorithm for embedded memories).
  FaultyMemory mem(16, 4);
  MemFault f;
  f.kind = MemFaultKind::kCouplingIdempotent;
  f.address = 12;      // victim above the aggressor
  f.bit = 0;
  f.value = true;      // forced to 1
  f.aggressor_address = 4;
  f.aggressor_bit = 0;
  f.aggressor_rising = false;  // falling aggressor
  // MATS+ ends with a descending (r1, w0) sweep: the victim is zeroed
  // before the aggressor's falling write re-corrupts it, and no read
  // follows.  March C-'s final read-0 sweep catches it.
  mem.inject(f);
  EXPECT_TRUE(run_march(mem, mats_plus()).pass) << "MATS+ blind spot";
  FaultyMemory mem2(16, 4);
  mem2.inject(f);
  EXPECT_FALSE(run_march(mem2, march_c_minus()).pass);
}

TEST(March, BarcodeMemoryBudget) {
  // The barcode system's 4KB memory (16 pages x 256 bytes): March C- cost
  // in cycles, the figure a distributed BIST scheduler would add.
  FaultyMemory ram(4096, 8);
  auto result = run_march(ram, march_c_minus());
  EXPECT_TRUE(result.pass);
  EXPECT_EQ(result.cycles, 40960u);
}

}  // namespace
}  // namespace socet::bist
