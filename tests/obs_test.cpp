// Observability subsystem: histogram bucket/quantile edge cases,
// counters under concurrent increments, trace export shape (matched B/E
// pairs, named worker lanes), the run-report JSON with its resources
// block, the sampling profiler, and rusage accounting.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "socet/obs/jsonin.hpp"
#include "socet/obs/metrics.hpp"
#include "socet/obs/report.hpp"
#include "socet/obs/resource.hpp"
#include "socet/obs/sampler.hpp"
#include "socet/obs/timer.hpp"
#include "socet/obs/trace.hpp"

#if defined(__linux__)
#include <signal.h>
#include <sys/time.h>
#endif

// Busy-loop leaf for the profiler smoke test: extern "C", noinline, and
// globally visible so `dladdr` can attribute samples to it by name
// (the obs library links with -rdynamic on Linux for exactly this).
// Callers go through the volatile pointer below — a direct call lets
// the optimizer emit local `.constprop` clones whose addresses are not
// in the dynamic symbol table, so samples would land in the clone and
// symbolize as `test_obs+0x...` instead of the function name.
std::atomic<unsigned long> socet_obs_test_spin_beat{0};

extern "C" __attribute__((noinline)) double socet_obs_test_busy_spin(
    unsigned long iters) {
  volatile double acc = 0;
  for (unsigned long i = 0; i < iters; ++i) {
    acc = acc + static_cast<double>(i & 1023u) * 1.0000001;
    // TSan defers async signals to the next atomic op or interceptor;
    // beating an atomic inside the loop makes SIGPROF fire while this
    // frame is on the stack, so attribution still works under TSan.
    if ((i & 255u) == 0) {
      socet_obs_test_spin_beat.fetch_add(1, std::memory_order_relaxed);
    }
  }
  return acc;
}

double (*volatile socet_obs_test_busy_spin_ptr)(unsigned long) =
    socet_obs_test_busy_spin;

namespace socet {
namespace {

/// Count non-overlapping occurrences of `needle` in `text`.
std::size_t count_occurrences(const std::string& text,
                              const std::string& needle) {
  std::size_t count = 0;
  for (std::size_t pos = text.find(needle); pos != std::string::npos;
       pos = text.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

/// Minimal structural JSON check: quotes, braces, and brackets balance
/// (good enough to catch truncated or unescaped output; the CI job runs
/// the real `python3 -m json.tool` on exported files).
bool json_balanced(const std::string& text) {
  long brace = 0;
  long bracket = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_string) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '{': ++brace; break;
      case '}': --brace; break;
      case '[': ++bracket; break;
      case ']': --bracket; break;
      default: break;
    }
    if (brace < 0 || bracket < 0) return false;
  }
  return !in_string && brace == 0 && bracket == 0;
}

class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::Registry::instance().reset();
    obs::reset_trace();
    obs::reset_resources();
    obs::set_metrics_enabled(false);
    obs::set_trace_enabled(false);
    obs::set_resources_enabled(false);
  }
  void TearDown() override { SetUp(); }
};

// ---------------------------------------------------------------- histogram

TEST_F(ObsTest, EmptyHistogramReportsZeros) {
  obs::Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.quantile(0.5), 0.0);
  EXPECT_EQ(h.quantile(0.99), 0.0);
}

TEST_F(ObsTest, SingleSampleIsReportedExactly) {
  obs::Histogram h;
  h.record(37);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 37u);
  EXPECT_EQ(h.max(), 37u);
  EXPECT_EQ(h.mean(), 37.0);
  // Every quantile of a one-sample distribution is that sample.
  EXPECT_EQ(h.quantile(0.0), 37.0);
  EXPECT_EQ(h.quantile(0.5), 37.0);
  EXPECT_EQ(h.quantile(1.0), 37.0);
}

TEST_F(ObsTest, BucketBoundariesArePowersOfTwo) {
  obs::Histogram h;
  // Bucket b covers (2^(b-1), 2^b]; zero and one land in bucket 0.
  h.record(0);
  h.record(1);
  h.record(2);
  h.record(3);
  h.record(4);
  EXPECT_EQ(h.bucket_count(0), 2u);  // 0, 1
  EXPECT_EQ(h.bucket_count(1), 1u);  // 2
  EXPECT_EQ(h.bucket_count(2), 2u);  // 3, 4
  EXPECT_EQ(obs::Histogram::bucket_bound(0), 1u);
  EXPECT_EQ(obs::Histogram::bucket_bound(1), 2u);
  EXPECT_EQ(obs::Histogram::bucket_bound(2), 4u);
}

TEST_F(ObsTest, OverflowSamplesLandInTheLastBucket) {
  obs::Histogram h;
  const std::uint64_t huge = ~0ull - 1;
  h.record(huge);
  EXPECT_EQ(h.bucket_count(obs::Histogram::kBuckets - 1), 1u);
  EXPECT_EQ(h.max(), huge);
  // The overflow bucket's estimate is clamped to the observed max.
  EXPECT_EQ(h.quantile(0.99), static_cast<double>(huge));
}

TEST_F(ObsTest, QuantilesAreMonotoneAndWithinRange) {
  obs::Histogram h;
  for (std::uint64_t v = 1; v <= 1000; ++v) h.record(v);
  const double p50 = h.quantile(0.50);
  const double p90 = h.quantile(0.90);
  const double p99 = h.quantile(0.99);
  EXPECT_LE(p50, p90);
  EXPECT_LE(p90, p99);
  EXPECT_LE(p99, static_cast<double>(h.max()));
  EXPECT_GE(p50, static_cast<double>(h.min()));
  // Power-of-two buckets are coarse; the median of 1..1000 must still
  // land in the right order of magnitude.
  EXPECT_GT(p50, 250.0);
  EXPECT_LT(p50, 1000.0);
}

TEST_F(ObsTest, TopBucketInterpolatesToTheObservedMaxNotTheBound) {
  // 96 samples land in the (64, 128] bucket and 4 in (512, 1024].  The
  // p99 rank falls inside that final occupied bucket, whose power-of-two
  // ceiling (1024) is nearly twice the real maximum (513): the estimate
  // must interpolate toward the observed max, not the bucket bound.
  obs::Histogram h;
  for (int i = 0; i < 96; ++i) h.record(100);
  for (int i = 0; i < 4; ++i) h.record(513);
  const double p99 = h.quantile(0.99);
  EXPECT_GT(p99, 512.0);
  EXPECT_LT(p99, 513.0 + 1e-9);
  // The first occupied bucket is floored at the observed min, so the
  // median cannot dip below any recorded value.
  const double p50 = h.quantile(0.50);
  EXPECT_GE(p50, 100.0);
  EXPECT_LE(p50, 128.0);
}

TEST_F(ObsTest, BucketQuantileWithoutObservedExtremesFloorsTheOverflow) {
  // Window deltas only have bucket counts — no live min/max.  All mass
  // in the overflow bucket must report that bucket's floor (the largest
  // finite bound), not infinity or the ~0 sentinel.
  std::uint64_t buckets[obs::Histogram::kBuckets] = {};
  buckets[obs::Histogram::kBuckets - 1] = 5;
  const double q = obs::bucket_quantile(buckets, 5, 0.99, false, 0, 0);
  EXPECT_EQ(q, static_cast<double>(
                   obs::Histogram::bucket_bound(obs::Histogram::kBuckets - 2)));
}

TEST_F(ObsTest, ResetClearsEverything) {
  obs::Histogram h;
  h.record(5);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.quantile(0.5), 0.0);
}

// ----------------------------------------------------------------- registry

TEST_F(ObsTest, DisabledMetricsRecordNothing) {
  SOCET_COUNT("obs_test/disabled_counter");
  SOCET_HISTOGRAM("obs_test/disabled_histogram", 7);
  const auto snap = obs::Registry::instance().snapshot();
  for (const auto& c : snap.counters) {
    EXPECT_NE(c.name, "obs_test/disabled_counter");
  }
  for (const auto& h : snap.histograms) {
    EXPECT_NE(h.name, "obs_test/disabled_histogram");
  }
}

TEST_F(ObsTest, ConcurrentCounterIncrementsAreExact) {
  obs::set_metrics_enabled(true);
  constexpr unsigned kThreads = 8;
  constexpr unsigned kIncrements = 10000;
  std::vector<std::thread> pool;
  for (unsigned t = 0; t < kThreads; ++t) {
    pool.emplace_back([] {
      for (unsigned i = 0; i < kIncrements; ++i) {
        SOCET_COUNT("obs_test/concurrent");
        SOCET_HISTOGRAM("obs_test/concurrent_hist", i);
        SOCET_GAUGE_MAX("obs_test/concurrent_gauge", i);
      }
    });
  }
  for (auto& thread : pool) thread.join();
  EXPECT_EQ(obs::counter("obs_test/concurrent").value(),
            static_cast<std::uint64_t>(kThreads) * kIncrements);
  EXPECT_EQ(obs::histogram("obs_test/concurrent_hist").count(),
            static_cast<std::uint64_t>(kThreads) * kIncrements);
  EXPECT_EQ(obs::gauge("obs_test/concurrent_gauge").value(),
            static_cast<std::int64_t>(kIncrements - 1));
}

TEST_F(ObsTest, SnapshotAndRenderersListEveryMetric) {
  obs::set_metrics_enabled(true);
  SOCET_COUNT_N("obs_test/a_counter", 3);
  SOCET_GAUGE_SET("obs_test/a_gauge", -5);
  SOCET_HISTOGRAM("obs_test/a_histogram", 16);
  // Registered names survive Registry::reset() (the mutation macros
  // cache references into the registry), so when the whole binary runs
  // in one process — as the TSan CI job does — earlier tests' metrics
  // are still listed here with zeroed values.  Assert membership, not
  // an exact size.
  const auto snap = obs::Registry::instance().snapshot();
  EXPECT_GE(snap.size(), 3u);
  bool saw_counter = false;
  bool saw_gauge = false;
  bool saw_histogram = false;
  for (const auto& c : snap.counters) {
    saw_counter |= c.name == "obs_test/a_counter" && c.value == 3;
  }
  for (const auto& g : snap.gauges) {
    saw_gauge |= g.name == "obs_test/a_gauge" && g.value == -5;
  }
  for (const auto& h : snap.histograms) {
    saw_histogram |= h.name == "obs_test/a_histogram" && h.count == 1;
  }
  EXPECT_TRUE(saw_counter);
  EXPECT_TRUE(saw_gauge);
  EXPECT_TRUE(saw_histogram);
  const std::string table = obs::Registry::instance().table_text();
  EXPECT_NE(table.find("obs_test/a_counter"), std::string::npos);
  EXPECT_NE(table.find("obs_test/a_gauge"), std::string::npos);
  EXPECT_NE(table.find("obs_test/a_histogram"), std::string::npos);
  const std::string json = obs::Registry::instance().json();
  EXPECT_TRUE(json_balanced(json)) << json;
  EXPECT_NE(json.find("\"obs_test/a_counter\":3"), std::string::npos);
  EXPECT_NE(json.find("\"obs_test/a_gauge\":-5"), std::string::npos);
}

// -------------------------------------------------------------------- trace

TEST_F(ObsTest, DisabledTracingRecordsNoSpans) {
  { SOCET_SPAN("obs_test/ignored"); }
  EXPECT_TRUE(obs::collect_trace_events().empty());
}

TEST_F(ObsTest, TraceExportHasMatchedPairsAndWorkerLanes) {
  obs::set_trace_enabled(true);
  {
    SOCET_SPAN("obs_test/outer");
    { SOCET_SPAN("obs_test/inner"); }
    { SOCET_SPAN("obs_test/inner"); }
  }
  std::thread worker([] {
    obs::name_this_thread("worker-1");
    SOCET_SPAN("obs_test/worker_span");
  });
  worker.join();  // the worker's buffer retires before export
  obs::set_trace_enabled(false);

  const auto events = obs::collect_trace_events();
  ASSERT_EQ(events.size(), 4u);
  for (const auto& event : events) EXPECT_LE(event.start_ns, event.end_ns);

  const std::string json = obs::chrome_trace_json();
  EXPECT_TRUE(json_balanced(json)) << json;
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"B\""), 4u);
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"E\""), 4u);
  EXPECT_EQ(count_occurrences(json, "\"obs_test/inner\""), 4u);  // 2 B + 2 E
  // The worker lane is labelled via a thread_name metadata event.
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"M\""), 1u);
  EXPECT_NE(json.find("\"worker-1\""), std::string::npos);
  // Nesting: outer's B comes first in its lane (first mention) and its E
  // comes after every inner E (last mention).
  EXPECT_LT(json.find("\"obs_test/outer\""), json.find("\"obs_test/inner\""));
  EXPECT_GT(json.rfind("\"obs_test/outer\""), json.rfind("\"obs_test/inner\""));
}

// ------------------------------------------------------------------- report

TEST_F(ObsTest, JsonEscapeHandlesSpecials) {
  EXPECT_EQ(obs::json_escape("plain"), "plain");
  EXPECT_EQ(obs::json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(obs::json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(obs::json_escape(std::string("a\nb")), "a\\nb");
}

TEST_F(ObsTest, RunReportAggregatesSpansByStage) {
  obs::set_metrics_enabled(true);
  obs::set_trace_enabled(true);
  SOCET_COUNT("obs_test/report_counter");
  { SOCET_SPAN("stage_a/step_one"); }
  { SOCET_SPAN("stage_a/step_two"); }
  { SOCET_SPAN("stage_b/only"); }
  obs::set_trace_enabled(false);

  const std::string report = obs::run_report_json("obs_test");
  EXPECT_TRUE(json_balanced(report)) << report;
  EXPECT_NE(report.find("\"schema\":\"socet-report-v1\""), std::string::npos);
  EXPECT_NE(report.find("\"command\":\"obs_test\""), std::string::npos);
  EXPECT_NE(report.find("\"obs_test/report_counter\":1"), std::string::npos);
  EXPECT_NE(report.find("\"stage_a/step_one\""), std::string::npos);
  // Stage rollup: both stage_a spans fold into one "stage_a" entry.
  EXPECT_NE(report.find("\"stage_a\":{\"spans\":2"), std::string::npos);
  EXPECT_NE(report.find("\"stage_b\":{\"spans\":1"), std::string::npos);
}

TEST_F(ObsTest, StopWatchIsMonotone) {
  const obs::StopWatch watch;
  const std::uint64_t a = watch.elapsed_ns();
  const std::uint64_t b = watch.elapsed_ns();
  EXPECT_LE(a, b);
  EXPECT_GE(obs::now_ns(), a);
}

TEST_F(ObsTest, JsonNumberEmitsNullForNonFinite) {
  // A NaN/Inf metric must read back as "not a number", never as a
  // perfect zero (the bench-line parser rejects null wall_ms).
  EXPECT_EQ(obs::json_number(std::nan("")), "null");
  EXPECT_EQ(obs::json_number(HUGE_VAL), "null");
  EXPECT_EQ(obs::json_number(-HUGE_VAL), "null");
  EXPECT_EQ(obs::json_number(12.0), "12");
  EXPECT_EQ(obs::json_number(12.5), "12.5");
}

// ---------------------------------------------------------------- resources

TEST_F(ObsTest, ResourceSnapshotsAreMonotone) {
  const obs::RunResources before = obs::run_resources();
  (void)socet_obs_test_busy_spin_ptr(2000000);
  std::vector<char> touch(1 << 20, 1);  // force some paging activity
  const obs::RunResources after = obs::run_resources();

  EXPECT_GT(after.peak_rss_kb, 0);
  EXPECT_GE(after.peak_rss_kb, before.peak_rss_kb);
  EXPECT_GE(after.usage.utime_us + after.usage.stime_us,
            before.usage.utime_us + before.usage.stime_us);
  EXPECT_GE(after.usage.minor_faults, before.usage.minor_faults);
  EXPECT_GE(after.usage.major_faults, before.usage.major_faults);
  // Hardware counters are optional (containers commonly deny perf),
  // but when available they must be live.
  if (after.hw_available) {
    EXPECT_GT(after.hw_cycles, before.hw_cycles);
    EXPECT_GT(after.hw_instructions, 0u);
  }
  EXPECT_NE(touch[12345], 0);
}

TEST_F(ObsTest, ResourceScopeAccumulatesPerStage) {
  obs::set_resources_enabled(true);
  {
    SOCET_RESOURCE_SCOPE("obs_test/stage_scope");
    (void)socet_obs_test_busy_spin_ptr(100000);
  }
  { SOCET_RESOURCE_SCOPE("obs_test/stage_scope"); }
  obs::set_resources_enabled(false);

  bool found = false;
  for (const obs::StageUsage& stage : obs::stage_resources()) {
    if (stage.name != "obs_test/stage_scope") continue;
    found = true;
    EXPECT_EQ(stage.count, 2u);
    EXPECT_GE(stage.usage.utime_us, 0);
    EXPECT_GE(stage.usage.minor_faults, 0);
  }
  EXPECT_TRUE(found);
}

TEST_F(ObsTest, DisabledResourceScopeRecordsNothing) {
  { SOCET_RESOURCE_SCOPE("obs_test/disabled_scope"); }
  for (const obs::StageUsage& stage : obs::stage_resources()) {
    EXPECT_NE(stage.name, "obs_test/disabled_scope");
  }
}

// Golden schema for the report's `resources` block, read back through
// the real parser rather than substring checks.
TEST_F(ObsTest, RunReportEmbedsResourcesBlock) {
  obs::set_resources_enabled(true);
  { SOCET_RESOURCE_SCOPE("obs_test/report_stage"); }
  const std::string report = obs::run_report_json("obs_test");
  obs::set_resources_enabled(false);

  obs::JsonValue doc;
  std::string error;
  ASSERT_TRUE(obs::json_parse(report, &doc, &error)) << error << "\n" << report;
  const obs::JsonValue* resources = doc.get("resources");
  ASSERT_NE(resources, nullptr);
  const obs::JsonValue* run = resources->get("run");
  ASSERT_NE(run, nullptr);
  for (const char* key : {"peak_rss_kb", "utime_us", "stime_us",
                          "minor_faults", "major_faults"}) {
    const obs::JsonValue* field = run->get(key);
    ASSERT_NE(field, nullptr) << key;
    EXPECT_TRUE(field->is_number()) << key;
  }
  const obs::JsonValue* hw = run->get("hw");
  ASSERT_NE(hw, nullptr);
  ASSERT_NE(hw->get("available"), nullptr);
  EXPECT_TRUE(hw->get("available")->is_bool());
  for (const char* key : {"cycles", "instructions", "cache_misses"}) {
    ASSERT_NE(hw->get(key), nullptr) << key;
    EXPECT_TRUE(hw->get(key)->is_number()) << key;
  }
  const obs::JsonValue* stages = resources->get("stages");
  ASSERT_NE(stages, nullptr);
  const obs::JsonValue* stage = stages->get("obs_test/report_stage");
  ASSERT_NE(stage, nullptr);
  EXPECT_EQ(stage->get("count")->number_or(0), 1.0);
}

// ------------------------------------------------------------------ sampler

#if defined(__linux__)

TEST_F(ObsTest, DisabledSamplerInstallsNoHandler) {
  ASSERT_FALSE(obs::Sampler::running());
  struct sigaction current {};
  ASSERT_EQ(sigaction(SIGPROF, nullptr, &current), 0);
  EXPECT_EQ(current.sa_handler, SIG_DFL);
  itimerval timer{};
  ASSERT_EQ(getitimer(ITIMER_PROF, &timer), 0);
  EXPECT_EQ(timer.it_interval.tv_sec, 0);
  EXPECT_EQ(timer.it_interval.tv_usec, 0);
  EXPECT_EQ(timer.it_value.tv_sec, 0);
  EXPECT_EQ(timer.it_value.tv_usec, 0);
}

TEST_F(ObsTest, SamplerAttributesBusyLoopSamples) {
  ASSERT_TRUE(obs::sampler_supported());
  obs::Sampler::reset();
  obs::SamplerOptions options;
  options.interval_us = 500;  // 2 kHz so the smoke test stays short
  ASSERT_TRUE(obs::Sampler::start(options));
  EXPECT_TRUE(obs::Sampler::running());
  EXPECT_FALSE(obs::Sampler::start(options));  // no double-start

  volatile double sink = 0;
  const obs::StopWatch watch;
  while (obs::Sampler::sample_count() < 5 && watch.elapsed_ms() < 5000) {
    sink = sink + socet_obs_test_busy_spin_ptr(200000);
  }
  obs::Sampler::stop();
  EXPECT_FALSE(obs::Sampler::running());

  EXPECT_GE(obs::Sampler::sample_count(), 1u);
  const std::string folded = obs::Sampler::folded_stacks();
  EXPECT_NE(folded.find("socet_obs_test_busy_spin"), std::string::npos)
      << folded;
  const std::string table = obs::Sampler::top_functions_table();
  EXPECT_NE(table.find("samples"), std::string::npos);
  EXPECT_NE(table.find("socet_obs_test_busy_spin"), std::string::npos)
      << table;

  // stop() restored the default disposition and disarmed the timer.
  struct sigaction current {};
  ASSERT_EQ(sigaction(SIGPROF, nullptr, &current), 0);
  EXPECT_EQ(current.sa_handler, SIG_DFL);
  itimerval timer{};
  ASSERT_EQ(getitimer(ITIMER_PROF, &timer), 0);
  EXPECT_EQ(timer.it_value.tv_sec, 0);
  EXPECT_EQ(timer.it_value.tv_usec, 0);

  obs::Sampler::reset();
  EXPECT_EQ(obs::Sampler::sample_count(), 0u);
}

#endif  // __linux__

}  // namespace
}  // namespace socet
