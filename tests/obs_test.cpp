// Observability subsystem: histogram bucket/quantile edge cases,
// counters under concurrent increments, trace export shape (matched B/E
// pairs, named worker lanes), and the run-report JSON.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "socet/obs/metrics.hpp"
#include "socet/obs/report.hpp"
#include "socet/obs/timer.hpp"
#include "socet/obs/trace.hpp"

namespace socet {
namespace {

/// Count non-overlapping occurrences of `needle` in `text`.
std::size_t count_occurrences(const std::string& text,
                              const std::string& needle) {
  std::size_t count = 0;
  for (std::size_t pos = text.find(needle); pos != std::string::npos;
       pos = text.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

/// Minimal structural JSON check: quotes, braces, and brackets balance
/// (good enough to catch truncated or unescaped output; the CI job runs
/// the real `python3 -m json.tool` on exported files).
bool json_balanced(const std::string& text) {
  long brace = 0;
  long bracket = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_string) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '{': ++brace; break;
      case '}': --brace; break;
      case '[': ++bracket; break;
      case ']': --bracket; break;
      default: break;
    }
    if (brace < 0 || bracket < 0) return false;
  }
  return !in_string && brace == 0 && bracket == 0;
}

class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::Registry::instance().reset();
    obs::reset_trace();
    obs::set_metrics_enabled(false);
    obs::set_trace_enabled(false);
  }
  void TearDown() override { SetUp(); }
};

// ---------------------------------------------------------------- histogram

TEST_F(ObsTest, EmptyHistogramReportsZeros) {
  obs::Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.quantile(0.5), 0.0);
  EXPECT_EQ(h.quantile(0.99), 0.0);
}

TEST_F(ObsTest, SingleSampleIsReportedExactly) {
  obs::Histogram h;
  h.record(37);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 37u);
  EXPECT_EQ(h.max(), 37u);
  EXPECT_EQ(h.mean(), 37.0);
  // Every quantile of a one-sample distribution is that sample.
  EXPECT_EQ(h.quantile(0.0), 37.0);
  EXPECT_EQ(h.quantile(0.5), 37.0);
  EXPECT_EQ(h.quantile(1.0), 37.0);
}

TEST_F(ObsTest, BucketBoundariesArePowersOfTwo) {
  obs::Histogram h;
  // Bucket b covers (2^(b-1), 2^b]; zero and one land in bucket 0.
  h.record(0);
  h.record(1);
  h.record(2);
  h.record(3);
  h.record(4);
  EXPECT_EQ(h.bucket_count(0), 2u);  // 0, 1
  EXPECT_EQ(h.bucket_count(1), 1u);  // 2
  EXPECT_EQ(h.bucket_count(2), 2u);  // 3, 4
  EXPECT_EQ(obs::Histogram::bucket_bound(0), 1u);
  EXPECT_EQ(obs::Histogram::bucket_bound(1), 2u);
  EXPECT_EQ(obs::Histogram::bucket_bound(2), 4u);
}

TEST_F(ObsTest, OverflowSamplesLandInTheLastBucket) {
  obs::Histogram h;
  const std::uint64_t huge = ~0ull - 1;
  h.record(huge);
  EXPECT_EQ(h.bucket_count(obs::Histogram::kBuckets - 1), 1u);
  EXPECT_EQ(h.max(), huge);
  // The overflow bucket's estimate is clamped to the observed max.
  EXPECT_EQ(h.quantile(0.99), static_cast<double>(huge));
}

TEST_F(ObsTest, QuantilesAreMonotoneAndWithinRange) {
  obs::Histogram h;
  for (std::uint64_t v = 1; v <= 1000; ++v) h.record(v);
  const double p50 = h.quantile(0.50);
  const double p90 = h.quantile(0.90);
  const double p99 = h.quantile(0.99);
  EXPECT_LE(p50, p90);
  EXPECT_LE(p90, p99);
  EXPECT_LE(p99, static_cast<double>(h.max()));
  EXPECT_GE(p50, static_cast<double>(h.min()));
  // Power-of-two buckets are coarse; the median of 1..1000 must still
  // land in the right order of magnitude.
  EXPECT_GT(p50, 250.0);
  EXPECT_LT(p50, 1000.0);
}

TEST_F(ObsTest, ResetClearsEverything) {
  obs::Histogram h;
  h.record(5);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.quantile(0.5), 0.0);
}

// ----------------------------------------------------------------- registry

TEST_F(ObsTest, DisabledMetricsRecordNothing) {
  SOCET_COUNT("obs_test/disabled_counter");
  SOCET_HISTOGRAM("obs_test/disabled_histogram", 7);
  const auto snap = obs::Registry::instance().snapshot();
  for (const auto& c : snap.counters) {
    EXPECT_NE(c.name, "obs_test/disabled_counter");
  }
  for (const auto& h : snap.histograms) {
    EXPECT_NE(h.name, "obs_test/disabled_histogram");
  }
}

TEST_F(ObsTest, ConcurrentCounterIncrementsAreExact) {
  obs::set_metrics_enabled(true);
  constexpr unsigned kThreads = 8;
  constexpr unsigned kIncrements = 10000;
  std::vector<std::thread> pool;
  for (unsigned t = 0; t < kThreads; ++t) {
    pool.emplace_back([] {
      for (unsigned i = 0; i < kIncrements; ++i) {
        SOCET_COUNT("obs_test/concurrent");
        SOCET_HISTOGRAM("obs_test/concurrent_hist", i);
        SOCET_GAUGE_MAX("obs_test/concurrent_gauge", i);
      }
    });
  }
  for (auto& thread : pool) thread.join();
  EXPECT_EQ(obs::counter("obs_test/concurrent").value(),
            static_cast<std::uint64_t>(kThreads) * kIncrements);
  EXPECT_EQ(obs::histogram("obs_test/concurrent_hist").count(),
            static_cast<std::uint64_t>(kThreads) * kIncrements);
  EXPECT_EQ(obs::gauge("obs_test/concurrent_gauge").value(),
            static_cast<std::int64_t>(kIncrements - 1));
}

TEST_F(ObsTest, SnapshotAndRenderersListEveryMetric) {
  obs::set_metrics_enabled(true);
  SOCET_COUNT_N("obs_test/a_counter", 3);
  SOCET_GAUGE_SET("obs_test/a_gauge", -5);
  SOCET_HISTOGRAM("obs_test/a_histogram", 16);
  const auto snap = obs::Registry::instance().snapshot();
  EXPECT_EQ(snap.size(), 3u);
  const std::string table = obs::Registry::instance().table_text();
  EXPECT_NE(table.find("obs_test/a_counter"), std::string::npos);
  EXPECT_NE(table.find("obs_test/a_gauge"), std::string::npos);
  EXPECT_NE(table.find("obs_test/a_histogram"), std::string::npos);
  const std::string json = obs::Registry::instance().json();
  EXPECT_TRUE(json_balanced(json)) << json;
  EXPECT_NE(json.find("\"obs_test/a_counter\":3"), std::string::npos);
  EXPECT_NE(json.find("\"obs_test/a_gauge\":-5"), std::string::npos);
}

// -------------------------------------------------------------------- trace

TEST_F(ObsTest, DisabledTracingRecordsNoSpans) {
  { SOCET_SPAN("obs_test/ignored"); }
  EXPECT_TRUE(obs::collect_trace_events().empty());
}

TEST_F(ObsTest, TraceExportHasMatchedPairsAndWorkerLanes) {
  obs::set_trace_enabled(true);
  {
    SOCET_SPAN("obs_test/outer");
    { SOCET_SPAN("obs_test/inner"); }
    { SOCET_SPAN("obs_test/inner"); }
  }
  std::thread worker([] {
    obs::name_this_thread("worker-1");
    SOCET_SPAN("obs_test/worker_span");
  });
  worker.join();  // the worker's buffer retires before export
  obs::set_trace_enabled(false);

  const auto events = obs::collect_trace_events();
  ASSERT_EQ(events.size(), 4u);
  for (const auto& event : events) EXPECT_LE(event.start_ns, event.end_ns);

  const std::string json = obs::chrome_trace_json();
  EXPECT_TRUE(json_balanced(json)) << json;
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"B\""), 4u);
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"E\""), 4u);
  EXPECT_EQ(count_occurrences(json, "\"obs_test/inner\""), 4u);  // 2 B + 2 E
  // The worker lane is labelled via a thread_name metadata event.
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"M\""), 1u);
  EXPECT_NE(json.find("\"worker-1\""), std::string::npos);
  // Nesting: outer's B comes first in its lane (first mention) and its E
  // comes after every inner E (last mention).
  EXPECT_LT(json.find("\"obs_test/outer\""), json.find("\"obs_test/inner\""));
  EXPECT_GT(json.rfind("\"obs_test/outer\""), json.rfind("\"obs_test/inner\""));
}

// ------------------------------------------------------------------- report

TEST_F(ObsTest, JsonEscapeHandlesSpecials) {
  EXPECT_EQ(obs::json_escape("plain"), "plain");
  EXPECT_EQ(obs::json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(obs::json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(obs::json_escape(std::string("a\nb")), "a\\nb");
}

TEST_F(ObsTest, RunReportAggregatesSpansByStage) {
  obs::set_metrics_enabled(true);
  obs::set_trace_enabled(true);
  SOCET_COUNT("obs_test/report_counter");
  { SOCET_SPAN("stage_a/step_one"); }
  { SOCET_SPAN("stage_a/step_two"); }
  { SOCET_SPAN("stage_b/only"); }
  obs::set_trace_enabled(false);

  const std::string report = obs::run_report_json("obs_test");
  EXPECT_TRUE(json_balanced(report)) << report;
  EXPECT_NE(report.find("\"schema\":\"socet-report-v1\""), std::string::npos);
  EXPECT_NE(report.find("\"command\":\"obs_test\""), std::string::npos);
  EXPECT_NE(report.find("\"obs_test/report_counter\":1"), std::string::npos);
  EXPECT_NE(report.find("\"stage_a/step_one\""), std::string::npos);
  // Stage rollup: both stage_a spans fold into one "stage_a" entry.
  EXPECT_NE(report.find("\"stage_a\":{\"spans\":2"), std::string::npos);
  EXPECT_NE(report.find("\"stage_b\":{\"spans\":1"), std::string::npos);
}

TEST_F(ObsTest, StopWatchIsMonotone) {
  const obs::StopWatch watch;
  const std::uint64_t a = watch.elapsed_ns();
  const std::uint64_t b = watch.elapsed_ns();
  EXPECT_LE(a, b);
  EXPECT_GE(obs::now_ns(), a);
}

}  // namespace
}  // namespace socet
