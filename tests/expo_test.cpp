// Prometheus exposition and the rolling-window machinery: name
// sanitization, counter/gauge/summary rendering, window tick/delta
// semantics (baseline selection, saturating deltas, ring bounds), and
// the WindowTicker background thread.
#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>

#include "socet/obs/expo.hpp"
#include "socet/obs/metrics.hpp"

namespace socet {
namespace {

using namespace std::chrono_literals;

// The registry is process-global and never shrinks (reset() only
// zeroes values), so when the whole binary runs in one process the
// delta lists carry every metric any test registered: look entries up
// by name instead of asserting list sizes.
const obs::WindowStats::CounterDelta* counter_delta(
    const obs::WindowStats& stats, const std::string& name) {
  for (const auto& c : stats.counters) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

const obs::WindowStats::HistogramDelta* histogram_delta(
    const obs::WindowStats& stats, const std::string& name) {
  for (const auto& h : stats.histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

class ExpoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::Registry::instance().reset();
    obs::Registry::instance().window_configure(128);
    obs::set_metrics_enabled(true);
  }
  void TearDown() override {
    obs::set_metrics_enabled(false);
    obs::Registry::instance().reset();
  }
};

// --------------------------------------------------------------- sanitizer

TEST_F(ExpoTest, PrometheusNameSanitizesOutsideTheAllowedSet) {
  EXPECT_EQ(obs::prometheus_name("serve/request_us"), "serve_request_us");
  EXPECT_EQ(obs::prometheus_name("ccg.relax-count"), "ccg_relax_count");
  EXPECT_EQ(obs::prometheus_name("already_fine_9"), "already_fine_9");
  // A leading digit is not a valid first character.
  EXPECT_EQ(obs::prometheus_name("9lives"), "_9lives");
  EXPECT_EQ(obs::prometheus_name(""), "");
}

// -------------------------------------------------------------- exposition

TEST_F(ExpoTest, RendersCountersGaugesAndSummaries) {
  obs::Registry::instance().counter("serve/requests").add(7);
  obs::Registry::instance().gauge("pool/size").set(3);
  auto& h = obs::Registry::instance().histogram("serve/request_us");
  for (std::uint64_t v = 1; v <= 100; ++v) h.record(v);

  const std::string text = obs::prometheus_text();
  EXPECT_NE(text.find("# TYPE socet_serve_requests_total counter"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("socet_serve_requests_total 7"), std::string::npos);
  EXPECT_NE(text.find("# TYPE socet_pool_size gauge"), std::string::npos);
  EXPECT_NE(text.find("socet_pool_size 3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE socet_serve_request_us summary"),
            std::string::npos);
  EXPECT_NE(text.find("socet_serve_request_us{quantile=\"0.5\"}"),
            std::string::npos);
  EXPECT_NE(text.find("socet_serve_request_us_sum 5050"), std::string::npos);
  EXPECT_NE(text.find("socet_serve_request_us_count 100"), std::string::npos);
  // No ticks yet: the window families must be absent, not zero-filled.
  EXPECT_EQ(text.find("socet_window_"), std::string::npos) << text;
}

TEST_F(ExpoTest, WindowFamiliesAppearAfterATick) {
  obs::Registry::instance().counter("serve/requests").add(5);
  obs::Registry::instance().window_tick();
  obs::Registry::instance().counter("serve/requests").add(3);
  obs::Registry::instance().histogram("serve/request_us").record(40);

  const std::string text = obs::prometheus_text();
  for (const char* window : {"1m", "5m", "15m"}) {
    EXPECT_NE(text.find("socet_window_serve_requests{window=\"" +
                        std::string(window) + "\"}"),
              std::string::npos)
        << window << "\n" << text;
  }
  EXPECT_NE(text.find("socet_window_covered_seconds{window=\"1m\"}"),
            std::string::npos);
  EXPECT_NE(
      text.find(
          "socet_window_serve_request_us{window=\"1m\",quantile=\"0.5\"}"),
      std::string::npos)
      << text;
  EXPECT_NE(text.find("socet_window_serve_request_us_count{window=\"1m\"} 1"),
            std::string::npos)
      << text;
  // The test runs in well under a minute, so every window falls back to
  // the oldest slot: the since-tick delta is 3, not the lifetime 8.
  EXPECT_NE(text.find("socet_window_serve_requests{window=\"1m\"} 3"),
            std::string::npos)
      << text;
}

// ------------------------------------------------------------ window delta

TEST_F(ExpoTest, WindowDeltaSubtractsTheChosenBaseline) {
  auto& registry = obs::Registry::instance();
  EXPECT_FALSE(registry.window_delta(60.0).valid);

  registry.counter("jobs").add(10);
  auto& h = registry.histogram("lat");
  h.record(100);
  registry.window_tick();  // baseline: jobs=10, lat count=1
  registry.counter("jobs").add(4);
  h.record(200);
  h.record(300);

  // Lookback 0 picks the newest slot at least 0s old — the tick above.
  const auto recent = registry.window_delta(0.0);
  ASSERT_TRUE(recent.valid);
  const auto* jobs = counter_delta(recent, "jobs");
  ASSERT_NE(jobs, nullptr);
  EXPECT_EQ(jobs->delta, 4u);
  const auto* lat = histogram_delta(recent, "lat");
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->count, 2u);
  EXPECT_EQ(lat->sum, 500u);
  EXPECT_GT(lat->p50, 0.0);
  EXPECT_LE(lat->p50, lat->p99);

  // A lookback far beyond the ring's age falls back to the oldest slot.
  const auto old = registry.window_delta(900.0);
  ASSERT_TRUE(old.valid);
  const auto* old_jobs = counter_delta(old, "jobs");
  ASSERT_NE(old_jobs, nullptr);
  EXPECT_EQ(old_jobs->delta, 4u);
  EXPECT_GE(old.covered_seconds, 0.0);
}

TEST_F(ExpoTest, WindowDeltaSaturatesInsteadOfUnderflowing) {
  auto& registry = obs::Registry::instance();
  registry.counter("jobs").add(10);
  registry.window_tick();
  // reset() zeroes the live value below the baseline; the ring is also
  // dropped, so re-tick and make sure nothing wrapped around.
  registry.reset();
  EXPECT_EQ(registry.window_slot_count(), 0u);
  registry.counter("jobs").add(2);
  registry.window_tick();
  const auto delta = registry.window_delta(0.0);
  ASSERT_TRUE(delta.valid);
  const auto* jobs = counter_delta(delta, "jobs");
  ASSERT_NE(jobs, nullptr);
  EXPECT_EQ(jobs->delta, 0u);  // live 2 - baseline 2
}

TEST_F(ExpoTest, WindowRingIsBounded) {
  auto& registry = obs::Registry::instance();
  registry.window_configure(4);
  for (int tick = 0; tick < 10; ++tick) registry.window_tick();
  EXPECT_EQ(registry.window_slot_count(), 4u);
  registry.reset();
  EXPECT_EQ(registry.window_slot_count(), 0u);
}

// ----------------------------------------------------------------- ticker

TEST_F(ExpoTest, WindowTickerFeedsTheRingUntilStopped) {
  auto& registry = obs::Registry::instance();
  obs::WindowTicker ticker;
  EXPECT_FALSE(ticker.running());
  ticker.start(1ms);
  EXPECT_TRUE(ticker.running());
  // The first tick fires synchronously inside start().
  EXPECT_GE(registry.window_slot_count(), 1u);
  while (registry.window_slot_count() < 3) std::this_thread::sleep_for(1ms);
  ticker.stop();
  EXPECT_FALSE(ticker.running());
  ticker.stop();  // idempotent
  const auto frozen = registry.window_slot_count();
  std::this_thread::sleep_for(5ms);
  EXPECT_EQ(registry.window_slot_count(), frozen);
}

}  // namespace
}  // namespace socet
