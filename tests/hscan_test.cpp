#include <gtest/gtest.h>

#include <set>

#include "socet/hscan/hscan.hpp"

namespace socet::hscan {
namespace {

using rtl::FuKind;
using rtl::Netlist;

/// Figure 1-style circuit: IN -> REG1 -> (mux) -> REG2 -> OUT, with an
/// alternative mux input from a constant.
Netlist make_fig1() {
  Netlist n("fig1");
  auto in = n.add_input("IN", 16);
  auto out = n.add_output("OUT", 16);
  auto r1 = n.add_register("REG1", 16);
  auto r2 = n.add_register("REG2", 16);
  auto m = n.add_mux("M", 16, 2);
  auto k = n.add_constant("K", util::BitVector(16, 0));
  n.connect(n.pin(in), n.reg_d(r1));
  n.connect(n.reg_q(r1), n.mux_in(m, 0));
  n.connect(n.const_out(k), n.mux_in(m, 1));
  n.connect(n.mux_out(m), n.reg_d(r2));
  n.connect(n.reg_q(r2), n.pin(out));
  return n;
}

TEST(Hscan, ReusesExistingPathsOnFig1) {
  auto n = make_fig1();
  auto config = build_hscan(n);
  ASSERT_EQ(config.chains.size(), 1u);
  const auto& chain = config.chains[0];
  EXPECT_EQ(chain.depth(), 2u);
  ASSERT_EQ(chain.links.size(), 3u);
  // IN->REG1 is direct (1 cell), REG1->REG2 via mux (2 cells),
  // REG2->OUT direct (1 cell).
  EXPECT_EQ(chain.links[0].kind, LinkKind::kDirect);
  EXPECT_EQ(chain.links[1].kind, LinkKind::kMuxPath);
  EXPECT_EQ(chain.links[2].kind, LinkKind::kDirect);
  EXPECT_EQ(config.overhead_cells, 4u);
  EXPECT_EQ(config.max_depth, 2u);
}

TEST(Hscan, EveryRegisterOnExactlyOneChain) {
  Netlist n("multi");
  auto a = n.add_input("A", 8);
  auto b = n.add_input("B", 8);
  auto z1 = n.add_output("Z1", 8);
  auto z2 = n.add_output("Z2", 8);
  std::vector<rtl::RegisterId> regs;
  for (int i = 0; i < 5; ++i) {
    regs.push_back(n.add_register("R" + std::to_string(i), 8));
  }
  // Existing paths: A->R0->R1, B->R2; R3, R4 are isolated (test muxes).
  n.connect(n.pin(a), n.reg_d(regs[0]));
  n.connect(n.reg_q(regs[0]), n.reg_d(regs[1]));
  n.connect(n.pin(b), n.reg_d(regs[2]));
  n.connect(n.reg_q(regs[1]), n.pin(z1));
  n.connect(n.reg_q(regs[2]), n.pin(z2));
  // R3/R4 feed an adder so they exist but have no mux/direct paths.
  auto add = n.add_fu("ADD", FuKind::kAdd, 8, 2);
  n.connect(n.reg_q(regs[3]), n.fu_in(add, 0));
  n.connect(n.reg_q(regs[4]), n.fu_in(add, 1));
  n.connect(n.fu_out(add), n.reg_d(regs[3]));

  auto config = build_hscan(n);
  std::set<unsigned> covered;
  for (const auto& chain : config.chains) {
    for (auto reg : chain.registers) {
      EXPECT_TRUE(covered.insert(reg.value()).second)
          << "register on two chains";
    }
  }
  EXPECT_EQ(covered.size(), 5u);
  for (const auto& reg : regs) EXPECT_TRUE(config.covers(reg));
}

TEST(Hscan, TestMuxCostScalesWithWidth) {
  Netlist n("isolated");
  n.add_input("A", 1);
  n.add_output("Z", 1);
  n.add_register("WIDE", 16);

  HscanCostModel cost;
  cost.test_mux_per_bit = 1;
  auto config = build_hscan(n, cost);
  // Head link: test mux into 16-bit register (16 cells); tail link: test
  // mux onto the 1-bit output (1 cell).
  EXPECT_EQ(config.overhead_cells, 17u);
}

TEST(Hscan, ChainsBalancedAcrossInputs) {
  Netlist n("balance");
  auto a = n.add_input("A", 4);
  auto b = n.add_input("B", 4);
  n.add_output("Z1", 4);
  n.add_output("Z2", 4);
  // Six isolated registers: round-robin should split them 3/3.
  for (int i = 0; i < 6; ++i) n.add_register("R" + std::to_string(i), 4);
  (void)a;
  (void)b;
  auto config = build_hscan(n);
  ASSERT_EQ(config.chains.size(), 2u);
  EXPECT_EQ(config.chains[0].depth(), 3u);
  EXPECT_EQ(config.chains[1].depth(), 3u);
  EXPECT_EQ(config.max_depth, 3u);
}

TEST(Hscan, VectorAccountingMatchesPaperExample) {
  // The paper's DISPLAY: 105 scan vectors, longest chain depth 4
  // -> 525 HSCAN vectors.
  HscanConfig config;
  config.max_depth = 4;
  EXPECT_EQ(config.vector_multiplier(), 5u);
  EXPECT_EQ(config.sequence_length(105), 525u);
}

TEST(Hscan, FscanOverheadPerFlipFlop) {
  auto n = make_fig1();  // 32 flip-flops
  HscanCostModel cost;
  cost.fscan_per_ff = 3;
  EXPECT_EQ(fscan_overhead_cells(n, cost), 96u);
}

TEST(Hscan, HscanCheaperThanFscanOnMuxRichDesign) {
  auto n = make_fig1();
  auto config = build_hscan(n);
  EXPECT_LT(config.overhead_cells, fscan_overhead_cells(n));
}

TEST(Hscan, RequiresPorts) {
  Netlist n("noports");
  n.add_register("R", 4);
  EXPECT_THROW(build_hscan(n), util::Error);
}

TEST(Hscan, ReusedEdgesExposedForRcg) {
  auto n = make_fig1();
  auto config = build_hscan(n);
  // Three reused hops -> three darkened RCG edges.
  EXPECT_EQ(config.reused_edges.size(), 3u);
}

}  // namespace
}  // namespace socet::hscan
