// Tests for the multi-lane fault-simulation kernels (block_engine.hpp),
// the partitioned simulator (parallel_sim.hpp), the 64-bit scratch
// stamps, and the sequential simulator's pin-fault handling.
#include <gtest/gtest.h>

#include <vector>

#include "socet/faultsim/block_engine.hpp"
#include "socet/faultsim/faults.hpp"
#include "socet/faultsim/parallel_sim.hpp"
#include "socet/faultsim/scan_sim.hpp"
#include "socet/faultsim/seq_sim.hpp"
#include "socet/util/error.hpp"
#include "socet/util/rng.hpp"

namespace socet::faultsim {
namespace {

using gate::Gate;
using gate::GateId;
using gate::GateKind;
using gate::GateNetlist;
using util::BitVector;
using util::Rng;

// ------------------------------------------------------------ generators

/// Random layered DAG with `n_gates` logic gates over `n_inputs` PIs and
/// `n_dffs` flops (each flop's D wired to a random node at the end).
GateNetlist make_random_netlist(Rng& rng, std::size_t n_inputs,
                                std::size_t n_dffs, std::size_t n_gates) {
  GateNetlist n("rand");
  std::vector<GateId> nodes;
  for (std::size_t i = 0; i < n_inputs; ++i) {
    nodes.push_back(n.add_input("i" + std::to_string(i)));
  }
  std::vector<GateId> dffs;
  for (std::size_t i = 0; i < n_dffs; ++i) {
    dffs.push_back(n.add_dff_floating("q" + std::to_string(i)));
    nodes.push_back(dffs.back());
  }
  static const GateKind kKinds[] = {GateKind::kAnd,  GateKind::kOr,
                                    GateKind::kNand, GateKind::kNor,
                                    GateKind::kXor,  GateKind::kXnor,
                                    GateKind::kNot,  GateKind::kBuf};
  for (std::size_t i = 0; i < n_gates; ++i) {
    const GateKind kind = kKinds[rng.next_below(8)];
    const bool unary = kind == GateKind::kNot || kind == GateKind::kBuf;
    std::vector<GateId> fanin{nodes[rng.next_below(nodes.size())]};
    if (!unary) {
      fanin.push_back(nodes[rng.next_below(nodes.size())]);
      if (fanin[0] == fanin[1]) fanin[1] = nodes[0];
    }
    nodes.push_back(n.add_gate(kind, fanin, "g" + std::to_string(i)));
  }
  for (std::size_t i = 0; i < n_dffs; ++i) {
    // Wire D to one of the last few gates so state depends on logic.
    n.set_dff_input(dffs[i], nodes[nodes.size() - 1 - rng.next_below(4)]);
  }
  // Observe a handful of nodes spread over the circuit.
  for (std::size_t i = 0; i < 4; ++i) {
    const GateId g = nodes[nodes.size() - 1 - rng.next_below(n_gates / 2)];
    if (n.gate(g).kind != GateKind::kDff) n.mark_output(g);
  }
  n.mark_output(nodes.back());
  return n;
}

std::vector<ScanPattern> make_random_patterns(const GateNetlist& n,
                                              std::size_t count, Rng& rng) {
  std::vector<ScanPattern> patterns(count);
  for (auto& p : patterns) {
    p.pi = BitVector::random(n.inputs().size(), rng);
    p.ppi = BitVector::random(n.dffs().size(), rng);
  }
  return patterns;
}

// ------------------------------------------------------- reference oracle

/// One-pattern scalar evaluation with optional fault injection — the
/// slow, obviously-correct oracle the lane kernels are diffed against.
std::vector<bool> reference_values(const GateNetlist& n,
                                   const ScanPattern& pattern,
                                   const Fault* fault) {
  std::vector<bool> values(n.gate_count(), false);
  auto faulty = [&](GateId id, bool v) -> bool {
    if (fault != nullptr && id == fault->gate && fault->pin < 0) {
      return fault->stuck_at;
    }
    return v;
  };
  for (std::size_t i = 0; i < n.inputs().size(); ++i) {
    values[n.inputs()[i].index()] =
        faulty(n.inputs()[i], pattern.pi.get(i));
  }
  for (std::size_t i = 0; i < n.dffs().size(); ++i) {
    values[n.dffs()[i].index()] = faulty(n.dffs()[i], pattern.ppi.get(i));
  }
  for (GateId id : n.topo_order()) {
    const Gate& g = n.gate(id);
    if (g.kind == GateKind::kInput || g.kind == GateKind::kDff) continue;
    auto in = [&](std::size_t p) -> bool {
      if (fault != nullptr && id == fault->gate &&
          static_cast<std::int32_t>(p) == fault->pin) {
        return fault->stuck_at;
      }
      return values[g.fanin[p].index()];
    };
    bool v = false;
    switch (g.kind) {
      case GateKind::kConst0: v = false; break;
      case GateKind::kConst1: v = true; break;
      case GateKind::kBuf: v = in(0); break;
      case GateKind::kNot: v = !in(0); break;
      case GateKind::kAnd:
      case GateKind::kNand:
        v = true;
        for (std::size_t p = 0; p < g.fanin.size(); ++p) v = v && in(p);
        if (g.kind == GateKind::kNand) v = !v;
        break;
      case GateKind::kOr:
      case GateKind::kNor:
        v = false;
        for (std::size_t p = 0; p < g.fanin.size(); ++p) v = v || in(p);
        if (g.kind == GateKind::kNor) v = !v;
        break;
      case GateKind::kXor: v = in(0) != in(1); break;
      case GateKind::kXnor: v = in(0) == in(1); break;
      default: break;
    }
    values[id.index()] = faulty(id, v);
  }
  return values;
}

std::vector<FaultStatus> reference_statuses(
    const GateNetlist& n, const std::vector<Fault>& faults,
    const std::vector<ScanPattern>& patterns) {
  std::vector<GateId> observe = n.outputs();
  for (GateId dff : n.dffs()) observe.push_back(n.gate(dff).fanin[0]);
  std::vector<FaultStatus> statuses(faults.size(), FaultStatus::kUndetected);
  for (std::size_t fi = 0; fi < faults.size(); ++fi) {
    for (const ScanPattern& p : patterns) {
      const auto good = reference_values(n, p, nullptr);
      const auto bad = reference_values(n, p, &faults[fi]);
      for (GateId obs : observe) {
        if (good[obs.index()] != bad[obs.index()]) {
          statuses[fi] = FaultStatus::kDetected;
          break;
        }
      }
      if (statuses[fi] == FaultStatus::kDetected) break;
    }
  }
  return statuses;
}

// ------------------------------------------------------------------ tests

TEST(KernelOracle, AllWidthsAndModesMatchNaiveReference) {
  for (std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    Rng rng(seed);
    const auto n = make_random_netlist(rng, 6, 3, 60);
    const auto faults = enumerate_faults(n);
    const auto patterns = make_random_patterns(n, 150, rng);
    const auto expected = reference_statuses(n, faults, patterns);

    for (unsigned lane_words : {1u, 4u, 8u}) {
      for (bool event_driven : {false, true}) {
        for (bool use_avx2 : {false, true}) {
          ScanSimOptions o;
          o.lane_words = lane_words;
          o.event_driven = event_driven;
          o.use_avx2 = use_avx2;
          ScanFaultSim sim(n, o);
          std::vector<FaultStatus> statuses(faults.size(),
                                            FaultStatus::kUndetected);
          sim.run(faults, patterns, statuses);
          EXPECT_EQ(statuses, expected)
              << "seed=" << seed << " W=" << lane_words
              << " event=" << event_driven << " kernel=" << sim.last_kernel();
          EXPECT_EQ(sim.last_lane_words(), lane_words);
          if (!use_avx2 || lane_words == 1 || !cpu_has_avx2()) {
            EXPECT_STREQ(sim.last_kernel(), "scalar");
          } else {
            EXPECT_STREQ(sim.last_kernel(), "avx2");
          }
        }
      }
    }
  }
}

TEST(KernelOracle, ThreadCountsProduceIdenticalStatuses) {
  Rng rng(7);
  const auto n = make_random_netlist(rng, 8, 4, 120);
  const auto faults = enumerate_faults(n);
  const auto patterns = make_random_patterns(n, 300, rng);

  ScanFaultSim serial(n);
  std::vector<FaultStatus> expected(faults.size(), FaultStatus::kUndetected);
  serial.run(faults, patterns, expected);

  for (unsigned threads : {1u, 2u, 8u}) {
    ParallelSimOptions o;
    o.threads = threads;
    o.min_faults_per_thread = 1;  // force a real partition even when small
    ParallelScanFaultSim sim(n, o);
    std::vector<FaultStatus> statuses(faults.size(),
                                      FaultStatus::kUndetected);
    sim.run(faults, patterns, statuses);
    EXPECT_EQ(statuses, expected) << "threads=" << threads;
    EXPECT_EQ(sim.last_threads(), threads);
  }
}

TEST(KernelOracle, ResponsesIdenticalAcrossEnginesAndThreads) {
  Rng rng(11);
  const auto n = make_random_netlist(rng, 6, 2, 50);
  const auto faults = enumerate_faults(n);
  const auto patterns = make_random_patterns(n, 20, rng);

  ScanFaultSim serial(n);
  ParallelSimOptions o;
  o.threads = 2;
  o.min_faults_per_thread = 1;
  ParallelScanFaultSim parallel(n, o);

  for (const ScanPattern& p : patterns) {
    const BitVector good = serial.good_response(p);
    EXPECT_EQ(parallel.good_response(p).to_string(), good.to_string());
    for (std::size_t fi = 0; fi < faults.size(); fi += 7) {
      const BitVector bad = serial.faulty_response(faults[fi], p);
      EXPECT_EQ(parallel.faulty_response(faults[fi], p).to_string(),
                bad.to_string());
    }
  }
}

TEST(KernelOracle, SharedConeCacheServesAllWorkers) {
  Rng rng(13);
  const auto n = make_random_netlist(rng, 6, 2, 60);
  const auto faults = enumerate_faults(n);
  const auto patterns = make_random_patterns(n, 128, rng);

  // Many concurrent workers over one cache; TSan (CI) watches the races.
  ParallelSimOptions o;
  o.threads = 8;
  o.min_faults_per_thread = 1;
  ParallelScanFaultSim sim(n, o);
  std::vector<FaultStatus> statuses(faults.size(), FaultStatus::kUndetected);
  sim.run(faults, patterns, statuses);
  EXPECT_EQ(statuses, reference_statuses(n, faults, patterns));
}

// The seed simulator kept its scratch-epoch counter in a uint32_t.  Once
// the counter wraps to 0 it collides with the never-touched entries of
// the stamp array (all zero-initialized), so lookups return stale
// scratch values instead of good-machine values.  The engines now use
// 64-bit stamps; `initial_stamp` places the counter just below the old
// wrap point to prove the boundary is survived.
TEST(StampWrap, SurvivesThirtyTwoBitBoundary) {
  GateNetlist n("wrap");
  auto a = n.add_input("a");
  auto b = n.add_input("b");
  auto z = n.add_gate(GateKind::kOr, {a, b}, "z");
  n.mark_output(z);

  // a s-a-0 under a=1,b=1 is masked (z stays 1): must stay undetected.
  // A wrapped stamp makes lookup(b) return scratch(0), so the faulty z
  // would read 0 != good 1 — a spurious detection.
  const std::vector<Fault> faults{Fault{a, -1, false}};
  std::vector<ScanPattern> patterns(1);
  patterns[0].pi = BitVector(2);
  patterns[0].pi.set(0, true);
  patterns[0].pi.set(1, true);
  patterns[0].ppi = BitVector(0);

  for (unsigned lane_words : {1u, 4u, 8u}) {
    ScanSimOptions o;
    o.lane_words = lane_words;
    o.initial_stamp = 0xFFFF'FFFFULL;  // next ++ crosses 2^32
    ScanFaultSim sim(n, o);
    std::vector<FaultStatus> statuses{FaultStatus::kUndetected};
    sim.run(faults, patterns, statuses);
    EXPECT_EQ(statuses[0], FaultStatus::kUndetected) << "W=" << lane_words;
  }
}

TEST(StampWrap, ManyReplaysAcrossBoundaryStayCorrect) {
  Rng rng(17);
  const auto n = make_random_netlist(rng, 6, 0, 40);
  const auto faults = enumerate_faults(n);
  const auto patterns = make_random_patterns(n, 100, rng);
  const auto expected = reference_statuses(n, faults, patterns);

  ScanSimOptions o;
  // Every fault replay increments the epoch; starting a few below the
  // boundary guarantees the run crosses it mid-flight.
  o.initial_stamp = 0xFFFF'FFFFULL - 5;
  ScanFaultSim sim(n, o);
  std::vector<FaultStatus> statuses(faults.size(), FaultStatus::kUndetected);
  sim.run(faults, patterns, statuses);
  EXPECT_EQ(statuses, expected);
}

// ------------------------------------------------- sequential pin faults

TEST(SeqSimPinFaults, DffDPinFaultUsesCaptureSemantics) {
  // a -> q (DFF) -> z.  With a held at 0, a D-pin s-a-1 loads the flop
  // with 1 from the second cycle on, which z exposes.  The seed silently
  // forced the faulty machine's Q to 0 every cycle (eval_gate_scalar
  // returned 0 for "default" gates), masking the fault.
  GateNetlist n("dffpin");
  auto a = n.add_input("a");
  auto q = n.add_dff(a, "q");
  auto z = n.add_gate(GateKind::kBuf, {q}, "z");
  n.mark_output(z);

  const std::vector<Fault> faults{Fault{q, 0, true}};
  std::vector<util::BitVector> sequence(3, BitVector(1));  // a = 0 always
  std::vector<FaultStatus> statuses{FaultStatus::kUndetected};
  SequentialFaultSim sim(n);
  sim.run(faults, sequence, statuses);
  EXPECT_EQ(statuses[0], FaultStatus::kDetected);
}

TEST(SeqSimPinFaults, PinFaultOnInputRaises) {
  GateNetlist n("inpin");
  auto a = n.add_input("a");
  auto z = n.add_gate(GateKind::kBuf, {a}, "z");
  n.mark_output(z);

  // Inputs have no input pins; a pin fault there is a malformed list
  // and must fail loudly instead of silently forcing the machine to 0.
  const std::vector<Fault> faults{Fault{a, 0, true}};
  std::vector<util::BitVector> sequence(2, BitVector(1));
  std::vector<FaultStatus> statuses{FaultStatus::kUndetected};
  SequentialFaultSim sim(n);
  EXPECT_THROW(sim.run(faults, sequence, statuses), util::Error);
}

TEST(SeqSimPinFaults, UncollapsedListAgreesWithScanSimOnCombinational) {
  Rng rng(19);
  const auto n = make_random_netlist(rng, 6, 0, 40);
  const auto faults = enumerate_faults(n, /*collapse=*/false);
  const auto patterns = make_random_patterns(n, 60, rng);
  const auto expected = reference_statuses(n, faults, patterns);

  ScanFaultSim sim(n);
  std::vector<FaultStatus> statuses(faults.size(), FaultStatus::kUndetected);
  sim.run(faults, patterns, statuses);
  EXPECT_EQ(statuses, expected);
}

}  // namespace
}  // namespace socet::faultsim
