// Trace analytics engine: golden critical paths on hand-built span
// trees, aggregation quantiles against a naive oracle, diff ranking
// stability, malformed/truncated artifact rejection with line numbers,
// and CLI round-trips on real `batch --trace` artifacts.
#include <gtest/gtest.h>

#include <sys/wait.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "socet/obs/traceanalyze.hpp"

namespace socet {
namespace {

using obs::analyze::Aggregate;
using obs::analyze::CriticalPath;
using obs::analyze::DiffResult;
using obs::analyze::NameStats;
using obs::analyze::TraceData;

/// One merged-format X slice with explicit hex span/parent ids.
std::string slice(const std::string& name, double ts, double dur,
                  std::uint64_t id, std::uint64_t parent, int pid = 1,
                  int tid = 1) {
  char ids[64];
  std::snprintf(ids, sizeof(ids), "\"span\":\"0x%llx\"",
                static_cast<unsigned long long>(id));
  std::string args = ids;
  if (parent != 0) {
    std::snprintf(ids, sizeof(ids), ",\"parent\":\"0x%llx\"",
                  static_cast<unsigned long long>(parent));
    args += ids;
  }
  char head[160];
  std::snprintf(head, sizeof(head),
                "{\"name\":\"%s\",\"cat\":\"socet\",\"ph\":\"X\",\"ts\":%g,"
                "\"dur\":%g,\"pid\":%d,\"tid\":%d,\"args\":{",
                name.c_str(), ts, dur, pid, tid);
  return std::string(head) + args + "}}";
}

std::string chrome_doc(const std::vector<std::string>& events) {
  std::string out = "{\"traceEvents\":[";
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (i != 0) out += ',';
    out += events[i];
  }
  return out + "]}";
}

TraceData load_ok(const std::string& text) {
  TraceData trace;
  std::string error;
  EXPECT_TRUE(obs::analyze::load_trace(text, &trace, &error)) << error;
  return trace;
}

// ---------------------------------------------------------- critical path

TEST(CriticalPathGolden, WalksBackThroughGatingChildren) {
  // root [0,100] with sequential children A [10,40] and B [50,90]:
  // the path must alternate root-self and child segments, covering
  // [0,100] exactly once.
  const TraceData trace = load_ok(chrome_doc({
      slice("job/root", 0, 100, 1, 0),
      slice("stage/a", 10, 30, 2, 1),
      slice("stage/b", 50, 40, 3, 1),
  }));
  ASSERT_EQ(trace.roots.size(), 1u);
  const auto paths = obs::analyze::critical_paths(trace);
  ASSERT_EQ(paths.size(), 1u);
  const CriticalPath& path = paths[0];
  EXPECT_EQ(path.root, "job/root");
  EXPECT_DOUBLE_EQ(path.total_us, 100.0);
  ASSERT_EQ(path.steps.size(), 5u);
  const char* expected_names[] = {"job/root", "stage/a", "job/root",
                                  "stage/b", "job/root"};
  const double expected_from[] = {0, 10, 40, 50, 90};
  const double expected_to[] = {10, 40, 50, 90, 100};
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(path.steps[i].name, expected_names[i]) << "step " << i;
    EXPECT_DOUBLE_EQ(path.steps[i].from_us, expected_from[i]) << "step " << i;
    EXPECT_DOUBLE_EQ(path.steps[i].to_us, expected_to[i]) << "step " << i;
  }
  // Every microsecond attributed exactly once.
  double covered = 0;
  for (const auto& step : path.steps) covered += step.self_us();
  EXPECT_DOUBLE_EQ(covered, path.total_us);
}

TEST(CriticalPathGolden, ParallelChildIsNotDoubleCounted) {
  // C [5,95] dominates; D [20,80] runs concurrently underneath and
  // must not appear on the path.
  const TraceData trace = load_ok(chrome_doc({
      slice("job/root", 0, 100, 1, 0),
      slice("stage/c", 5, 90, 2, 1),
      slice("stage/d", 20, 60, 3, 1, 1, 2),
  }));
  const auto paths = obs::analyze::critical_paths(trace);
  ASSERT_EQ(paths.size(), 1u);
  double covered = 0;
  for (const auto& step : paths[0].steps) {
    EXPECT_NE(step.name, "stage/d");
    covered += step.self_us();
  }
  EXPECT_DOUBLE_EQ(covered, 100.0);
}

TEST(CriticalPathGolden, DeepNestingDescendsThroughEveryLevel) {
  const TraceData trace = load_ok(chrome_doc({
      slice("a/outer", 0, 100, 1, 0),
      slice("b/mid", 10, 80, 2, 1),
      slice("c/inner", 20, 60, 3, 2),
  }));
  const auto paths = obs::analyze::critical_paths(trace);
  ASSERT_EQ(paths.size(), 1u);
  int max_depth = 0;
  bool saw_inner = false;
  for (const auto& step : paths[0].steps) {
    max_depth = std::max(max_depth, step.depth);
    if (step.name == "c/inner") {
      saw_inner = true;
      EXPECT_EQ(step.depth, 2);
      EXPECT_DOUBLE_EQ(step.self_us(), 60.0);
    }
  }
  EXPECT_TRUE(saw_inner);
  EXPECT_EQ(max_depth, 2);
}

TEST(CriticalPathGolden, LocalBETraceNestsByContainment) {
  // The local --trace flavor: B/E pairs, no span ids; nesting comes
  // from containment within one (pid,tid) lane.
  const std::string doc =
      R"({"traceEvents":[)"
      R"({"name":"cli/run","cat":"socet","ph":"B","ts":0,"pid":1,"tid":1},)"
      "\n"
      R"({"name":"soc/plan","cat":"socet","ph":"B","ts":10,"pid":1,"tid":1},)"
      "\n"
      R"({"cat":"socet","ph":"E","ts":60,"pid":1,"tid":1},)"
      "\n"
      R"({"cat":"socet","ph":"E","ts":100,"pid":1,"tid":1}]})";
  const TraceData trace = load_ok(doc);
  ASSERT_EQ(trace.spans.size(), 2u);
  ASSERT_EQ(trace.roots.size(), 1u);
  EXPECT_FALSE(trace.merged);
  const auto paths = obs::analyze::critical_paths(trace);
  ASSERT_EQ(paths.size(), 1u);
  ASSERT_EQ(paths[0].steps.size(), 3u);
  EXPECT_EQ(paths[0].steps[1].name, "soc/plan");
  EXPECT_DOUBLE_EQ(paths[0].steps[1].self_us(), 50.0);
}

// ------------------------------------------------------------ aggregation

TEST(AggregateQuantiles, ConstantDurationsAreExact) {
  // All spans last exactly 37us: observed-extreme clamping must pin
  // every quantile to 37 regardless of bucket width.
  std::vector<std::string> events;
  for (int i = 0; i < 20; ++i) {
    events.push_back(slice("stage/same", i * 100.0, 37,
                           static_cast<std::uint64_t>(i + 1), 0));
  }
  const Aggregate agg = obs::analyze::aggregate({load_ok(chrome_doc(events))});
  ASSERT_EQ(agg.by_name.size(), 1u);
  const NameStats& s = agg.by_name[0];
  EXPECT_EQ(s.count, 20u);
  EXPECT_DOUBLE_EQ(s.min_us, 37.0);
  EXPECT_DOUBLE_EQ(s.max_us, 37.0);
  EXPECT_DOUBLE_EQ(s.p50_us, 37.0);
  EXPECT_DOUBLE_EQ(s.p90_us, 37.0);
  EXPECT_DOUBLE_EQ(s.p99_us, 37.0);
  EXPECT_DOUBLE_EQ(s.total_us, 20 * 37.0);
}

TEST(AggregateQuantiles, TrackNaiveOracleWithinBucketResolution) {
  // Durations 1..200us.  The 64-bucket power-of-two layout loses
  // in-bucket detail, so the estimate must land within the bucket that
  // holds the true order statistic: [oracle/2, oracle*2], and between
  // the observed extremes.
  std::vector<std::string> events;
  std::vector<double> durations;
  for (int i = 1; i <= 200; ++i) {
    durations.push_back(i);
    events.push_back(slice("stage/ramp", i * 300.0, i,
                           static_cast<std::uint64_t>(i), 0));
  }
  const Aggregate agg = obs::analyze::aggregate({load_ok(chrome_doc(events))});
  ASSERT_EQ(agg.by_name.size(), 1u);
  const NameStats& s = agg.by_name[0];
  std::sort(durations.begin(), durations.end());
  const auto oracle = [&durations](double q) {
    const std::size_t rank = static_cast<std::size_t>(
        q * static_cast<double>(durations.size() - 1));
    return durations[rank];
  };
  for (const auto& [q, value] :
       std::vector<std::pair<double, double>>{
           {0.50, s.p50_us}, {0.90, s.p90_us}, {0.99, s.p99_us}}) {
    const double truth = oracle(q);
    EXPECT_GE(value, truth / 2) << "q=" << q;
    EXPECT_LE(value, truth * 2) << "q=" << q;
    EXPECT_GE(value, s.min_us);
    EXPECT_LE(value, s.max_us);
  }
  EXPECT_DOUBLE_EQ(s.min_us, 1.0);
  EXPECT_DOUBLE_EQ(s.max_us, 200.0);
  EXPECT_DOUBLE_EQ(s.total_us, 200.0 * 201.0 / 2);
}

TEST(AggregateSelfTime, OverlappingChildrenAreUnionMerged) {
  // Children [10,50] and [40,80] overlap by 10us; the union covers
  // 70us, so the root keeps 30us of self time (not 20).
  const Aggregate agg = obs::analyze::aggregate({load_ok(chrome_doc({
      slice("job/root", 0, 100, 1, 0),
      slice("stage/x", 10, 40, 2, 1),
      slice("stage/y", 40, 40, 3, 1, 1, 2),
  }))});
  for (const NameStats& s : agg.by_name) {
    if (s.name == "job/root") EXPECT_DOUBLE_EQ(s.self_us, 30.0);
  }
  ASSERT_EQ(agg.by_stage.size(), 2u);  // job + stage
  EXPECT_DOUBLE_EQ(agg.wall_us, 100.0);
}

TEST(AggregateDaemonSplit, QueueComputeRespondFromServeSpans) {
  const Aggregate agg = obs::analyze::aggregate({load_ok(chrome_doc({
      slice("submit #1", 0, 100, 1, 0),
      slice("serve/queue", 5, 20, 2, 1),
      slice("serve/job", 25, 60, 3, 1, 2, 7),
      slice("serve/respond", 85, 10, 4, 1, 2, 900),
  }))});
  EXPECT_DOUBLE_EQ(agg.queue_us, 20.0);
  EXPECT_DOUBLE_EQ(agg.compute_us, 60.0);
  EXPECT_DOUBLE_EQ(agg.respond_us, 10.0);
}

TEST(FoldedStacks, EmitsSelfMicrosecondsPerPath) {
  const std::string folded = obs::analyze::folded_stacks({load_ok(chrome_doc({
      slice("job/root", 0, 100, 1, 0),
      slice("stage/a", 10, 30, 2, 1),
  }))});
  EXPECT_NE(folded.find("job/root 70\n"), std::string::npos) << folded;
  EXPECT_NE(folded.find("job/root;stage/a 30\n"), std::string::npos) << folded;
}

// -------------------------------------------------------------------- diff

Aggregate two_stage_aggregate(double a_dur, double b_dur) {
  return obs::analyze::aggregate({load_ok(chrome_doc({
      slice("alpha/work", 0, a_dur, 1, 0),
      slice("beta/work", 1000, b_dur, 2, 0),
  }))});
}

TEST(Diff, IdenticalAggregatesReportZeroAttribution) {
  const Aggregate agg = two_stage_aggregate(50, 70);
  const DiffResult result = obs::analyze::diff(agg, agg);
  EXPECT_DOUBLE_EQ(result.delta_us, 0.0);
  EXPECT_TRUE(result.guilty.empty());
  for (const auto& entry : result.entries) {
    EXPECT_DOUBLE_EQ(entry.delta_us, 0.0);
    EXPECT_DOUBLE_EQ(entry.share_pct, 0.0);
  }
}

TEST(Diff, SlowedStageRanksFirst) {
  const Aggregate before = two_stage_aggregate(50, 70);
  const Aggregate after = two_stage_aggregate(50, 700);  // beta 10x slower
  const DiffResult result = obs::analyze::diff(before, after);
  ASSERT_FALSE(result.entries.empty());
  EXPECT_EQ(result.entries[0].stage, "beta");
  EXPECT_EQ(result.guilty, "beta");
  EXPECT_DOUBLE_EQ(result.entries[0].delta_us, 630.0);
  EXPECT_NEAR(result.entries[0].share_pct, 100.0, 1e-9);
}

TEST(Diff, RankingIsStableUnderTies) {
  // Both stages slow down by exactly 10us: the tie must break by name
  // so repeated runs render the same table.
  const Aggregate before = two_stage_aggregate(50, 70);
  const Aggregate after = two_stage_aggregate(60, 80);
  const DiffResult result = obs::analyze::diff(before, after);
  ASSERT_EQ(result.entries.size(), 2u);
  EXPECT_EQ(result.entries[0].stage, "alpha");
  EXPECT_EQ(result.entries[1].stage, "beta");
  EXPECT_EQ(result.guilty, "alpha");
  EXPECT_NEAR(result.entries[0].share_pct, 50.0, 1e-9);
}

TEST(Diff, StageOnlyInOneSideStillAttributes) {
  const Aggregate before = obs::analyze::aggregate(
      {load_ok(chrome_doc({slice("alpha/work", 0, 50, 1, 0)}))});
  const Aggregate after = two_stage_aggregate(50, 200);
  const DiffResult result = obs::analyze::diff(before, after);
  ASSERT_FALSE(result.entries.empty());
  EXPECT_EQ(result.entries[0].stage, "beta");
  EXPECT_DOUBLE_EQ(result.entries[0].a_us, 0.0);
  EXPECT_DOUBLE_EQ(result.entries[0].delta_us, 200.0);
}

// --------------------------------------------------- rejection / robustness

TEST(LoadTrace, TruncatedJsonNamesTheBreakLine) {
  // A document cut off mid-event on its third line.
  const std::string truncated =
      "{\"traceEvents\":[\n"
      "{\"name\":\"a\",\"ph\":\"X\",\"ts\":0,\"dur\":5,\"pid\":1,\"tid\":1},\n"
      "{\"name\":\"b\",\"ph\":\"X\",\"ts\":1,";
  TraceData trace;
  std::string error;
  EXPECT_FALSE(obs::analyze::load_trace(truncated, &trace, &error));
  EXPECT_NE(error.find("line 3"), std::string::npos) << error;
}

TEST(LoadTrace, UnclosedSpanIsATruncatedTrace) {
  const std::string doc =
      R"({"traceEvents":[)"
      R"({"name":"cli/run","ph":"B","ts":0,"pid":1,"tid":1}]})";
  TraceData trace;
  std::string error;
  EXPECT_FALSE(obs::analyze::load_trace(doc, &trace, &error));
  EXPECT_NE(error.find("truncated"), std::string::npos) << error;
  EXPECT_NE(error.find("cli/run"), std::string::npos) << error;
}

TEST(LoadTrace, EndWithoutBeginIsRejected) {
  const std::string doc =
      R"({"traceEvents":[{"ph":"E","ts":5,"pid":1,"tid":1}]})";
  TraceData trace;
  std::string error;
  EXPECT_FALSE(obs::analyze::load_trace(doc, &trace, &error));
  EXPECT_NE(error.find("no open 'B'"), std::string::npos) << error;
}

TEST(LoadTrace, MissingTraceEventsAndEmptyInputAreRejected) {
  TraceData trace;
  std::string error;
  EXPECT_FALSE(obs::analyze::load_trace("{}", &trace, &error));
  EXPECT_NE(error.find("traceEvents"), std::string::npos) << error;
  EXPECT_FALSE(obs::analyze::load_trace("  \n ", &trace, &error));
  EXPECT_NE(error.find("line 1"), std::string::npos) << error;
}

TEST(LoadTrace, MalformedJournalLineIsNamed) {
  const std::string journal =
      "{\"schema\":\"socet-journal-v1\",\"events\":2}\n"
      "{\"seq\":0,\"ts_us\":10,\"tid\":1,\"corr\":\"job-1\","
      "\"span\":\"soc/plan\",\"type\":\"route\"}\n"
      "{broken\n";
  TraceData trace;
  std::string error;
  EXPECT_FALSE(obs::analyze::load_trace(journal, &trace, &error));
  EXPECT_NE(error.find("line 3"), std::string::npos) << error;
}

TEST(LoadTrace, JournalFoldsIntoPerCorrEnvelopes) {
  const std::string journal =
      "{\"schema\":\"socet-journal-v1\",\"events\":4}\n"
      "{\"seq\":0,\"ts_us\":10,\"tid\":1,\"corr\":\"job-1\","
      "\"span\":\"soc/plan\",\"type\":\"route\"}\n"
      "{\"seq\":1,\"ts_us\":50,\"tid\":1,\"corr\":\"job-1\","
      "\"span\":\"soc/plan\",\"type\":\"route\"}\n"
      "{\"seq\":2,\"ts_us\":60,\"tid\":1,\"corr\":\"job-1\","
      "\"span\":\"opt/move\",\"type\":\"move\"}\n"
      "{\"seq\":3,\"ts_us\":30,\"tid\":2,\"corr\":\"job-2\","
      "\"type\":\"cache\"}\n";
  const TraceData trace = load_ok(journal);
  EXPECT_TRUE(trace.journal);
  ASSERT_EQ(trace.roots.size(), 2u);  // job-1, job-2
  const Aggregate agg = obs::analyze::aggregate({trace});
  bool saw_plan = false;
  for (const NameStats& s : agg.by_name) {
    if (s.name == "soc/plan") {
      saw_plan = true;
      EXPECT_DOUBLE_EQ(s.total_us, 40.0);  // event envelope [10,50]
    }
  }
  EXPECT_TRUE(saw_plan);
}

TEST(LoadTrace, EmptyTraceEventsIsValidAndEmpty) {
  const TraceData trace = load_ok("{\"traceEvents\":[]}");
  EXPECT_TRUE(trace.spans.empty());
  EXPECT_TRUE(obs::analyze::critical_paths(trace).empty());
  const Aggregate agg = obs::analyze::aggregate({trace});
  EXPECT_EQ(agg.span_count, 0u);
  EXPECT_FALSE(obs::analyze::analysis_json({}, agg).empty());
}

// ------------------------------------------------------------ CLI round-trip

struct CliRun {
  int exit_code = -1;
  std::string output;
};

CliRun run_cli(const std::string& arguments,
               const std::string& env_prefix = "") {
  const std::string command = env_prefix + (env_prefix.empty() ? "" : " ") +
                              std::string(SOCET_CLI_PATH) + " " + arguments +
                              " 2>/dev/null";
  FILE* pipe = popen(command.c_str(), "r");
  EXPECT_NE(pipe, nullptr);
  CliRun run;
  char buffer[4096];
  std::size_t n = 0;
  while ((n = fread(buffer, 1, sizeof(buffer), pipe)) > 0) {
    run.output.append(buffer, n);
  }
  const int status = pclose(pipe);
  run.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return run;
}

/// Write a small batch job file and run `batch --trace` over it,
/// returning the trace path.  `env_prefix` lets a case slow one stage
/// via the SOCET_TRACE_TEST_SLOW hook.
std::string traced_batch(const std::string& tag,
                         const std::string& env_prefix = "") {
  const std::string jobs = testing::TempDir() + "ta_jobs_" + tag + ".txt";
  {
    std::ofstream file(jobs);
    file << "plan system=barcode selection=1,2,1\n"
         << "optimize system=barcode area-budget=40\n";
  }
  const std::string trace = testing::TempDir() + "ta_trace_" + tag + ".json";
  const CliRun run = run_cli(
      "batch --jobs " + jobs + " --threads 2 --trace " + trace, env_prefix);
  EXPECT_EQ(run.exit_code, 0);
  std::remove(jobs.c_str());
  return trace;
}

TEST(CliTraceAnalyze, RoundTripsARealBatchTraceArtifact) {
  const std::string trace = traced_batch("roundtrip");
  const CliRun text = run_cli("trace-analyze " + trace);
  EXPECT_EQ(text.exit_code, 0);
  EXPECT_NE(text.output.find("critical path"), std::string::npos)
      << text.output;
  EXPECT_NE(text.output.find("per-stage attribution"), std::string::npos);

  const CliRun json = run_cli("trace-analyze " + trace + " --json");
  EXPECT_EQ(json.exit_code, 0);
  EXPECT_NE(json.output.find("\"schema\":\"socet-trace-analysis-v1\""),
            std::string::npos)
      << json.output;
  std::remove(trace.c_str());
}

TEST(CliTraceAnalyze, DiffOfARunAgainstItselfIsQuiet) {
  const std::string trace = traced_batch("selfdiff");
  const CliRun diff = run_cli("trace-analyze --diff " + trace + " " + trace);
  EXPECT_EQ(diff.exit_code, 0);
  EXPECT_NE(diff.output.find("no stage got slower"), std::string::npos)
      << diff.output;
  std::remove(trace.c_str());
}

TEST(CliTraceAnalyze, ArtificiallySlowedStageRanksFirst) {
  const std::string fast = traced_batch("fast");
  // The test hook injects 30ms into every soc/plan_chip_test span.
  const std::string slow = traced_batch(
      "slow", "SOCET_TRACE_TEST_SLOW='soc/plan_chip_test:30000'");
  const CliRun diff =
      run_cli("trace-analyze --diff " + fast + " " + slow + " --json");
  EXPECT_EQ(diff.exit_code, 0);
  EXPECT_NE(diff.output.find("\"guilty\":\"soc\""), std::string::npos)
      << diff.output;
  // The first (highest-delta) entry in the ranked stage array is soc.
  const auto stages_at = diff.output.find("\"stages\":[");
  ASSERT_NE(stages_at, std::string::npos);
  EXPECT_EQ(diff.output.find("{\"stage\":\"soc\"", stages_at),
            stages_at + std::string("\"stages\":[").size())
      << diff.output;
  std::remove(fast.c_str());
  std::remove(slow.c_str());
}

TEST(CliTraceAnalyze, BadInputFailsWithAUsefulError) {
  const std::string path = testing::TempDir() + "ta_bad.json";
  {
    std::ofstream file(path);
    file << "{\"traceEvents\":[\n{\"name\":\"a\",\"ph\":\"X\",";
  }
  const CliRun run = run_cli("trace-analyze " + path);
  EXPECT_NE(run.exit_code, 0);
  std::remove(path.c_str());
  EXPECT_NE(run_cli("trace-analyze").exit_code, 0);
  EXPECT_NE(run_cli("trace-analyze --diff only_one.json").exit_code, 0);
}

}  // namespace
}  // namespace socet
