#include <gtest/gtest.h>

#include "socet/baselines/baselines.hpp"
#include "socet/systems/systems.hpp"

namespace socet::baselines {
namespace {

TEST(FscanBscan, DisplayMatchesPaperArithmetic) {
  // The paper: the DISPLAY has 66 flip-flops and 20 internal input bits;
  // with 105 scan vectors, FSCAN-BSCAN needs (66+20) x 105 + 85 = 9,115
  // cycles.  Our reconstructed DISPLAY has exactly those counts when its
  // outputs sit on chip POs.
  auto system = systems::make_barcode_system();
  auto result = fscan_bscan(*system.soc);

  const FscanBscanCoreRow* display = nullptr;
  for (const auto& row : result.cores) {
    if (row.core == "DISPLAY") display = &row;
  }
  ASSERT_NE(display, nullptr);
  EXPECT_EQ(display->flip_flops, 66u);
  EXPECT_EQ(display->boundary_bits, 20u);
  EXPECT_EQ(display->vectors, 105u);
  EXPECT_EQ(display->tat, (66ull + 20) * 105 + 85);
}

TEST(FscanBscan, ExternallyWiredPortsNeedNoBoundaryCells) {
  auto system = systems::make_barcode_system();
  auto result = fscan_bscan(*system.soc);
  // The PREPROCESSOR's NUM/Video/Reset inputs are chip PIs, so only DB,
  // Address and Eoc (8 + 12 + 1 = 21 bits) need boundary cells.
  const FscanBscanCoreRow* pre = nullptr;
  for (const auto& row : result.cores) {
    if (row.core == "PREPROCESSOR") pre = &row;
  }
  ASSERT_NE(pre, nullptr);
  EXPECT_EQ(pre->boundary_bits, 21u);
}

TEST(FscanBscan, TotalsSumCoreRows) {
  auto system = systems::make_barcode_system();
  auto result = fscan_bscan(*system.soc);
  unsigned long long tat = 0;
  for (const auto& row : result.cores) tat += row.tat;
  EXPECT_EQ(result.total_tat, tat);
  EXPECT_EQ(result.total_cells(),
            result.core_level_cells + result.chip_level_cells);
}

TEST(FscanBscan, CostModelScales) {
  auto system = systems::make_barcode_system();
  FscanBscanCostModel expensive;
  expensive.boundary_cell_per_bit = 9;
  expensive.fscan_per_ff = 6;
  auto cheap = fscan_bscan(*system.soc);
  auto costly = fscan_bscan(*system.soc, expensive);
  EXPECT_GT(costly.core_level_cells, cheap.core_level_cells);
  EXPECT_GT(costly.chip_level_cells, cheap.chip_level_cells);
  EXPECT_EQ(costly.total_tat, cheap.total_tat) << "TAT is cost-independent";
}

TEST(TestBus, FasterThanFscanBscanButCostly) {
  auto system = systems::make_barcode_system();
  auto bus = test_bus(*system.soc);
  auto bscan = fscan_bscan(*system.soc);
  // Direct access applies HSCAN vectors at full rate: far fewer cycles
  // than serial boundary-scan chains.
  EXPECT_LT(bus.total_tat, bscan.total_tat);
  EXPECT_GT(bus.chip_level_cells, 0u);
}

TEST(TestBus, TatIsVectorSumPlusFlush) {
  auto system = systems::make_barcode_system();
  auto bus = test_bus(*system.soc);
  unsigned long long expected = 0;
  for (const auto* core : system.soc->cores()) {
    expected += core->hscan_vectors() + (core->hscan().max_depth - 1);
  }
  EXPECT_EQ(bus.total_tat, expected);
}

}  // namespace
}  // namespace socet::baselines
