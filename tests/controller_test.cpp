#include <gtest/gtest.h>

#include "socet/rtl/interpreter.hpp"
#include "socet/soc/controller.hpp"
#include "socet/synth/elaborate.hpp"
#include "socet/systems/systems.hpp"

namespace socet::soc {
namespace {

TEST(Controller, SpecCoversEveryCoreCapture) {
  auto system = systems::make_barcode_system();
  const std::vector<unsigned> selection(system.soc->cores().size(), 0);
  auto plan = plan_chip_test(*system.soc, selection);
  Ccg ccg(*system.soc, selection);
  auto spec = derive_controller_spec(*system.soc, ccg, plan);

  EXPECT_EQ(spec.core_count, 3u);
  EXPECT_GE(spec.period, 1u);
  ASSERT_EQ(spec.clock_enables.size(), spec.period);
  // Every core's clock must run at least once (it captures its vector).
  for (unsigned c = 0; c < spec.core_count; ++c) {
    bool runs = false;
    for (const auto& word : spec.clock_enables) runs |= word.get(c);
    EXPECT_TRUE(runs) << "core " << c << " clock never enabled";
  }
}

TEST(Controller, SpecMarksTransparencyWindows) {
  auto system = systems::make_barcode_system();
  const std::vector<unsigned> selection(system.soc->cores().size(), 0);
  auto plan = plan_chip_test(*system.soc, selection);
  Ccg ccg(*system.soc, selection);
  auto spec = derive_controller_spec(*system.soc, ccg, plan);

  // The PREPROCESSOR carries data in the first cycles of the DISPLAY's
  // period (its NUM->DB transparency), so its clock must be enabled at
  // cycle 0.
  const auto pre = system.soc->find_core("PREPROCESSOR");
  EXPECT_TRUE(spec.clock_enables[0].get(pre));
}

TEST(Controller, GeneratedRtlSequencesCorrectly) {
  ControllerSpec spec;
  spec.core_count = 2;
  spec.period = 4;
  spec.clock_enables.assign(4, util::BitVector(2));
  spec.clock_enables[0].set(0, true);
  spec.clock_enables[1].set(0, true);
  spec.clock_enables[3].set(1, true);

  auto rtl = generate_controller_rtl(spec);
  rtl::Interpreter sim(rtl);
  sim.reset();
  sim.set_input("TestMode", util::BitVector(1, 1));

  // Interpreter shows post-edge state: after k steps the counter is k%4,
  // and outputs decode the *current* (post-edge) counter.
  for (unsigned t = 1; t <= 8; ++t) {
    sim.step();
    const unsigned cycle = t % 4;
    const auto enables = sim.output("ClockEnable");
    EXPECT_EQ(enables.get(0), spec.clock_enables[cycle].get(0))
        << "cycle " << cycle;
    EXPECT_EQ(enables.get(1), spec.clock_enables[cycle].get(1))
        << "cycle " << cycle;
    EXPECT_EQ(sim.output("ScanStrobe").get(0), cycle == 3);
  }
}

TEST(Controller, TestModeGatesOutputs) {
  ControllerSpec spec;
  spec.core_count = 1;
  spec.period = 2;
  spec.clock_enables.assign(2, util::BitVector(1));
  spec.clock_enables[0].set(0, true);
  spec.clock_enables[1].set(0, true);

  auto rtl = generate_controller_rtl(spec);
  rtl::Interpreter sim(rtl);
  sim.set_input("TestMode", util::BitVector(1, 0));
  sim.step();
  sim.step();
  EXPECT_FALSE(sim.output("ClockEnable").get(0));
  EXPECT_FALSE(sim.output("ScanStrobe").get(0));
}

TEST(Controller, MeasuredAreaIsSmall) {
  // The paper calls the controller "a small finite-state machine"; check
  // its elaborated area stays a tiny fraction of the chip.
  auto system = systems::make_barcode_system();
  const std::vector<unsigned> selection(system.soc->cores().size(), 0);
  auto plan = plan_chip_test(*system.soc, selection);
  Ccg ccg(*system.soc, selection);
  auto spec = derive_controller_spec(*system.soc, ccg, plan);
  auto rtl = generate_controller_rtl(spec);
  auto elab = synth::elaborate(rtl);
  EXPECT_LT(elab.gates.area(), 400.0);
  EXPECT_GT(elab.gates.area(), 10.0);
}

TEST(Controller, RejectsEmptySpec) {
  ControllerSpec empty;
  EXPECT_THROW(generate_controller_rtl(empty), util::Error);
}

}  // namespace
}  // namespace socet::soc
