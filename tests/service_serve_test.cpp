// The socet serve daemon: framing, the byte-bounded cache, multi-client
// byte-identity against the in-process batch service, protocol-error
// isolation, admission control under a saturated queue, graceful drain,
// and CLI round-trips through the real `socet` binary.
#include <gtest/gtest.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cinttypes>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "socet/obs/metrics.hpp"
#include "socet/obs/sampler.hpp"
#include "socet/obs/trace.hpp"
#include "socet/service/cache.hpp"
#include "socet/service/client.hpp"
#include "socet/service/protocol.hpp"
#include "socet/service/server.hpp"
#include "socet/service/service.hpp"
#include "socet/util/error.hpp"

namespace socet {
namespace {

using namespace std::chrono_literals;

// ----------------------------------------------------------------- framing

TEST(FrameReader, ReassemblesFramesAcrossArbitrarySplits) {
  const std::string wire = service::encode_frame("plan system=barcode") +
                           service::encode_frame("") +
                           service::encode_frame("stats");
  // Feed one byte at a time: every header/payload boundary is crossed.
  service::FrameReader reader;
  std::vector<std::string> payloads;
  for (char byte : wire) {
    reader.feed(&byte, 1);
    while (auto payload = reader.next()) payloads.push_back(*payload);
  }
  ASSERT_EQ(payloads.size(), 3u);
  EXPECT_EQ(payloads[0], "plan system=barcode");
  EXPECT_EQ(payloads[1], "");
  EXPECT_EQ(payloads[2], "stats");
  EXPECT_EQ(reader.buffered(), 0u);
}

TEST(FrameReader, OversizedHeaderLatchesAndDropsTheTail) {
  service::FrameReader reader;
  const char huge[4] = {'\xff', '\xff', '\xff', '\xff'};
  reader.feed(huge, sizeof(huge));
  EXPECT_FALSE(reader.next().has_value());
  EXPECT_TRUE(reader.overflowed());
  EXPECT_EQ(reader.announced(), 0xffffffffu);
  // A valid frame after the bad header is unreachable: the stream
  // cannot be resynchronized.
  const std::string good = service::encode_frame("plan");
  reader.feed(good.data(), good.size());
  EXPECT_FALSE(reader.next().has_value());
}

TEST(FrameReader, EncodeRejectsOversizedPayloads) {
  EXPECT_THROW(
      service::encode_frame(std::string(service::kMaxFrameBytes + 1, 'x')),
      util::Error);
}

TEST(FrameReader, CorrFlagCarriesACorrelationId) {
  const std::string wire =
      service::encode_frame("plan system=barcode", "job-7") +
      service::encode_frame("stats");
  // One byte at a time again: the corr extension spans every boundary.
  service::FrameReader reader;
  std::vector<service::FrameReader::Frame> frames;
  for (char byte : wire) {
    reader.feed(&byte, 1);
    while (auto frame = reader.next_frame()) frames.push_back(*frame);
  }
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0].payload, "plan system=barcode");
  EXPECT_EQ(frames[0].corr, "job-7");
  EXPECT_EQ(frames[1].payload, "stats");
  EXPECT_EQ(frames[1].corr, "");

  // next() is corr-oblivious: same payloads, id discarded.
  service::FrameReader plain;
  plain.feed(wire.data(), wire.size());
  EXPECT_EQ(plain.next().value(), "plan system=barcode");
  EXPECT_EQ(plain.next().value(), "stats");
}

TEST(FrameReader, MalformedCorrLengthLatchesLikeAnOversizedFrame) {
  // A flagged header announcing 2 body bytes whose corr_len byte claims
  // 5 bytes of corr: the stream cannot be trusted from here on.
  service::FrameReader reader;
  const char bad[] = {'\x80', '\x00', '\x00', '\x02', '\x05', 'x'};
  reader.feed(bad, sizeof(bad));
  EXPECT_FALSE(reader.next_frame().has_value());
  EXPECT_TRUE(reader.overflowed());
  EXPECT_EQ(reader.announced(), 0x80000002u);
}

TEST(FrameReader, TraceFlagCarriesTheTraceContext) {
  const service::FrameTrace context{0xdeadbeefcafef00dull, 0x1122334455667788ull};
  const std::string wire =
      service::encode_frame("plan system=barcode", "job-1", &context) +
      service::encode_frame("explore system=barcode", {}, &context) +
      service::encode_frame("stats");
  // One byte at a time: the 16-byte trace block spans every boundary,
  // with and without a corr section in front of it.
  service::FrameReader reader;
  std::vector<service::FrameReader::Frame> frames;
  for (char byte : wire) {
    reader.feed(&byte, 1);
    while (auto frame = reader.next_frame()) frames.push_back(*frame);
  }
  ASSERT_EQ(frames.size(), 3u);
  EXPECT_EQ(frames[0].payload, "plan system=barcode");
  EXPECT_EQ(frames[0].corr, "job-1");
  ASSERT_TRUE(frames[0].has_trace);
  EXPECT_EQ(frames[0].trace.trace_id, context.trace_id);
  EXPECT_EQ(frames[0].trace.parent_span, context.parent_span);
  EXPECT_EQ(frames[1].payload, "explore system=barcode");
  EXPECT_EQ(frames[1].corr, "");
  ASSERT_TRUE(frames[1].has_trace);
  EXPECT_EQ(frames[1].trace.trace_id, context.trace_id);
  EXPECT_FALSE(frames[2].has_trace);

  // next() is trace-oblivious: same payloads, context discarded.
  service::FrameReader plain;
  plain.feed(wire.data(), wire.size());
  EXPECT_EQ(plain.next().value(), "plan system=barcode");
  EXPECT_EQ(plain.next().value(), "explore system=barcode");
  EXPECT_EQ(plain.next().value(), "stats");
}

TEST(FrameReader, TraceBlockShorterThanSixteenBytesLatches) {
  // A trace-flagged header announcing a 2-byte body cannot hold the
  // fixed 16-byte context: unrecoverable, like an oversized frame.
  service::FrameReader reader;
  const char bad[] = {'\x40', '\x00', '\x00', '\x02', 'x', 'y'};
  reader.feed(bad, sizeof(bad));
  EXPECT_FALSE(reader.next_frame().has_value());
  EXPECT_TRUE(reader.overflowed());
  EXPECT_EQ(reader.announced(), 0x40000002u);
}

TEST(Protocol, EncodeRejectsOversizedCorrIds) {
  EXPECT_THROW(service::encode_frame("x", std::string(256, 'c')),
               util::Error);
  // At the limit it round-trips.
  const std::string frame =
      service::encode_frame("x", std::string(255, 'c'));
  service::FrameReader reader;
  reader.feed(frame.data(), frame.size());
  const auto decoded = reader.next_frame();
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->corr.size(), 255u);
  EXPECT_EQ(decoded->payload, "x");
}

TEST(Protocol, BlockingReadStripsTheCorrExtension) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  service::write_frame(fds[0], "ok plan tat=42", "job-3");
  ::close(fds[0]);
  const auto payload = service::read_frame(fds[1]);
  ASSERT_TRUE(payload.has_value());
  EXPECT_EQ(*payload, "ok plan tat=42");
  ::close(fds[1]);
}

TEST(Protocol, ParseHostPort) {
  const auto hp = service::parse_host_port("127.0.0.1:8080");
  EXPECT_EQ(hp.host, "127.0.0.1");
  EXPECT_EQ(hp.port, 8080);
  EXPECT_THROW(service::parse_host_port("127.0.0.1"), util::Error);
  EXPECT_THROW(service::parse_host_port(":80"), util::Error);
  EXPECT_THROW(service::parse_host_port("host:"), util::Error);
  EXPECT_THROW(service::parse_host_port("host:0"), util::Error);
  EXPECT_THROW(service::parse_host_port("host:99999"), util::Error);
  EXPECT_THROW(service::parse_host_port("host:12x"), util::Error);
}

TEST(Protocol, BlockingReadThrowsOnTruncatedFrames) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  // Two header bytes, then EOF: the peer died inside the header.
  ASSERT_EQ(::write(fds[0], "\0\0", 2), 2);
  ::close(fds[0]);
  EXPECT_THROW(service::read_frame(fds[1]), util::Error);
  ::close(fds[1]);

  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  // A complete header announcing 10 bytes, then only 3 of them.
  const std::string partial = service::encode_frame("0123456789");
  ASSERT_EQ(::write(fds[0], partial.data(), 7),
            static_cast<ssize_t>(7));
  ::close(fds[0]);
  EXPECT_THROW(service::read_frame(fds[1]), util::Error);
  ::close(fds[1]);

  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  ::close(fds[0]);
  EXPECT_FALSE(service::read_frame(fds[1]).has_value());  // clean EOF
  ::close(fds[1]);
}

// ------------------------------------------------------- byte-bounded cache

service::PlanCache::Entry entry_of(const std::string& payload) {
  service::PlanCache::Entry entry;
  entry.payload = payload;
  return entry;
}

TEST(PlanCache, ByteBudgetEvictsFromTheColdEnd) {
  // Each entry costs payload (10) + overhead bytes; budget fits two.
  const std::size_t per_entry =
      10 + service::PlanCache::kEntryOverheadBytes;
  service::PlanCache cache(/*capacity=*/100, /*max_bytes=*/2 * per_entry);
  cache.insert(1, entry_of(std::string(10, 'a')));
  cache.insert(2, entry_of(std::string(10, 'b')));
  EXPECT_EQ(cache.bytes(), 2 * per_entry);
  EXPECT_EQ(cache.stats().evictions, 0u);

  cache.insert(3, entry_of(std::string(10, 'c')));
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.bytes(), 2 * per_entry);
  EXPECT_FALSE(cache.lookup(1).has_value());  // key 1 was coldest
  EXPECT_TRUE(cache.lookup(2).has_value());
  EXPECT_TRUE(cache.lookup(3).has_value());
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.stats().evicted_bytes, per_entry);
}

TEST(PlanCache, ByteBudgetKeepsTheNewestEntryEvenWhenOversized) {
  service::PlanCache cache(/*capacity=*/100, /*max_bytes=*/64);
  cache.insert(1, entry_of(std::string(500, 'x')));  // alone over budget
  EXPECT_EQ(cache.size(), 1u);  // never evict down to an empty cache
  EXPECT_TRUE(cache.lookup(1).has_value());

  cache.insert(2, entry_of(std::string(500, 'y')));
  EXPECT_EQ(cache.size(), 1u);  // the old giant goes, the new one stays
  EXPECT_FALSE(cache.lookup(1).has_value());
  EXPECT_TRUE(cache.lookup(2).has_value());
}

TEST(PlanCache, ZeroByteBudgetMeansUnbounded) {
  service::PlanCache cache(/*capacity=*/100, /*max_bytes=*/0);
  for (std::uint64_t key = 0; key < 50; ++key) {
    cache.insert(key, entry_of(std::string(1000, 'z')));
  }
  EXPECT_EQ(cache.size(), 50u);
  EXPECT_EQ(cache.stats().evictions, 0u);
}

// ------------------------------------------------------------------ server

const std::vector<std::string> kJobFile = {
    "# exercise every verb, with repeats for cache hits",
    "plan system=barcode selection=1,2,1",
    "",
    "optimize system=system2 tat-budget=600000",
    "plan system=barcode selection=1,2,1",
    "explore system=barcode",
    "parallel system=barcode selection=2,2,2",
    "program system=barcode",
    "plan system=nope",  // error record, but the batch keeps going
    "optimize system=barcode w1=1.5 w2=0.25",
};

std::string serial_records(const std::vector<std::string>& lines) {
  service::ServiceOptions options;
  options.threads = 1;
  service::PlanningService service(options);
  return service.run_lines(lines).records_text();
}

service::Client connect_to(const service::Server& server,
                           std::size_t window = 16) {
  service::ClientOptions options;
  options.port = server.port();
  options.window = window;
  return service::Client(options);
}

TEST(Serve, HealthAndStatsRoundTrip) {
  service::ServerOptions options;
  options.threads = 2;
  service::Server server(std::move(options));
  server.start();
  ASSERT_GT(server.port(), 0);

  auto client = connect_to(server);
  EXPECT_EQ(client.query("health"), "ok health serving");
  const std::string stats = client.query("stats");
  EXPECT_EQ(stats.rfind("ok stats workers=2 ", 0), 0u) << stats;
  EXPECT_NE(stats.find(" draining=0 "), std::string::npos) << stats;
  EXPECT_NE(stats.find(" cache_entries=0 "), std::string::npos) << stats;
  // A healthy daemon with no tailers has lost zero journal events.
  EXPECT_NE(stats.find(" tail_dropped=0"), std::string::npos) << stats;
}

TEST(Serve, MatchesBatchByteForByteAtEveryWorkerCount) {
  const std::string expected = serial_records(kJobFile);
  for (unsigned threads : {1u, 2u, 4u}) {
    service::ServerOptions options;
    options.threads = threads;
    service::Server server(std::move(options));
    server.start();
    auto client = connect_to(server);
    const auto report = client.run_lines(kJobFile);
    EXPECT_EQ(report.records_text(), expected) << threads << " workers";
    EXPECT_EQ(report.errors, 1u);
    EXPECT_EQ(report.busy, 0u);
  }
}

TEST(Serve, ManyClientsShareOneWarmCache) {
  service::ServerOptions options;
  options.threads = 4;
  service::Server server(std::move(options));
  server.start();
  const std::string expected = serial_records(kJobFile);

  // Concurrent clients: every one sees byte-identical records.
  std::vector<std::thread> threads;
  std::vector<std::string> outputs(6);
  for (std::size_t c = 0; c < outputs.size(); ++c) {
    threads.emplace_back([&server, &outputs, c] {
      auto client = connect_to(server);
      outputs[c] = client.run_lines(kJobFile).records_text();
    });
  }
  for (auto& thread : threads) thread.join();
  for (const std::string& output : outputs) EXPECT_EQ(output, expected);

  // The cache outlives connections: a fresh client replaying the same
  // file hits on all 7 successful jobs; only the failing job (errors
  // are never cached) misses again.
  const auto before = server.stats();
  auto client = connect_to(server);
  client.run_lines(kJobFile);
  const auto after = server.stats();
  EXPECT_EQ(after.cache.misses, before.cache.misses + 1);
  EXPECT_GE(after.cache.hits, before.cache.hits + 7);
}

TEST(Serve, OversizedFrameKillsOnlyThatConnection) {
  service::ServerOptions options;
  options.threads = 1;
  service::Server server(std::move(options));
  server.start();

  auto good = connect_to(server);
  EXPECT_EQ(good.query("health"), "ok health serving");

  // A raw connection announcing a 4 GiB frame: the server answers with
  // one error frame and closes; the stream cannot be resynchronized.
  const int bad_fd = service::net_connect("127.0.0.1", server.port());
  ASSERT_EQ(::write(bad_fd, "\xff\xff\xff\xff", 4), 4);
  const auto reply = service::read_frame(bad_fd);
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->rfind("error oversized frame", 0), 0u) << *reply;
  EXPECT_FALSE(service::read_frame(bad_fd).has_value());  // then EOF
  ::close(bad_fd);

  // The well-behaved connection is unaffected.
  EXPECT_EQ(good.query("health"), "ok health serving");
  const auto report = good.run_lines({"plan system=barcode"});
  EXPECT_EQ(report.errors, 0u);
  EXPECT_EQ(server.stats().bad_frames, 1u);
}

TEST(Serve, PendingResponsesStillFlushBeforeTheErrorClose) {
  // A job request followed by garbage in the same burst: the job's
  // response arrives first (FIFO slots), then the error, then EOF.
  service::ServerOptions options;
  options.threads = 1;
  service::Server server(std::move(options));
  server.start();

  const int fd = service::net_connect("127.0.0.1", server.port());
  const std::string burst =
      service::encode_frame("plan system=barcode") + "\xff\xff\xff\xff";
  ASSERT_EQ(::write(fd, burst.data(), burst.size()),
            static_cast<ssize_t>(burst.size()));
  const auto first = service::read_frame(fd);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->rfind("ok plan ", 0), 0u) << *first;
  const auto second = service::read_frame(fd);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->rfind("error oversized frame", 0), 0u) << *second;
  EXPECT_FALSE(service::read_frame(fd).has_value());
  ::close(fd);
}

/// Parks worker threads inside before_execute until release() and
/// reports how many workers have entered, so admission/drain tests can
/// sequence requests deterministically against a busy pool.
class WorkerGate {
 public:
  void wait_entered(std::size_t n) {
    std::unique_lock<std::mutex> lock(mutex_);
    entered_cv_.wait(lock, [&] { return entered_ >= n; });
  }
  void release() {
    std::lock_guard<std::mutex> lock(mutex_);
    released_ = true;
    release_cv_.notify_all();
  }
  std::function<void(const std::string&)> hook() {
    return [this](const std::string&) {
      std::unique_lock<std::mutex> lock(mutex_);
      ++entered_;
      entered_cv_.notify_all();
      release_cv_.wait(lock, [&] { return released_; });
    };
  }

 private:
  std::mutex mutex_;
  std::condition_variable entered_cv_;
  std::condition_variable release_cv_;
  std::size_t entered_ = 0;
  bool released_ = false;
};

TEST(Serve, SaturatedQueueAnswersBusyWithoutRunningTheJob) {
  WorkerGate gate;
  service::ServerOptions options;
  options.threads = 1;
  options.max_queue = 1;
  options.before_execute = gate.hook();
  service::Server server(std::move(options));
  server.start();

  const int fd = service::net_connect("127.0.0.1", server.port());
  // Job 1 occupies the only worker...
  service::write_frame(fd, "plan system=barcode");
  gate.wait_entered(1);
  // ...so job 2 fills the queue (depth 1) and job 3 exceeds the
  // high-water mark.  Frames on one connection process in order, which
  // makes the admission outcomes deterministic.
  service::write_frame(fd, "explore system=barcode");
  service::write_frame(fd, "program system=barcode");
  gate.release();

  const auto r1 = service::read_frame(fd);
  const auto r2 = service::read_frame(fd);
  const auto r3 = service::read_frame(fd);
  ASSERT_TRUE(r1 && r2 && r3);
  EXPECT_EQ(r1->rfind("ok plan ", 0), 0u) << *r1;
  EXPECT_EQ(r2->rfind("ok explore ", 0), 0u) << *r2;
  EXPECT_EQ(*r3, "busy queue=1 limit=1");
  ::close(fd);

  const auto stats = server.stats();
  EXPECT_EQ(stats.busy_rejects, 1u);
  EXPECT_EQ(stats.requests, 2u);  // the rejected job was never admitted
  EXPECT_EQ(stats.responses, 2u);
}

TEST(Serve, GracefulDrainFinishesAdmittedWorkAndRejectsTheRest) {
  WorkerGate gate;
  service::ServerOptions options;
  options.threads = 1;
  options.before_execute = gate.hook();
  service::Server server(std::move(options));
  server.start();

  const int fd = service::net_connect("127.0.0.1", server.port());
  service::write_frame(fd, "plan system=barcode");   // in flight
  gate.wait_entered(1);
  service::write_frame(fd, "explore system=barcode");  // admitted, queued

  server.request_drain();
  while (!server.stats().draining) std::this_thread::sleep_for(1ms);
  // New connections are refused once draining: the listen socket is
  // closed, so a connect attempt fails outright.
  EXPECT_THROW(service::net_connect("127.0.0.1", server.port()),
               util::Error);
  // New work on the existing connection is rejected, structured.
  service::write_frame(fd, "program system=barcode");

  gate.release();
  const auto r1 = service::read_frame(fd);
  const auto r2 = service::read_frame(fd);
  const auto r3 = service::read_frame(fd);
  ASSERT_TRUE(r1 && r2 && r3);
  EXPECT_EQ(r1->rfind("ok plan ", 0), 0u) << *r1;     // finished in flight
  EXPECT_EQ(r2->rfind("ok explore ", 0), 0u) << *r2;  // finished queued
  EXPECT_EQ(*r3, "busy draining");
  // Flushed and idle, the server closes the connection...
  EXPECT_FALSE(service::read_frame(fd).has_value());
  ::close(fd);
  // ...and the drain completes.
  server.wait();
  const auto stats = server.stats();
  EXPECT_EQ(stats.responses, 2u);
  EXPECT_EQ(stats.busy_rejects, 1u);
  EXPECT_EQ(stats.connections_open, 0u);
}

TEST(Serve, DrainClosesIdleConnections) {
  service::ServerOptions options;
  options.threads = 1;
  service::Server server(std::move(options));
  server.start();
  const int fd = service::net_connect("127.0.0.1", server.port());
  service::write_frame(fd, "health");
  ASSERT_TRUE(service::read_frame(fd).has_value());
  server.request_drain();
  EXPECT_FALSE(service::read_frame(fd).has_value());  // server-side close
  ::close(fd);
  server.wait();
}

TEST(Serve, ByteBoundedCacheReportsEvictionsInStats) {
  service::ServerOptions options;
  options.threads = 1;
  // A budget small enough that distinct explore payloads evict each
  // other but big enough for one entry.
  options.cache_bytes = 200;
  service::Server server(std::move(options));
  server.start();
  auto client = connect_to(server);
  client.run_lines({"explore system=barcode", "explore system=system2",
                    "explore system=barcode"});
  const auto stats = server.stats();
  EXPECT_GE(stats.cache.evictions, 1u);
  EXPECT_GT(stats.cache.evicted_bytes, 0u);
  EXPECT_LE(stats.cache_entries, 2u);
  const std::string text = client.query("stats");
  EXPECT_NE(text.find("cache_evicted_bytes="), std::string::npos) << text;
}

// --------------------------------------------------------------- telemetry

TEST(Serve, StatsReportTheQueueHighWaterMark) {
  WorkerGate gate;
  service::ServerOptions options;
  options.threads = 1;
  options.before_execute = gate.hook();
  service::Server server(std::move(options));
  server.start();

  const int fd = service::net_connect("127.0.0.1", server.port());
  service::write_frame(fd, "plan system=barcode");
  gate.wait_entered(1);  // job 1 has been popped: the queue is empty
  service::write_frame(fd, "explore system=barcode");
  service::write_frame(fd, "program system=barcode");
  while (server.stats().queue_depth < 2) std::this_thread::sleep_for(1ms);
  gate.release();
  for (int job = 0; job < 3; ++job) {
    ASSERT_TRUE(service::read_frame(fd).has_value());
  }
  ::close(fd);

  EXPECT_EQ(server.stats().queue_depth_hwm, 2u);
  auto client = connect_to(server);
  const std::string text = client.query("stats");
  EXPECT_NE(text.find(" queue_hwm=2 "), std::string::npos) << text;
}

TEST(Serve, MetricsVerbAndAccessLogCarryTheTelemetry) {
  const std::string log_path = testing::TempDir() + "serve_access.jsonl";
  std::remove(log_path.c_str());
  service::ServerOptions options;
  // One worker: the duplicate plan job deterministically hits the
  // cache (with more, it can race the first copy's fill and miss).
  options.threads = 1;
  options.access_log = log_path;  // any telemetry flag enables metrics
  service::Server server(std::move(options));
  server.start();
  {
    auto client = connect_to(server);
    EXPECT_EQ(client.run_lines(kJobFile).errors, 1u);
    const std::string reply = client.query("metrics");
    EXPECT_EQ(reply.rfind("ok metrics\n", 0), 0u) << reply;
    EXPECT_NE(reply.find("socet_serve_requests_total"), std::string::npos)
        << reply;
    EXPECT_NE(reply.find("socet_serve_up 1"), std::string::npos) << reply;
    // The 1m window must already hold this batch: the baseline slot is
    // captured when the server starts, so the delta sees every job.
    EXPECT_NE(reply.find("socet_window_serve_request_us{window=\"1m\","
                         "quantile=\"0.5\"}"),
              std::string::npos)
        << reply;
    const std::string count_key =
        "socet_window_serve_request_us_count{window=\"1m\"} ";
    const auto at = reply.find(count_key);
    ASSERT_NE(at, std::string::npos) << reply;
    // kJobFile carries 8 jobs (comments/blanks are skipped).
    EXPECT_GE(std::stod(reply.substr(at + count_key.size())), 8.0) << reply;
  }
  server.request_drain();
  server.wait();

  std::ifstream log(log_path);
  ASSERT_TRUE(log.is_open());
  std::ostringstream raw;
  raw << log.rdbuf();
  const std::string lines = raw.str();
  EXPECT_NE(lines.find("\"type\":\"serve.access\""), std::string::npos);
  EXPECT_NE(lines.find("\"corr\":\"job-1\""), std::string::npos) << lines;
  EXPECT_NE(lines.find("\"verb\":\"plan\""), std::string::npos);
  EXPECT_NE(lines.find("\"verb\":\"metrics\""), std::string::npos);
  EXPECT_NE(lines.find("\"status\":\"error\""), std::string::npos);
  EXPECT_NE(lines.find("\"cache\":\"hit\""), std::string::npos) << lines;
  std::remove(log_path.c_str());
}

/// One serial HTTP/1.0 exchange against the embedded metrics listener.
std::string http_get(unsigned short port, const std::string& request_line) {
  const int fd = service::net_connect("127.0.0.1", port);
  const std::string request = request_line + "\r\nHost: localhost\r\n\r\n";
  EXPECT_EQ(::write(fd, request.data(), request.size()),
            static_cast<ssize_t>(request.size()));
  std::string response;
  char buffer[4096];
  ssize_t n = 0;
  while ((n = ::read(fd, buffer, sizeof(buffer))) > 0) {
    response.append(buffer, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

TEST(Serve, HttpEndpointsServeMetricsAndFlipReadinessDuringDrain) {
  WorkerGate gate;
  service::ServerOptions options;
  options.threads = 1;
  options.metrics_http = true;  // port 0: the OS picks one
  options.before_execute = gate.hook();
  service::Server server(std::move(options));
  server.start();
  const unsigned short mport = server.metrics_port();
  ASSERT_GT(mport, 0);

  EXPECT_NE(http_get(mport, "GET /healthz HTTP/1.0").find("200 OK\r\n"),
            std::string::npos);
  EXPECT_NE(http_get(mport, "GET /readyz HTTP/1.0").find("ready"),
            std::string::npos);
  const std::string metrics = http_get(mport, "GET /metrics HTTP/1.0");
  EXPECT_NE(metrics.find("200 OK\r\n"), std::string::npos) << metrics;
  EXPECT_NE(metrics.find("# TYPE"), std::string::npos);
  EXPECT_NE(metrics.find("socet_serve_up 1"), std::string::npos);
  EXPECT_NE(metrics.find("socet_serve_tail_dropped_total 0"),
            std::string::npos)
      << metrics;
  EXPECT_NE(http_get(mport, "GET /nope HTTP/1.0").find("404"),
            std::string::npos);
  EXPECT_NE(http_get(mport, "POST /metrics HTTP/1.0").find("405"),
            std::string::npos);

  // Park the only worker, then drain: /readyz must flip to 503 while
  // the admitted job is still running, and stay reachable until wait()
  // returns (the listener outlives the event loop).
  const int fd = service::net_connect("127.0.0.1", server.port());
  service::write_frame(fd, "plan system=barcode");
  gate.wait_entered(1);
  server.request_drain();
  std::string ready;
  while ((ready = http_get(mport, "GET /readyz HTTP/1.0")).find("503") ==
         std::string::npos) {
    std::this_thread::sleep_for(1ms);
  }
  EXPECT_NE(ready.find("draining"), std::string::npos) << ready;
  EXPECT_NE(http_get(mport, "GET /healthz HTTP/1.0").find("200 OK\r\n"),
            std::string::npos);
  gate.release();
  ASSERT_TRUE(service::read_frame(fd).has_value());
  ::close(fd);
  server.wait();
  EXPECT_THROW(service::net_connect("127.0.0.1", mport), util::Error);
}

TEST(Serve, TelemetryLeavesRecordsByteIdentical) {
  const std::string expected = serial_records(kJobFile);
  const std::string log_path =
      testing::TempDir() + "serve_identity_access.jsonl";
  std::remove(log_path.c_str());
  service::ServerOptions options;
  options.threads = 3;
  options.metrics_http = true;
  options.access_log = log_path;
  service::Server server(std::move(options));
  server.start();
  auto client = connect_to(server);
  EXPECT_EQ(client.run_lines(kJobFile).records_text(), expected);
  std::remove(log_path.c_str());
}

// ------------------------------------------- cross-process introspection

std::string hex_of(std::uint64_t value) {
  char buffer[24];
  std::snprintf(buffer, sizeof(buffer), "%" PRIx64, value);
  return buffer;
}

TEST(Serve, ClockVerbAnswersThisProcessesMonotonicClock) {
  service::ServerOptions options;
  options.threads = 1;
  service::Server server(std::move(options));
  server.start();
  auto client = connect_to(server);
  // The server runs in this process, so its `clock` reading must nest
  // inside the request's round trip on the same steady clock — the
  // exact property the min-RTT midpoint estimate relies on.
  const std::uint64_t before = obs::now_ns();
  const std::string reply = client.query("clock");
  const std::uint64_t after = obs::now_ns();
  ASSERT_EQ(reply.rfind("ok clock ", 0), 0u) << reply;
  const std::uint64_t reported =
      std::strtoull(reply.c_str() + 9, nullptr, 10);
  EXPECT_GE(reported, before);
  EXPECT_LE(reported, after);
}

TEST(Serve, TracedRunKeepsRecordsIdenticalAndParentsDaemonSpans) {
  const std::string expected = serial_records(kJobFile);
  service::ServerOptions options;
  options.threads = 2;
  service::Server server(std::move(options));
  server.start();

  service::ClientOptions client_options;
  client_options.port = server.port();
  client_options.trace = true;
  service::Client client(client_options);
  const auto report = client.run_lines(kJobFile);
  // The tentpole guarantee: tracing never changes the records.
  EXPECT_EQ(report.records_text(), expected);

  ASSERT_NE(report.trace.trace_id, 0u);
  ASSERT_EQ(report.trace.client_spans.size(), report.jobs);
  std::set<std::uint64_t> client_ids;
  std::set<std::uint64_t> all_ids;
  for (const auto& span : report.trace.client_spans) {
    EXPECT_NE(span.id, 0u);
    EXPECT_GE(span.end_ns, span.start_ns);
    client_ids.insert(span.id);
    all_ids.insert(span.id);
  }
  // Every job contributes at least serve/job + serve/queue +
  // serve/respond on the daemon side.
  ASSERT_GE(report.trace.daemon_spans.size(), 3 * report.jobs);
  for (const auto& span : report.trace.daemon_spans) all_ids.insert(span.id);
  std::size_t under_submit = 0;
  std::set<std::string> names;
  for (const auto& span : report.trace.daemon_spans) {
    names.insert(span.name);
    // The parent chain never dangles: every daemon span hangs off a
    // client submit span or another daemon span of the same trace.
    EXPECT_NE(span.parent, 0u) << span.name;
    EXPECT_EQ(all_ids.count(span.parent), 1u) << span.name;
    if (client_ids.count(span.parent) == 1) ++under_submit;
  }
  EXPECT_EQ(names.count("serve/job"), 1u);
  EXPECT_EQ(names.count("serve/queue"), 1u);
  EXPECT_EQ(names.count("serve/respond"), 1u);
  // Each job's queue/job/respond spans parent its submit span directly.
  EXPECT_GE(under_submit, 3 * report.jobs);

  // The merged document renders both halves with flow arrows.
  const std::string merged = report.trace.chrome_trace();
  EXPECT_NE(merged.find("\"socet client\""), std::string::npos);
  EXPECT_NE(merged.find("\"socet serve\""), std::string::npos);
  EXPECT_NE(merged.find("\"serve/job\""), std::string::npos);
  EXPECT_NE(merged.find("\"ph\":\"s\""), std::string::npos);

  // Collection releases the stored spans: a second fetch is empty.
  const std::string again =
      client.query("spans " + hex_of(report.trace.trace_id));
  EXPECT_EQ(again.rfind("ok spans 0", 0), 0u) << again;
}

TEST(Serve, SpansVerbRejectsMalformedIds) {
  service::ServerOptions options;
  options.threads = 1;
  service::Server server(std::move(options));
  server.start();
  auto client = connect_to(server);
  EXPECT_EQ(client.query("spans").rfind("error bad spans id", 0), 0u);
  EXPECT_EQ(client.query("spans zz").rfind("error bad spans id", 0), 0u);
  EXPECT_EQ(client.query("spans 0").rfind("error bad spans id", 0), 0u);
  // A well-formed id that was never traced is just an empty set.
  EXPECT_EQ(client.query("spans deadbeef").rfind("ok spans 0", 0), 0u);
}

TEST(Serve, TailStreamsOnlyTheWatchedCorrUnderConcurrentWorkers) {
  service::ServerOptions options;
  options.threads = 4;
  service::Server server(std::move(options));
  server.start();

  const int fd = service::net_connect("127.0.0.1", server.port());
  service::write_frame(fd, "tail corr=job-2");
  const auto ack = service::read_frame(fd);
  ASSERT_TRUE(ack.has_value());
  ASSERT_EQ(*ack, "ok tail");

  // Eight jobs race across four workers; every one emits journal
  // events under its own corr, but only job-2's may reach this watcher.
  {
    auto client = connect_to(server);
    client.run_lines(kJobFile);
  }
  for (int i = 0; i < 2; ++i) {
    const auto event = service::read_frame(fd);
    ASSERT_TRUE(event.has_value());
    EXPECT_NE(event->find("\"corr\":\"job-2\""), std::string::npos)
        << *event;
  }
  ::close(fd);
}

TEST(Serve, TailTypePrefixFilterWatchesConnectionEvents) {
  service::ServerOptions options;
  options.threads = 1;
  service::Server server(std::move(options));
  server.start();

  const int fd = service::net_connect("127.0.0.1", server.port());
  service::write_frame(fd, "tail type=serve/conn");
  const auto ack = service::read_frame(fd);
  ASSERT_TRUE(ack.has_value());
  ASSERT_EQ(*ack, "ok tail");

  // A connection that comes and goes produces exactly an accept and a
  // close event, in that order — both type serve/conn.
  const int other = service::net_connect("127.0.0.1", server.port());
  ::close(other);
  const auto accept_event = service::read_frame(fd);
  ASSERT_TRUE(accept_event.has_value());
  EXPECT_NE(accept_event->find("\"type\":\"serve/conn\""),
            std::string::npos)
      << *accept_event;
  EXPECT_NE(accept_event->find("\"event\":\"accept\""), std::string::npos)
      << *accept_event;
  const auto close_event = service::read_frame(fd);
  ASSERT_TRUE(close_event.has_value());
  EXPECT_NE(close_event->find("\"event\":\"close\""), std::string::npos)
      << *close_event;
  ::close(fd);
}

TEST(Serve, TailRejectsUnknownFilters) {
  service::ServerOptions options;
  options.threads = 1;
  service::Server server(std::move(options));
  server.start();
  auto client = connect_to(server);
  EXPECT_EQ(client.query("tail nope=3"),
            "error bad tail filter 'nope=3'");
  // The reject did not subscribe the connection: normal traffic works.
  EXPECT_EQ(client.query("health"), "ok health serving");
}

TEST(Serve, JournalRingServesTheJournalVerb) {
  service::ServerOptions options;
  options.threads = 1;
  options.journal_ring = 256;
  service::Server server(std::move(options));
  server.start();
  auto client = connect_to(server);
  client.run_lines({"plan system=barcode selection=1,2,1"});
  const std::string reply = client.query("journal");
  ASSERT_EQ(reply.rfind("ok journal\n", 0), 0u) << reply;
  EXPECT_NE(reply.find("\"schema\":\"socet-journal-v1\""),
            std::string::npos)
      << reply;
  EXPECT_NE(reply.find("\"kind\":\"ring\""), std::string::npos);
  // The job's decision events are in the ring under the wire corr id.
  EXPECT_NE(reply.find("\"corr\":\"job-1\""), std::string::npos) << reply;
}

TEST(Serve, JournalVerbWithoutARingIsAStructuredError) {
  service::ServerOptions options;
  options.threads = 1;
  service::Server server(std::move(options));
  server.start();
  auto client = connect_to(server);
  EXPECT_EQ(client.query("journal").rfind("error journal ring disabled", 0),
            0u);
}

TEST(Serve, ProfileVerbRunsOneWindowAtATime) {
  service::ServerOptions options;
  options.threads = 1;
  service::Server server(std::move(options));
  server.start();
  auto client = connect_to(server);

  EXPECT_EQ(client.query("profile nope")
                .rfind("error bad profile duration", 0),
            0u);
  EXPECT_EQ(
      client.query("profile 31").rfind("error bad profile duration", 0),
      0u);
  EXPECT_EQ(client.query("profile 0").rfind("error bad profile duration", 0),
            0u);
  if (!obs::sampler_supported()) {
    EXPECT_EQ(client.query("profile 0.2"),
              "error profiling unsupported on this platform");
    return;
  }

  // Arm a window from a raw connection; the daemon runs in this
  // process, so the sampler state is directly observable.
  const int fd = service::net_connect("127.0.0.1", server.port());
  service::write_frame(fd, "profile 0.5");
  const auto deadline = std::chrono::steady_clock::now() + 5s;
  while (!obs::Sampler::running() &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(1ms);
  }
  ASSERT_TRUE(obs::Sampler::running());
  // A second window while one is live is a structured busy reject.
  EXPECT_EQ(client.query("profile 0.2"), "busy profiling");
  const auto reply = service::read_frame(fd);
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->rfind("ok profile samples=", 0), 0u) << *reply;
  ::close(fd);
}

TEST(Serve, AccessLogRotatesAtTheByteBound) {
  const std::string log_path = testing::TempDir() + "serve_rotating.jsonl";
  const std::string rolled_path = log_path + ".1";
  std::remove(log_path.c_str());
  std::remove(rolled_path.c_str());
  service::ServerOptions options;
  options.threads = 1;
  options.access_log = log_path;
  options.access_log_max_bytes = 600;  // a few entries per generation
  {
    service::Server server(std::move(options));
    server.start();
    auto client = connect_to(server);
    client.run_lines(kJobFile);
    server.request_drain();
    server.wait();
  }
  std::ifstream rolled(rolled_path);
  ASSERT_TRUE(rolled.is_open()) << "no rollover file " << rolled_path;
  std::ostringstream rolled_raw;
  rolled_raw << rolled.rdbuf();
  EXPECT_NE(rolled_raw.str().find("\"type\":\"serve.access\""),
            std::string::npos);
  std::ifstream current(log_path);
  ASSERT_TRUE(current.is_open());
  std::remove(log_path.c_str());
  std::remove(rolled_path.c_str());
}

TEST(Serve, HttpSlowreqsAndBuildInfoExposeTheIntrospectionPlane) {
  service::ServerOptions options;
  options.threads = 2;
  options.metrics_http = true;
  service::Server server(std::move(options));
  server.start();
  const unsigned short mport = server.metrics_port();
  ASSERT_GT(mport, 0);
  {
    auto client = connect_to(server);
    client.run_lines(kJobFile);
  }

  const std::string metrics = http_get(mport, "GET /metrics HTTP/1.0");
  EXPECT_NE(metrics.find("socet_build_info{version=\""), std::string::npos)
      << metrics;
  EXPECT_NE(metrics.find("git=\""), std::string::npos);
  EXPECT_NE(metrics.find("socet_start_time_seconds "), std::string::npos);

  const std::string slow = http_get(mport, "GET /debug/slowreqs HTTP/1.0");
  EXPECT_NE(slow.find("200 OK\r\n"), std::string::npos) << slow;
  EXPECT_NE(slow.find("\"window\":"), std::string::npos) << slow;
  EXPECT_NE(slow.find("\"slowest\":["), std::string::npos);
  EXPECT_NE(slow.find("\"wall_us\":"), std::string::npos);
  EXPECT_NE(slow.find("\"corr\":\"job-"), std::string::npos) << slow;
}

// --------------------------------------------------------------------- CLI

struct CliRun {
  std::string output;
  int exit_code = 0;
};

CliRun run_cli(const std::string& arguments) {
  const std::string command =
      std::string(SOCET_CLI_PATH) + " " + arguments + " 2>/dev/null";
  FILE* pipe = popen(command.c_str(), "r");
  EXPECT_NE(pipe, nullptr);
  CliRun run;
  char buffer[4096];
  std::size_t n = 0;
  while ((n = fread(buffer, 1, sizeof(buffer), pipe)) > 0) {
    run.output.append(buffer, n);
  }
  const int status = pclose(pipe);
  run.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return run;
}

TEST(Cli, ClientAndBatchConnectMatchLocalBatch) {
  service::ServerOptions options;
  options.threads = 2;
  service::Server server(std::move(options));
  server.start();
  const std::string connect =
      "127.0.0.1:" + std::to_string(server.port());

  const std::string path = testing::TempDir() + "serve_cli_jobs.txt";
  {
    std::ofstream file(path);
    for (const std::string& line : kJobFile) file << line << "\n";
  }
  const CliRun local = run_cli("batch --jobs " + path);
  EXPECT_EQ(local.exit_code, 1);  // kJobFile contains one failing job
  const CliRun remote_client =
      run_cli("client --connect " + connect + " --jobs " + path);
  EXPECT_EQ(remote_client.exit_code, 1);
  EXPECT_EQ(remote_client.output, local.output);
  const CliRun remote_batch =
      run_cli("batch --connect " + connect + " --jobs " + path);
  EXPECT_EQ(remote_batch.exit_code, 1);
  EXPECT_EQ(remote_batch.output, local.output);

  const CliRun health = run_cli("client --connect " + connect + " health");
  EXPECT_EQ(health.exit_code, 0);
  EXPECT_EQ(health.output, "ok health serving\n");
  const CliRun stats = run_cli("client --connect " + connect + " stats");
  EXPECT_EQ(stats.exit_code, 0);
  EXPECT_EQ(stats.output.rfind("ok stats workers=2 ", 0), 0u);
  std::remove(path.c_str());
}

TEST(Cli, ClientRejectsBadArguments) {
  EXPECT_EQ(run_cli("client --jobs nowhere.txt").exit_code, 1);
  EXPECT_EQ(run_cli("client --connect 127.0.0.1 --jobs x").exit_code, 1);
  EXPECT_EQ(run_cli("client --connect 127.0.0.1:1 bogus").exit_code, 1);
  // Nothing is listening on a fresh ephemeral port's neighbour; a
  // connect failure is an error, not a hang.
  EXPECT_EQ(run_cli("serve --threads 0").exit_code, 1);
}

TEST(Cli, TopAndMetricsVerbRenderLiveTelemetry) {
  const std::string log_path = testing::TempDir() + "top_access.jsonl";
  std::remove(log_path.c_str());
  service::ServerOptions options;
  options.threads = 2;
  options.access_log = log_path;  // turns the telemetry plane on
  service::Server server(std::move(options));
  server.start();
  const std::string connect =
      "127.0.0.1:" + std::to_string(server.port());
  auto client = connect_to(server);  // seed some traffic to display
  client.run_lines({"plan system=barcode", "explore system=barcode",
                    "plan system=barcode"});

  const CliRun top = run_cli("top --connect " + connect +
                             " --iterations 2 --interval-ms 10");
  EXPECT_EQ(top.exit_code, 0) << top.output;
  EXPECT_NE(top.output.find("socet top"), std::string::npos) << top.output;
  EXPECT_NE(top.output.find("p95_us"), std::string::npos) << top.output;
  EXPECT_NE(top.output.find("1m"), std::string::npos) << top.output;

  const CliRun metrics = run_cli("client --connect " + connect + " metrics");
  EXPECT_EQ(metrics.exit_code, 0);
  EXPECT_EQ(metrics.output.rfind("ok metrics", 0), 0u) << metrics.output;
  EXPECT_NE(metrics.output.find("socet_serve_up 1"), std::string::npos);
  std::remove(log_path.c_str());
}

TEST(Cli, BatchConnectTraceKeepsStdoutIdenticalAndWritesOneMergedTrace) {
  service::ServerOptions options;
  options.threads = 2;
  service::Server server(std::move(options));
  server.start();
  const std::string connect = "127.0.0.1:" + std::to_string(server.port());

  const std::string jobs_path = testing::TempDir() + "serve_trace_jobs.txt";
  {
    std::ofstream file(jobs_path);
    for (const std::string& line : kJobFile) file << line << "\n";
  }
  const std::string trace_path = testing::TempDir() + "serve_trace.json";
  std::remove(trace_path.c_str());

  const CliRun plain =
      run_cli("batch --connect " + connect + " --jobs " + jobs_path);
  const CliRun traced = run_cli("batch --connect " + connect + " --jobs " +
                                jobs_path + " --trace " + trace_path);
  // The acceptance pin: --trace never changes what batch prints.
  EXPECT_EQ(traced.exit_code, plain.exit_code);
  EXPECT_EQ(traced.output, plain.output);

  std::ifstream file(trace_path);
  ASSERT_TRUE(file.is_open()) << "no merged trace at " << trace_path;
  std::ostringstream raw;
  raw << file.rdbuf();
  const std::string merged = raw.str();
  // ONE document holding both halves of the trace, flows included.
  EXPECT_NE(merged.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(merged.find("\"socet client\""), std::string::npos);
  EXPECT_NE(merged.find("\"socet serve\""), std::string::npos);
  EXPECT_NE(merged.find("\"serve/job\""), std::string::npos);
  EXPECT_NE(merged.find("\"ph\":\"s\""), std::string::npos);
  std::remove(jobs_path.c_str());
  std::remove(trace_path.c_str());
}

TEST(Cli, TailFollowsTheLiveJournalOverTheWire) {
  service::ServerOptions options;
  options.threads = 1;
  service::Server server(std::move(options));
  server.start();
  const std::string connect = "127.0.0.1:" + std::to_string(server.port());

  // Feed jobs until the tail below has seen enough; every replay uses
  // corr job-1, which is exactly what the watcher filters on.
  std::atomic<bool> stop{false};
  std::thread feeder([&] {
    while (!stop.load()) {
      auto client = connect_to(server);
      client.run_lines({"plan system=barcode"});
      std::this_thread::sleep_for(20ms);
    }
  });
  const CliRun tail =
      run_cli("tail --connect " + connect + " --corr job-1 --count 2");
  stop.store(true);
  feeder.join();
  EXPECT_EQ(tail.exit_code, 0) << tail.output;
  // Two JSONL lines, each a live journal event for the watched corr.
  EXPECT_NE(tail.output.find("\"corr\":\"job-1\""), std::string::npos)
      << tail.output;
  EXPECT_EQ(static_cast<int>(std::count(tail.output.begin(),
                                        tail.output.end(), '\n')),
            2)
      << tail.output;
}

TEST(Cli, TopPrintsAReconnectBannerWhenTheDaemonIsGone) {
  // Nothing listens on the discard port; top must not crash or hang —
  // it banners, backs off (500ms then 1000ms), and exits cleanly.
  const CliRun top =
      run_cli("top --connect 127.0.0.1:9 --iterations 2 --interval-ms 10");
  EXPECT_EQ(top.exit_code, 0) << top.output;
  EXPECT_NE(top.output.find("reconnecting in 500ms"), std::string::npos)
      << top.output;
  EXPECT_NE(top.output.find("reconnecting in 1000ms"), std::string::npos)
      << top.output;
}

TEST(Cli, TraceMergeCombinesTwoChromeTraces) {
  const std::string base_path = testing::TempDir() + "merge_base.json";
  const std::string overlay_path = testing::TempDir() + "merge_overlay.json";
  const std::string out_path = testing::TempDir() + "merge_out.json";
  {
    std::ofstream base(base_path);
    base << R"({"traceEvents":[{"name":"alpha","ph":"X","ts":1,"dur":2,"pid":1,"tid":1}]})";
    std::ofstream overlay(overlay_path);
    overlay << R"({"traceEvents":[{"name":"beta","ph":"X","ts":1,"dur":2,"pid":1,"tid":1}]})";
  }
  const CliRun merge =
      run_cli("trace-merge --base " + base_path + " --overlay " +
              overlay_path + " --offset-us 100 --out " + out_path);
  EXPECT_EQ(merge.exit_code, 0) << merge.output;
  std::ifstream file(out_path);
  ASSERT_TRUE(file.is_open());
  std::ostringstream raw;
  raw << file.rdbuf();
  const std::string merged = raw.str();
  EXPECT_NE(merged.find("\"alpha\""), std::string::npos) << merged;
  EXPECT_NE(merged.find("\"beta\""), std::string::npos);
  EXPECT_NE(merged.find("\"ts\":101"), std::string::npos) << merged;

  // A document without traceEvents is a structured failure.
  EXPECT_EQ(run_cli("trace-merge --base " + base_path +
                    " --overlay /nonexistent.json --out " + out_path)
                .exit_code,
            1);
  std::remove(base_path.c_str());
  std::remove(overlay_path.c_str());
  std::remove(out_path.c_str());
}

}  // namespace
}  // namespace socet
