#include <gtest/gtest.h>

#include "socet/rtl/interpreter.hpp"
#include "socet/rtl/text.hpp"
#include "socet/synth/elaborate.hpp"
#include "socet/systems/synthetic.hpp"
#include "socet/systems/systems.hpp"
#include "socet/util/rng.hpp"

namespace socet::rtl {
namespace {

void expect_structurally_equal(const Netlist& a, const Netlist& b) {
  EXPECT_EQ(a.name(), b.name());
  ASSERT_EQ(a.ports().size(), b.ports().size());
  for (std::size_t i = 0; i < a.ports().size(); ++i) {
    EXPECT_EQ(a.ports()[i].name, b.ports()[i].name);
    EXPECT_EQ(a.ports()[i].dir, b.ports()[i].dir);
    EXPECT_EQ(a.ports()[i].kind, b.ports()[i].kind);
    EXPECT_EQ(a.ports()[i].width, b.ports()[i].width);
  }
  ASSERT_EQ(a.registers().size(), b.registers().size());
  for (std::size_t i = 0; i < a.registers().size(); ++i) {
    EXPECT_EQ(a.registers()[i].name, b.registers()[i].name);
    EXPECT_EQ(a.registers()[i].width, b.registers()[i].width);
    EXPECT_EQ(a.registers()[i].has_load_enable,
              b.registers()[i].has_load_enable);
  }
  ASSERT_EQ(a.muxes().size(), b.muxes().size());
  ASSERT_EQ(a.fus().size(), b.fus().size());
  for (std::size_t i = 0; i < a.fus().size(); ++i) {
    EXPECT_EQ(a.fus()[i].kind, b.fus()[i].kind);
    EXPECT_EQ(a.fus()[i].seed, b.fus()[i].seed);
    EXPECT_EQ(a.fus()[i].gate_hint, b.fus()[i].gate_hint);
  }
  ASSERT_EQ(a.constants().size(), b.constants().size());
  for (std::size_t i = 0; i < a.constants().size(); ++i) {
    EXPECT_EQ(a.constants()[i].value, b.constants()[i].value);
  }
  ASSERT_EQ(a.connections().size(), b.connections().size());
  for (std::size_t i = 0; i < a.connections().size(); ++i) {
    EXPECT_EQ(a.connections()[i].from, b.connections()[i].from);
    EXPECT_EQ(a.connections()[i].from_lo, b.connections()[i].from_lo);
    EXPECT_EQ(a.connections()[i].to, b.connections()[i].to);
    EXPECT_EQ(a.connections()[i].to_lo, b.connections()[i].to_lo);
    EXPECT_EQ(a.connections()[i].width, b.connections()[i].width);
  }
}

TEST(RtlText, RoundTripAllNamedCores) {
  for (auto* make :
       {&systems::make_cpu_rtl, &systems::make_preprocessor_rtl,
        &systems::make_display_rtl, &systems::make_graphics_rtl,
        &systems::make_gcd_rtl, &systems::make_x25_rtl}) {
    auto original = make();
    auto restored = parse_netlist(serialize_netlist(original));
    expect_structurally_equal(original, restored);
    restored.validate();
  }
}

TEST(RtlText, SerializationIsAFixpoint) {
  auto cpu = systems::make_cpu_rtl();
  const auto once = serialize_netlist(cpu);
  EXPECT_EQ(serialize_netlist(parse_netlist(once)), once);
}

TEST(RtlText, RoundTripPreservesGateElaboration) {
  auto original = systems::make_gcd_rtl();
  auto restored = parse_netlist(serialize_netlist(original));
  auto a = synth::elaborate(original);
  auto b = synth::elaborate(restored);
  EXPECT_EQ(a.gates.gate_count(), b.gates.gate_count());
  EXPECT_EQ(a.gates.cell_count(), b.gates.cell_count());
  EXPECT_DOUBLE_EQ(a.gates.area(), b.gates.area());
}

TEST(RtlText, RoundTripPreservesBehaviour) {
  systems::SyntheticCoreOptions options;
  options.registers = 6;
  options.with_cloud = false;
  auto original = systems::make_synthetic_core("rt", 9, options);
  auto restored = parse_netlist(serialize_netlist(original));

  Interpreter sim_a(original);
  Interpreter sim_b(restored);
  sim_a.reset();
  sim_b.reset();
  util::Rng rng(77);
  for (int cycle = 0; cycle < 16; ++cycle) {
    for (PortId port : original.input_ports()) {
      auto value =
          util::BitVector::random(original.port(port).width, rng);
      sim_a.set_input(original.port(port).name, value);
      sim_b.set_input(original.port(port).name, value);
    }
    sim_a.step();
    sim_b.step();
    for (PortId port : original.output_ports()) {
      EXPECT_EQ(sim_a.output(original.port(port).name),
                sim_b.output(original.port(port).name))
          << "cycle " << cycle;
    }
  }
}

TEST(RtlText, ParserRejectsMalformedInput) {
  EXPECT_THROW(parse_netlist(""), util::Error);
  EXPECT_THROW(parse_netlist("bogus v1\nend\n"), util::Error);
  EXPECT_THROW(parse_netlist("socet-rtl v1\nnetlist X\n"), util::Error);
  EXPECT_THROW(parse_netlist("socet-rtl v1\nnetlist X\nwat 1\nend\n"),
               util::Error);
  EXPECT_THROW(
      parse_netlist("socet-rtl v1\nnetlist X\nregister R 0 load\nend\n"),
      util::Error);
  EXPECT_THROW(
      parse_netlist("socet-rtl v1\nnetlist X\nconstant K 4 111\nend\n"),
      util::Error)
      << "width/bits mismatch";
  EXPECT_THROW(parse_netlist("socet-rtl v1\nnetlist X\n"
                             "connect port:A 0 -> port:B 0 1\nend\n"),
               util::Error)
      << "unknown ports";
}

TEST(RtlText, CommentsIgnored) {
  const std::string text =
      "socet-rtl v1\n"
      "# tiny\n"
      "netlist T\n"
      "input A data 4\n"
      "output Z data 4   # result\n"
      "register R 4 noload\n"
      "connect port:A 0 -> reg:R.d 0 4\n"
      "connect reg:R.q 0 -> port:Z 0 4\n"
      "end\n";
  auto netlist = parse_netlist(text);
  EXPECT_EQ(netlist.name(), "T");
  EXPECT_EQ(netlist.connections().size(), 2u);
  netlist.validate();
}

}  // namespace
}  // namespace socet::rtl
