#include <gtest/gtest.h>

#include "socet/baselines/baselines.hpp"
#include "socet/opt/optimize.hpp"
#include "socet/systems/systems.hpp"

namespace socet::opt {
namespace {

// The barcode system is the shared fixture: three cores, each with a
// three-version menu -> 27 raw selections.
struct Fixture {
  systems::System system = systems::make_barcode_system();
  const soc::Soc& soc() const { return *system.soc; }
};

TEST(Optimize, DesignSpaceEnumerationCoversAllSelections) {
  Fixture f;
  auto points = enumerate_design_space(f.soc());
  std::size_t expected = 1;
  for (const auto* core : f.soc().cores()) {
    expected *= core->version_count();
  }
  EXPECT_EQ(points.size(), expected);
  // Sorted by area.
  for (std::size_t i = 1; i < points.size(); ++i) {
    EXPECT_GE(points[i].overhead_cells, points[i - 1].overhead_cells);
  }
}

TEST(Optimize, DesignSpaceShowsTradeOff) {
  Fixture f;
  auto points = enumerate_design_space(f.soc());
  const auto& cheapest = points.front();
  unsigned long long fastest = cheapest.tat;
  unsigned at_cells = cheapest.overhead_cells;
  for (const auto& p : points) {
    if (p.tat < fastest) {
      fastest = p.tat;
      at_cells = p.overhead_cells;
    }
  }
  // The paper's headline: large TAT reduction for modest area increase
  // (about 4.5x between design points 1 and 18 in Table 1).
  EXPECT_LT(fastest * 2, cheapest.tat) << "expected >2x TAT spread";
  EXPECT_GT(at_cells, cheapest.overhead_cells);
}

TEST(Optimize, ParetoFrontIsMonotone) {
  Fixture f;
  auto front = pareto_front(enumerate_design_space(f.soc()));
  ASSERT_FALSE(front.empty());
  for (std::size_t i = 1; i < front.size(); ++i) {
    EXPECT_GT(front[i].overhead_cells, front[i - 1].overhead_cells);
    EXPECT_LT(front[i].tat, front[i - 1].tat);
  }
}

TEST(Optimize, MinimizeTatRespectsAreaBudget) {
  Fixture f;
  auto all = enumerate_design_space(f.soc());
  const unsigned tight = all.front().overhead_cells;  // only min-area fits
  auto constrained = minimize_tat(f.soc(), tight);
  EXPECT_TRUE(constrained.met_constraint);
  EXPECT_LE(constrained.overhead_cells, tight);

  auto generous = minimize_tat(f.soc(), 100000);
  EXPECT_LE(generous.tat, constrained.tat);
}

TEST(Optimize, MinimizeTatMatchesExhaustiveUnderBigBudget) {
  Fixture f;
  auto points = enumerate_design_space(f.soc());
  unsigned long long best = points.front().tat;
  for (const auto& p : points) best = std::min(best, p.tat);
  auto greedy = minimize_tat(f.soc(), 100000);
  // Greedy iterative improvement should get close to the exhaustive
  // optimum on this small lattice (the paper's point 17 vs 18 shows the
  // optimum is not simply "all fastest versions").
  EXPECT_LE(greedy.tat, best * 12 / 10) << "greedy >20% off optimum";
}

TEST(Optimize, MinimizeAreaMeetsTatBudget) {
  Fixture f;
  auto fast = minimize_tat(f.soc(), 100000);
  // Budget halfway between fastest and slowest.
  auto slow = plan_chip_test(f.soc(), {0, 0, 0});
  const unsigned long long budget = (fast.tat + slow.total_tat) / 2;
  auto result = minimize_area(f.soc(), budget);
  EXPECT_TRUE(result.met_constraint);
  EXPECT_LE(result.tat, budget);
  // And it should be cheaper than the all-out fastest configuration.
  EXPECT_LE(result.overhead_cells, fast.overhead_cells);
}

TEST(Optimize, MinimizeAreaImpossibleBudgetReported) {
  Fixture f;
  auto result = minimize_area(f.soc(), 1);  // one cycle: impossible
  EXPECT_FALSE(result.met_constraint);
}

TEST(Optimize, LatencyImprovementMatchesPaperArithmetic) {
  Fixture f;
  auto plan = soc::plan_chip_test(f.soc(), {0, 0, 0});
  // Recompute the latency number by hand for the PREPROCESSOR and check
  // the function agrees: sum over used pairs of count x latency.
  const auto pre = f.soc().find_core("PREPROCESSOR");
  long long by_hand_cur = 0;
  long long by_hand_next = 0;
  const auto& v0 = f.soc().core(pre).version(0);
  const auto& v1 = f.soc().core(pre).version(1);
  for (const auto& [key, count] : plan.edge_use) {
    if (std::get<0>(key) != pre) continue;
    auto cur = v0.latency(std::get<1>(key), std::get<2>(key));
    auto next = v1.latency(std::get<1>(key), std::get<2>(key));
    if (cur) by_hand_cur += static_cast<long long>(count) * *cur;
    by_hand_next +=
        static_cast<long long>(count) * (next ? *next : cur.value_or(0));
  }
  EXPECT_EQ(latency_improvement(f.soc(), plan, pre, 0, 1),
            by_hand_cur - by_hand_next);
}

TEST(Optimize, HeuristicAndExactRankingBothImprove) {
  Fixture f;
  OptimizeOptions heuristic;
  heuristic.heuristic_ranking = true;
  OptimizeOptions exact;
  exact.heuristic_ranking = false;
  auto slow = plan_chip_test(f.soc(), {0, 0, 0});
  auto h = minimize_tat(f.soc(), 100000, heuristic);
  auto e = minimize_tat(f.soc(), 100000, exact);
  EXPECT_LT(h.tat, slow.total_tat);
  EXPECT_LT(e.tat, slow.total_tat);
  // Exact ranking can never end up worse than heuristic by construction
  // of the greedy loop on this lattice; allow equality.
  EXPECT_LE(e.tat, h.tat);
}

TEST(Optimize, SocetBeatsFscanBscanOnBothAxes) {
  Fixture f;
  auto socet_fast = minimize_tat(f.soc(), 100000);
  auto bscan = baselines::fscan_bscan(f.soc());
  // The paper's Tables 2-3 message: SOCET needs far less chip-level area
  // and far fewer cycles than FSCAN-BSCAN.
  EXPECT_LT(socet_fast.tat, bscan.total_tat);
  EXPECT_LT(socet_fast.overhead_cells, bscan.chip_level_cells);
}

TEST(Optimize, DeterministicResults) {
  Fixture f;
  auto a = minimize_tat(f.soc(), 100000);
  auto b = minimize_tat(f.soc(), 100000);
  EXPECT_EQ(a.tat, b.tat);
  EXPECT_EQ(a.selection, b.selection);
}

}  // namespace
}  // namespace socet::opt
