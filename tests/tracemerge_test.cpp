// Cross-process trace assembly: the clock-offset estimator against
// deterministic fake-clock handshakes, the spans wire format, the
// merged Chrome trace document (parent/child ordering on aligned
// timelines), and the offline trace-merge tool.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <set>
#include <string>
#include <vector>

#include "socet/obs/tracemerge.hpp"

namespace socet {
namespace {

using obs::ClockSample;
using obs::SpanRecord;

// ------------------------------------------------------------ clock offset

TEST(ClockOffset, MinRttMidpointOnFakeClocks) {
  // A daemon clock exactly 1s ahead of the client clock.  Three probes
  // with different RTTs; the 2ms-RTT probe bounds the estimate.
  const std::int64_t true_offset = 1'000'000'000;
  std::vector<ClockSample> samples;
  const auto probe = [&](std::uint64_t send_ns, std::uint64_t rtt_ns,
                         std::int64_t asymmetry_ns) {
    ClockSample sample;
    sample.send_ns = send_ns;
    sample.recv_ns = send_ns + rtt_ns;
    // The server reads its clock somewhere inside the round trip;
    // asymmetry shifts it off the midpoint to model one-sided delay.
    sample.server_ns = static_cast<std::uint64_t>(
        static_cast<std::int64_t>(send_ns + rtt_ns / 2) + true_offset +
        asymmetry_ns);
    samples.push_back(sample);
  };
  probe(10'000'000, 40'000'000, 18'000'000);  // slow, badly skewed
  probe(60'000'000, 2'000'000, 500'000);      // fast: wins
  probe(70'000'000, 30'000'000, -12'000'000);
  const std::int64_t estimate = obs::estimate_clock_offset_ns(samples);
  // The min-RTT midpoint recovers the offset to within that probe's
  // asymmetry (500us here), not the slow probes' skew.
  EXPECT_NEAR(static_cast<double>(estimate), static_cast<double>(true_offset),
              500'001.0);
}

TEST(ClockOffset, ExactWhenTheFastProbeIsSymmetric) {
  std::vector<ClockSample> samples;
  ClockSample sample;
  sample.send_ns = 1'000;
  sample.recv_ns = 3'000;
  sample.server_ns = 2'000 + 5'000'000;  // midpoint + 5ms offset
  samples.push_back(sample);
  EXPECT_EQ(obs::estimate_clock_offset_ns(samples), 5'000'000);
}

TEST(ClockOffset, NegativeOffsetsAndHugeEpochsSurvive) {
  // Steady-clock readings near 2^60 exceed double precision; the
  // estimator must stay in integer arithmetic.
  const std::uint64_t epoch = 1ull << 60;
  std::vector<ClockSample> samples;
  ClockSample sample;
  sample.send_ns = epoch;
  sample.recv_ns = epoch + 2'000;
  sample.server_ns = epoch + 1'000 - 7'000'000'000ull;  // daemon 7s behind
  samples.push_back(sample);
  EXPECT_EQ(obs::estimate_clock_offset_ns(samples), -7'000'000'000);
}

TEST(ClockOffset, IgnoresGarbageSamples) {
  std::vector<ClockSample> samples;
  ClockSample bad;
  bad.send_ns = 5'000;
  bad.recv_ns = 1'000;  // recv before send: clock went backwards
  bad.server_ns = 99'999;
  samples.push_back(bad);
  EXPECT_EQ(obs::estimate_clock_offset_ns(samples), 0);
  EXPECT_EQ(obs::estimate_clock_offset_ns({}), 0);

  ClockSample good;
  good.send_ns = 10'000;
  good.recv_ns = 12'000;
  good.server_ns = 11'000 + 42;
  samples.push_back(good);
  EXPECT_EQ(obs::estimate_clock_offset_ns(samples), 42);
}

// -------------------------------------------------------------- span ids

TEST(SpanIds, UniqueAndNonZero) {
  std::set<std::uint64_t> ids;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t id = obs::new_span_id();
    EXPECT_NE(id, 0u);
    EXPECT_TRUE(ids.insert(id).second) << "duplicate span id";
  }
}

// ------------------------------------------------------- spans wire format

std::vector<SpanRecord> sample_spans() {
  SpanRecord outer;
  outer.name = "serve/job";
  outer.tid = 3;
  outer.id = 0xabcdef0123456789ull;
  outer.parent = 0x42;
  outer.start_ns = (1ull << 60) + 100;  // beyond double precision
  outer.end_ns = (1ull << 60) + 9'100;
  SpanRecord inner;
  inner.name = "plan \"quoted\"";
  inner.tid = 3;
  inner.id = 7;
  inner.parent = outer.id;
  inner.start_ns = outer.start_ns + 50;
  inner.end_ns = outer.end_ns - 50;
  return {outer, inner};
}

TEST(SpansJsonl, RoundTripsIdsAndNanosecondTimestamps) {
  const auto spans = sample_spans();
  const std::string text = obs::remote_spans_jsonl(spans);
  std::vector<SpanRecord> parsed;
  std::string error;
  ASSERT_TRUE(obs::parse_remote_spans_jsonl(text, &parsed, &error)) << error;
  ASSERT_EQ(parsed.size(), spans.size());
  for (std::size_t i = 0; i < spans.size(); ++i) {
    EXPECT_EQ(parsed[i].name, spans[i].name);
    EXPECT_EQ(parsed[i].tid, spans[i].tid);
    EXPECT_EQ(parsed[i].id, spans[i].id);
    EXPECT_EQ(parsed[i].parent, spans[i].parent);
    EXPECT_EQ(parsed[i].start_ns, spans[i].start_ns);  // exact, not double
    EXPECT_EQ(parsed[i].end_ns, spans[i].end_ns);
  }
}

TEST(SpansJsonl, MalformedLinesFailWithALineNumber) {
  std::vector<SpanRecord> parsed;
  std::string error;
  EXPECT_FALSE(obs::parse_remote_spans_jsonl(
      obs::remote_spans_jsonl(sample_spans()) + "{not json\n", &parsed,
      &error));
  EXPECT_NE(error.find("line 3"), std::string::npos) << error;
}

TEST(SpansJsonl, EmptyInputIsAnEmptySpanList) {
  std::vector<SpanRecord> parsed;
  ASSERT_TRUE(obs::parse_remote_spans_jsonl("", &parsed, nullptr));
  EXPECT_TRUE(parsed.empty());
}

// -------------------------------------------------------- merged document

/// A deterministic two-job trace: client submit spans on one fake
/// clock, daemon spans on another exactly `offset` ahead.
obs::MergeInput fake_trace(std::int64_t offset_ns) {
  obs::MergeInput input;
  input.trace_id = 0x1234;
  input.clock_offset_ns = offset_ns;
  const std::uint64_t base = 1'000'000'000;  // client clock
  for (int job = 0; job < 2; ++job) {
    SpanRecord submit;
    submit.name = "submit #" + std::to_string(job + 1);
    submit.id = 100 + static_cast<std::uint64_t>(job);
    submit.start_ns = base + static_cast<std::uint64_t>(job) * 50'000;
    submit.end_ns = submit.start_ns + 40'000;
    input.client_spans.push_back(submit);

    const std::uint64_t daemon_base = static_cast<std::uint64_t>(
        static_cast<std::int64_t>(submit.start_ns + 5'000) + offset_ns);
    SpanRecord queue;
    queue.name = "serve/queue";
    queue.tid = 0;
    queue.id = 200 + static_cast<std::uint64_t>(job);
    queue.parent = submit.id;
    queue.start_ns = daemon_base;
    queue.end_ns = daemon_base + 2'000;
    SpanRecord work;
    work.name = "serve/job";
    work.tid = 7;
    work.id = 300 + static_cast<std::uint64_t>(job);
    work.parent = submit.id;
    work.start_ns = daemon_base + 2'000;
    work.end_ns = daemon_base + 30'000;
    input.daemon_spans.push_back(queue);
    input.daemon_spans.push_back(work);
  }
  return input;
}

TEST(MergedTrace, ClientAndDaemonShareOneAlignedTimeline) {
  const std::string json = obs::merged_chrome_trace(fake_trace(123'000));
  // Both processes are named, both halves present, flows drawn.
  EXPECT_NE(json.find("\"socet client\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"socet serve\""), std::string::npos);
  EXPECT_NE(json.find("\"submit #1\""), std::string::npos);
  EXPECT_NE(json.find("\"serve/job\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"f\""), std::string::npos);
  // The daemon's clock was 123us ahead; after re-basing, job 1's queue
  // span starts 5us after the submit span, i.e. at relative ts 5.
  EXPECT_NE(
      json.find("\"name\":\"serve/queue\",\"cat\":\"socet\",\"ts\":5,"),
      std::string::npos)
      << json;
  // Hex ids link the halves for tooling.
  EXPECT_NE(json.find("\"span\":\"0x64\""), std::string::npos);  // 100
  EXPECT_NE(json.find("\"parent\":\"0x64\""), std::string::npos);
}

TEST(MergedTrace, DaemonSpansStartInsideTheirParentSubmitWindow) {
  // Whatever the clock offset, re-based daemon spans must land inside
  // the client submit span that parents them — that is the acceptance
  // bar for "aligned timelines".
  for (const std::int64_t offset :
       {-5'000'000'000ll, 0ll, 777ll, 9'000'000'000ll}) {
    const auto input = fake_trace(offset);
    const std::string json = obs::merged_chrome_trace(input);
    // Client submit #1 covers relative [0, 40]us; its daemon children
    // must appear at ts >= 0 and start no later than 40us.
    const std::string needle = "\"name\":\"serve/queue\",\"cat\":\"socet\",\"ts\":";
    const auto queue_at = json.find(needle);
    ASSERT_NE(queue_at, std::string::npos) << json;
    const long ts =
        std::strtol(json.c_str() + queue_at + needle.size(), nullptr, 10);
    EXPECT_GE(ts, 0) << "offset " << offset;
    EXPECT_LE(ts, 40) << "offset " << offset;
  }
}

TEST(MergedTrace, EmptyInputStillRendersAValidSkeleton) {
  const std::string json = obs::merged_chrome_trace({});
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
}

// ------------------------------------------------------ offline trace-merge

TEST(TraceMergeFiles, RemapsPidsAndShiftsTimestamps) {
  const std::string base = obs::merged_chrome_trace(fake_trace(0));
  const std::string overlay =
      R"({"traceEvents":[{"name":"other","ph":"X","ts":10,"dur":5,"pid":1,"tid":1}]})";
  std::string merged;
  std::string error;
  ASSERT_TRUE(
      obs::merge_chrome_trace_files(base, overlay, 1000.0, &merged, &error))
      << error;
  // The overlay's pid 1 collides with the base's client pid, so it is
  // remapped past the base's maximum (2), and its ts is shifted.
  EXPECT_NE(merged.find("\"name\":\"other\""), std::string::npos);
  EXPECT_NE(merged.find("\"ts\":1010"), std::string::npos) << merged;
  EXPECT_NE(merged.find("\"pid\":3"), std::string::npos) << merged;
  EXPECT_EQ(merged.find("\"name\":\"other\",\"ph\":\"X\",\"ts\":10,"),
            std::string::npos);
}

TEST(TraceMergeFiles, CollidingOverlaySpanIdsAreRemappedNotMerged) {
  // Both documents use span id 0x10 for unrelated spans (both sides
  // seed new_span_id from the clock, so reuse happens in practice).
  const std::string base =
      R"({"traceEvents":[)"
      R"({"name":"base/a","ph":"X","ts":0,"dur":5,"pid":1,"tid":1,)"
      R"("args":{"span":"0x10"}},)"
      R"({"name":"base/b","ph":"X","ts":5,"dur":5,"pid":1,"tid":1,)"
      R"("args":{"span":"0x11","parent":"0x10"}}]})";
  const std::string overlay =
      R"({"traceEvents":[)"
      R"({"name":"over/a","ph":"X","ts":0,"dur":5,"pid":1,"tid":1,)"
      R"("args":{"span":"0x10"}},)"
      R"({"name":"over/b","ph":"X","ts":5,"dur":5,"pid":1,"tid":1,)"
      R"("args":{"span":"0x20","parent":"0x10"}},)"
      R"({"name":"handoff","ph":"s","id":"0x10","ts":1,"pid":1,"tid":1}]})";
  std::string merged;
  std::string error;
  ASSERT_TRUE(obs::merge_chrome_trace_files(base, overlay, 0.0, &merged,
                                            &error))
      << error;
  // 0x10 collides and is remapped past the global maximum (0x20), so it
  // becomes 0x21 — consistently in args.span, args.parent, and the flow
  // event's top-level id.  Non-colliding 0x20 is untouched.
  EXPECT_EQ(merged.find("\"name\":\"over/a\",\"ph\":\"X\",\"ts\":0,\"dur\":5,"
                        "\"pid\":2,\"tid\":1,\"args\":{\"span\":\"0x10\"}"),
            std::string::npos)
      << merged;
  EXPECT_NE(merged.find("\"span\":\"0x21\""), std::string::npos) << merged;
  EXPECT_NE(merged.find("\"parent\":\"0x21\""), std::string::npos) << merged;
  EXPECT_NE(merged.find("\"id\":\"0x21\""), std::string::npos) << merged;
  EXPECT_NE(merged.find("\"span\":\"0x20\""), std::string::npos) << merged;
  // The base's own 0x10 span survives untouched.
  EXPECT_NE(merged.find("\"name\":\"base/a\""), std::string::npos);
  const auto base_a = merged.find("\"name\":\"base/a\"");
  EXPECT_NE(merged.find("\"span\":\"0x10\"", base_a), std::string::npos);
}

TEST(TraceMergeFiles, CollisionFreeMergeIsByteStable) {
  // No id overlap: the remap must be a no-op and the merge
  // deterministic (merging twice yields identical bytes).
  const std::string base =
      R"({"traceEvents":[{"name":"a","ph":"X","ts":0,"dur":5,"pid":1,)"
      R"("tid":1,"args":{"span":"0x1"}}]})";
  const std::string overlay =
      R"({"traceEvents":[{"name":"b","ph":"X","ts":0,"dur":5,"pid":1,)"
      R"("tid":1,"args":{"span":"0x2"}}]})";
  std::string first;
  std::string second;
  ASSERT_TRUE(
      obs::merge_chrome_trace_files(base, overlay, 10.0, &first, nullptr));
  ASSERT_TRUE(
      obs::merge_chrome_trace_files(base, overlay, 10.0, &second, nullptr));
  EXPECT_EQ(first, second);
  EXPECT_NE(first.find("\"span\":\"0x2\""), std::string::npos) << first;
}

TEST(TraceMergeFiles, RejectsDocumentsWithoutTraceEvents) {
  std::string merged;
  std::string error;
  EXPECT_FALSE(obs::merge_chrome_trace_files("{}", "{\"traceEvents\":[]}",
                                             0.0, &merged, &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(obs::merge_chrome_trace_files("not json",
                                             "{\"traceEvents\":[]}", 0.0,
                                             &merged, &error));
}

}  // namespace
}  // namespace socet
