// Tests for response compaction (MISR) and fault diagnosis.
#include <gtest/gtest.h>

#include "socet/atpg/atpg.hpp"
#include "socet/bist/signature.hpp"
#include "socet/faultsim/diagnosis.hpp"
#include "socet/synth/elaborate.hpp"
#include "socet/systems/systems.hpp"
#include "socet/util/rng.hpp"

namespace socet {
namespace {

// -------------------------------------------------------------------- MISR

TEST(Misr, DeterministicAndResettable) {
  bist::Misr a(16);
  bist::Misr b(16);
  for (std::uint64_t v : {1u, 2u, 3u, 0xFFFFu}) {
    a.shift(v);
    b.shift(v);
  }
  EXPECT_EQ(a.signature(), b.signature());
  a.reset();
  EXPECT_EQ(a.signature(), 0u);
}

TEST(Misr, OrderSensitivity) {
  bist::Misr a(16);
  bist::Misr b(16);
  a.shift(1);
  a.shift(2);
  b.shift(2);
  b.shift(1);
  EXPECT_NE(a.signature(), b.signature())
      << "a signature register must be order-sensitive";
}

TEST(Misr, SingleBitErrorsNeverAlias) {
  // Flipping exactly one input bit always changes the signature (the
  // error polynomial is a monomial, never divisible by the feedback).
  util::Rng rng(5);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<std::uint64_t> stream(20);
    for (auto& word : stream) word = rng.next_u64() & 0xFF;
    bist::Misr clean(8);
    for (auto word : stream) clean.shift(word);
    auto corrupted = stream;
    corrupted[rng.next_below(20)] ^= 1ULL << rng.next_below(8);
    bist::Misr dirty(8);
    for (auto word : corrupted) dirty.shift(word);
    EXPECT_NE(clean.signature(), dirty.signature()) << "trial " << trial;
  }
}

TEST(Misr, EmpiricalAliasingNearTheoretical) {
  // Random error streams alias with probability ~2^-8; measure it.
  util::Rng rng(9);
  int aliased = 0;
  constexpr int kTrials = 3000;
  for (int trial = 0; trial < kTrials; ++trial) {
    bist::Misr clean(8);
    bist::Misr dirty(8);
    for (int c = 0; c < 16; ++c) {
      const std::uint64_t good = rng.next_u64() & 0xFF;
      const std::uint64_t error = rng.next_u64() & 0xFF;
      clean.shift(good);
      dirty.shift(good ^ error);
    }
    aliased += clean.signature() == dirty.signature();
  }
  const double empirical = static_cast<double>(aliased) / kTrials;
  EXPECT_NEAR(empirical, bist::Misr(8).aliasing_probability(), 0.01);
}

TEST(Misr, AbsorbsBitVectors) {
  bist::Misr m(8);
  m.absorb(util::BitVector::from_string("1010101000001111"));
  EXPECT_NE(m.signature(), 0u);
  EXPECT_THROW(bist::Misr(1), util::Error);
  EXPECT_THROW(bist::Misr(8, 0), util::Error);
}

TEST(Misr, CompactsScanResponsesAndCatchesAFault) {
  // Compact the GCD core's whole test response stream; a faulty chip's
  // signature must differ.
  auto elab = synth::elaborate(systems::make_gcd_rtl());
  auto result = atpg::generate_tests(elab.gates, {.random_patterns = 16});
  faultsim::ScanFaultSim sim(elab.gates);

  // Pick a fault that the test set detects.
  std::size_t detected_index = result.faults.size();
  for (std::size_t i = 0; i < result.faults.size(); ++i) {
    if (result.statuses[i] == faultsim::FaultStatus::kDetected) {
      detected_index = i;
      break;
    }
  }
  ASSERT_LT(detected_index, result.faults.size());

  bist::Misr clean(16);
  bist::Misr dirty(16);
  for (const auto& pattern : result.patterns) {
    clean.absorb(sim.good_response(pattern));
    dirty.absorb(
        sim.faulty_response(result.faults[detected_index], pattern));
  }
  EXPECT_NE(clean.signature(), dirty.signature());
}

// --------------------------------------------------------------- diagnosis

struct Workbench {
  synth::Elaboration elab = synth::elaborate(systems::make_gcd_rtl());
  atpg::AtpgResult atpg =
      atpg::generate_tests(elab.gates, {.random_patterns = 32});
  faultsim::ScanFaultSim sim{elab.gates};

  std::vector<util::BitVector> responses_with(const faultsim::Fault& fault) {
    std::vector<util::BitVector> observed;
    for (const auto& pattern : atpg.patterns) {
      observed.push_back(sim.faulty_response(fault, pattern));
    }
    return observed;
  }
};

TEST(Diagnosis, PassingChipYieldsNoCandidates) {
  Workbench wb;
  std::vector<util::BitVector> observed;
  for (const auto& pattern : wb.atpg.patterns) {
    observed.push_back(wb.sim.good_response(pattern));
  }
  auto result = faultsim::diagnose(wb.elab.gates, wb.atpg.patterns, observed);
  EXPECT_TRUE(result.ranked.empty());
}

TEST(Diagnosis, InjectedFaultRankedFirstAndExact) {
  Workbench wb;
  util::Rng rng(21);
  int checked = 0;
  for (int trial = 0; trial < 4; ++trial) {
    const auto index = rng.next_below(wb.atpg.faults.size());
    if (wb.atpg.statuses[index] != faultsim::FaultStatus::kDetected) {
      continue;
    }
    const auto& culprit = wb.atpg.faults[index];
    auto result = faultsim::diagnose(wb.elab.gates, wb.atpg.patterns,
                                     wb.responses_with(culprit));
    ASSERT_FALSE(result.ranked.empty());
    // The top candidate must be an exact explanation; the culprit itself
    // (or an equivalent fault — same dictionary row) must share the top
    // score.
    EXPECT_TRUE(result.ranked.front().exact())
        << describe_fault(wb.elab.gates, culprit);
    bool culprit_at_top = false;
    for (const auto& candidate : result.ranked) {
      if (candidate.score < result.ranked.front().score) break;
      culprit_at_top |= candidate.fault == culprit;
    }
    EXPECT_TRUE(culprit_at_top)
        << describe_fault(wb.elab.gates, culprit);
    ++checked;
  }
  EXPECT_GT(checked, 0);
}

TEST(Diagnosis, RejectsMismatchedInputs) {
  Workbench wb;
  std::vector<util::BitVector> too_few;
  EXPECT_THROW(
      faultsim::diagnose(wb.elab.gates, wb.atpg.patterns, too_few),
      util::Error);
}

}  // namespace
}  // namespace socet
