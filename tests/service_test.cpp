// Concurrent planning service: job-line parsing, the FNV-1a LRU cache,
// the work queue, batch determinism across thread counts, error
// isolation, sweep-vs-explore equivalence, and a CLI round-trip through
// the real `socet` binary.
#include <gtest/gtest.h>
#include <sys/wait.h>

#include <cstdio>
#include <fstream>
#include <iterator>
#include <set>
#include <thread>

#include "socet/opt/optimize.hpp"
#include "socet/service/cache.hpp"
#include "socet/service/job.hpp"
#include "socet/service/queue.hpp"
#include "socet/service/service.hpp"
#include "socet/systems/systems.hpp"
#include "socet/util/error.hpp"

namespace socet {
namespace {

using service::Job;
using service::Verb;

// ---------------------------------------------------------------- job lines

TEST(JobLine, ParsesEveryVerb) {
  EXPECT_EQ(service::parse_job_line("plan").verb, Verb::kPlan);
  EXPECT_EQ(service::parse_job_line("explore system=system2").verb,
            Verb::kExplore);
  EXPECT_EQ(service::parse_job_line("parallel selection=1,2").verb,
            Verb::kParallel);
  EXPECT_EQ(service::parse_job_line("program").verb, Verb::kProgram);
  const Job opt = service::parse_job_line("optimize area-budget=40");
  EXPECT_EQ(opt.verb, Verb::kOptimize);
  EXPECT_EQ(opt.objective, Job::Objective::kAreaBudget);
  EXPECT_EQ(opt.area_budget, 40u);
}

TEST(JobLine, CanonicalFormIsAFixpoint) {
  const std::vector<std::string> lines = {
      "plan system=barcode",
      "plan system=barcode selection=1,2,1 pipelined",
      "optimize system=system2 area-budget=100",
      "optimize system=barcode tat-budget=4000",
      "optimize system=barcode w1=1.5 w2=0.25",
      "explore system=system2",
      "parallel system=barcode selection=2,2,2",
      "program system=barcode",
  };
  for (const std::string& line : lines) {
    const Job job = service::parse_job_line(line);
    const std::string canonical = service::canonical_job_line(job);
    EXPECT_EQ(service::parse_job_line(canonical), job) << line;
    EXPECT_EQ(service::canonical_job_line(service::parse_job_line(canonical)),
              canonical)
        << line;
  }
}

TEST(JobLine, RejectsMalformedInput) {
  EXPECT_THROW(service::parse_job_line(""), util::Error);
  EXPECT_THROW(service::parse_job_line("pln system=barcode"), util::Error);
  EXPECT_THROW(service::parse_job_line("plan bogus=1"), util::Error);
  EXPECT_THROW(service::parse_job_line("plan area-budget=4"), util::Error);
  EXPECT_THROW(service::parse_job_line("optimize"), util::Error);
  EXPECT_THROW(
      service::parse_job_line("optimize area-budget=1 tat-budget=2"),
      util::Error);
  EXPECT_THROW(service::parse_job_line("explore selection=1,2"), util::Error);
  EXPECT_THROW(service::parse_job_line("plan system="), util::Error);
}

std::string parse_error(const std::string& line) {
  try {
    service::parse_job_line(line);
  } catch (const util::Error& error) {
    return error.what();
  }
  return "";
}

TEST(JobLine, ErrorsPointAtTheOffendingColumn) {
  // The verb is the first token; a leading-space line shifts it.
  EXPECT_EQ(parse_error("pln"),
            "unknown verb 'pln' (want plan|optimize|explore|parallel|"
            "program) (column 1)");
  EXPECT_EQ(parse_error("  pln"),
            "unknown verb 'pln' (want plan|optimize|explore|parallel|"
            "program) (column 3)");
  // "bogus=1" starts at column 6 of "plan bogus=1".
  EXPECT_EQ(parse_error("plan bogus=1"),
            "bad job option 'bogus=1' (column 6)");
  // A valid key whose verb does not take it points at the key.
  EXPECT_EQ(parse_error("explore selection=1,2"),
            "'selection' does not apply to verb explore (column 9)");
  EXPECT_EQ(parse_error("plan area-budget=4"),
            "'area-budget' only applies to verb optimize (column 6)");
  // Nested value-parse errors keep their message and gain the column.
  EXPECT_EQ(parse_error("plan system=barcode selection=1,x"),
            "bad selection token 'x' (want a number) (column 21)");
  EXPECT_EQ(parse_error("optimize area-budget=many"),
            "bad area-budget 'many' (want a number) (column 10)");
  EXPECT_EQ(parse_error("optimize w1=1 w2=x"),
            "bad w2 'x' (want a number) (column 15)");
  EXPECT_EQ(parse_error("optimize area-budget=1 tat-budget=2"),
            "optimize takes exactly one objective (column 24)");
  EXPECT_EQ(parse_error("plan system="), "empty system name (column 6)");
}

TEST(SelectionSpec, StrictOneBasedParsing) {
  EXPECT_EQ(service::parse_selection_spec("1,2,3"),
            (std::vector<unsigned>{0, 1, 2}));
  EXPECT_EQ(service::parse_selection_spec("2"), (std::vector<unsigned>{1}));
  // The historical footgun: "0" used to underflow to UINT_MAX.
  EXPECT_THROW(service::parse_selection_spec("0"), util::Error);
  EXPECT_THROW(service::parse_selection_spec("0,1"), util::Error);
  EXPECT_THROW(service::parse_selection_spec(""), util::Error);
  EXPECT_THROW(service::parse_selection_spec("1,,2"), util::Error);
  EXPECT_THROW(service::parse_selection_spec("1,2,"), util::Error);
  EXPECT_THROW(service::parse_selection_spec("1,x"), util::Error);
  EXPECT_THROW(service::parse_selection_spec("1x"), util::Error);
  EXPECT_THROW(service::parse_selection_spec("-1"), util::Error);
}

// -------------------------------------------------------------------- cache

TEST(Fnv1a, MatchesReferenceVectors) {
  EXPECT_EQ(service::fnv1a(""), 0xcbf29ce484222325ull);
  EXPECT_EQ(service::fnv1a("a"), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(service::fnv1a("foobar"), 0x85944171f73967e8ull);
  // Chaining hashes the concatenation.
  EXPECT_EQ(service::fnv1a("bar", service::fnv1a("foo")),
            service::fnv1a("foobar"));
}

TEST(PlanCache, LruEvictsLeastRecentlyUsed) {
  service::PlanCache cache(2);
  cache.insert(1, {"one", 0, 0});
  cache.insert(2, {"two", 0, 0});
  ASSERT_TRUE(cache.lookup(1).has_value());  // 1 becomes most recent
  cache.insert(3, {"three", 0, 0});          // evicts 2
  EXPECT_TRUE(cache.lookup(1).has_value());
  EXPECT_FALSE(cache.lookup(2).has_value());
  EXPECT_TRUE(cache.lookup(3).has_value());
  EXPECT_EQ(cache.size(), 2u);
  const auto stats = cache.stats();
  EXPECT_EQ(stats.insertions, 3u);
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.hits, 3u);
  EXPECT_EQ(stats.misses, 1u);
}

TEST(PlanCache, ZeroCapacityDisablesMemoization) {
  service::PlanCache cache(0);
  cache.insert(1, {"one", 0, 0});
  EXPECT_FALSE(cache.lookup(1).has_value());
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(PlanCache, DuplicateInsertKeepsIncumbent) {
  service::PlanCache cache(4);
  cache.insert(1, {"first", 10, 1});
  cache.insert(1, {"second", 20, 2});
  EXPECT_EQ(cache.lookup(1)->payload, "first");
  EXPECT_EQ(cache.stats().insertions, 1u);
}

TEST(JobKey, DistinguishesEveryDimension) {
  const auto key_of = [](const std::string& line) {
    return service::job_key(service::parse_job_line(line));
  };
  std::set<std::uint64_t> keys = {
      key_of("plan system=barcode"),
      key_of("plan system=system2"),
      key_of("plan system=barcode selection=1,2,1"),
      key_of("plan system=barcode pipelined"),
      key_of("program system=barcode"),
      key_of("parallel system=barcode"),
      key_of("optimize system=barcode area-budget=40"),
      key_of("optimize system=barcode area-budget=41"),
      key_of("optimize system=barcode tat-budget=40"),
  };
  EXPECT_EQ(keys.size(), 9u);
  EXPECT_EQ(key_of("plan system=barcode"), key_of("plan  system=barcode"));
}

// -------------------------------------------------------------------- queue

TEST(WorkQueue, DrainsEveryItemExactlyOnceAcrossThreads) {
  service::WorkQueue<int> queue;
  constexpr int kItems = 500;
  for (int i = 0; i < kItems; ++i) ASSERT_TRUE(queue.push(i));
  queue.close();
  EXPECT_FALSE(queue.push(99));  // closed queues reject pushes

  std::mutex mutex;
  std::multiset<int> seen;
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&] {
      while (auto item = queue.pop()) {
        std::lock_guard<std::mutex> lock(mutex);
        seen.insert(*item);
      }
    });
  }
  for (auto& worker : workers) worker.join();
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(kItems));
  for (int i = 0; i < kItems; ++i) EXPECT_EQ(seen.count(i), 1u) << i;
}

// ------------------------------------------------------------------ service

std::vector<std::string> workload_64() {
  std::vector<std::string> lines;
  for (unsigned a = 1; a <= 3; ++a) {
    for (unsigned b = 1; b <= 3; ++b) {
      for (unsigned c = 1; c <= 3; ++c) {
        lines.push_back("plan system=barcode selection=" + std::to_string(a) +
                        "," + std::to_string(b) + "," + std::to_string(c));
      }
    }
  }  // 27 jobs
  for (unsigned budget = 0; budget <= 120; budget += 10) {
    lines.push_back("optimize system=barcode area-budget=" +
                    std::to_string(budget));
  }  // 13 jobs
  for (unsigned sel = 1; sel <= 3; ++sel) {
    lines.push_back("parallel system=system2 selection=" +
                    std::to_string(sel));
    lines.push_back("program system=barcode selection=" +
                    std::to_string(sel));
    lines.push_back("plan system=system2 selection=1," + std::to_string(sel) +
                    " pipelined");
  }  // 9 jobs
  lines.push_back("explore system=barcode");
  lines.push_back("explore system=system2");
  for (unsigned seed = 1; seed <= 13; ++seed) {
    lines.push_back("plan system=synthetic:" + std::to_string(seed));
  }  // 13 jobs
  EXPECT_EQ(lines.size(), 64u);
  return lines;
}

TEST(PlanningService, OutputIsByteIdenticalAcrossThreadCounts) {
  const auto lines = workload_64();
  std::string baseline;
  for (unsigned threads : {1u, 2u, 4u}) {
    service::PlanningService svc({threads, 4096});
    const auto report = svc.run_lines(lines);
    EXPECT_EQ(report.errors, 0u);
    EXPECT_EQ(report.results.size(), 64u);
    if (threads == 1) {
      baseline = report.records_text();
    } else {
      EXPECT_EQ(report.records_text(), baseline) << threads << " threads";
    }
  }
}

TEST(PlanningService, RepeatedJobsHitTheCache) {
  service::PlanningService svc({1, 4096});
  const std::vector<std::string> lines = {
      "plan system=barcode selection=1,2,1",
      "plan system=barcode selection=1,2,1",  // duplicate within a batch
  };
  const auto first = svc.run_lines(lines);
  EXPECT_EQ(first.cache.hits, 1u);
  EXPECT_EQ(first.cache.misses, 1u);
  EXPECT_TRUE(first.results[1].cache_hit);
  EXPECT_EQ(first.results[0].record.substr(6), first.results[1].record.substr(6));

  // A second batch against the same service hits on every job.
  const auto second = svc.run_lines(lines);
  EXPECT_EQ(second.cache.hits, 2u);
  EXPECT_EQ(second.cache.misses, 0u);
  EXPECT_EQ(second.records_text(), first.records_text());
}

TEST(PlanningService, CanonicalizedDuplicatesShareACacheEntry) {
  service::PlanningService svc({1, 4096});
  // Same job spelled two ways: option order is free, canonical form is not.
  const auto report = svc.run_lines(
      {"plan selection=1,2,1 system=barcode", "plan system=barcode selection=1,2,1"});
  EXPECT_EQ(report.cache.hits, 1u);
}

TEST(PlanningService, IsolatesBadJobsAndCountsErrors) {
  service::PlanningService svc({4, 4096});
  const std::vector<std::string> lines = {
      "plan system=barcode",
      "bogus job line",
      "plan system=does-not-exist",
      "plan system=barcode selection=9,9,9",
      "plan system=barcode selection=2",
      "optimize system=barcode area-budget=40",
  };
  const auto report = svc.run_lines(lines);
  ASSERT_EQ(report.results.size(), 6u);
  EXPECT_EQ(report.errors, 3u);
  EXPECT_TRUE(report.results[0].ok);
  EXPECT_FALSE(report.results[1].ok);
  EXPECT_NE(report.results[1].record.find("error"), std::string::npos);
  EXPECT_NE(report.results[1].record.find("unknown verb"), std::string::npos);
  EXPECT_FALSE(report.results[2].ok);
  EXPECT_FALSE(report.results[3].ok);
  EXPECT_TRUE(report.results[4].ok);  // short selections pad with version 1
  EXPECT_TRUE(report.results[5].ok);
  // Comments and blank lines produce no result slot at all.
  const auto with_noise =
      svc.run_lines({"# comment", "", "   ", "plan system=barcode"});
  EXPECT_EQ(with_noise.results.size(), 1u);
  EXPECT_EQ(with_noise.errors, 0u);
}

TEST(PlanningService, SummaryTableCarriesTheCounters) {
  service::PlanningService svc({2, 4096});
  const auto report = svc.run_lines(
      {"plan system=barcode", "plan system=barcode", "nonsense"});
  const std::string table = report.summary_table();
  EXPECT_NE(table.find("jobs run"), std::string::npos);
  EXPECT_NE(table.find("cache hit-rate"), std::string::npos);
  EXPECT_NE(table.find("batch wall time"), std::string::npos);
  EXPECT_EQ(report.errors, 1u);
}

TEST(Sweep, MatchesSerialExploreByteForByte) {
  auto system = systems::make_barcode_system();
  const std::string serial =
      opt::design_space_csv(opt::enumerate_design_space(*system.soc));
  for (unsigned threads : {1u, 4u}) {
    service::PlanningService svc({threads, 4096});
    EXPECT_EQ(service::sweep_csv("barcode", svc), serial) << threads;
  }
}

TEST(Sweep, HitsTheCacheOnRepeatedSweeps) {
  service::PlanningService svc({2, 4096});
  (void)service::sweep_csv("barcode", svc);
  const auto before = svc.cache().stats();
  (void)service::sweep_csv("barcode", svc);
  const auto after = svc.cache().stats();
  EXPECT_EQ(after.hits - before.hits, 27u);  // 3^3 design points, all hits
  EXPECT_EQ(after.misses, before.misses);
}

// ------------------------------------------------------------ CLI round-trip

struct CliRun {
  int exit_code = -1;
  std::string output;
};

CliRun run_cli(const std::string& arguments) {
  const std::string command =
      std::string(SOCET_CLI_PATH) + " " + arguments + " 2>/dev/null";
  FILE* pipe = popen(command.c_str(), "r");
  EXPECT_NE(pipe, nullptr);
  CliRun run;
  char buffer[4096];
  std::size_t n = 0;
  while ((n = fread(buffer, 1, sizeof(buffer), pipe)) > 0) {
    run.output.append(buffer, n);
  }
  const int status = pclose(pipe);
  run.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return run;
}

TEST(Cli, BatchRoundTrip) {
  const std::string path = testing::TempDir() + "socet_service_jobs.txt";
  {
    std::ofstream file(path);
    file << "# a comment\n"
         << "plan system=barcode selection=1,2,1\n"
         << "optimize system=barcode area-budget=40\n"
         << "plan system=barcode selection=1,2,1\n";
  }
  const CliRun serial = run_cli("batch --jobs " + path + " --threads 1");
  EXPECT_EQ(serial.exit_code, 0);
  EXPECT_NE(serial.output.find("job 1 ok plan"), std::string::npos);
  EXPECT_NE(serial.output.find("job 2 ok optimize"), std::string::npos);
  const CliRun threaded = run_cli("batch --jobs " + path + " --threads 4");
  EXPECT_EQ(threaded.output, serial.output);

  {
    std::ofstream file(path, std::ios::app);
    file << "plan system=unknown-system\n";
  }
  const CliRun failing = run_cli("batch --jobs " + path + " --threads 2");
  EXPECT_EQ(failing.exit_code, 1);  // batch exit code reflects job errors
  EXPECT_NE(failing.output.find("job 4 error"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Cli, ObservabilityKeepsStdoutByteIdentical) {
  const std::string path = testing::TempDir() + "socet_obs_jobs.txt";
  {
    std::ofstream file(path);
    file << "plan system=barcode selection=1,2,1\n"
         << "optimize system=barcode area-budget=40\n"
         << "plan system=barcode selection=2,2,2\n"
         << "plan system=barcode selection=1,2,1\n"
         << "parallel system=barcode\n";
  }
  const CliRun plain = run_cli("batch --jobs " + path + " --threads 1");
  EXPECT_EQ(plain.exit_code, 0);
  // Tracing + metrics + journal never touch stdout, at any thread count.
  for (const char* threads : {"1", "8"}) {
    const std::string trace =
        testing::TempDir() + "socet_obs_trace_t" + threads + ".json";
    const std::string journal =
        testing::TempDir() + "socet_obs_journal_t" + threads + ".jsonl";
    const CliRun traced =
        run_cli("batch --jobs " + path + " --threads " + threads +
                " --trace " + trace + " --metrics --journal " + journal +
                " --flight-recorder 64");
    EXPECT_EQ(traced.exit_code, 0) << threads << " threads";
    EXPECT_EQ(traced.output, plain.output) << threads << " threads";
    std::ifstream file(trace);
    ASSERT_TRUE(file.good()) << trace;
    std::string json((std::istreambuf_iterator<char>(file)),
                     std::istreambuf_iterator<char>());
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"service/job\""), std::string::npos);
    std::ifstream journal_file(journal);
    ASSERT_TRUE(journal_file.good()) << journal;
    std::string journal_text((std::istreambuf_iterator<char>(journal_file)),
                             std::istreambuf_iterator<char>());
    EXPECT_NE(journal_text.find("\"schema\":\"socet-journal-v1\""),
              std::string::npos);
    EXPECT_NE(journal_text.find("\"corr\":\"job-"), std::string::npos);
    std::remove(trace.c_str());
    std::remove(journal.c_str());
  }
  std::remove(path.c_str());
}

TEST(Cli, ReportFileCarriesMetricsAndSpans) {
  const std::string report = testing::TempDir() + "socet_obs_report.json";
  const CliRun run = run_cli("plan --system barcode --report " + report);
  EXPECT_EQ(run.exit_code, 0);
  std::ifstream file(report);
  ASSERT_TRUE(file.good());
  std::string json((std::istreambuf_iterator<char>(file)),
                   std::istreambuf_iterator<char>());
  EXPECT_NE(json.find("\"schema\":\"socet-report-v1\""), std::string::npos);
  EXPECT_NE(json.find("\"command\":\"plan\""), std::string::npos);
  EXPECT_NE(json.find("\"ccg/dijkstra_runs\""), std::string::npos);
  EXPECT_NE(json.find("\"soc/plan_chip_test\""), std::string::npos);
  EXPECT_NE(json.find("\"stages\""), std::string::npos);
  std::remove(report.c_str());
}

TEST(Cli, VerboseBatchStdoutStaysStable) {
  const std::string path = testing::TempDir() + "socet_obs_verbose.txt";
  {
    std::ofstream file(path);
    file << "plan system=barcode\n";
  }
  // --verbose adds per-job timing on stderr only; stdout is unchanged.
  const CliRun plain = run_cli("batch --jobs " + path);
  const CliRun verbose = run_cli("batch --jobs " + path + " --verbose");
  EXPECT_EQ(verbose.exit_code, 0);
  EXPECT_EQ(verbose.output, plain.output);
  std::remove(path.c_str());
}

TEST(Cli, SweepMatchesExplore) {
  const CliRun explore = run_cli("explore --system barcode");
  const CliRun sweep = run_cli("sweep --system barcode --threads 4");
  EXPECT_EQ(explore.exit_code, 0);
  EXPECT_EQ(sweep.exit_code, 0);
  EXPECT_EQ(sweep.output, explore.output);
  EXPECT_NE(sweep.output.find("selection,area_cells,tat_cycles,pareto"),
            std::string::npos);
}

TEST(Cli, RejectsBadSelectionAndUnknownCommand) {
  EXPECT_EQ(run_cli("plan --selection 0,1").exit_code, 1);
  EXPECT_EQ(run_cli("plan --selection 1,2,").exit_code, 1);
  EXPECT_EQ(run_cli("plan --selection 1,2,3,4").exit_code, 1);
  EXPECT_EQ(run_cli("pln").exit_code, 2);
}

}  // namespace
}  // namespace socet
