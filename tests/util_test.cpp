#include <gtest/gtest.h>

#include <set>

#include "socet/util/bitvector.hpp"
#include "socet/util/error.hpp"
#include "socet/util/ids.hpp"
#include "socet/util/rng.hpp"
#include "socet/util/table.hpp"

namespace socet::util {
namespace {

// ---------------------------------------------------------------- BitVector

TEST(BitVector, DefaultIsEmpty) {
  BitVector v;
  EXPECT_EQ(v.width(), 0u);
  EXPECT_TRUE(v.empty());
}

TEST(BitVector, WidthConstructorZeroFills) {
  BitVector v(130);
  EXPECT_EQ(v.width(), 130u);
  for (std::size_t i = 0; i < 130; ++i) EXPECT_FALSE(v.get(i));
  EXPECT_EQ(v.count_ones(), 0u);
}

TEST(BitVector, ValueConstructorSetsLowBits) {
  BitVector v(8, 0b1010'0110);
  EXPECT_TRUE(v.get(1));
  EXPECT_TRUE(v.get(2));
  EXPECT_FALSE(v.get(0));
  EXPECT_TRUE(v.get(7));
  EXPECT_EQ(v.to_u64(), 0b1010'0110u);
}

TEST(BitVector, ValueConstructorRejectsOverflow) {
  EXPECT_THROW(BitVector(3, 8), Error);
  EXPECT_NO_THROW(BitVector(3, 7));
  EXPECT_NO_THROW(BitVector(64, ~0ULL));
}

TEST(BitVector, FromStringMsbFirst) {
  auto v = BitVector::from_string("101");
  EXPECT_EQ(v.width(), 3u);
  EXPECT_TRUE(v.get(0));
  EXPECT_FALSE(v.get(1));
  EXPECT_TRUE(v.get(2));
  EXPECT_EQ(v.to_string(), "101");
}

TEST(BitVector, FromStringRejectsBadInput) {
  EXPECT_THROW(BitVector::from_string(""), Error);
  EXPECT_THROW(BitVector::from_string("10x"), Error);
}

TEST(BitVector, SetAndGetAcrossWordBoundary) {
  BitVector v(100);
  v.set(63, true);
  v.set(64, true);
  v.set(99, true);
  EXPECT_TRUE(v.get(63));
  EXPECT_TRUE(v.get(64));
  EXPECT_TRUE(v.get(99));
  EXPECT_EQ(v.count_ones(), 3u);
  v.set(64, false);
  EXPECT_FALSE(v.get(64));
}

TEST(BitVector, GetOutOfRangeThrows) {
  BitVector v(4);
  EXPECT_THROW((void)v.get(4), Error);
  EXPECT_THROW(v.set(4, true), Error);
}

TEST(BitVector, SetAllThenMaskKeepsWidth) {
  BitVector v(70);
  v.set_all(true);
  EXPECT_EQ(v.count_ones(), 70u);
  v.set_all(false);
  EXPECT_EQ(v.count_ones(), 0u);
}

TEST(BitVector, SliceExtractsRange) {
  auto v = BitVector::from_string("11010010");
  auto s = v.slice(1, 4);  // bits 4..1 = "1001"
  EXPECT_EQ(s.to_string(), "1001");
}

TEST(BitVector, SliceOutOfRangeThrows) {
  BitVector v(8);
  EXPECT_THROW(v.slice(5, 4), Error);
}

TEST(BitVector, WriteSliceOverwrites) {
  BitVector v(8);
  v.write_slice(2, BitVector::from_string("111"));
  EXPECT_EQ(v.to_string(), "00011100");
}

TEST(BitVector, AppendConcatenates) {
  auto lo = BitVector::from_string("01");
  auto hi = BitVector::from_string("11");
  lo.append(hi);
  EXPECT_EQ(lo.width(), 4u);
  // `hi` lands above `lo`: result MSB-first is "1101".
  EXPECT_EQ(lo.to_string(), "1101");
}

TEST(BitVector, EqualityComparesWidthAndBits) {
  EXPECT_EQ(BitVector(8, 5), BitVector(8, 5));
  EXPECT_NE(BitVector(8, 5), BitVector(9, 5));
  EXPECT_NE(BitVector(8, 5), BitVector(8, 6));
}

TEST(BitVector, RandomIsDeterministicPerSeed) {
  Rng a(42), b(42), c(43);
  auto va = BitVector::random(128, a);
  auto vb = BitVector::random(128, b);
  auto vc = BitVector::random(128, c);
  EXPECT_EQ(va, vb);
  EXPECT_NE(va, vc);
}

TEST(BitVector, ToU64RejectsWideVectors) {
  BitVector v(65);
  EXPECT_THROW((void)v.to_u64(), Error);
}

// ---------------------------------------------------------------------- Ids

struct FooTag {};
struct BarTag {};

TEST(Id, InvalidByDefault) {
  Id<FooTag> id;
  EXPECT_FALSE(id.valid());
  EXPECT_EQ(id, Id<FooTag>::invalid());
}

TEST(Id, ValueRoundTrip) {
  Id<FooTag> id(7);
  EXPECT_TRUE(id.valid());
  EXPECT_EQ(id.value(), 7u);
  EXPECT_EQ(id.index(), 7u);
}

TEST(Id, DistinctTagsAreDistinctTypes) {
  static_assert(!std::is_same_v<Id<FooTag>, Id<BarTag>>);
}

TEST(Id, OrderingAndHash) {
  std::set<Id<FooTag>> ids{Id<FooTag>(3), Id<FooTag>(1), Id<FooTag>(2)};
  EXPECT_EQ(ids.size(), 3u);
  EXPECT_EQ(ids.begin()->value(), 1u);
  EXPECT_EQ(std::hash<Id<FooTag>>{}(Id<FooTag>(5)),
            std::hash<Id<FooTag>>{}(Id<FooTag>(5)));
}

// ---------------------------------------------------------------------- Rng

TEST(Rng, DeterministicSequence) {
  Rng a(1), b(1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, NextBelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
}

TEST(Rng, NextBelowCoversRange) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 200; ++i) seen.insert(rng.next_below(4));
  EXPECT_EQ(seen.size(), 4u);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

// -------------------------------------------------------------------- Table

TEST(Table, RendersAlignedText) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "20"});
  const auto text = t.to_text();
  EXPECT_NE(text.find("| alpha | 1     |"), std::string::npos);
  EXPECT_NE(text.find("| b     | 20    |"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(Table, RejectsMismatchedRow) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), Error);
}

TEST(Table, CsvQuotesCommas) {
  Table t({"k", "v"});
  t.add_row({"x,y", "3"});
  EXPECT_EQ(t.to_csv(), "k,v\n\"x,y\",3\n");
}

TEST(Table, NumFormatsDigits) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(2.0, 0), "2");
}

// -------------------------------------------------------------------- Error

TEST(Error, RequireThrowsWithMessage) {
  try {
    require(false, "boom");
    FAIL() << "require did not throw";
  } catch (const Error& e) {
    EXPECT_STREQ(e.what(), "boom");
  }
}

TEST(Error, AssertMacroThrows) {
  EXPECT_THROW(SOCET_ASSERT(1 == 2, "math broke"), Error);
  EXPECT_NO_THROW(SOCET_ASSERT(1 == 1, "fine"));
}

}  // namespace
}  // namespace socet::util
