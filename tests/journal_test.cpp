// Decision journal + flight recorder + `socet explain` provenance.
//
// Covers: the SOCET_EVENT fast path when disabled, typed field
// rendering, correlation scopes and span capture, multi-thread merge
// order, the flight-recorder ring (wrap-around, crash-handler dump),
// journal provenance of a full barcode plan — including the Section
// 5.1 reservation-shift bookkeeping cross-checked against the plan's
// own routes — the optimizer's rejection trail, the four explain
// queries, and the CLI `--journal` / `explain` round trip.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <iterator>
#include <string>
#include <thread>
#include <vector>

#include "socet/obs/explain.hpp"
#include "socet/obs/journal.hpp"
#include "socet/obs/jsonin.hpp"
#include "socet/obs/trace.hpp"
#include "socet/opt/optimize.hpp"
#include "socet/service/client.hpp"
#include "socet/service/server.hpp"
#include "socet/service/service.hpp"
#include "socet/soc/parallel.hpp"
#include "socet/soc/schedule.hpp"
#include "socet/systems/systems.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <signal.h>
#include <unistd.h>
#define SOCET_TEST_HAS_SIGNALS 1
#else
#define SOCET_TEST_HAS_SIGNALS 0
#endif

namespace socet {
namespace {

/// Every journal test starts and ends with a clean global journal.
class JournalTest : public ::testing::Test {
 protected:
  void SetUp() override { obs::journal_reset(); }
  void TearDown() override { obs::journal_reset(); }
};

/// Parse the journal text all tests share; fails the test on error.
obs::JournalDoc load_or_die(const std::string& text) {
  obs::JournalDoc doc;
  std::string error;
  EXPECT_TRUE(obs::load_journal(text, &doc, &error)) << error;
  return doc;
}

const obs::JsonValue* field(const obs::JsonValue& event, const char* key) {
  return event.get(key);
}

std::string str_field(const obs::JsonValue& event, const char* key) {
  const obs::JsonValue* value = field(event, key);
  return value != nullptr ? value->string_or("") : "";
}

long long int_field(const obs::JsonValue& event, const char* key) {
  const obs::JsonValue* value = field(event, key);
  return value != nullptr && value->is_number()
             ? static_cast<long long>(value->number_value)
             : -1;
}

TEST_F(JournalTest, DisabledByDefaultRecordsNothing) {
  EXPECT_FALSE(obs::journal_enabled());
  SOCET_EVENT("test/noop", {"ignored", 1});
  EXPECT_EQ(obs::journal_event_count(), 0u);
  EXPECT_NE(obs::journal_jsonl().find("\"events\":0"), std::string::npos);
}

TEST_F(JournalTest, TapReceivesTypeCorrAndRenderedLine) {
  std::vector<std::string> types;
  std::vector<std::string> corrs;
  std::vector<std::string> lines;
  obs::journal_set_tap(
      [&](const char* type, const char* corr, const std::string& line) {
        types.emplace_back(type);
        corrs.emplace_back(corr);
        lines.push_back(line);
      });
  // The tap alone is a sink: SOCET_EVENT takes the enabled path.
  EXPECT_TRUE(obs::journal_enabled());
  {
    obs::JournalScope scope("job-9");
    SOCET_EVENT("test/tap", {"k", 1});
  }
  SOCET_EVENT("test/bare", {"k", 2});
  ASSERT_EQ(types.size(), 2u);
  EXPECT_EQ(types[0], "test/tap");
  EXPECT_EQ(corrs[0], "job-9");
  EXPECT_NE(lines[0].find("\"type\":\"test/tap\""), std::string::npos)
      << lines[0];
  EXPECT_NE(lines[0].find("\"corr\":\"job-9\""), std::string::npos);
  EXPECT_EQ(types[1], "test/bare");
  EXPECT_EQ(corrs[1], "");  // no scope, no correlation

  // An empty function uninstalls; the journal goes quiet again.
  obs::journal_set_tap({});
  EXPECT_FALSE(obs::journal_enabled());
  SOCET_EVENT("test/after", {"k", 3});
  EXPECT_EQ(types.size(), 2u);
}

TEST_F(JournalTest, TapComposesWithTheMemorySink) {
  std::size_t taps = 0;
  obs::journal_start_memory();
  obs::journal_set_tap(
      [&](const char*, const char*, const std::string&) { ++taps; });
  SOCET_EVENT("test/both", {"n", 1});
  EXPECT_EQ(taps, 1u);

  // Uninstalling the tap must not stop the memory sink.
  obs::journal_set_tap({});
  EXPECT_TRUE(obs::journal_enabled());
  SOCET_EVENT("test/both", {"n", 2});
  EXPECT_EQ(taps, 1u);
  obs::journal_stop();
  EXPECT_EQ(obs::journal_event_count(), 2u);  // both hit the memory sink
}

TEST_F(JournalTest, ResetClearsTheTap) {
  std::size_t taps = 0;
  obs::journal_set_tap(
      [&](const char*, const char*, const std::string&) { ++taps; });
  obs::journal_reset();
  EXPECT_FALSE(obs::journal_enabled());
  SOCET_EVENT("test/gone", {"n", 1});
  EXPECT_EQ(taps, 0u);
}

TEST_F(JournalTest, MemorySinkRendersTypedFields) {
  obs::journal_start_memory();
  EXPECT_TRUE(obs::journal_enabled());
  SOCET_EVENT("test/kinds", {"s", "x\"y"}, {"b", true}, {"i", -3},
              {"u", 7u}, {"d", 1.5});
  obs::journal_stop();
  EXPECT_FALSE(obs::journal_enabled());
  EXPECT_EQ(obs::journal_event_count(), 1u);

  const std::string text = obs::journal_jsonl();
  EXPECT_NE(text.find("{\"schema\":\"socet-journal-v1\",\"events\":1}"),
            std::string::npos);
  EXPECT_NE(text.find("\"s\":\"x\\\"y\""), std::string::npos);
  EXPECT_NE(text.find("\"b\":true"), std::string::npos);
  EXPECT_NE(text.find("\"i\":-3"), std::string::npos);
  EXPECT_NE(text.find("\"u\":7"), std::string::npos);
  EXPECT_NE(text.find("\"d\":1.5"), std::string::npos);

  const obs::JournalDoc doc = load_or_die(text);
  ASSERT_EQ(doc.events.size(), 1u);
  EXPECT_EQ(str_field(doc.events[0], "type"), "test/kinds");
  EXPECT_EQ(int_field(doc.events[0], "seq"), 0);
}

TEST_F(JournalTest, ScopesNestAndSpansAreCaptured) {
  obs::journal_start_memory();
  {
    obs::Span span("test/outer");
    obs::JournalScope scope("job-7");
    SOCET_EVENT("test/first");
    {
      obs::JournalScope inner("job-8");
      SOCET_EVENT("test/second");
    }
    SOCET_EVENT("test/third");
  }
  SOCET_EVENT("test/fourth");  // outside every scope and span
  obs::journal_stop();

  const obs::JournalDoc doc = load_or_die(obs::journal_jsonl());
  ASSERT_EQ(doc.events.size(), 4u);
  EXPECT_EQ(str_field(doc.events[0], "corr"), "job-7");
  EXPECT_EQ(str_field(doc.events[0], "span"), "test/outer");
  EXPECT_EQ(str_field(doc.events[1], "corr"), "job-8");
  EXPECT_EQ(str_field(doc.events[2], "corr"), "job-7");
  EXPECT_EQ(field(doc.events[3], "corr"), nullptr);
  EXPECT_EQ(field(doc.events[3], "span"), nullptr);
}

TEST_F(JournalTest, ThreadsMergeInSequenceOrder) {
  obs::journal_start_memory();
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < 50; ++i) {
        SOCET_EVENT("test/thread", {"worker", t}, {"i", i});
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  obs::journal_stop();

  const obs::JournalDoc doc = load_or_die(obs::journal_jsonl());
  ASSERT_EQ(doc.events.size(), 200u);
  long long last_seq = -1;
  for (const obs::JsonValue& event : doc.events) {
    const long long seq = int_field(event, "seq");
    EXPECT_GT(seq, last_seq);  // strictly ascending, no duplicates
    last_seq = seq;
  }
}

#if SOCET_TEST_HAS_SIGNALS

TEST_F(JournalTest, FlightRingKeepsOnlyTheLastEvents) {
  obs::journal_start_flight(16, /*install_crash_handler=*/false);
  for (int i = 0; i < 40; ++i) {
    SOCET_EVENT("test/ring", {"idx", i});
  }
  obs::journal_stop();

  const std::string path = testing::TempDir() + "socet_flight_dump.jsonl";
  const int fd = ::open(path.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
  ASSERT_GE(fd, 0);
  obs::journal_dump_flight(fd);
  ::close(fd);

  std::ifstream file(path);
  std::string dump((std::istreambuf_iterator<char>(file)),
                   std::istreambuf_iterator<char>());
  std::remove(path.c_str());

  EXPECT_NE(dump.find("\"kind\":\"flight\""), std::string::npos);
  // Capacity 16: events 24..39 survive, everything earlier was wrapped.
  EXPECT_NE(dump.find("\"idx\":39"), std::string::npos);
  EXPECT_NE(dump.find("\"idx\":24"), std::string::npos);
  EXPECT_EQ(dump.find("\"idx\":23}"), std::string::npos);
  EXPECT_EQ(dump.find("\"idx\":0}"), std::string::npos);
  // The dumping thread's span stack (empty here) is still reported.
  EXPECT_NE(dump.find("\"type\":\"crash/active_spans\""), std::string::npos);
}

using JournalDeathTest = JournalTest;

TEST_F(JournalDeathTest, CrashHandlerDumpsRingOnFatalSignal) {
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_EXIT(
      {
        obs::journal_start_flight(64, /*install_crash_handler=*/true);
        obs::Span span("test/crashing_phase");
        SOCET_EVENT("test/last_words", {"detail", "ring survives"});
        ::raise(SIGSEGV);
      },
      ::testing::KilledBySignal(SIGSEGV), "test/last_words");
}

#endif  // SOCET_TEST_HAS_SIGNALS

// ------------------------------------------------- pipeline provenance

/// Section 5.1 bookkeeping, recomputed from a plan's route: the total
/// number of cycles departures slid past the unreserved schedule.
unsigned route_shift(const soc::Route& route) {
  unsigned shift = 0;
  unsigned at = 0;
  for (const soc::RouteStep& step : route.steps) {
    shift += step.depart - at;
    at = step.arrive;
  }
  return shift;
}

TEST_F(JournalTest, BarcodePlanRecordsDecisionProvenance) {
  // Start before the system is built: the transparency version menus
  // (and their journal events) are created during system construction.
  obs::journal_start_memory();
  auto system = systems::make_barcode_system();
  const std::vector<unsigned> selection(3, 0);
  const auto plan = soc::plan_chip_test(*system.soc, selection);
  obs::journal_stop();
  const obs::JournalDoc doc = load_or_die(obs::journal_jsonl());

  std::size_t paths = 0;
  std::size_t planned = 0;
  for (const obs::JsonValue& event : doc.events) {
    const std::string type = str_field(event, "type");
    if (type == "transparency/path") ++paths;
    if (type != "soc/core_planned") continue;
    ++planned;
    // Section 5.1: TAT = vectors x period + flush (non-pipelined).
    const obs::JsonValue* pipelined = field(event, "pipelined");
    ASSERT_NE(pipelined, nullptr);
    ASSERT_FALSE(pipelined->bool_or(true));
    EXPECT_EQ(int_field(event, "tat"),
              int_field(event, "vectors") * int_field(event, "period") +
                  int_field(event, "flush"));
  }
  EXPECT_GT(paths, 0u);
  ASSERT_EQ(planned, plan.cores.size());

  // The journal's per-core TAT and reservation shifts must agree with
  // the plan object itself.
  for (const soc::CoreTestPlan& core_plan : plan.cores) {
    const std::string name = system.soc->core(core_plan.core).name();
    unsigned expected_shift = 0;
    for (const auto& [port, route] : core_plan.input_routes) {
      expected_shift += route_shift(route);
    }
    for (const auto& [port, route] : core_plan.output_routes) {
      expected_shift += route_shift(route);
    }
    long long journal_shift = 0;
    long long journal_tat = -1;
    for (const obs::JsonValue& event : doc.events) {
      if (str_field(event, "core") != name) continue;
      const std::string type = str_field(event, "type");
      if (type == "ccg/route") journal_shift += int_field(event, "shift");
      if (type == "soc/core_planned") journal_tat = int_field(event, "tat");
    }
    EXPECT_EQ(journal_shift, static_cast<long long>(expected_shift)) << name;
    EXPECT_EQ(journal_tat, static_cast<long long>(core_plan.tat)) << name;
  }

  // The barcode DISPLAY test reuses the PREPROCESSOR->CPU conduit for
  // both address halves, so at least one departure must slide.
  long long display_shift = 0;
  for (const obs::JsonValue& event : doc.events) {
    if (str_field(event, "type") == "ccg/route" &&
        str_field(event, "core") == "DISPLAY") {
      display_shift += int_field(event, "shift");
    }
  }
  EXPECT_GT(display_shift, 0);
}

TEST_F(JournalTest, ExplainQueriesAnswerFromAPlanJournal) {
  obs::journal_start_memory();
  auto system = systems::make_barcode_system();
  const auto plan = soc::plan_chip_test(*system.soc, {0, 0, 0});
  obs::journal_stop();
  const obs::JournalDoc doc = load_or_die(obs::journal_jsonl());

  const std::string version = obs::explain_version(doc, "CPU");
  EXPECT_NE(version.find("explain version \"CPU\""), std::string::npos);
  EXPECT_NE(version.find("edge_class=hscan"), std::string::npos);
  EXPECT_NE(version.find("edge_class=existing"), std::string::npos);

  const std::string route = obs::explain_route(doc, "CPU");
  EXPECT_NE(route.find("explain route \"CPU\""), std::string::npos);
  EXPECT_NE(route.find("tat=" + std::to_string(plan.cores[0].tat)),
            std::string::npos);
  EXPECT_NE(route.find("period=" + std::to_string(plan.cores[0].period)),
            std::string::npos);

  const std::string mux = obs::explain_mux(doc, "CPU");
  EXPECT_NE(mux.find("total mux cost"), std::string::npos);

  // Empty matches are an answer, not an error.
  const std::string none = obs::explain_mux(doc, "NO_SUCH_CORE");
  EXPECT_NE(none.find("0 mux insertion(s)"), std::string::npos);
}

TEST_F(JournalTest, OptimizerJournalExplainsRejections) {
  auto system = systems::make_barcode_system();
  obs::journal_start_memory();
  (void)opt::minimize_tat(*system.soc, /*area_budget_cells=*/100);
  obs::journal_stop();
  const obs::JournalDoc doc = load_or_die(obs::journal_jsonl());

  std::size_t proposals = 0;
  std::size_t results = 0;
  for (const obs::JsonValue& event : doc.events) {
    const std::string type = str_field(event, "type");
    if (type == "opt/propose") {
      ++proposals;
      const std::string outcome = str_field(event, "outcome");
      EXPECT_TRUE(outcome == "best" || outcome == "rejected") << outcome;
      if (outcome == "rejected") {
        EXPECT_FALSE(str_field(event, "reason").empty());
      }
    }
    if (type == "opt/result") ++results;
  }
  EXPECT_GT(proposals, 0u);
  EXPECT_EQ(results, 1u);

  const std::string reject = obs::explain_reject(doc, "CPU", "2");
  EXPECT_NE(reject.find("explain reject \"CPU\""), std::string::npos);
  EXPECT_NE(reject.find("reason="), std::string::npos);
}

TEST_F(JournalTest, ParallelScheduleRecordsSessionColoring) {
  auto system = systems::make_barcode_system();
  const std::vector<unsigned> selection(3, 0);
  const auto plan = soc::plan_chip_test(*system.soc, selection);

  obs::journal_start_memory();
  const auto schedule =
      soc::schedule_parallel(*system.soc, selection, plan);
  obs::journal_stop();
  const obs::JournalDoc doc = load_or_die(obs::journal_jsonl());

  std::size_t places = 0;
  std::size_t new_sessions = 0;
  std::size_t conflicts = 0;
  for (const obs::JsonValue& event : doc.events) {
    const std::string type = str_field(event, "type");
    if (type == "parallel/place") {
      ++places;
      const obs::JsonValue* fresh = field(event, "new_session");
      if (fresh != nullptr && fresh->bool_or(false)) ++new_sessions;
    }
    if (type == "parallel/conflict") ++conflicts;
  }
  EXPECT_EQ(places, plan.cores.size());
  EXPECT_EQ(new_sessions, schedule.sessions.size());
  // Barcode's conduit structure forces at least one conflict edge.
  EXPECT_GT(conflicts, 0u);
}

TEST_F(JournalTest, ServiceJobsCarryCacheProvenance) {
  obs::journal_start_memory();
  service::PlanningService svc({2, 4096});
  const std::vector<std::string> lines = {
      "plan system=barcode selection=1,2,1"};
  (void)svc.run_lines(lines);
  (void)svc.run_lines(lines);  // identical job: must hit the plan cache
  obs::journal_stop();

  const obs::JournalDoc doc = load_or_die(obs::journal_jsonl());
  std::vector<std::string> cache_outcomes;
  for (const obs::JsonValue& event : doc.events) {
    if (str_field(event, "type") != "service/job") continue;
    EXPECT_EQ(str_field(event, "corr"), "job-1");
    EXPECT_EQ(str_field(event, "verb"), "plan");
    EXPECT_EQ(str_field(event, "key").size(), 16u);  // %016llx
    cache_outcomes.push_back(str_field(event, "cache"));
  }
  ASSERT_EQ(cache_outcomes.size(), 2u);
  EXPECT_EQ(cache_outcomes[0], "miss");
  EXPECT_EQ(cache_outcomes[1], "hit");
}

TEST_F(JournalTest, ServeJournalCarriesWireCorrelationIds) {
  // The daemon path: corr ids travel in the frame header, the worker
  // opens its JournalScope under them, and a journal produced by
  // `socet serve` reads exactly like a local batch one — `socet
  // explain` queries transfer unchanged.
  obs::journal_start_memory();
  {
    service::ServerOptions options;
    options.threads = 1;  // FIFO: job-1's events land before job-2's
    service::Server server(std::move(options));
    server.start();
    service::ClientOptions client_options;
    client_options.port = server.port();
    service::Client client(client_options);
    (void)client.run_lines({"plan system=barcode selection=1,2,1",
                            "plan system=barcode selection=1,2,1"});
    server.request_drain();
    server.wait();  // workers joined: every journal writer is done
  }
  obs::journal_stop();

  const obs::JournalDoc doc = load_or_die(obs::journal_jsonl());
  std::vector<std::string> corrs;
  for (const obs::JsonValue& event : doc.events) {
    if (str_field(event, "type") != "service/job") continue;
    corrs.push_back(str_field(event, "corr"));
  }
  ASSERT_EQ(corrs.size(), 2u);
  EXPECT_EQ(corrs[0], "job-1");  // the wire id, not the req-N fallback
  EXPECT_EQ(corrs[1], "job-2");

  // The plan decisions recorded under that scope surface the same id.
  const std::string route = obs::explain_route(doc, "CPU");
  EXPECT_NE(route.find("explain route \"CPU\""), std::string::npos) << route;
  EXPECT_NE(route.find("corr=job-1"), std::string::npos) << route;
}

TEST_F(JournalTest, LoadJournalRejectsMalformedDocuments) {
  obs::JournalDoc doc;
  std::string error;
  EXPECT_FALSE(obs::load_journal("not json at all", &doc, &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(obs::load_journal("{\"schema\":\"other-v9\"}\n", &doc, &error));
  EXPECT_NE(error.find("schema"), std::string::npos);
  EXPECT_FALSE(obs::load_journal(
      "{\"schema\":\"socet-journal-v1\",\"events\":1}\n{\"seq\":0}\n", &doc,
      &error));
  EXPECT_NE(error.find("type"), std::string::npos);
  // An empty journal (header only) is valid.
  EXPECT_TRUE(obs::load_journal(
      "{\"schema\":\"socet-journal-v1\",\"events\":0}\n", &doc, &error))
      << error;
  EXPECT_TRUE(doc.events.empty());
}

// ------------------------------------------------------ CLI round-trip

struct CliRun {
  int exit_code = -1;
  std::string output;
};

CliRun run_cli(const std::string& arguments) {
  const std::string command =
      std::string(SOCET_CLI_PATH) + " " + arguments + " 2>/dev/null";
  FILE* pipe = popen(command.c_str(), "r");
  EXPECT_NE(pipe, nullptr);
  CliRun run;
  char buffer[4096];
  std::size_t n = 0;
  while ((n = fread(buffer, 1, sizeof(buffer), pipe)) > 0) {
    run.output.append(buffer, n);
  }
  const int status = pclose(pipe);
  run.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return run;
}

TEST(Cli, JournalRecordAndExplainRoundTrip) {
  const std::string journal = testing::TempDir() + "socet_cli_journal.jsonl";
  const CliRun record = run_cli("plan --system barcode --journal " + journal);
  EXPECT_EQ(record.exit_code, 0);

  std::ifstream file(journal);
  ASSERT_TRUE(file.good()) << journal;
  std::string text((std::istreambuf_iterator<char>(file)),
                   std::istreambuf_iterator<char>());
  obs::JournalDoc doc;
  std::string error;
  ASSERT_TRUE(obs::load_journal(text, &doc, &error)) << error;
  EXPECT_FALSE(doc.events.empty());

  const CliRun route = run_cli("explain route CPU --journal " + journal);
  EXPECT_EQ(route.exit_code, 0);
  EXPECT_NE(route.output.find("explain route \"CPU\""), std::string::npos);
  EXPECT_NE(route.output.find("ccg/route"), std::string::npos);

  const CliRun version = run_cli("explain version CPU --journal " + journal);
  EXPECT_EQ(version.exit_code, 0);
  EXPECT_NE(version.output.find("edge_class="), std::string::npos);

  // `explain` never overwrites its input journal.
  std::ifstream again(journal);
  std::string text_after((std::istreambuf_iterator<char>(again)),
                         std::istreambuf_iterator<char>());
  EXPECT_EQ(text_after, text);

  EXPECT_EQ(run_cli("explain route CPU").exit_code, 1);  // needs --journal
  EXPECT_EQ(run_cli("explain nonsense --journal " + journal).exit_code, 1);
  std::remove(journal.c_str());
}

TEST(Cli, JournalFlagsKeepStdoutByteIdentical) {
  const CliRun plain = run_cli("plan --system barcode");
  EXPECT_EQ(plain.exit_code, 0);
  const std::string journal = testing::TempDir() + "socet_cli_ident.jsonl";
  const CliRun recorded = run_cli("plan --system barcode --journal " +
                                  journal + " --flight-recorder 64");
  EXPECT_EQ(recorded.exit_code, 0);
  EXPECT_EQ(recorded.output, plain.output);
  std::remove(journal.c_str());
}

}  // namespace
}  // namespace socet
