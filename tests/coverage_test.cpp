// Targeted tests for behaviours the module suites do not reach: the chip
// flattener, CCG naming, cell-library weighting, route bookkeeping, fault
// descriptions, and assorted error paths.
#include <gtest/gtest.h>

#include "socet/faultsim/faults.hpp"
#include "socet/gate/sim.hpp"
#include "socet/soc/flatten.hpp"
#include "socet/soc/schedule.hpp"
#include "socet/synth/elaborate.hpp"
#include "socet/systems/synthetic.hpp"
#include "socet/systems/systems.hpp"

namespace socet {
namespace {

// ---------------------------------------------------------------- flatten

TEST(Flatten, ChipHasAllPinsAndPrefixedInnards) {
  auto system = systems::make_barcode_system();
  auto flat = soc::flatten(*system.soc);
  EXPECT_EQ(flat.chip.input_ports().size(), system.soc->pis().size());
  EXPECT_EQ(flat.chip.output_ports().size(), system.soc->pos().size());
  EXPECT_NO_THROW(flat.chip.find_register("CPU.IR"));
  EXPECT_NO_THROW(flat.chip.find_register("DISPLAY.SEG6"));
  EXPECT_NO_THROW(flat.chip.find_register("PREPROCESSOR.F4"));
  ASSERT_EQ(flat.instances.size(), 3u);
  EXPECT_TRUE(flat.instances[0].port_proxies.count("Data"));
}

TEST(Flatten, FlipFlopCountIsSumOfCores) {
  auto system = systems::make_barcode_system();
  auto flat = soc::flatten(*system.soc);
  unsigned expected = 0;
  for (const auto& core : system.cores) expected += core->flip_flop_count();
  EXPECT_EQ(flat.chip.flip_flop_count(), expected);
}

TEST(Flatten, ElaboratedChipSimulates) {
  // The flattened barcode chip must at least clock without throwing and
  // respond to its reset-ish inputs.
  auto system = systems::make_barcode_system();
  auto flat = soc::flatten(*system.soc);
  auto elab = synth::elaborate(flat.chip);
  gate::SequentialSim sim(elab.gates);
  sim.reset();
  std::vector<std::uint64_t> zeros(elab.gates.inputs().size(), 0);
  for (int i = 0; i < 4; ++i) sim.step(zeros);
  SUCCEED();
}

// ------------------------------------------------------------- CCG naming

TEST(Ccg, NodeNamesReadable) {
  auto system = systems::make_barcode_system();
  soc::Ccg ccg(*system.soc, {0, 0, 0});
  std::set<std::string> names;
  for (std::uint32_t i = 0; i < ccg.nodes().size(); ++i) {
    names.insert(ccg.node_name(*system.soc, i));
  }
  EXPECT_TRUE(names.count("PI:NUM"));
  EXPECT_TRUE(names.count("PO:PO-PORT1"));
  EXPECT_TRUE(names.count("CPU.Data"));
  EXPECT_TRUE(names.count("PREPROCESSOR.DB"));
}

// ------------------------------------------------------------ cell library

TEST(CellLibrary, WeightsChangeArea) {
  auto elab = synth::elaborate(systems::make_gcd_rtl());
  gate::CellLibrary light;
  light.dff_area = 1.0;
  gate::CellLibrary heavy;
  heavy.dff_area = 10.0;
  const double delta = elab.gates.area(heavy) - elab.gates.area(light);
  EXPECT_DOUBLE_EQ(delta, 9.0 * static_cast<double>(elab.gates.dffs().size()));
  EXPECT_DOUBLE_EQ(gate::CellLibrary{}.area_of(gate::GateKind::kInput), 0.0);
  EXPECT_DOUBLE_EQ(gate::CellLibrary{}.area_of(gate::GateKind::kConst1), 0.0);
}

// ---------------------------------------------------------- route details

TEST(Routes, StepsCarryMonotoneTimes) {
  auto system = systems::make_barcode_system();
  auto plan = soc::plan_chip_test(*system.soc, {0, 0, 0});
  for (const auto& core_plan : plan.cores) {
    for (const auto& [port, route] : core_plan.input_routes) {
      unsigned cursor = 0;
      for (const auto& step : route.steps) {
        EXPECT_GE(step.depart, cursor);
        EXPECT_GE(step.arrive, step.depart);
        cursor = step.arrive;
      }
      if (!route.via_system_mux) {
        EXPECT_EQ(route.arrival, cursor);
      }
    }
  }
}

TEST(Routes, RouteHelpersRespectBannedCore) {
  auto system = systems::make_barcode_system();
  soc::Ccg ccg(*system.soc, {0, 0, 0});
  const auto disp = system.soc->find_core("DISPLAY");
  const auto d_port = system.core_named("DISPLAY").netlist().find_port("D");
  const auto target = ccg.core_in_node(soc::CorePortRef{disp, d_port});
  soc::Reservations reservations(ccg.resource_count());
  // Without banning, a route exists; banning PREPROCESSOR removes the only
  // source of D (it is fed by DB).
  const auto pre = system.soc->find_core("PREPROCESSOR");
  soc::Reservations fresh(ccg.resource_count());
  auto with = soc::route_from_pis(ccg, target, reservations, 0,
                                  static_cast<std::int32_t>(disp));
  auto without = soc::route_from_pis(ccg, target, fresh, 0,
                                     static_cast<std::int32_t>(pre));
  EXPECT_TRUE(with.has_value());
  EXPECT_FALSE(without.has_value());
}

// --------------------------------------------------------- fault describe

TEST(Faults, DescribeUsesGateNames) {
  gate::GateNetlist n("d");
  auto a = n.add_input("alpha");
  auto g = n.add_gate(gate::GateKind::kNand, {a, a}, "");
  (void)g;
  EXPECT_EQ(faultsim::describe_fault(n, {a, -1, true}), "alpha s-a-1");
  EXPECT_EQ(faultsim::describe_fault(n, {g, 0, false}), "g1/in0 s-a-0");
}

// ----------------------------------------------------- synthetic options

TEST(Synthetic, SplitOptionCreatesSplitNodes) {
  systems::SyntheticCoreOptions with;
  with.registers = 10;
  with.with_splits = true;
  systems::SyntheticCoreOptions without;
  without.registers = 10;
  without.with_splits = false;

  bool any_split = false;
  for (std::uint64_t seed = 1; seed <= 12 && !any_split; ++seed) {
    auto netlist = systems::make_synthetic_core("s", seed, with);
    transparency::Rcg rcg(netlist);
    for (const auto& node : rcg.nodes()) any_split |= node.c_split;
  }
  EXPECT_TRUE(any_split) << "no C-split produced across 12 seeds";

  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    auto netlist = systems::make_synthetic_core("s", seed, without);
    transparency::Rcg rcg(netlist);
    for (const auto& node : rcg.nodes()) {
      EXPECT_FALSE(node.c_split) << "seed " << seed;
    }
  }
}

TEST(Synthetic, SystemsScaleWithCoreCount) {
  systems::SyntheticSocOptions small;
  small.cores = 2;
  systems::SyntheticSocOptions large;
  large.cores = 8;
  auto a = systems::make_synthetic_system(3, small);
  auto b = systems::make_synthetic_system(3, large);
  EXPECT_EQ(a.soc->cores().size(), 2u);
  EXPECT_EQ(b.soc->cores().size(), 8u);
  // Both plan cleanly.
  EXPECT_NO_THROW(soc::plan_chip_test(
      *a.soc, std::vector<unsigned>(2, 0)));
  EXPECT_NO_THROW(soc::plan_chip_test(
      *b.soc, std::vector<unsigned>(8, 0)));
}

// ------------------------------------------------------------ error paths

TEST(ErrorPaths, CoreVersionOutOfRange) {
  auto system = systems::make_barcode_system();
  EXPECT_THROW(system.cores[0]->version(99), std::out_of_range);
}

TEST(ErrorPaths, CcgRequiresMatchingSelection) {
  auto system = systems::make_barcode_system();
  EXPECT_THROW(soc::Ccg(*system.soc, {0}), util::Error);
}

TEST(ErrorPaths, PlanSelectionSizeChecked) {
  auto system = systems::make_barcode_system();
  EXPECT_THROW(soc::plan_chip_test(*system.soc, {0, 0}), util::Error);
}

}  // namespace
}  // namespace socet
