#include <gtest/gtest.h>

#include "socet/gate/sim.hpp"
#include "socet/rtl/instantiate.hpp"
#include "socet/rtl/netlist.hpp"
#include "socet/synth/elaborate.hpp"

namespace socet::synth {
namespace {

using gate::GateId;
using gate::SequentialSim;
using rtl::FuKind;
using rtl::Netlist;

/// Drives the named input ports with single-pattern values and returns the
/// value of an output port after `cycles` clock edges.
class Harness {
 public:
  explicit Harness(const Netlist& rtl) : elab_(elaborate(rtl)), sim_(elab_.gates) {
    sim_.reset();
  }

  void set(const std::string& port, std::uint64_t value) {
    drive_[port] = value;
  }

  void step() {
    std::vector<std::uint64_t> words(elab_.gates.inputs().size(), 0);
    for (const auto& [port, bits] : elab_.input_bits) {
      const std::uint64_t value = drive_.count(port) ? drive_.at(port) : 0;
      for (std::size_t b = 0; b < bits.size(); ++b) {
        words[input_pos(bits[b])] = (value >> b) & 1 ? ~0ULL : 0;
      }
    }
    sim_.step(words);
  }

  std::uint64_t out(const std::string& port) const {
    std::uint64_t value = 0;
    const auto& bits = elab_.output_bits.at(port);
    for (std::size_t b = 0; b < bits.size(); ++b) {
      value |= (sim_.value(bits[b]) & 1) << b;
    }
    return value;
  }

  const Elaboration& elab() const { return elab_; }

 private:
  std::size_t input_pos(GateId id) const {
    const auto& inputs = elab_.gates.inputs();
    for (std::size_t i = 0; i < inputs.size(); ++i) {
      if (inputs[i] == id) return i;
    }
    throw std::logic_error("input gate not found");
  }

  Elaboration elab_;
  SequentialSim sim_;
  std::map<std::string, std::uint64_t> drive_;
};

// ----------------------------------------------------------- combinational

TEST(Elaborate, AdderComputesSum) {
  Netlist n("add");
  auto a = n.add_input("A", 8);
  auto b = n.add_input("B", 8);
  auto z = n.add_output("Z", 8);
  auto add = n.add_fu("ADD", FuKind::kAdd, 8, 2);
  n.connect(n.pin(a), n.fu_in(add, 0));
  n.connect(n.pin(b), n.fu_in(add, 1));
  n.connect(n.fu_out(add), n.pin(z));

  Harness h(n);
  h.set("A", 100);
  h.set("B", 55);
  h.step();
  EXPECT_EQ(h.out("Z"), 155u);
  h.set("A", 200);
  h.set("B", 100);
  h.step();
  EXPECT_EQ(h.out("Z"), (200u + 100u) & 0xFF);  // wraps
}

TEST(Elaborate, SubtractorAndIncrement) {
  Netlist n("arith");
  auto a = n.add_input("A", 8);
  auto b = n.add_input("B", 8);
  auto zs = n.add_output("DIFF", 8);
  auto zi = n.add_output("INC", 8);
  auto sub = n.add_fu("SUB", FuKind::kSub, 8, 2);
  auto inc = n.add_fu("INC", FuKind::kIncrement, 8, 1);
  n.connect(n.pin(a), n.fu_in(sub, 0));
  n.connect(n.pin(b), n.fu_in(sub, 1));
  n.connect(n.fu_out(sub), n.pin(zs));
  n.connect(n.pin(a), n.fu_in(inc, 0));
  n.connect(n.fu_out(inc), n.pin(zi));

  Harness h(n);
  h.set("A", 77);
  h.set("B", 33);
  h.step();
  EXPECT_EQ(h.out("DIFF"), 44u);
  EXPECT_EQ(h.out("INC"), 78u);
  h.set("A", 10);
  h.set("B", 20);
  h.step();
  EXPECT_EQ(h.out("DIFF"), (10u - 20u) & 0xFF);
  h.set("A", 255);
  h.step();
  EXPECT_EQ(h.out("INC"), 0u);  // wraps
}

TEST(Elaborate, Comparators) {
  Netlist n("cmp");
  auto a = n.add_input("A", 4);
  auto b = n.add_input("B", 4);
  auto ze = n.add_output("EQ", 1);
  auto zl = n.add_output("LT", 1);
  auto eq = n.add_fu("EQ", FuKind::kEqual, 4, 2);
  auto lt = n.add_fu("LT", FuKind::kLess, 4, 2);
  n.connect(n.pin(a), n.fu_in(eq, 0));
  n.connect(n.pin(b), n.fu_in(eq, 1));
  n.connect(n.fu_out(eq), n.pin(ze));
  n.connect(n.pin(a), n.fu_in(lt, 0));
  n.connect(n.pin(b), n.fu_in(lt, 1));
  n.connect(n.fu_out(lt), n.pin(zl));

  Harness h(n);
  for (auto [av, bv] : {std::pair{3u, 3u}, {2u, 9u}, {9u, 2u}, {0u, 0u}}) {
    h.set("A", av);
    h.set("B", bv);
    h.step();
    EXPECT_EQ(h.out("EQ"), av == bv ? 1u : 0u) << av << " vs " << bv;
    EXPECT_EQ(h.out("LT"), av < bv ? 1u : 0u) << av << " vs " << bv;
  }
}

TEST(Elaborate, AluOps) {
  Netlist n("alu");
  auto a = n.add_input("A", 8);
  auto b = n.add_input("B", 8);
  auto op = n.add_input("OP", 2, rtl::PortKind::kControl);
  auto z = n.add_output("Z", 8);
  auto alu = n.add_fu("ALU", FuKind::kAlu, 8, 3);
  n.connect(n.pin(a), n.fu_in(alu, 0));
  n.connect(n.pin(b), n.fu_in(alu, 1));
  n.connect(n.pin(op), n.fu_in(alu, 2));
  n.connect(n.fu_out(alu), n.pin(z));

  Harness h(n);
  h.set("A", 0b1100);
  h.set("B", 0b1010);
  h.set("OP", 0);  // add
  h.step();
  EXPECT_EQ(h.out("Z"), 0b1100u + 0b1010u);
  h.set("OP", 1);  // and
  h.step();
  EXPECT_EQ(h.out("Z"), 0b1000u);
  h.set("OP", 2);  // or
  h.step();
  EXPECT_EQ(h.out("Z"), 0b1110u);
  h.set("OP", 3);  // xor
  h.step();
  EXPECT_EQ(h.out("Z"), 0b0110u);
}

TEST(Elaborate, ShiftsAreWiring) {
  Netlist n("sh");
  auto a = n.add_input("A", 4);
  auto zl = n.add_output("L", 4);
  auto zr = n.add_output("R", 4);
  auto sl = n.add_fu("SL", FuKind::kShiftLeft, 4, 1);
  auto sr = n.add_fu("SR", FuKind::kShiftRight, 4, 1);
  n.connect(n.pin(a), n.fu_in(sl, 0));
  n.connect(n.fu_out(sl), n.pin(zl));
  n.connect(n.pin(a), n.fu_in(sr, 0));
  n.connect(n.fu_out(sr), n.pin(zr));

  Harness h(n);
  h.set("A", 0b0110);
  h.step();
  EXPECT_EQ(h.out("L"), 0b1100u);
  EXPECT_EQ(h.out("R"), 0b0011u);
}

// ------------------------------------------------------------------- muxes

TEST(Elaborate, MuxSelectsBySelectValue) {
  Netlist n("mux");
  auto a = n.add_input("A", 8);
  auto b = n.add_input("B", 8);
  auto c = n.add_input("C", 8);
  auto sel = n.add_input("SEL", 2, rtl::PortKind::kControl);
  auto z = n.add_output("Z", 8);
  auto m = n.add_mux("M", 8, 3);
  n.connect(n.pin(a), n.mux_in(m, 0));
  n.connect(n.pin(b), n.mux_in(m, 1));
  n.connect(n.pin(c), n.mux_in(m, 2));
  n.connect(n.pin(sel), n.mux_select(m));
  n.connect(n.mux_out(m), n.pin(z));

  Harness h(n);
  h.set("A", 11);
  h.set("B", 22);
  h.set("C", 33);
  for (auto [s, expect] : {std::pair{0u, 11u}, {1u, 22u}, {2u, 33u}}) {
    h.set("SEL", s);
    h.step();
    EXPECT_EQ(h.out("Z"), expect);
  }
  h.set("SEL", 3);  // unmapped select: all decode terms off -> 0
  h.step();
  EXPECT_EQ(h.out("Z"), 0u);
}

// --------------------------------------------------------------- registers

TEST(Elaborate, RegisterLoadEnableHoldsValue) {
  Netlist n("reg");
  auto d = n.add_input("D", 8);
  auto ld = n.add_input("LD", 1, rtl::PortKind::kControl);
  auto z = n.add_output("Q", 8);
  auto r = n.add_register("R", 8);
  n.connect(n.pin(d), n.reg_d(r));
  n.connect(n.pin(ld), n.reg_load(r));
  n.connect(n.reg_q(r), n.pin(z));

  Harness h(n);
  h.set("D", 42);
  h.set("LD", 1);
  h.step();  // captured
  h.set("D", 99);
  h.set("LD", 0);
  h.step();  // held
  EXPECT_EQ(h.out("Q"), 42u);
  h.set("LD", 1);
  h.step();
  EXPECT_EQ(h.out("Q"), 99u);
}

TEST(Elaborate, RegisterWithoutEnableLoadsEveryCycle) {
  Netlist n("reg");
  auto d = n.add_input("D", 4);
  auto z = n.add_output("Q", 4);
  auto r = n.add_register("R", 4, /*has_load_enable=*/false);
  n.connect(n.pin(d), n.reg_d(r));
  n.connect(n.reg_q(r), n.pin(z));

  Harness h(n);
  h.set("D", 5);
  h.step();
  EXPECT_EQ(h.out("Q"), 5u);
  h.set("D", 9);
  h.step();
  EXPECT_EQ(h.out("Q"), 9u);
}

TEST(Elaborate, SlicedRegisterWrites) {
  Netlist n("slice");
  auto hi = n.add_input("HI", 4);
  auto lo = n.add_input("LO", 4);
  auto z = n.add_output("Q", 8);
  auto r = n.add_register("R", 8, /*has_load_enable=*/false);
  n.connect(n.pin(hi), 0, n.reg_d(r), 4, 4);
  n.connect(n.pin(lo), 0, n.reg_d(r), 0, 4);
  n.connect(n.reg_q(r), n.pin(z));

  Harness h(n);
  h.set("HI", 0xA);
  h.set("LO", 0x5);
  h.step();
  EXPECT_EQ(h.out("Q"), 0xA5u);
}

TEST(Elaborate, UndrivenRegisterBitsHold) {
  Netlist n("hold");
  auto lo = n.add_input("LO", 4);
  auto z = n.add_output("Q", 8);
  auto r = n.add_register("R", 8, /*has_load_enable=*/false);
  n.connect(n.pin(lo), 0, n.reg_d(r), 0, 4);  // high nibble never written
  n.connect(n.reg_q(r), n.pin(z));

  Harness h(n);
  h.set("LO", 0xF);
  h.step();
  EXPECT_EQ(h.out("Q"), 0x0Fu);  // high nibble stays 0
}

// ----------------------------------------------------------- random logic

TEST(Elaborate, RandomLogicDeterministicAndSized) {
  Netlist n("ctrl");
  auto in = n.add_input("IN", 8);
  auto z = n.add_output("OUT", 4);
  auto cloud = n.add_random_logic("FSM", 8, 4, 60, /*seed=*/7);
  n.connect(n.pin(in), n.fu_in(cloud, 0));
  n.connect(n.fu_out(cloud), n.pin(z));

  auto e1 = elaborate(n);
  auto e2 = elaborate(n);
  EXPECT_EQ(e1.gates.gate_count(), e2.gates.gate_count());
  // The cloud contributes ~60 gates.
  EXPECT_GE(e1.gates.cell_count(), 60u);
  EXPECT_NO_THROW(e1.gates.topo_order());
}

TEST(Elaborate, RandomLogicRespondsToInputs) {
  Netlist n("ctrl");
  auto in = n.add_input("IN", 8);
  auto z = n.add_output("OUT", 4);
  auto cloud = n.add_random_logic("FSM", 8, 4, 80, /*seed=*/3);
  n.connect(n.pin(in), n.fu_in(cloud, 0));
  n.connect(n.fu_out(cloud), n.pin(z));

  Harness h(n);
  std::set<std::uint64_t> seen;
  for (unsigned v = 0; v < 256; ++v) {
    h.set("IN", v);
    h.step();
    seen.insert(h.out("OUT"));
  }
  EXPECT_GT(seen.size(), 1u) << "control cloud is input-independent";
}

// ------------------------------------------------------------ integration

TEST(Elaborate, InstantiatedCoresSimulateAcrossBoundary) {
  // Core: one registered increment stage.
  Netlist core("inc_core");
  auto ci = core.add_input("IN", 8);
  auto co = core.add_output("OUT", 8);
  auto r = core.add_register("R", 8, /*has_load_enable=*/false);
  auto inc = core.add_fu("INC", FuKind::kIncrement, 8, 1);
  core.connect(core.pin(ci), core.fu_in(inc, 0));
  core.connect(core.fu_out(inc), core.reg_d(r));
  core.connect(core.reg_q(r), core.pin(co));

  // Chip: two cores in series.
  Netlist chip("chip");
  auto pi = chip.add_input("PI", 8);
  auto po = chip.add_output("PO", 8);
  auto u0 = rtl::instantiate(chip, core, "U0");
  auto u1 = rtl::instantiate(chip, core, "U1");
  chip.connect(chip.pin(pi), chip.fu_in(u0.port_proxies.at("IN"), 0));
  chip.connect(chip.fu_out(u0.port_proxies.at("OUT")),
               chip.fu_in(u1.port_proxies.at("IN"), 0));
  chip.connect(chip.fu_out(u1.port_proxies.at("OUT")), chip.pin(po));
  chip.validate();

  Harness h(chip);
  h.set("PI", 10);
  h.step();  // U0.R = 11
  h.step();  // U1.R = 12
  EXPECT_EQ(h.out("PO"), 12u);
}

TEST(Elaborate, PortProxiesAddNoArea) {
  Netlist core("c");
  auto i = core.add_input("I", 8);
  auto o = core.add_output("O", 8);
  auto r = core.add_register("R", 8, false);
  core.connect(core.pin(i), core.reg_d(r));
  core.connect(core.reg_q(r), core.pin(o));

  Netlist chip("chip");
  auto pi = chip.add_input("PI", 8);
  auto po = chip.add_output("PO", 8);
  auto u = rtl::instantiate(chip, core, "U");
  chip.connect(chip.pin(pi), chip.fu_in(u.port_proxies.at("I"), 0));
  chip.connect(chip.fu_out(u.port_proxies.at("O")), chip.pin(po));

  auto core_elab = elaborate(core);
  auto chip_elab = elaborate(chip);
  EXPECT_EQ(core_elab.gates.cell_count(), chip_elab.gates.cell_count());
}

}  // namespace
}  // namespace socet::synth
