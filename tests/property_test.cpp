// Property suites: randomized invariants across the stack.
//
//   * the gate-level elaboration of a core behaves cycle-for-cycle like
//     the RTL interpreter (the elaborator is cross-validated, not trusted);
//   * HSCAN always covers every register exactly once and its cost
//     bookkeeping adds up;
//   * version menus are monotone ladders and cover every port;
//   * PODEM's patterns really detect their target under the independent
//     fault simulator, and faults it proves untestable resist random
//     patterns;
//   * physically inserted scan chains actually shift.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "socet/atpg/atpg.hpp"
#include "socet/atpg/sequential.hpp"
#include "socet/bist/march.hpp"
#include "socet/core/serialize.hpp"
#include "socet/gate/sim.hpp"
#include "socet/rtl/text.hpp"
#include "socet/hscan/hscan.hpp"
#include "socet/rtl/interpreter.hpp"
#include "socet/synth/elaborate.hpp"
#include "socet/systems/synthetic.hpp"
#include "socet/transparency/versions.hpp"
#include "socet/util/rng.hpp"

namespace socet {
namespace {

using systems::SyntheticCoreOptions;
using systems::make_synthetic_core;

class SeededProperty : public ::testing::TestWithParam<std::uint64_t> {};

// ------------------------------------------------ gate vs RTL equivalence

TEST_P(SeededProperty, ElaborationMatchesInterpreter) {
  SyntheticCoreOptions options;
  options.registers = 5;
  options.with_cloud = false;  // interpreter cannot evaluate clouds
  auto netlist = make_synthetic_core("eq", GetParam(), options);

  auto elab = synth::elaborate(netlist);
  gate::SequentialSim gate_sim(elab.gates);
  gate_sim.reset();
  rtl::Interpreter rtl_sim(netlist);
  rtl_sim.reset();

  util::Rng rng(GetParam() ^ 0xE0);
  const auto in_ports = netlist.input_ports();
  for (int cycle = 0; cycle < 24; ++cycle) {
    // Common random stimulus.
    std::map<std::string, util::BitVector> stimulus;
    for (rtl::PortId port : in_ports) {
      stimulus[netlist.port(port).name] =
          util::BitVector::random(netlist.port(port).width, rng);
    }
    std::vector<std::uint64_t> words(elab.gates.inputs().size(), 0);
    std::size_t cursor = 0;
    for (const auto& [name, bits] : elab.input_bits) {
      const auto& value = stimulus.at(name);
      for (std::size_t b = 0; b < bits.size(); ++b) {
        // Locate this gate's position in the inputs() list.
        for (std::size_t i = 0; i < elab.gates.inputs().size(); ++i) {
          if (elab.gates.inputs()[i] == bits[b]) {
            words[i] = value.get(b) ? ~0ULL : 0;
            break;
          }
        }
      }
      ++cursor;
    }
    for (const auto& [name, value] : stimulus) {
      rtl_sim.set_input(name, value);
    }
    gate_sim.step(words);
    rtl_sim.step();

    for (rtl::PortId port : netlist.output_ports()) {
      const auto& name = netlist.port(port).name;
      const auto expected = rtl_sim.output(name);
      const auto& bits = elab.output_bits.at(name);
      for (std::size_t b = 0; b < bits.size(); ++b) {
        ASSERT_EQ((gate_sim.value(bits[b]) & 1) != 0, expected.get(b))
            << "seed " << GetParam() << " cycle " << cycle << " " << name
            << "[" << b << "]";
      }
    }
  }
}

// -------------------------------------------------------- HSCAN invariants

TEST_P(SeededProperty, HscanCoversRegistersExactlyOnce) {
  SyntheticCoreOptions options;
  options.registers = 8;
  auto netlist = make_synthetic_core("hs", GetParam(), options);
  auto config = hscan::build_hscan(netlist);

  std::set<unsigned> seen;
  unsigned link_cost_sum = 0;
  unsigned max_depth = 0;
  for (const auto& chain : config.chains) {
    EXPECT_FALSE(chain.registers.empty());
    EXPECT_EQ(chain.links.size(), chain.registers.size() + 1)
        << "head link + per-register links + tail link";
    for (auto reg : chain.registers) {
      EXPECT_TRUE(seen.insert(reg.value()).second)
          << "register on two chains (seed " << GetParam() << ")";
    }
    for (const auto& link : chain.links) link_cost_sum += link.cost_cells;
    max_depth = std::max(max_depth, chain.depth());
  }
  EXPECT_EQ(seen.size(), netlist.registers().size());
  EXPECT_EQ(config.overhead_cells, link_cost_sum);
  EXPECT_EQ(config.max_depth, max_depth);
  EXPECT_EQ(config.vector_multiplier(), max_depth + 1);
}

TEST_P(SeededProperty, HscanReusedEdgesAreRealPaths) {
  auto netlist = make_synthetic_core("hs2", GetParam(), {});
  auto config = hscan::build_hscan(netlist);
  const auto paths = rtl::enumerate_transfer_paths(netlist);
  for (const auto& [from, to] : config.reused_edges) {
    bool exists = false;
    for (const auto& path : paths) {
      exists |= path.src == from && path.dst == to;
    }
    EXPECT_TRUE(exists) << "reused edge is not an existing transfer path";
  }
}

// ------------------------------------------------------- version invariants

TEST_P(SeededProperty, VersionMenusAreMonotoneLadders) {
  SyntheticCoreOptions options;
  options.registers = 7;
  auto netlist = make_synthetic_core("vm", GetParam(), options);
  auto hs = hscan::build_hscan(netlist);
  transparency::Rcg rcg(netlist, &hs);
  auto versions = transparency::standard_versions(rcg);

  ASSERT_EQ(versions.size(), 3u);
  for (std::size_t v = 1; v < versions.size(); ++v) {
    EXPECT_GT(versions[v].extra_cells, versions[v - 1].extra_cells);
    for (const auto& edge : versions[v - 1].edges) {
      auto now = versions[v].latency(edge.input, edge.output);
      ASSERT_TRUE(now.has_value())
          << "pair lost on upgrade (seed " << GetParam() << ")";
      EXPECT_LE(*now, edge.latency);
    }
  }
  for (const auto& edge : versions.back().edges) {
    EXPECT_EQ(edge.latency, 1u) << "minimum-latency version above 1 cycle";
  }
}

TEST_P(SeededProperty, EveryPortTransparentInEveryVersion) {
  auto netlist = make_synthetic_core("tp", GetParam(), {});
  auto hs = hscan::build_hscan(netlist);
  transparency::Rcg rcg(netlist, &hs);
  auto versions = transparency::standard_versions(rcg);
  for (const auto& version : versions) {
    for (rtl::PortId in : netlist.input_ports()) {
      bool covered = false;
      for (const auto& edge : version.edges) covered |= edge.input == in;
      EXPECT_TRUE(covered) << netlist.port(in).name;
    }
    for (rtl::PortId out : netlist.output_ports()) {
      bool covered = false;
      for (const auto& edge : version.edges) covered |= edge.output == out;
      EXPECT_TRUE(covered) << netlist.port(out).name;
    }
  }
}

// ----------------------------------------------------- RCG edge soundness

TEST_P(SeededProperty, RcgEdgesComeFromTransferPathsOrScanMuxes) {
  auto netlist = make_synthetic_core("rcg", GetParam(), {});
  auto hs = hscan::build_hscan(netlist);
  transparency::Rcg rcg(netlist, &hs);
  const auto paths = rtl::enumerate_transfer_paths(netlist);
  for (const auto& edge : rcg.edges()) {
    const auto& src = rcg.node(edge.src).ref;
    const auto& dst = rcg.node(edge.dst).ref;
    bool from_path = false;
    for (const auto& path : paths) {
      from_path |= path.src == src && path.dst == dst;
    }
    bool from_scan_mux = false;
    for (const auto& [from, to] : hs.added_links) {
      from_scan_mux |= from == src && to == dst;
    }
    EXPECT_TRUE(from_path || from_scan_mux)
        << "phantom RCG edge (seed " << GetParam() << ")";
  }
}

// --------------------------------------------- PODEM vs fault simulation

/// Random combinational gate circuit.
gate::GateNetlist make_random_gates(std::uint64_t seed, unsigned inputs,
                                    unsigned gates) {
  util::Rng rng(seed);
  gate::GateNetlist n("rand");
  std::vector<gate::GateId> pool;
  for (unsigned i = 0; i < inputs; ++i) pool.push_back(n.add_input("i"));
  static constexpr gate::GateKind kinds[] = {
      gate::GateKind::kAnd, gate::GateKind::kOr, gate::GateKind::kNand,
      gate::GateKind::kNor, gate::GateKind::kXor, gate::GateKind::kNot};
  for (unsigned g = 0; g < gates; ++g) {
    const auto kind = kinds[rng.next_below(6)];
    const auto a = pool[rng.next_below(pool.size())];
    if (kind == gate::GateKind::kNot) {
      pool.push_back(n.add_gate(kind, {a}));
    } else {
      auto b = pool[rng.next_below(pool.size())];
      if (a == b) {
        pool.push_back(n.add_gate(gate::GateKind::kNot, {a}));
      } else {
        pool.push_back(n.add_gate(kind, {a, b}));
      }
    }
  }
  // Observe the last few gates.
  for (unsigned o = 0; o < 4 && o < pool.size(); ++o) {
    n.mark_output(pool[pool.size() - 1 - o]);
  }
  return n;
}

TEST_P(SeededProperty, PodemPatternsVerifiedByFaultSim) {
  auto n = make_random_gates(GetParam(), 8, 60);
  auto faults = faultsim::enumerate_faults(n);
  faultsim::ScanFaultSim sim(n);
  unsigned found = 0;
  unsigned untestable = 0;
  for (std::size_t fi = 0; fi < faults.size() && fi < 120; ++fi) {
    auto result = atpg::podem(n, faults[fi], {.backtrack_limit = 2000});
    if (result.outcome == atpg::PodemResult::Outcome::kFound) {
      ++found;
      std::vector<faultsim::FaultStatus> statuses(
          faults.size(), faultsim::FaultStatus::kUntestable);
      statuses[fi] = faultsim::FaultStatus::kUndetected;
      sim.run(faults, {result.pattern}, statuses);
      EXPECT_EQ(statuses[fi], faultsim::FaultStatus::kDetected)
          << describe_fault(n, faults[fi]) << " seed " << GetParam();
    } else if (result.outcome == atpg::PodemResult::Outcome::kUntestable) {
      ++untestable;
      // An untestable fault must resist plenty of random patterns.
      util::Rng rng(GetParam() ^ 0xBADF);
      std::vector<faultsim::ScanPattern> patterns;
      for (int p = 0; p < 128; ++p) {
        faultsim::ScanPattern pattern;
        pattern.pi = util::BitVector::random(n.inputs().size(), rng);
        pattern.ppi = util::BitVector(0);
        patterns.push_back(std::move(pattern));
      }
      std::vector<faultsim::FaultStatus> statuses(
          faults.size(), faultsim::FaultStatus::kUntestable);
      statuses[fi] = faultsim::FaultStatus::kUndetected;
      sim.run(faults, patterns, statuses);
      EXPECT_NE(statuses[fi], faultsim::FaultStatus::kDetected)
          << "PODEM called a testable fault redundant: "
          << describe_fault(n, faults[fi]) << " seed " << GetParam();
    }
  }
  EXPECT_GT(found, 0u);
}

TEST_P(SeededProperty, ScanAndSequentialSimsAgreeOnCombinational) {
  auto n = make_random_gates(GetParam() ^ 0x51, 6, 40);
  auto faults = faultsim::enumerate_faults(n);
  std::vector<faultsim::FaultStatus> scan_status(
      faults.size(), faultsim::FaultStatus::kUndetected);
  std::vector<faultsim::FaultStatus> seq_status(
      faults.size(), faultsim::FaultStatus::kUndetected);

  util::Rng rng(GetParam() ^ 0x52);
  std::vector<faultsim::ScanPattern> patterns;
  std::vector<util::BitVector> sequence;
  for (int p = 0; p < 48; ++p) {
    auto bits = util::BitVector::random(n.inputs().size(), rng);
    faultsim::ScanPattern pattern;
    pattern.pi = bits;
    pattern.ppi = util::BitVector(0);
    patterns.push_back(std::move(pattern));
    sequence.push_back(std::move(bits));
  }
  faultsim::ScanFaultSim scan(n);
  scan.run(faults, patterns, scan_status);
  faultsim::SequentialFaultSim seq(n);
  seq.run(faults, sequence, seq_status);
  EXPECT_EQ(scan_status, seq_status) << "seed " << GetParam();
}

// --------------------------------------------------- physical scan chains

TEST_P(SeededProperty, InsertedScanChainsShift) {
  SyntheticCoreOptions options;
  options.registers = 5;
  auto netlist = make_synthetic_core("scan", GetParam(), options);
  auto config = hscan::build_hscan(netlist);

  synth::ScanOptions scan;
  for (const auto& chain : config.chains) {
    synth::ScanOptions::Chain spec;
    spec.registers = chain.registers;
    spec.scan_in = netlist.pin(chain.head);
    scan.chains.push_back(std::move(spec));
  }
  auto elab = synth::elaborate_with_scan(netlist, scan);

  // Drive ScanEnable = 1 and a known value on the first chain's head; the
  // value must reach the chain's k-th register after k cycles.
  gate::SequentialSim sim(elab.gates);
  sim.reset();
  const auto& chain = config.chains.front();
  const auto& head_name = netlist.port(chain.head).name;

  auto drive = [&](bool bit_value) {
    std::vector<std::uint64_t> words(elab.gates.inputs().size(), 0);
    for (std::size_t i = 0; i < elab.gates.inputs().size(); ++i) {
      const auto& name = elab.gates.gate(elab.gates.inputs()[i]).name;
      if (name == "ScanEnable") words[i] = ~0ULL;
      if (name.rfind(head_name + "[", 0) == 0) {
        words[i] = bit_value ? ~0ULL : 0;
      }
    }
    sim.step(words);
  };

  // Shift an all-ones frame through the chain.
  for (std::size_t k = 0; k < chain.registers.size(); ++k) drive(true);
  for (std::size_t k = 0; k < chain.registers.size(); ++k) {
    const auto& dffs = elab.register_bits[chain.registers[k].index()];
    EXPECT_NE(sim.value(dffs[0]) & 1, 0u)
        << "chain register " << k << " did not receive the shifted 1 (seed "
        << GetParam() << ")";
  }
}

// --------------------------------------------- unrolling vs sequential sim

/// Random *sequential* gate circuit (the combinational generator plus a
/// few feedback flip-flops).
gate::GateNetlist make_random_sequential(std::uint64_t seed, unsigned inputs,
                                         unsigned gates, unsigned dffs) {
  util::Rng rng(seed);
  gate::GateNetlist n("seq");
  std::vector<gate::GateId> pool;
  std::vector<gate::GateId> state;
  for (unsigned i = 0; i < inputs; ++i) pool.push_back(n.add_input("i"));
  for (unsigned d = 0; d < dffs; ++d) {
    state.push_back(n.add_dff_floating("s"));
    pool.push_back(state.back());
  }
  static constexpr gate::GateKind kinds[] = {
      gate::GateKind::kAnd, gate::GateKind::kOr, gate::GateKind::kNand,
      gate::GateKind::kNor, gate::GateKind::kXor, gate::GateKind::kNot};
  for (unsigned g = 0; g < gates; ++g) {
    const auto kind = kinds[rng.next_below(6)];
    const auto a = pool[rng.next_below(pool.size())];
    if (kind == gate::GateKind::kNot) {
      pool.push_back(n.add_gate(kind, {a}));
    } else {
      auto b = pool[rng.next_below(pool.size())];
      if (a == b) {
        pool.push_back(n.add_gate(gate::GateKind::kNot, {a}));
      } else {
        pool.push_back(n.add_gate(kind, {a, b}));
      }
    }
  }
  for (unsigned d = 0; d < dffs; ++d) {
    n.set_dff_input(state[d], pool[pool.size() - 1 - d]);
  }
  for (unsigned o = 0; o < 3; ++o) {
    n.mark_output(pool[pool.size() - 1 - rng.next_below(pool.size() / 2)]);
  }
  return n;
}

TEST_P(SeededProperty, UnrollMatchesSequentialSim) {
  auto n = make_random_sequential(GetParam() ^ 0x1111, 4, 30, 3);
  constexpr unsigned kFrames = 5;
  auto unrolled = atpg::unroll(n, kFrames);

  util::Rng rng(GetParam() ^ 0x2222);
  // Same stimulus both ways.
  std::vector<std::vector<bool>> stimulus(kFrames,
                                          std::vector<bool>(4, false));
  for (auto& frame : stimulus) {
    for (std::size_t i = 0; i < 4; ++i) frame[i] = rng.next_bool();
  }

  std::vector<std::uint64_t> values(unrolled.netlist.gate_count(), 0);
  for (unsigned f = 0; f < kFrames; ++f) {
    for (std::size_t i = 0; i < 4; ++i) {
      values[unrolled.pi_map[f][i].index()] = stimulus[f][i] ? ~0ULL : 0;
    }
  }
  gate::eval_comb(unrolled.netlist, values);

  gate::SequentialSim sim(n);
  sim.reset();
  // SequentialSim shows post-edge values; the unrolled frame f computes
  // the pre-capture view of cycle f, which equals the post-edge view of
  // cycle f-1 extended with frame f's inputs.  Compare at the original
  // gates' frame images directly: frame f of any *combinational* gate must
  // equal the value SequentialSim computes during cycle f (pre-capture).
  // We therefore re-implement the pre-capture readout via a fresh sim on
  // each prefix: cheaper here to just compare POs of frame f against a
  // manual state recurrence.
  std::vector<std::uint64_t> prefix_values(n.gate_count(), 0);
  std::vector<std::uint64_t> state(n.dffs().size(), 0);
  for (unsigned f = 0; f < kFrames; ++f) {
    for (std::size_t i = 0; i < n.inputs().size(); ++i) {
      prefix_values[n.inputs()[i].index()] = stimulus[f][i] ? ~0ULL : 0;
    }
    for (std::size_t d = 0; d < n.dffs().size(); ++d) {
      prefix_values[n.dffs()[d].index()] = state[d];
    }
    gate::eval_comb(n, prefix_values);
    for (std::size_t o = 0; o < n.outputs().size(); ++o) {
      const auto frame_po =
          unrolled.netlist.outputs()[f * n.outputs().size() + o];
      ASSERT_EQ(values[frame_po.index()] & 1,
                prefix_values[n.outputs()[o].index()] & 1)
          << "seed " << GetParam() << " frame " << f << " po " << o;
    }
    for (std::size_t d = 0; d < n.dffs().size(); ++d) {
      state[d] = prefix_values[n.gate(n.dffs()[d]).fanin[0].index()];
    }
  }
}

// ------------------------------------------------------------- BIST sweep

TEST_P(SeededProperty, MarchCMinusCatchesRandomFaults) {
  util::Rng rng(GetParam() ^ 0xB157);
  for (int trial = 0; trial < 6; ++trial) {
    bist::FaultyMemory mem(64, 8);
    bist::MemFault fault;
    const auto kind = rng.next_below(3);
    fault.kind = kind == 0   ? bist::MemFaultKind::kStuckAt
                 : kind == 1 ? bist::MemFaultKind::kTransition
                             : bist::MemFaultKind::kCouplingIdempotent;
    fault.address = static_cast<std::uint32_t>(rng.next_below(64));
    fault.bit = static_cast<unsigned>(rng.next_below(8));
    fault.value = rng.next_bool();
    if (fault.kind == bist::MemFaultKind::kCouplingIdempotent) {
      do {
        fault.aggressor_address =
            static_cast<std::uint32_t>(rng.next_below(64));
        fault.aggressor_bit = static_cast<unsigned>(rng.next_below(8));
      } while (fault.aggressor_address == fault.address &&
               fault.aggressor_bit == fault.bit);
      fault.aggressor_rising = rng.next_bool();
    }
    mem.inject(fault);
    EXPECT_FALSE(bist::run_march(mem, bist::march_c_minus()).pass)
        << "seed " << GetParam() << " trial " << trial;
  }
}

// --------------------------------------------------- serialization sweeps

TEST_P(SeededProperty, RtlTextRoundTripsOnSyntheticCores) {
  auto original = make_synthetic_core("rt", GetParam(), {});
  auto restored = rtl::parse_netlist(rtl::serialize_netlist(original));
  EXPECT_EQ(rtl::serialize_netlist(restored),
            rtl::serialize_netlist(original));
  restored.validate();
}

TEST_P(SeededProperty, CoreInterfaceRoundTripsOnSyntheticCores) {
  auto prepared = core::Core::prepare(make_synthetic_core("ci", GetParam(), {}));
  prepared.set_scan_vectors(static_cast<unsigned>(GetParam() % 97 + 1));
  const auto text = core::serialize_interface(prepared);
  auto restored = core::Core::from_interface(core::parse_interface(text));
  EXPECT_EQ(core::serialize_interface(restored), text);
  EXPECT_EQ(restored.hscan_vectors(), prepared.hscan_vectors());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeededProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

}  // namespace
}  // namespace socet
