// End-to-end integration: every stage of the SOCET flow composed on a
// fresh two-core SOC that enters the library as *text* (the way a user's
// design data would), plus whole-flow determinism checks on the paper
// systems.
#include <gtest/gtest.h>

#include "socet/atpg/atpg.hpp"
#include "socet/core/serialize.hpp"
#include "socet/emit/verilog.hpp"
#include "socet/opt/optimize.hpp"
#include "socet/rtl/text.hpp"
#include "socet/soc/controller.hpp"
#include "socet/soc/parallel.hpp"
#include "socet/soc/testprogram.hpp"
#include "socet/soc/validate.hpp"
#include "socet/synth/elaborate.hpp"
#include "socet/systems/systems.hpp"

namespace socet {
namespace {

// Two small cores, written as the text format a user repository would
// hold.
constexpr const char* kProducerRtl = R"(socet-rtl v1
netlist PRODUCER
input SAMPLE data 8
input Gate control 1
input Mode control 1
output FILTERED data 8
register S1 8 load
register S2 8 noload
mux m_s1 8 2
fu AVG add 8 2
connect port:SAMPLE 0 -> mux:m_s1.in0 0 8
connect fu:AVG.out 0 -> mux:m_s1.in1 0 8
connect mux:m_s1.out 0 -> reg:S1.d 0 8
connect port:Gate 0 -> reg:S1.load 0 1
connect port:Mode 0 -> mux:m_s1.sel 0 1
connect reg:S1.q 0 -> reg:S2.d 0 8
connect reg:S1.q 0 -> fu:AVG.in0 0 8
connect reg:S2.q 0 -> fu:AVG.in1 0 8
connect reg:S2.q 0 -> port:FILTERED 0 8
end
)";

constexpr const char* kConsumerRtl = R"(socet-rtl v1
netlist CONSUMER
input DIN data 8
output PEAK data 8
register HOLD 8 load
fu BIGGER less 8 2
mux m_hold 8 2
connect port:DIN 0 -> mux:m_hold.in0 0 8
connect reg:HOLD.q 0 -> mux:m_hold.in1 0 8
connect fu:BIGGER.out 0 -> mux:m_hold.sel 0 1
connect port:DIN 0 -> fu:BIGGER.in0 0 8
connect reg:HOLD.q 0 -> fu:BIGGER.in1 0 8
connect mux:m_hold.out 0 -> reg:HOLD.d 0 8
connect reg:HOLD.q 0 -> port:PEAK 0 8
end
)";

TEST(Integration, TextToTestProgramEndToEnd) {
  // 1. Parse the user's RTL.
  auto producer_rtl = rtl::parse_netlist(kProducerRtl);
  auto consumer_rtl = rtl::parse_netlist(kConsumerRtl);

  // 2. Provider flow: measure real test sets with ATPG.
  core::Core producer = core::Core::prepare(std::move(producer_rtl));
  core::Core consumer = core::Core::prepare(std::move(consumer_rtl));
  for (core::Core* core : {&producer, &consumer}) {
    auto elab = synth::elaborate(core->netlist());
    auto atpg = atpg::generate_tests(elab.gates, {.random_patterns = 32});
    EXPECT_GT(atpg.coverage().fault_coverage(), 90.0) << core->name();
    core->set_scan_vectors(static_cast<unsigned>(atpg.vector_count()));
  }

  // 3. Integrator flow: wire the chip.
  soc::Soc chip("STREAM");
  auto cp = chip.add_core(&producer);
  auto cc = chip.add_core(&consumer);
  auto sample = chip.add_pi("SAMPLE", 8);
  auto gate = chip.add_pi("Gate", 1);
  auto mode = chip.add_pi("Mode", 1);
  auto peak = chip.add_po("PEAK", 8);
  chip.connect(sample, cp, "SAMPLE");
  chip.connect(gate, cp, "Gate");
  chip.connect(mode, cp, "Mode");
  chip.connect(cp, "FILTERED", cc, "DIN");
  chip.connect(cc, "PEAK", peak);
  chip.validate();

  // 4. Plan, validate, optimize, schedule, assemble.
  const std::vector<unsigned> min_area(2, 0);
  auto plan = soc::plan_chip_test(chip, min_area);
  EXPECT_TRUE(soc::validate_plan(chip, min_area, plan).empty());
  EXPECT_GT(plan.total_tat, 0u);

  auto best = opt::minimize_tat(chip, 10'000);
  EXPECT_LE(best.tat, plan.total_tat);

  auto parallel = soc::schedule_parallel(chip, min_area, plan);
  EXPECT_LE(parallel.total_tat, plan.total_tat);

  auto program = soc::assemble_test_program(chip, min_area, plan);
  EXPECT_EQ(program.total_cycles, plan.total_tat);

  // 5. Generate the controller and check it elaborates.
  soc::Ccg ccg(chip, min_area);
  auto spec = soc::derive_controller_spec(chip, ccg, plan);
  auto controller_rtl = soc::generate_controller_rtl(spec);
  auto controller_gates = synth::elaborate(controller_rtl);
  EXPECT_GT(controller_gates.gates.cell_count(), 0u);

  // 6. Everything emits.
  EXPECT_NO_THROW(emit::emit_verilog(producer.netlist()));
  EXPECT_NO_THROW(emit::emit_verilog(controller_rtl));
  EXPECT_NO_THROW(core::serialize_interface(producer));
}

TEST(Integration, WholeFlowDeterministicOnSystem1) {
  auto run_once = []() {
    auto system = systems::make_barcode_system();
    const std::vector<unsigned> selection(3, 0);
    auto plan = soc::plan_chip_test(*system.soc, selection);
    auto best = opt::minimize_tat(*system.soc, 1'000'000);
    auto program = soc::assemble_test_program(*system.soc, selection, plan);
    return std::tuple{plan.total_tat, plan.total_overhead_cells(), best.tat,
                      best.overhead_cells,
                      soc::describe_test_program(*system.soc, program)};
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Integration, SelectionSweepAllValidOnBothSystems) {
  for (auto* make : {&systems::make_barcode_system, &systems::make_system2}) {
    auto system = make({});
    auto points = opt::enumerate_design_space(*system.soc);
    for (const auto& point : points) {
      auto violations =
          soc::validate_plan(*system.soc, point.selection, point.plan);
      EXPECT_TRUE(violations.empty())
          << system.soc->name() << ": "
          << (violations.empty() ? "" : violations.front());
    }
  }
}

}  // namespace
}  // namespace socet
