// Robustness: the text parsers must reject arbitrary garbage with a
// util::Error (never crash, never accept), and survive structured
// mutations of valid inputs.
#include <gtest/gtest.h>

#include "socet/core/serialize.hpp"
#include "socet/rtl/text.hpp"
#include "socet/systems/systems.hpp"
#include "socet/util/rng.hpp"

namespace socet {
namespace {

std::string random_garbage(util::Rng& rng, std::size_t length) {
  static constexpr char alphabet[] =
      "abcdefghijklmnopqrstuvwxyz0123456789 :.->#\n\t_";
  std::string out;
  out.reserve(length);
  for (std::size_t i = 0; i < length; ++i) {
    out.push_back(alphabet[rng.next_below(sizeof(alphabet) - 1)]);
  }
  return out;
}

TEST(Fuzz, RtlParserNeverAcceptsGarbage) {
  util::Rng rng(0xF022);
  for (int trial = 0; trial < 200; ++trial) {
    const auto text = random_garbage(rng, 40 + rng.next_below(200));
    EXPECT_THROW(rtl::parse_netlist(text), util::Error) << text;
  }
}

TEST(Fuzz, InterfaceParserNeverAcceptsGarbage) {
  util::Rng rng(0xF023);
  for (int trial = 0; trial < 200; ++trial) {
    const auto text = random_garbage(rng, 40 + rng.next_below(200));
    EXPECT_THROW(core::parse_interface(text), util::Error) << text;
  }
}

TEST(Fuzz, MutatedValidRtlThrowsOrParses) {
  // Flip random characters in a valid dump: the parser must either accept
  // a (still well-formed) variant or throw — never crash or hang.
  const std::string valid = rtl::serialize_netlist(systems::make_gcd_rtl());
  util::Rng rng(0xF024);
  int accepted = 0;
  int rejected = 0;
  for (int trial = 0; trial < 150; ++trial) {
    std::string mutated = valid;
    const int flips = 1 + static_cast<int>(rng.next_below(4));
    for (int f = 0; f < flips; ++f) {
      mutated[rng.next_below(mutated.size())] =
          static_cast<char>('0' + rng.next_below(75));
    }
    try {
      auto netlist = rtl::parse_netlist(mutated);
      ++accepted;
    } catch (const util::Error&) {
      ++rejected;
    }
  }
  EXPECT_GT(rejected, 0) << "mutations never rejected - parser too lax?";
  EXPECT_EQ(accepted + rejected, 150);
}

TEST(Fuzz, MutatedValidInterfaceThrowsOrParses) {
  core::Core gcd = core::Core::prepare(systems::make_gcd_rtl());
  gcd.set_scan_vectors(10);
  const std::string valid = core::serialize_interface(gcd);
  util::Rng rng(0xF025);
  for (int trial = 0; trial < 150; ++trial) {
    std::string mutated = valid;
    mutated[rng.next_below(mutated.size())] =
        static_cast<char>('0' + rng.next_below(75));
    try {
      auto parsed = core::parse_interface(mutated);
      // If it parsed, rebuilding a Core may still legitimately throw
      // (e.g. a version edge now names a missing port was caught at
      // parse; zero versions caught here).
      try {
        core::Core::from_interface(parsed);
      } catch (const util::Error&) {
      }
    } catch (const util::Error&) {
    }
  }
  SUCCEED();
}

TEST(Fuzz, TruncatedInputsAlwaysRejected) {
  const std::string valid = rtl::serialize_netlist(systems::make_gcd_rtl());
  // Any strict prefix misses "end" (and possibly more): must throw.
  for (std::size_t keep : {10u, 50u, 200u}) {
    if (keep >= valid.size()) continue;
    EXPECT_THROW(rtl::parse_netlist(valid.substr(0, keep)), util::Error);
  }
}

}  // namespace
}  // namespace socet
