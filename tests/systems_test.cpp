#include <gtest/gtest.h>

#include "socet/soc/schedule.hpp"
#include "socet/synth/elaborate.hpp"
#include "socet/systems/systems.hpp"

namespace socet::systems {
namespace {

// ------------------------------------------------------------------- CPU

TEST(Cpu, InterfaceMatchesPaper) {
  auto cpu = make_cpu_rtl();
  EXPECT_EQ(cpu.port(cpu.find_port("Data")).width, 8u);
  EXPECT_EQ(cpu.port(cpu.find_port("AddrLo")).width, 8u);
  EXPECT_EQ(cpu.port(cpu.find_port("AddrHi")).width, 4u);
  EXPECT_NO_THROW(cpu.find_port("Read"));
  EXPECT_NO_THROW(cpu.find_port("Write"));
  EXPECT_NO_THROW(cpu.find_register("IR"));
  EXPECT_NO_THROW(cpu.find_register("ACCUMULATOR"));
  EXPECT_NO_THROW(cpu.find_register("MARpage"));
  EXPECT_NO_THROW(cpu.find_register("MARoff"));
}

TEST(Cpu, VersionMenuTradesLatencyForArea) {
  auto core = core::Core::prepare(make_cpu_rtl());
  ASSERT_EQ(core.version_count(), 3u);
  for (std::size_t v = 1; v < 3; ++v) {
    EXPECT_GT(core.version(v).extra_cells, core.version(v - 1).extra_cells);
  }
  // Version 3 reaches latency 1 on every pair (Figure 5 / Figure 6).
  for (const auto& edge : core.version(2).edges) {
    EXPECT_EQ(edge.latency, 1u);
  }
}

TEST(Cpu, EveryPortTransparentInEveryVersion) {
  auto core = core::Core::prepare(make_cpu_rtl());
  for (const auto& version : core.versions()) {
    // Every output justifiable: appears as some edge's output.
    for (rtl::PortId out : core.netlist().output_ports()) {
      bool covered = false;
      for (const auto& edge : version.edges) covered |= edge.output == out;
      EXPECT_TRUE(covered) << core.netlist().port(out).name << " in "
                           << version.name;
    }
    // Every input propagatable: appears as some edge's input.
    for (rtl::PortId in : core.netlist().input_ports()) {
      bool covered = false;
      for (const auto& edge : version.edges) covered |= edge.input == in;
      EXPECT_TRUE(covered) << core.netlist().port(in).name << " in "
                           << version.name;
    }
  }
}

// ----------------------------------------------------------- PREPROCESSOR

TEST(Preprocessor, MinAreaLatenciesMatchFigure8) {
  auto core = core::Core::prepare(make_preprocessor_rtl());
  const auto num = core.netlist().find_port("NUM");
  const auto db = core.netlist().find_port("DB");
  const auto addr = core.netlist().find_port("Address");

  // Figure 8(a) Version 1: NUM -> DB latency 5, NUM -> Address latency 2.
  auto v1_db = core.version(0).latency(num, db);
  ASSERT_TRUE(v1_db.has_value());
  EXPECT_EQ(*v1_db, 5u);
  auto v1_addr = core.version(0).latency(num, addr);
  ASSERT_TRUE(v1_addr.has_value());
  EXPECT_EQ(*v1_addr, 2u);

  // Version 3: both reach latency 1.
  EXPECT_EQ(core.version(2).latency(num, db).value_or(99), 1u);
  EXPECT_EQ(core.version(2).latency(num, addr).value_or(99), 1u);
}

TEST(Preprocessor, ResetToEocControlChain) {
  auto core = core::Core::prepare(make_preprocessor_rtl());
  const auto reset = core.netlist().find_port("Reset");
  const auto eoc = core.netlist().find_port("Eoc");
  auto latency = core.version(0).latency(reset, eoc);
  ASSERT_TRUE(latency.has_value());
  EXPECT_EQ(*latency, 2u) << "the paper's (Reset, Eoc) latency-2 edge";
}

// ---------------------------------------------------------------- DISPLAY

TEST(Display, FlipFlopAndPortCountsMatchPaper) {
  auto display = make_display_rtl();
  EXPECT_EQ(display.flip_flop_count(), 66u);
  unsigned input_bits = 0;
  for (rtl::PortId id : display.input_ports()) {
    input_bits += display.port(id).width;
  }
  EXPECT_EQ(input_bits, 20u) << "A(12) + D(8) internal inputs";
  EXPECT_EQ(display.output_ports().size(), 6u) << "PO-PORT1..6";
}

TEST(Display, LatencyMenuShape) {
  auto core = core::Core::prepare(make_display_rtl());
  const auto d = core.netlist().find_port("D");
  const auto alo = core.netlist().find_port("ALo");
  // Figure 8(b) shape: D -> OUT faster than A -> OUT in version 1; both
  // reach 1 in version 3.
  unsigned v1_d = 99, v1_a = 99;
  for (const auto& edge : core.version(0).edges) {
    if (edge.input == d) v1_d = std::min(v1_d, edge.latency);
    if (edge.input == alo) v1_a = std::min(v1_a, edge.latency);
  }
  EXPECT_LE(v1_d, v1_a);
  for (const auto& edge : core.version(2).edges) {
    EXPECT_EQ(edge.latency, 1u);
  }
}

// ----------------------------------------------------------- whole system

TEST(System1, BuildsAndPlans) {
  auto system = make_barcode_system();
  auto plan = soc::plan_chip_test(*system.soc, {0, 0, 0});
  EXPECT_EQ(plan.cores.size(), 3u);
  EXPECT_GT(plan.total_tat, 0u);
}

TEST(System1, PreprocessorAddressNeedsSystemMux) {
  // Figure 9: the PREPROCESSOR's Address output is observable only through
  // an added system-level test mux.
  auto system = make_barcode_system();
  auto plan = soc::plan_chip_test(*system.soc, {0, 0, 0});
  const auto pre = system.soc->find_core("PREPROCESSOR");
  const auto addr = system.core_named("PREPROCESSOR").netlist().find_port(
      "Address");
  for (const auto& core_plan : plan.cores) {
    if (core_plan.core != pre) continue;
    bool found = false;
    for (const auto& [port, route] : core_plan.output_routes) {
      if (port == addr) {
        found = true;
        EXPECT_TRUE(route.via_system_mux);
      }
    }
    EXPECT_TRUE(found);
  }
}

TEST(System1, DisplayJustifiedThroughPreprocessorAndCpu) {
  // The paper's highlighted Figure 9 path: NUM -> DB -> Data -> Address ->
  // A.  The DISPLAY's address inputs must be routed through at least one
  // other core's transparency (not a system mux).
  auto system = make_barcode_system();
  auto plan = soc::plan_chip_test(*system.soc, {0, 0, 0});
  const auto disp = system.soc->find_core("DISPLAY");
  for (const auto& core_plan : plan.cores) {
    if (core_plan.core != disp) continue;
    for (const auto& [port, route] : core_plan.input_routes) {
      EXPECT_FALSE(route.via_system_mux)
          << "DISPLAY inputs are reachable through existing paths";
      EXPECT_GE(route.steps.size(), 2u);
    }
  }
}

TEST(System1, ChipAreaInPaperBallpark) {
  // Table 2: System 1's original area is 8,014 cells.  The reconstruction
  // targets the same order of magnitude (within 2x).
  auto system = make_barcode_system();
  double area = 0;
  for (const auto& core : system.cores) {
    area += synth::elaborate(core->netlist()).gates.area();
  }
  EXPECT_GT(area, 4000.0);
  EXPECT_LT(area, 16000.0);
}

TEST(System2, BuildsAndPlans) {
  auto system = make_system2();
  EXPECT_EQ(system.cores.size(), 3u);
  auto plan = soc::plan_chip_test(*system.soc, {0, 0, 0});
  EXPECT_EQ(plan.cores.size(), 3u);
  EXPECT_GT(plan.total_tat, 0u);
}

TEST(System2, CoreMenusAreLadders) {
  auto system = make_system2();
  for (const auto& core : system.cores) {
    for (std::size_t v = 1; v < core->version_count(); ++v) {
      EXPECT_GT(core->version(v).extra_cells,
                core->version(v - 1).extra_cells)
          << core->name();
    }
  }
}

TEST(System2, ChipAreaInPaperBallpark) {
  // Table 2: System 2's original area is 5,540 cells (within 2x).
  auto system = make_system2();
  double area = 0;
  for (const auto& core : system.cores) {
    area += synth::elaborate(core->netlist()).gates.area();
  }
  EXPECT_GT(area, 2700.0);
  EXPECT_LT(area, 11000.0);
}

TEST(Systems, AllCoresElaborateAndValidate) {
  for (auto make : {make_cpu_rtl, make_preprocessor_rtl, make_display_rtl,
                    make_graphics_rtl, make_gcd_rtl, make_x25_rtl}) {
    auto netlist = make();
    EXPECT_NO_THROW(netlist.validate());
    auto elab = synth::elaborate(netlist);
    EXPECT_NO_THROW(elab.gates.topo_order()) << netlist.name();
    EXPECT_GT(elab.gates.cell_count(), 100u) << netlist.name();
  }
}

}  // namespace
}  // namespace socet::systems
