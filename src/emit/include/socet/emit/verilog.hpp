// Verilog emission.
//
// Two writers:
//   * RT level — behavioural Verilog-2001 for an rtl::Netlist: one always
//     block per register (load enables and bit-sliced writes preserved),
//     continuous assigns for muxes and functional units.  Control clouds
//     (kRandomLogic) have no RT-level semantics and are rejected; emit the
//     elaborated gate netlist instead.
//   * Gate level — structural Verilog for a gate::GateNetlist (primitive
//     gate instantiations), accepting anything the elaborator produces.
//
// Emitted modules are self-contained and synthesizable; golden tests pin
// the output shape, and identifiers are sanitized deterministically.
#pragma once

#include <string>

#include "socet/gate/netlist.hpp"
#include "socet/rtl/netlist.hpp"

namespace socet::emit {

/// Behavioural Verilog for an RTL netlist.  Throws util::Error if the
/// netlist contains kRandomLogic units.
std::string emit_verilog(const rtl::Netlist& netlist);

/// Structural Verilog for a gate netlist.
std::string emit_verilog(const gate::GateNetlist& netlist);

}  // namespace socet::emit
