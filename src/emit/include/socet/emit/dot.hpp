// Graphviz DOT emission for the paper's two graphs.
//
//   * RCG (Figure 7): register connectivity graph — input/output ports as
//     house-shaped nodes, registers as boxes (C-/O-split nodes flagged),
//     HSCAN edges drawn bold (the paper's "darkened" edges).
//   * CCG (Figure 9): core connectivity graph — PI/PO nodes, core ports
//     clustered per core, transparency edges labelled with latencies.
//
// Render with `dot -Tsvg` to regenerate the paper's figures for any core
// or SOC, including user-defined ones.
#pragma once

#include <string>

#include "socet/soc/ccg.hpp"
#include "socet/transparency/rcg.hpp"

namespace socet::emit {

std::string emit_dot(const transparency::Rcg& rcg);

std::string emit_dot(const soc::Soc& soc, const soc::Ccg& ccg);

}  // namespace socet::emit
