#include "socet/emit/dot.hpp"

#include <sstream>

namespace socet::emit {

std::string emit_dot(const transparency::Rcg& rcg) {
  std::ostringstream out;
  out << "digraph RCG {\n  rankdir=TB;\n  node [fontname=\"monospace\"];\n";
  for (std::uint32_t i = 0; i < rcg.nodes().size(); ++i) {
    const auto& node = rcg.node(i);
    out << "  n" << i << " [label=\"" << rcg.node_name(i);
    if (node.c_split) out << "\\n(C-split)";
    if (node.o_split) out << "\\n(O-split)";
    out << "\"";
    switch (node.ref.kind) {
      case rtl::NodeKind::kInputPort:
        out << ", shape=invhouse, style=filled, fillcolor=lightblue";
        break;
      case rtl::NodeKind::kOutputPort:
        out << ", shape=house, style=filled, fillcolor=lightyellow";
        break;
      case rtl::NodeKind::kRegister:
        out << ", shape=box";
        if (node.c_split || node.o_split) {
          out << ", style=filled, fillcolor=mistyrose";
        }
        break;
    }
    out << "];\n";
  }
  for (const auto& edge : rcg.edges()) {
    out << "  n" << edge.src << " -> n" << edge.dst << " [label=\"";
    if (edge.width > 1 || edge.src_lo != 0 || edge.dst_lo != 0) {
      out << "[" << (edge.src_lo + edge.width - 1) << ":" << edge.src_lo
          << "]";
    }
    out << "\"";
    if (edge.hscan) out << ", penwidth=2.5";  // the paper's darkened edges
    if (edge.direct) out << ", color=forestgreen";
    out << "];\n";
  }
  out << "}\n";
  return out.str();
}

std::string emit_dot(const soc::Soc& soc, const soc::Ccg& ccg) {
  std::ostringstream out;
  out << "digraph CCG {\n  rankdir=LR;\n  node [fontname=\"monospace\"];\n";

  // Cluster core ports per core (Figure 9's dashed core boxes).
  for (std::uint32_t c = 0; c < soc.cores().size(); ++c) {
    out << "  subgraph cluster_" << c << " {\n    label=\""
        << soc.core(c).name() << "\";\n    style=dashed;\n";
    for (std::uint32_t i = 0; i < ccg.nodes().size(); ++i) {
      const auto& node = ccg.nodes()[i];
      if ((node.kind == soc::CcgNodeKind::kCoreIn ||
           node.kind == soc::CcgNodeKind::kCoreOut) &&
          node.core_port.core == c) {
        out << "    n" << i << " [label=\""
            << soc.core(c).netlist().port(node.core_port.port).name
            << "\", shape="
            << (node.kind == soc::CcgNodeKind::kCoreIn ? "box" : "oval")
            << "];\n";
      }
    }
    out << "  }\n";
  }
  for (std::uint32_t i = 0; i < ccg.nodes().size(); ++i) {
    const auto& node = ccg.nodes()[i];
    if (node.kind == soc::CcgNodeKind::kPi) {
      out << "  n" << i << " [label=\"" << soc.pis()[node.pin].name
          << "\", shape=invhouse, style=filled, fillcolor=lightblue];\n";
    } else if (node.kind == soc::CcgNodeKind::kPo) {
      out << "  n" << i << " [label=\"" << soc.pos()[node.pin].name
          << "\", shape=house, style=filled, fillcolor=lightyellow];\n";
    }
  }
  for (const auto& edge : ccg.edges()) {
    out << "  n" << edge.src << " -> n" << edge.dst;
    if (edge.core >= 0) {
      out << " [label=\"" << edge.latency << "\", color=slateblue]";
    } else {
      out << " [style=bold]";
    }
    out << ";\n";
  }
  out << "}\n";
  return out.str();
}

}  // namespace socet::emit
