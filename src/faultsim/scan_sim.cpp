#include "socet/faultsim/scan_sim.hpp"

#include "socet/obs/journal.hpp"
#include "socet/obs/metrics.hpp"
#include "socet/obs/resource.hpp"
#include "socet/util/error.hpp"

namespace socet::faultsim {

ScanFaultSim::ScanFaultSim(const gate::GateNetlist& netlist,
                           ScanSimOptions options)
    : netlist_(netlist), options_(options), cones_(netlist) {
  util::require(options_.lane_words == 0 || options_.lane_words == 1 ||
                    options_.lane_words == 4 || options_.lane_words == 8,
                "ScanFaultSim: lane_words must be 0 (auto), 1, 4 or 8");
}

unsigned ScanFaultSim::auto_lane_words(std::size_t pattern_count) {
  // A run that fits one seed-width block gains nothing from wider lanes
  // (the extra words would simulate only padding); scale up with the
  // pattern count so big regrades amortize cone replays across 512
  // patterns per pass.
  if (pattern_count <= 64) return 1;
  if (pattern_count <= 256) return 4;
  return 8;
}

BlockEngineBase& ScanFaultSim::engine_for(unsigned lane_words) {
  const unsigned slot = lane_words == 1 ? 0 : lane_words == 4 ? 1 : 2;
  auto& engine = engines_[slot];
  if (!engine) {
    EngineOptions eo;
    eo.event_driven = options_.event_driven;
    eo.replay_suppression = options_.replay_suppression;
    eo.initial_stamp = options_.initial_stamp;
    if (lane_words >= 4 && options_.use_avx2) {
      engine = make_avx2_engine(lane_words, cones_, eo);
    }
    if (!engine) engine = make_scalar_engine(lane_words, cones_, eo);
  }
  return *engine;
}

void ScanFaultSim::run(const std::vector<Fault>& faults,
                       const std::vector<ScanPattern>& patterns,
                       std::vector<FaultStatus>& statuses) {
  util::require(statuses.size() == faults.size(),
                "ScanFaultSim::run: status vector size mismatch");
  SOCET_RESOURCE_SCOPE("faultsim/scan_run");

  const unsigned width = options_.lane_words != 0
                             ? options_.lane_words
                             : auto_lane_words(patterns.size());
  BlockEngineBase& engine = engine_for(width);
  last_lane_words_ = engine.lane_words();
  last_kernel_ = engine.kernel_name();
  SOCET_EVENT("faultsim/kernel", {"lane_words", engine.lane_words()},
              {"kernel", engine.kernel_name()},
              {"patterns", static_cast<unsigned long long>(patterns.size())},
              {"faults", static_cast<unsigned long long>(faults.size())});

  EngineStats stats;
  engine.run(faults, 0, faults.size(), patterns, statuses, &stats);

  SOCET_COUNT_N("faultsim/pattern_blocks", stats.blocks);
  SOCET_COUNT_N("faultsim/good_gate_evals", stats.gates_evaluated);
  SOCET_COUNT_N("faultsim/cone_replays", stats.cone_replays);
  SOCET_COUNT_N("faultsim/faults_dropped", stats.faults_dropped);
}

util::BitVector ScanFaultSim::good_response(const ScanPattern& pattern) {
  return engine_for(1).good_response(pattern);
}

util::BitVector ScanFaultSim::faulty_response(const Fault& fault,
                                              const ScanPattern& pattern) {
  return engine_for(1).faulty_response(fault, pattern);
}

}  // namespace socet::faultsim
