#include "socet/faultsim/scan_sim.hpp"

#include <algorithm>

#include "socet/gate/sim.hpp"
#include "socet/obs/metrics.hpp"
#include "socet/obs/resource.hpp"

namespace socet::faultsim {

namespace {

using gate::Gate;
using gate::GateId;
using gate::GateKind;

}  // namespace

ScanFaultSim::ScanFaultSim(const gate::GateNetlist& netlist)
    : netlist_(netlist),
      good_(netlist.gate_count(), 0),
      scratch_(netlist.gate_count(), 0),
      stamp_(netlist.gate_count(), 0),
      cones_(netlist.gate_count()),
      cone_built_(netlist.gate_count(), 0),
      topo_pos_(netlist.gate_count(), 0) {
  const auto& order = netlist.topo_order();
  for (std::size_t i = 0; i < order.size(); ++i) {
    topo_pos_[order[i].index()] = static_cast<std::uint32_t>(i);
  }
}

void ScanFaultSim::load_block(const std::vector<ScanPattern>& patterns,
                              std::size_t first, std::size_t count) {
  const auto& inputs = netlist_.inputs();
  const auto& dffs = netlist_.dffs();
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    std::uint64_t word = 0;
    for (std::size_t k = 0; k < count; ++k) {
      if (patterns[first + k].pi.get(i)) word |= 1ULL << k;
    }
    good_[inputs[i].index()] = word;
  }
  for (std::size_t i = 0; i < dffs.size(); ++i) {
    std::uint64_t word = 0;
    for (std::size_t k = 0; k < count; ++k) {
      if (patterns[first + k].ppi.get(i)) word |= 1ULL << k;
    }
    good_[dffs[i].index()] = word;
  }
  eval_comb(netlist_, good_);
}

std::uint64_t ScanFaultSim::lookup(GateId id) const {
  return stamp_[id.index()] == current_stamp_ ? scratch_[id.index()]
                                              : good_[id.index()];
}

std::uint64_t ScanFaultSim::faulty_word(GateId id, const Fault& f) {
  const Gate& g = netlist_.gate(id);
  if (id == f.gate && f.pin < 0) {
    return f.stuck_at ? ~0ULL : 0;
  }
  auto in = [&](std::size_t pin) -> std::uint64_t {
    if (id == f.gate && static_cast<std::int32_t>(pin) == f.pin) {
      return f.stuck_at ? ~0ULL : 0;
    }
    return lookup(g.fanin[pin]);
  };
  std::uint64_t v = 0;
  switch (g.kind) {
    case GateKind::kInput:
    case GateKind::kDff:
      return lookup(id);  // value sources: unchanged within a pattern
    case GateKind::kConst0:
      return 0;
    case GateKind::kConst1:
      return ~0ULL;
    case GateKind::kBuf:
      return in(0);
    case GateKind::kNot:
      return ~in(0);
    case GateKind::kAnd:
    case GateKind::kNand:
      v = ~0ULL;
      for (std::size_t p = 0; p < g.fanin.size(); ++p) v &= in(p);
      return g.kind == GateKind::kNand ? ~v : v;
    case GateKind::kOr:
    case GateKind::kNor:
      v = 0;
      for (std::size_t p = 0; p < g.fanin.size(); ++p) v |= in(p);
      return g.kind == GateKind::kNor ? ~v : v;
    case GateKind::kXor:
      return in(0) ^ in(1);
    case GateKind::kXnor:
      return ~(in(0) ^ in(1));
  }
  util::raise("faulty_word: unknown gate kind");
}

const std::vector<GateId>& ScanFaultSim::cone_of(GateId id) {
  if (cone_built_[id.index()]) return cones_[id.index()];
  // Forward BFS through fanouts; DFFs terminate propagation within one
  // scan pattern (their D value is the observation point).
  std::vector<GateId> cone{id};
  std::vector<char> seen(netlist_.gate_count(), 0);
  seen[id.index()] = 1;
  const auto& fanouts = netlist_.fanouts();
  for (std::size_t head = 0; head < cone.size(); ++head) {
    if (netlist_.gate(cone[head]).kind == GateKind::kDff && head != 0) {
      continue;
    }
    for (GateId next : fanouts[cone[head].index()]) {
      if (seen[next.index()]) continue;
      if (netlist_.gate(next).kind == GateKind::kDff) continue;
      seen[next.index()] = 1;
      cone.push_back(next);
    }
  }
  std::sort(cone.begin(), cone.end(), [this](GateId a, GateId b) {
    return topo_pos_[a.index()] < topo_pos_[b.index()];
  });
  cones_[id.index()] = std::move(cone);
  cone_built_[id.index()] = 1;
  return cones_[id.index()];
}

void ScanFaultSim::run(const std::vector<Fault>& faults,
                       const std::vector<ScanPattern>& patterns,
                       std::vector<FaultStatus>& statuses) {
  util::require(statuses.size() == faults.size(),
                "ScanFaultSim::run: status vector size mismatch");
  SOCET_RESOURCE_SCOPE("faultsim/scan_run");

  // Observation points: POs plus every DFF's D fanin (PPOs).
  std::vector<GateId> observe = netlist_.outputs();
  for (GateId dff : netlist_.dffs()) {
    observe.push_back(netlist_.gate(dff).fanin[0]);
  }
  std::sort(observe.begin(), observe.end());
  observe.erase(std::unique(observe.begin(), observe.end()), observe.end());

  std::size_t dropped = 0;
  for (std::size_t first = 0; first < patterns.size(); first += 64) {
    const std::size_t count = std::min<std::size_t>(64, patterns.size() - first);
    const std::uint64_t mask =
        count == 64 ? ~0ULL : ((1ULL << count) - 1);
    load_block(patterns, first, count);
    SOCET_COUNT("faultsim/pattern_blocks");

    for (std::size_t fi = 0; fi < faults.size(); ++fi) {
      if (statuses[fi] != FaultStatus::kUndetected) continue;
      const Fault& f = faults[fi];
      ++current_stamp_;

      const std::uint64_t site = faulty_word(f.gate, f);
      if (((site ^ good_[f.gate.index()]) & mask) == 0) continue;  // inactive
      scratch_[f.gate.index()] = site;
      stamp_[f.gate.index()] = current_stamp_;

      const auto& cone = cone_of(f.gate);
      for (std::size_t c = 1; c < cone.size(); ++c) {
        const GateId id = cone[c];
        scratch_[id.index()] = faulty_word(id, f);
        stamp_[id.index()] = current_stamp_;
      }

      for (GateId obs : observe) {
        if (((lookup(obs) ^ good_[obs.index()]) & mask) != 0) {
          statuses[fi] = FaultStatus::kDetected;
          ++dropped;
          break;
        }
      }
    }
  }
  SOCET_COUNT_N("faultsim/faults_dropped", dropped);
}

util::BitVector ScanFaultSim::good_response(const ScanPattern& pattern) {
  load_block({pattern}, 0, 1);
  const auto& outputs = netlist_.outputs();
  const auto& dffs = netlist_.dffs();
  util::BitVector response(outputs.size() + dffs.size());
  for (std::size_t i = 0; i < outputs.size(); ++i) {
    response.set(i, (good_[outputs[i].index()] & 1) != 0);
  }
  for (std::size_t i = 0; i < dffs.size(); ++i) {
    const GateId d = netlist_.gate(dffs[i]).fanin[0];
    response.set(outputs.size() + i, (good_[d.index()] & 1) != 0);
  }
  return response;
}

util::BitVector ScanFaultSim::faulty_response(const Fault& fault,
                                              const ScanPattern& pattern) {
  load_block({pattern}, 0, 1);
  ++current_stamp_;
  const std::uint64_t site = faulty_word(fault.gate, fault);
  scratch_[fault.gate.index()] = site;
  stamp_[fault.gate.index()] = current_stamp_;
  const auto& cone = cone_of(fault.gate);
  for (std::size_t c = 1; c < cone.size(); ++c) {
    scratch_[cone[c].index()] = faulty_word(cone[c], fault);
    stamp_[cone[c].index()] = current_stamp_;
  }

  const auto& outputs = netlist_.outputs();
  const auto& dffs = netlist_.dffs();
  util::BitVector response(outputs.size() + dffs.size());
  for (std::size_t i = 0; i < outputs.size(); ++i) {
    response.set(i, (lookup(outputs[i]) & 1) != 0);
  }
  for (std::size_t i = 0; i < dffs.size(); ++i) {
    const GateId d = netlist_.gate(dffs[i]).fanin[0];
    response.set(outputs.size() + i, (lookup(d) & 1) != 0);
  }
  return response;
}

}  // namespace socet::faultsim
