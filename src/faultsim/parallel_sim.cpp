#include "socet/faultsim/parallel_sim.hpp"

#include <algorithm>
#include <thread>

#include "socet/obs/journal.hpp"
#include "socet/obs/metrics.hpp"
#include "socet/obs/resource.hpp"
#include "socet/util/error.hpp"
#include "socet/util/pool.hpp"

namespace socet::faultsim {

ParallelScanFaultSim::ParallelScanFaultSim(const gate::GateNetlist& netlist,
                                           ParallelSimOptions options)
    : netlist_(netlist), options_(options), cones_(netlist) {
  util::require(options_.sim.lane_words == 0 || options_.sim.lane_words == 1 ||
                    options_.sim.lane_words == 4 ||
                    options_.sim.lane_words == 8,
                "ParallelScanFaultSim: lane_words must be 0 (auto), 1, 4 or 8");
  if (options_.threads == 0) {
    options_.threads = std::max(1u, std::thread::hardware_concurrency());
  }
}

BlockEngineBase& ParallelScanFaultSim::engine_for(unsigned worker,
                                                  unsigned lane_words) {
  if (engines_.size() <= worker) engines_.resize(worker + 1);
  const unsigned slot = lane_words == 1 ? 0 : lane_words == 4 ? 1 : 2;
  auto& engine = engines_[worker][slot];
  if (!engine) {
    EngineOptions eo;
    eo.event_driven = options_.sim.event_driven;
    eo.replay_suppression = options_.sim.replay_suppression;
    eo.initial_stamp = options_.sim.initial_stamp;
    if (lane_words >= 4 && options_.sim.use_avx2) {
      engine = make_avx2_engine(lane_words, cones_, eo);
    }
    if (!engine) engine = make_scalar_engine(lane_words, cones_, eo);
  }
  return *engine;
}

void ParallelScanFaultSim::run(const std::vector<Fault>& faults,
                               const std::vector<ScanPattern>& patterns,
                               std::vector<FaultStatus>& statuses) {
  util::require(statuses.size() == faults.size(),
                "ParallelScanFaultSim::run: status vector size mismatch");
  SOCET_RESOURCE_SCOPE("faultsim/parallel_run");

  const unsigned width =
      options_.sim.lane_words != 0
          ? options_.sim.lane_words
          : ScanFaultSim::auto_lane_words(patterns.size());

  // Contiguous chunks keep each worker's cache walk over the fault list
  // linear; capping by min_faults_per_thread keeps small runs inline.
  const std::size_t per_thread = std::max<std::size_t>(
      1, options_.min_faults_per_thread);
  const unsigned workers = static_cast<unsigned>(std::min<std::size_t>(
      options_.threads,
      std::max<std::size_t>(1, faults.size() / per_thread)));
  last_threads_ = workers;

  // Touch every engine before the fan-out so engines_ never reallocates
  // while workers hold references into it.
  for (unsigned t = 0; t < workers; ++t) (void)engine_for(t, width);

  // Pre-build the fault sites' fanout cones serially before the fan-out.
  // Fault cones overlap heavily across chunks, so lazy building from
  // inside the workers funnels them all through the cache's build mutex
  // — a serialized build plus handoff churn.  After this loop every
  // worker lookup takes the lock-free built path.  (Already-built cones
  // make this an atomic-load-per-fault no-op on reuse.)
  if (workers > 1) {
    for (const Fault& f : faults) (void)cones_.of(f.gate);
  }
  last_lane_words_ = engine_for(0, width).lane_words();
  last_kernel_ = engine_for(0, width).kernel_name();

  SOCET_EVENT("faultsim/partition", {"threads", workers},
              {"lane_words", last_lane_words_}, {"kernel", last_kernel_},
              {"faults", static_cast<unsigned long long>(faults.size())},
              {"patterns", static_cast<unsigned long long>(patterns.size())});

  const std::size_t base = faults.size() / workers;
  const std::size_t extra = faults.size() % workers;
  std::vector<EngineStats> stats(workers);
  util::run_on_workers(workers, [&](unsigned t) {
    // Chunk t covers [first, last): the first `extra` chunks get one
    // extra fault so sizes differ by at most one.
    const std::size_t first = t * base + std::min<std::size_t>(t, extra);
    const std::size_t last = first + base + (t < extra ? 1 : 0);
    engine_for(t, width).run(faults, first, last, patterns, statuses,
                             &stats[t]);
  });

  EngineStats total;
  for (const EngineStats& s : stats) total += s;
  SOCET_COUNT_N("faultsim/pattern_blocks", total.blocks);
  SOCET_COUNT_N("faultsim/good_gate_evals", total.gates_evaluated);
  SOCET_COUNT_N("faultsim/cone_replays", total.cone_replays);
  SOCET_COUNT_N("faultsim/faults_dropped", total.faults_dropped);
}

util::BitVector ParallelScanFaultSim::good_response(
    const ScanPattern& pattern) {
  return engine_for(0, 1).good_response(pattern);
}

util::BitVector ParallelScanFaultSim::faulty_response(
    const Fault& fault, const ScanPattern& pattern) {
  return engine_for(0, 1).faulty_response(fault, pattern);
}

}  // namespace socet::faultsim
