#include "socet/faultsim/seq_sim.hpp"

#include <algorithm>

namespace socet::faultsim {

namespace {

using gate::Gate;
using gate::GateId;
using gate::GateKind;

/// Faults injected on one gate for the current pass.
struct SiteFaults {
  /// Machine mask and forced value for output-stem faults.
  std::uint64_t stem_mask = 0;
  std::uint64_t stem_value = 0;
  /// Input-pin faults need per-machine scalar fix-up.
  struct PinFault {
    std::uint64_t machine_bit;
    std::int32_t pin;
    bool stuck_at;
  };
  std::vector<PinFault> pins;
};

std::uint64_t eval_gate_scalar(const Gate& g, std::uint64_t machine_bit,
                               const std::vector<std::uint64_t>& values,
                               std::int32_t forced_pin, bool forced_value) {
  auto in = [&](std::size_t p) -> bool {
    if (static_cast<std::int32_t>(p) == forced_pin) return forced_value;
    return (values[g.fanin[p].index()] & machine_bit) != 0;
  };
  bool v = false;
  switch (g.kind) {
    case GateKind::kBuf:
      v = in(0);
      break;
    case GateKind::kNot:
      v = !in(0);
      break;
    case GateKind::kAnd:
    case GateKind::kNand:
      v = true;
      for (std::size_t p = 0; p < g.fanin.size(); ++p) v = v && in(p);
      if (g.kind == GateKind::kNand) v = !v;
      break;
    case GateKind::kOr:
    case GateKind::kNor:
      v = false;
      for (std::size_t p = 0; p < g.fanin.size(); ++p) v = v || in(p);
      if (g.kind == GateKind::kNor) v = !v;
      break;
    case GateKind::kXor:
      v = in(0) != in(1);
      break;
    case GateKind::kXnor:
      v = in(0) == in(1);
      break;
    default:
      // Inputs and constants have no input pins, and DFF D-pin faults
      // are applied at capture, never here.  Returning a value would
      // silently force the faulty machine to 0 (the seed did exactly
      // that); fail loudly instead.
      util::raise(
          "eval_gate_scalar: pin fault on a gate without evaluable input "
          "pins (input/constant)");
  }
  return v ? machine_bit : 0;
}

}  // namespace

SequentialFaultSim::SequentialFaultSim(const gate::GateNetlist& netlist)
    : netlist_(netlist) {}

void SequentialFaultSim::run(const std::vector<Fault>& faults,
                             const std::vector<util::BitVector>& sequence,
                             std::vector<FaultStatus>& statuses) {
  util::require(statuses.size() == faults.size(),
                "SequentialFaultSim::run: status vector size mismatch");
  const auto& inputs = netlist_.inputs();
  const auto& dffs = netlist_.dffs();
  const auto& order = netlist_.topo_order();
  const std::size_t n = netlist_.gate_count();

  // Scratch shared by every group pass (hoisted: allocating gate_count
  // sized vectors per 63-fault group dominated small-circuit runs).
  std::vector<SiteFaults> site(n);
  std::vector<char> has_fault(n, 0);
  std::vector<std::uint64_t> values(n, 0);
  std::vector<std::uint64_t> state(dffs.size(), 0);
  std::vector<std::size_t> faulted_gates;  ///< site/has_fault reset list

  // Process faults in groups of up to 63 (bit 0 = good machine).
  std::vector<std::size_t> group;
  std::size_t next_fault = 0;
  while (next_fault < faults.size() || !group.empty()) {
    group.clear();
    while (next_fault < faults.size() && group.size() < 63) {
      if (statuses[next_fault] == FaultStatus::kUndetected) {
        group.push_back(next_fault);
      }
      ++next_fault;
    }
    if (group.empty()) break;

    // Per-gate fault tables for this pass (clearing only last pass's
    // entries instead of reallocating the whole table).
    for (std::size_t idx : faulted_gates) {
      site[idx].stem_mask = 0;
      site[idx].stem_value = 0;
      site[idx].pins.clear();
      has_fault[idx] = 0;
    }
    faulted_gates.clear();
    for (std::size_t m = 0; m < group.size(); ++m) {
      const Fault& f = faults[group[m]];
      const std::uint64_t machine_bit = 1ULL << (m + 1);
      auto& s = site[f.gate.index()];
      if (!has_fault[f.gate.index()]) {
        has_fault[f.gate.index()] = 1;
        faulted_gates.push_back(f.gate.index());
      }
      if (f.pin < 0) {
        s.stem_mask |= machine_bit;
        if (f.stuck_at) s.stem_value |= machine_bit;
      } else {
        s.pins.push_back(SiteFaults::PinFault{machine_bit, f.pin, f.stuck_at});
      }
    }

    std::fill(state.begin(), state.end(), 0);
    std::uint64_t detected = 0;

    auto apply_site = [&](GateId id, std::uint64_t v) -> std::uint64_t {
      const SiteFaults& s = site[id.index()];
      v = (v & ~s.stem_mask) | (s.stem_value & s.stem_mask);
      const Gate& g = netlist_.gate(id);
      if (g.kind == GateKind::kDff) {
        // A DFF D-pin fault (uncollapsed lists only) changes what the
        // flop *captures*, handled in the capture loop below; the Q
        // value this cycle is the stored state, untouched by the pin.
        return v;
      }
      for (const auto& pf : s.pins) {
        v = (v & ~pf.machine_bit) |
            eval_gate_scalar(g, pf.machine_bit, values, pf.pin, pf.stuck_at);
      }
      return v;
    };

    for (const auto& vector : sequence) {
      // Drive PIs (same pattern for all machines) and DFF state.
      for (std::size_t i = 0; i < inputs.size(); ++i) {
        std::uint64_t v = vector.get(i) ? ~0ULL : 0;
        if (has_fault[inputs[i].index()]) v = apply_site(inputs[i], v);
        values[inputs[i].index()] = v;
      }
      for (std::size_t i = 0; i < dffs.size(); ++i) {
        std::uint64_t v = state[i];
        if (has_fault[dffs[i].index()]) v = apply_site(dffs[i], v);
        values[dffs[i].index()] = v;
      }

      // Topological evaluation with in-line fault injection.
      for (GateId id : order) {
        const Gate& g = netlist_.gate(id);
        std::uint64_t v;
        switch (g.kind) {
          case GateKind::kInput:
          case GateKind::kDff:
            continue;  // already loaded
          case GateKind::kConst0:
            v = 0;
            break;
          case GateKind::kConst1:
            v = ~0ULL;
            break;
          case GateKind::kBuf:
            v = values[g.fanin[0].index()];
            break;
          case GateKind::kNot:
            v = ~values[g.fanin[0].index()];
            break;
          case GateKind::kAnd:
          case GateKind::kNand:
            v = ~0ULL;
            for (GateId f : g.fanin) v &= values[f.index()];
            if (g.kind == GateKind::kNand) v = ~v;
            break;
          case GateKind::kOr:
          case GateKind::kNor:
            v = 0;
            for (GateId f : g.fanin) v |= values[f.index()];
            if (g.kind == GateKind::kNor) v = ~v;
            break;
          case GateKind::kXor:
            v = values[g.fanin[0].index()] ^ values[g.fanin[1].index()];
            break;
          case GateKind::kXnor:
            v = ~(values[g.fanin[0].index()] ^ values[g.fanin[1].index()]);
            break;
          default:
            v = 0;
        }
        if (has_fault[id.index()]) v = apply_site(id, v);
        values[id.index()] = v;
      }

      // Observe primary outputs.
      for (GateId po : netlist_.outputs()) {
        const std::uint64_t word = values[po.index()];
        const std::uint64_t good = (word & 1) ? ~0ULL : 0;
        detected |= word ^ good;
      }

      // Capture next state.  DFF input-pin faults (present only in
      // uncollapsed fault lists) force the captured bit directly.
      for (std::size_t i = 0; i < dffs.size(); ++i) {
        std::uint64_t v = values[netlist_.gate(dffs[i]).fanin[0].index()];
        for (const auto& pf : site[dffs[i].index()].pins) {
          v = (v & ~pf.machine_bit) | (pf.stuck_at ? pf.machine_bit : 0);
        }
        state[i] = v;
      }
    }

    for (std::size_t m = 0; m < group.size(); ++m) {
      if (detected & (1ULL << (m + 1))) {
        statuses[group[m]] = FaultStatus::kDetected;
      }
    }
  }
}

}  // namespace socet::faultsim
