#include "socet/faultsim/cone.hpp"

#include <algorithm>

namespace socet::faultsim {

using gate::GateId;
using gate::GateKind;

ConeCache::ConeCache(const gate::GateNetlist& netlist)
    : netlist_(netlist),
      cones_(netlist.gate_count()),
      built_(new std::atomic<unsigned char>[netlist.gate_count()]),
      topo_pos_(netlist.gate_count(), 0),
      seen_stamp_(netlist.gate_count(), 0) {
  for (std::size_t i = 0; i < netlist.gate_count(); ++i) {
    built_[i].store(0, std::memory_order_relaxed);
  }
  const auto& order = netlist.topo_order();
  for (std::size_t i = 0; i < order.size(); ++i) {
    topo_pos_[order[i].index()] = static_cast<std::uint32_t>(i);
  }
  // Force the lazily built fanout lists now, while construction is still
  // single-threaded; after this, every netlist_ access is a const read.
  (void)netlist.fanouts();
}

const std::vector<GateId>& ConeCache::of(GateId id) {
  if (built_[id.index()].load(std::memory_order_acquire)) {
    return cones_[id.index()];
  }
  std::lock_guard<std::mutex> lock(build_mutex_);
  if (!built_[id.index()].load(std::memory_order_relaxed)) {
    build_locked(id);
  }
  return cones_[id.index()];
}

void ConeCache::build_locked(GateId id) {
  // Forward BFS through fanouts; DFFs terminate propagation within one
  // scan pattern (their D value is the observation point).
  ++bfs_stamp_;
  std::vector<GateId> cone{id};
  seen_stamp_[id.index()] = bfs_stamp_;
  const auto& fanouts = netlist_.fanouts();
  for (std::size_t head = 0; head < cone.size(); ++head) {
    if (netlist_.gate(cone[head]).kind == GateKind::kDff && head != 0) {
      continue;
    }
    for (GateId next : fanouts[cone[head].index()]) {
      if (seen_stamp_[next.index()] == bfs_stamp_) continue;
      if (netlist_.gate(next).kind == GateKind::kDff) continue;
      seen_stamp_[next.index()] = bfs_stamp_;
      cone.push_back(next);
    }
  }
  std::sort(cone.begin(), cone.end(), [this](GateId a, GateId b) {
    return topo_pos_[a.index()] < topo_pos_[b.index()];
  });
  cones_[id.index()] = std::move(cone);
  built_cones_.fetch_add(1, std::memory_order_relaxed);
  built_[id.index()].store(1, std::memory_order_release);
}

}  // namespace socet::faultsim
