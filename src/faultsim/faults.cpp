#include "socet/faultsim/faults.hpp"

namespace socet::faultsim {

namespace {

using gate::Gate;
using gate::GateKind;

/// Is the fault "input `pin` of `g` stuck at `value`" equivalent to an
/// output-stem fault of the same gate (and therefore collapsible)?
bool input_fault_collapses(const Gate& g, bool value) {
  switch (g.kind) {
    case GateKind::kAnd:
    case GateKind::kNand:
      // A controlling 0 on any input fixes the output.
      return value == false;
    case GateKind::kOr:
    case GateKind::kNor:
      return value == true;
    case GateKind::kBuf:
    case GateKind::kNot:
    case GateKind::kDff:
      // Single-input: both input faults are equivalent to faults on the
      // driving stem / this gate's own output.
      return true;
    default:
      return false;  // XOR/XNOR inputs are not collapsible
  }
}

bool is_fault_site(const Gate& g) {
  // Constants have no meaningful stuck-at faults on their stems (they are
  // stuck by definition); everything else does.
  return g.kind != GateKind::kConst0 && g.kind != GateKind::kConst1;
}

}  // namespace

std::vector<Fault> enumerate_faults(const gate::GateNetlist& netlist,
                                    bool collapse) {
  std::vector<Fault> faults;
  const auto& gates = netlist.gates();
  for (std::size_t i = 0; i < gates.size(); ++i) {
    const Gate& g = gates[i];
    const gate::GateId id(static_cast<std::uint32_t>(i));
    if (is_fault_site(g)) {
      faults.push_back(Fault{id, -1, false});
      faults.push_back(Fault{id, -1, true});
    }
    // Input-pin faults matter on fanout branches; single-input gates'
    // input faults always collapse onto stems.
    if (g.fanin.size() < 2 && collapse) continue;
    if (g.kind == GateKind::kInput) continue;
    for (std::size_t p = 0; p < g.fanin.size(); ++p) {
      const GateKind driver = gates[g.fanin[p].index()].kind;
      for (bool value : {false, true}) {
        if (collapse && input_fault_collapses(g, value)) continue;
        // A pin tied to a constant stuck at that same constant is
        // functionally invisible; strip it like commercial fault lists do.
        if (collapse && ((driver == GateKind::kConst0 && !value) ||
                         (driver == GateKind::kConst1 && value))) {
          continue;
        }
        faults.push_back(
            Fault{id, static_cast<std::int32_t>(p), value});
      }
    }
  }
  return faults;
}

std::string describe_fault(const gate::GateNetlist& netlist,
                           const Fault& fault) {
  const auto& g = netlist.gate(fault.gate);
  std::string site = g.name.empty()
                         ? "g" + std::to_string(fault.gate.value())
                         : g.name;
  if (fault.pin >= 0) site += "/in" + std::to_string(fault.pin);
  return site + " s-a-" + (fault.stuck_at ? "1" : "0");
}

CoverageSummary summarize(const std::vector<FaultStatus>& statuses) {
  CoverageSummary s;
  s.total = statuses.size();
  for (FaultStatus status : statuses) {
    switch (status) {
      case FaultStatus::kDetected:
        ++s.detected;
        break;
      case FaultStatus::kUntestable:
        ++s.untestable;
        break;
      case FaultStatus::kAborted:
        ++s.aborted;
        break;
      case FaultStatus::kUndetected:
        break;
    }
  }
  return s;
}

}  // namespace socet::faultsim
