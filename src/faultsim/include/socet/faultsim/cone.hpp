// Shared fanout-cone cache for fault simulation.
//
// Every fault replay walks the topologically-sorted fanout cone of its
// site.  Cones depend only on the netlist, so one cache serves every lane
// width and every worker thread: the partitioned simulator's per-thread
// engines all borrow one ConeCache built over the shared read-only
// netlist.  Lookups of built cones are lock-free (an acquire load of the
// per-gate built flag); a miss builds the cone under a mutex with a
// stamped BFS scratch that is allocated once, not per cone.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "socet/gate/netlist.hpp"

namespace socet::faultsim {

class ConeCache {
 public:
  explicit ConeCache(const gate::GateNetlist& netlist);

  ConeCache(const ConeCache&) = delete;
  ConeCache& operator=(const ConeCache&) = delete;

  /// The fanout cone of `id` in topological order, `id` first.  DFFs
  /// terminate propagation (their D pin is the observation point within
  /// one scan pattern).  Thread-safe: concurrent callers may race to
  /// build the same cone; exactly one build wins and all callers see a
  /// fully published vector.
  const std::vector<gate::GateId>& of(gate::GateId id);

  /// Topological position of every gate (shared by engines for cone
  /// ordering and event-driven scheduling).
  [[nodiscard]] const std::vector<std::uint32_t>& topo_pos() const {
    return topo_pos_;
  }

  [[nodiscard]] const gate::GateNetlist& netlist() const { return netlist_; }

  /// Number of cones built so far (metrics / tests).
  [[nodiscard]] std::size_t built_count() const {
    return built_cones_.load(std::memory_order_relaxed);
  }

 private:
  void build_locked(gate::GateId id);

  const gate::GateNetlist& netlist_;
  std::vector<std::vector<gate::GateId>> cones_;
  /// One acquire/release flag per gate: set only after cones_[i] is
  /// fully constructed (cones_ itself is never resized after the ctor).
  std::unique_ptr<std::atomic<unsigned char>[]> built_;
  std::vector<std::uint32_t> topo_pos_;

  std::mutex build_mutex_;
  /// Stamped BFS scratch (guarded by build_mutex_): seen_stamp_[g] ==
  /// bfs_stamp_ marks g visited in the current build, so no
  /// gate_count-sized vector is allocated or cleared per cone.
  std::vector<std::uint64_t> seen_stamp_;
  std::uint64_t bfs_stamp_ = 0;
  std::atomic<std::size_t> built_cones_{0};
};

}  // namespace socet::faultsim
