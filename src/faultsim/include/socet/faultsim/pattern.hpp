// Scan test-pattern representation, shared by the fault-simulation
// kernels (block_engine.hpp), the public simulator facade (scan_sim.hpp)
// and the ATPG layer.
#pragma once

#include "socet/util/bitvector.hpp"

namespace socet::faultsim {

/// One full-scan test pattern.
struct ScanPattern {
  /// One bit per primary input, ordered like GateNetlist::inputs().
  util::BitVector pi;
  /// One bit per flip-flop, ordered like GateNetlist::dffs().
  util::BitVector ppi;
};

}  // namespace socet::faultsim
