// Lane-generic fault-simulation kernels behind a width-erased interface.
//
// A BlockEngine simulates 64*W patterns per pass (W = 1, 4 or 8 machine
// words — see lane.hpp) with the same algorithm at every width: good
// machine once per block, then per-fault fanout-cone replay with fault
// dropping.  Two kernel families implement the interface:
//
//   * a portable scalar family, compiled with the project's default
//     flags (the fixed W-word loops still auto-vectorize), and
//   * an AVX2 family, compiled in a separate -mavx2 translation unit and
//     selected at runtime only when the CPU reports AVX2 (the two
//     families use distinct tag types, so no COMDAT-merged symbol can
//     smuggle AVX2 code onto a pre-AVX2 machine).
//
// Engines share one ConeCache (cone.hpp) and keep per-engine value
// arrays, so the partitioned simulator can run one engine per worker
// thread over a shared read-only netlist.  The scratch stamps are 64-bit:
// a 32-bit stamp wraps after 2^32 fault replays and silently aliases
// stale scratch values into a fresh epoch (the seed bug; see
// tests/faultsim_kernel_test.cpp).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "socet/faultsim/cone.hpp"
#include "socet/faultsim/faults.hpp"
#include "socet/faultsim/pattern.hpp"
#include "socet/util/bitvector.hpp"

namespace socet::faultsim {

struct EngineOptions {
  /// Re-evaluate only fanout cones of nets whose packed pattern word
  /// changed between blocks, instead of a full eval_comb sweep.
  bool event_driven = true;
  /// During a fault's cone replay, skip gates none of whose fanins
  /// diverged from the good machine, and don't mark gates that settle
  /// back to their good value (the seed re-evaluated the entire cone).
  /// Semantics-preserving: an unmarked gate reads as its good value,
  /// which is exactly what it would have computed.
  bool replay_suppression = true;
  /// Starting value of the scratch epoch counter.  Test hook: placing the
  /// counter just below 2^32 proves the 64-bit stamps survive the
  /// boundary where a 32-bit counter wraps and corrupts lookups.
  std::uint64_t initial_stamp = 0;
};

/// Counters a run accumulates (merged into the obs metrics registry by
/// the ScanFaultSim facade).
struct EngineStats {
  std::uint64_t blocks = 0;
  std::uint64_t gates_evaluated = 0;  ///< good-machine gate evaluations
  std::uint64_t cone_replays = 0;     ///< faults replayed through a cone
  std::uint64_t faults_dropped = 0;   ///< newly detected (and dropped)

  EngineStats& operator+=(const EngineStats& o) {
    blocks += o.blocks;
    gates_evaluated += o.gates_evaluated;
    cone_replays += o.cone_replays;
    faults_dropped += o.faults_dropped;
    return *this;
  }
};

class BlockEngineBase {
 public:
  virtual ~BlockEngineBase() = default;

  [[nodiscard]] virtual unsigned lane_words() const = 0;
  [[nodiscard]] virtual const char* kernel_name() const = 0;

  /// Simulate `patterns` against faults[first, last); marks newly
  /// detected faults in `statuses` (kUndetected -> kDetected).  Other
  /// indices and statuses are untouched, so disjoint [first, last)
  /// ranges can run concurrently on per-thread engines.
  virtual void run(const std::vector<Fault>& faults, std::size_t first,
                   std::size_t last, const std::vector<ScanPattern>& patterns,
                   std::vector<FaultStatus>& statuses, EngineStats* stats) = 0;

  /// Good-machine responses for one pattern: values of POs then PPOs.
  virtual util::BitVector good_response(const ScanPattern& pattern) = 0;

  /// The response the circuit produces for `pattern` with `fault`
  /// injected (same PO+PPO layout as good_response).
  virtual util::BitVector faulty_response(const Fault& fault,
                                          const ScanPattern& pattern) = 0;
};

/// Portable kernels; `lane_words` must be 1, 4 or 8.
std::unique_ptr<BlockEngineBase> make_scalar_engine(
    unsigned lane_words, ConeCache& cones, const EngineOptions& options);

/// AVX2 kernels, or nullptr when this build has no AVX2 translation unit
/// or the CPU lacks AVX2.  `lane_words` must be 4 or 8 (a one-word lane
/// has nothing to vectorize).
std::unique_ptr<BlockEngineBase> make_avx2_engine(
    unsigned lane_words, ConeCache& cones, const EngineOptions& options);

/// Runtime CPU feature check used by make_avx2_engine (exposed so tests
/// and benches can report which kernel family actually ran).
bool cpu_has_avx2();

}  // namespace socet::faultsim
