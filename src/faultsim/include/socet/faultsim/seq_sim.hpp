// Sequential fault simulation (parallel-fault, 63 faulty machines + the
// good machine per pass).
//
// Used for the paper's "original circuit, no DFT" and "HSCAN-only" rows of
// Table 3: a vector sequence is applied from reset at the chip's primary
// inputs and responses are observed at the primary outputs only.  Bit 0 of
// every simulation word is the good machine; bits 1..63 carry one faulty
// machine each, with the fault permanently injected at its site.
#pragma once

#include <vector>

#include "socet/faultsim/faults.hpp"
#include "socet/util/bitvector.hpp"

namespace socet::faultsim {

class SequentialFaultSim {
 public:
  explicit SequentialFaultSim(const gate::GateNetlist& netlist);

  /// Apply `sequence` (one BitVector per cycle, one bit per primary input,
  /// ordered like GateNetlist::inputs()) from reset.  Faults whose machine
  /// diverges from the good machine at any primary output in any cycle are
  /// marked kDetected in `statuses`.
  void run(const std::vector<Fault>& faults,
           const std::vector<util::BitVector>& sequence,
           std::vector<FaultStatus>& statuses);

 private:
  const gate::GateNetlist& netlist_;
};

}  // namespace socet::faultsim
