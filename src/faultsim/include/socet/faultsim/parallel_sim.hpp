// Fault-partitioned scan fault simulation.
//
// Stuck-at detection is a per-fault property: whether fault f is caught
// by pattern set P does not depend on any other fault.  So the fault
// list splits into contiguous index chunks, one per worker thread, and
// each worker runs its own BlockEngine (private good/scratch arrays)
// over the SAME pattern set against its chunk only.  All engines borrow
// one shared read-only netlist and one shared ConeCache (cone.hpp), so
// a cone built by any worker serves every other.  Workers write
// disjoint ranges of the status vector, which makes the merged result
// byte-identical to a serial run — regardless of thread count, chunk
// boundaries or lane width.
#pragma once

#include <array>
#include <memory>
#include <vector>

#include "socet/faultsim/block_engine.hpp"
#include "socet/faultsim/cone.hpp"
#include "socet/faultsim/faults.hpp"
#include "socet/faultsim/pattern.hpp"
#include "socet/faultsim/scan_sim.hpp"
#include "socet/util/bitvector.hpp"

namespace socet::faultsim {

struct ParallelSimOptions {
  /// Worker threads; 0 = std::thread::hardware_concurrency().  One
  /// thread (or one small fault list) runs inline on the caller.
  unsigned threads = 0;
  /// Below this many faults the partitioning overhead outweighs the
  /// work; such runs stay single-threaded.
  std::size_t min_faults_per_thread = 64;
  /// Per-engine kernel options (lane width, AVX2, event-driven, ...).
  ScanSimOptions sim;
};

class ParallelScanFaultSim {
 public:
  explicit ParallelScanFaultSim(const gate::GateNetlist& netlist,
                                ParallelSimOptions options = {});

  /// Same contract as ScanFaultSim::run, same resulting statuses — the
  /// partitioning is invisible in the output.
  void run(const std::vector<Fault>& faults,
           const std::vector<ScanPattern>& patterns,
           std::vector<FaultStatus>& statuses);

  /// Single-pattern responses (serial; delegates to one engine).
  util::BitVector good_response(const ScanPattern& pattern);
  util::BitVector faulty_response(const Fault& fault,
                                  const ScanPattern& pattern);

  /// Worker count the partitioner chose on the most recent run().
  [[nodiscard]] unsigned last_threads() const { return last_threads_; }
  [[nodiscard]] unsigned last_lane_words() const { return last_lane_words_; }
  [[nodiscard]] const char* last_kernel() const { return last_kernel_; }

 private:
  BlockEngineBase& engine_for(unsigned worker, unsigned lane_words);

  const gate::GateNetlist& netlist_;
  ParallelSimOptions options_;
  ConeCache cones_;
  /// engines_[worker][slot] with slots W=1, 4, 8; created on demand and
  /// reused across runs so good-machine state stays warm per worker.
  std::vector<std::array<std::unique_ptr<BlockEngineBase>, 3>> engines_;
  unsigned last_threads_ = 0;
  unsigned last_lane_words_ = 0;
  const char* last_kernel_ = "";
};

}  // namespace socet::faultsim
