// Fixed-width simulation lane: W consecutive 64-bit pattern words.
//
// The classic parallel-pattern fault simulator packs 64 patterns into one
// machine word.  A Lane<W> widens that to 64*W patterns per pass: all
// bitwise gate evaluations become short fixed-trip loops over W words,
// which the compiler unrolls and vectorizes (SSE2 by default, AVX2 in the
// runtime-dispatched kernel TU — see block_engine.hpp).  W is a compile
// time constant so every loop bound is known and no lane ever touches the
// heap.
#pragma once

#include <cstdint>

// Lane methods are force-inlined: the scalar and AVX2 kernel translation
// units are compiled with different ISA flags, and an out-of-line copy of
// an inline function is a COMDAT the linker may merge across TUs —
// potentially keeping the AVX2-compiled body and running it on a CPU
// that never advertised AVX2.  Inlined bodies have no symbol to merge.
#if defined(__GNUC__) || defined(__clang__)
#define SOCET_LANE_INLINE __attribute__((always_inline)) inline
#else
#define SOCET_LANE_INLINE inline
#endif

namespace socet::faultsim {

template <unsigned W>
struct Lane {
  static_assert(W >= 1, "a lane needs at least one word");
  std::uint64_t w[W];

  static constexpr unsigned kWords = W;
  static constexpr unsigned kPatterns = 64 * W;

  static constexpr Lane zero() {
    Lane l{};
    return l;
  }

  static constexpr Lane ones() {
    Lane l{};
    for (unsigned i = 0; i < W; ++i) l.w[i] = ~0ULL;
    return l;
  }

  /// Broadcast a single stuck value across every pattern slot.
  static constexpr Lane fill(bool bit) { return bit ? ones() : zero(); }

  /// True when any masked bit is set — the "this fault is active / this
  /// observation point differs" test.
  [[nodiscard]] SOCET_LANE_INLINE bool any(const Lane& mask) const {
    std::uint64_t acc = 0;
    for (unsigned i = 0; i < W; ++i) acc |= w[i] & mask.w[i];
    return acc != 0;
  }

  [[nodiscard]] SOCET_LANE_INLINE bool any() const {
    std::uint64_t acc = 0;
    for (unsigned i = 0; i < W; ++i) acc |= w[i];
    return acc != 0;
  }

  /// Pattern slot `k` (bit k of the packed lane), used when single
  /// responses are read back out of a lane kernel.
  [[nodiscard]] SOCET_LANE_INLINE bool bit(unsigned k) const {
    return (w[k / 64] >> (k % 64)) & 1;
  }

  SOCET_LANE_INLINE void set_bit(unsigned k) { w[k / 64] |= 1ULL << (k % 64); }

  friend SOCET_LANE_INLINE Lane operator&(const Lane& a, const Lane& b) {
    Lane r;
    for (unsigned i = 0; i < W; ++i) r.w[i] = a.w[i] & b.w[i];
    return r;
  }
  friend SOCET_LANE_INLINE Lane operator|(const Lane& a, const Lane& b) {
    Lane r;
    for (unsigned i = 0; i < W; ++i) r.w[i] = a.w[i] | b.w[i];
    return r;
  }
  friend SOCET_LANE_INLINE Lane operator^(const Lane& a, const Lane& b) {
    Lane r;
    for (unsigned i = 0; i < W; ++i) r.w[i] = a.w[i] ^ b.w[i];
    return r;
  }
  friend SOCET_LANE_INLINE Lane operator~(const Lane& a) {
    Lane r;
    for (unsigned i = 0; i < W; ++i) r.w[i] = ~a.w[i];
    return r;
  }
  SOCET_LANE_INLINE Lane& operator&=(const Lane& b) {
    for (unsigned i = 0; i < W; ++i) w[i] &= b.w[i];
    return *this;
  }
  SOCET_LANE_INLINE Lane& operator|=(const Lane& b) {
    for (unsigned i = 0; i < W; ++i) w[i] |= b.w[i];
    return *this;
  }
  SOCET_LANE_INLINE Lane& operator^=(const Lane& b) {
    for (unsigned i = 0; i < W; ++i) w[i] ^= b.w[i];
    return *this;
  }
  friend SOCET_LANE_INLINE bool operator==(const Lane& a, const Lane& b) {
    std::uint64_t diff = 0;
    for (unsigned i = 0; i < W; ++i) diff |= a.w[i] ^ b.w[i];
    return diff == 0;
  }
  friend SOCET_LANE_INLINE bool operator!=(const Lane& a, const Lane& b) { return !(a == b); }
};

}  // namespace socet::faultsim
