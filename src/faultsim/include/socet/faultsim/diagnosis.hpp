// Fault diagnosis by dictionary matching.
//
// When a manufactured chip fails its test, the next question is *where*:
// which stuck-at fault best explains the observed responses.  The classic
// cause-effect answer builds a fault dictionary — per candidate fault,
// the set of (pattern, output bit) positions where its response differs
// from the fault-free one — and ranks candidates by how well their
// predicted failures match the observed failures.
//
// Scoring: per candidate,
//   match    = |predicted failures ∩ observed failures|
//   mispred  = |predicted \ observed|   (candidate fails where chip passed)
//   missed   = |observed \ predicted|   (chip fails the candidate misses)
//   score    = match - mispred - missed   (Jaccard-like; exact single
//              stuck-at culprits reach score == |observed| > 0)
//
// Intended for core-sized circuits (it simulates every candidate against
// every pattern); the tests diagnose injected faults on the GCD core.
#pragma once

#include <vector>

#include "socet/faultsim/scan_sim.hpp"

namespace socet::faultsim {

struct DiagnosisCandidate {
  Fault fault;
  long long score = 0;
  unsigned matched = 0;
  unsigned mispredicted = 0;
  unsigned missed = 0;

  /// Exact explanation: predicts all observed failures and nothing else.
  [[nodiscard]] bool exact() const {
    return mispredicted == 0 && missed == 0 && matched > 0;
  }
};

struct DiagnosisResult {
  /// Candidates sorted best-first; only candidates with score > the
  /// all-miss baseline are kept.
  std::vector<DiagnosisCandidate> ranked;
};

/// Diagnose from observed responses (one BitVector per pattern, in
/// good_response layout: POs then PPOs).
DiagnosisResult diagnose(const gate::GateNetlist& netlist,
                         const std::vector<ScanPattern>& patterns,
                         const std::vector<util::BitVector>& observed);

}  // namespace socet::faultsim
