// Combinational (full-scan) fault simulation, 64 patterns in parallel.
//
// A full-scan circuit is tested through its combinational view: every scan
// pattern sets the primary inputs and the flip-flop contents (pseudo
// primary inputs), and responses are observed at the primary outputs and
// flip-flop D pins (pseudo primary outputs).  The simulator runs the good
// machine once per 64-pattern block, then replays each still-undetected
// fault through the fault's fanout cone only, with fault dropping.
#pragma once

#include <vector>

#include "socet/faultsim/faults.hpp"
#include "socet/util/bitvector.hpp"

namespace socet::faultsim {

/// One full-scan test pattern.
struct ScanPattern {
  /// One bit per primary input, ordered like GateNetlist::inputs().
  util::BitVector pi;
  /// One bit per flip-flop, ordered like GateNetlist::dffs().
  util::BitVector ppi;
};

class ScanFaultSim {
 public:
  explicit ScanFaultSim(const gate::GateNetlist& netlist);

  /// Simulate `patterns` against `faults`; marks newly detected faults in
  /// `statuses` (kUndetected -> kDetected).  Other statuses are untouched.
  void run(const std::vector<Fault>& faults,
           const std::vector<ScanPattern>& patterns,
           std::vector<FaultStatus>& statuses);

  /// Good-machine responses for one pattern: values of POs then PPOs.
  /// Useful for building expected-response data.
  util::BitVector good_response(const ScanPattern& pattern);

  /// The response the circuit produces for `pattern` *with `fault`
  /// injected* (same PO+PPO layout as good_response).  Drives the fault
  /// dictionary used by diagnosis.
  util::BitVector faulty_response(const Fault& fault,
                                  const ScanPattern& pattern);

 private:
  /// Word of pattern bits (up to 64) applied to every PI/PPI.
  void load_block(const std::vector<ScanPattern>& patterns, std::size_t first,
                  std::size_t count);
  /// Faulty-machine word of `gate` under fault `f` (reading good values for
  /// anything outside the already-updated cone scratch).
  std::uint64_t faulty_word(gate::GateId id, const Fault& f);
  std::uint64_t lookup(gate::GateId id) const;
  const std::vector<gate::GateId>& cone_of(gate::GateId id);

  const gate::GateNetlist& netlist_;
  std::vector<std::uint64_t> good_;
  std::vector<std::uint64_t> scratch_;
  std::vector<std::uint32_t> stamp_;
  std::uint32_t current_stamp_ = 0;
  std::vector<std::vector<gate::GateId>> cones_;  ///< lazily built
  std::vector<char> cone_built_;
  std::vector<std::uint32_t> topo_pos_;
};

}  // namespace socet::faultsim
