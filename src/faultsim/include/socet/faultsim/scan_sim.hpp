// Combinational (full-scan) fault simulation.
//
// A full-scan circuit is tested through its combinational view: every scan
// pattern sets the primary inputs and the flip-flop contents (pseudo
// primary inputs), and responses are observed at the primary outputs and
// flip-flop D pins (pseudo primary outputs).  The simulator runs the good
// machine once per pattern block, then replays each still-undetected
// fault through the fault's fanout cone only, with fault dropping.
//
// ScanFaultSim is a facade over the lane-generic block kernels
// (block_engine.hpp): pattern blocks are 64, 256 or 512 patterns wide
// depending on how many patterns a run carries (overridable via
// ScanSimOptions), and on AVX2 hardware the wide widths run the
// vectorized kernel family.  Detection statuses are identical at every
// width and with either kernel family: detection is a per-fault,
// per-pattern property that block shape cannot change.
#pragma once

#include <array>
#include <memory>
#include <vector>

#include "socet/faultsim/block_engine.hpp"
#include "socet/faultsim/cone.hpp"
#include "socet/faultsim/faults.hpp"
#include "socet/faultsim/pattern.hpp"
#include "socet/util/bitvector.hpp"

namespace socet::faultsim {

struct ScanSimOptions {
  /// Pattern-block width in 64-bit words (1, 4 or 8); 0 picks the width
  /// from the run's pattern count (<=64 patterns: 1; <=256: 4; else 8).
  unsigned lane_words = 0;
  /// Use the AVX2 kernel family for multi-word lanes when the build has
  /// the AVX2 translation unit and the CPU reports AVX2.
  bool use_avx2 = true;
  /// Event-driven good machine: re-evaluate only fanout cones of nets
  /// whose packed pattern word changed between blocks.
  bool event_driven = true;
  /// Value-change suppression inside fault cone replays (see
  /// EngineOptions::replay_suppression).
  bool replay_suppression = true;
  /// Starting scratch-epoch value (test hook; see EngineOptions).
  std::uint64_t initial_stamp = 0;
};

class ScanFaultSim {
 public:
  explicit ScanFaultSim(const gate::GateNetlist& netlist,
                        ScanSimOptions options = {});

  /// Simulate `patterns` against `faults`; marks newly detected faults in
  /// `statuses` (kUndetected -> kDetected).  Other statuses are untouched.
  void run(const std::vector<Fault>& faults,
           const std::vector<ScanPattern>& patterns,
           std::vector<FaultStatus>& statuses);

  /// Good-machine responses for one pattern: values of POs then PPOs.
  /// Useful for building expected-response data.
  util::BitVector good_response(const ScanPattern& pattern);

  /// The response the circuit produces for `pattern` *with `fault`
  /// injected* (same PO+PPO layout as good_response).  Drives the fault
  /// dictionary used by diagnosis.
  util::BitVector faulty_response(const Fault& fault,
                                  const ScanPattern& pattern);

  /// Width the auto policy picks for a run of `pattern_count` patterns.
  static unsigned auto_lane_words(std::size_t pattern_count);

  /// Width and kernel family of the most recent run() (tests/benches).
  [[nodiscard]] unsigned last_lane_words() const { return last_lane_words_; }
  [[nodiscard]] const char* last_kernel() const { return last_kernel_; }

 private:
  BlockEngineBase& engine_for(unsigned lane_words);

  const gate::GateNetlist& netlist_;
  ScanSimOptions options_;
  ConeCache cones_;
  /// One lazily created engine per supported width (slots: W=1, 4, 8).
  std::array<std::unique_ptr<BlockEngineBase>, 3> engines_;
  unsigned last_lane_words_ = 0;
  const char* last_kernel_ = "";
};

}  // namespace socet::faultsim
