// Single stuck-at fault model.
//
// Faults live on gate output stems and on input pins of multi-input gates.
// Equivalence collapsing removes the classic redundancies (an AND input
// stuck-at-0 is indistinguishable from its output stuck-at-0, an inverter's
// input faults map to its driver's output faults, ...), matching what
// commercial ATPG fault lists do.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "socet/gate/netlist.hpp"

namespace socet::faultsim {

struct Fault {
  gate::GateId gate;
  /// -1 for the gate's output stem; otherwise the fanin pin index.
  std::int32_t pin = -1;
  /// The stuck value.
  bool stuck_at = false;

  friend bool operator==(const Fault&, const Fault&) = default;
};

enum class FaultStatus : std::uint8_t {
  kUndetected,
  kDetected,
  kUntestable,  ///< proven redundant by ATPG
  kAborted,     ///< ATPG gave up (backtrack limit)
};

/// Enumerate the stuck-at universe of `netlist`.  With `collapse` (the
/// default) structurally equivalent faults are dropped; without it, every
/// output stem and every input pin of 2+-input gates carries both faults.
std::vector<Fault> enumerate_faults(const gate::GateNetlist& netlist,
                                    bool collapse = true);

/// "G42/IN1 s-a-0" style description for diagnostics.
std::string describe_fault(const gate::GateNetlist& netlist,
                           const Fault& fault);

/// Fault coverage = detected / total.  Test efficiency treats untestable
/// faults as handled: (detected + untestable) / total.
struct CoverageSummary {
  std::size_t total = 0;
  std::size_t detected = 0;
  std::size_t untestable = 0;
  std::size_t aborted = 0;

  [[nodiscard]] double fault_coverage() const {
    return total == 0 ? 0.0 : 100.0 * static_cast<double>(detected) /
                                  static_cast<double>(total);
  }
  [[nodiscard]] double test_efficiency() const {
    return total == 0 ? 0.0
                      : 100.0 * static_cast<double>(detected + untestable) /
                            static_cast<double>(total);
  }
};

CoverageSummary summarize(const std::vector<FaultStatus>& statuses);

}  // namespace socet::faultsim
