#include "socet/faultsim/diagnosis.hpp"

#include <algorithm>

namespace socet::faultsim {

DiagnosisResult diagnose(const gate::GateNetlist& netlist,
                         const std::vector<ScanPattern>& patterns,
                         const std::vector<util::BitVector>& observed) {
  util::require(patterns.size() == observed.size(),
                "diagnose: need one observed response per pattern");
  ScanFaultSim sim(netlist);

  // Observed failure positions: (pattern, bit) pairs where the chip
  // disagreed with the fault-free machine.
  std::vector<util::BitVector> good;
  good.reserve(patterns.size());
  unsigned long long observed_failures = 0;
  for (std::size_t p = 0; p < patterns.size(); ++p) {
    good.push_back(sim.good_response(patterns[p]));
    util::require(good.back().width() == observed[p].width(),
                  "diagnose: observed response width mismatch");
    for (std::size_t b = 0; b < good.back().width(); ++b) {
      observed_failures += good.back().get(b) != observed[p].get(b);
    }
  }

  DiagnosisResult result;
  if (observed_failures == 0) return result;  // chip passed: nothing to do

  const auto faults = enumerate_faults(netlist);
  for (const Fault& fault : faults) {
    DiagnosisCandidate candidate;
    candidate.fault = fault;
    for (std::size_t p = 0; p < patterns.size(); ++p) {
      const auto predicted = sim.faulty_response(fault, patterns[p]);
      for (std::size_t b = 0; b < predicted.width(); ++b) {
        const bool predicted_fail = predicted.get(b) != good[p].get(b);
        const bool observed_fail = observed[p].get(b) != good[p].get(b);
        if (predicted_fail && observed_fail) {
          ++candidate.matched;
        } else if (predicted_fail) {
          ++candidate.mispredicted;
        } else if (observed_fail) {
          ++candidate.missed;
        }
      }
    }
    candidate.score = static_cast<long long>(candidate.matched) -
                      candidate.mispredicted - candidate.missed;
    // Keep anything better than explaining nothing at all.
    if (candidate.score >
        -static_cast<long long>(observed_failures)) {
      result.ranked.push_back(candidate);
    }
  }
  std::stable_sort(result.ranked.begin(), result.ranked.end(),
                   [](const DiagnosisCandidate& a,
                      const DiagnosisCandidate& b) {
                     return a.score > b.score;
                   });
  return result;
}

}  // namespace socet::faultsim
