// AVX2 kernel family.  This is the only translation unit compiled with
// -mavx2 (see src/faultsim/CMakeLists.txt); the Avx2Tag keeps every
// symbol here distinct from the scalar family's, and make_avx2_engine
// refuses to hand out an engine unless the CPU actually reports AVX2 —
// so no AVX2 instruction can run on a machine without it.
#include "block_engine_impl.hpp"

namespace socet::faultsim {

std::unique_ptr<BlockEngineBase> make_avx2_engine(
    unsigned lane_words, ConeCache& cones, const EngineOptions& options) {
  if (!cpu_has_avx2()) return nullptr;
  if (lane_words < 4) return nullptr;  // one word has nothing to vectorize
  return detail::make_engine<detail::Avx2Tag>(lane_words, cones, options);
}

}  // namespace socet::faultsim
