// Scalar kernel family + runtime CPU dispatch entry points.
#include "block_engine_impl.hpp"

namespace socet::faultsim {

std::unique_ptr<BlockEngineBase> make_scalar_engine(
    unsigned lane_words, ConeCache& cones, const EngineOptions& options) {
  return detail::make_engine<detail::ScalarTag>(lane_words, cones, options);
}

bool cpu_has_avx2() {
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

#if !defined(SOCET_HAVE_AVX2_TU)
// This build has no -mavx2 translation unit (non-x86 target or the
// compiler rejected the flag); callers fall back to the scalar family.
std::unique_ptr<BlockEngineBase> make_avx2_engine(unsigned /*lane_words*/,
                                                  ConeCache& /*cones*/,
                                                  const EngineOptions&) {
  return nullptr;
}
#endif

}  // namespace socet::faultsim
