// Template body of the lane-generic block kernels (see block_engine.hpp
// for the contract).  This header is private to the two kernel
// translation units:
//
//   block_engine.cpp       instantiates BlockEngine<W, ScalarTag>
//   block_engine_avx2.cpp  instantiates BlockEngine<W, Avx2Tag> (-mavx2)
//
// The Tag parameter exists purely to keep the two families' symbols
// distinct: if both TUs instantiated the *same* template, the linker
// would merge the COMDAT copies and either lose the vectorized kernels
// or, worse, run AVX2 instructions on a CPU that never advertised them.
#pragma once

#include <algorithm>
#include <cstddef>

#include "socet/faultsim/block_engine.hpp"
#include "socet/faultsim/lane.hpp"
#include "socet/util/error.hpp"

namespace socet::faultsim {
namespace detail {

struct ScalarTag {
  static constexpr const char* kName = "scalar";
};
struct Avx2Tag {
  static constexpr const char* kName = "avx2";
};

template <unsigned W, typename Tag>
class BlockEngine final : public BlockEngineBase {
 public:
  using L = Lane<W>;

  BlockEngine(ConeCache& cones, const EngineOptions& options)
      : netlist_(cones.netlist()),
        cones_(cones),
        options_(options),
        current_stamp_(options.initial_stamp),
        good_(netlist_.gate_count(), L::zero()),
        scratch_(netlist_.gate_count(), L::zero()),
        stamp_(netlist_.gate_count(), 0),
        touched_(netlist_.gate_count(), 0),
        is_observe_(netlist_.gate_count(), 0) {
    // Observation points: POs plus every DFF's D fanin (PPOs), built once
    // here instead of on every run() call.
    observe_ = netlist_.outputs();
    for (gate::GateId dff : netlist_.dffs()) {
      observe_.push_back(netlist_.gate(dff).fanin[0]);
    }
    std::sort(observe_.begin(), observe_.end());
    observe_.erase(std::unique(observe_.begin(), observe_.end()),
                   observe_.end());
    for (gate::GateId obs : observe_) is_observe_[obs.index()] = 1;
  }

  [[nodiscard]] unsigned lane_words() const override { return W; }
  [[nodiscard]] const char* kernel_name() const override { return Tag::kName; }

  void run(const std::vector<Fault>& faults, std::size_t first,
           std::size_t last, const std::vector<ScanPattern>& patterns,
           std::vector<FaultStatus>& statuses, EngineStats* stats) override {
    EngineStats local;
    for (std::size_t block = 0; block < patterns.size();
         block += L::kPatterns) {
      const unsigned count = static_cast<unsigned>(std::min<std::size_t>(
          L::kPatterns, patterns.size() - block));
      const L mask = block_mask(count);
      load_block(patterns, block, count, &local);
      ++local.blocks;

      for (std::size_t fi = first; fi < last; ++fi) {
        if (statuses[fi] != FaultStatus::kUndetected) continue;
        const Fault& f = faults[fi];
        ++current_stamp_;

        const L site = faulty_word(f.gate, f);
        if (!((site ^ good_[f.gate.index()]).any(mask))) continue;  // inactive
        scratch_[f.gate.index()] = site;
        stamp_[f.gate.index()] = current_stamp_;

        const auto& cone = cones_.of(f.gate);
        ++local.cone_replays;
        if (options_.replay_suppression) {
          // Only gates downstream of an actual divergence can diverge:
          // a gate none of whose fanins carry the current stamp reads
          // good values only, so its faulty value IS its good value —
          // skip the evaluation and leave it unmarked.  Likewise a gate
          // that settles back to its good value (masked) stays
          // unmarked, killing the wave early.
          //
          // Detection folds into the same walk: a fault is detected
          // exactly when some observation point diverges, divergent
          // gates are all evaluated here (suppression only skips gates
          // pinned to their good value), and observation points outside
          // the cone cannot move — so the first divergent observable
          // gate ends the replay, and no separate observe scan runs.
          bool detected = is_observe_[f.gate.index()] != 0;
          if (!detected) {
            for (std::size_t c = 1; c < cone.size(); ++c) {
              const gate::GateId id = cone[c];
              const gate::Gate& g = netlist_.gate(id);
              bool touched = false;
              for (gate::GateId fin : g.fanin) {
                if (stamp_[fin.index()] == current_stamp_) {
                  touched = true;
                  break;
                }
              }
              if (!touched) continue;
              const L v = cone_word(g);
              if (!((v ^ good_[id.index()]).any(mask))) continue;
              if (is_observe_[id.index()]) {
                detected = true;
                break;
              }
              scratch_[id.index()] = v;
              stamp_[id.index()] = current_stamp_;
            }
          }
          if (detected) {
            statuses[fi] = FaultStatus::kDetected;
            ++local.faults_dropped;
          }
        } else {
          // Seed-shaped replay: evaluate the whole cone, then scan every
          // observation point (the A/B baseline in bench_scaling).
          for (std::size_t c = 1; c < cone.size(); ++c) {
            const gate::GateId id = cone[c];
            scratch_[id.index()] = cone_word(netlist_.gate(id));
            stamp_[id.index()] = current_stamp_;
          }
          for (gate::GateId obs : observe_) {
            if ((lookup(obs) ^ good_[obs.index()]).any(mask)) {
              statuses[fi] = FaultStatus::kDetected;
              ++local.faults_dropped;
              break;
            }
          }
        }
      }
    }
    if (stats != nullptr) *stats += local;
  }

  util::BitVector good_response(const ScanPattern& pattern) override {
    single_ = pattern;  // reuse the block loader on a one-pattern span
    load_block({&single_, 1}, &stats_sink_);
    const auto& outputs = netlist_.outputs();
    const auto& dffs = netlist_.dffs();
    util::BitVector response(outputs.size() + dffs.size());
    for (std::size_t i = 0; i < outputs.size(); ++i) {
      response.set(i, good_[outputs[i].index()].bit(0));
    }
    for (std::size_t i = 0; i < dffs.size(); ++i) {
      const gate::GateId d = netlist_.gate(dffs[i]).fanin[0];
      response.set(outputs.size() + i, good_[d.index()].bit(0));
    }
    return response;
  }

  util::BitVector faulty_response(const Fault& fault,
                                  const ScanPattern& pattern) override {
    single_ = pattern;
    load_block({&single_, 1}, &stats_sink_);
    ++current_stamp_;
    scratch_[fault.gate.index()] = faulty_word(fault.gate, fault);
    stamp_[fault.gate.index()] = current_stamp_;
    const auto& cone = cones_.of(fault.gate);
    for (std::size_t c = 1; c < cone.size(); ++c) {
      scratch_[cone[c].index()] = cone_word(netlist_.gate(cone[c]));
      stamp_[cone[c].index()] = current_stamp_;
    }

    const auto& outputs = netlist_.outputs();
    const auto& dffs = netlist_.dffs();
    util::BitVector response(outputs.size() + dffs.size());
    for (std::size_t i = 0; i < outputs.size(); ++i) {
      response.set(i, lookup(outputs[i]).bit(0));
    }
    for (std::size_t i = 0; i < dffs.size(); ++i) {
      const gate::GateId d = netlist_.gate(dffs[i]).fanin[0];
      response.set(outputs.size() + i, lookup(d).bit(0));
    }
    return response;
  }

 private:
  /// Mask with one bit per live pattern in a partial final block.
  static L block_mask(unsigned count) {
    if (count == L::kPatterns) return L::ones();
    L mask = L::zero();
    for (unsigned i = 0; i < W; ++i) {
      if (count >= 64 * (i + 1)) {
        mask.w[i] = ~0ULL;
      } else if (count > 64 * i) {
        mask.w[i] = (1ULL << (count - 64 * i)) - 1;
      }
    }
    return mask;
  }

  L lookup(gate::GateId id) const {
    return stamp_[id.index()] == current_stamp_ ? scratch_[id.index()]
                                                : good_[id.index()];
  }

  /// Good-machine value of `g` from the current good_ array.
  L eval_gate(const gate::Gate& g) const {
    L v = L::zero();
    switch (g.kind) {
      case gate::GateKind::kConst0:
        return L::zero();
      case gate::GateKind::kConst1:
        return L::ones();
      case gate::GateKind::kBuf:
        return good_[g.fanin[0].index()];
      case gate::GateKind::kNot:
        return ~good_[g.fanin[0].index()];
      case gate::GateKind::kAnd:
      case gate::GateKind::kNand:
        v = L::ones();
        for (gate::GateId f : g.fanin) v &= good_[f.index()];
        return g.kind == gate::GateKind::kNand ? ~v : v;
      case gate::GateKind::kOr:
      case gate::GateKind::kNor:
        v = L::zero();
        for (gate::GateId f : g.fanin) v |= good_[f.index()];
        return g.kind == gate::GateKind::kNor ? ~v : v;
      case gate::GateKind::kXor:
        return good_[g.fanin[0].index()] ^ good_[g.fanin[1].index()];
      case gate::GateKind::kXnor:
        return ~(good_[g.fanin[0].index()] ^ good_[g.fanin[1].index()]);
      case gate::GateKind::kInput:
      case gate::GateKind::kDff:
        break;  // value sources are loaded, never evaluated
    }
    util::raise("block engine: cannot evaluate a value source");
  }

  /// Faulty-machine lane of the fault site itself (the only gate where
  /// a stem or pin value can be forced).
  L faulty_word(gate::GateId id, const Fault& f) {
    const gate::Gate& g = netlist_.gate(id);
    if (id == f.gate && f.pin < 0) return L::fill(f.stuck_at);
    auto in = [&](std::size_t pin) -> L {
      if (id == f.gate && static_cast<std::int32_t>(pin) == f.pin) {
        return L::fill(f.stuck_at);
      }
      return lookup(g.fanin[pin]);
    };
    L v = L::zero();
    switch (g.kind) {
      case gate::GateKind::kInput:
      case gate::GateKind::kDff:
        return lookup(id);  // value sources: unchanged within a pattern
      case gate::GateKind::kConst0:
        return L::zero();
      case gate::GateKind::kConst1:
        return L::ones();
      case gate::GateKind::kBuf:
        return in(0);
      case gate::GateKind::kNot:
        return ~in(0);
      case gate::GateKind::kAnd:
      case gate::GateKind::kNand:
        v = L::ones();
        for (std::size_t p = 0; p < g.fanin.size(); ++p) v &= in(p);
        return g.kind == gate::GateKind::kNand ? ~v : v;
      case gate::GateKind::kOr:
      case gate::GateKind::kNor:
        v = L::zero();
        for (std::size_t p = 0; p < g.fanin.size(); ++p) v |= in(p);
        return g.kind == gate::GateKind::kNor ? ~v : v;
      case gate::GateKind::kXor:
        return in(0) ^ in(1);
      case gate::GateKind::kXnor:
        return ~(in(0) ^ in(1));
    }
    util::raise("faulty_word: unknown gate kind");
  }

  /// Faulty-machine lane of a downstream cone gate: no fault can be
  /// forced here (only the site carries the stem/pin), so the per-fanin
  /// fault checks disappear from the replay's innermost loop.
  L cone_word(const gate::Gate& g) {
    L v = L::zero();
    switch (g.kind) {
      case gate::GateKind::kConst0:
        return L::zero();
      case gate::GateKind::kConst1:
        return L::ones();
      case gate::GateKind::kBuf:
        return lookup(g.fanin[0]);
      case gate::GateKind::kNot:
        return ~lookup(g.fanin[0]);
      case gate::GateKind::kAnd:
      case gate::GateKind::kNand:
        v = L::ones();
        for (gate::GateId f : g.fanin) v &= lookup(f);
        return g.kind == gate::GateKind::kNand ? ~v : v;
      case gate::GateKind::kOr:
      case gate::GateKind::kNor:
        v = L::zero();
        for (gate::GateId f : g.fanin) v |= lookup(f);
        return g.kind == gate::GateKind::kNor ? ~v : v;
      case gate::GateKind::kXor:
        return lookup(g.fanin[0]) ^ lookup(g.fanin[1]);
      case gate::GateKind::kXnor:
        return ~(lookup(g.fanin[0]) ^ lookup(g.fanin[1]));
      case gate::GateKind::kInput:
      case gate::GateKind::kDff:
        break;  // cones exclude sources (see ConeCache::build_locked)
    }
    util::raise("cone_word: value source inside a fanout cone");
  }

  struct PatternSpan {
    const ScanPattern* data;
    std::size_t size;
  };

  void load_block(const std::vector<ScanPattern>& patterns, std::size_t first,
                  unsigned count, EngineStats* stats) {
    load_sources(&patterns[first], count);
    settle(stats);
  }

  void load_block(PatternSpan span, EngineStats* stats) {
    load_sources(span.data, static_cast<unsigned>(span.size));
    settle(stats);
  }

  /// Pack `count` patterns into the PI/PPI lanes; mark the fanouts of
  /// every source whose lane actually changed (the event seed set).
  void load_sources(const ScanPattern* patterns, unsigned count) {
    const auto& inputs = netlist_.inputs();
    const auto& dffs = netlist_.dffs();
    const auto& fanouts = netlist_.fanouts();
    auto drive = [&](gate::GateId source, const L& lane) {
      const std::size_t i = source.index();
      if (good_valid_ && lane == good_[i]) return;
      good_[i] = lane;
      for (gate::GateId out : fanouts[i]) touched_[out.index()] = 1;
    };
    for (std::size_t i = 0; i < inputs.size(); ++i) {
      L lane = L::zero();
      for (unsigned k = 0; k < count; ++k) {
        if (patterns[k].pi.get(i)) lane.set_bit(k);
      }
      drive(inputs[i], lane);
    }
    for (std::size_t i = 0; i < dffs.size(); ++i) {
      L lane = L::zero();
      for (unsigned k = 0; k < count; ++k) {
        if (patterns[k].ppi.get(i)) lane.set_bit(k);
      }
      drive(dffs[i], lane);
    }
  }

  /// Settle the good machine.  First block (or event-driven disabled):
  /// full topological sweep.  Otherwise only gates downstream of a
  /// changed net are re-evaluated, and a gate that settles to its old
  /// value stops the wave (value-change suppression).
  void settle(EngineStats* stats) {
    const auto& gates = netlist_.gates();
    const auto& fanouts = netlist_.fanouts();
    if (!good_valid_ || !options_.event_driven) {
      for (gate::GateId id : netlist_.topo_order()) {
        const gate::Gate& g = gates[id.index()];
        touched_[id.index()] = 0;
        if (g.kind == gate::GateKind::kInput ||
            g.kind == gate::GateKind::kDff) {
          continue;
        }
        good_[id.index()] = eval_gate(g);
        if (stats != nullptr) ++stats->gates_evaluated;
      }
      good_valid_ = true;
      return;
    }
    for (gate::GateId id : netlist_.topo_order()) {
      if (!touched_[id.index()]) continue;
      touched_[id.index()] = 0;
      const gate::Gate& g = gates[id.index()];
      // A DFF can sit in its D driver's fanout list; it is a value
      // source here (loaded, never evaluated), as is any input.
      if (g.kind == gate::GateKind::kInput || g.kind == gate::GateKind::kDff) {
        continue;
      }
      const L v = eval_gate(g);
      if (stats != nullptr) ++stats->gates_evaluated;
      if (v == good_[id.index()]) continue;  // wave dies here
      good_[id.index()] = v;
      for (gate::GateId out : fanouts[id.index()]) touched_[out.index()] = 1;
    }
  }

  const gate::GateNetlist& netlist_;
  ConeCache& cones_;
  EngineOptions options_;
  std::uint64_t current_stamp_;
  std::vector<L> good_;
  std::vector<L> scratch_;
  std::vector<std::uint64_t> stamp_;
  std::vector<unsigned char> touched_;
  std::vector<unsigned char> is_observe_;
  std::vector<gate::GateId> observe_;
  /// good_ holds the settled values of the previous block (event-driven
  /// incremental evaluation is valid once true).
  bool good_valid_ = false;
  ScanPattern single_;       ///< staging slot for the response entry points
  EngineStats stats_sink_;   ///< response calls fold their stats here
};

template <typename Tag>
std::unique_ptr<BlockEngineBase> make_engine(unsigned lane_words,
                                             ConeCache& cones,
                                             const EngineOptions& options) {
  switch (lane_words) {
    case 1:
      return std::make_unique<BlockEngine<1, Tag>>(cones, options);
    case 4:
      return std::make_unique<BlockEngine<4, Tag>>(cones, options);
    case 8:
      return std::make_unique<BlockEngine<8, Tag>>(cones, options);
    default:
      util::raise("block engine: lane width must be 1, 4 or 8 words");
  }
}

}  // namespace detail
}  // namespace socet::faultsim
