// The Core: what a core provider ships under the SOCET methodology.
//
// One call to Core::prepare performs the provider-side, one-time work of
// the paper's Section 3: HSCAN insertion, RCG extraction, and synthesis of
// the standard version menu (Figures 6/8).  The user-side chip flow then
// consumes only this object: port interface, per-version latency tables
// and overheads, scan depth, and the precomputed test-set size.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "socet/hscan/hscan.hpp"
#include "socet/rtl/netlist.hpp"
#include "socet/transparency/versions.hpp"

namespace socet::core {

struct CoreCostModels {
  hscan::HscanCostModel hscan;
  transparency::TransparencyCostModel transparency;
};

/// Everything a core provider ships for a *hard* core: the interface and
/// DFT/transparency summary, but no netlist.  See core/serialize.hpp for
/// the text format.
struct CoreInterface {
  std::string name;
  std::vector<rtl::Port> ports;
  unsigned scan_vectors = 0;
  unsigned hscan_overhead_cells = 0;
  unsigned hscan_max_depth = 0;
  unsigned fscan_overhead_cells = 0;
  unsigned flip_flops = 0;
  std::vector<transparency::CoreVersion> versions;
};

class Core {
 public:
  /// Run the full provider-side flow on `netlist`: HSCAN chains, RCG,
  /// standard three-version transparency menu.
  static Core prepare(rtl::Netlist netlist, const CoreCostModels& cost = {});

  /// Reconstruct a Core from a shipped interface (hard cores).  The
  /// resulting Core carries a ports-only netlist: it plugs into Soc,
  /// planning and optimization exactly like a prepared core, but cannot be
  /// elaborated or re-analyzed.
  static Core from_interface(const CoreInterface& interface);

  /// The shippable summary of this core.
  CoreInterface to_interface() const;

  const std::string& name() const { return netlist_->name(); }
  const rtl::Netlist& netlist() const { return *netlist_; }
  const hscan::HscanConfig& hscan() const { return hscan_; }

  const std::vector<transparency::CoreVersion>& versions() const {
    return versions_;
  }
  const transparency::CoreVersion& version(std::size_t index) const {
    return versions_.at(index);
  }
  std::size_t version_count() const { return versions_.size(); }

  /// Size of the precomputed combinational test set (e.g. from ATPG).
  /// Must be set before chip-level TAT computation.
  void set_scan_vectors(unsigned vectors) { scan_vectors_ = vectors; }
  unsigned scan_vectors() const { return scan_vectors_; }

  /// HSCAN vectors = scan vectors expanded over the chain depth (the
  /// paper's 105 -> 525 for the DISPLAY).
  unsigned hscan_vectors() const {
    return hscan_.sequence_length(scan_vectors_);
  }

  /// Cells added by the core-level DFT (HSCAN chains).
  unsigned hscan_overhead_cells() const { return hscan_.overhead_cells; }
  /// Cells full scan would have cost instead (FSCAN column of Table 2).
  unsigned fscan_overhead_cells() const { return fscan_cells_; }
  /// Widths of all ports, for boundary-scan cell accounting.
  unsigned total_port_bits() const;
  unsigned flip_flop_count() const { return ff_count_; }

 private:
  Core() = default;

  unsigned ff_count_ = 0;

  /// Heap-held so Core stays cheaply movable and version/config references
  /// into the netlist stay stable.
  std::shared_ptr<const rtl::Netlist> netlist_;
  hscan::HscanConfig hscan_;
  std::vector<transparency::CoreVersion> versions_;
  unsigned scan_vectors_ = 0;
  unsigned fscan_cells_ = 0;
};

}  // namespace socet::core
