// Text serialization of the shipped core interface.
//
// A hard-core provider under the SOCET methodology ships, per core: the
// port list, the precomputed test-set size, the HSCAN summary (overhead +
// chain depth, which fixes the vector expansion), the FSCAN/FF numbers
// the baselines need, and the transparency version menu (Figures 6/8).
// This module renders all of that as a line-oriented, diff-friendly text
// format and parses it back — so an SOC integrator can plan and optimize
// a chip (Section 5) without ever seeing the core's netlist.
//
// Format (one declaration per line, '#' comments allowed):
//
//   socet-core-interface v1
//   core CPU
//   flip_flops 46
//   scan_vectors 110
//   hscan 24 5          # overhead cells, max chain depth
//   fscan 184
//   port Data in data 8
//   port AddrLo out data 8
//   version Version_1 10
//   edge Data AddrLo 1 0 0   # input output latency serial_group added_mux
//   end
#pragma once

#include <string>

#include "socet/core/core.hpp"

namespace socet::core {

/// Render `core`'s shippable interface.
std::string serialize_interface(const Core& core);

/// Render an interface struct directly.
std::string serialize_interface_data(const CoreInterface& interface);

/// Parse an interface description.  Throws util::Error with a line number
/// on malformed input.
CoreInterface parse_interface(const std::string& text);

}  // namespace socet::core
