#include "socet/core/serialize.hpp"

#include <sstream>

namespace socet::core {

namespace {

/// Version names may contain spaces; the format swaps them for '_'.
std::string encode_name(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    if (c == ' ') c = '_';
  }
  return out;
}

std::string decode_name(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    if (c == '_') c = ' ';
  }
  return out;
}

[[noreturn]] void parse_error(std::size_t line, const std::string& message) {
  util::raise("parse_interface: line " + std::to_string(line) + ": " +
              message);
}

}  // namespace

std::string serialize_interface(const Core& core) {
  return serialize_interface_data(core.to_interface());
}

std::string serialize_interface_data(const CoreInterface& interface) {
  std::ostringstream out;
  out << "socet-core-interface v1\n";
  out << "core " << interface.name << "\n";
  out << "flip_flops " << interface.flip_flops << "\n";
  out << "scan_vectors " << interface.scan_vectors << "\n";
  out << "hscan " << interface.hscan_overhead_cells << " "
      << interface.hscan_max_depth << "\n";
  out << "fscan " << interface.fscan_overhead_cells << "\n";
  for (const rtl::Port& port : interface.ports) {
    out << "port " << port.name << " "
        << (port.dir == rtl::PortDir::kInput ? "in" : "out") << " "
        << (port.kind == rtl::PortKind::kData ? "data" : "control") << " "
        << port.width << "\n";
  }
  for (const auto& version : interface.versions) {
    out << "version " << encode_name(version.name) << " "
        << version.extra_cells << "\n";
    for (const auto& edge : version.edges) {
      out << "edge " << interface.ports.at(edge.input.index()).name << " "
          << interface.ports.at(edge.output.index()).name << " "
          << edge.latency << " " << edge.serial_group << " "
          << (edge.via_added_mux ? 1 : 0) << "\n";
    }
  }
  out << "end\n";
  return out.str();
}

CoreInterface parse_interface(const std::string& text) {
  CoreInterface interface;
  std::istringstream in(text);
  std::string line;
  std::size_t line_no = 0;
  bool saw_header = false;
  bool saw_end = false;

  auto port_index = [&](const std::string& name,
                        std::size_t at) -> rtl::PortId {
    for (std::size_t i = 0; i < interface.ports.size(); ++i) {
      if (interface.ports[i].name == name) {
        return rtl::PortId(static_cast<std::uint32_t>(i));
      }
    }
    parse_error(at, "unknown port '" + name + "'");
  };

  while (std::getline(in, line)) {
    ++line_no;
    // Strip comments and whitespace-only lines.
    if (auto hash = line.find('#'); hash != std::string::npos) {
      line.erase(hash);
    }
    std::istringstream tokens(line);
    std::string keyword;
    if (!(tokens >> keyword)) continue;
    if (saw_end) parse_error(line_no, "content after 'end'");

    if (!saw_header) {
      std::string version_tag;
      if (keyword != "socet-core-interface" || !(tokens >> version_tag) ||
          version_tag != "v1") {
        parse_error(line_no, "expected 'socet-core-interface v1' header");
      }
      saw_header = true;
      continue;
    }

    if (keyword == "core") {
      if (!(tokens >> interface.name)) parse_error(line_no, "missing name");
    } else if (keyword == "flip_flops") {
      if (!(tokens >> interface.flip_flops)) parse_error(line_no, "bad count");
    } else if (keyword == "scan_vectors") {
      if (!(tokens >> interface.scan_vectors)) parse_error(line_no, "bad count");
    } else if (keyword == "hscan") {
      if (!(tokens >> interface.hscan_overhead_cells >>
            interface.hscan_max_depth)) {
        parse_error(line_no, "expected overhead and depth");
      }
    } else if (keyword == "fscan") {
      if (!(tokens >> interface.fscan_overhead_cells)) {
        parse_error(line_no, "bad count");
      }
    } else if (keyword == "port") {
      rtl::Port port;
      std::string dir;
      std::string kind;
      if (!(tokens >> port.name >> dir >> kind >> port.width)) {
        parse_error(line_no, "expected 'port <name> in|out data|control <w>'");
      }
      if (dir == "in") {
        port.dir = rtl::PortDir::kInput;
      } else if (dir == "out") {
        port.dir = rtl::PortDir::kOutput;
      } else {
        parse_error(line_no, "direction must be in|out");
      }
      if (kind == "data") {
        port.kind = rtl::PortKind::kData;
      } else if (kind == "control") {
        port.kind = rtl::PortKind::kControl;
      } else {
        parse_error(line_no, "kind must be data|control");
      }
      if (port.width == 0) parse_error(line_no, "zero-width port");
      interface.ports.push_back(std::move(port));
    } else if (keyword == "version") {
      transparency::CoreVersion version;
      std::string encoded;
      if (!(tokens >> encoded >> version.extra_cells)) {
        parse_error(line_no, "expected 'version <name> <cells>'");
      }
      version.name = decode_name(encoded);
      interface.versions.push_back(std::move(version));
    } else if (keyword == "edge") {
      if (interface.versions.empty()) {
        parse_error(line_no, "edge before any version");
      }
      std::string in_name;
      std::string out_name;
      transparency::TransparencyEdgeSpec edge;
      int added = 0;
      if (!(tokens >> in_name >> out_name >> edge.latency >>
            edge.serial_group >> added)) {
        parse_error(line_no,
                    "expected 'edge <in> <out> <lat> <group> <mux>'");
      }
      edge.input = port_index(in_name, line_no);
      edge.output = port_index(out_name, line_no);
      edge.via_added_mux = added != 0;
      if (edge.latency == 0) parse_error(line_no, "zero latency");
      interface.versions.back().edges.push_back(edge);
    } else if (keyword == "end") {
      saw_end = true;
    } else {
      parse_error(line_no, "unknown keyword '" + keyword + "'");
    }
  }
  if (!saw_header) util::raise("parse_interface: empty input");
  if (!saw_end) util::raise("parse_interface: missing 'end'");
  if (interface.name.empty()) util::raise("parse_interface: missing 'core'");
  return interface;
}

}  // namespace socet::core
