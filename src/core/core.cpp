#include "socet/core/core.hpp"

namespace socet::core {

Core Core::prepare(rtl::Netlist netlist, const CoreCostModels& cost) {
  netlist.validate();
  Core core;
  core.netlist_ = std::make_shared<const rtl::Netlist>(std::move(netlist));
  core.ff_count_ = core.netlist_->flip_flop_count();
  core.hscan_ = hscan::build_hscan(*core.netlist_, cost.hscan);
  core.fscan_cells_ =
      hscan::fscan_overhead_cells(*core.netlist_, cost.hscan);
  transparency::Rcg rcg(*core.netlist_, &core.hscan_);
  core.versions_ = transparency::standard_versions(rcg, cost.transparency);
  return core;
}

Core Core::from_interface(const CoreInterface& interface) {
  util::require(!interface.name.empty(), "from_interface: missing name");
  util::require(!interface.versions.empty(),
                "from_interface: need at least one version");
  rtl::Netlist stub(interface.name);
  for (const rtl::Port& port : interface.ports) {
    if (port.dir == rtl::PortDir::kInput) {
      stub.add_input(port.name, port.width, port.kind);
    } else {
      stub.add_output(port.name, port.width, port.kind);
    }
  }
  Core core;
  core.netlist_ = std::make_shared<const rtl::Netlist>(std::move(stub));
  core.ff_count_ = interface.flip_flops;
  core.scan_vectors_ = interface.scan_vectors;
  core.fscan_cells_ = interface.fscan_overhead_cells;
  core.hscan_.overhead_cells = interface.hscan_overhead_cells;
  core.hscan_.max_depth = interface.hscan_max_depth;
  core.versions_ = interface.versions;
  // Port ids inside version edges must be valid against the stub netlist.
  for (const auto& version : core.versions_) {
    for (const auto& edge : version.edges) {
      util::require(edge.input.index() < core.netlist_->ports().size() &&
                        edge.output.index() < core.netlist_->ports().size(),
                    "from_interface: version edge references unknown port");
    }
  }
  return core;
}

CoreInterface Core::to_interface() const {
  CoreInterface interface;
  interface.name = name();
  interface.ports = netlist_->ports();
  interface.scan_vectors = scan_vectors_;
  interface.hscan_overhead_cells = hscan_.overhead_cells;
  interface.hscan_max_depth = hscan_.max_depth;
  interface.fscan_overhead_cells = fscan_cells_;
  interface.flip_flops = ff_count_;
  interface.versions = versions_;
  return interface;
}

unsigned Core::total_port_bits() const {
  unsigned bits = 0;
  for (const auto& port : netlist_->ports()) bits += port.width;
  return bits;
}

}  // namespace socet::core
