#include "socet/util/bitvector.hpp"

#include <bit>

#include "socet/util/error.hpp"

namespace socet::util {

BitVector::BitVector(std::size_t width)
    : width_(width), words_(words_for(width), 0) {}

BitVector::BitVector(std::size_t width, std::uint64_t value)
    : BitVector(width) {
  require(width >= 64 || value < (1ULL << width),
          "BitVector: value does not fit in width");
  if (!words_.empty()) words_[0] = value;
}

BitVector BitVector::from_string(const std::string& bits) {
  require(!bits.empty(), "BitVector::from_string: empty string");
  BitVector v(bits.size());
  for (std::size_t i = 0; i < bits.size(); ++i) {
    const char c = bits[bits.size() - 1 - i];
    require(c == '0' || c == '1', "BitVector::from_string: bad character");
    v.set(i, c == '1');
  }
  return v;
}

bool BitVector::get(std::size_t bit) const {
  require(bit < width_, "BitVector::get: bit out of range");
  return (words_[bit / 64] >> (bit % 64)) & 1;
}

void BitVector::set(std::size_t bit, bool value) {
  require(bit < width_, "BitVector::set: bit out of range");
  const std::uint64_t mask = 1ULL << (bit % 64);
  if (value) {
    words_[bit / 64] |= mask;
  } else {
    words_[bit / 64] &= ~mask;
  }
}

void BitVector::set_all(bool value) {
  for (auto& word : words_) word = value ? ~0ULL : 0ULL;
  mask_top();
}

BitVector BitVector::slice(std::size_t lo, std::size_t len) const {
  require(lo + len <= width_, "BitVector::slice: range out of bounds");
  BitVector out(len);
  for (std::size_t i = 0; i < len; ++i) out.set(i, get(lo + i));
  return out;
}

void BitVector::write_slice(std::size_t lo, const BitVector& src) {
  require(lo + src.width() <= width_,
          "BitVector::write_slice: range out of bounds");
  for (std::size_t i = 0; i < src.width(); ++i) set(lo + i, src.get(i));
}

void BitVector::append(const BitVector& other) {
  const std::size_t old_width = width_;
  width_ += other.width();
  words_.resize(words_for(width_), 0);
  for (std::size_t i = 0; i < other.width(); ++i) {
    set(old_width + i, other.get(i));
  }
}

std::uint64_t BitVector::to_u64() const {
  require(width_ <= 64, "BitVector::to_u64: width exceeds 64");
  return words_.empty() ? 0 : words_[0];
}

std::string BitVector::to_string() const {
  std::string out(width_, '0');
  for (std::size_t i = 0; i < width_; ++i) {
    if (get(i)) out[width_ - 1 - i] = '1';
  }
  return out;
}

std::size_t BitVector::count_ones() const {
  std::size_t total = 0;
  for (auto word : words_) total += static_cast<std::size_t>(std::popcount(word));
  return total;
}

bool operator==(const BitVector& a, const BitVector& b) {
  return a.width_ == b.width_ && a.words_ == b.words_;
}

void BitVector::mask_top() {
  const std::size_t rem = width_ % 64;
  if (rem != 0 && !words_.empty()) {
    words_.back() &= (1ULL << rem) - 1;
  }
}

}  // namespace socet::util
