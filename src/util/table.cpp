#include "socet/util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "socet/util/error.hpp"

namespace socet::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  require(!headers_.empty(), "Table: need at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  require(cells.size() == headers_.size(),
          "Table::add_row: cell count does not match header count");
  rows_.push_back(std::move(cells));
}

std::string Table::to_text() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) widths[c] = std::max(widths[c], row[c].size());
  }

  auto rule = [&widths]() {
    std::string line = "+";
    for (auto w : widths) line += std::string(w + 2, '-') + "+";
    return line + "\n";
  };
  auto render_row = [&widths](const std::vector<std::string>& cells) {
    std::string line = "|";
    for (std::size_t c = 0; c < cells.size(); ++c) {
      line += " " + cells[c] + std::string(widths[c] - cells[c].size(), ' ') + " |";
    }
    return line + "\n";
  };

  std::string out = rule() + render_row(headers_) + rule();
  for (const auto& row : rows_) out += render_row(row);
  out += rule();
  return out;
}

std::string Table::to_csv() const {
  auto quote = [](const std::string& cell) {
    if (cell.find(',') == std::string::npos) return cell;
    return "\"" + cell + "\"";
  };
  std::ostringstream out;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out << (c ? "," : "") << quote(headers_[c]);
  }
  out << "\n";
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << (c ? "," : "") << quote(row[c]);
    }
    out << "\n";
  }
  return out.str();
}

std::string Table::num(double value, int digits) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", digits, value);
  return buffer;
}

}  // namespace socet::util
