// Error handling helpers.
//
// The library throws `socet::util::Error` for violated preconditions and
// malformed inputs (e.g. a connection whose bit widths disagree).  Internal
// invariants use SOCET_ASSERT, which throws in all build types so that the
// test suite can exercise failure paths deterministically.
#pragma once

#include <stdexcept>
#include <string>

namespace socet::util {

/// Exception type for all user-facing library errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

[[noreturn]] inline void raise(const std::string& message) {
  throw Error(message);
}

/// Throw unless `cond` holds.  Used for public API precondition checks.
inline void require(bool cond, const std::string& message) {
  if (!cond) raise(message);
}

}  // namespace socet::util

// Internal invariant check.  Kept enabled in release builds: the algorithms
// here are small enough that the cost is negligible and silent corruption of
// a test plan would be far worse.
#define SOCET_ASSERT(cond, msg)                                              \
  do {                                                                       \
    if (!(cond)) {                                                           \
      ::socet::util::raise(std::string("internal invariant failed: ") + msg \
                           + " (" #cond ")");                                \
    }                                                                        \
  } while (false)
