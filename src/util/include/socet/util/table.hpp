// Plain-text table rendering.
//
// Every benchmark binary reproduces one of the paper's tables or figures;
// this helper renders them with aligned columns so the output can be
// compared to the paper side by side, and can also dump CSV for plotting.
#pragma once

#include <string>
#include <vector>

namespace socet::util {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Add one row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Render with ASCII borders and right-padded cells.
  [[nodiscard]] std::string to_text() const;

  /// Render as comma-separated values (cells containing commas are quoted).
  [[nodiscard]] std::string to_csv() const;

  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

  /// Format a double with `digits` places after the decimal point.
  static std::string num(double value, int digits = 1);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace socet::util
