// Shared worker-pool machinery.
//
// Two layers share their thread fan-out through this header: the planning
// service (src/service) pulls jobs off a WorkQueue from a fixed pool, and
// the partitioned fault simulator (faultsim/parallel_sim.hpp) fans fault
// chunks across the same kind of pool.  Keeping the queue and the spawn
// helper in util (below every other library) lets both sides use one
// tested implementation without a dependency cycle.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

namespace socet::util {

/// Bounded-by-nothing MPMC work queue: the hand-off between a producer
/// (which enqueues every item up front) and a worker pool.  Standard
/// mutex + condition-variable design; `close()` wakes every blocked
/// consumer once the producer is done so workers drain the tail and exit.
template <typename T>
class WorkQueue {
 public:
  /// Enqueue one item.  Items pushed after close() are rejected.
  bool push(T item) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_) return false;
      items_.push_back(std::move(item));
    }
    ready_.notify_one();
    return true;
  }

  /// Block until an item is available or the queue is closed and drained;
  /// nullopt means "no more work, ever".
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    ready_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// No further pushes; blocked and future pops drain the queue then
  /// return nullopt.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    ready_.notify_all();
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable ready_;
  std::deque<T> items_;
  bool closed_ = false;
};

/// Run `body(worker_index)` on `threads` workers and join them all before
/// returning.  `threads <= 1` runs the body inline on the calling thread
/// (index 0) — no thread is spawned, so single-threaded callers keep
/// their exact serial behavior (signal handling, thread names, TLS).
inline void run_on_workers(unsigned threads,
                           const std::function<void(unsigned)>& body) {
  if (threads <= 1) {
    body(0);
    return;
  }
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) {
    pool.emplace_back([&body, t] { body(t); });
  }
  for (auto& thread : pool) thread.join();
}

}  // namespace socet::util
