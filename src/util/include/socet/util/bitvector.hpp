// Arbitrary-width two-valued bit vector.
//
// Test vectors, scan-chain contents and simulation values are all bit
// vectors whose width is set by the RTL (anywhere from 1-bit control
// signals to multi-register scan images).  Bits are packed 64 per word;
// bit 0 is the least significant bit.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace socet::util {

class BitVector {
 public:
  /// An empty (width 0) vector.
  BitVector() = default;

  /// `width` zero bits.
  explicit BitVector(std::size_t width);

  /// `width` bits initialised from the low bits of `value`.  Throws if
  /// `value` does not fit in `width` bits.
  BitVector(std::size_t width, std::uint64_t value);

  /// Parse from a string of '0'/'1' characters, most significant bit first
  /// (so "101" has bit 2 = 1, bit 1 = 0, bit 0 = 1).  Throws on other
  /// characters or an empty string.
  static BitVector from_string(const std::string& bits);

  /// `width` random bits drawn from `rng_word()` calls.
  template <typename Rng>
  static BitVector random(std::size_t width, Rng& rng) {
    BitVector v(width);
    for (auto& word : v.words_) word = rng.next_u64();
    v.mask_top();
    return v;
  }

  [[nodiscard]] std::size_t width() const { return width_; }
  [[nodiscard]] bool empty() const { return width_ == 0; }

  [[nodiscard]] bool get(std::size_t bit) const;
  void set(std::size_t bit, bool value);
  void set_all(bool value);

  /// Bits [lo, lo+len) as a new vector.  Throws if the range is out of
  /// bounds.
  [[nodiscard]] BitVector slice(std::size_t lo, std::size_t len) const;

  /// Overwrite bits [lo, lo+src.width()) with `src`.
  void write_slice(std::size_t lo, const BitVector& src);

  /// Append `other` above the current most significant bit.
  void append(const BitVector& other);

  /// Value as uint64; throws if width() > 64.
  [[nodiscard]] std::uint64_t to_u64() const;

  /// MSB-first character string, e.g. "0101".
  [[nodiscard]] std::string to_string() const;

  [[nodiscard]] std::size_t count_ones() const;

  friend bool operator==(const BitVector& a, const BitVector& b);
  friend bool operator!=(const BitVector& a, const BitVector& b) {
    return !(a == b);
  }

 private:
  void mask_top();
  static std::size_t words_for(std::size_t width) { return (width + 63) / 64; }

  std::size_t width_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace socet::util
