// Deterministic pseudo-random number generation.
//
// All stochastic pieces of the library (random-pattern ATPG phase, random
// sequential vector generation, synthetic benchmark construction) draw from
// this generator so that every test and benchmark run is reproducible.
#pragma once

#include <cstdint>

namespace socet::util {

/// xoshiro256** — small, fast, and good enough for test-pattern generation.
/// Not cryptographic; determinism and speed are the goals.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eed'50ce'7001ULL) {
    // splitmix64 seeding, as recommended by the xoshiro authors.
    auto next_seed = [&seed]() {
      seed += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = seed;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      return z ^ (z >> 31);
    };
    for (auto& word : state_) word = next_seed();
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform value in [0, bound).  `bound` must be nonzero.
  std::uint64_t next_below(std::uint64_t bound) {
    // Multiply-shift rejection-free mapping; bias is negligible for the
    // bounds used here (all far below 2^32).
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next_u64()) * bound) >> 64);
  }

  bool next_bool() { return (next_u64() & 1) != 0; }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4] = {};
};

}  // namespace socet::util
