// Strong integer ID types.
//
// Every graph-like structure in the library (RTL netlists, gate netlists,
// RCGs, CCGs) indexes its elements with dense integer handles.  Using a
// distinct C++ type per handle kind turns "passed a register id where a
// port id was expected" into a compile error instead of a silent
// out-of-bounds lookup.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>

namespace socet::util {

/// A strongly typed, dense integer handle.  `Tag` is an empty struct that
/// distinguishes otherwise-identical ID types.
template <typename Tag>
class Id {
 public:
  using value_type = std::uint32_t;

  constexpr Id() = default;
  constexpr explicit Id(value_type v) : value_(v) {}

  /// The reserved "no object" value.
  static constexpr Id invalid() { return Id(); }

  [[nodiscard]] constexpr bool valid() const {
    return value_ != std::numeric_limits<value_type>::max();
  }
  [[nodiscard]] constexpr value_type value() const { return value_; }
  /// Convenience for indexing into std::vector.
  [[nodiscard]] constexpr std::size_t index() const { return value_; }

  constexpr friend bool operator==(Id a, Id b) { return a.value_ == b.value_; }
  constexpr friend auto operator<=>(Id a, Id b) {
    return a.value_ <=> b.value_;
  }

 private:
  value_type value_ = std::numeric_limits<value_type>::max();
};

}  // namespace socet::util

namespace std {
template <typename Tag>
struct hash<socet::util::Id<Tag>> {
  size_t operator()(const socet::util::Id<Tag>& id) const noexcept {
    return std::hash<typename socet::util::Id<Tag>::value_type>{}(id.value());
  }
};
}  // namespace std
