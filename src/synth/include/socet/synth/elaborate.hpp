// RTL -> gate-level elaboration (our stand-in for the paper's "in-house
// synthesis tool" plus 0.8um technology mapping).
//
// Every RTL component is decomposed into the primitive cells of
// gate::GateNetlist: registers become DFFs with load-enable recirculation
// logic, multiplexers become AND-OR trees with full select decoding,
// functional units become ripple/comparator/ALU gate networks, and
// kRandomLogic clouds become deterministic random gate DAGs (standing in
// for the controller logic the original cores contained).
//
// The resulting netlist provides the paper's two measurements:
//   * area in cells (Table 2's "Orig. Area" column), and
//   * the stuck-at fault universe for fault coverage (Table 3).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "socet/gate/netlist.hpp"
#include "socet/rtl/netlist.hpp"

namespace socet::synth {

struct Elaboration {
  gate::GateNetlist gates;

  /// Input port name -> kInput gates, bit 0 first.
  std::map<std::string, std::vector<gate::GateId>> input_bits;
  /// Output port name -> driver gates (marked as primary outputs).
  std::map<std::string, std::vector<gate::GateId>> output_bits;
  /// Register index (into rtl::Netlist::registers()) -> DFF gates.
  std::vector<std::vector<gate::GateId>> register_bits;

  Elaboration() : gates("") {}
};

/// Gate-level scan-chain description for elaborate_with_scan.
struct ScanOptions {
  struct Chain {
    /// Chain order, scan-in first.
    std::vector<rtl::RegisterId> registers;
    /// Driver pin (in the same netlist) feeding the chain's scan-in; when
    /// absent the scan-in is tied to 0.  At chip level this is typically a
    /// core-input port proxy — which is exactly why embedded cores' chains
    /// are useless without chip-level DFT (Table 3's HSCAN row).
    std::optional<rtl::PinRef> scan_in;
  };
  std::vector<Chain> chains;
};

/// Elaborate `netlist` into gates.  Undriven sinks are tied to constant 0;
/// undriven register data bits hold their value.
Elaboration elaborate(const rtl::Netlist& netlist);

/// Elaborate with physical scan multiplexers: a global "ScanEnable" input
/// is added, and in scan mode every chained register bit captures its
/// predecessor's corresponding bit (bit-parallel HSCAN shifting) instead
/// of its functional data.
Elaboration elaborate_with_scan(const rtl::Netlist& netlist,
                                const ScanOptions& scan);

}  // namespace socet::synth
