#include "socet/synth/elaborate.hpp"

#include <algorithm>
#include <optional>

#include "socet/util/rng.hpp"

namespace socet::synth {

namespace {

using gate::GateId;
using gate::GateKind;
using rtl::CompKind;
using rtl::Connection;
using rtl::FuId;
using rtl::FuKind;
using rtl::MuxId;
using rtl::Netlist;
using rtl::PinRef;
using rtl::PinRole;

class Elaborator {
 public:
  explicit Elaborator(const Netlist& rtl, const ScanOptions* scan = nullptr)
      : rtl_(rtl), scan_(scan) {
    result_.gates = gate::GateNetlist(rtl.name());
  }

  Elaboration run() {
    index_connections();
    create_sources();
    if (scan_ != nullptr) prepare_scan();
    wire_registers();
    wire_outputs();
    return std::move(result_);
  }

 private:
  gate::GateNetlist& g() { return result_.gates; }

  void index_connections() {
    for (const Connection& conn : rtl_.connections()) {
      sinks_[conn.to].push_back(&conn);
    }
  }

  GateId const0() {
    if (!const0_.valid()) const0_ = g().add_gate(GateKind::kConst0, {}, "0");
    return const0_;
  }
  GateId const1() {
    if (!const1_.valid()) const1_ = g().add_gate(GateKind::kConst1, {}, "1");
    return const1_;
  }

  void create_sources() {
    for (std::size_t i = 0; i < rtl_.ports().size(); ++i) {
      const auto& port = rtl_.ports()[i];
      if (port.dir != rtl::PortDir::kInput) continue;
      auto& bits = result_.input_bits[port.name];
      for (unsigned b = 0; b < port.width; ++b) {
        bits.push_back(
            g().add_input(port.name + "[" + std::to_string(b) + "]"));
      }
    }
    result_.register_bits.resize(rtl_.registers().size());
    for (std::size_t i = 0; i < rtl_.registers().size(); ++i) {
      const auto& reg = rtl_.registers()[i];
      for (unsigned b = 0; b < reg.width; ++b) {
        result_.register_bits[i].push_back(
            g().add_dff_floating(reg.name + "[" + std::to_string(b) + "]"));
      }
    }
  }

  /// The gate driving bit `bit` of driver pin `pin`.
  GateId bit_of(const PinRef& pin, unsigned bit) {
    const auto key = std::make_pair(pin, bit);
    if (auto it = memo_.find(key); it != memo_.end()) return it->second;
    GateId id;
    switch (pin.role) {
      case PinRole::kPort: {
        const auto& port = rtl_.ports()[pin.comp.index];
        id = result_.input_bits.at(port.name).at(bit);
        break;
      }
      case PinRole::kRegQ:
        id = result_.register_bits[pin.comp.index].at(bit);
        break;
      case PinRole::kConstOut: {
        const auto& value = rtl_.constants()[pin.comp.index].value;
        id = value.get(bit) ? const1() : const0();
        break;
      }
      case PinRole::kMuxOut:
        id = mux_bit(MuxId(pin.comp.index), bit);
        break;
      case PinRole::kFuOut:
        id = fu_bits(FuId(pin.comp.index)).at(bit);
        break;
      default:
        util::raise("elaborate: bit_of on non-driver pin");
    }
    memo_.emplace(key, id);
    return id;
  }

  /// The gate driving bit `bit` of sink pin `pin`, or nullopt if undriven.
  std::optional<GateId> sink_bit(const PinRef& pin, unsigned bit) {
    auto it = sinks_.find(pin);
    if (it == sinks_.end()) return std::nullopt;
    for (const Connection* conn : it->second) {
      if (bit >= conn->to_lo && bit < conn->to_lo + conn->width) {
        return bit_of(conn->from, conn->from_lo + (bit - conn->to_lo));
      }
    }
    return std::nullopt;
  }

  GateId sink_bit_or_const0(const PinRef& pin, unsigned bit) {
    auto driven = sink_bit(pin, bit);
    return driven ? *driven : const0();
  }

  /// AND-OR mux bit with full select decoding.  Decode terms are shared
  /// across bits of the same mux.
  GateId mux_bit(MuxId id, unsigned bit) {
    const auto& mux = rtl_.mux(id);
    const auto& decode = mux_decode(id);
    std::vector<GateId> terms;
    terms.reserve(mux.num_inputs);
    for (unsigned i = 0; i < mux.num_inputs; ++i) {
      const GateId data = sink_bit_or_const0(rtl_.mux_in(id, i), bit);
      terms.push_back(g().add_gate(GateKind::kAnd, {data, decode[i]},
                                   mux.name + ".t" + std::to_string(i)));
    }
    if (terms.size() == 1) return terms[0];
    return g().add_gate(GateKind::kOr, std::move(terms),
                        mux.name + "[" + std::to_string(bit) + "]");
  }

  /// One "select == i" decode gate per data input of the mux.
  const std::vector<GateId>& mux_decode(MuxId id) {
    auto it = mux_decode_.find(id);
    if (it != mux_decode_.end()) return it->second;

    const auto& mux = rtl_.mux(id);
    const PinRef sel_pin = rtl_.mux_select(id);
    const unsigned sel_width = rtl_.pin_width(sel_pin);
    std::vector<GateId> sel(sel_width), sel_n(sel_width);
    for (unsigned b = 0; b < sel_width; ++b) {
      sel[b] = sink_bit_or_const0(sel_pin, b);
      sel_n[b] = g().add_gate(GateKind::kNot, {sel[b]},
                              mux.name + ".seln" + std::to_string(b));
    }
    std::vector<GateId> decode;
    for (unsigned i = 0; i < mux.num_inputs; ++i) {
      if (sel_width == 1) {
        decode.push_back((i & 1) ? sel[0] : sel_n[0]);
        continue;
      }
      std::vector<GateId> literals;
      for (unsigned b = 0; b < sel_width; ++b) {
        literals.push_back(((i >> b) & 1) ? sel[b] : sel_n[b]);
      }
      decode.push_back(g().add_gate(GateKind::kAnd, std::move(literals),
                                    mux.name + ".d" + std::to_string(i)));
    }
    return mux_decode_.emplace(id, std::move(decode)).first->second;
  }

  const std::vector<GateId>& fu_bits(FuId id) {
    auto it = fu_out_.find(id);
    if (it != fu_out_.end()) return it->second;
    return fu_out_.emplace(id, elaborate_fu(id)).first->second;
  }

  std::vector<GateId> operand(FuId id, unsigned op) {
    const PinRef pin = rtl_.fu_in(id, op);
    const unsigned width = rtl_.pin_width(pin);
    std::vector<GateId> bits(width);
    for (unsigned b = 0; b < width; ++b) bits[b] = sink_bit_or_const0(pin, b);
    return bits;
  }

  // Ripple adder over equal-width vectors; returns sum bits (carry-out
  // discarded, as RTL adders here wrap).
  std::vector<GateId> ripple_add(const std::vector<GateId>& a,
                                 const std::vector<GateId>& b, GateId carry_in,
                                 const std::string& name) {
    std::vector<GateId> sum(a.size());
    GateId carry = carry_in;
    for (std::size_t i = 0; i < a.size(); ++i) {
      const GateId axb =
          g().add_gate(GateKind::kXor, {a[i], b[i]}, name + ".x");
      sum[i] = g().add_gate(GateKind::kXor, {axb, carry}, name + ".s");
      if (i + 1 == a.size()) break;  // top carry-out is discarded: dead logic
      const GateId t1 = g().add_gate(GateKind::kAnd, {a[i], b[i]}, name + ".c1");
      const GateId t2 = g().add_gate(GateKind::kAnd, {axb, carry}, name + ".c2");
      carry = g().add_gate(GateKind::kOr, {t1, t2}, name + ".c");
    }
    return sum;
  }

  std::vector<GateId> elaborate_fu(FuId id) {
    const auto& fu = rtl_.fu(id);
    const std::string& name = fu.name;
    switch (fu.kind) {
      case FuKind::kBuf:
        return operand(id, 0);  // pure wiring
      case FuKind::kAdd: {
        return ripple_add(operand(id, 0), operand(id, 1), const0(), name);
      }
      case FuKind::kSub: {
        auto b = operand(id, 1);
        for (auto& bit : b) {
          bit = g().add_gate(GateKind::kNot, {bit}, name + ".n");
        }
        return ripple_add(operand(id, 0), b, const1(), name);
      }
      case FuKind::kIncrement: {
        auto a = operand(id, 0);
        std::vector<GateId> sum(a.size());
        GateId carry = const1();
        for (std::size_t i = 0; i < a.size(); ++i) {
          sum[i] = g().add_gate(GateKind::kXor, {a[i], carry}, name + ".s");
          if (i + 1 == a.size()) break;  // top carry-out is dead logic
          carry = g().add_gate(GateKind::kAnd, {a[i], carry}, name + ".c");
        }
        return sum;
      }
      case FuKind::kAnd:
      case FuKind::kOr:
      case FuKind::kXor: {
        auto a = operand(id, 0);
        auto b = operand(id, 1);
        const GateKind kind = fu.kind == FuKind::kAnd  ? GateKind::kAnd
                              : fu.kind == FuKind::kOr ? GateKind::kOr
                                                       : GateKind::kXor;
        std::vector<GateId> out(a.size());
        for (std::size_t i = 0; i < a.size(); ++i) {
          out[i] = g().add_gate(kind, {a[i], b[i]}, name + ".b");
        }
        return out;
      }
      case FuKind::kNot: {
        auto a = operand(id, 0);
        for (auto& bit : a) {
          bit = g().add_gate(GateKind::kNot, {bit}, name + ".n");
        }
        return a;
      }
      case FuKind::kShiftLeft: {
        auto a = operand(id, 0);
        std::vector<GateId> out(a.size());
        out[0] = const0();
        for (std::size_t i = 1; i < a.size(); ++i) out[i] = a[i - 1];
        return out;
      }
      case FuKind::kShiftRight: {
        auto a = operand(id, 0);
        std::vector<GateId> out(a.size());
        out[a.size() - 1] = const0();
        for (std::size_t i = 0; i + 1 < a.size(); ++i) out[i] = a[i + 1];
        return out;
      }
      case FuKind::kEqual: {
        auto a = operand(id, 0);
        auto b = operand(id, 1);
        std::vector<GateId> eq(a.size());
        for (std::size_t i = 0; i < a.size(); ++i) {
          eq[i] = g().add_gate(GateKind::kXnor, {a[i], b[i]}, name + ".e");
        }
        if (eq.size() == 1) return eq;
        return {g().add_gate(GateKind::kAnd, std::move(eq), name)};
      }
      case FuKind::kLess: {
        auto a = operand(id, 0);
        auto b = operand(id, 1);
        // MSB-first ripple comparator: lt = (~a & b) | (a XNOR b) & lt_prev.
        GateId lt = const0();
        for (std::size_t i = 0; i < a.size(); ++i) {
          const GateId an = g().add_gate(GateKind::kNot, {a[i]}, name + ".an");
          const GateId strict =
              g().add_gate(GateKind::kAnd, {an, b[i]}, name + ".lt");
          const GateId eq =
              g().add_gate(GateKind::kXnor, {a[i], b[i]}, name + ".eq");
          const GateId carry =
              g().add_gate(GateKind::kAnd, {eq, lt}, name + ".cr");
          lt = g().add_gate(GateKind::kOr, {strict, carry}, name + ".or");
        }
        return {lt};
      }
      case FuKind::kAlu: {
        auto a = operand(id, 0);
        auto b = operand(id, 1);
        auto op = operand(id, 2);  // 2 bits: 00 add, 01 and, 10 or, 11 xor
        const GateId s0n = g().add_gate(GateKind::kNot, {op[0]}, name + ".s0n");
        const GateId s1n = g().add_gate(GateKind::kNot, {op[1]}, name + ".s1n");
        const GateId is_add =
            g().add_gate(GateKind::kAnd, {s0n, s1n}, name + ".isadd");
        const GateId is_and =
            g().add_gate(GateKind::kAnd, {op[0], s1n}, name + ".isand");
        const GateId is_or =
            g().add_gate(GateKind::kAnd, {s0n, op[1]}, name + ".isor");
        const GateId is_xor =
            g().add_gate(GateKind::kAnd, {op[0], op[1]}, name + ".isxor");
        const auto sum = ripple_add(a, b, const0(), name);
        std::vector<GateId> out(a.size());
        for (std::size_t i = 0; i < a.size(); ++i) {
          const GateId andv =
              g().add_gate(GateKind::kAnd, {a[i], b[i]}, name + ".av");
          const GateId orv =
              g().add_gate(GateKind::kOr, {a[i], b[i]}, name + ".ov");
          const GateId xorv =
              g().add_gate(GateKind::kXor, {a[i], b[i]}, name + ".xv");
          const GateId t0 =
              g().add_gate(GateKind::kAnd, {sum[i], is_add}, name + ".m0");
          const GateId t1 =
              g().add_gate(GateKind::kAnd, {andv, is_and}, name + ".m1");
          const GateId t2 =
              g().add_gate(GateKind::kAnd, {orv, is_or}, name + ".m2");
          const GateId t3 =
              g().add_gate(GateKind::kAnd, {xorv, is_xor}, name + ".m3");
          out[i] = g().add_gate(GateKind::kOr, {t0, t1, t2, t3}, name + ".m");
        }
        return out;
      }
      case FuKind::kRandomLogic:
        return elaborate_random_logic(id);
    }
    util::raise("elaborate: unknown FU kind");
  }

  /// Deterministic synthetic controller logic.
  ///
  /// A free-form random gate DAG turns out to be a poor stand-in for real
  /// controller logic: AND/OR-heavy mixes mask reconvergent paths (huge
  /// redundant-fault populations) and XOR-heavy mixes starve PODEM of
  /// controlling values.  Instead the cloud is a *mixing pipeline*: a
  /// vector of wires repeatedly transformed by datapath-like stages (XOR
  /// blend, carry chain, mux swap, NAND/NOR blend) whose shape is chosen
  /// by the seeded RNG.  Every gate stays on a live path, reconvergence is
  /// local, and the structure is as testable as the decoded control logic
  /// it stands in for.
  std::vector<GateId> elaborate_random_logic(FuId id) {
    const auto& fu = rtl_.fu(id);
    auto in = operand(id, 0);
    util::Rng rng(fu.seed * 0x9e3779b97f4a7c15ULL + 1);
    const std::string& name = fu.name;
    SOCET_ASSERT(!in.empty(), "random logic with zero-width input");

    const unsigned target = std::max(fu.gate_hint, fu.width);
    std::size_t budget = target;

    // Widening layer: decoded control logic is wide and shallow, so grow
    // the wire vector to roughly budget/10 wires of distinct pair
    // functions before mixing.
    const std::size_t w = std::max<std::size_t>(
        in.size(), std::min<std::size_t>(128, std::max<std::size_t>(
                                                  16, target / 10)));
    std::vector<GateId> state(w);
    for (std::size_t i = 0; i < w; ++i) {
      if (i < in.size()) {
        state[i] = in[i];
        continue;
      }
      const GateId a = in[i % in.size()];
      const GateId b = in[(i * 7 + 3) % in.size()];
      static constexpr GateKind pad_kinds[] = {GateKind::kXor, GateKind::kNand,
                                               GateKind::kNor, GateKind::kXnor};
      if (a == b) {
        state[i] = g().add_gate(GateKind::kNot, {a}, name + ".p");
      } else {
        state[i] =
            g().add_gate(pad_kinds[i % 4], {a, b}, name + ".p");
      }
      --budget;
    }

    auto rot = [&](std::size_t i, std::size_t k) { return (i + k) % w; };
    while (budget > 0) {
      const std::size_t before = g().gate_count();
      const std::size_t k = 1 + rng.next_below(std::max<std::size_t>(w - 1, 1));
      std::vector<GateId> next(w);
      switch (rng.next_below(4)) {
        case 0:  // XOR blend with a rotated copy (1 gate/bit)
          for (std::size_t i = 0; i < w; ++i) {
            next[i] = g().add_gate(GateKind::kXor,
                                   {state[i], state[rot(i, k)]}, name + ".x");
          }
          break;
        case 1: {  // segmented carry chains (3 gates/bit, depth <= 4)
          GateId carry = state[rot(0, k)];
          for (std::size_t i = 0; i < w; ++i) {
            if (i % 4 == 0) carry = state[rot(i, k)];
            const GateId t1 =
                g().add_gate(GateKind::kAnd, {state[i], carry}, name + ".a");
            const GateId t2 = g().add_gate(
                GateKind::kNor, {state[i], state[rot(i, k)]}, name + ".n");
            next[i] = g().add_gate(GateKind::kOr, {t1, t2}, name + ".o");
            carry = next[i];
          }
          break;
        }
        case 2: {  // mux swap controlled by one wire (3 gates/bit)
          const GateId sel = state[rot(0, k)];
          const GateId sel_n =
              g().add_gate(GateKind::kNot, {sel}, name + ".sn");
          for (std::size_t i = 0; i < w; ++i) {
            const GateId t1 =
                g().add_gate(GateKind::kAnd, {sel, state[i]}, name + ".m1");
            const GateId t2 = g().add_gate(
                GateKind::kAnd, {sel_n, state[rot(i, k)]}, name + ".m2");
            next[i] = g().add_gate(GateKind::kOr, {t1, t2}, name + ".m");
          }
          break;
        }
        default:  // NAND/NOR alternating blend (1 gate/bit)
          for (std::size_t i = 0; i < w; ++i) {
            next[i] = g().add_gate(
                (i & 1) ? GateKind::kNand : GateKind::kNor,
                {state[i], state[rot(i, k)]}, name + ".b");
          }
          break;
      }
      state = std::move(next);
      const std::size_t used = g().gate_count() - before;
      budget = budget > used ? budget - used : 0;
    }

    // Outputs: fold the wire vector down (or fan it out) to `width` bits.
    std::vector<GateId> out(fu.width);
    for (unsigned b = 0; b < fu.width; ++b) out[b] = state[b % w];
    for (std::size_t i = fu.width; i < w; ++i) {
      const std::size_t sink = i % fu.width;
      out[sink] =
          g().add_gate(GateKind::kXor, {out[sink], state[i]}, name + ".f");
    }
    return out;
  }

  /// Scan plumbing: per register bit, the gate that feeds it in scan mode.
  void prepare_scan() {
    scan_enable_ = g().add_input("ScanEnable");
    scan_enable_n_ = g().add_gate(GateKind::kNot, {scan_enable_}, "sen");
    scan_source_.resize(rtl_.registers().size());
    for (const ScanOptions::Chain& chain : scan_->chains) {
      // Scan-in bits for the first register on the chain.
      std::vector<GateId> feed;
      if (chain.scan_in) {
        const unsigned width = rtl_.pin_width(*chain.scan_in);
        for (unsigned b = 0; b < width; ++b) {
          feed.push_back(bit_of(*chain.scan_in, b));
        }
      } else {
        feed.push_back(const0());
      }
      for (rtl::RegisterId reg : chain.registers) {
        const unsigned width = rtl_.reg(reg).width;
        auto& sources = scan_source_[reg.index()];
        sources.resize(width);
        for (unsigned b = 0; b < width; ++b) {
          sources[b] = feed[b % feed.size()];
        }
        feed = result_.register_bits[reg.index()];  // next hop shifts from Q
      }
    }
  }

  void wire_registers() {
    for (std::size_t i = 0; i < rtl_.registers().size(); ++i) {
      const auto& reg = rtl_.registers()[i];
      const rtl::RegisterId rid(static_cast<std::uint32_t>(i));
      const PinRef d_pin = rtl_.reg_d(rid);

      // Load-enable recirculation: D = load ? data : Q.
      std::optional<GateId> load;
      if (reg.has_load_enable) {
        load = sink_bit(rtl_.reg_load(rid), 0);
      }
      std::optional<GateId> load_n;
      if (load) {
        load_n = g().add_gate(GateKind::kNot, {*load}, reg.name + ".ldn");
      }

      for (unsigned b = 0; b < reg.width; ++b) {
        const GateId q = result_.register_bits[i][b];
        auto data = sink_bit(d_pin, b);
        GateId next;
        if (!data) {
          next = q;  // bit never written: hold
        } else if (load) {
          const GateId t1 =
              g().add_gate(GateKind::kAnd, {*load, *data}, reg.name + ".w");
          const GateId t2 =
              g().add_gate(GateKind::kAnd, {*load_n, q}, reg.name + ".h");
          next = g().add_gate(GateKind::kOr, {t1, t2}, reg.name + ".d");
        } else {
          next = *data;  // loads every cycle
        }
        if (scan_ != nullptr && b < scan_source_[i].size()) {
          // Scan mux: SE ? predecessor bit : functional next-state.
          const GateId t1 = g().add_gate(
              GateKind::kAnd, {scan_enable_, scan_source_[i][b]},
              reg.name + ".si");
          const GateId t2 = g().add_gate(GateKind::kAnd, {scan_enable_n_, next},
                                         reg.name + ".sd");
          next = g().add_gate(GateKind::kOr, {t1, t2}, reg.name + ".sm");
        }
        g().set_dff_input(q, next);
      }
    }
  }

  void wire_outputs() {
    for (std::size_t i = 0; i < rtl_.ports().size(); ++i) {
      const auto& port = rtl_.ports()[i];
      if (port.dir != rtl::PortDir::kOutput) continue;
      const PinRef pin = rtl_.pin(rtl::PortId(static_cast<std::uint32_t>(i)));
      auto& bits = result_.output_bits[port.name];
      for (unsigned b = 0; b < port.width; ++b) {
        const GateId driver = sink_bit_or_const0(pin, b);
        bits.push_back(driver);
        g().mark_output(driver);
      }
    }
  }

  const Netlist& rtl_;
  const ScanOptions* scan_ = nullptr;
  Elaboration result_;

  GateId scan_enable_;
  GateId scan_enable_n_;
  std::vector<std::vector<GateId>> scan_source_;

  std::map<PinRef, std::vector<const Connection*>> sinks_;
  std::map<std::pair<PinRef, unsigned>, GateId> memo_;
  std::map<MuxId, std::vector<GateId>> mux_decode_;
  std::map<FuId, std::vector<GateId>> fu_out_;
  GateId const0_;
  GateId const1_;
};

}  // namespace

Elaboration elaborate(const rtl::Netlist& netlist) {
  return Elaborator(netlist).run();
}

Elaboration elaborate_with_scan(const rtl::Netlist& netlist,
                                const ScanOptions& scan) {
  return Elaborator(netlist, &scan).run();
}

}  // namespace socet::synth
