#include "socet/baselines/baselines.hpp"

#include <set>

namespace socet::baselines {

namespace {

/// Port bits of core `c` that are wired directly to a chip pin (and so
/// need no boundary-scan cell / test-bus mux).
std::set<rtl::PortId> externally_wired_ports(const soc::Soc& soc,
                                             std::uint32_t c) {
  std::set<rtl::PortId> external;
  for (const soc::Link& link : soc.links()) {
    if (const auto* ref = std::get_if<soc::CorePortRef>(&link.to)) {
      if (ref->core == c && std::holds_alternative<soc::PiId>(link.from)) {
        external.insert(ref->port);
      }
    }
    if (const auto* ref = std::get_if<soc::CorePortRef>(&link.from)) {
      if (ref->core == c && std::holds_alternative<soc::PoId>(link.to)) {
        external.insert(ref->port);
      }
    }
  }
  return external;
}

}  // namespace

FscanBscanResult fscan_bscan(const soc::Soc& soc,
                             const FscanBscanCostModel& cost) {
  FscanBscanResult result;
  result.chip_level_cells = cost.tap_controller_cells;
  for (std::uint32_t c = 0; c < soc.cores().size(); ++c) {
    const core::Core& core = soc.core(c);
    const auto external = externally_wired_ports(soc, c);

    FscanBscanCoreRow row;
    row.core = core.name();
    row.flip_flops = core.flip_flop_count();
    for (std::uint32_t p = 0; p < core.netlist().ports().size(); ++p) {
      const rtl::PortId port(p);
      if (external.count(port)) continue;
      row.boundary_bits += core.netlist().port(port).width;
    }
    row.vectors = core.scan_vectors();
    const unsigned long long chain = row.flip_flops + row.boundary_bits;
    row.tat = chain * row.vectors + (chain > 0 ? chain - 1 : 0);

    result.core_level_cells += row.flip_flops * cost.fscan_per_ff;
    result.chip_level_cells += row.boundary_bits * cost.boundary_cell_per_bit;
    result.total_tat += row.tat;
    result.cores.push_back(std::move(row));
  }
  return result;
}

IsolationRingResult partial_isolation_rings(const soc::Soc& soc,
                                            const FscanBscanCostModel& cost) {
  IsolationRingResult result;
  result.chip_level_cells = cost.tap_controller_cells;

  // Under full-scan cores, a core-to-core wire is already accessible: the
  // driving neighbour's output registers are controllable through its scan
  // chain, and the receiving neighbour's capture flip-flops observe it.
  // Ring cells are therefore needed only on ports that connect to nothing
  // testable (here: the BIST-tested memories, i.e. dangling ports).
  std::set<soc::CorePortRef> wired;
  for (const soc::Link& link : soc.links()) {
    if (const auto* ref = std::get_if<soc::CorePortRef>(&link.from)) {
      wired.insert(*ref);
    }
    if (const auto* ref = std::get_if<soc::CorePortRef>(&link.to)) {
      wired.insert(*ref);
    }
  }

  for (std::uint32_t c = 0; c < soc.cores().size(); ++c) {
    const core::Core& core = soc.core(c);

    unsigned ring_bits = 0;
    for (std::uint32_t p = 0; p < core.netlist().ports().size(); ++p) {
      const rtl::PortId port(p);
      if (wired.count(soc::CorePortRef{c, port})) continue;
      ring_bits += core.netlist().port(port).width;
    }

    result.ring_bits += ring_bits;
    result.core_level_cells += core.flip_flop_count() * cost.fscan_per_ff;
    result.chip_level_cells += ring_bits * cost.boundary_cell_per_bit;
    const unsigned long long chain = core.flip_flop_count() + ring_bits;
    result.total_tat +=
        chain * core.scan_vectors() + (chain > 0 ? chain - 1 : 0);
  }
  return result;
}

TestBusResult test_bus(const soc::Soc& soc, const TestBusCostModel& cost) {
  TestBusResult result;
  result.chip_level_cells = cost.bus_control_cells;
  for (std::uint32_t c = 0; c < soc.cores().size(); ++c) {
    const core::Core& core = soc.core(c);
    const auto external = externally_wired_ports(soc, c);
    for (std::uint32_t p = 0; p < core.netlist().ports().size(); ++p) {
      const rtl::PortId port(p);
      if (external.count(port)) continue;
      result.chip_level_cells +=
          core.netlist().port(port).width * cost.mux_per_bit;
    }
    // Direct access: each HSCAN vector applies in one cycle; the last
    // response drains the deepest chain.
    const unsigned depth = core.hscan().max_depth;
    result.total_tat +=
        static_cast<unsigned long long>(core.hscan_vectors()) +
        (depth > 0 ? depth - 1 : 0);
  }
  return result;
}

}  // namespace socet::baselines
