// Comparison DFT methodologies — the paper's Tables 2 and 3 baselines.
//
// FSCAN-BSCAN: every core is full-scanned and wrapped in a boundary-scan
// isolation ring.  A core's scan chain threads its flip-flops and the
// boundary cells of its internal ports; testing applies each scan vector
// serially through the chain, so
//     TAT(core) = chain_length x vectors + chain_length - 1
// — the arithmetic behind the paper's (66+20) x 105 + 85 = 9,115 for the
// DISPLAY.  Ports wired straight to chip pins need no boundary cell.
//
// TEST-BUS: an added bus makes every core input directly controllable and
// every output directly observable (the degenerate endpoint Section 5.2's
// escalation converges to).  Fastest possible application of HSCAN
// sequences, at a mux per port bit, and it cannot test core-to-core
// interconnect.
#pragma once

#include <string>
#include <vector>

#include "socet/soc/soc.hpp"

namespace socet::baselines {

struct FscanBscanCostModel {
  /// A boundary-scan cell per internal port bit.  IEEE 1149.1-style cells
  /// are genuinely expensive: capture flip-flop + update latch + two
  /// muxes, about six gate-equivalents.
  unsigned boundary_cell_per_bit = 6;
  /// Full-scan conversion per flip-flop (scan mux + enable buffering).
  unsigned fscan_per_ff = 4;
  /// TAP controller and chip-level glue.
  unsigned tap_controller_cells = 40;
};

struct FscanBscanCoreRow {
  std::string core;
  unsigned flip_flops = 0;
  unsigned boundary_bits = 0;
  unsigned vectors = 0;
  unsigned long long tat = 0;
};

struct FscanBscanResult {
  std::vector<FscanBscanCoreRow> cores;
  unsigned long long total_tat = 0;
  unsigned core_level_cells = 0;  ///< FSCAN conversion, all cores
  unsigned chip_level_cells = 0;  ///< boundary cells + TAP

  [[nodiscard]] unsigned total_cells() const {
    return core_level_cells + chip_level_cells;
  }
};

FscanBscanResult fscan_bscan(const soc::Soc& soc,
                             const FscanBscanCostModel& cost = {});

struct TestBusCostModel {
  unsigned mux_per_bit = 1;
  unsigned bus_control_cells = 16;
};

struct TestBusResult {
  unsigned long long total_tat = 0;
  unsigned chip_level_cells = 0;
};

/// Test-bus DFT on top of HSCAN cores: direct access to every port.
TestBusResult test_bus(const soc::Soc& soc, const TestBusCostModel& cost = {});

// ---------------------------------------------------------------------------

/// PARTIAL ISOLATION RINGS (Touba & Pouya, VTS'97 — the paper's
/// reference [3]): like FSCAN-BSCAN, but boundary cells are placed only on
/// the core ports that the surrounding logic cannot already control or
/// observe functionally.  We approximate "already accessible" as "wired
/// directly to a chip pin" plus, for inputs, "driven by a neighbouring
/// core output that is itself pin-wired" — a structural stand-in for the
/// reference's ATPG-based analysis.  Area lands between FSCAN-BSCAN and
/// SOCET; TAT uses the same serial-chain arithmetic with the shorter
/// rings.
struct IsolationRingResult {
  unsigned long long total_tat = 0;
  unsigned core_level_cells = 0;  ///< FSCAN conversion
  unsigned chip_level_cells = 0;  ///< partial rings + control
  unsigned ring_bits = 0;

  [[nodiscard]] unsigned total_cells() const {
    return core_level_cells + chip_level_cells;
  }
};

IsolationRingResult partial_isolation_rings(
    const soc::Soc& soc, const FscanBscanCostModel& cost = {});

}  // namespace socet::baselines
