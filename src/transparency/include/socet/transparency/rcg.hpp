// Register connectivity graph (RCG) — paper Section 4, Figure 7.
//
// Nodes are the core's input ports, output ports and registers.  An edge
// connects two nodes when a direct or multiplexer path exists between
// them, annotated with the bit slices it carries and whether it lies on an
// HSCAN chain (the darkened edges of Figure 7).
//
// Split-node classification drives the transparency search:
//   * C-split — different bit slices of the node are written from
//     different sources exclusively, so justifying the node requires
//     justifying every slice (the CPU's ACCUMULATOR);
//   * O-split — the node's fanout is sliced toward different
//     destinations, so propagating its value requires using every slice
//     (the CPU's IR).
#pragma once

#include <cstdint>
#include <vector>

#include "socet/hscan/hscan.hpp"
#include "socet/rtl/netlist.hpp"
#include "socet/rtl/paths.hpp"

namespace socet::transparency {

struct RcgEdge {
  std::uint32_t src = 0;  ///< node index
  std::uint32_t dst = 0;  ///< node index
  unsigned src_lo = 0;
  unsigned dst_lo = 0;
  unsigned width = 1;
  bool hscan = false;   ///< reused by an HSCAN chain
  bool direct = false;  ///< no multiplexer on the path
  unsigned mux_hops = 0;
};

struct RcgNode {
  rtl::NodeRef ref;
  bool c_split = false;
  bool o_split = false;
  std::vector<std::uint32_t> out_edges;
  std::vector<std::uint32_t> in_edges;
};

class Rcg {
 public:
  /// Extract the RCG of `netlist`.  When `hscan` is given, edges reused by
  /// its chains are flagged (and preferred by the transparency search).
  explicit Rcg(const rtl::Netlist& netlist,
               const hscan::HscanConfig* hscan = nullptr);

  const rtl::Netlist& netlist() const { return *netlist_; }
  const std::vector<RcgNode>& nodes() const { return nodes_; }
  const std::vector<RcgEdge>& edges() const { return edges_; }
  const RcgNode& node(std::uint32_t index) const { return nodes_.at(index); }
  const RcgEdge& edge(std::uint32_t index) const { return edges_.at(index); }

  /// Node index for an RTL node reference; throws if absent.
  std::uint32_t index_of(const rtl::NodeRef& ref) const;

  /// Indices of all input-port / output-port nodes.
  std::vector<std::uint32_t> input_nodes() const;
  std::vector<std::uint32_t> output_nodes() const;

  std::string node_name(std::uint32_t index) const;

 private:
  const rtl::Netlist* netlist_;
  std::vector<RcgNode> nodes_;
  std::vector<RcgEdge> edges_;
};

}  // namespace socet::transparency
