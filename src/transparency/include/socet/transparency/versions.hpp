// Core version generation — paper Sections 3 & 4, Figures 6 and 8.
//
// A *version* of a core is a transparency implementation with a particular
// latency/area trade-off:
//   * Version 1 reuses HSCAN chains wherever possible (minimum area,
//     maximum latency);
//   * Version 2 also recruits existing non-HSCAN paths, paying select
//     gating to shorten latencies (the CPU's direct Data -> Address(7..0)
//     mux edge);
//   * Version 3 additionally inserts transparency multiplexers so every
//     input/output pair reaches latency 1 (minimum latency, maximum area).
//
// Each version reports, per (input port, output port) pair, the
// transparency latency and a serial group: pairs in the same group share
// internal logic, so data cannot move through them simultaneously (the
// paper's 6 + 2 = 8-cycle CPU example).  These menus are exactly what the
// chip-level optimizer consumes.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "socet/transparency/search.hpp"

namespace socet::transparency {

struct TransparencyCostModel {
  unsigned freeze_cell = 1;          ///< per balancing freeze point
  unsigned non_hscan_edge_cell = 2;  ///< select gating per recruited edge
  unsigned trans_mux_per_bit = 1;    ///< inserted transparency mux, per bit
  unsigned trans_mux_control = 1;    ///< its select-line driver
  unsigned shared_group_control = 1; ///< sequencing control per shared group
  unsigned control_bypass_per_bit = 1;  ///< 1-bit bypass for control signals
};

/// One usable transparency move: a value applied at `input` appears at
/// `output` after `latency` cycles in transparency mode.
struct TransparencyEdgeSpec {
  rtl::PortId input;
  rtl::PortId output;
  unsigned latency = 1;
  /// Pairs sharing internal logic carry the same non-negative group id and
  /// must be used sequentially; -1 means independent.
  int serial_group = -1;
  bool via_added_mux = false;
};

struct CoreVersion {
  std::string name;
  /// Transparency logic only — on top of the HSCAN (or other core-level
  /// DFT) overhead.
  unsigned extra_cells = 0;
  std::vector<TransparencyEdgeSpec> edges;

  /// Latency of the (input, output) pair, if transparent.
  [[nodiscard]] std::optional<unsigned> latency(rtl::PortId input,
                                                rtl::PortId output) const;
  /// Serialized latency of moving data from `input` to every output in
  /// turn — the "total" column of Figure 6 (6 + 2 = 8 for CPU V1).
  [[nodiscard]] unsigned total_latency_from(rtl::PortId input) const;
};

struct VersionPolicy {
  std::string name = "Version 1";
  /// Try HSCAN edges before recruiting other existing edges.
  bool prefer_hscan = true;
  /// Consider non-HSCAN edges at all.
  bool allow_all_edges = true;
  /// Insert a transparency mux for every pair slower than one cycle.
  bool force_latency_one = false;
};

/// Build one version of the core whose RCG this is.
CoreVersion make_version(const Rcg& rcg, const VersionPolicy& policy,
                         const TransparencyCostModel& cost = {});

/// The paper's standard three-version menu, ordered minimum-area first.
std::vector<CoreVersion> standard_versions(
    const Rcg& rcg, const TransparencyCostModel& cost = {});

/// Insert a transparency mux for every pair of `version` slower than one
/// cycle (the Figure 5 move), charging its cost.
void force_latency_one(CoreVersion& version, const rtl::Netlist& netlist,
                       const TransparencyCostModel& cost);

}  // namespace socet::transparency
