// Transparency path search over the RCG — paper Section 4.
//
// Propagation: find a route carrying an input port's value to output
// ports.  At an O-split node the value fans out in slices, so every slice
// group must reach an output (the search branches, like the paper's BFS
// from IR's two fanout edges) and shorter branches get freeze logic to
// balance latencies.
//
// Justification: find a route delivering an arbitrary value onto an
// output port from input ports, on the reversed graph.  At a C-split node
// every slice group must be justified; branches may reconverge at an
// O-split node (the ACCUMULATOR -> IR example), which the shared
// reconstruction pass models naturally.
//
// Both searches solve an AND-OR shortest-path problem by monotone value
// relaxation (cycles in the RCG make plain BFS awkward; relaxation
// converges because latencies only ever decrease).
#pragma once

#include <cstdint>
#include <set>
#include <vector>

#include "socet/transparency/rcg.hpp"

namespace socet::transparency {

enum class EdgeClass : std::uint8_t {
  kHscanOnly,    ///< darkened (HSCAN) edges only
  kAllExisting,  ///< any existing RCG edge
};

struct SearchResult {
  bool found = false;
  unsigned latency = 0;
  /// RCG edge indices used (deduplicated across reconverging branches).
  std::vector<std::uint32_t> edges;
  /// Registers that must hold data to balance unequal parallel branches
  /// (each costs freeze logic).
  unsigned freeze_points = 0;
};

/// Route `input_node`'s value to output ports.
SearchResult find_propagation(const Rcg& rcg, std::uint32_t input_node,
                              EdgeClass allowed,
                              const std::set<std::uint32_t>& excluded_edges);

/// Justify `output_node` from input ports.
SearchResult find_justification(const Rcg& rcg, std::uint32_t output_node,
                                EdgeClass allowed,
                                const std::set<std::uint32_t>& excluded_edges);

}  // namespace socet::transparency
