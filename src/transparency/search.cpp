#include "socet/transparency/search.hpp"

#include <algorithm>
#include <limits>
#include <map>

#include "socet/obs/metrics.hpp"

namespace socet::transparency {

namespace {

constexpr unsigned kInf = std::numeric_limits<unsigned>::max() / 4;

bool edge_allowed(const RcgEdge& edge, EdgeClass allowed,
                  const std::set<std::uint32_t>& excluded,
                  std::uint32_t index) {
  if (excluded.count(index)) return false;
  if (allowed == EdgeClass::kHscanOnly && !edge.hscan) return false;
  return true;
}

/// Edge indices partitioned into mandatory slice groups.  For a non-split
/// node all edges form a single group (alternatives); for a split node,
/// edges with distinct slice ranges are separate groups that must all be
/// satisfied.
std::vector<std::vector<std::uint32_t>> slice_groups(
    const Rcg& rcg, const std::vector<std::uint32_t>& edge_indices, bool split,
    bool by_src_range) {
  std::vector<std::vector<std::uint32_t>> groups;
  if (!split) {
    if (!edge_indices.empty()) groups.push_back(edge_indices);
    return groups;
  }
  std::map<std::pair<unsigned, unsigned>, std::size_t> range_to_group;
  for (std::uint32_t e : edge_indices) {
    const RcgEdge& edge = rcg.edge(e);
    const auto range = by_src_range ? std::make_pair(edge.src_lo, edge.width)
                                    : std::make_pair(edge.dst_lo, edge.width);
    auto it = range_to_group.find(range);
    if (it == range_to_group.end()) {
      range_to_group.emplace(range, groups.size());
      groups.push_back({e});
    } else {
      groups[it->second].push_back(e);
    }
  }
  return groups;
}

/// Shared machinery for the two search directions.  `Adapter` supplies:
///   terminal(node)   — latency-0 endpoints (outputs for propagation,
///                      inputs for justification)
///   groups(node)     — mandatory edge groups leaving the node (in search
///                      direction)
///   next(edge)       — the node an edge leads to (in search direction)
///   step_cost(node, edge) — cycles added when traversing the edge
template <typename Adapter>
class AndOrSearch {
 public:
  AndOrSearch(const Rcg& rcg, EdgeClass allowed,
              const std::set<std::uint32_t>& excluded, Adapter adapter)
      : rcg_(rcg), allowed_(allowed), excluded_(excluded), adapter_(adapter) {}

  SearchResult run(std::uint32_t start) {
    relax();
    SearchResult result;
    if (value_[start] >= kInf) return result;
    result.found = true;
    result.latency = value_[start];
    std::vector<char> visited(rcg_.nodes().size(), 0);
    std::set<std::uint32_t> edges;
    reconstruct(start, visited, edges, result.freeze_points);
    result.edges.assign(edges.begin(), edges.end());
    return result;
  }

 private:
  void relax() {
    const std::size_t n = rcg_.nodes().size();
    value_.assign(n, kInf);
    for (std::uint32_t i = 0; i < n; ++i) {
      if (adapter_.terminal(rcg_, i)) value_[i] = 0;
    }
    // Values only decrease; at most n rounds to convergence.
    for (std::size_t round = 0; round < n + 1; ++round) {
      SOCET_COUNT("transparency/relax_rounds");
      bool changed = false;
      for (std::uint32_t i = 0; i < n; ++i) {
        if (adapter_.terminal(rcg_, i)) continue;
        SOCET_COUNT("transparency/nodes_evaluated");
        const unsigned v = evaluate(i);
        if (v < value_[i]) {
          value_[i] = v;
          changed = true;
        }
      }
      if (!changed) break;
    }
  }

  unsigned evaluate(std::uint32_t node) const {
    const auto groups = adapter_.groups(rcg_, node);
    if (groups.empty()) return kInf;
    unsigned worst = 0;
    for (const auto& group : groups) {
      unsigned best = kInf;
      for (std::uint32_t e : group) {
        if (!edge_allowed(rcg_.edge(e), allowed_, excluded_, e)) continue;
        const std::uint32_t next = adapter_.next(rcg_.edge(e));
        if (value_[next] >= kInf) continue;
        best = std::min(best,
                        adapter_.step_cost(rcg_, node, rcg_.edge(e)) +
                            value_[next]);
      }
      if (best >= kInf) return kInf;
      worst = std::max(worst, best);
    }
    return worst;
  }

  void reconstruct(std::uint32_t node, std::vector<char>& visited,
                   std::set<std::uint32_t>& edges, unsigned& freezes) const {
    if (visited[node]) return;
    visited[node] = 1;
    if (adapter_.terminal(rcg_, node)) return;
    const auto groups = adapter_.groups(rcg_, node);
    // Chosen branch latency per group, to count balancing freezes.
    std::vector<unsigned> branch_latency;
    std::vector<std::uint32_t> branch_edge;
    for (const auto& group : groups) {
      unsigned best = kInf;
      std::uint32_t best_edge = 0;
      for (std::uint32_t e : group) {
        if (!edge_allowed(rcg_.edge(e), allowed_, excluded_, e)) continue;
        const std::uint32_t next = adapter_.next(rcg_.edge(e));
        if (value_[next] >= kInf) continue;
        const unsigned cand =
            adapter_.step_cost(rcg_, node, rcg_.edge(e)) + value_[next];
        if (cand < best) {
          best = cand;
          best_edge = e;
        }
      }
      if (best >= kInf) continue;  // cannot happen when value_ is finite
      branch_latency.push_back(best);
      branch_edge.push_back(best_edge);
    }
    const unsigned worst = branch_latency.empty()
                               ? 0
                               : *std::max_element(branch_latency.begin(),
                                                   branch_latency.end());
    for (std::size_t g = 0; g < branch_edge.size(); ++g) {
      if (branch_latency[g] < worst) ++freezes;  // hold data on this branch
      edges.insert(branch_edge[g]);
      reconstruct(adapter_.next(rcg_.edge(branch_edge[g])), visited, edges,
                  freezes);
    }
  }

  const Rcg& rcg_;
  EdgeClass allowed_;
  const std::set<std::uint32_t>& excluded_;
  Adapter adapter_;
  std::vector<unsigned> value_;
};

struct PropagationAdapter {
  bool terminal(const Rcg& rcg, std::uint32_t node) const {
    return rcg.node(node).ref.kind == rtl::NodeKind::kOutputPort;
  }
  std::vector<std::vector<std::uint32_t>> groups(const Rcg& rcg,
                                                 std::uint32_t node) const {
    return slice_groups(rcg, rcg.node(node).out_edges, rcg.node(node).o_split,
                        /*by_src_range=*/true);
  }
  std::uint32_t next(const RcgEdge& edge) const { return edge.dst; }
  unsigned step_cost(const Rcg& rcg, std::uint32_t /*node*/,
                     const RcgEdge& edge) const {
    // Entering a register costs one clock; reaching an output port is
    // combinational.
    return rcg.node(edge.dst).ref.kind == rtl::NodeKind::kRegister ? 1 : 0;
  }
};

struct JustificationAdapter {
  bool terminal(const Rcg& rcg, std::uint32_t node) const {
    return rcg.node(node).ref.kind == rtl::NodeKind::kInputPort;
  }
  std::vector<std::vector<std::uint32_t>> groups(const Rcg& rcg,
                                                 std::uint32_t node) const {
    return slice_groups(rcg, rcg.node(node).in_edges, rcg.node(node).c_split,
                        /*by_src_range=*/false);
  }
  std::uint32_t next(const RcgEdge& edge) const { return edge.src; }
  unsigned step_cost(const Rcg& rcg, std::uint32_t node,
                     const RcgEdge& /*edge*/) const {
    // Loading this node (if it is a register) costs one clock; an output
    // port reads its driver combinationally.
    return rcg.node(node).ref.kind == rtl::NodeKind::kRegister ? 1 : 0;
  }
};

}  // namespace

SearchResult find_propagation(const Rcg& rcg, std::uint32_t input_node,
                              EdgeClass allowed,
                              const std::set<std::uint32_t>& excluded_edges) {
  util::require(
      rcg.node(input_node).ref.kind == rtl::NodeKind::kInputPort,
      "find_propagation: start node is not an input port");
  SOCET_COUNT("transparency/propagation_searches");
  AndOrSearch search(rcg, allowed, excluded_edges, PropagationAdapter{});
  auto result = search.run(input_node);
  if (result.found) SOCET_HISTOGRAM("transparency/latency_found", result.latency);
  return result;
}

SearchResult find_justification(const Rcg& rcg, std::uint32_t output_node,
                                EdgeClass allowed,
                                const std::set<std::uint32_t>& excluded_edges) {
  util::require(
      rcg.node(output_node).ref.kind == rtl::NodeKind::kOutputPort,
      "find_justification: start node is not an output port");
  SOCET_COUNT("transparency/justification_searches");
  AndOrSearch search(rcg, allowed, excluded_edges, JustificationAdapter{});
  auto result = search.run(output_node);
  if (result.found) SOCET_HISTOGRAM("transparency/latency_found", result.latency);
  return result;
}

}  // namespace socet::transparency
