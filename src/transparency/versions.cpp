#include "socet/transparency/versions.hpp"

#include <algorithm>
#include <map>
#include <numeric>

#include "socet/obs/journal.hpp"
#include "socet/obs/metrics.hpp"
#include "socet/obs/resource.hpp"
#include "socet/obs/trace.hpp"

namespace socet::transparency {

namespace {

using rtl::NodeKind;
using rtl::PortId;

/// Union-find over path indices, used to build serial groups from shared
/// RCG edges.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  std::size_t find(std::size_t x) {
    while (parent_[x] != x) x = parent_[x] = parent_[parent_[x]];
    return x;
  }
  void unite(std::size_t a, std::size_t b) { parent_[find(a)] = find(b); }

 private:
  std::vector<std::size_t> parent_;
};

/// One found path and the terminal pairs it supports.
struct FoundPath {
  SearchResult result;
  std::vector<std::pair<PortId, PortId>> pairs;  ///< (input, output)
  bool added_mux = false;
};

}  // namespace

std::optional<unsigned> CoreVersion::latency(PortId input,
                                             PortId output) const {
  for (const auto& edge : edges) {
    if (edge.input == input && edge.output == output) return edge.latency;
  }
  return std::nullopt;
}

unsigned CoreVersion::total_latency_from(PortId input) const {
  // Independent pairs move data simultaneously; pairs in the same serial
  // group add up.  Total = max over groups of (group latency sum).
  std::map<int, unsigned> group_sum;
  unsigned independent_max = 0;
  for (const auto& edge : edges) {
    if (edge.input != input) continue;
    if (edge.serial_group < 0) {
      independent_max = std::max(independent_max, edge.latency);
    } else {
      group_sum[edge.serial_group] += edge.latency;
    }
  }
  unsigned total = independent_max;
  for (const auto& [group, sum] : group_sum) total = std::max(total, sum);
  return total;
}

CoreVersion make_version(const Rcg& rcg, const VersionPolicy& policy,
                         const TransparencyCostModel& cost) {
  SOCET_SPAN("transparency/make_version");
  SOCET_RESOURCE_SCOPE("transparency/make_version");
  SOCET_COUNT("transparency/versions_built");
  CoreVersion version;
  version.name = policy.name;

  const auto& netlist = rcg.netlist();
  std::set<std::uint32_t> used_edges;
  std::vector<FoundPath> paths;

  // The attempt ladder of Section 4: HSCAN edges avoiding reuse, HSCAN
  // edges with reuse, then all existing edges likewise.
  struct Attempt {
    EdgeClass allowed;
    bool exclusive;
  };
  std::vector<Attempt> ladder;
  if (policy.prefer_hscan) {
    ladder.push_back({EdgeClass::kHscanOnly, true});
    ladder.push_back({EdgeClass::kHscanOnly, false});
  }
  if (policy.allow_all_edges || !policy.prefer_hscan) {
    ladder.push_back({EdgeClass::kAllExisting, true});
    ladder.push_back({EdgeClass::kAllExisting, false});
  }

  const std::set<std::uint32_t> no_exclusions;

  // --- Justification: every output must be controllable from inputs. ----
  for (std::uint32_t out_node : rcg.output_nodes()) {
    SearchResult best;
    const Attempt* chosen = nullptr;
    for (const Attempt& attempt : ladder) {
      best = find_justification(
          rcg, out_node, attempt.allowed,
          attempt.exclusive ? used_edges : no_exclusions);
      if (best.found) {
        chosen = &attempt;
        break;
      }
    }
    const PortId out_port(rcg.node(out_node).ref.index);
    if (best.found) {
      SOCET_EVENT(
          "transparency/path", {"core", netlist.name()},
          {"version", policy.name}, {"port", netlist.port(out_port).name},
          {"dir", "justify"},
          {"edge_class",
           chosen->allowed == EdgeClass::kHscanOnly ? "hscan" : "existing"},
          {"reuse", !chosen->exclusive}, {"latency", best.latency},
          {"edges", best.edges.size()}, {"freezes", best.freeze_points});
      FoundPath fp;
      fp.result = best;
      for (std::uint32_t e : best.edges) {
        if (rcg.node(rcg.edge(e).src).ref.kind == NodeKind::kInputPort) {
          fp.pairs.emplace_back(PortId(rcg.node(rcg.edge(e).src).ref.index),
                                out_port);
        }
        used_edges.insert(e);
      }
      paths.push_back(std::move(fp));
    } else {
      // Transparency mux from some input straight onto the output; prefer
      // an input port of matching kind/width.
      const auto inputs = netlist.input_ports();
      util::require(!inputs.empty(), "make_version: core has no inputs");
      PortId src = inputs.front();
      for (PortId in : inputs) {
        if (netlist.port(in).width >= netlist.port(out_port).width) {
          src = in;
          break;
        }
      }
      SOCET_COUNT("transparency/mux_insertions");
      FoundPath fp;
      fp.result.found = true;
      fp.result.latency = 1;
      fp.added_mux = true;
      fp.pairs.emplace_back(src, out_port);
      paths.push_back(std::move(fp));
      const bool control =
          netlist.port(out_port).kind == rtl::PortKind::kControl;
      const unsigned mux_cells =
          (control ? cost.control_bypass_per_bit : cost.trans_mux_per_bit) *
              netlist.port(out_port).width +
          cost.trans_mux_control;
      version.extra_cells += mux_cells;
      SOCET_EVENT("transparency/mux", {"core", netlist.name()},
                  {"version", policy.name},
                  {"port", netlist.port(out_port).name}, {"dir", "justify"},
                  {"pair", netlist.port(src).name + "->" +
                               netlist.port(out_port).name},
                  {"cells", mux_cells}, {"reason", "no_path"});
    }
  }

  // --- Propagation: every input must reach outputs. ---------------------
  for (std::uint32_t in_node : rcg.input_nodes()) {
    SearchResult best;
    const Attempt* chosen = nullptr;
    for (const Attempt& attempt : ladder) {
      best = find_propagation(rcg, in_node, attempt.allowed,
                              attempt.exclusive ? used_edges : no_exclusions);
      if (best.found) {
        chosen = &attempt;
        break;
      }
    }
    const PortId in_port(rcg.node(in_node).ref.index);
    if (best.found) {
      SOCET_EVENT(
          "transparency/path", {"core", netlist.name()},
          {"version", policy.name}, {"port", netlist.port(in_port).name},
          {"dir", "propagate"},
          {"edge_class",
           chosen->allowed == EdgeClass::kHscanOnly ? "hscan" : "existing"},
          {"reuse", !chosen->exclusive}, {"latency", best.latency},
          {"edges", best.edges.size()}, {"freezes", best.freeze_points});
      FoundPath fp;
      fp.result = best;
      for (std::uint32_t e : best.edges) {
        if (rcg.node(rcg.edge(e).dst).ref.kind == NodeKind::kOutputPort) {
          fp.pairs.emplace_back(in_port,
                                PortId(rcg.node(rcg.edge(e).dst).ref.index));
        }
        used_edges.insert(e);
      }
      paths.push_back(std::move(fp));
    } else {
      const auto outputs = netlist.output_ports();
      util::require(!outputs.empty(), "make_version: core has no outputs");
      PortId dst = outputs.front();
      for (PortId out : outputs) {
        if (netlist.port(out).width >= netlist.port(in_port).width) {
          dst = out;
          break;
        }
      }
      SOCET_COUNT("transparency/mux_insertions");
      FoundPath fp;
      fp.result.found = true;
      fp.result.latency = 1;
      fp.added_mux = true;
      fp.pairs.emplace_back(in_port, dst);
      paths.push_back(std::move(fp));
      const bool control = netlist.port(in_port).kind == rtl::PortKind::kControl;
      const unsigned mux_cells =
          (control ? cost.control_bypass_per_bit : cost.trans_mux_per_bit) *
              netlist.port(in_port).width +
          cost.trans_mux_control;
      version.extra_cells += mux_cells;
      SOCET_EVENT("transparency/mux", {"core", netlist.name()},
                  {"version", policy.name},
                  {"port", netlist.port(in_port).name}, {"dir", "propagate"},
                  {"pair", netlist.port(in_port).name + "->" +
                               netlist.port(dst).name},
                  {"cells", mux_cells}, {"reason", "no_path"});
    }
  }

  // --- Cost of the found paths. ------------------------------------------
  std::set<std::uint32_t> non_hscan_costed;
  for (const FoundPath& fp : paths) {
    version.extra_cells += fp.result.freeze_points * cost.freeze_cell;
    for (std::uint32_t e : fp.result.edges) {
      if (!rcg.edge(e).hscan && !non_hscan_costed.count(e)) {
        non_hscan_costed.insert(e);
        version.extra_cells += cost.non_hscan_edge_cell;
      }
    }
  }

  // --- Serial groups: paths sharing an RCG edge serialize. ---------------
  UnionFind uf(paths.size());
  std::map<std::uint32_t, std::size_t> edge_owner;
  for (std::size_t p = 0; p < paths.size(); ++p) {
    for (std::uint32_t e : paths[p].result.edges) {
      auto it = edge_owner.find(e);
      if (it == edge_owner.end()) {
        edge_owner.emplace(e, p);
      } else {
        uf.unite(p, it->second);
      }
    }
  }
  std::map<std::size_t, int> root_to_group;
  std::map<std::size_t, int> root_members;
  for (std::size_t p = 0; p < paths.size(); ++p) ++root_members[uf.find(p)];

  int next_group = 0;
  for (std::size_t p = 0; p < paths.size(); ++p) {
    const std::size_t root = uf.find(p);
    int group = -1;
    if (root_members[root] > 1) {
      auto it = root_to_group.find(root);
      if (it == root_to_group.end()) {
        group = next_group++;
        root_to_group.emplace(root, group);
        version.extra_cells += cost.shared_group_control;
      } else {
        group = it->second;
      }
    }
    for (const auto& [in, out] : paths[p].pairs) {
      version.edges.push_back(TransparencyEdgeSpec{
          in, out, paths[p].result.latency, group, paths[p].added_mux});
    }
  }

  // Deduplicate pairs (a pair can surface from both search directions):
  // keep the lowest-latency occurrence.
  std::stable_sort(version.edges.begin(), version.edges.end(),
                   [](const TransparencyEdgeSpec& a,
                      const TransparencyEdgeSpec& b) {
                     if (a.input != b.input) return a.input < b.input;
                     if (a.output != b.output) return a.output < b.output;
                     return a.latency < b.latency;
                   });
  version.edges.erase(
      std::unique(version.edges.begin(), version.edges.end(),
                  [](const TransparencyEdgeSpec& a,
                     const TransparencyEdgeSpec& b) {
                    return a.input == b.input && a.output == b.output;
                  }),
      version.edges.end());

  // --- Version 3: force every pair to latency one with added muxes. ------
  if (policy.force_latency_one) {
    force_latency_one(version, netlist, cost);
  }
  return version;
}

void force_latency_one(CoreVersion& version, const rtl::Netlist& netlist,
                       const TransparencyCostModel& cost) {
  for (auto& edge : version.edges) {
    if (edge.latency <= 1) continue;
    const auto& out = netlist.port(edge.output);
    version.extra_cells +=
        cost.trans_mux_per_bit * out.width + cost.trans_mux_control;
    edge.latency = 1;
    edge.serial_group = -1;
    edge.via_added_mux = true;
  }
}

std::vector<CoreVersion> standard_versions(const Rcg& rcg,
                                           const TransparencyCostModel& cost) {
  std::vector<CoreVersion> versions;
  versions.push_back(make_version(
      rcg, VersionPolicy{"Version 1", true, true, false}, cost));
  versions.push_back(make_version(
      rcg, VersionPolicy{"Version 2", false, true, false}, cost));
  versions.push_back(make_version(
      rcg, VersionPolicy{"Version 3", false, true, true}, cost));

  // Versions are cumulative: the transparency logic of version k+1
  // includes version k's, so every pair inherits the best latency seen so
  // far.  Serial-group ids are renumbered per merged version so groups
  // from different sources never collide.
  for (std::size_t v = 1; v < versions.size(); ++v) {
    CoreVersion& prev = versions[v - 1];
    CoreVersion& cur = versions[v];
    const int group_shift =
        1 + std::accumulate(cur.edges.begin(), cur.edges.end(), -1,
                            [](int acc, const TransparencyEdgeSpec& e) {
                              return std::max(acc, e.serial_group);
                            });
    for (const TransparencyEdgeSpec& inherited : prev.edges) {
      bool found = false;
      for (TransparencyEdgeSpec& edge : cur.edges) {
        if (edge.input != inherited.input || edge.output != inherited.output) {
          continue;
        }
        found = true;
        if (inherited.latency < edge.latency) {
          edge = inherited;
          if (edge.serial_group >= 0) edge.serial_group += group_shift;
        }
        break;
      }
      if (!found) {
        cur.edges.push_back(inherited);
        if (cur.edges.back().serial_group >= 0) {
          cur.edges.back().serial_group += group_shift;
        }
      }
    }
    // Area only accumulates; nudge ties so the optimizer has a strict
    // ladder to climb.
    cur.extra_cells = std::max(cur.extra_cells, prev.extra_cells + 1);
  }
  // Pairs inherited into the minimum-latency version must also be forced
  // down to one cycle (they pay for their own muxes).
  force_latency_one(versions.back(), rcg.netlist(), cost);
  return versions;
}

}  // namespace socet::transparency
