#include "socet/transparency/rcg.hpp"

#include <algorithm>
#include <map>

namespace socet::transparency {

namespace {

/// Two half-open bit ranges.
bool ranges_disjoint(unsigned lo_a, unsigned w_a, unsigned lo_b, unsigned w_b) {
  return lo_a + w_a <= lo_b || lo_b + w_b <= lo_a;
}

}  // namespace

Rcg::Rcg(const rtl::Netlist& netlist, const hscan::HscanConfig* hscan)
    : netlist_(&netlist) {
  // Nodes: input ports, output ports, registers — in a stable order.
  std::map<rtl::NodeRef, std::uint32_t> index;
  auto add_node = [&](const rtl::NodeRef& ref) {
    index[ref] = static_cast<std::uint32_t>(nodes_.size());
    nodes_.push_back(RcgNode{ref, false, false, {}, {}});
  };
  for (rtl::PortId id : netlist.input_ports()) {
    add_node(rtl::port_node(netlist, id));
  }
  for (rtl::PortId id : netlist.output_ports()) {
    add_node(rtl::port_node(netlist, id));
  }
  for (std::size_t i = 0; i < netlist.registers().size(); ++i) {
    add_node(rtl::register_node(rtl::RegisterId(static_cast<std::uint32_t>(i))));
  }

  // Edges from the transfer-path enumeration.  Multiple enumerated paths
  // between the same node pair with the same slices (e.g. through
  // different mux data pins) merge into one edge, keeping the cheapest
  // annotation (direct beats mux path; HSCAN flag accumulates).
  std::map<std::tuple<std::uint32_t, std::uint32_t, unsigned, unsigned, unsigned>,
           std::uint32_t>
      dedup;
  for (const rtl::TransferPath& path : rtl::enumerate_transfer_paths(netlist)) {
    const std::uint32_t src = index.at(path.src);
    const std::uint32_t dst = index.at(path.dst);
    const auto key =
        std::make_tuple(src, dst, path.src_lo, path.dst_lo, path.width);
    auto it = dedup.find(key);
    if (it != dedup.end()) {
      RcgEdge& edge = edges_[it->second];
      edge.direct = edge.direct || path.direct();
      edge.mux_hops =
          std::min(edge.mux_hops, static_cast<unsigned>(path.hops.size()));
      continue;
    }
    RcgEdge edge;
    edge.src = src;
    edge.dst = dst;
    edge.src_lo = path.src_lo;
    edge.dst_lo = path.dst_lo;
    edge.width = path.width;
    edge.direct = path.direct();
    edge.mux_hops = static_cast<unsigned>(path.hops.size());
    dedup[key] = static_cast<std::uint32_t>(edges_.size());
    edges_.push_back(edge);
  }

  // HSCAN flags: an edge is an HSCAN edge when the chain construction
  // reused the same (src, dst) node pair.
  if (hscan != nullptr) {
    for (const auto& [from, to] : hscan->reused_edges) {
      auto from_it = index.find(from);
      auto to_it = index.find(to);
      if (from_it == index.end() || to_it == index.end()) continue;
      for (RcgEdge& edge : edges_) {
        if (edge.src == from_it->second && edge.dst == to_it->second) {
          edge.hscan = true;
        }
      }
    }
    // Inserted scan test muxes create brand-new paths: add them as HSCAN
    // edges so the transparency search can ride the chains end to end.
    for (const auto& [from, to] : hscan->added_links) {
      auto from_it = index.find(from);
      auto to_it = index.find(to);
      if (from_it == index.end() || to_it == index.end()) continue;
      const unsigned width =
          std::min(rtl::node_width(netlist, from), rtl::node_width(netlist, to));
      RcgEdge edge;
      edge.src = from_it->second;
      edge.dst = to_it->second;
      edge.src_lo = 0;
      edge.dst_lo = 0;
      edge.width = width;
      edge.hscan = true;
      edge.direct = false;
      edge.mux_hops = 1;
      edges_.push_back(edge);
    }
  }

  // A register's Q wired straight onto an output port is free observation
  // hardware (no mux, no gating), so it is usable even by the HSCAN-only
  // search regardless of which chain the register landed on.
  for (RcgEdge& edge : edges_) {
    if (edge.direct && nodes_[edge.dst].ref.kind == rtl::NodeKind::kOutputPort) {
      edge.hscan = true;
    }
  }

  // Adjacency and split-node classification.
  for (std::uint32_t e = 0; e < edges_.size(); ++e) {
    nodes_[edges_[e].src].out_edges.push_back(e);
    nodes_[edges_[e].dst].in_edges.push_back(e);
  }
  for (RcgNode& node : nodes_) {
    for (std::size_t a = 0; a < node.in_edges.size() && !node.c_split; ++a) {
      for (std::size_t b = a + 1; b < node.in_edges.size(); ++b) {
        const RcgEdge& ea = edges_[node.in_edges[a]];
        const RcgEdge& eb = edges_[node.in_edges[b]];
        if (ranges_disjoint(ea.dst_lo, ea.width, eb.dst_lo, eb.width)) {
          node.c_split = true;
          break;
        }
      }
    }
    for (std::size_t a = 0; a < node.out_edges.size() && !node.o_split; ++a) {
      for (std::size_t b = a + 1; b < node.out_edges.size(); ++b) {
        const RcgEdge& ea = edges_[node.out_edges[a]];
        const RcgEdge& eb = edges_[node.out_edges[b]];
        if (ranges_disjoint(ea.src_lo, ea.width, eb.src_lo, eb.width)) {
          node.o_split = true;
          break;
        }
      }
    }
  }
}

std::uint32_t Rcg::index_of(const rtl::NodeRef& ref) const {
  for (std::uint32_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].ref == ref) return i;
  }
  util::raise("Rcg::index_of: node not in graph");
}

std::vector<std::uint32_t> Rcg::input_nodes() const {
  std::vector<std::uint32_t> out;
  for (std::uint32_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].ref.kind == rtl::NodeKind::kInputPort) out.push_back(i);
  }
  return out;
}

std::vector<std::uint32_t> Rcg::output_nodes() const {
  std::vector<std::uint32_t> out;
  for (std::uint32_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].ref.kind == rtl::NodeKind::kOutputPort) out.push_back(i);
  }
  return out;
}

std::string Rcg::node_name(std::uint32_t index) const {
  return rtl::node_name(*netlist_, nodes_.at(index).ref);
}

}  // namespace socet::transparency
