#include "socet/rtl/paths.hpp"

#include <algorithm>

namespace socet::rtl {

namespace {

/// DFS frame: we are at driver pin `pin`, whose bits [pin_lo, pin_lo+width)
/// currently carry source bits [src_lo, src_lo+width).
struct Frame {
  PinRef pin;
  unsigned pin_lo;
  unsigned src_lo;
  unsigned width;
};

class PathEnumerator {
 public:
  explicit PathEnumerator(const Netlist& netlist) : netlist_(netlist) {}

  std::vector<TransferPath> run() {
    for (PortId id : netlist_.input_ports()) {
      src_ = port_node(netlist_, id);
      const PinRef pin = netlist_.pin(id);
      explore(Frame{pin, 0, 0, netlist_.pin_width(pin)});
    }
    for (std::size_t i = 0; i < netlist_.registers().size(); ++i) {
      const RegisterId id(static_cast<std::uint32_t>(i));
      src_ = register_node(id);
      const PinRef pin = netlist_.reg_q(id);
      explore(Frame{pin, 0, 0, netlist_.pin_width(pin)});
    }
    return std::move(paths_);
  }

 private:
  void explore(const Frame& frame) {
    for (const Connection* conn : netlist_.connections_from(frame.pin)) {
      // Intersect the carried range with the connection's source slice.
      const unsigned lo = std::max(frame.pin_lo, conn->from_lo);
      const unsigned hi = std::min(frame.pin_lo + frame.width,
                                   conn->from_lo + conn->width);
      if (lo >= hi) continue;
      const unsigned width = hi - lo;
      const unsigned src_lo = frame.src_lo + (lo - frame.pin_lo);
      const unsigned to_lo = conn->to_lo + (lo - conn->from_lo);

      switch (conn->to.role) {
        case PinRole::kRegD: {
          emit(RegisterId(conn->to.comp.index), src_lo, to_lo, width);
          break;
        }
        case PinRole::kPort: {
          emit_port(PortId(conn->to.comp.index), src_lo, to_lo, width);
          break;
        }
        case PinRole::kMuxData: {
          const MuxId mux(conn->to.comp.index);
          if (std::any_of(hops_.begin(), hops_.end(),
                          [&](const MuxHop& h) { return h.mux == mux; })) {
            break;  // combinational mux loop: not a physical data path
          }
          hops_.push_back(MuxHop{mux, conn->to.arg});
          explore(Frame{netlist_.mux_out(mux), to_lo, src_lo, width});
          hops_.pop_back();
          break;
        }
        default:
          // Select, load, FU operand: data is transformed or consumed as
          // control, so no transparency transfer path continues here.
          break;
      }
    }
  }

  void emit(RegisterId reg, unsigned src_lo, unsigned dst_lo, unsigned width) {
    paths_.push_back(
        TransferPath{src_, register_node(reg), src_lo, dst_lo, width, hops_});
  }

  void emit_port(PortId port, unsigned src_lo, unsigned dst_lo,
                 unsigned width) {
    paths_.push_back(TransferPath{src_, port_node(netlist_, port), src_lo,
                                  dst_lo, width, hops_});
  }

  const Netlist& netlist_;
  NodeRef src_;
  std::vector<MuxHop> hops_;
  std::vector<TransferPath> paths_;
};

}  // namespace

std::vector<TransferPath> enumerate_transfer_paths(const Netlist& netlist) {
  return PathEnumerator(netlist).run();
}

unsigned node_width(const Netlist& netlist, const NodeRef& node) {
  switch (node.kind) {
    case NodeKind::kInputPort:
    case NodeKind::kOutputPort:
      return netlist.ports().at(node.index).width;
    case NodeKind::kRegister:
      return netlist.registers().at(node.index).width;
  }
  util::raise("node_width: unknown node kind");
}

std::string node_name(const Netlist& netlist, const NodeRef& node) {
  switch (node.kind) {
    case NodeKind::kInputPort:
    case NodeKind::kOutputPort:
      return netlist.ports().at(node.index).name;
    case NodeKind::kRegister:
      return netlist.registers().at(node.index).name;
  }
  return "?";
}

NodeRef port_node(const Netlist& netlist, PortId id) {
  const auto& port = netlist.port(id);
  return NodeRef{port.dir == PortDir::kInput ? NodeKind::kInputPort
                                             : NodeKind::kOutputPort,
                 id.value()};
}

NodeRef register_node(RegisterId id) {
  return NodeRef{NodeKind::kRegister, id.value()};
}

}  // namespace socet::rtl
