#include "socet/rtl/instantiate.hpp"

namespace socet::rtl {

Instance instantiate(Netlist& chip, const Netlist& core,
                     const std::string& prefix) {
  Instance inst;

  // Component-by-component copy, remembering the new indices.
  std::vector<FuId> port_proxy(core.ports().size());
  std::vector<RegisterId> reg_map(core.registers().size());
  std::vector<MuxId> mux_map(core.muxes().size());
  std::vector<FuId> fu_map(core.fus().size());
  std::vector<ConstantId> const_map(core.constants().size());

  auto prefixed = [&prefix](const std::string& name) {
    return prefix + "." + name;
  };

  for (std::size_t i = 0; i < core.ports().size(); ++i) {
    const Port& p = core.ports()[i];
    port_proxy[i] = chip.add_fu(prefixed(p.name), FuKind::kBuf, p.width, 1);
    inst.port_proxies[p.name] = port_proxy[i];
  }
  for (std::size_t i = 0; i < core.registers().size(); ++i) {
    const Register& r = core.registers()[i];
    reg_map[i] = chip.add_register(prefixed(r.name), r.width, r.has_load_enable);
  }
  for (std::size_t i = 0; i < core.muxes().size(); ++i) {
    const Mux& m = core.muxes()[i];
    mux_map[i] = chip.add_mux(prefixed(m.name), m.width, m.num_inputs);
  }
  for (std::size_t i = 0; i < core.fus().size(); ++i) {
    const FunctionalUnit& f = core.fus()[i];
    if (f.kind == FuKind::kRandomLogic) {
      const unsigned in_width =
          core.pin_width(core.fu_in(FuId(static_cast<std::uint32_t>(i)), 0));
      fu_map[i] = chip.add_random_logic(prefixed(f.name), in_width, f.width,
                                        f.gate_hint, f.seed);
    } else {
      fu_map[i] = chip.add_fu(prefixed(f.name), f.kind, f.width, f.num_inputs);
    }
  }
  for (std::size_t i = 0; i < core.constants().size(); ++i) {
    const Constant& c = core.constants()[i];
    const_map[i] = chip.add_constant(prefixed(c.name), c.value);
  }

  // Rewrite a core-side pin to the corresponding chip-side pin.  Core port
  // pins map onto their proxy buffer: the *driver* side of an input port is
  // the proxy's output, and the *sink* side of an output port is the
  // proxy's input.
  auto map_pin = [&](const PinRef& pin, bool as_driver) -> PinRef {
    switch (pin.comp.kind) {
      case CompKind::kPort: {
        const FuId proxy = port_proxy[pin.comp.index];
        return as_driver ? chip.fu_out(proxy) : chip.fu_in(proxy, 0);
      }
      case CompKind::kRegister: {
        const RegisterId id = reg_map[pin.comp.index];
        switch (pin.role) {
          case PinRole::kRegD:
            return chip.reg_d(id);
          case PinRole::kRegQ:
            return chip.reg_q(id);
          case PinRole::kRegLoad:
            return chip.reg_load(id);
          default:
            util::raise("instantiate: bad register pin role");
        }
      }
      case CompKind::kMux: {
        const MuxId id = mux_map[pin.comp.index];
        switch (pin.role) {
          case PinRole::kMuxData:
            return chip.mux_in(id, pin.arg);
          case PinRole::kMuxSelect:
            return chip.mux_select(id);
          case PinRole::kMuxOut:
            return chip.mux_out(id);
          default:
            util::raise("instantiate: bad mux pin role");
        }
      }
      case CompKind::kFu: {
        const FuId id = fu_map[pin.comp.index];
        return pin.role == PinRole::kFuIn ? chip.fu_in(id, pin.arg)
                                          : chip.fu_out(id);
      }
      case CompKind::kConstant:
        return chip.const_out(const_map[pin.comp.index]);
    }
    util::raise("instantiate: unknown component kind");
  };

  for (const Connection& conn : core.connections()) {
    const PinRef from = map_pin(conn.from, /*as_driver=*/true);
    const PinRef to = map_pin(conn.to, /*as_driver=*/false);
    chip.connect(from, conn.from_lo, to, conn.to_lo, conn.width);
  }

  return inst;
}

}  // namespace socet::rtl
