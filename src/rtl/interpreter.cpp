#include "socet/rtl/interpreter.hpp"

namespace socet::rtl {

namespace {

std::uint64_t low_bits(const util::BitVector& v) {
  // Arithmetic units here are at most 64 bits wide; widths are validated
  // at construction.
  return v.slice(0, std::min<std::size_t>(v.width(), 64)).to_u64();
}

}  // namespace

Interpreter::Interpreter(const Netlist& netlist) : netlist_(netlist) {
  for (const auto& reg : netlist.registers()) {
    registers_.emplace_back(reg.width);
  }
  for (const auto& port : netlist.ports()) {
    inputs_.emplace_back(port.width);
  }
  for (const Connection& conn : netlist.connections()) {
    sinks_[conn.to].push_back(&conn);
  }
  for (const auto& fu : netlist.fus()) {
    util::require(fu.kind != FuKind::kRandomLogic,
                  "Interpreter: kRandomLogic has no RT-level semantics (" +
                      fu.name + "); use the gate level");
  }
  on_stack_.assign(netlist.muxes().size() + netlist.fus().size(), 0);
}

void Interpreter::reset() {
  for (std::size_t i = 0; i < registers_.size(); ++i) {
    registers_[i] = util::BitVector(netlist_.registers()[i].width);
  }
  memo_.clear();
}

void Interpreter::set_input(const std::string& port, util::BitVector value) {
  set_input(netlist_.find_port(port), std::move(value));
}

void Interpreter::set_input(PortId port, util::BitVector value) {
  util::require(netlist_.port(port).dir == PortDir::kInput,
                "Interpreter::set_input: not an input port");
  util::require(value.width() == netlist_.port(port).width,
                "Interpreter::set_input: width mismatch");
  inputs_[port.index()] = std::move(value);
}

void Interpreter::settle() { memo_.clear(); }

void Interpreter::step() {
  settle();
  // Capture: evaluate every register's next value against the pre-edge
  // state, then commit all at once.
  std::vector<util::BitVector> next = registers_;
  for (std::size_t i = 0; i < registers_.size(); ++i) {
    const RegisterId id(static_cast<std::uint32_t>(i));
    const auto& reg = netlist_.registers()[i];
    bool load = true;
    if (reg.has_load_enable) {
      auto it = sinks_.find(netlist_.reg_load(id));
      if (it != sinks_.end()) {
        load = sink_value(netlist_.reg_load(id), 1).get(0);
      }
    }
    if (!load) continue;
    // Only driven bits update; undriven bits hold.
    auto it = sinks_.find(netlist_.reg_d(id));
    if (it == sinks_.end()) continue;
    for (const Connection* conn : it->second) {
      const util::BitVector src = driver_value(conn->from);
      for (unsigned b = 0; b < conn->width; ++b) {
        next[i].set(conn->to_lo + b, src.get(conn->from_lo + b));
      }
    }
  }
  registers_ = std::move(next);
  settle();
}

util::BitVector Interpreter::output(const std::string& port) const {
  return output(netlist_.find_port(port));
}

util::BitVector Interpreter::output(PortId port) const {
  util::require(netlist_.port(port).dir == PortDir::kOutput,
                "Interpreter::output: not an output port");
  // const_cast: evaluation memoizes but is logically const between edges.
  auto& self = const_cast<Interpreter&>(*this);
  return self.sink_value(netlist_.pin(port), netlist_.port(port).width);
}

util::BitVector Interpreter::register_value(RegisterId reg) const {
  return registers_.at(reg.index());
}

void Interpreter::set_register(RegisterId reg, util::BitVector value) {
  util::require(value.width() == netlist_.reg(reg).width,
                "Interpreter::set_register: width mismatch");
  registers_.at(reg.index()) = std::move(value);
  memo_.clear();
}

util::BitVector Interpreter::sink_value(const PinRef& pin, unsigned width) {
  util::BitVector value(width);
  auto it = sinks_.find(pin);
  if (it == sinks_.end()) return value;
  for (const Connection* conn : it->second) {
    const util::BitVector src = driver_value(conn->from);
    for (unsigned b = 0; b < conn->width; ++b) {
      value.set(conn->to_lo + b, src.get(conn->from_lo + b));
    }
  }
  return value;
}

util::BitVector Interpreter::driver_value(const PinRef& pin) {
  if (auto it = memo_.find(pin); it != memo_.end()) return it->second;
  util::BitVector value;
  switch (pin.role) {
    case PinRole::kPort:
      value = inputs_.at(pin.comp.index);
      break;
    case PinRole::kRegQ:
      value = registers_.at(pin.comp.index);
      break;
    case PinRole::kConstOut:
      value = netlist_.constants().at(pin.comp.index).value;
      break;
    case PinRole::kMuxOut: {
      const MuxId id(pin.comp.index);
      const std::size_t guard = pin.comp.index;
      util::require(!on_stack_[guard],
                    "Interpreter: combinational mux loop");
      on_stack_[guard] = 1;
      const auto& mux = netlist_.mux(id);
      const unsigned sel_width = netlist_.pin_width(netlist_.mux_select(id));
      const std::uint64_t sel =
          sink_value(netlist_.mux_select(id), sel_width).to_u64();
      if (sel < mux.num_inputs) {
        value = sink_value(netlist_.mux_in(id, static_cast<unsigned>(sel)),
                           mux.width);
      } else {
        value = util::BitVector(mux.width);  // unmapped select reads 0
      }
      on_stack_[guard] = 0;
      break;
    }
    case PinRole::kFuOut: {
      const std::size_t guard = netlist_.muxes().size() + pin.comp.index;
      util::require(!on_stack_[guard], "Interpreter: combinational FU loop");
      on_stack_[guard] = 1;
      value = eval_fu(FuId(pin.comp.index));
      on_stack_[guard] = 0;
      break;
    }
    default:
      util::raise("Interpreter: driver_value on non-driver pin");
  }
  memo_.emplace(pin, value);
  return value;
}

util::BitVector Interpreter::eval_fu(FuId id) {
  const auto& fu = netlist_.fu(id);
  util::require(fu.width <= 64, "Interpreter: FU wider than 64 bits");
  auto op = [&](unsigned index) {
    const unsigned width = netlist_.pin_width(netlist_.fu_in(id, index));
    return sink_value(netlist_.fu_in(id, index), width);
  };
  const std::uint64_t mask =
      fu.width >= 64 ? ~0ULL : ((1ULL << fu.width) - 1);
  switch (fu.kind) {
    case FuKind::kBuf:
      return op(0);
    case FuKind::kAdd:
      return util::BitVector(fu.width,
                             (low_bits(op(0)) + low_bits(op(1))) & mask);
    case FuKind::kSub:
      return util::BitVector(fu.width,
                             (low_bits(op(0)) - low_bits(op(1))) & mask);
    case FuKind::kIncrement:
      return util::BitVector(fu.width, (low_bits(op(0)) + 1) & mask);
    case FuKind::kAnd:
      return util::BitVector(fu.width, low_bits(op(0)) & low_bits(op(1)));
    case FuKind::kOr:
      return util::BitVector(fu.width, low_bits(op(0)) | low_bits(op(1)));
    case FuKind::kXor:
      return util::BitVector(fu.width, low_bits(op(0)) ^ low_bits(op(1)));
    case FuKind::kNot:
      return util::BitVector(fu.width, (~low_bits(op(0))) & mask);
    case FuKind::kShiftLeft:
      return util::BitVector(fu.width, (low_bits(op(0)) << 1) & mask);
    case FuKind::kShiftRight:
      return util::BitVector(fu.width, (low_bits(op(0)) >> 1) & mask);
    case FuKind::kEqual:
      return util::BitVector(1, low_bits(op(0)) == low_bits(op(1)) ? 1 : 0);
    case FuKind::kLess:
      return util::BitVector(1, low_bits(op(0)) < low_bits(op(1)) ? 1 : 0);
    case FuKind::kAlu: {
      const std::uint64_t a = low_bits(op(0));
      const std::uint64_t b = low_bits(op(1));
      switch (low_bits(op(2)) & 3) {
        case 0:
          return util::BitVector(fu.width, (a + b) & mask);
        case 1:
          return util::BitVector(fu.width, a & b);
        case 2:
          return util::BitVector(fu.width, a | b);
        default:
          return util::BitVector(fu.width, a ^ b);
      }
    }
    case FuKind::kRandomLogic:
      break;
  }
  util::raise("Interpreter: cannot evaluate functional unit " + fu.name);
}

}  // namespace socet::rtl
