#include "socet/rtl/text.hpp"

#include <cctype>
#include <sstream>

namespace socet::rtl {

namespace {

std::string fu_kind_name(FuKind kind) {
  switch (kind) {
    case FuKind::kAdd:
      return "add";
    case FuKind::kSub:
      return "sub";
    case FuKind::kIncrement:
      return "increment";
    case FuKind::kAnd:
      return "and";
    case FuKind::kOr:
      return "or";
    case FuKind::kXor:
      return "xor";
    case FuKind::kNot:
      return "not";
    case FuKind::kShiftLeft:
      return "shl";
    case FuKind::kShiftRight:
      return "shr";
    case FuKind::kEqual:
      return "equal";
    case FuKind::kLess:
      return "less";
    case FuKind::kAlu:
      return "alu";
    case FuKind::kBuf:
      return "buf";
    case FuKind::kRandomLogic:
      return "randomlogic";
  }
  return "?";
}

FuKind fu_kind_from(const std::string& name, std::size_t line) {
  static const std::pair<const char*, FuKind> table[] = {
      {"add", FuKind::kAdd},        {"sub", FuKind::kSub},
      {"increment", FuKind::kIncrement}, {"and", FuKind::kAnd},
      {"or", FuKind::kOr},          {"xor", FuKind::kXor},
      {"not", FuKind::kNot},        {"shl", FuKind::kShiftLeft},
      {"shr", FuKind::kShiftRight}, {"equal", FuKind::kEqual},
      {"less", FuKind::kLess},      {"alu", FuKind::kAlu},
      {"buf", FuKind::kBuf},
  };
  for (const auto& [key, kind] : table) {
    if (name == key) return kind;
  }
  util::raise("parse_netlist: line " + std::to_string(line) +
              ": unknown fu kind '" + name + "'");
}

/// Pin spelled as "<kind>:<name>[.<pin><arg>]".  Names may not contain
/// whitespace (the serializer enforces this when writing).
std::string pin_token(const Netlist& n, const PinRef& pin) {
  switch (pin.comp.kind) {
    case CompKind::kPort:
      return "port:" + n.ports()[pin.comp.index].name;
    case CompKind::kRegister: {
      const std::string base = "reg:" + n.registers()[pin.comp.index].name;
      switch (pin.role) {
        case PinRole::kRegD:
          return base + ".d";
        case PinRole::kRegQ:
          return base + ".q";
        case PinRole::kRegLoad:
          return base + ".load";
        default:
          break;
      }
      break;
    }
    case CompKind::kMux: {
      const std::string base = "mux:" + n.muxes()[pin.comp.index].name;
      switch (pin.role) {
        case PinRole::kMuxData:
          return base + ".in" + std::to_string(pin.arg);
        case PinRole::kMuxSelect:
          return base + ".sel";
        case PinRole::kMuxOut:
          return base + ".out";
        default:
          break;
      }
      break;
    }
    case CompKind::kFu: {
      const std::string base = "fu:" + n.fus()[pin.comp.index].name;
      return pin.role == PinRole::kFuIn
                 ? base + ".in" + std::to_string(pin.arg)
                 : base + ".out";
    }
    case CompKind::kConstant:
      return "const:" + n.constants()[pin.comp.index].name;
  }
  util::raise("serialize_netlist: unsupported pin");
}

struct PinParser {
  const Netlist& n;

  /// Strictly numeric pin index ("in3" -> 3); anything else is a parse
  /// error rather than an escaping std::invalid_argument.
  static unsigned parse_index(const std::string& digits, std::size_t line) {
    if (digits.empty() || digits.size() > 6) {
      util::raise("parse_netlist: line " + std::to_string(line) +
                  ": bad pin index '" + digits + "'");
    }
    unsigned value = 0;
    for (char c : digits) {
      if (c < '0' || c > '9') {
        util::raise("parse_netlist: line " + std::to_string(line) +
                    ": bad pin index '" + digits + "'");
      }
      value = value * 10 + static_cast<unsigned>(c - '0');
    }
    return value;
  }

  PinRef parse(const std::string& token, std::size_t line) const {
    const auto colon = token.find(':');
    util::require(colon != std::string::npos,
                  "parse_netlist: line " + std::to_string(line) +
                      ": bad pin token '" + token + "'");
    const std::string kind = token.substr(0, colon);
    std::string rest = token.substr(colon + 1);
    std::string pin_name;
    if (const auto dot = rest.rfind('.'); dot != std::string::npos &&
                                          kind != "port" && kind != "const") {
      pin_name = rest.substr(dot + 1);
      rest = rest.substr(0, dot);
    }
    if (kind == "port") return n.pin(n.find_port(rest));
    if (kind == "const") {
      for (std::size_t i = 0; i < n.constants().size(); ++i) {
        if (n.constants()[i].name == rest) {
          return n.const_out(ConstantId(static_cast<std::uint32_t>(i)));
        }
      }
      util::raise("parse_netlist: line " + std::to_string(line) +
                  ": unknown constant '" + rest + "'");
    }
    if (kind == "reg") {
      const RegisterId id = n.find_register(rest);
      if (pin_name == "d") return n.reg_d(id);
      if (pin_name == "q") return n.reg_q(id);
      if (pin_name == "load") return n.reg_load(id);
    }
    if (kind == "mux") {
      for (std::size_t i = 0; i < n.muxes().size(); ++i) {
        if (n.muxes()[i].name != rest) continue;
        const MuxId id(static_cast<std::uint32_t>(i));
        if (pin_name == "sel") return n.mux_select(id);
        if (pin_name == "out") return n.mux_out(id);
        if (pin_name.rfind("in", 0) == 0) {
          return n.mux_in(id, parse_index(pin_name.substr(2), line));
        }
      }
    }
    if (kind == "fu") {
      for (std::size_t i = 0; i < n.fus().size(); ++i) {
        if (n.fus()[i].name != rest) continue;
        const FuId id(static_cast<std::uint32_t>(i));
        if (pin_name == "out") return n.fu_out(id);
        if (pin_name.rfind("in", 0) == 0) {
          return n.fu_in(id, parse_index(pin_name.substr(2), line));
        }
      }
    }
    util::raise("parse_netlist: line " + std::to_string(line) +
                ": cannot resolve pin '" + token + "'");
  }
};

void check_name(const std::string& name) {
  util::require(!name.empty(), "serialize_netlist: empty component name");
  for (char c : name) {
    util::require(!std::isspace(static_cast<unsigned char>(c)) && c != ':',
                  "serialize_netlist: name '" + name +
                      "' contains whitespace or ':'");
  }
}

}  // namespace

std::string serialize_netlist(const Netlist& n) {
  std::ostringstream out;
  out << "socet-rtl v1\n";
  check_name(n.name());
  out << "netlist " << n.name() << "\n";
  for (const Port& port : n.ports()) {
    check_name(port.name);
    out << (port.dir == PortDir::kInput ? "input " : "output ") << port.name
        << (port.kind == PortKind::kData ? " data " : " control ")
        << port.width << "\n";
  }
  for (const Register& reg : n.registers()) {
    check_name(reg.name);
    out << "register " << reg.name << " " << reg.width
        << (reg.has_load_enable ? " load" : " noload") << "\n";
  }
  for (const Mux& mux : n.muxes()) {
    check_name(mux.name);
    out << "mux " << mux.name << " " << mux.width << " " << mux.num_inputs
        << "\n";
  }
  for (std::size_t i = 0; i < n.fus().size(); ++i) {
    const FunctionalUnit& fu = n.fus()[i];
    check_name(fu.name);
    if (fu.kind == FuKind::kRandomLogic) {
      const unsigned in_width =
          n.pin_width(n.fu_in(FuId(static_cast<std::uint32_t>(i)), 0));
      out << "randomlogic " << fu.name << " " << in_width << " " << fu.width
          << " " << fu.gate_hint << " " << fu.seed << "\n";
    } else {
      out << "fu " << fu.name << " " << fu_kind_name(fu.kind) << " "
          << fu.width << " " << fu.num_inputs << "\n";
    }
  }
  for (const Constant& constant : n.constants()) {
    check_name(constant.name);
    out << "constant " << constant.name << " " << constant.value.width()
        << " " << constant.value.to_string() << "\n";
  }
  for (const Connection& conn : n.connections()) {
    out << "connect " << pin_token(n, conn.from) << " " << conn.from_lo
        << " -> " << pin_token(n, conn.to) << " " << conn.to_lo << " "
        << conn.width << "\n";
  }
  out << "end\n";
  return out.str();
}

Netlist parse_netlist(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  std::size_t line_no = 0;
  bool saw_header = false;
  bool saw_end = false;
  Netlist netlist("");
  bool named = false;

  auto err = [&line_no](const std::string& message) -> void {
    util::raise("parse_netlist: line " + std::to_string(line_no) + ": " +
                message);
  };

  while (std::getline(in, line)) {
    ++line_no;
    if (auto hash = line.find('#'); hash != std::string::npos) {
      line.erase(hash);
    }
    std::istringstream tokens(line);
    std::string keyword;
    if (!(tokens >> keyword)) continue;
    if (saw_end) err("content after 'end'");

    if (!saw_header) {
      std::string tag;
      if (keyword != "socet-rtl" || !(tokens >> tag) || tag != "v1") {
        err("expected 'socet-rtl v1' header");
      }
      saw_header = true;
      continue;
    }

    if (keyword == "netlist") {
      std::string name;
      if (!(tokens >> name)) err("missing netlist name");
      netlist = Netlist(name);
      named = true;
    } else if (keyword == "input" || keyword == "output") {
      std::string name;
      std::string kind;
      unsigned width = 0;
      if (!(tokens >> name >> kind >> width)) err("bad port line");
      const PortKind port_kind =
          kind == "data" ? PortKind::kData : PortKind::kControl;
      if (kind != "data" && kind != "control") err("port kind data|control");
      if (keyword == "input") {
        netlist.add_input(name, width, port_kind);
      } else {
        netlist.add_output(name, width, port_kind);
      }
    } else if (keyword == "register") {
      std::string name;
      unsigned width = 0;
      std::string load;
      if (!(tokens >> name >> width >> load)) err("bad register line");
      if (load != "load" && load != "noload") err("register load|noload");
      netlist.add_register(name, width, load == "load");
    } else if (keyword == "mux") {
      std::string name;
      unsigned width = 0;
      unsigned inputs = 0;
      if (!(tokens >> name >> width >> inputs)) err("bad mux line");
      netlist.add_mux(name, width, inputs);
    } else if (keyword == "fu") {
      std::string name;
      std::string kind;
      unsigned width = 0;
      unsigned inputs = 0;
      if (!(tokens >> name >> kind >> width >> inputs)) err("bad fu line");
      netlist.add_fu(name, fu_kind_from(kind, line_no), width, inputs);
    } else if (keyword == "randomlogic") {
      std::string name;
      unsigned in_width = 0;
      unsigned out_width = 0;
      unsigned hint = 0;
      std::uint64_t seed = 0;
      if (!(tokens >> name >> in_width >> out_width >> hint >> seed)) {
        err("bad randomlogic line");
      }
      netlist.add_random_logic(name, in_width, out_width, hint, seed);
    } else if (keyword == "constant") {
      std::string name;
      unsigned width = 0;
      std::string bits;
      if (!(tokens >> name >> width >> bits)) err("bad constant line");
      if (bits.size() != width) err("constant width/bits mismatch");
      netlist.add_constant(name, util::BitVector::from_string(bits));
    } else if (keyword == "connect") {
      std::string from_token;
      std::string arrow;
      std::string to_token;
      unsigned from_lo = 0;
      unsigned to_lo = 0;
      unsigned width = 0;
      if (!(tokens >> from_token >> from_lo >> arrow >> to_token >> to_lo >>
            width) ||
          arrow != "->") {
        err("bad connect line");
      }
      const PinParser parser{netlist};
      netlist.connect(parser.parse(from_token, line_no), from_lo,
                      parser.parse(to_token, line_no), to_lo, width);
    } else if (keyword == "end") {
      saw_end = true;
    } else {
      err("unknown keyword '" + keyword + "'");
    }
  }
  if (!saw_header) util::raise("parse_netlist: empty input");
  if (!saw_end) util::raise("parse_netlist: missing 'end'");
  if (!named) util::raise("parse_netlist: missing 'netlist' declaration");
  return netlist;
}

}  // namespace socet::rtl
