// Component types of the register-transfer-level netlist model.
//
// The SOCET algorithms (HSCAN insertion, RCG extraction, transparency
// path search) consume purely *structural* RTL: ports, registers,
// multiplexers, functional units and constants, wired together with
// bit-sliced connections.  This mirrors the paper's premise that only
// structural — not functional — information about a core is available.
#pragma once

#include <cstdint>
#include <string>

#include "socet/util/bitvector.hpp"
#include "socet/util/ids.hpp"

namespace socet::rtl {

struct PortTag {};
struct RegisterTag {};
struct MuxTag {};
struct FuTag {};
struct ConstantTag {};

using PortId = util::Id<PortTag>;
using RegisterId = util::Id<RegisterTag>;
using MuxId = util::Id<MuxTag>;
using FuId = util::Id<FuTag>;
using ConstantId = util::Id<ConstantTag>;

enum class PortDir { kInput, kOutput };

/// Data ports carry test vectors; control ports are single- or few-bit
/// signals the paper handles via 1-bit bypass multiplexers (Section 4).
enum class PortKind { kData, kControl };

struct Port {
  std::string name;
  PortDir dir = PortDir::kInput;
  PortKind kind = PortKind::kData;
  unsigned width = 1;
};

struct Register {
  std::string name;
  unsigned width = 1;
  /// True if the register has a load-enable input (HSCAN then needs an OR
  /// gate on the load signal to force loading in scan mode; registers that
  /// load every cycle need a hold path instead).
  bool has_load_enable = true;
};

struct Mux {
  std::string name;
  unsigned width = 1;
  unsigned num_inputs = 2;
};

/// Functional unit behaviours understood by the gate-level elaborator.
enum class FuKind {
  kAdd,          ///< two-input ripple-carry adder (carry discarded)
  kSub,          ///< two-input subtractor
  kIncrement,    ///< one-input +1
  kAnd,          ///< bitwise AND
  kOr,           ///< bitwise OR
  kXor,          ///< bitwise XOR
  kNot,          ///< bitwise NOT (one input)
  kShiftLeft,    ///< one-input logical shift left by 1
  kShiftRight,   ///< one-input logical shift right by 1
  kEqual,        ///< two-input equality comparator (1-bit output)
  kLess,         ///< two-input unsigned less-than (1-bit output)
  kAlu,          ///< multi-function ALU (2 data inputs + 2-bit op select)
  kRandomLogic,  ///< synthesized random control cloud, seeded & sized below
  kBuf,          ///< wiring pass-through (used for port proxies when
                 ///< flattening a chip); elaborates to zero gates
};

struct FunctionalUnit {
  std::string name;
  FuKind kind = FuKind::kAdd;
  /// Output width.  Comparators have output width 1 regardless.
  unsigned width = 1;
  unsigned num_inputs = 2;
  /// For kRandomLogic: deterministic seed and approximate gate count used
  /// by the elaborator to synthesize a control cloud.
  std::uint64_t seed = 0;
  unsigned gate_hint = 0;
};

struct Constant {
  std::string name;
  util::BitVector value;
};

}  // namespace socet::rtl
