// The RT-level netlist: components plus bit-sliced connections.
//
// Connections run between *pins*.  Every component exposes a fixed pin
// set (a register has D, Q and LOAD pins; a mux has data pins, a select
// pin and an output pin; ...).  A connection maps a bit range of a
// driving pin onto a bit range of a sink pin, which is how the model
// expresses the bit-slicing the paper's split-node machinery depends on.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "socet/rtl/component.hpp"
#include "socet/util/error.hpp"

namespace socet::rtl {

enum class CompKind : std::uint8_t {
  kPort,
  kRegister,
  kMux,
  kFu,
  kConstant,
};

/// Type-erased reference to any component.
struct CompRef {
  CompKind kind = CompKind::kPort;
  std::uint32_t index = 0;

  friend bool operator==(const CompRef&, const CompRef&) = default;
  friend auto operator<=>(const CompRef&, const CompRef&) = default;
};

enum class PinRole : std::uint8_t {
  kPort,       ///< the single pin of a port (out for inputs, in for outputs)
  kRegD,       ///< register data input
  kRegQ,       ///< register data output
  kRegLoad,    ///< register load enable (1 bit)
  kMuxData,    ///< mux data input `arg`
  kMuxSelect,  ///< mux select input
  kMuxOut,     ///< mux output
  kFuIn,       ///< functional unit operand `arg`
  kFuOut,      ///< functional unit result
  kConstOut,   ///< constant driver
};

struct PinRef {
  CompRef comp;
  PinRole role = PinRole::kPort;
  std::uint32_t arg = 0;  ///< data-input / operand index where applicable

  friend bool operator==(const PinRef&, const PinRef&) = default;
  friend auto operator<=>(const PinRef&, const PinRef&) = default;
};

/// `width` bits of pin `from`, starting at `from_lo`, drive `width` bits of
/// pin `to`, starting at `to_lo`.
struct Connection {
  PinRef from;
  unsigned from_lo = 0;
  PinRef to;
  unsigned to_lo = 0;
  unsigned width = 1;
};

class Netlist {
 public:
  explicit Netlist(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  // ---- construction -------------------------------------------------------

  PortId add_input(const std::string& name, unsigned width,
                   PortKind kind = PortKind::kData);
  PortId add_output(const std::string& name, unsigned width,
                    PortKind kind = PortKind::kData);
  RegisterId add_register(const std::string& name, unsigned width,
                          bool has_load_enable = true);
  MuxId add_mux(const std::string& name, unsigned width, unsigned num_inputs);
  FuId add_fu(const std::string& name, FuKind kind, unsigned width,
              unsigned num_inputs);
  FuId add_random_logic(const std::string& name, unsigned in_width,
                        unsigned out_width, unsigned gate_hint,
                        std::uint64_t seed);
  ConstantId add_constant(const std::string& name, util::BitVector value);

  /// Full-width connection between two pins (widths must match).
  void connect(PinRef from, PinRef to);
  /// Bit-sliced connection.
  void connect(PinRef from, unsigned from_lo, PinRef to, unsigned to_lo,
               unsigned width);

  // ---- pin helpers ---------------------------------------------------------

  PinRef pin(PortId id) const;
  PinRef reg_d(RegisterId id) const;
  PinRef reg_q(RegisterId id) const;
  PinRef reg_load(RegisterId id) const;
  PinRef mux_in(MuxId id, unsigned data_index) const;
  PinRef mux_select(MuxId id) const;
  PinRef mux_out(MuxId id) const;
  PinRef fu_in(FuId id, unsigned operand) const;
  PinRef fu_out(FuId id) const;
  PinRef const_out(ConstantId id) const;

  /// Width of any pin.
  unsigned pin_width(const PinRef& pin) const;
  /// True for pins that drive values (port-in pins, Q, mux out, FU out,
  /// constants).
  bool is_driver_pin(const PinRef& pin) const;

  // ---- element access ------------------------------------------------------

  const std::vector<Port>& ports() const { return ports_; }
  const std::vector<Register>& registers() const { return registers_; }
  const std::vector<Mux>& muxes() const { return muxes_; }
  const std::vector<FunctionalUnit>& fus() const { return fus_; }
  const std::vector<Constant>& constants() const { return constants_; }
  const std::vector<Connection>& connections() const { return connections_; }

  const Port& port(PortId id) const { return ports_.at(id.index()); }
  const Register& reg(RegisterId id) const { return registers_.at(id.index()); }
  const Mux& mux(MuxId id) const { return muxes_.at(id.index()); }
  const FunctionalUnit& fu(FuId id) const { return fus_.at(id.index()); }
  const Constant& constant(ConstantId id) const {
    return constants_.at(id.index());
  }

  /// All input (output) port ids, in creation order.
  std::vector<PortId> input_ports() const;
  std::vector<PortId> output_ports() const;

  /// Look up a port by name; throws util::Error if absent.
  PortId find_port(const std::string& name) const;
  /// Look up a register by name; throws util::Error if absent.
  RegisterId find_register(const std::string& name) const;

  /// Connections whose `from` is the given pin.
  std::vector<const Connection*> connections_from(const PinRef& pin) const;
  /// Connections whose `to` is the given pin.
  std::vector<const Connection*> connections_to(const PinRef& pin) const;

  /// Total flip-flop count (sum of register widths).
  unsigned flip_flop_count() const;

  /// Checks structural sanity: widths in range, no sink bit driven twice,
  /// select widths large enough for the mux fan-in.  Throws util::Error
  /// describing the first violation.
  void validate() const;

 private:
  void check_connection(const Connection& conn) const;

  /// (fu index, input width) pairs for kRandomLogic units, whose input
  /// width is independent of their output width.
  std::vector<std::pair<std::uint32_t, unsigned>> random_logic_in_width_;

  std::string name_;
  std::vector<Port> ports_;
  std::vector<Register> registers_;
  std::vector<Mux> muxes_;
  std::vector<FunctionalUnit> fus_;
  std::vector<Constant> constants_;
  std::vector<Connection> connections_;
};

/// Human-readable pin description ("REG1.D[3:0]" style), for diagnostics.
std::string describe_pin(const Netlist& netlist, const PinRef& pin);

}  // namespace socet::rtl
