// Cycle-accurate RTL interpreter.
//
// Evaluates a netlist directly at the register-transfer level: muxes
// select, functional units compute arithmetic on BitVectors, registers
// capture on the clock edge.  Its purpose is cross-validation — the gate
// level produced by synth::elaborate must behave identically cycle by
// cycle (the property suite checks this on randomized circuits), and
// examples can exercise cores functionally without elaborating them.
//
// kRandomLogic units cannot be evaluated at RT level (their function is
// defined by the elaborator); driving anything through one throws.  Use
// the gate level when clouds are involved.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "socet/rtl/netlist.hpp"
#include "socet/util/bitvector.hpp"

namespace socet::rtl {

class Interpreter {
 public:
  explicit Interpreter(const Netlist& netlist);

  /// Zero every register.
  void reset();

  /// Drive an input port for subsequent cycles.
  void set_input(const std::string& port, util::BitVector value);
  void set_input(PortId port, util::BitVector value);

  /// Advance one clock: settle combinational values, capture registers,
  /// then re-settle so output() reflects the post-edge state.
  void step();

  /// Value at an output port after the last step().
  util::BitVector output(const std::string& port) const;
  util::BitVector output(PortId port) const;

  /// Register contents after the last step().
  util::BitVector register_value(RegisterId reg) const;
  void set_register(RegisterId reg, util::BitVector value);

 private:
  /// Value currently on a driver pin (combinational evaluation with
  /// memoization per settle pass).
  util::BitVector driver_value(const PinRef& pin);
  /// Value observed by a sink pin, assembled from its connections
  /// (undriven bits read 0).
  util::BitVector sink_value(const PinRef& pin, unsigned width);
  util::BitVector eval_fu(FuId id);
  void settle();

  const Netlist& netlist_;
  std::vector<util::BitVector> registers_;
  std::vector<util::BitVector> inputs_;
  std::map<PinRef, std::vector<const Connection*>> sinks_;
  std::map<PinRef, util::BitVector> memo_;
  std::vector<char> on_stack_;  ///< combinational loop guard (per mux/fu)
};

}  // namespace socet::rtl
