// Hierarchical instantiation: copy one netlist (a core) into another (the
// flattened chip), renaming components with a prefix and replacing each
// core port with a width-preserving buffer proxy.
//
// After instantiation the caller wires the chip by connecting into the
// input proxies (`fu_in(proxy, 0)`) and from the output proxies
// (`fu_out(proxy)`).  Proxies elaborate to pure wiring, so flattening does
// not distort area or fault counts.
#pragma once

#include <map>
#include <string>

#include "socet/rtl/netlist.hpp"

namespace socet::rtl {

struct Instance {
  /// Core port name -> proxy buffer FU in the destination netlist.
  std::map<std::string, FuId> port_proxies;
};

/// Copies every component and connection of `core` into `chip`, prefixing
/// names with `prefix` + ".".  Core ports become kBuf proxy FUs (also
/// prefixed).  Returns the proxy map.
Instance instantiate(Netlist& chip, const Netlist& core,
                     const std::string& prefix);

}  // namespace socet::rtl
