// Register-transfer path enumeration.
//
// A *transfer path* is a combinational route from one storage/interface
// node (input port, register) to the next (register, output port), passing
// only through multiplexers.  These are exactly the edges of the paper's
// register connectivity graph (RCG): data can move along a transfer path in
// a single clock cycle by setting the mux selects recorded on the path.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "socet/rtl/netlist.hpp"

namespace socet::rtl {

enum class NodeKind : std::uint8_t { kInputPort, kOutputPort, kRegister };

/// A node of the RCG: an input port, an output port, or a register.
struct NodeRef {
  NodeKind kind = NodeKind::kRegister;
  std::uint32_t index = 0;  ///< into Netlist::ports() / registers()

  friend bool operator==(const NodeRef&, const NodeRef&) = default;
  friend auto operator<=>(const NodeRef&, const NodeRef&) = default;
};

/// One multiplexer traversed by a transfer path, and which data input the
/// path enters through (the select value testing logic must force).
struct MuxHop {
  MuxId mux;
  unsigned data_index = 0;
};

struct TransferPath {
  NodeRef src;
  NodeRef dst;
  unsigned src_lo = 0;  ///< first source bit carried
  unsigned dst_lo = 0;  ///< first destination bit written
  unsigned width = 1;
  std::vector<MuxHop> hops;  ///< empty ⇒ direct wire

  [[nodiscard]] bool direct() const { return hops.empty(); }
};

/// Enumerate every transfer path in the netlist.  Paths are maximal with
/// respect to slicing: two adjacent bit ranges flowing through the same
/// mux chain appear as separate paths only if the connections slice them.
std::vector<TransferPath> enumerate_transfer_paths(const Netlist& netlist);

/// Width of a node (port width or register width).
unsigned node_width(const Netlist& netlist, const NodeRef& node);

/// Display name of a node, e.g. "Data" or "IR".
std::string node_name(const Netlist& netlist, const NodeRef& node);

/// Node covering an input/output port.
NodeRef port_node(const Netlist& netlist, PortId id);
/// Node covering a register.
NodeRef register_node(RegisterId id);

}  // namespace socet::rtl
