// Text serialization of RTL netlists.
//
// A line-oriented, diff-friendly dump of everything the netlist holds:
// ports, registers, muxes, functional units (including seeded control
// clouds), constants and bit-sliced connections.  Round-trips exactly —
// the parsed netlist is structurally identical, elaborates to the same
// gates, and simulates identically — so reconstructed or user-authored
// cores can live in version control as data.
//
// Format sketch ('#' comments allowed):
//
//   socet-rtl v1
//   netlist CPU
//   input Data data 8
//   output AddrLo data 8
//   register IR 8 load
//   mux M 8 2
//   fu INCPC increment 8 1
//   randomlogic CTRL 14 24 2600 201
//   constant KTHR 8 01000000
//   connect port:Data 0 -> mux:M.in0 0 8
//   connect reg:IR.q 4 -> mux:m_sr.in0 0 4
//   end
#pragma once

#include <string>

#include "socet/rtl/netlist.hpp"

namespace socet::rtl {

std::string serialize_netlist(const Netlist& netlist);

/// Throws util::Error with a line number on malformed input.
Netlist parse_netlist(const std::string& text);

}  // namespace socet::rtl
