#include "socet/rtl/netlist.hpp"

#include <algorithm>
#include <map>

namespace socet::rtl {

namespace {

CompRef make_ref(CompKind kind, std::size_t index) {
  return CompRef{kind, static_cast<std::uint32_t>(index)};
}

}  // namespace

PortId Netlist::add_input(const std::string& name, unsigned width,
                          PortKind kind) {
  util::require(width > 0, "add_input: width must be positive");
  ports_.push_back(Port{name, PortDir::kInput, kind, width});
  return PortId(static_cast<std::uint32_t>(ports_.size() - 1));
}

PortId Netlist::add_output(const std::string& name, unsigned width,
                           PortKind kind) {
  util::require(width > 0, "add_output: width must be positive");
  ports_.push_back(Port{name, PortDir::kOutput, kind, width});
  return PortId(static_cast<std::uint32_t>(ports_.size() - 1));
}

RegisterId Netlist::add_register(const std::string& name, unsigned width,
                                 bool has_load_enable) {
  util::require(width > 0, "add_register: width must be positive");
  registers_.push_back(Register{name, width, has_load_enable});
  return RegisterId(static_cast<std::uint32_t>(registers_.size() - 1));
}

MuxId Netlist::add_mux(const std::string& name, unsigned width,
                       unsigned num_inputs) {
  util::require(width > 0, "add_mux: width must be positive");
  util::require(num_inputs >= 2, "add_mux: need at least two data inputs");
  muxes_.push_back(Mux{name, width, num_inputs});
  return MuxId(static_cast<std::uint32_t>(muxes_.size() - 1));
}

FuId Netlist::add_fu(const std::string& name, FuKind kind, unsigned width,
                     unsigned num_inputs) {
  util::require(width > 0, "add_fu: width must be positive");
  util::require(num_inputs > 0, "add_fu: need at least one input");
  util::require(kind != FuKind::kRandomLogic,
                "add_fu: use add_random_logic for kRandomLogic");
  fus_.push_back(FunctionalUnit{name, kind, width, num_inputs, 0, 0});
  return FuId(static_cast<std::uint32_t>(fus_.size() - 1));
}

FuId Netlist::add_random_logic(const std::string& name, unsigned in_width,
                               unsigned out_width, unsigned gate_hint,
                               std::uint64_t seed) {
  util::require(in_width > 0 && out_width > 0,
                "add_random_logic: widths must be positive");
  // A random-logic cloud has a single flat input operand; callers connect
  // slices of several signals into it.
  fus_.push_back(FunctionalUnit{name, FuKind::kRandomLogic, out_width, 1, seed,
                                gate_hint});
  // Record the input width via a convention: random logic keeps its input
  // width in `gate_hint`'s sibling field through the pin-width logic below.
  fus_.back().num_inputs = 1;
  random_logic_in_width_.push_back(
      {static_cast<std::uint32_t>(fus_.size() - 1), in_width});
  return FuId(static_cast<std::uint32_t>(fus_.size() - 1));
}

ConstantId Netlist::add_constant(const std::string& name,
                                 util::BitVector value) {
  util::require(value.width() > 0, "add_constant: width must be positive");
  constants_.push_back(Constant{name, std::move(value)});
  return ConstantId(static_cast<std::uint32_t>(constants_.size() - 1));
}

void Netlist::connect(PinRef from, PinRef to) {
  const unsigned width = std::min(pin_width(from), pin_width(to));
  util::require(pin_width(from) == pin_width(to),
                "connect: widths differ; use the sliced overload");
  connect(from, 0, to, 0, width);
}

void Netlist::connect(PinRef from, unsigned from_lo, PinRef to, unsigned to_lo,
                      unsigned width) {
  Connection conn{from, from_lo, to, to_lo, width};
  check_connection(conn);
  connections_.push_back(conn);
}

PinRef Netlist::pin(PortId id) const {
  util::require(id.index() < ports_.size(), "pin: bad port id");
  return PinRef{make_ref(CompKind::kPort, id.index()), PinRole::kPort, 0};
}

PinRef Netlist::reg_d(RegisterId id) const {
  util::require(id.index() < registers_.size(), "reg_d: bad register id");
  return PinRef{make_ref(CompKind::kRegister, id.index()), PinRole::kRegD, 0};
}

PinRef Netlist::reg_q(RegisterId id) const {
  util::require(id.index() < registers_.size(), "reg_q: bad register id");
  return PinRef{make_ref(CompKind::kRegister, id.index()), PinRole::kRegQ, 0};
}

PinRef Netlist::reg_load(RegisterId id) const {
  util::require(id.index() < registers_.size(), "reg_load: bad register id");
  util::require(registers_[id.index()].has_load_enable,
                "reg_load: register has no load enable");
  return PinRef{make_ref(CompKind::kRegister, id.index()), PinRole::kRegLoad,
                0};
}

PinRef Netlist::mux_in(MuxId id, unsigned data_index) const {
  util::require(id.index() < muxes_.size(), "mux_in: bad mux id");
  util::require(data_index < muxes_[id.index()].num_inputs,
                "mux_in: data index out of range");
  return PinRef{make_ref(CompKind::kMux, id.index()), PinRole::kMuxData,
                data_index};
}

PinRef Netlist::mux_select(MuxId id) const {
  util::require(id.index() < muxes_.size(), "mux_select: bad mux id");
  return PinRef{make_ref(CompKind::kMux, id.index()), PinRole::kMuxSelect, 0};
}

PinRef Netlist::mux_out(MuxId id) const {
  util::require(id.index() < muxes_.size(), "mux_out: bad mux id");
  return PinRef{make_ref(CompKind::kMux, id.index()), PinRole::kMuxOut, 0};
}

PinRef Netlist::fu_in(FuId id, unsigned operand) const {
  util::require(id.index() < fus_.size(), "fu_in: bad fu id");
  util::require(operand < fus_[id.index()].num_inputs,
                "fu_in: operand index out of range");
  return PinRef{make_ref(CompKind::kFu, id.index()), PinRole::kFuIn, operand};
}

PinRef Netlist::fu_out(FuId id) const {
  util::require(id.index() < fus_.size(), "fu_out: bad fu id");
  return PinRef{make_ref(CompKind::kFu, id.index()), PinRole::kFuOut, 0};
}

PinRef Netlist::const_out(ConstantId id) const {
  util::require(id.index() < constants_.size(), "const_out: bad constant id");
  return PinRef{make_ref(CompKind::kConstant, id.index()), PinRole::kConstOut,
                0};
}

unsigned Netlist::pin_width(const PinRef& pin) const {
  switch (pin.role) {
    case PinRole::kPort:
      return ports_.at(pin.comp.index).width;
    case PinRole::kRegD:
    case PinRole::kRegQ:
      return registers_.at(pin.comp.index).width;
    case PinRole::kRegLoad:
      return 1;
    case PinRole::kMuxData:
    case PinRole::kMuxOut:
      return muxes_.at(pin.comp.index).width;
    case PinRole::kMuxSelect: {
      // Narrowest select that can address all data inputs.
      unsigned inputs = muxes_.at(pin.comp.index).num_inputs;
      unsigned bits = 0;
      while ((1u << bits) < inputs) ++bits;
      return std::max(bits, 1u);
    }
    case PinRole::kFuIn: {
      const auto& unit = fus_.at(pin.comp.index);
      if (unit.kind == FuKind::kRandomLogic) {
        for (const auto& [fu_index, in_width] : random_logic_in_width_) {
          if (fu_index == pin.comp.index) return in_width;
        }
        util::raise("pin_width: random logic input width missing");
      }
      if (unit.kind == FuKind::kAlu && pin.arg == 2) return 2;  // op select
      return unit.width;
    }
    case PinRole::kFuOut: {
      const auto& unit = fus_.at(pin.comp.index);
      if (unit.kind == FuKind::kEqual || unit.kind == FuKind::kLess) return 1;
      return unit.width;
    }
    case PinRole::kConstOut:
      return static_cast<unsigned>(constants_.at(pin.comp.index).value.width());
  }
  util::raise("pin_width: unknown pin role");
}

bool Netlist::is_driver_pin(const PinRef& pin) const {
  switch (pin.role) {
    case PinRole::kPort:
      return ports_.at(pin.comp.index).dir == PortDir::kInput;
    case PinRole::kRegQ:
    case PinRole::kMuxOut:
    case PinRole::kFuOut:
    case PinRole::kConstOut:
      return true;
    default:
      return false;
  }
}

std::vector<PortId> Netlist::input_ports() const {
  std::vector<PortId> out;
  for (std::size_t i = 0; i < ports_.size(); ++i) {
    if (ports_[i].dir == PortDir::kInput) {
      out.emplace_back(static_cast<std::uint32_t>(i));
    }
  }
  return out;
}

std::vector<PortId> Netlist::output_ports() const {
  std::vector<PortId> out;
  for (std::size_t i = 0; i < ports_.size(); ++i) {
    if (ports_[i].dir == PortDir::kOutput) {
      out.emplace_back(static_cast<std::uint32_t>(i));
    }
  }
  return out;
}

PortId Netlist::find_port(const std::string& name) const {
  for (std::size_t i = 0; i < ports_.size(); ++i) {
    if (ports_[i].name == name) return PortId(static_cast<std::uint32_t>(i));
  }
  util::raise("find_port: no port named '" + name + "' in " + name_);
}

RegisterId Netlist::find_register(const std::string& name) const {
  for (std::size_t i = 0; i < registers_.size(); ++i) {
    if (registers_[i].name == name) {
      return RegisterId(static_cast<std::uint32_t>(i));
    }
  }
  util::raise("find_register: no register named '" + name + "' in " + name_);
}

std::vector<const Connection*> Netlist::connections_from(
    const PinRef& pin) const {
  std::vector<const Connection*> out;
  for (const auto& conn : connections_) {
    if (conn.from == pin) out.push_back(&conn);
  }
  return out;
}

std::vector<const Connection*> Netlist::connections_to(
    const PinRef& pin) const {
  std::vector<const Connection*> out;
  for (const auto& conn : connections_) {
    if (conn.to == pin) out.push_back(&conn);
  }
  return out;
}

unsigned Netlist::flip_flop_count() const {
  unsigned total = 0;
  for (const auto& r : registers_) total += r.width;
  return total;
}

void Netlist::check_connection(const Connection& conn) const {
  util::require(conn.width > 0, "connect: zero-width connection");
  util::require(is_driver_pin(conn.from),
                "connect: 'from' pin is not a driver: " +
                    describe_pin(*this, conn.from));
  util::require(!is_driver_pin(conn.to),
                "connect: 'to' pin is not a sink: " +
                    describe_pin(*this, conn.to));
  util::require(conn.from_lo + conn.width <= pin_width(conn.from),
                "connect: source slice exceeds pin width on " +
                    describe_pin(*this, conn.from));
  util::require(conn.to_lo + conn.width <= pin_width(conn.to),
                "connect: sink slice exceeds pin width on " +
                    describe_pin(*this, conn.to));
}

void Netlist::validate() const {
  // No sink bit may be driven twice: alternative sources must be modeled
  // with explicit multiplexers, matching real RTL.
  std::map<PinRef, std::vector<bool>> driven;
  for (const auto& conn : connections_) {
    check_connection(conn);
    auto& bits = driven[conn.to];
    bits.resize(pin_width(conn.to), false);
    for (unsigned b = conn.to_lo; b < conn.to_lo + conn.width; ++b) {
      util::require(!bits[b], "validate: sink bit driven twice on " +
                                  describe_pin(*this, conn.to));
      bits[b] = true;
    }
  }
}

std::string describe_pin(const Netlist& netlist, const PinRef& pin) {
  auto name = [&]() -> std::string {
    switch (pin.comp.kind) {
      case CompKind::kPort:
        return netlist.ports().at(pin.comp.index).name;
      case CompKind::kRegister:
        return netlist.registers().at(pin.comp.index).name;
      case CompKind::kMux:
        return netlist.muxes().at(pin.comp.index).name;
      case CompKind::kFu:
        return netlist.fus().at(pin.comp.index).name;
      case CompKind::kConstant:
        return netlist.constants().at(pin.comp.index).name;
    }
    return "?";
  }();
  switch (pin.role) {
    case PinRole::kPort:
      return name;
    case PinRole::kRegD:
      return name + ".D";
    case PinRole::kRegQ:
      return name + ".Q";
    case PinRole::kRegLoad:
      return name + ".LOAD";
    case PinRole::kMuxData:
      return name + ".IN" + std::to_string(pin.arg);
    case PinRole::kMuxSelect:
      return name + ".SEL";
    case PinRole::kMuxOut:
      return name + ".OUT";
    case PinRole::kFuIn:
      return name + ".OP" + std::to_string(pin.arg);
    case PinRole::kFuOut:
      return name + ".OUT";
    case PinRole::kConstOut:
      return name;
  }
  return name + ".?";
}

}  // namespace socet::rtl
