// Area / test-application-time trade-off exploration — paper Section 5.2.
//
// The iterative-improvement engine walks the version lattice: each move
// either replaces one core with its next more expensive (lower latency)
// version or inserts a system-level test mux on a critical pin.  Moves are
// ranked by the paper's cost function C = w1 * dTAT + w2 * dA, where dTAT
// comes from the edge-usage latency numbers of the current test solution
// (the "3 x 5 + 0 x 2 + 1 x 2 = 17" arithmetic of Section 5.2).
//
// Two objectives are provided, matching the paper's (i) and (ii):
//   * minimize_tat:  w1 = 1, w2 = 0, stop at the area budget;
//   * minimize_area: w1 = 0, w2 = 1, upgrade as cheaply as possible until
//     the TAT budget is met.
//
// enumerate_design_space crosses every version menu (the 18 design points
// of Figure 10) for exhaustive comparison.
#pragma once

#include <vector>

#include "socet/soc/schedule.hpp"

namespace socet::opt {

struct DesignPoint {
  std::vector<unsigned> selection;  ///< version index per core
  unsigned long long tat = 0;
  unsigned overhead_cells = 0;  ///< chip-level DFT (versions + muxes + ctrl)
  bool met_constraint = true;
  soc::ChipTestPlan plan;
};

struct OptimizeOptions {
  soc::PlanOptions plan;
  /// Use the paper's edge-usage heuristic to rank version upgrades; when
  /// false, every candidate is evaluated by exact re-planning (ablation).
  bool heuristic_ranking = true;
};

/// Paper objective (i): minimize global TAT with chip-level DFT overhead
/// capped at `area_budget_cells`.
DesignPoint minimize_tat(const soc::Soc& soc, unsigned area_budget_cells,
                         const OptimizeOptions& options = {});

/// Paper objective (ii): minimize chip-level DFT overhead subject to
/// TAT <= `tat_budget` cycles.  `met_constraint` is false if even the
/// fastest configuration misses the budget.
DesignPoint minimize_area(const soc::Soc& soc, unsigned long long tat_budget,
                          const OptimizeOptions& options = {});

/// Paper objective (iii): "a desired trade-off between the two".  Walks
/// the version lattice greedily, taking the upgrade with the best
/// weighted gain  w1 * dTAT - w2 * dA  while any gain is positive.
/// w1 emphasizes test time, w2 area; (1, 0) degenerates toward
/// minimize_tat and (0, 1) keeps the minimum-area point.
DesignPoint minimize_weighted(const soc::Soc& soc, double w1, double w2,
                              const OptimizeOptions& options = {});

/// Every version selection in odometer order (the cross product of the
/// cores' version menus) — the job list a parallel design-space sweep
/// fans out over.
std::vector<std::vector<unsigned>> enumerate_selections(const soc::Soc& soc);

/// Every combination of core versions (Figure 10's scatter).
std::vector<DesignPoint> enumerate_design_space(
    const soc::Soc& soc, const OptimizeOptions& options = {});

/// The `socet explore` / `socet sweep` CSV: one row per design point
/// (selection spelled 1-based as `1/2/1`), pareto column from
/// pareto_front.  Points are emitted sorted by (area, TAT) so serial and
/// parallel producers render byte-identical tables.
std::string design_space_csv(std::vector<DesignPoint> points);

/// Non-dominated subset (lower TAT and lower area are both better),
/// sorted by area.
std::vector<DesignPoint> pareto_front(std::vector<DesignPoint> points);

/// The paper's latency-improvement number for upgrading core `core` from
/// its current version to `next_version`, given the edge usage of the
/// current plan.  Exposed for tests and the ablation bench.
long long latency_improvement(const soc::Soc& soc,
                              const soc::ChipTestPlan& plan,
                              std::uint32_t core, unsigned current_version,
                              unsigned next_version);

}  // namespace socet::opt
