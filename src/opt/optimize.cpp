#include "socet/opt/optimize.hpp"

#include <algorithm>
#include <limits>

#include "socet/obs/journal.hpp"
#include "socet/obs/metrics.hpp"
#include "socet/obs/resource.hpp"
#include "socet/obs/trace.hpp"

namespace socet::opt {

namespace {

using soc::ChipTestPlan;
using soc::Soc;

DesignPoint evaluate(const Soc& soc, std::vector<unsigned> selection,
                     const OptimizeOptions& options) {
  DesignPoint point;
  point.plan = soc::plan_chip_test(soc, selection, options.plan);
  point.selection = std::move(selection);
  point.tat = point.plan.total_tat;
  point.overhead_cells = point.plan.total_overhead_cells();
  return point;
}

/// "2/1/3" — the 1-based per-core version choice (CLI/CSV convention).
std::string selection_str(const std::vector<unsigned>& selection) {
  std::string s;
  for (unsigned v : selection) {
    s += (s.empty() ? "" : "/") + std::to_string(v + 1);
  }
  return s;
}

}  // namespace

long long latency_improvement(const Soc& soc, const ChipTestPlan& plan,
                              std::uint32_t core, unsigned current_version,
                              unsigned next_version) {
  const auto& cur = soc.core(core).version(current_version);
  const auto& next = soc.core(core).version(next_version);
  long long current_number = 0;
  long long next_number = 0;
  for (const auto& [key, count] : plan.edge_use) {
    const auto& [c, in, out] = key;
    if (c != core) continue;
    const auto cur_latency = cur.latency(in, out);
    const auto next_latency = next.latency(in, out);
    if (cur_latency) {
      current_number += static_cast<long long>(count) * *cur_latency;
    }
    // A pair the next version lacks keeps its current latency (the
    // upgrade never removes transparency, but be defensive).
    const unsigned effective_next =
        next_latency ? *next_latency : cur_latency.value_or(0);
    next_number += static_cast<long long>(count) * effective_next;
  }
  return current_number - next_number;
}

DesignPoint minimize_tat(const Soc& soc, unsigned area_budget_cells,
                         const OptimizeOptions& options) {
  SOCET_SPAN("opt/minimize_tat");
  SOCET_RESOURCE_SCOPE("opt/minimize_tat");
  std::vector<unsigned> selection(soc.cores().size(), 0);
  DesignPoint best = evaluate(soc, selection, options);

  while (true) {
    SOCET_COUNT("opt/iterations");
    // Candidate moves: upgrade one core to its next version.  The
    // heuristic pass ranks by the paper's edge-usage latency numbers; if
    // no candidate shows a heuristic gain (an upgrade whose benefit is a
    // *new* transparency pair rather than a faster existing one), fall
    // back to exact re-planning so the walk doesn't stall.
    long long best_gain = 0;
    std::int32_t best_core = -1;
    DesignPoint best_candidate;
    for (int exact_pass = options.heuristic_ranking ? 0 : 1;
         exact_pass < 2 && best_core < 0; ++exact_pass) {
      for (std::uint32_t c = 0; c < soc.cores().size(); ++c) {
        const unsigned next = best.selection[c] + 1;
        if (next >= soc.core(c).version_count()) continue;
        SOCET_COUNT("opt/moves_proposed");

        const char* pass_name = exact_pass == 0 ? "heuristic" : "exact";
        long long gain;
        DesignPoint candidate;
        if (exact_pass == 0) {
          gain =
              latency_improvement(soc, best.plan, c, best.selection[c], next);
        } else {
          auto trial = best.selection;
          trial[c] = next;
          candidate = evaluate(soc, std::move(trial), options);
          gain = static_cast<long long>(best.tat) -
                 static_cast<long long>(candidate.tat);
        }
        if (gain <= best_gain) {
          SOCET_EVENT("opt/propose", {"objective", "min_tat"},
                      {"pass", pass_name}, {"core", soc.core(c).name()},
                      {"from", soc.core(c).version(best.selection[c]).name},
                      {"to", soc.core(c).version(next).name},
                      {"to_index", next + 1}, {"gain", gain},
                      {"outcome", "rejected"}, {"reason", "gain_not_better"});
          continue;
        }

        // Respect the area budget.
        if (exact_pass == 0) {
          auto trial = best.selection;
          trial[c] = next;
          candidate = evaluate(soc, std::move(trial), options);
        }
        const long long delta_area =
            static_cast<long long>(candidate.overhead_cells) -
            static_cast<long long>(best.overhead_cells);
        if (candidate.overhead_cells > area_budget_cells) {
          SOCET_EVENT("opt/propose", {"objective", "min_tat"},
                      {"pass", pass_name}, {"core", soc.core(c).name()},
                      {"from", soc.core(c).version(best.selection[c]).name},
                      {"to", soc.core(c).version(next).name},
                      {"to_index", next + 1}, {"gain", gain},
                      {"delta_area", delta_area}, {"outcome", "rejected"},
                      {"reason", "over_area_budget"});
          continue;
        }
        SOCET_EVENT("opt/propose", {"objective", "min_tat"},
                    {"pass", pass_name}, {"core", soc.core(c).name()},
                    {"from", soc.core(c).version(best.selection[c]).name},
                    {"to", soc.core(c).version(next).name},
                    {"to_index", next + 1}, {"gain", gain},
                    {"delta_area", delta_area}, {"outcome", "best"});
        best_gain = gain;
        best_core = static_cast<std::int32_t>(c);
        best_candidate = std::move(candidate);
      }
    }
    if (best_core < 0) break;
    const std::uint32_t moved = static_cast<std::uint32_t>(best_core);
    // Only accept moves that actually help the exact objective.
    if (best_candidate.tat >= best.tat) {
      SOCET_EVENT(
          "opt/reject_final", {"objective", "min_tat"},
          {"core", soc.core(moved).name()},
          {"from", soc.core(moved).version(best.selection[moved]).name},
          {"to", soc.core(moved).version(best.selection[moved] + 1).name},
          {"to_index", best.selection[moved] + 2},
          {"reason", "no_exact_tat_gain"});
      break;
    }
    SOCET_COUNT("opt/moves_accepted");
    SOCET_HISTOGRAM("opt/accept_delta_tat", best.tat - best_candidate.tat);
    SOCET_HISTOGRAM("opt/accept_delta_area",
                    best_candidate.overhead_cells - best.overhead_cells);
    SOCET_EVENT(
        "opt/accept", {"objective", "min_tat"}, {"core", soc.core(moved).name()},
        {"from", soc.core(moved).version(best.selection[moved]).name},
        {"to", soc.core(moved).version(best.selection[moved] + 1).name},
        {"delta_tat", static_cast<long long>(best.tat) -
                          static_cast<long long>(best_candidate.tat)},
        {"delta_area", static_cast<long long>(best_candidate.overhead_cells) -
                           static_cast<long long>(best.overhead_cells)},
        {"tat", best_candidate.tat}, {"area", best_candidate.overhead_cells});
    best = std::move(best_candidate);
  }
  best.met_constraint = best.overhead_cells <= area_budget_cells;
  SOCET_EVENT("opt/result", {"objective", "min_tat"},
              {"selection", selection_str(best.selection)}, {"tat", best.tat},
              {"area", best.overhead_cells}, {"met", best.met_constraint});
  return best;
}

DesignPoint minimize_area(const Soc& soc, unsigned long long tat_budget,
                          const OptimizeOptions& options) {
  SOCET_SPAN("opt/minimize_area");
  SOCET_RESOURCE_SCOPE("opt/minimize_area");
  std::vector<unsigned> selection(soc.cores().size(), 0);
  DesignPoint best = evaluate(soc, selection, options);

  while (best.tat > tat_budget) {
    SOCET_COUNT("opt/iterations");
    // Cheapest upgrade with a non-zero latency improvement (w1=0, w2=1).
    // As in minimize_tat, an exact pass rescues the walk when the
    // edge-usage heuristic sees no gain anywhere.
    long long best_cost = std::numeric_limits<long long>::max();
    DesignPoint best_candidate;
    std::uint32_t moved = 0;
    bool found = false;
    for (int exact_pass = options.heuristic_ranking ? 0 : 1;
         exact_pass < 2 && !found; ++exact_pass) {
      for (std::uint32_t c = 0; c < soc.cores().size(); ++c) {
        const unsigned next = best.selection[c] + 1;
        if (next >= soc.core(c).version_count()) continue;
        SOCET_COUNT("opt/moves_proposed");
        const char* pass_name = exact_pass == 0 ? "heuristic" : "exact";
        if (exact_pass == 0) {
          const long long gain = latency_improvement(
              soc, best.plan, c, best.selection[c], next);
          if (gain <= 0) {
            SOCET_EVENT("opt/propose", {"objective", "min_area"},
                        {"pass", pass_name}, {"core", soc.core(c).name()},
                        {"from", soc.core(c).version(best.selection[c]).name},
                        {"to", soc.core(c).version(next).name},
                        {"to_index", next + 1}, {"gain", gain},
                        {"outcome", "rejected"},
                        {"reason", "no_heuristic_gain"});
            continue;
          }
        }
        const long long delta_area =
            static_cast<long long>(soc.core(c).version(next).extra_cells) -
            static_cast<long long>(
                soc.core(c).version(best.selection[c]).extra_cells);
        if (delta_area >= best_cost) {
          SOCET_EVENT("opt/propose", {"objective", "min_area"},
                      {"pass", pass_name}, {"core", soc.core(c).name()},
                      {"from", soc.core(c).version(best.selection[c]).name},
                      {"to", soc.core(c).version(next).name},
                      {"to_index", next + 1}, {"delta_area", delta_area},
                      {"outcome", "rejected"},
                      {"reason", "costlier_than_best"});
          continue;
        }
        auto trial = best.selection;
        trial[c] = next;
        DesignPoint candidate = evaluate(soc, std::move(trial), options);
        if (candidate.tat >= best.tat) {  // no real progress
          SOCET_EVENT("opt/propose", {"objective", "min_area"},
                      {"pass", pass_name}, {"core", soc.core(c).name()},
                      {"from", soc.core(c).version(best.selection[c]).name},
                      {"to", soc.core(c).version(next).name},
                      {"to_index", next + 1}, {"delta_area", delta_area},
                      {"outcome", "rejected"}, {"reason", "no_tat_progress"});
          continue;
        }
        SOCET_EVENT("opt/propose", {"objective", "min_area"},
                    {"pass", pass_name}, {"core", soc.core(c).name()},
                    {"from", soc.core(c).version(best.selection[c]).name},
                    {"to", soc.core(c).version(next).name},
                    {"to_index", next + 1}, {"delta_area", delta_area},
                    {"outcome", "best"});
        best_cost = delta_area;
        best_candidate = std::move(candidate);
        moved = c;
        found = true;
      }
    }
    if (!found) break;
    SOCET_COUNT("opt/moves_accepted");
    SOCET_HISTOGRAM("opt/accept_delta_tat", best.tat - best_candidate.tat);
    SOCET_HISTOGRAM("opt/accept_delta_area",
                    best_candidate.overhead_cells - best.overhead_cells);
    SOCET_EVENT(
        "opt/accept", {"objective", "min_area"},
        {"core", soc.core(moved).name()},
        {"from", soc.core(moved).version(best.selection[moved]).name},
        {"to", soc.core(moved).version(best.selection[moved] + 1).name},
        {"delta_tat", static_cast<long long>(best.tat) -
                          static_cast<long long>(best_candidate.tat)},
        {"delta_area", static_cast<long long>(best_candidate.overhead_cells) -
                           static_cast<long long>(best.overhead_cells)},
        {"tat", best_candidate.tat}, {"area", best_candidate.overhead_cells});
    best = std::move(best_candidate);
  }
  best.met_constraint = best.tat <= tat_budget;
  SOCET_EVENT("opt/result", {"objective", "min_area"},
              {"selection", selection_str(best.selection)}, {"tat", best.tat},
              {"area", best.overhead_cells}, {"met", best.met_constraint});
  return best;
}

DesignPoint minimize_weighted(const Soc& soc, double w1, double w2,
                              const OptimizeOptions& options) {
  SOCET_SPAN("opt/minimize_weighted");
  SOCET_RESOURCE_SCOPE("opt/minimize_weighted");
  util::require(w1 >= 0 && w2 >= 0 && (w1 > 0 || w2 > 0),
                "minimize_weighted: weights must be non-negative, not both 0");
  std::vector<unsigned> selection(soc.cores().size(), 0);
  DesignPoint best = evaluate(soc, selection, options);

  while (true) {
    SOCET_COUNT("opt/iterations");
    double best_gain = 0.0;
    DesignPoint best_candidate;
    std::uint32_t moved = 0;
    bool found = false;
    for (std::uint32_t c = 0; c < soc.cores().size(); ++c) {
      const unsigned next = best.selection[c] + 1;
      if (next >= soc.core(c).version_count()) continue;
      SOCET_COUNT("opt/moves_proposed");
      auto trial = best.selection;
      trial[c] = next;
      DesignPoint candidate = evaluate(soc, std::move(trial), options);
      const double gain =
          w1 * (static_cast<double>(best.tat) -
                static_cast<double>(candidate.tat)) -
          w2 * (static_cast<double>(candidate.overhead_cells) -
                static_cast<double>(best.overhead_cells));
      if (gain > best_gain) {
        SOCET_EVENT("opt/propose", {"objective", "weighted"},
                    {"pass", "exact"}, {"core", soc.core(c).name()},
                    {"from", soc.core(c).version(best.selection[c]).name},
                    {"to", soc.core(c).version(next).name},
                    {"to_index", next + 1}, {"gain", gain},
                    {"outcome", "best"});
        best_gain = gain;
        best_candidate = std::move(candidate);
        moved = c;
        found = true;
      } else {
        SOCET_EVENT("opt/propose", {"objective", "weighted"},
                    {"pass", "exact"}, {"core", soc.core(c).name()},
                    {"from", soc.core(c).version(best.selection[c]).name},
                    {"to", soc.core(c).version(next).name},
                    {"to_index", next + 1}, {"gain", gain},
                    {"outcome", "rejected"}, {"reason", "gain_not_better"});
      }
    }
    if (!found) break;
    SOCET_COUNT("opt/moves_accepted");
    if (best_candidate.tat <= best.tat) {
      SOCET_HISTOGRAM("opt/accept_delta_tat", best.tat - best_candidate.tat);
    }
    SOCET_HISTOGRAM("opt/accept_delta_area",
                    best_candidate.overhead_cells - best.overhead_cells);
    SOCET_EVENT(
        "opt/accept", {"objective", "weighted"},
        {"core", soc.core(moved).name()},
        {"from", soc.core(moved).version(best.selection[moved]).name},
        {"to", soc.core(moved).version(best.selection[moved] + 1).name},
        {"delta_tat", static_cast<long long>(best.tat) -
                          static_cast<long long>(best_candidate.tat)},
        {"delta_area", static_cast<long long>(best_candidate.overhead_cells) -
                           static_cast<long long>(best.overhead_cells)},
        {"tat", best_candidate.tat}, {"area", best_candidate.overhead_cells});
    best = std::move(best_candidate);
  }
  SOCET_EVENT("opt/result", {"objective", "weighted"},
              {"selection", selection_str(best.selection)}, {"tat", best.tat},
              {"area", best.overhead_cells});
  return best;
}

std::vector<std::vector<unsigned>> enumerate_selections(const Soc& soc) {
  std::vector<std::vector<unsigned>> selections;
  std::vector<unsigned> selection(soc.cores().size(), 0);
  while (true) {
    selections.push_back(selection);
    // Odometer increment over the version menus.
    std::size_t c = 0;
    while (c < selection.size()) {
      if (++selection[c] < soc.core(static_cast<std::uint32_t>(c))
                               .version_count()) {
        break;
      }
      selection[c] = 0;
      ++c;
    }
    if (c == selection.size()) break;
  }
  return selections;
}

std::vector<DesignPoint> enumerate_design_space(const Soc& soc,
                                                const OptimizeOptions& options) {
  SOCET_SPAN("opt/enumerate_design_space");
  SOCET_RESOURCE_SCOPE("opt/enumerate_design_space");
  std::vector<DesignPoint> points;
  for (auto& selection : enumerate_selections(soc)) {
    points.push_back(evaluate(soc, std::move(selection), options));
  }
  std::sort(points.begin(), points.end(),
            [](const DesignPoint& a, const DesignPoint& b) {
              if (a.overhead_cells != b.overhead_cells) {
                return a.overhead_cells < b.overhead_cells;
              }
              return a.tat < b.tat;
            });
  return points;
}

std::vector<DesignPoint> pareto_front(std::vector<DesignPoint> points) {
  std::sort(points.begin(), points.end(),
            [](const DesignPoint& a, const DesignPoint& b) {
              if (a.overhead_cells != b.overhead_cells) {
                return a.overhead_cells < b.overhead_cells;
              }
              return a.tat < b.tat;
            });
  std::vector<DesignPoint> front;
  unsigned long long best_tat = std::numeric_limits<unsigned long long>::max();
  for (auto& point : points) {
    if (point.tat < best_tat) {
      best_tat = point.tat;
      front.push_back(std::move(point));
    }
  }
  return front;
}

std::string design_space_csv(std::vector<DesignPoint> points) {
  std::sort(points.begin(), points.end(),
            [](const DesignPoint& a, const DesignPoint& b) {
              if (a.overhead_cells != b.overhead_cells) {
                return a.overhead_cells < b.overhead_cells;
              }
              if (a.tat != b.tat) return a.tat < b.tat;
              return a.selection < b.selection;
            });
  auto front = pareto_front(points);
  std::string csv = "selection,area_cells,tat_cycles,pareto\n";
  for (const auto& point : points) {
    bool pareto = false;
    for (const auto& f : front) pareto |= f.selection == point.selection;
    std::string sel;
    for (unsigned v : point.selection) {
      sel += (sel.empty() ? "" : "/") + std::to_string(v + 1);
    }
    csv += sel + "," + std::to_string(point.overhead_cells) + "," +
           std::to_string(point.tat) + "," + (pareto ? "1" : "0") + "\n";
  }
  return csv;
}

}  // namespace socet::opt
