// The serve wire protocol (docs/FORMATS.md §6).
//
// Both directions carry length-prefixed frames over a stream socket:
// a 4-byte big-endian payload length followed by that many bytes of
// UTF-8 text, no trailing newline.  A request payload is either one
// FORMATS.md §4 job line *verbatim* (the same line `socet batch`
// reads from a file) or a control verb (`stats`, `health`).  A
// response payload starts with a status token:
//
//   ok <verb> <payload>      job finished (the record body `socet
//                            batch` prints after "job <n> ")
//   error <message>          job parsed or executed with an error
//   busy <why>               admission-control reject; nothing ran
//   ok stats <k=v ...>       control responses
//   ok health serving|draining
//
// Responses are delivered in request order per connection, which is
// what lets a client replay a job file and print records byte-identical
// to one-shot `socet batch` output.  Frames above kMaxFrameBytes are a
// protocol error: the stream cannot be resynchronized, so the server
// answers `error ...` and closes that connection (others are
// unaffected).
//
// This header also carries the small blocking socket helpers the
// client and tests share; the server uses the incremental FrameReader
// on non-blocking sockets.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace socet::service {

/// Hard upper bound on one frame's payload.  A job line is tens of
/// bytes; anything near this is garbage or an attack.
inline constexpr std::size_t kMaxFrameBytes = 1u << 20;
inline constexpr std::size_t kFrameHeaderBytes = 4;

/// Top bit of the length word: the frame carries a correlation id.
/// Flagged layout (FORMATS.md §6): the masked word counts
/// `1 + corr_len + payload_len` bytes, followed by [1B corr_len]
/// [corr bytes][payload].  Plain payloads never exceed kMaxFrameBytes
/// (1 MiB), so the bit is unambiguous; a peer that predates the flag
/// sees an oversized frame and drops the connection, never a corrupted
/// payload.
inline constexpr std::uint32_t kFrameCorrFlag = 0x80000000u;
inline constexpr std::size_t kMaxCorrBytes = 255;

/// Second header bit: the frame carries a distributed-trace context.
/// The flagged body appends, *after* the corr section when both flags
/// are set, a fixed 16-byte block: 8-byte BE trace id + 8-byte BE
/// parent span id (FORMATS.md §6).  Daemon workers adopt the context
/// so their spans join the client's trace; responses never carry it.
/// A flagged body shorter than its extensions is unrecoverable — same
/// latch as an oversized frame.
inline constexpr std::uint32_t kFrameTraceFlag = 0x40000000u;
inline constexpr std::size_t kFrameTraceBytes = 16;

/// The propagated context: which trace this request belongs to and
/// which client-side span submitted it (0 = none).
struct FrameTrace {
  std::uint64_t trace_id = 0;
  std::uint64_t parent_span = 0;
};

/// Render `payload` as one wire frame (header + bytes).  A non-empty
/// `corr` rides in the flagged header extension so the server can open
/// its decision journal under the client's correlation id; a non-null
/// `trace` rides behind it so daemon spans join the client's trace.
/// Throws util::Error if the payload exceeds kMaxFrameBytes or the
/// corr id exceeds kMaxCorrBytes.
std::string encode_frame(std::string_view payload, std::string_view corr = {},
                         const FrameTrace* trace = nullptr);

/// Incremental frame decoder for a non-blocking stream: feed() raw
/// bytes as they arrive, pop complete payloads with next() /
/// next_frame().  Once a header announces a payload beyond
/// kMaxFrameBytes (or a malformed corr extension) the stream is
/// unrecoverable: overflowed() latches and next() returns nothing.
class FrameReader {
 public:
  struct Frame {
    std::string payload;
    std::string corr;  ///< empty when the frame carried no corr id
    bool has_trace = false;
    FrameTrace trace;  ///< valid only when has_trace is set
  };

  void feed(const char* data, std::size_t n);
  /// Next complete payload, if one is fully buffered (corr discarded).
  std::optional<std::string> next();
  /// Next complete frame with its correlation id, if fully buffered.
  std::optional<Frame> next_frame();
  /// True once an oversized header was seen; announced() is the raw
  /// 32-bit length word exactly as it appeared on the wire.
  [[nodiscard]] bool overflowed() const { return overflowed_; }
  [[nodiscard]] std::uint64_t announced() const { return announced_; }
  /// Bytes buffered but not yet returned (bounded by the server's
  /// backpressure window, not by the protocol).
  [[nodiscard]] std::size_t buffered() const { return buffer_.size() - pos_; }

 private:
  std::string buffer_;
  std::size_t pos_ = 0;
  bool overflowed_ = false;
  std::uint64_t announced_ = 0;
};

// -- blocking helpers (client side, tests) ---------------------------------

/// Write one frame to a blocking socket.  Throws util::Error on error.
void write_frame(int fd, std::string_view payload, std::string_view corr = {},
                 const FrameTrace* trace = nullptr);

/// Read one frame from a blocking socket.  Returns nullopt on clean EOF
/// at a frame boundary; throws util::Error on a mid-frame EOF
/// (truncated), an oversized header, or a socket error.
std::optional<std::string> read_frame(int fd);

// -- sockets ---------------------------------------------------------------

struct HostPort {
  std::string host = "127.0.0.1";
  unsigned short port = 0;
};

/// Parse "host:port" (the --connect argument).  Throws util::Error.
HostPort parse_host_port(const std::string& spec);

/// Bind + listen on host:port (port 0 = ephemeral) and return the
/// non-blocking listen fd.  Throws util::Error.
int net_listen(const std::string& host, unsigned short port);

/// Connect a blocking TCP socket (TCP_NODELAY set).  Throws util::Error.
int net_connect(const std::string& host, unsigned short port);

/// The locally bound port of `fd` (resolves ephemeral listens).
unsigned short local_port(int fd);

}  // namespace socet::service
