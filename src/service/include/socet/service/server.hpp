// socet serve — the persistent planning daemon.
//
// One poll()-driven event-loop thread owns every socket: it accepts
// connections, decodes length-prefixed frames (protocol.hpp), applies
// admission control, and flushes responses.  Job execution happens on a
// fixed worker pool behind the same MPMC WorkQueue the batch service
// uses; every worker runs jobs through service::Executor over ONE
// shared PlanCache, so the cache stays warm across requests,
// connections, and clients — the whole point of a daemon versus
// one-shot `socet batch`.
//
// Flow control, per connection:
//  * in-flight window — at most `client_window` unanswered requests are
//    read from a connection; further frames stay in the kernel/decoder
//    buffer until responses drain (backpressure instead of unbounded
//    queueing per client);
//  * write budget — a client that stops reading accumulates at most
//    `max_buffered_bytes` of unsent responses before the server also
//    stops reading from it.
//
// Admission control, global: a job arriving while `max_queue` requests
// are already queued (admitted, not yet executing) is answered with a
// structured `busy` reject immediately — the daemon's queue cannot grow
// without bound no matter how many clients connect.
//
// Responses are written in request order per connection (a FIFO of
// slots per connection; workers may finish out of order).  Control
// verbs (`stats`, `health`) are answered inline by the event loop and
// occupy a slot like any request, so their position in the response
// stream is deterministic too.
//
// Graceful drain (SIGTERM/SIGINT or request_drain()): stop accepting,
// finish every admitted job, answer `busy draining` to new work, flush,
// close, join.  See docs/SERVICE.md "Running as a daemon".
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "socet/service/cache.hpp"

namespace socet::service {

struct ServerOptions {
  std::string host = "127.0.0.1";
  /// 0 = ephemeral; Server::port() reports the bound port.
  unsigned short port = 0;
  /// Request-execution worker threads.
  unsigned threads = 1;
  /// Shared plan cache: entry bound and approximate byte bound
  /// (0 = no byte bound) — see cache.hpp.
  std::size_t cache_capacity = 4096;
  std::size_t cache_bytes = 0;
  /// Admission-control high-water mark on queued (not yet executing)
  /// requests; at or above it, new jobs get a `busy` reject.
  std::size_t max_queue = 1024;
  /// Per-connection unanswered-request window (backpressure).
  std::size_t client_window = 64;
  /// Per-connection unsent-response byte budget; reads pause above it.
  std::size_t max_buffered_bytes = 256 * 1024;
  /// If non-empty, write "<port>\n" here once listening — how scripts
  /// and CI discover an ephemeral port.
  std::string port_file;

  // -- telemetry plane (docs/SERVICE.md "Live daemon telemetry") ----------
  // Everything below is off by default; enabling it never touches the
  // daemon's wire responses or stdout.

  /// Serve GET /metrics (Prometheus text), /healthz, and /readyz over an
  /// embedded HTTP/1.0 listener (httpd.hpp).  Readiness flips to 503
  /// while draining.
  bool metrics_http = false;
  std::string metrics_host = "127.0.0.1";
  unsigned short metrics_port = 0;  ///< 0 = ephemeral
  /// If non-empty, the bound metrics port is written here (CI/scripts).
  std::string metrics_port_file;
  /// JSONL access log: one `serve.access` object per request
  /// (FORMATS.md §7) — empty = off.  Any telemetry flag (this or
  /// metrics_http) turns on metrics collection and the rolling-window
  /// ticker, so the `metrics` protocol verb and `socet top` have data.
  std::string access_log;
  /// Rotate the access log once it reaches this many bytes: the
  /// current file moves to `<path>.1` (replacing any previous rollover)
  /// and a fresh file is started.  0 = never rotate.
  std::size_t access_log_max_bytes = 0;
  /// Retain the newest N journal lines in memory for the `journal`
  /// protocol verb / `socet explain --connect` (0 = off).  Implies the
  /// journal tap, so decision events are rendered while the daemon
  /// runs — same stdout guarantee as every other telemetry flag.
  std::size_t journal_ring = 0;
  /// Rolling-window tick cadence (obs::WindowTicker granularity).
  std::chrono::milliseconds window_interval{10000};

  /// Test hook: runs on the worker thread before each job executes
  /// (admission-control and drain tests park workers here).
  std::function<void(const std::string& line)> before_execute;
};

/// A monotonic snapshot of the daemon's counters; the `stats` protocol
/// verb renders exactly this.
struct ServerStats {
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_open = 0;
  std::uint64_t requests = 0;      ///< job requests admitted
  std::uint64_t responses = 0;     ///< job responses completed
  std::uint64_t errors = 0;        ///< responses with error status
  std::uint64_t busy_rejects = 0;  ///< admission + drain rejects
  std::uint64_t bad_frames = 0;    ///< oversized/unrecoverable frames
  std::uint64_t queue_depth = 0;   ///< admitted, not yet executing
  std::uint64_t queue_depth_hwm = 0;  ///< high-water mark since start
  std::uint64_t inflight = 0;      ///< executing right now
  std::uint64_t tail_dropped = 0;  ///< journal events lost to slow tailers
  unsigned workers = 0;
  bool draining = false;
  CacheStats cache;
  std::size_t cache_entries = 0;
  std::size_t cache_bytes = 0;

  /// The deterministic key=value rendering after "ok stats ".
  [[nodiscard]] std::string text() const;
};

class Server {
 public:
  explicit Server(ServerOptions options);
  /// Drains and joins if still running (request_drain + wait).
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind + listen, spawn the worker pool and the event-loop thread.
  /// Throws util::Error if the address cannot be bound.
  void start();

  /// The bound port (resolves port 0 after start()).
  [[nodiscard]] unsigned short port() const;

  /// The bound telemetry HTTP port (0 unless metrics_http is on).
  [[nodiscard]] unsigned short metrics_port() const;

  /// Thread- and signal-safe-adjacent: ask the event loop to begin a
  /// graceful drain.  Callable from any thread; the actual signal
  /// handler path goes through install_signal_handlers().
  void request_drain();

  /// Block until the drain completes and every thread has joined.
  void wait();

  /// Counter snapshot (valid during and after the run).
  [[nodiscard]] ServerStats stats() const;

  /// Route SIGTERM/SIGINT to this server's drain via an
  /// async-signal-safe self-pipe write.  One server per process.
  void install_signal_handlers();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace socet::service
