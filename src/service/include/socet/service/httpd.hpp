// Minimal embedded HTTP/1.0 listener for the daemon's telemetry plane.
//
// One dedicated thread polls a non-blocking listen socket plus a
// self-pipe, accepts one connection at a time, reads a single request,
// answers it from the registered handler, and closes — exactly what a
// Prometheus scraper or `curl` does.  This is deliberately not a web
// server: no keep-alive, no chunking, no TLS, request line + headers
// capped at 8 KiB, per-connection read/write timeouts so a stuck peer
// cannot wedge the thread.  Bind it to loopback (the default) unless
// the network is trusted.
//
// `socet serve --metrics-port` wires GET /metrics (Prometheus text from
// obs::prometheus_text), /healthz (liveness), and /readyz (readiness —
// flips to 503 while draining) onto this; see docs/SERVICE.md.
#pragma once

#include <functional>
#include <string>
#include <thread>

namespace socet::service {

/// One parsed request -> response body + status.  Runs on the listener
/// thread, so keep handlers fast and lock-light.
struct HttpResponse {
  int status = 200;             ///< 200, 404, 503, ...
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};
using HttpHandler =
    std::function<HttpResponse(const std::string& method,
                               const std::string& path)>;

struct HttpdOptions {
  std::string host = "127.0.0.1";
  unsigned short port = 0;  ///< 0 = ephemeral (read back via port())
  std::string port_file;    ///< when set, the bound port is written here
};

class Httpd {
 public:
  Httpd() = default;
  ~Httpd();
  Httpd(const Httpd&) = delete;
  Httpd& operator=(const Httpd&) = delete;

  /// Bind, listen, write the port file, and start the listener thread.
  /// Throws util::Error if the address is unusable.
  void start(const HttpdOptions& options, HttpHandler handler);
  /// Idempotent; wakes the thread, joins it, closes the socket.
  void stop();
  [[nodiscard]] bool running() const { return thread_.joinable(); }
  /// The bound port (resolves an ephemeral bind; 0 when not running).
  [[nodiscard]] unsigned short port() const { return port_; }

 private:
  void loop();

  std::thread thread_;
  HttpHandler handler_;
  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};
  unsigned short port_ = 0;
};

}  // namespace socet::service
