// Blocking protocol client for socet serve (docs/FORMATS.md §6).
//
// Client::run_lines replays a FORMATS.md §4 job file against a daemon
// and renders records byte-identical to one-shot `socet batch`: it
// applies the same comment/blank-line filter as
// PlanningService::run_lines, numbers the surviving lines 1..N, and
// prefixes each response payload with "job <n> ".  Requests are
// pipelined up to a window of unanswered frames (responses arrive in
// request order, so matching is positional); the default window is
// deliberately smaller than the server's per-connection window so the
// client never deadlocks writing while the server waits for it to read.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "socet/obs/tracemerge.hpp"

namespace socet::service {

struct ClientOptions {
  std::string host = "127.0.0.1";
  unsigned short port = 0;
  /// Unanswered requests in flight; must stay below the server's
  /// per-connection window (default 64) or both sides block on writes.
  std::size_t window = 16;
  /// Distributed tracing (`batch --connect --trace`): run_lines opens a
  /// clock handshake, wraps every job in a client submit span,
  /// propagates the trace context on each frame (kFrameTraceFlag), and
  /// collects the daemon's spans afterwards.  Never changes records —
  /// the stdout byte-identity guarantee holds with this on.
  bool trace = false;
  /// Clock-handshake probes (min-RTT midpoint estimate).
  std::size_t clock_probes = 5;
};

/// The two halves of one cross-process trace, plus the clock offset
/// that aligns them (daemon = client + offset).
struct ClientTrace {
  std::uint64_t trace_id = 0;  ///< 0 = tracing was off
  std::int64_t clock_offset_ns = 0;
  std::vector<obs::SpanRecord> client_spans;  ///< client clock
  std::vector<obs::SpanRecord> daemon_spans;  ///< daemon clock

  /// The merged Chrome trace-event document (obs::merged_chrome_trace).
  [[nodiscard]] std::string chrome_trace() const;
};

struct ClientReport {
  /// "job <n> <response payload>" per surviving line, in order.
  std::vector<std::string> records;
  std::size_t jobs = 0;    ///< lines sent
  std::size_t errors = 0;  ///< `error ...` responses
  std::size_t busy = 0;    ///< `busy ...` rejects
  /// Filled when ClientOptions::trace was on (trace_id != 0).
  ClientTrace trace;

  /// The records joined with newlines — `socet batch` output, byte for
  /// byte, when the server is not saturated.
  [[nodiscard]] std::string records_text() const;
};

class Client {
 public:
  /// Connects immediately; throws util::Error on failure.
  explicit Client(ClientOptions options);
  ~Client();
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Replay a job file (raw lines, comments included) and collect the
  /// responses.  Throws util::Error if the server closes mid-batch.
  ClientReport run_lines(const std::vector<std::string>& lines);

  /// One control round-trip (`stats`, `health`, `journal`, ...);
  /// returns the raw response payload.
  std::string query(const std::string& verb);

 private:
  /// A few `clock` probes → min-RTT midpoint offset estimate.
  std::int64_t clock_handshake();
  /// Fetch (and release) the daemon's spans for `trace_id`.
  std::vector<obs::SpanRecord> collect_spans(std::uint64_t trace_id);

  ClientOptions options_;
  int fd_ = -1;
};

}  // namespace socet::service
