// The service's work queue is the shared util pool machinery (see
// socet/util/pool.hpp); this header keeps the historical include path
// and namespace alias for service-layer code and tests.
#pragma once

#include "socet/util/pool.hpp"

namespace socet::service {

using util::WorkQueue;

}  // namespace socet::service
