// Bounded-by-nothing MPMC work queue: the hand-off between the batch
// front-end (which enqueues every job up front) and the worker pool.
// Standard mutex + condition-variable design; `close()` wakes every
// blocked consumer once the producer is done so workers drain the tail
// and exit.
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace socet::service {

template <typename T>
class WorkQueue {
 public:
  /// Enqueue one item.  Items pushed after close() are rejected.
  bool push(T item) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_) return false;
      items_.push_back(std::move(item));
    }
    ready_.notify_one();
    return true;
  }

  /// Block until an item is available or the queue is closed and drained;
  /// nullopt means "no more work, ever".
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    ready_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// No further pushes; blocked and future pops drain the queue then
  /// return nullopt.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    ready_.notify_all();
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable ready_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace socet::service
