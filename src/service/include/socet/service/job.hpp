// The planning-service job model.
//
// A Job is one planning request against a named system, covering the
// CLI's computational verbs: `plan`, `optimize`, `explore`, `parallel`,
// and `program`.  Jobs travel as single text lines (see docs/FORMATS.md
// §4) so batches can be files or pipes; `canonical_job_line` renders the
// normalized form that doubles as the content-addressed cache key — two
// jobs with the same canonical line are guaranteed to produce the same
// result record.
#pragma once

#include <string>
#include <vector>

namespace socet::service {

enum class Verb { kPlan, kOptimize, kExplore, kParallel, kProgram };

const char* verb_name(Verb verb);

struct Job {
  Verb verb = Verb::kPlan;
  std::string system = "barcode";
  /// Version index per core, 0-based, empty = minimum-area version
  /// everywhere.  May be shorter than the system's core list (the rest
  /// default to version 1); never longer — that is a parse-time error
  /// only the executor can raise, since the parser does not know the
  /// system.
  std::vector<unsigned> selection;
  bool pipelined = false;

  // -- optimize-only parameters ------------------------------------------
  enum class Objective { kNone, kAreaBudget, kTatBudget, kWeighted };
  Objective objective = Objective::kNone;
  unsigned area_budget = 0;
  unsigned long long tat_budget = 0;
  double w1 = 1.0;
  double w2 = 1.0;

  friend bool operator==(const Job&, const Job&) = default;
};

/// Strict 1-based selection spec parser shared by the CLI and the job
/// parser: "1,2,3" -> {0, 1, 2}.  Rejects empty tokens, trailing commas,
/// non-numeric tokens, and 0 (indices are 1-based) with util::Error.
std::vector<unsigned> parse_selection_spec(const std::string& spec);

/// Parse one job line, e.g.
///   plan system=barcode selection=1,2,3 pipelined
///   optimize system=system2 area-budget=100
/// Throws util::Error with a message naming the offending token *and*
/// its 1-based column on malformed input — job lines also arrive over
/// the serve protocol where there is no file/line context, so the
/// reject message is all the client gets.  `#` comments and blank
/// lines are the *caller's* concern (see PlanningService::run_lines).
Job parse_job_line(const std::string& line);

/// The normalized single-line rendering: verb first, then every
/// meaningful option in fixed order.  parse_job_line(canonical_job_line(j))
/// reproduces `j` exactly (fixpoint, tested).
std::string canonical_job_line(const Job& job);

}  // namespace socet::service
