// The concurrent planning service.
//
// A PlanningService owns a fixed worker pool and a shared
// content-addressed plan cache (see cache.hpp).  A batch of jobs is
// enqueued on a work queue (queue.hpp); each worker pops jobs, resolves
// the named system from a thread-local instance table (system
// construction and planning share zero mutable state across threads),
// consults the cache, and writes its result into a pre-sized slot —
// so results always come back in input order and `--threads 8` output
// is byte-identical to `--threads 1`.
//
// Error isolation: a malformed job line or a job that throws
// (unknown system, selection out of range) produces an error *record*
// in its slot; the rest of the batch is unaffected.  The batch-level
// `errors` count is what the CLI turns into its exit code.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "socet/service/cache.hpp"
#include "socet/service/job.hpp"

namespace socet::service {

struct ServiceOptions {
  /// Worker threads.  1 = still through the pool machinery, just serial.
  unsigned threads = 1;
  /// LRU entries; 0 disables memoization.
  std::size_t cache_capacity = 4096;
  /// Approximate cache byte budget; 0 = unbounded (entry count still
  /// applies).  What keeps a long-running `socet serve` from growing
  /// without limit.
  std::size_t cache_bytes = 0;
};

/// One finished job.  `record` is the deterministic line the CLI prints
/// (no timing — timing lives in the counters so output stays
/// byte-stable across runs and thread counts).
struct JobResult {
  std::size_t index = 0;  ///< position in the submitted batch
  bool ok = false;
  std::string record;
  std::uint64_t key = 0;  ///< content hash (0 for parse failures)
  bool cache_hit = false;
  /// Numeric payload for plan/optimize verbs (drives sweep aggregation).
  unsigned long long tat = 0;
  unsigned overhead_cells = 0;
  double queue_us = 0;  ///< enqueue -> worker pickup
  double wall_us = 0;   ///< worker pickup -> done
};

struct BatchReport {
  std::vector<JobResult> results;  ///< input order
  CacheStats cache;                ///< delta accrued by this batch
  unsigned errors = 0;
  double wall_ms = 0;  ///< whole batch, enqueue to join

  /// Service counters rendered with util::Table: jobs, errors, cache
  /// hits/misses, mean/p50/p95/max queue and wall time per job (the
  /// percentiles come from obs::Histogram), batch wall clock.
  [[nodiscard]] std::string summary_table() const;
  /// All result records, one per line — exactly what `socet batch`
  /// prints to stdout.
  [[nodiscard]] std::string records_text() const;
};

/// One worker's execution context: a private system table (each thread
/// materializes the systems its jobs name exactly once; no System is
/// ever shared across threads) over a shared PlanCache.  Both the batch
/// worker pool and the serve daemon's request workers run every job
/// through run_line — one execution path is what makes `socet client`
/// responses byte-identical to one-shot `socet batch` records.
class Executor {
 public:
  explicit Executor(PlanCache& cache);
  ~Executor();
  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  /// Parse and execute one job line.  The returned JobResult's `record`
  /// is the label-free record *body* — `ok <verb> <payload>` or
  /// `error <message>` — callers prepend their own framing
  /// ("job <n> ").  `ordinal` tags the journal events (batch: 1-based
  /// batch index; serve: global request number).  queue_us/wall_us are
  /// left zero; timing belongs to the caller.
  JobResult run_line(const std::string& line, std::uint64_t ordinal);

 private:
  struct Systems;  // thread-local system table (service.cpp)
  PlanCache& cache_;
  std::unique_ptr<Systems> systems_;
};

class PlanningService {
 public:
  explicit PlanningService(ServiceOptions options = {});

  /// Execute a batch on the worker pool; results land in input order.
  BatchReport run(const std::vector<Job>& jobs);

  /// Line front-end: `#` comments and blank lines are skipped (they
  /// produce no result slot); a malformed job line yields an error
  /// record for its position instead of aborting the batch.
  BatchReport run_lines(const std::vector<std::string>& lines);

  [[nodiscard]] const PlanCache& cache() const { return cache_; }
  [[nodiscard]] const ServiceOptions& options() const { return options_; }

 private:
  ServiceOptions options_;
  PlanCache cache_;
};

/// The content-addressed cache key of `job`: FNV-1a over the canonical
/// job line chained with the plan-option fingerprint
/// (soc::plan_options_key).  Exposed for tests.
std::uint64_t job_key(const Job& job);

/// Parallel design-space sweep: fans one `plan` job per version
/// selection of `system` through `service`, then renders
/// opt::design_space_csv — byte-identical to serial `socet explore`.
std::string sweep_csv(const std::string& system, PlanningService& service);

}  // namespace socet::service
