// Content-addressed plan cache.
//
// Results are keyed by the FNV-1a hash of the job's canonical line plus
// the plan-option fingerprint — identical requests hash identically, so
// a repeated `plan` inside a batch, across batches, or inside the
// `sweep` fan-out returns the memoized record instead of re-running the
// CCG scheduler.  Bounded LRU with a single mutex: lookups move the
// entry to the front, insertions evict from the back.  Capacity 0
// disables caching (every lookup is a recorded miss) — the throughput
// bench uses that to isolate worker-pool scaling from memoization.
//
// Two independent bounds govern eviction: an entry count (`capacity`)
// and an approximate byte budget (`max_bytes`, 0 = unbounded).  The
// byte bound is what keeps a long-running daemon (`socet serve`) from
// growing without limit on a payload-heavy workload; bytes are
// approximated as payload size plus a fixed per-entry overhead
// (kEntryOverheadBytes covers the LRU node, index slot, and Entry
// scalars).
#pragma once

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>

namespace socet::service {

inline constexpr std::uint64_t kFnvOffsetBasis = 0xcbf29ce484222325ull;
inline constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

/// 64-bit FNV-1a.  `seed` chains hashes: fnv1a(b, fnv1a(a)) hashes the
/// concatenation a+b.
constexpr std::uint64_t fnv1a(std::string_view data,
                              std::uint64_t seed = kFnvOffsetBasis) {
  std::uint64_t hash = seed;
  for (const char c : data) {
    hash ^= static_cast<unsigned char>(c);
    hash *= kFnvPrime;
  }
  return hash;
}

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
  /// Approximate bytes released by evictions (same accounting as
  /// PlanCache::bytes); what a daemon operator watches to size
  /// --cache-bytes.
  std::uint64_t evicted_bytes = 0;

  [[nodiscard]] double hit_rate() const {
    const std::uint64_t lookups = hits + misses;
    return lookups == 0 ? 0.0
                        : static_cast<double>(hits) /
                              static_cast<double>(lookups);
  }
};

/// Thread-safe LRU cache from content hash to finished job result.
class PlanCache {
 public:
  struct Entry {
    /// The deterministic result payload (everything after "ok <verb> ").
    std::string payload;
    /// Numeric results for verbs that have them (sweep aggregation).
    unsigned long long tat = 0;
    unsigned overhead_cells = 0;
  };

  /// Fixed accounting overhead per cached entry on top of the payload
  /// text: LRU list node, hash-map slot, key, and the Entry scalars.
  static constexpr std::size_t kEntryOverheadBytes = 96;

  /// Approximate resident size of one entry.
  static std::size_t entry_bytes(const Entry& entry) {
    return entry.payload.size() + kEntryOverheadBytes;
  }

  /// `capacity` bounds entries (0 disables caching entirely);
  /// `max_bytes` additionally bounds approximate resident bytes
  /// (0 = no byte bound).
  explicit PlanCache(std::size_t capacity, std::size_t max_bytes = 0)
      : capacity_(capacity), max_bytes_(max_bytes) {}

  std::optional<Entry> lookup(std::uint64_t key);
  void insert(std::uint64_t key, Entry entry);

  [[nodiscard]] CacheStats stats() const;
  [[nodiscard]] std::size_t size() const;
  /// Approximate resident bytes across all entries.
  [[nodiscard]] std::size_t bytes() const;
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::size_t max_bytes() const { return max_bytes_; }

 private:
  using LruList = std::list<std::pair<std::uint64_t, Entry>>;

  const std::size_t capacity_;
  const std::size_t max_bytes_;
  mutable std::mutex mutex_;
  LruList lru_;  // front = most recently used
  std::unordered_map<std::uint64_t, LruList::iterator> index_;
  CacheStats stats_;
  std::size_t bytes_ = 0;
};

}  // namespace socet::service
