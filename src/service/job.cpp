#include "socet/service/job.hpp"

#include <cctype>
#include <charconv>
#include <cstdio>

#include "socet/util/error.hpp"

namespace socet::service {

namespace {

/// One whitespace-delimited token of a job line plus the 1-based column
/// it starts at, so parse errors can point at the offending spot —
/// essential once job lines arrive over a socket with no surrounding
/// file/line context.
struct LineToken {
  std::string text;
  std::size_t column = 0;  ///< 1-based offset of the first character
};

std::vector<LineToken> tokenize(const std::string& line) {
  std::vector<LineToken> tokens;
  std::size_t pos = 0;
  while (pos < line.size()) {
    while (pos < line.size() &&
           std::isspace(static_cast<unsigned char>(line[pos]))) {
      ++pos;
    }
    if (pos >= line.size()) break;
    const std::size_t start = pos;
    while (pos < line.size() &&
           !std::isspace(static_cast<unsigned char>(line[pos]))) {
      ++pos;
    }
    tokens.push_back({line.substr(start, pos - start), start + 1});
  }
  return tokens;
}

[[noreturn]] void fail_at(const std::string& message, std::size_t column) {
  util::raise(message + " (column " + std::to_string(column) + ")");
}

/// Run an option-value parser and re-raise its error with the option
/// token's column attached.
template <typename F>
auto at_column(std::size_t column, F&& parse) {
  try {
    return parse();
  } catch (const util::Error& error) {
    fail_at(error.what(), column);
  }
}

unsigned long long parse_count(const std::string& token,
                               const std::string& what) {
  unsigned long long value = 0;
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), value);
  util::require(ec == std::errc() && ptr == token.data() + token.size(),
                "bad " + what + " '" + token + "' (want a number)");
  return value;
}

double parse_weight(const std::string& token, const std::string& what) {
  std::size_t consumed = 0;
  double value = 0;
  try {
    value = std::stod(token, &consumed);
  } catch (const std::exception&) {
    consumed = 0;
  }
  util::require(consumed == token.size() && !token.empty(),
                "bad " + what + " '" + token + "' (want a number)");
  return value;
}

std::string format_weight(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

}  // namespace

const char* verb_name(Verb verb) {
  switch (verb) {
    case Verb::kPlan: return "plan";
    case Verb::kOptimize: return "optimize";
    case Verb::kExplore: return "explore";
    case Verb::kParallel: return "parallel";
    case Verb::kProgram: return "program";
  }
  return "?";
}

std::vector<unsigned> parse_selection_spec(const std::string& spec) {
  util::require(!spec.empty(), "empty selection (want e.g. 1,2,3)");
  std::vector<unsigned> selection;
  std::size_t pos = 0;
  while (true) {
    const auto comma = spec.find(',', pos);
    const std::string token = spec.substr(
        pos, comma == std::string::npos ? std::string::npos : comma - pos);
    util::require(!token.empty(),
                  "bad selection '" + spec + "' (empty token)");
    const unsigned long long value = parse_count(token, "selection token");
    util::require(value >= 1,
                  "bad selection token '" + token +
                      "' (version indices are 1-based)");
    selection.push_back(static_cast<unsigned>(value - 1));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return selection;
}

Job parse_job_line(const std::string& line) {
  const auto tokens = tokenize(line);
  util::require(!tokens.empty(), "empty job line");

  Job job;
  const std::string& verb = tokens.front().text;
  if (verb == "plan") {
    job.verb = Verb::kPlan;
  } else if (verb == "optimize") {
    job.verb = Verb::kOptimize;
  } else if (verb == "explore") {
    job.verb = Verb::kExplore;
  } else if (verb == "parallel") {
    job.verb = Verb::kParallel;
  } else if (verb == "program") {
    job.verb = Verb::kProgram;
  } else {
    fail_at("unknown verb '" + verb +
                "' (want plan|optimize|explore|parallel|program)",
            tokens.front().column);
  }

  const bool takes_selection = job.verb == Verb::kPlan ||
                               job.verb == Verb::kParallel ||
                               job.verb == Verb::kProgram;
  for (std::size_t t = 1; t < tokens.size(); ++t) {
    const std::string& token = tokens[t].text;
    const std::size_t column = tokens[t].column;
    const auto eq = token.find('=');
    const std::string key = token.substr(0, eq);
    const std::string value =
        eq == std::string::npos ? "" : token.substr(eq + 1);
    const bool has_value = eq != std::string::npos;

    if (key == "system" && has_value) {
      if (value.empty()) fail_at("empty system name", column);
      job.system = value;
    } else if (key == "selection" && has_value) {
      if (!takes_selection) {
        fail_at(std::string("'selection' does not apply to verb ") +
                    verb_name(job.verb),
                column);
      }
      job.selection =
          at_column(column, [&] { return parse_selection_spec(value); });
    } else if (key == "pipelined" && !has_value) {
      if (job.verb != Verb::kPlan) {
        fail_at("'pipelined' only applies to verb plan", column);
      }
      job.pipelined = true;
    } else if (key == "area-budget" && has_value) {
      if (job.verb != Verb::kOptimize) {
        fail_at("'area-budget' only applies to verb optimize", column);
      }
      if (job.objective != Job::Objective::kNone) {
        fail_at("optimize takes exactly one objective", column);
      }
      job.objective = Job::Objective::kAreaBudget;
      job.area_budget = static_cast<unsigned>(
          at_column(column, [&] { return parse_count(value, key); }));
    } else if (key == "tat-budget" && has_value) {
      if (job.verb != Verb::kOptimize) {
        fail_at("'tat-budget' only applies to verb optimize", column);
      }
      if (job.objective != Job::Objective::kNone) {
        fail_at("optimize takes exactly one objective", column);
      }
      job.objective = Job::Objective::kTatBudget;
      job.tat_budget =
          at_column(column, [&] { return parse_count(value, key); });
    } else if ((key == "w1" || key == "w2") && has_value) {
      if (job.verb != Verb::kOptimize) {
        fail_at("'" + key + "' only applies to verb optimize", column);
      }
      if (job.objective != Job::Objective::kNone &&
          job.objective != Job::Objective::kWeighted) {
        fail_at("optimize takes exactly one objective", column);
      }
      job.objective = Job::Objective::kWeighted;
      (key == "w1" ? job.w1 : job.w2) =
          at_column(column, [&] { return parse_weight(value, key); });
    } else {
      fail_at("bad job option '" + token + "'", column);
    }
  }

  util::require(job.verb != Verb::kOptimize ||
                    job.objective != Job::Objective::kNone,
                "optimize needs area-budget=N, tat-budget=N, or w1=X/w2=Y");
  return job;
}

std::string canonical_job_line(const Job& job) {
  std::string line = verb_name(job.verb);
  line += " system=" + job.system;
  if (!job.selection.empty()) {
    line += " selection=";
    for (std::size_t c = 0; c < job.selection.size(); ++c) {
      line += (c == 0 ? "" : ",") + std::to_string(job.selection[c] + 1);
    }
  }
  if (job.pipelined) line += " pipelined";
  switch (job.objective) {
    case Job::Objective::kNone:
      break;
    case Job::Objective::kAreaBudget:
      line += " area-budget=" + std::to_string(job.area_budget);
      break;
    case Job::Objective::kTatBudget:
      line += " tat-budget=" + std::to_string(job.tat_budget);
      break;
    case Job::Objective::kWeighted:
      line += " w1=" + format_weight(job.w1) + " w2=" + format_weight(job.w2);
      break;
  }
  return line;
}

}  // namespace socet::service
