#include "socet/service/cache.hpp"

namespace socet::service {

std::optional<PlanCache::Entry> PlanCache::lookup(std::uint64_t key) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  ++stats_.hits;
  return it->second->second;
}

void PlanCache::insert(std::uint64_t key, Entry entry) {
  if (capacity_ == 0) return;
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(key);
  if (it != index_.end()) {
    // Two workers raced on the same content; results are deterministic,
    // so keep the incumbent and just refresh recency.
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  bytes_ += entry_bytes(entry);
  lru_.emplace_front(key, std::move(entry));
  index_.emplace(key, lru_.begin());
  ++stats_.insertions;
  // Entry-count bound and approximate-byte bound evict together from
  // the LRU tail; the byte loop never evicts the entry it just
  // admitted (size > 1 guard), so one oversized payload still caches.
  while (lru_.size() > capacity_ ||
         (max_bytes_ != 0 && bytes_ > max_bytes_ && lru_.size() > 1)) {
    const std::size_t victim_bytes = entry_bytes(lru_.back().second);
    index_.erase(lru_.back().first);
    lru_.pop_back();
    bytes_ -= victim_bytes;
    ++stats_.evictions;
    stats_.evicted_bytes += victim_bytes;
  }
}

CacheStats PlanCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::size_t PlanCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return lru_.size();
}

std::size_t PlanCache::bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return bytes_;
}

}  // namespace socet::service
