#include "socet/service/cache.hpp"

namespace socet::service {

std::optional<PlanCache::Entry> PlanCache::lookup(std::uint64_t key) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  ++stats_.hits;
  return it->second->second;
}

void PlanCache::insert(std::uint64_t key, Entry entry) {
  if (capacity_ == 0) return;
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(key);
  if (it != index_.end()) {
    // Two workers raced on the same content; results are deterministic,
    // so keep the incumbent and just refresh recency.
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(key, std::move(entry));
  index_.emplace(key, lru_.begin());
  ++stats_.insertions;
  if (lru_.size() > capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
    ++stats_.evictions;
  }
}

CacheStats PlanCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::size_t PlanCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return lru_.size();
}

}  // namespace socet::service
