#include "socet/service/httpd.hpp"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>

#include "socet/service/protocol.hpp"
#include "socet/util/error.hpp"

namespace socet::service {

namespace {

constexpr std::size_t kMaxRequestBytes = 8192;

const char* status_reason(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 503: return "Service Unavailable";
    default: return "Error";
  }
}

/// Read until the end of the request headers (blank line) or the size
/// cap; the socket carries a receive timeout, so a silent peer times
/// out instead of wedging the listener.  Returns false on any error.
bool read_request(int fd, std::string* out) {
  char buf[1024];
  while (out->size() < kMaxRequestBytes) {
    const ssize_t r = ::read(fd, buf, sizeof buf);
    if (r < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (r == 0) break;
    out->append(buf, static_cast<std::size_t>(r));
    if (out->find("\r\n\r\n") != std::string::npos ||
        out->find("\n\n") != std::string::npos) {
      return true;
    }
  }
  // A bare request line with no headers is still answerable.
  return out->find('\n') != std::string::npos;
}

void write_all(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t w = ::write(fd, data.data() + sent, data.size() - sent);
    if (w < 0) {
      if (errno == EINTR) continue;
      return;
    }
    sent += static_cast<std::size_t>(w);
  }
}

}  // namespace

Httpd::~Httpd() { stop(); }

void Httpd::start(const HttpdOptions& options, HttpHandler handler) {
  stop();
  listen_fd_ = net_listen(options.host, options.port);
  port_ = local_port(listen_fd_);
  util::require(::pipe(wake_pipe_) == 0,
                std::string("cannot create wake pipe: ") +
                    std::strerror(errno));
  if (!options.port_file.empty()) {
    std::ofstream out(options.port_file, std::ios::trunc);
    out << port_ << "\n";
  }
  handler_ = std::move(handler);
  thread_ = std::thread([this] { loop(); });
}

void Httpd::stop() {
  if (!thread_.joinable()) {
    return;
  }
  const char byte = 'x';
  [[maybe_unused]] const ssize_t w = ::write(wake_pipe_[1], &byte, 1);
  thread_.join();
  ::close(listen_fd_);
  ::close(wake_pipe_[0]);
  ::close(wake_pipe_[1]);
  listen_fd_ = -1;
  wake_pipe_[0] = wake_pipe_[1] = -1;
  port_ = 0;
}

void Httpd::loop() {
  for (;;) {
    pollfd fds[2] = {{listen_fd_, POLLIN, 0}, {wake_pipe_[0], POLLIN, 0}};
    const int rc = ::poll(fds, 2, -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return;
    }
    if (fds[1].revents != 0) return;  // stop() woke us
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int conn = ::accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) continue;
    // The listen fd is non-blocking but accepted fds are not (Linux
    // does not inherit O_NONBLOCK); serial blocking I/O with timeouts
    // is exactly right for one scraper at a time.
    timeval tv = {2, 0};
    ::setsockopt(conn, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
    ::setsockopt(conn, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
    std::string request;
    HttpResponse response;
    if (!read_request(conn, &request)) {
      response = {400, "text/plain; charset=utf-8", "bad request\n"};
    } else {
      // "GET /metrics HTTP/1.0" — method and path are all we use.
      const std::size_t sp1 = request.find(' ');
      const std::size_t line_end = request.find_first_of("\r\n");
      const std::size_t sp2 =
          sp1 == std::string::npos ? std::string::npos
                                   : request.find(' ', sp1 + 1);
      if (sp1 == std::string::npos || sp2 == std::string::npos ||
          sp2 > line_end) {
        response = {400, "text/plain; charset=utf-8", "bad request\n"};
      } else {
        const std::string method = request.substr(0, sp1);
        const std::string path = request.substr(sp1 + 1, sp2 - sp1 - 1);
        response = handler_(method, path);
      }
    }
    std::string out = "HTTP/1.0 " + std::to_string(response.status) + " " +
                      status_reason(response.status) + "\r\n";
    out += "Content-Type: " + response.content_type + "\r\n";
    out += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
    out += "Connection: close\r\n\r\n";
    out += response.body;
    write_all(conn, out);
    ::close(conn);
  }
}

}  // namespace socet::service
