#include "socet/service/protocol.hpp"

#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "socet/util/error.hpp"

namespace socet::service {

namespace {

std::uint32_t decode_length(const char* header) {
  const auto* bytes = reinterpret_cast<const unsigned char*>(header);
  return (std::uint32_t(bytes[0]) << 24) | (std::uint32_t(bytes[1]) << 16) |
         (std::uint32_t(bytes[2]) << 8) | std::uint32_t(bytes[3]);
}

void encode_length(std::uint32_t length, char* header) {
  auto* bytes = reinterpret_cast<unsigned char*>(header);
  bytes[0] = static_cast<unsigned char>(length >> 24);
  bytes[1] = static_cast<unsigned char>(length >> 16);
  bytes[2] = static_cast<unsigned char>(length >> 8);
  bytes[3] = static_cast<unsigned char>(length);
}

/// Read exactly n bytes from a blocking fd.  Returns the bytes actually
/// read (short only at EOF); throws on a socket error.
std::size_t read_exact(int fd, char* out, std::size_t n) {
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::read(fd, out + got, n - got);
    if (r == 0) break;
    if (r < 0) {
      if (errno == EINTR) continue;
      util::raise(std::string("socket read failed: ") + std::strerror(errno));
    }
    got += static_cast<std::size_t>(r);
  }
  return got;
}

}  // namespace

namespace {

void append_u64_be(std::uint64_t value, std::string* out) {
  for (int shift = 56; shift >= 0; shift -= 8) {
    out->push_back(static_cast<char>((value >> shift) & 0xff));
  }
}

std::uint64_t decode_u64_be(const char* data) {
  const auto* bytes = reinterpret_cast<const unsigned char*>(data);
  std::uint64_t value = 0;
  for (int i = 0; i < 8; ++i) value = (value << 8) | bytes[i];
  return value;
}

}  // namespace

std::string encode_frame(std::string_view payload, std::string_view corr,
                         const FrameTrace* trace) {
  util::require(payload.size() <= kMaxFrameBytes,
                "frame payload of " + std::to_string(payload.size()) +
                    " bytes exceeds the " + std::to_string(kMaxFrameBytes) +
                    "-byte limit");
  std::string frame(kFrameHeaderBytes, '\0');
  if (corr.empty() && trace == nullptr) {
    encode_length(static_cast<std::uint32_t>(payload.size()), frame.data());
    frame.append(payload);
    return frame;
  }
  util::require(corr.size() <= kMaxCorrBytes,
                "correlation id of " + std::to_string(corr.size()) +
                    " bytes exceeds the " + std::to_string(kMaxCorrBytes) +
                    "-byte limit");
  std::uint32_t word = 0;
  std::uint32_t total = static_cast<std::uint32_t>(payload.size());
  if (!corr.empty()) {
    word |= kFrameCorrFlag;
    total += static_cast<std::uint32_t>(1 + corr.size());
  }
  if (trace != nullptr) {
    word |= kFrameTraceFlag;
    total += kFrameTraceBytes;
  }
  encode_length(word | total, frame.data());
  if (!corr.empty()) {
    frame += static_cast<char>(corr.size());
    frame.append(corr);
  }
  if (trace != nullptr) {
    append_u64_be(trace->trace_id, &frame);
    append_u64_be(trace->parent_span, &frame);
  }
  frame.append(payload);
  return frame;
}

void FrameReader::feed(const char* data, std::size_t n) {
  if (overflowed_) return;  // stream is unrecoverable, drop the tail
  // Compact once the consumed prefix dominates, so a long-lived
  // connection does not grow its buffer without bound.
  if (pos_ > 4096 && pos_ > buffer_.size() / 2) {
    buffer_.erase(0, pos_);
    pos_ = 0;
  }
  buffer_.append(data, n);
}

std::optional<std::string> FrameReader::next() {
  auto frame = next_frame();
  if (!frame) return std::nullopt;
  return std::move(frame->payload);
}

std::optional<FrameReader::Frame> FrameReader::next_frame() {
  if (overflowed_) return std::nullopt;
  if (buffer_.size() - pos_ < kFrameHeaderBytes) return std::nullopt;
  const std::uint32_t word = decode_length(buffer_.data() + pos_);
  const bool has_corr = (word & kFrameCorrFlag) != 0;
  const bool has_trace = (word & kFrameTraceFlag) != 0;
  const std::uint32_t length = word & ~(kFrameCorrFlag | kFrameTraceFlag);
  // announced() keeps the raw wire word: diagnostics for an oversized
  // plain frame and for a bogus flagged header read the same way.
  if (length > kMaxFrameBytes || (has_corr && length == 0) ||
      (has_trace && length < kFrameTraceBytes)) {
    overflowed_ = true;
    announced_ = word;
    return std::nullopt;
  }
  if (buffer_.size() - pos_ < kFrameHeaderBytes + length) return std::nullopt;
  Frame frame;
  std::size_t body = pos_ + kFrameHeaderBytes;
  std::size_t remaining = length;
  if (has_corr) {
    const std::size_t corr_len =
        static_cast<unsigned char>(buffer_[body]);
    if (corr_len + 1 > remaining) {  // corr_len lies about the body
      overflowed_ = true;
      announced_ = word;
      return std::nullopt;
    }
    frame.corr = buffer_.substr(body + 1, corr_len);
    body += 1 + corr_len;
    remaining -= 1 + corr_len;
  }
  if (has_trace) {
    if (remaining < kFrameTraceBytes) {  // corr section ate the block
      overflowed_ = true;
      announced_ = word;
      return std::nullopt;
    }
    frame.has_trace = true;
    frame.trace.trace_id = decode_u64_be(buffer_.data() + body);
    frame.trace.parent_span = decode_u64_be(buffer_.data() + body + 8);
    body += kFrameTraceBytes;
    remaining -= kFrameTraceBytes;
  }
  frame.payload = buffer_.substr(body, remaining);
  pos_ += kFrameHeaderBytes + length;
  return frame;
}

void write_frame(int fd, std::string_view payload, std::string_view corr,
                 const FrameTrace* trace) {
  const std::string frame = encode_frame(payload, corr, trace);
  std::size_t sent = 0;
  while (sent < frame.size()) {
    const ssize_t w = ::write(fd, frame.data() + sent, frame.size() - sent);
    if (w < 0) {
      if (errno == EINTR) continue;
      util::raise(std::string("socket write failed: ") + std::strerror(errno));
    }
    sent += static_cast<std::size_t>(w);
  }
}

std::optional<std::string> read_frame(int fd) {
  char header[kFrameHeaderBytes];
  const std::size_t got = read_exact(fd, header, sizeof(header));
  if (got == 0) return std::nullopt;  // clean EOF between frames
  util::require(got == sizeof(header),
                "truncated frame: connection closed inside the header");
  const std::uint32_t word = decode_length(header);
  const bool has_corr = (word & kFrameCorrFlag) != 0;
  const bool has_trace = (word & kFrameTraceFlag) != 0;
  const std::uint32_t length = word & ~(kFrameCorrFlag | kFrameTraceFlag);
  util::require(length <= kMaxFrameBytes && !(has_corr && length == 0),
                "oversized frame: peer announced " + std::to_string(word) +
                    " bytes (limit " + std::to_string(kMaxFrameBytes) + ")");
  std::string payload(length, '\0');
  util::require(read_exact(fd, payload.data(), length) == length,
                "truncated frame: connection closed inside the payload");
  if (has_corr) {
    // Responses are matched positionally, so the blocking reader just
    // strips the corr extension.
    const std::size_t corr_len = static_cast<unsigned char>(payload[0]);
    util::require(corr_len + 1 <= payload.size(),
                  "malformed frame: corr length exceeds the body");
    payload.erase(0, 1 + corr_len);
  }
  if (has_trace) {
    // Same story for the trace block: positional matching makes it
    // redundant on the receive side of a blocking reader.
    util::require(payload.size() >= kFrameTraceBytes,
                  "malformed frame: trace block exceeds the body");
    payload.erase(0, kFrameTraceBytes);
  }
  return payload;
}

HostPort parse_host_port(const std::string& spec) {
  const auto colon = spec.rfind(':');
  util::require(colon != std::string::npos && colon != 0 &&
                    colon + 1 < spec.size(),
                "bad address '" + spec + "' (want HOST:PORT)");
  HostPort hp;
  hp.host = spec.substr(0, colon);
  const std::string port_text = spec.substr(colon + 1);
  char* end = nullptr;
  const unsigned long port = std::strtoul(port_text.c_str(), &end, 10);
  util::require(end != nullptr && *end == '\0' && port >= 1 && port <= 65535,
                "bad port '" + port_text + "' in '" + spec + "'");
  hp.port = static_cast<unsigned short>(port);
  return hp;
}

namespace {

/// getaddrinfo for a numeric-or-name host; caller owns the result.
addrinfo* resolve(const std::string& host, unsigned short port,
                  bool passive) {
  addrinfo hints = {};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = passive ? AI_PASSIVE : 0;
  addrinfo* result = nullptr;
  const int rc = ::getaddrinfo(host.c_str(), std::to_string(port).c_str(),
                               &hints, &result);
  util::require(rc == 0, "cannot resolve '" + host + "': " +
                             ::gai_strerror(rc));
  return result;
}

}  // namespace

int net_listen(const std::string& host, unsigned short port) {
  addrinfo* info = resolve(host, port, /*passive=*/true);
  int fd = -1;
  std::string error = "no usable address for '" + host + "'";
  for (addrinfo* ai = info; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype | SOCK_NONBLOCK,
                  ai->ai_protocol);
    if (fd < 0) continue;
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(fd, ai->ai_addr, ai->ai_addrlen) == 0 &&
        ::listen(fd, SOMAXCONN) == 0) {
      break;
    }
    error = std::string("cannot listen on ") + host + ":" +
            std::to_string(port) + ": " + std::strerror(errno);
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(info);
  util::require(fd >= 0, error);
  return fd;
}

int net_connect(const std::string& host, unsigned short port) {
  addrinfo* info = resolve(host, port, /*passive=*/false);
  int fd = -1;
  std::string error = "no usable address for '" + host + "'";
  for (addrinfo* ai = info; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) continue;
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
    error = std::string("cannot connect to ") + host + ":" +
            std::to_string(port) + ": " + std::strerror(errno);
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(info);
  util::require(fd >= 0, error);
  // Job frames are tiny; Nagle would add 40ms to every request.
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

unsigned short local_port(int fd) {
  sockaddr_storage addr = {};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return 0;
  }
  if (addr.ss_family == AF_INET) {
    return ntohs(reinterpret_cast<sockaddr_in*>(&addr)->sin_port);
  }
  if (addr.ss_family == AF_INET6) {
    return ntohs(reinterpret_cast<sockaddr_in6*>(&addr)->sin6_port);
  }
  return 0;
}

}  // namespace socet::service
