#include "socet/service/service.hpp"

#include <algorithm>
#include <charconv>
#include <chrono>
#include <cstdio>
#include <map>

#include "socet/obs/journal.hpp"
#include "socet/obs/metrics.hpp"
#include "socet/obs/resource.hpp"
#include "socet/obs/trace.hpp"
#include "socet/opt/optimize.hpp"
#include "socet/service/queue.hpp"
#include "socet/soc/parallel.hpp"
#include "socet/soc/testprogram.hpp"
#include "socet/soc/validate.hpp"
#include "socet/systems/synthetic.hpp"
#include "socet/systems/systems.hpp"
#include "socet/util/error.hpp"
#include "socet/util/table.hpp"

namespace socet::service {

namespace {

using Clock = std::chrono::steady_clock;

double microseconds_between(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double, std::micro>(to - from).count();
}

/// Resolve a job's system name.  Besides the paper's two systems, the
/// service accepts `synthetic:<seed>[:<cores>]` so load generators can
/// request arbitrarily many distinct, deterministic SOCs.
systems::System resolve_system(const std::string& name) {
  if (name == "barcode" || name == "system1") {
    return systems::make_barcode_system();
  }
  if (name == "system2") return systems::make_system2();
  if (name.rfind("synthetic:", 0) == 0) {
    const std::string spec = name.substr(10);
    const auto colon = spec.find(':');
    const std::string seed_text = spec.substr(0, colon);
    std::uint64_t seed = 0;
    auto [ptr, ec] = std::from_chars(
        seed_text.data(), seed_text.data() + seed_text.size(), seed);
    util::require(ec == std::errc() &&
                      ptr == seed_text.data() + seed_text.size(),
                  "bad synthetic seed in system '" + name + "'");
    systems::SyntheticSocOptions options;
    if (colon != std::string::npos) {
      const std::string cores_text = spec.substr(colon + 1);
      unsigned cores = 0;
      auto [cptr, cec] = std::from_chars(
          cores_text.data(), cores_text.data() + cores_text.size(), cores);
      util::require(cec == std::errc() && cores >= 1 &&
                        cptr == cores_text.data() + cores_text.size(),
                    "bad synthetic core count in system '" + name + "'");
      options.cores = cores;
    }
    return systems::make_synthetic_system(seed, options);
  }
  util::raise("unknown system '" + name +
              "' (use barcode|system2|synthetic:<seed>[:<cores>])");
}

/// Per-worker system table: each thread materializes the systems its jobs
/// name exactly once, and no System is ever shared across threads.
class SystemTable {
 public:
  const systems::System& get(const std::string& name) {
    auto it = systems_.find(name);
    if (it == systems_.end()) {
      it = systems_.emplace(name, resolve_system(name)).first;
    }
    return it->second;
  }

 private:
  std::map<std::string, systems::System> systems_;
};

soc::PlanOptions plan_options_for(const Job& job) {
  soc::PlanOptions options;
  options.allow_pipelining = job.pipelined;
  return options;
}

std::string format_selection(const std::vector<unsigned>& selection) {
  std::string text;
  for (unsigned v : selection) {
    if (!text.empty()) text += '/';
    text += std::to_string(v + 1);
  }
  return text;
}

/// Pad the job's selection to one version index per core and range-check
/// it against the system's menus.
std::vector<unsigned> full_selection(const systems::System& system,
                                     const Job& job) {
  const std::size_t cores = system.soc->cores().size();
  util::require(job.selection.size() <= cores,
                "selection has " + std::to_string(job.selection.size()) +
                    " entries but system '" + job.system + "' has " +
                    std::to_string(cores) + " cores");
  std::vector<unsigned> selection(cores, 0);
  for (std::size_t c = 0; c < job.selection.size(); ++c) {
    selection[c] = job.selection[c];
    util::require(
        selection[c] <
            system.soc->core(static_cast<std::uint32_t>(c)).version_count(),
        "selection out of range for core " + std::to_string(c + 1));
  }
  return selection;
}

PlanCache::Entry execute_job(const Job& job, SystemTable& systems) {
  const systems::System& system = systems.get(job.system);
  PlanCache::Entry entry;
  switch (job.verb) {
    case Verb::kPlan: {
      const auto selection = full_selection(system, job);
      const auto options = plan_options_for(job);
      const auto plan = soc::plan_chip_test(*system.soc, selection, options);
      const auto violations =
          soc::validate_plan(*system.soc, selection, plan, options);
      entry.tat = plan.total_tat;
      entry.overhead_cells = plan.total_overhead_cells();
      entry.payload = "sel=" + format_selection(selection) +
                      " tat=" + std::to_string(plan.total_tat) +
                      " overhead=" + std::to_string(entry.overhead_cells) +
                      " violations=" + std::to_string(violations.size());
      break;
    }
    case Verb::kOptimize: {
      opt::DesignPoint point;
      switch (job.objective) {
        case Job::Objective::kAreaBudget:
          point = opt::minimize_tat(*system.soc, job.area_budget);
          break;
        case Job::Objective::kTatBudget:
          point = opt::minimize_area(*system.soc, job.tat_budget);
          break;
        case Job::Objective::kWeighted:
          point = opt::minimize_weighted(*system.soc, job.w1, job.w2);
          break;
        case Job::Objective::kNone:
          util::raise("optimize job has no objective");
      }
      entry.tat = point.tat;
      entry.overhead_cells = point.overhead_cells;
      entry.payload = "sel=" + format_selection(point.selection) +
                      " tat=" + std::to_string(point.tat) +
                      " overhead=" + std::to_string(point.overhead_cells) +
                      " constraint=" +
                      (point.met_constraint ? "met" : "missed");
      break;
    }
    case Verb::kExplore: {
      const auto points = opt::enumerate_design_space(*system.soc);
      const auto front = opt::pareto_front(points);
      unsigned long long best_tat = 0;
      unsigned min_area = 0;
      for (const auto& point : points) {
        if (&point == &points.front() || point.tat < best_tat) {
          best_tat = point.tat;
        }
        if (&point == &points.front() || point.overhead_cells < min_area) {
          min_area = point.overhead_cells;
        }
      }
      entry.tat = best_tat;
      entry.overhead_cells = min_area;
      entry.payload = "points=" + std::to_string(points.size()) +
                      " pareto=" + std::to_string(front.size()) +
                      " best_tat=" + std::to_string(best_tat) +
                      " min_area=" + std::to_string(min_area);
      break;
    }
    case Verb::kParallel: {
      const auto selection = full_selection(system, job);
      const auto plan = soc::plan_chip_test(*system.soc, selection);
      const auto schedule =
          soc::schedule_parallel(*system.soc, selection, plan);
      entry.tat = schedule.total_tat;
      entry.overhead_cells = plan.total_overhead_cells();
      char speedup[32];
      std::snprintf(speedup, sizeof(speedup), "%.2f", schedule.speedup());
      entry.payload = "sel=" + format_selection(selection) +
                      " sessions=" + std::to_string(schedule.sessions.size()) +
                      " sequential=" + std::to_string(schedule.sequential_tat) +
                      " parallel=" + std::to_string(schedule.total_tat) +
                      " speedup=" + speedup;
      break;
    }
    case Verb::kProgram: {
      const auto selection = full_selection(system, job);
      const auto plan = soc::plan_chip_test(*system.soc, selection);
      const auto program =
          soc::assemble_test_program(*system.soc, selection, plan);
      std::size_t events = 0;
      for (const auto& core : program.cores) events += core.frame.size();
      entry.tat = program.total_cycles;
      entry.overhead_cells = plan.total_overhead_cells();
      entry.payload = "sel=" + format_selection(selection) +
                      " cores=" + std::to_string(program.cores.size()) +
                      " frame_events=" + std::to_string(events) +
                      " cycles=" + std::to_string(program.total_cycles);
      break;
    }
  }
  return entry;
}

CacheStats stats_delta(const CacheStats& before, const CacheStats& after) {
  return {after.hits - before.hits, after.misses - before.misses,
          after.insertions - before.insertions,
          after.evictions - before.evictions,
          after.evicted_bytes - before.evicted_bytes};
}

}  // namespace

std::uint64_t job_key(const Job& job) {
  const std::uint64_t canonical = fnv1a(canonical_job_line(job));
  return fnv1a(soc::plan_options_key(plan_options_for(job)), canonical);
}

struct Executor::Systems : SystemTable {};

Executor::Executor(PlanCache& cache)
    : cache_(cache), systems_(std::make_unique<Systems>()) {}

Executor::~Executor() = default;

JobResult Executor::run_line(const std::string& line, std::uint64_t ordinal) {
  JobResult result;
  Job job;
  try {
    job = parse_job_line(line);
  } catch (const std::exception& error) {
    result.record = std::string("error ") + error.what();
    SOCET_EVENT("service/job", {"job", ordinal},
                {"outcome", "parse_error"}, {"error", error.what()});
    return result;
  }
  result.key = job_key(job);
  try {
    PlanCache::Entry entry;
    if (auto cached = cache_.lookup(result.key)) {
      entry = std::move(*cached);
      result.cache_hit = true;
    } else {
      entry = execute_job(job, *systems_);
      cache_.insert(result.key, entry);
    }
    char key_hex[20];
    std::snprintf(key_hex, sizeof(key_hex), "%016llx",
                  static_cast<unsigned long long>(result.key));
    SOCET_EVENT("service/job", {"job", ordinal},
                {"verb", verb_name(job.verb)}, {"system", job.system},
                {"cache", result.cache_hit ? "hit" : "miss"},
                {"key", key_hex});
    result.ok = true;
    result.tat = entry.tat;
    result.overhead_cells = entry.overhead_cells;
    result.record =
        std::string("ok ") + verb_name(job.verb) + " " + entry.payload;
  } catch (const std::exception& error) {
    result.record = std::string("error ") + error.what();
    SOCET_EVENT("service/job", {"job", ordinal},
                {"verb", verb_name(job.verb)}, {"system", job.system},
                {"outcome", "error"}, {"error", error.what()});
  }
  return result;
}

PlanningService::PlanningService(ServiceOptions options)
    : options_(options), cache_(options.cache_capacity, options.cache_bytes) {
  util::require(options_.threads >= 1, "service needs at least one thread");
}

BatchReport PlanningService::run(const std::vector<Job>& jobs) {
  std::vector<std::string> lines;
  lines.reserve(jobs.size());
  for (const Job& job : jobs) lines.push_back(canonical_job_line(job));
  return run_lines(lines);
}

BatchReport PlanningService::run_lines(const std::vector<std::string>& lines) {
  SOCET_SPAN("service/batch");
  std::vector<std::string> batch;
  for (const std::string& line : lines) {
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') continue;
    batch.push_back(line);
  }

  BatchReport report;
  report.results.resize(batch.size());
  const CacheStats before = cache_.stats();
  const auto batch_start = Clock::now();

  struct Item {
    std::size_t index = 0;
    Clock::time_point enqueued;
  };
  WorkQueue<Item> queue;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    queue.push({i, batch_start});
  }
  queue.close();
  SOCET_GAUGE_MAX("service/queue_depth", queue.size());

  const auto worker = [&] {
    Executor executor(cache_);
    while (auto item = queue.pop()) {
      SOCET_SPAN("service/job");
      SOCET_RESOURCE_SCOPE("service/job");
      const std::size_t i = item->index;
      const auto start = Clock::now();
      // Correlate every decision event recorded while this job runs
      // (routes, optimizer moves, ...) with the job's batch index.
      obs::JournalScope journal_scope("job-" + std::to_string(i + 1));
      JobResult result = executor.run_line(batch[i], i + 1);
      result.index = i;
      result.queue_us = microseconds_between(item->enqueued, start);
      result.record = "job " + std::to_string(i + 1) + " " + result.record;
      result.wall_us = microseconds_between(start, Clock::now());
      report.results[i] = std::move(result);
    }
  };

  const unsigned workers = static_cast<unsigned>(std::min<std::size_t>(
      options_.threads, std::max<std::size_t>(batch.size(), 1)));
  util::run_on_workers(workers, [&worker, workers](unsigned t) {
    // Inline single-thread runs keep the caller's thread name.
    if (workers > 1) {
      obs::name_this_thread("worker-" + std::to_string(t + 1));
    }
    worker();
  });

  report.wall_ms =
      microseconds_between(batch_start, Clock::now()) / 1000.0;
  report.cache = stats_delta(before, cache_.stats());
  for (const JobResult& result : report.results) {
    if (!result.ok) ++report.errors;
    if (result.cache_hit) SOCET_COUNT("service/cache_hits");
    SOCET_HISTOGRAM("service/queue_us", result.queue_us);
    SOCET_HISTOGRAM("service/wall_us", result.wall_us);
  }
  SOCET_COUNT_N("service/jobs", report.results.size());
  SOCET_COUNT_N("service/errors", report.errors);
  SOCET_COUNT_N("service/cache_misses", report.cache.misses);
  return report;
}

std::string BatchReport::records_text() const {
  std::string text;
  for (const JobResult& result : results) text += result.record + "\n";
  return text;
}

std::string BatchReport::summary_table() const {
  double queue_us = 0;
  double wall_us = 0;
  obs::Histogram queue_hist;
  obs::Histogram wall_hist;
  for (const JobResult& result : results) {
    queue_us += result.queue_us;
    wall_us += result.wall_us;
    queue_hist.record(static_cast<std::uint64_t>(result.queue_us));
    wall_hist.record(static_cast<std::uint64_t>(result.wall_us));
  }
  const double jobs = results.empty() ? 1.0 : static_cast<double>(results.size());
  util::Table table({"counter", "value"});
  table.add_row({"jobs run", std::to_string(results.size())});
  table.add_row({"errors", std::to_string(errors)});
  table.add_row({"cache hits", std::to_string(cache.hits)});
  table.add_row({"cache misses", std::to_string(cache.misses)});
  table.add_row({"cache hit-rate", util::Table::num(cache.hit_rate() * 100.0) + "%"});
  table.add_row({"mean queue time", util::Table::num(queue_us / jobs) + " us"});
  table.add_row({"p50 queue time", util::Table::num(queue_hist.quantile(0.5)) + " us"});
  table.add_row({"p95 queue time", util::Table::num(queue_hist.quantile(0.95)) + " us"});
  table.add_row({"max queue time", std::to_string(queue_hist.max()) + " us"});
  table.add_row({"mean job wall time", util::Table::num(wall_us / jobs) + " us"});
  table.add_row({"p50 job wall time", util::Table::num(wall_hist.quantile(0.5)) + " us"});
  table.add_row({"p95 job wall time", util::Table::num(wall_hist.quantile(0.95)) + " us"});
  table.add_row({"max job wall time", std::to_string(wall_hist.max()) + " us"});
  table.add_row({"batch wall time", util::Table::num(wall_ms, 2) + " ms"});
  return table.to_text();
}

std::string sweep_csv(const std::string& system_name,
                      PlanningService& service) {
  const systems::System system = resolve_system(system_name);
  const auto selections = opt::enumerate_selections(*system.soc);
  std::vector<Job> jobs;
  jobs.reserve(selections.size());
  for (const auto& selection : selections) {
    Job job;
    job.verb = Verb::kPlan;
    job.system = system_name;
    job.selection = selection;
    jobs.push_back(std::move(job));
  }
  const BatchReport report = service.run(jobs);
  std::vector<opt::DesignPoint> points;
  points.reserve(report.results.size());
  for (const JobResult& result : report.results) {
    util::require(result.ok, "sweep " + result.record);
    opt::DesignPoint point;
    point.selection = selections[result.index];
    point.tat = result.tat;
    point.overhead_cells = result.overhead_cells;
    points.push_back(std::move(point));
  }
  return opt::design_space_csv(std::move(points));
}

}  // namespace socet::service
