#include "socet/service/client.hpp"

#include <unistd.h>

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "socet/obs/trace.hpp"
#include "socet/service/protocol.hpp"
#include "socet/util/error.hpp"

namespace socet::service {

namespace {

std::string hex_id(std::uint64_t id) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%" PRIx64, id);
  return buffer;
}

}  // namespace

Client::Client(ClientOptions options) : options_(std::move(options)) {
  util::require(options_.window >= 1, "client window must be at least 1");
  fd_ = net_connect(options_.host, options_.port);
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

ClientReport Client::run_lines(const std::vector<std::string>& lines) {
  // Same filter as PlanningService::run_lines, so job numbering (and
  // therefore output) matches `socet batch` on the same file.
  std::vector<const std::string*> batch;
  for (const std::string& line : lines) {
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') continue;
    batch.push_back(&line);
  }

  ClientReport report;
  report.jobs = batch.size();
  report.records.reserve(batch.size());

  if (options_.trace) {
    report.trace.trace_id = obs::new_span_id();
    report.trace.clock_offset_ns = clock_handshake();
  }
  // Per-job submit spans: opened when the frame goes out, closed when
  // its (positionally matched) response comes back — the span covers
  // the job's full wire lifetime, which is what the daemon's
  // queue/job/respond spans nest under.
  std::vector<obs::SpanRecord> submits;
  if (options_.trace) submits.resize(batch.size());

  std::size_t sent = 0;
  std::size_t received = 0;
  while (received < batch.size()) {
    while (sent < batch.size() && sent - received < options_.window) {
      // The corr id matches one-shot batch's JournalScope naming
      // ("job-<n>"), so a daemon-side journal reads exactly like a
      // local one and `socet explain` queries transfer unchanged.
      const std::string corr = "job-" + std::to_string(sent + 1);
      if (options_.trace) {
        auto& span = submits[sent];
        span.name = "submit #" + std::to_string(sent + 1);
        span.id = obs::new_span_id();
        span.start_ns = obs::now_ns();
        const FrameTrace trace{report.trace.trace_id, span.id};
        write_frame(fd_, *batch[sent], corr, &trace);
      } else {
        write_frame(fd_, *batch[sent], corr);
      }
      ++sent;
    }
    auto response = read_frame(fd_);
    util::require(response.has_value(),
                  "server closed the connection after " +
                      std::to_string(received) + " of " +
                      std::to_string(batch.size()) + " responses");
    if (options_.trace) submits[received].end_ns = obs::now_ns();
    ++received;
    if (response->rfind("error", 0) == 0) ++report.errors;
    if (response->rfind("busy", 0) == 0) ++report.busy;
    report.records.push_back("job " + std::to_string(received) + " " +
                             *response);
  }

  if (options_.trace) {
    report.trace.client_spans = std::move(submits);
    report.trace.daemon_spans = collect_spans(report.trace.trace_id);
  }
  return report;
}

std::int64_t Client::clock_handshake() {
  std::vector<obs::ClockSample> samples;
  samples.reserve(options_.clock_probes);
  for (std::size_t probe = 0; probe < options_.clock_probes; ++probe) {
    obs::ClockSample sample;
    sample.send_ns = obs::now_ns();
    write_frame(fd_, "clock");
    auto response = read_frame(fd_);
    sample.recv_ns = obs::now_ns();
    util::require(response.has_value() && response->rfind("ok clock ", 0) == 0,
                  "clock handshake failed: daemon answered '" +
                      response.value_or("<eof>") + "'");
    sample.server_ns = std::strtoull(response->c_str() + 9, nullptr, 10);
    samples.push_back(sample);
  }
  return obs::estimate_clock_offset_ns(samples);
}

std::vector<obs::SpanRecord> Client::collect_spans(std::uint64_t trace_id) {
  write_frame(fd_, "spans " + hex_id(trace_id));
  auto response = read_frame(fd_);
  util::require(response.has_value() && response->rfind("ok spans ", 0) == 0,
                "span collection failed: daemon answered '" +
                    response.value_or("<eof>") + "'");
  const auto newline = response->find('\n');
  std::vector<obs::SpanRecord> spans;
  if (newline != std::string::npos) {
    std::string error;
    util::require(obs::parse_remote_spans_jsonl(
                      std::string_view(*response).substr(newline + 1), &spans,
                      &error),
                  "span collection failed: " + error);
  }
  return spans;
}

std::string Client::query(const std::string& verb) {
  write_frame(fd_, verb);
  auto response = read_frame(fd_);
  util::require(response.has_value(),
                "server closed the connection before answering '" + verb +
                    "'");
  return *response;
}

std::string ClientTrace::chrome_trace() const {
  obs::MergeInput input;
  input.trace_id = trace_id;
  input.clock_offset_ns = clock_offset_ns;
  input.client_spans = client_spans;
  input.daemon_spans = daemon_spans;
  return obs::merged_chrome_trace(input);
}

std::string ClientReport::records_text() const {
  std::string text;
  for (const std::string& record : records) text += record + "\n";
  return text;
}

}  // namespace socet::service
