#include "socet/service/client.hpp"

#include <unistd.h>

#include <utility>

#include "socet/service/protocol.hpp"
#include "socet/util/error.hpp"

namespace socet::service {

Client::Client(ClientOptions options) : options_(std::move(options)) {
  util::require(options_.window >= 1, "client window must be at least 1");
  fd_ = net_connect(options_.host, options_.port);
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

ClientReport Client::run_lines(const std::vector<std::string>& lines) {
  // Same filter as PlanningService::run_lines, so job numbering (and
  // therefore output) matches `socet batch` on the same file.
  std::vector<const std::string*> batch;
  for (const std::string& line : lines) {
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') continue;
    batch.push_back(&line);
  }

  ClientReport report;
  report.jobs = batch.size();
  report.records.reserve(batch.size());
  std::size_t sent = 0;
  std::size_t received = 0;
  while (received < batch.size()) {
    while (sent < batch.size() && sent - received < options_.window) {
      // The corr id matches one-shot batch's JournalScope naming
      // ("job-<n>"), so a daemon-side journal reads exactly like a
      // local one and `socet explain` queries transfer unchanged.
      write_frame(fd_, *batch[sent], "job-" + std::to_string(sent + 1));
      ++sent;
    }
    auto response = read_frame(fd_);
    util::require(response.has_value(),
                  "server closed the connection after " +
                      std::to_string(received) + " of " +
                      std::to_string(batch.size()) + " responses");
    ++received;
    if (response->rfind("error", 0) == 0) ++report.errors;
    if (response->rfind("busy", 0) == 0) ++report.busy;
    report.records.push_back("job " + std::to_string(received) + " " +
                             *response);
  }
  return report;
}

std::string Client::query(const std::string& verb) {
  write_frame(fd_, verb);
  auto response = read_frame(fd_);
  util::require(response.has_value(),
                "server closed the connection before answering '" + verb +
                    "'");
  return *response;
}

std::string ClientReport::records_text() const {
  std::string text;
  for (const std::string& record : records) text += record + "\n";
  return text;
}

}  // namespace socet::service
