#include "socet/service/server.hpp"

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <fstream>
#include <map>
#include <mutex>
#include <optional>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "socet/obs/build.hpp"
#include "socet/obs/expo.hpp"
#include "socet/obs/journal.hpp"
#include "socet/obs/metrics.hpp"
#include "socet/obs/report.hpp"
#include "socet/obs/sampler.hpp"
#include "socet/obs/trace.hpp"
#include "socet/obs/tracemerge.hpp"
#include "socet/service/httpd.hpp"
#include "socet/service/protocol.hpp"
#include "socet/service/queue.hpp"
#include "socet/service/service.hpp"
#include "socet/util/error.hpp"

namespace socet::service {

namespace {

using Clock = std::chrono::steady_clock;

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

/// Signal plumbing: the handler may only touch async-signal-safe state,
/// so it sets a pre-registered atomic flag and writes one byte to the
/// server's wake pipe.  One server per process (the CLI's case).
std::atomic<int> g_signal_wake_fd{-1};
std::atomic<bool>* g_signal_drain_flag = nullptr;

void on_drain_signal(int) {
  if (g_signal_drain_flag != nullptr) {
    g_signal_drain_flag->store(true, std::memory_order_release);
  }
  const int fd = g_signal_wake_fd.load(std::memory_order_relaxed);
  if (fd >= 0) {
    const char byte = 'S';
    [[maybe_unused]] const ssize_t rc = ::write(fd, &byte, 1);
  }
}

std::string first_token(const std::string& line) {
  const auto first = line.find_first_not_of(" \t\r");
  if (first == std::string::npos) return "";
  const auto end = line.find_first_of(" \t\r", first);
  return line.substr(first,
                     end == std::string::npos ? std::string::npos
                                              : end - first);
}

std::vector<std::string> split_tokens(const std::string& line) {
  std::vector<std::string> tokens;
  std::size_t pos = 0;
  while (pos < line.size()) {
    const auto start = line.find_first_not_of(" \t\r", pos);
    if (start == std::string::npos) break;
    const auto end = line.find_first_of(" \t\r", start);
    tokens.push_back(line.substr(
        start, end == std::string::npos ? std::string::npos : end - start));
    if (end == std::string::npos) break;
    pos = end;
  }
  return tokens;
}

}  // namespace

std::string ServerStats::text() const {
  std::string text;
  const auto field = [&text](const char* key, std::uint64_t value) {
    if (!text.empty()) text += ' ';
    text += key;
    text += '=';
    text += std::to_string(value);
  };
  field("workers", workers);
  field("connections", connections_open);
  field("accepted", connections_accepted);
  field("requests", requests);
  field("responses", responses);
  field("errors", errors);
  field("busy", busy_rejects);
  field("bad_frames", bad_frames);
  field("queue_depth", queue_depth);
  field("queue_hwm", queue_depth_hwm);
  field("tail_dropped", tail_dropped);
  field("inflight", inflight);
  field("draining", draining ? 1 : 0);
  field("cache_hits", cache.hits);
  field("cache_misses", cache.misses);
  field("cache_insertions", cache.insertions);
  field("cache_evictions", cache.evictions);
  field("cache_evicted_bytes", cache.evicted_bytes);
  field("cache_entries", cache_entries);
  field("cache_bytes", cache_bytes);
  return text;
}

struct Server::Impl {
  /// One connection's state machine, owned by the event loop; workers
  /// only ever hold a shared_ptr to route their completion back.
  struct Conn {
    int fd = -1;
    std::uint64_t id = 0;
    FrameReader reader;
    std::string out;           ///< encoded, unsent response bytes
    std::size_t out_off = 0;   ///< already-written prefix of `out`
    struct Slot {
      std::uint64_t id = 0;
      bool done = false;
      std::string body;
    };
    std::deque<Slot> slots;  ///< FIFO: responses flush in request order
    std::uint64_t next_slot_id = 1;
    bool peer_eof = false;  ///< no more requests will arrive
    bool fatal = false;     ///< close after the pending flush (bad frame)
    bool dead = false;      ///< closed and removed from the map
    // Live journal tailing (`tail` verb): once subscribed, matching
    // journal lines stream to this connection as unsolicited frames.
    bool tailing = false;
    std::string tail_corr;  ///< exact corr match; empty = any
    std::string tail_type;  ///< event-type prefix match; empty = any
  };

  struct Task {
    std::shared_ptr<Conn> conn;
    std::uint64_t slot_id = 0;
    std::uint64_t ordinal = 0;
    std::string line;
    std::string corr;  ///< wire correlation id (may be empty)
    std::string verb;  ///< first token of `line` (access log)
    std::uint64_t depth_at_admit = 0;
    // Propagated trace context (kFrameTraceFlag); 0 = untraced request.
    std::uint64_t trace_id = 0;
    std::uint64_t parent_span = 0;
    std::uint64_t admit_ns = 0;  ///< obs::now_ns() at admission
  };

  struct Completion {
    std::shared_ptr<Conn> conn;
    std::uint64_t slot_id = 0;
    std::string body;
    // Access-log fields, filled by the worker and written by the event
    // loop (the log has exactly one writer thread).
    std::string corr;
    std::string verb;
    double wall_us = 0;
    double queue_us = 0;  ///< admission → worker pickup
    bool ok = false;
    bool cache_hit = false;
    bool job = true;  ///< false for verb completions (e.g. profile)
    std::uint64_t depth_at_admit = 0;
    std::uint64_t trace_id = 0;
    std::uint64_t parent_span = 0;
    std::uint64_t finish_ns = 0;  ///< obs::now_ns() when the worker finished
  };

  explicit Impl(ServerOptions opts)
      : options(std::move(opts)),
        cache(options.cache_capacity, options.cache_bytes) {}

  ServerOptions options;
  PlanCache cache;
  int listen_fd = -1;
  unsigned short bound_port = 0;
  int wake_r = -1;
  int wake_w = -1;
  std::thread loop_thread;
  std::vector<std::thread> workers;
  bool started = false;
  bool joined = false;

  // Telemetry plane (all dormant unless the options enable it).
  Httpd httpd;
  obs::WindowTicker ticker;
  std::ofstream access_log;  ///< written only by the event-loop thread
  std::uint64_t access_log_bytes = 0;  ///< rotation accounting
  Clock::time_point start_time = Clock::now();
  std::int64_t start_unix_seconds =
      std::chrono::duration_cast<std::chrono::seconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count();

  // Cross-process tracing: spans captured for propagated trace ids,
  // held until the client fetches them with the `spans` verb.  Bounded
  // FIFO so a client that never collects cannot grow the daemon.
  static constexpr std::size_t kMaxTraces = 64;
  static constexpr std::size_t kMaxSpansPerTrace = 4096;
  std::mutex trace_mutex;
  std::map<std::uint64_t, std::vector<obs::SpanRecord>> trace_store;
  std::deque<std::uint64_t> trace_order;

  // Journal tap plumbing: the tap callback (any recording thread) feeds
  // a retention ring (`journal` verb) and a pending buffer the event
  // loop drains into tailing connections.
  struct TailEvent {
    std::string type;
    std::string corr;
    std::string line;
  };
  static constexpr std::size_t kMaxTailPending = 4096;
  std::mutex tail_mutex;
  std::vector<TailEvent> tail_pending;
  std::deque<std::string> journal_ring_lines;
  // Events lost to slow `socet tail` watchers — pending-buffer overflow
  // (tap thread) plus per-connection write-budget drops (event loop).
  // Atomic because the stats/metrics paths read it cross-thread.
  std::atomic<std::uint64_t> tail_dropped{0};
  std::atomic<int> tailers{0};
  bool tap_installed = false;  ///< event-loop/start-thread only

  // On-demand remote profiling: one window at a time, run on its own
  // thread so the event loop never blocks on the sampler.
  std::atomic<bool> profiling{false};
  std::thread profile_thread;

  // Slowest-recent-requests ring for GET /debug/slowreqs.
  struct SlowReq {
    std::uint64_t ts_us = 0;
    std::uint64_t conn = 0;
    std::string corr;
    std::string verb;
    double wall_us = 0;
    double queue_us = 0;
    bool ok = false;
    bool cache_hit = false;
  };
  static constexpr std::size_t kSlowRingCap = 256;
  std::mutex slow_mutex;
  std::deque<SlowReq> slow_ring;

  WorkQueue<Task> queue;
  std::mutex completions_mutex;
  std::vector<Completion> completions;

  // Event-loop-private state.
  std::unordered_map<int, std::shared_ptr<Conn>> conns;
  std::uint64_t next_conn_id = 1;
  std::uint64_t next_ordinal = 1;

  // Counters shared between the loop, workers, and external stats().
  std::atomic<std::uint64_t> accepted{0};
  std::atomic<std::uint64_t> requests{0};
  std::atomic<std::uint64_t> responses{0};
  std::atomic<std::uint64_t> errors{0};
  std::atomic<std::uint64_t> busy_rejects{0};
  std::atomic<std::uint64_t> bad_frames{0};
  std::atomic<std::uint64_t> queue_depth{0};
  std::atomic<std::uint64_t> queue_hwm{0};
  std::atomic<std::uint64_t> inflight{0};
  std::atomic<std::uint64_t> open_conns{0};
  std::atomic<bool> draining{false};
  std::atomic<bool> drain_requested{false};

  // ---------------------------------------------------------------- workers

  void worker_main(unsigned index) {
    obs::name_this_thread("serve-worker-" + std::to_string(index + 1));
    Executor executor(cache);
    // Per-worker busy-time counter (the `socet top` busy% source).  The
    // name varies by worker, so the SOCET_COUNT_N macro's function-local
    // static cannot be used — cache the handle manually.
    obs::Counter* busy_us = nullptr;
    while (auto task = queue.pop()) {
      queue_depth.fetch_sub(1, std::memory_order_relaxed);
      inflight.fetch_add(1, std::memory_order_relaxed);
      if (options.before_execute) options.before_execute(task->line);
      const std::uint64_t start_ns = obs::now_ns();
      const auto start = Clock::now();
      Completion completion;
      // A propagated trace context turns on per-request span capture:
      // every Span this worker opens while running the job is recorded
      // under the client's trace id, independent of the daemon's own
      // --trace switch.
      std::optional<obs::SpanCapture> capture;
      if (task->trace_id != 0) {
        capture.emplace(task->trace_id, task->parent_span);
      }
      {
        SOCET_SPAN("serve/job");
        // The wire correlation id (if the client sent one) scopes this
        // job's journal events, so `socet explain` queries line up with
        // the client's own naming; bare frames fall back to a
        // server-assigned ordinal id.
        obs::JournalScope journal_scope(
            task->corr.empty() ? "req-" + std::to_string(task->ordinal)
                               : task->corr);
        JobResult result = executor.run_line(task->line, task->ordinal);
        if (!result.ok) errors.fetch_add(1, std::memory_order_relaxed);
        completion.ok = result.ok;
        completion.cache_hit = result.cache_hit;
        completion.body = std::move(result.record);
      }
      if (capture) {
        auto spans = capture->take();
        capture.reset();
        // Synthesize the queue-wait span (admission → pickup) on the
        // event-loop lane (tid 0); the merge tool stripes it visually.
        spans.push_back(obs::SpanRecord{"serve/queue", 0, obs::new_span_id(),
                                        task->parent_span, task->admit_ns,
                                        start_ns});
        store_trace_spans(task->trace_id, std::move(spans));
      }
      const double request_us =
          std::chrono::duration<double, std::micro>(Clock::now() - start)
              .count();
      SOCET_HISTOGRAM("serve/request_us", request_us);
      if (obs::metrics_enabled()) {
        if (busy_us == nullptr) {
          busy_us = &obs::counter("serve/worker" + std::to_string(index + 1) +
                                  "_busy_us");
        }
        busy_us->add(static_cast<std::uint64_t>(request_us));
      }
      responses.fetch_add(1, std::memory_order_relaxed);
      inflight.fetch_sub(1, std::memory_order_relaxed);
      completion.conn = std::move(task->conn);
      completion.slot_id = task->slot_id;
      completion.corr = std::move(task->corr);
      completion.verb = std::move(task->verb);
      completion.wall_us = request_us;
      completion.queue_us =
          static_cast<double>(start_ns - task->admit_ns) / 1e3;
      completion.depth_at_admit = task->depth_at_admit;
      completion.trace_id = task->trace_id;
      completion.parent_span = task->parent_span;
      completion.finish_ns = obs::now_ns();
      {
        std::lock_guard<std::mutex> lock(completions_mutex);
        completions.push_back(std::move(completion));
      }
      wake();
    }
  }

  void wake() {
    const char byte = 'C';
    [[maybe_unused]] const ssize_t rc = ::write(wake_w, &byte, 1);
    // A full pipe is fine: the loop drains it and rescans everything.
  }

  // ------------------------------------------------- tracing + tap plumbing

  void store_trace_spans(std::uint64_t trace_id,
                         std::vector<obs::SpanRecord> spans) {
    std::lock_guard<std::mutex> lock(trace_mutex);
    auto it = trace_store.find(trace_id);
    if (it == trace_store.end()) {
      while (trace_order.size() >= kMaxTraces) {
        trace_store.erase(trace_order.front());
        trace_order.pop_front();
      }
      trace_order.push_back(trace_id);
      it = trace_store.emplace(trace_id, std::vector<obs::SpanRecord>{}).first;
    }
    auto& stored = it->second;
    for (auto& span : spans) {
      if (stored.size() >= kMaxSpansPerTrace) break;
      stored.push_back(std::move(span));
    }
  }

  /// Install the journal tap (idempotent).  The callback runs on
  /// whichever thread records the event, so it only touches the
  /// mutex-guarded ring/pending buffer — never connection state.
  void install_tap() {
    if (tap_installed) return;
    tap_installed = true;
    obs::journal_set_tap([this](const char* type, const char* corr,
                                const std::string& line) {
      bool notify = false;
      {
        std::lock_guard<std::mutex> lock(tail_mutex);
        if (options.journal_ring > 0) {
          journal_ring_lines.push_back(line);
          while (journal_ring_lines.size() > options.journal_ring) {
            journal_ring_lines.pop_front();
          }
        }
        if (tailers.load(std::memory_order_relaxed) > 0) {
          if (tail_pending.size() >= kMaxTailPending) {
            tail_pending.erase(tail_pending.begin());
            tail_dropped.fetch_add(1, std::memory_order_relaxed);
          }
          tail_pending.push_back(TailEvent{type, corr, line});
          notify = true;
        }
      }
      if (notify) wake();
    });
  }

  void uninstall_tap() {
    if (!tap_installed) return;
    tap_installed = false;
    obs::journal_set_tap({});
  }

  void record_slow(std::uint64_t conn_id, const Completion& completion) {
    const auto ts_us = std::chrono::duration_cast<std::chrono::microseconds>(
                           Clock::now() - start_time)
                           .count();
    SlowReq req;
    req.ts_us = static_cast<std::uint64_t>(ts_us);
    req.conn = conn_id;
    req.corr = completion.corr;
    req.verb = completion.verb;
    req.wall_us = completion.wall_us;
    req.queue_us = completion.queue_us;
    req.ok = completion.ok;
    req.cache_hit = completion.cache_hit;
    std::lock_guard<std::mutex> lock(slow_mutex);
    slow_ring.push_back(std::move(req));
    while (slow_ring.size() > kSlowRingCap) slow_ring.pop_front();
  }

  /// GET /debug/slowreqs: the slowest recent requests (top 32 of a
  /// 256-deep ring), newest window first sorted by wall time.
  [[nodiscard]] std::string slowreqs_json() {
    std::vector<SlowReq> reqs;
    {
      std::lock_guard<std::mutex> lock(slow_mutex);
      reqs.assign(slow_ring.begin(), slow_ring.end());
    }
    std::sort(reqs.begin(), reqs.end(),
              [](const SlowReq& a, const SlowReq& b) {
                return a.wall_us > b.wall_us;
              });
    if (reqs.size() > 32) reqs.resize(32);
    std::string out = "{\"window\":" + std::to_string(reqs.size()) +
                      ",\"slowest\":[";
    for (std::size_t i = 0; i < reqs.size(); ++i) {
      const auto& r = reqs[i];
      if (i > 0) out += ',';
      out += "{\"corr\":\"" + obs::json_escape(r.corr) + "\",\"verb\":\"" +
             obs::json_escape(r.verb) + "\",\"wall_us\":" +
             std::to_string(static_cast<std::uint64_t>(r.wall_us)) +
             ",\"queue_us\":" +
             std::to_string(static_cast<std::uint64_t>(r.queue_us)) +
             ",\"cache\":\"" + (r.cache_hit ? "hit" : "miss") +
             "\",\"status\":\"" + (r.ok ? "ok" : "error") + "\",\"conn\":" +
             std::to_string(r.conn) + ",\"ts_us\":" + std::to_string(r.ts_us) +
             "}";
    }
    out += "]}\n";
    return out;
  }

  /// One profiling window, on its own thread: arm the SIGPROF sampler,
  /// sleep out the window (drain-aware), answer with folded stacks.
  void profile_main(std::shared_ptr<Conn> conn, std::uint64_t slot_id,
                    double seconds, std::string corr) {
    obs::name_this_thread("serve-profile");
    Completion completion;
    completion.conn = std::move(conn);
    completion.slot_id = slot_id;
    completion.corr = std::move(corr);
    completion.verb = "profile";
    completion.job = false;
    const auto start = Clock::now();
    if (!obs::Sampler::running()) obs::Sampler::reset();
    if (!obs::Sampler::start({})) {
      completion.body = "busy profiling";
    } else {
      const auto deadline =
          start + std::chrono::duration_cast<Clock::duration>(
                      std::chrono::duration<double>(seconds));
      while (Clock::now() < deadline &&
             !draining.load(std::memory_order_relaxed)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
      }
      obs::Sampler::stop();
      completion.ok = true;
      completion.body = "ok profile samples=" +
                        std::to_string(obs::Sampler::sample_count()) +
                        " dropped=" +
                        std::to_string(obs::Sampler::dropped_count()) + "\n" +
                        obs::Sampler::folded_stacks();
    }
    completion.wall_us =
        std::chrono::duration<double, std::micro>(Clock::now() - start)
            .count();
    {
      std::lock_guard<std::mutex> lock(completions_mutex);
      completions.push_back(std::move(completion));
    }
    wake();
    profiling.store(false, std::memory_order_release);
  }

  // -------------------------------------------------------------- the loop

  [[nodiscard]] bool can_read(const Conn& conn) const {
    return !conn.fatal && !conn.peer_eof && !conn.dead &&
           conn.slots.size() < options.client_window &&
           conn.out.size() - conn.out_off < options.max_buffered_bytes;
  }

  void loop_main() {
    obs::name_this_thread("serve-loop");
    std::vector<pollfd> pfds;
    std::vector<std::shared_ptr<Conn>> polled;
    while (true) {
      if (drain_requested.load(std::memory_order_acquire) &&
          !draining.load(std::memory_order_relaxed)) {
        begin_drain();
        // Close already-idle connections immediately: they produce no
        // poll events, so waiting for one would block the drain.
        close_idle_conns();
      }
      if (draining.load(std::memory_order_relaxed) && conns.empty()) break;

      pfds.clear();
      polled.clear();
      pfds.push_back({wake_r, POLLIN, 0});
      const bool poll_listen =
          listen_fd >= 0 && !draining.load(std::memory_order_relaxed);
      if (poll_listen) pfds.push_back({listen_fd, POLLIN, 0});
      const std::size_t conn_base = pfds.size();
      for (auto& [fd, conn] : conns) {
        short events = 0;
        if (can_read(*conn)) events |= POLLIN;
        if (conn->out_off < conn->out.size()) events |= POLLOUT;
        pfds.push_back({fd, events, 0});
        polled.push_back(conn);
      }

      const int rc = ::poll(pfds.data(), static_cast<nfds_t>(pfds.size()), -1);
      if (rc < 0 && errno != EINTR) break;  // unrecoverable poll failure
      if (rc < 0) continue;                 // EINTR: rescan (drain signal)

      if ((pfds[0].revents & POLLIN) != 0) drain_wake_pipe();
      apply_completions();
      apply_tail_events();
      if (poll_listen && (pfds[1].revents & POLLIN) != 0) accept_all();

      for (std::size_t c = 0; c < polled.size(); ++c) {
        const auto& conn = polled[c];
        if (conn->dead) continue;
        const short revents = pfds[conn_base + c].revents;
        if ((revents & POLLOUT) != 0) {
          try_write(conn);
          if (!conn->dead) pump(conn);  // freed write budget may unblock reads
        }
        if (!conn->dead && (revents & POLLIN) != 0) handle_read(conn);
        if (!conn->dead && (revents & (POLLERR | POLLNVAL)) != 0) {
          close_conn(conn);
        }
        if (!conn->dead) maybe_close(conn);
      }
      if (draining.load(std::memory_order_relaxed)) close_idle_conns();
    }
  }

  /// During a drain, connections that owe nothing (no pending slots,
  /// output flushed) are closed so the loop can terminate even with
  /// clients still attached.
  void close_idle_conns() {
    std::vector<std::shared_ptr<Conn>> snapshot;
    snapshot.reserve(conns.size());
    for (auto& [fd, conn] : conns) snapshot.push_back(conn);
    for (const auto& conn : snapshot) maybe_close(conn);
  }

  void begin_drain() {
    draining.store(true, std::memory_order_relaxed);
    if (listen_fd >= 0) {
      ::close(listen_fd);
      listen_fd = -1;
    }
    // Workers finish every admitted job (close() drains the tail), then
    // exit; new jobs are answered `busy draining` before reaching the
    // queue.
    queue.close();
    SOCET_EVENT("serve/drain", {"conns", conns.size()},
                {"queued", queue_depth.load(std::memory_order_relaxed)});
  }

  void drain_wake_pipe() {
    char buffer[256];
    while (true) {
      const ssize_t r = ::read(wake_r, buffer, sizeof(buffer));
      if (r <= 0) break;
    }
  }

  void apply_completions() {
    std::vector<Completion> batch;
    {
      std::lock_guard<std::mutex> lock(completions_mutex);
      batch.swap(completions);
    }
    for (auto& completion : batch) {
      const auto& conn = completion.conn;
      log_access(conn->id, completion.corr, completion.verb,
                 completion.ok ? "ok" : "error", completion.depth_at_admit,
                 completion.wall_us,
                 completion.job ? (completion.cache_hit ? "hit" : "miss")
                                : nullptr);
      if (completion.job) record_slow(conn->id, completion);
      if (completion.trace_id != 0) {
        // The respond span covers worker-finish → event-loop pickup:
        // the tail latency a client sees past the job itself.
        store_trace_spans(
            completion.trace_id,
            {obs::SpanRecord{"serve/respond", 0, obs::new_span_id(),
                             completion.parent_span, completion.finish_ns,
                             obs::now_ns()}});
      }
      if (conn->dead) continue;  // client vanished mid-job: drop result
      for (auto& slot : conn->slots) {
        if (slot.id == completion.slot_id) {
          slot.done = true;
          slot.body = std::move(completion.body);
          break;
        }
      }
      pump(conn);
      if (!conn->dead) maybe_close(conn);
    }
  }

  /// Drain tap events into tailing connections (event-loop thread).
  /// Filters are per-connection; a watcher over its write budget
  /// silently skips events rather than stalling the daemon.
  void apply_tail_events() {
    if (tailers.load(std::memory_order_relaxed) == 0) return;
    std::vector<TailEvent> batch;
    {
      std::lock_guard<std::mutex> lock(tail_mutex);
      batch.swap(tail_pending);
    }
    if (batch.empty()) return;
    std::vector<std::shared_ptr<Conn>> watchers;
    for (auto& [fd, conn] : conns) {
      if (conn->tailing && !conn->dead) watchers.push_back(conn);
    }
    for (const auto& conn : watchers) {
      std::uint64_t dropped = 0;
      for (const auto& event : batch) {
        if (!conn->tail_corr.empty() && event.corr != conn->tail_corr) {
          continue;
        }
        if (!conn->tail_type.empty() &&
            event.type.compare(0, conn->tail_type.size(), conn->tail_type) !=
                0) {
          continue;
        }
        if (conn->out.size() - conn->out_off >= options.max_buffered_bytes) {
          ++dropped;  // slow watcher: this event will never be sent
          continue;   // keep counting the rest of the batch
        }
        conn->out += encode_frame(event.line);
      }
      if (dropped > 0) {
        tail_dropped.fetch_add(dropped, std::memory_order_relaxed);
      }
      try_write(conn);
    }
  }

  void accept_all() {
    while (true) {
      const int fd = ::accept(listen_fd, nullptr, nullptr);
      if (fd < 0) break;
      set_nonblocking(fd);
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      auto conn = std::make_shared<Conn>();
      conn->fd = fd;
      conn->id = next_conn_id++;
      conns.emplace(fd, conn);
      accepted.fetch_add(1, std::memory_order_relaxed);
      open_conns.fetch_add(1, std::memory_order_relaxed);
      SOCET_COUNT("serve/connections");
      SOCET_EVENT("serve/conn", {"conn", conn->id}, {"event", "accept"});
    }
  }

  void handle_read(const std::shared_ptr<Conn>& conn) {
    char buffer[16384];
    while (can_read(*conn)) {
      const ssize_t r = ::read(conn->fd, buffer, sizeof(buffer));
      if (r > 0) {
        conn->reader.feed(buffer, static_cast<std::size_t>(r));
        pump(conn);
        if (r < static_cast<ssize_t>(sizeof(buffer))) break;
      } else if (r == 0) {
        conn->peer_eof = true;  // half-close: still flush pending work
        break;
      } else if (errno == EAGAIN || errno == EWOULDBLOCK) {
        break;
      } else if (errno == EINTR) {
        continue;
      } else {
        close_conn(conn);  // ECONNRESET and friends: client is gone
        return;
      }
    }
  }

  /// Decode and dispatch as many buffered frames as flow control
  /// allows, then surface a protocol error (oversized frame) and flush.
  void pump(const std::shared_ptr<Conn>& conn) {
    while (can_read_frames(*conn)) {
      auto frame = conn->reader.next_frame();
      if (!frame) break;
      dispatch(conn, frame->payload, frame->corr,
               frame->has_trace ? &frame->trace : nullptr);
    }
    if (conn->reader.overflowed() && !conn->fatal) {
      bad_frames.fetch_add(1, std::memory_order_relaxed);
      SOCET_COUNT("serve/bad_frames");
      SOCET_EVENT("serve/frame", {"conn", conn->id}, {"event", "oversized"},
                  {"announced", conn->reader.announced()});
      add_done_slot(conn,
                    "error oversized frame: announced " +
                        std::to_string(conn->reader.announced()) +
                        " bytes (limit " + std::to_string(kMaxFrameBytes) +
                        ")");
      conn->fatal = true;  // close once everything pending has flushed
    }
    flush_ready(conn);
    try_write(conn);
  }

  /// Like can_read, but without the peer_eof guard: frames already
  /// buffered before a half-close still execute.
  [[nodiscard]] bool can_read_frames(const Conn& conn) const {
    return !conn.fatal && !conn.dead &&
           conn.slots.size() < options.client_window &&
           conn.out.size() - conn.out_off < options.max_buffered_bytes;
  }

  void add_done_slot(const std::shared_ptr<Conn>& conn, std::string body) {
    conn->slots.push_back({conn->next_slot_id++, true, std::move(body)});
  }

  /// One FORMATS.md §7 access-log line.  Only ever called from the
  /// event-loop thread (inline verbs and rejects in dispatch, job
  /// completions in apply_completions), so the stream needs no lock.
  void log_access(std::uint64_t conn_id, const std::string& corr,
                  const std::string& verb, const char* status,
                  std::uint64_t depth, double wall_us, const char* cache) {
    if (!access_log.is_open()) return;
    const auto ts_us = std::chrono::duration_cast<std::chrono::microseconds>(
                           Clock::now() - start_time)
                           .count();
    std::string entry = "{\"type\":\"serve.access\",\"ts_us\":" +
                        std::to_string(ts_us) + ",\"conn\":" +
                        std::to_string(conn_id) + ",\"corr\":\"" +
                        obs::json_escape(corr) + "\",\"verb\":\"" +
                        obs::json_escape(verb) + "\",\"status\":\"" + status +
                        "\",\"queue_depth\":" + std::to_string(depth) +
                        ",\"wall_us\":" +
                        std::to_string(static_cast<std::uint64_t>(wall_us)) +
                        ",\"cache\":" +
                        (cache == nullptr ? std::string("null")
                                          : "\"" + std::string(cache) + "\"") +
                        "}\n";
    access_log << entry;
    access_log.flush();
    access_log_bytes += entry.size();
    // Size-based rotation: move the full file to `<path>.1` (replacing
    // any previous rollover) and start fresh.  One generation is kept —
    // a bounded-disk guarantee, not an archive.
    if (options.access_log_max_bytes > 0 &&
        access_log_bytes >= options.access_log_max_bytes) {
      access_log.close();
      const std::string rolled = options.access_log + ".1";
      ::rename(options.access_log.c_str(), rolled.c_str());
      access_log.open(options.access_log, std::ios::trunc);
      access_log_bytes = 0;
    }
  }

  void dispatch(const std::shared_ptr<Conn>& conn, const std::string& line,
                const std::string& corr, const FrameTrace* trace) {
    const std::string verb = first_token(line);
    const std::uint64_t depth = queue_depth.load(std::memory_order_relaxed);
    if (verb == "stats") {
      add_done_slot(conn, "ok stats " + snapshot().text());
      log_access(conn->id, corr, verb, "ok", depth, 0, nullptr);
      return;
    }
    if (verb == "health") {
      add_done_slot(conn, std::string("ok health ") +
                              (draining.load(std::memory_order_relaxed)
                                   ? "draining"
                                   : "serving"));
      log_access(conn->id, corr, verb, "ok", depth, 0, nullptr);
      return;
    }
    if (verb == "metrics") {
      // Prometheus text over the framed protocol — what `socet top`
      // polls so it needs no HTTP listener.
      add_done_slot(conn, "ok metrics\n" + exposition());
      log_access(conn->id, corr, verb, "ok", depth, 0, nullptr);
      return;
    }
    if (verb == "clock") {
      // The clock-offset handshake: answer with this process's
      // monotonic now.  Answered pre-drain so trace collection still
      // works against a draining daemon.
      add_done_slot(conn, "ok clock " + std::to_string(obs::now_ns()));
      log_access(conn->id, corr, verb, "ok", depth, 0, nullptr);
      return;
    }
    if (verb == "spans") {
      dispatch_spans(conn, line, corr, depth);
      return;
    }
    if (verb == "journal") {
      dispatch_journal(conn, corr, depth);
      return;
    }
    if (draining.load(std::memory_order_relaxed)) {
      busy_rejects.fetch_add(1, std::memory_order_relaxed);
      SOCET_COUNT("serve/busy_rejects");
      SOCET_EVENT("serve/busy", {"conn", conn->id}, {"why", "draining"});
      add_done_slot(conn, "busy draining");
      log_access(conn->id, corr, verb, "busy", depth, 0, nullptr);
      return;
    }
    if (verb == "tail") {
      dispatch_tail(conn, line, corr, depth);
      return;
    }
    if (verb == "profile") {
      dispatch_profile(conn, line, corr, depth);
      return;
    }
    if (depth >= options.max_queue) {
      busy_rejects.fetch_add(1, std::memory_order_relaxed);
      SOCET_COUNT("serve/busy_rejects");
      SOCET_EVENT("serve/busy", {"conn", conn->id}, {"why", "queue_full"},
                  {"queue", depth}, {"limit", options.max_queue});
      add_done_slot(conn, "busy queue=" + std::to_string(depth) +
                              " limit=" +
                              std::to_string(options.max_queue));
      log_access(conn->id, corr, verb, "busy", depth, 0, nullptr);
      return;
    }
    requests.fetch_add(1, std::memory_order_relaxed);
    SOCET_COUNT("serve/requests");
    queue_depth.fetch_add(1, std::memory_order_relaxed);
    SOCET_GAUGE_MAX("serve/queue_depth", depth + 1);
    std::uint64_t hwm = queue_hwm.load(std::memory_order_relaxed);
    while (depth + 1 > hwm &&
           !queue_hwm.compare_exchange_weak(hwm, depth + 1,
                                            std::memory_order_relaxed)) {
    }
    const std::uint64_t slot_id = conn->next_slot_id++;
    conn->slots.push_back({slot_id, false, {}});
    Task task;
    task.conn = conn;
    task.slot_id = slot_id;
    task.ordinal = next_ordinal++;
    task.line = line;
    task.corr = corr;
    task.verb = verb;
    task.depth_at_admit = depth + 1;
    if (trace != nullptr) {
      task.trace_id = trace->trace_id;
      task.parent_span = trace->parent_span;
    }
    task.admit_ns = obs::now_ns();
    queue.push(std::move(task));
  }

  /// `spans <trace-id-hex>`: hand back (and release) every span the
  /// daemon captured for the client's trace, as socet-spans-v1 JSONL.
  void dispatch_spans(const std::shared_ptr<Conn>& conn,
                      const std::string& line, const std::string& corr,
                      std::uint64_t depth) {
    const auto tokens = split_tokens(line);
    std::uint64_t trace_id = 0;
    if (tokens.size() == 2) {
      char* end = nullptr;
      trace_id = std::strtoull(tokens[1].c_str(), &end, 16);
      if (end == nullptr || *end != '\0') trace_id = 0;
    }
    if (trace_id == 0) {
      add_done_slot(conn, "error bad spans id '" + line + "'");
      log_access(conn->id, corr, "spans", "error", depth, 0, nullptr);
      return;
    }
    std::vector<obs::SpanRecord> spans;
    {
      std::lock_guard<std::mutex> lock(trace_mutex);
      auto it = trace_store.find(trace_id);
      if (it != trace_store.end()) {
        spans = std::move(it->second);
        trace_store.erase(it);
        trace_order.erase(
            std::find(trace_order.begin(), trace_order.end(), trace_id));
      }
    }
    add_done_slot(conn, "ok spans " + std::to_string(spans.size()) + "\n" +
                            obs::remote_spans_jsonl(spans));
    log_access(conn->id, corr, "spans", "ok", depth, 0, nullptr);
  }

  /// `journal`: the retained decision-journal ring as socet-journal-v1
  /// text, newest lines kept when the ring exceeds the frame budget.
  void dispatch_journal(const std::shared_ptr<Conn>& conn,
                        const std::string& corr, std::uint64_t depth) {
    if (options.journal_ring == 0) {
      add_done_slot(conn,
                    "error journal ring disabled "
                    "(start serve with --journal-ring N)");
      log_access(conn->id, corr, "journal", "error", depth, 0, nullptr);
      return;
    }
    // Stay well under kMaxFrameBytes: walk the ring newest-first until
    // the budget is spent, then emit in chronological order.
    constexpr std::size_t kBodyBudget = 900 * 1024;
    std::vector<std::string> lines;
    {
      std::lock_guard<std::mutex> lock(tail_mutex);
      std::size_t used = 0;
      for (auto it = journal_ring_lines.rbegin();
           it != journal_ring_lines.rend(); ++it) {
        if (used + it->size() + 1 > kBodyBudget) break;
        used += it->size() + 1;
        lines.push_back(*it);
      }
    }
    std::reverse(lines.begin(), lines.end());
    std::string body =
        "ok journal\n{\"schema\":\"socet-journal-v1\",\"events\":" +
        std::to_string(lines.size()) + ",\"kind\":\"ring\"}";
    for (const auto& entry : lines) {
      body += '\n';
      body += entry;
    }
    add_done_slot(conn, std::move(body));
    log_access(conn->id, corr, "journal", "ok", depth, 0, nullptr);
  }

  /// `tail [corr=ID] [type=PREFIX]`: subscribe this connection to the
  /// live journal stream.  The `ok tail` ack flushes in-order; every
  /// later frame on the connection is one journal line.
  void dispatch_tail(const std::shared_ptr<Conn>& conn,
                     const std::string& line, const std::string& corr,
                     std::uint64_t depth) {
    const auto tokens = split_tokens(line);
    std::string filter_corr;
    std::string filter_type;
    for (std::size_t i = 1; i < tokens.size(); ++i) {
      if (tokens[i].rfind("corr=", 0) == 0) {
        filter_corr = tokens[i].substr(5);
      } else if (tokens[i].rfind("type=", 0) == 0) {
        filter_type = tokens[i].substr(5);
      } else {
        add_done_slot(conn, "error bad tail filter '" + tokens[i] + "'");
        log_access(conn->id, corr, "tail", "error", depth, 0, nullptr);
        return;
      }
    }
    if (!conn->tailing) {
      conn->tailing = true;
      tailers.fetch_add(1, std::memory_order_relaxed);
    }
    conn->tail_corr = std::move(filter_corr);
    conn->tail_type = std::move(filter_type);
    install_tap();
    add_done_slot(conn, "ok tail");
    log_access(conn->id, corr, "tail", "ok", depth, 0, nullptr);
  }

  /// `profile [seconds]`: arm the SIGPROF sampler for one window and
  /// answer with folded stacks.  One window at a time, daemon-wide.
  void dispatch_profile(const std::shared_ptr<Conn>& conn,
                        const std::string& line, const std::string& corr,
                        std::uint64_t depth) {
    const auto tokens = split_tokens(line);
    double seconds = 1.0;
    if (tokens.size() >= 2) {
      char* end = nullptr;
      seconds = std::strtod(tokens[1].c_str(), &end);
      if (end == nullptr || *end != '\0' || !(seconds > 0) ||
          seconds > 30.0) {
        add_done_slot(conn, "error bad profile duration '" + tokens[1] +
                                "' (want seconds in (0, 30])");
        log_access(conn->id, corr, "profile", "error", depth, 0, nullptr);
        return;
      }
    }
    if (!obs::sampler_supported()) {
      add_done_slot(conn, "error profiling unsupported on this platform");
      log_access(conn->id, corr, "profile", "error", depth, 0, nullptr);
      return;
    }
    if (obs::Sampler::running() ||
        profiling.exchange(true, std::memory_order_acq_rel)) {
      busy_rejects.fetch_add(1, std::memory_order_relaxed);
      SOCET_COUNT("serve/busy_rejects");
      SOCET_EVENT("serve/busy", {"conn", conn->id}, {"why", "profiling"});
      add_done_slot(conn, "busy profiling");
      log_access(conn->id, corr, "profile", "busy", depth, 0, nullptr);
      return;
    }
    const std::uint64_t slot_id = conn->next_slot_id++;
    conn->slots.push_back({slot_id, false, {}});
    // The previous window's thread has already cleared `profiling`, so
    // joining here blocks for microseconds at most.
    if (profile_thread.joinable()) profile_thread.join();
    profile_thread = std::thread([this, conn, slot_id, seconds, corr] {
      profile_main(conn, slot_id, seconds, corr);
    });
  }

  void flush_ready(const std::shared_ptr<Conn>& conn) {
    while (!conn->slots.empty() && conn->slots.front().done) {
      conn->out += encode_frame(conn->slots.front().body);
      conn->slots.pop_front();
    }
  }

  void try_write(const std::shared_ptr<Conn>& conn) {
    while (conn->out_off < conn->out.size()) {
      const ssize_t w = ::write(conn->fd, conn->out.data() + conn->out_off,
                                conn->out.size() - conn->out_off);
      if (w > 0) {
        conn->out_off += static_cast<std::size_t>(w);
      } else if (errno == EINTR) {
        continue;
      } else if (errno == EAGAIN || errno == EWOULDBLOCK) {
        break;
      } else {
        close_conn(conn);  // EPIPE etc: client stopped reading for good
        return;
      }
    }
    if (conn->out_off == conn->out.size()) {
      conn->out.clear();
      conn->out_off = 0;
    } else if (conn->out_off > 65536) {
      conn->out.erase(0, conn->out_off);
      conn->out_off = 0;
    }
  }

  void maybe_close(const std::shared_ptr<Conn>& conn) {
    const bool flushed = conn->out_off >= conn->out.size();
    const bool idle = conn->slots.empty() && flushed;
    if (!idle) return;
    if (conn->fatal || conn->peer_eof ||
        draining.load(std::memory_order_relaxed)) {
      close_conn(conn);
    }
  }

  void close_conn(const std::shared_ptr<Conn>& conn) {
    if (conn->dead) return;
    if (conn->tailing) {
      conn->tailing = false;
      // Last watcher gone and no retention ring configured: the tap no
      // longer has a consumer, so put the journal back exactly as the
      // daemon's flags left it.
      if (tailers.fetch_sub(1, std::memory_order_relaxed) == 1 &&
          options.journal_ring == 0) {
        uninstall_tap();
      }
    }
    conn->dead = true;
    ::close(conn->fd);
    conns.erase(conn->fd);
    open_conns.fetch_sub(1, std::memory_order_relaxed);
    SOCET_EVENT("serve/conn", {"conn", conn->id}, {"event", "close"});
  }

  /// The full Prometheus exposition: everything in the registry plus a
  /// handful of live server gauges that only exist as atomics here.
  /// (Registry families named `socet_serve_*` already exist — e.g. the
  /// `serve/queue_depth` high-water gauge — so the live values use a
  /// distinct `live_` spelling to keep each family unique.)
  [[nodiscard]] std::string exposition() const {
    std::string out = obs::prometheus_text();
    const ServerStats s = snapshot();
    const auto gauge = [&out](const char* name, std::uint64_t value) {
      out += std::string("# TYPE ") + name + " gauge\n";
      out += std::string(name) + " " + std::to_string(value) + "\n";
    };
    gauge("socet_serve_up", 1);
    gauge("socet_serve_worker_count", s.workers);
    gauge("socet_serve_connections_open", s.connections_open);
    gauge("socet_serve_live_queue_depth", s.queue_depth);
    gauge("socet_serve_queue_depth_hwm", s.queue_depth_hwm);
    gauge("socet_serve_live_inflight", s.inflight);
    gauge("socet_serve_draining", s.draining ? 1 : 0);
    gauge("socet_serve_cache_entries", s.cache_entries);
    gauge("socet_serve_cache_bytes", s.cache_bytes);
    // Monotone counter, not a gauge: journal events lost to slow
    // `socet tail` subscribers (rate() it to spot a chronically
    // lagging watcher).
    out += "# TYPE socet_serve_tail_dropped_total counter\n";
    out += "socet_serve_tail_dropped_total " +
           std::to_string(s.tail_dropped) + "\n";
    // Build identity + start time: the standard Prometheus idiom for
    // "which binary is this and how long has it been up".
    out += "# TYPE socet_build_info gauge\n";
    out += std::string("socet_build_info{version=\"") + obs::build_version() +
           "\",git=\"" + obs::build_git() + "\"} 1\n";
    gauge("socet_start_time_seconds",
          static_cast<std::uint64_t>(start_unix_seconds));
    return out;
  }

  [[nodiscard]] ServerStats snapshot() const {
    ServerStats stats;
    stats.connections_accepted = accepted.load(std::memory_order_relaxed);
    stats.connections_open = open_conns.load(std::memory_order_relaxed);
    stats.requests = requests.load(std::memory_order_relaxed);
    stats.responses = responses.load(std::memory_order_relaxed);
    stats.errors = errors.load(std::memory_order_relaxed);
    stats.busy_rejects = busy_rejects.load(std::memory_order_relaxed);
    stats.bad_frames = bad_frames.load(std::memory_order_relaxed);
    stats.queue_depth = queue_depth.load(std::memory_order_relaxed);
    stats.queue_depth_hwm = queue_hwm.load(std::memory_order_relaxed);
    stats.inflight = inflight.load(std::memory_order_relaxed);
    stats.tail_dropped = tail_dropped.load(std::memory_order_relaxed);
    stats.workers = options.threads;
    stats.draining = draining.load(std::memory_order_relaxed);
    stats.cache = cache.stats();
    stats.cache_entries = cache.size();
    stats.cache_bytes = cache.bytes();
    return stats;
  }
};

Server::Server(ServerOptions options)
    : impl_(std::make_unique<Impl>(std::move(options))) {}

Server::~Server() {
  if (impl_->started && !impl_->joined) {
    request_drain();
    wait();
  }
  if (impl_->listen_fd >= 0) ::close(impl_->listen_fd);
  if (impl_->wake_r >= 0) ::close(impl_->wake_r);
  if (impl_->wake_w >= 0) ::close(impl_->wake_w);
}

void Server::start() {
  util::require(!impl_->started, "server already started");
  util::require(impl_->options.threads >= 1,
                "serve needs at least one worker thread");
  util::require(impl_->options.client_window >= 1,
                "--window must be at least 1");
  util::require(impl_->options.max_queue >= 1,
                "--max-queue must be at least 1");
  impl_->listen_fd = net_listen(impl_->options.host, impl_->options.port);
  impl_->bound_port = local_port(impl_->listen_fd);
  int pipe_fds[2];
  util::require(::pipe(pipe_fds) == 0, "cannot create the wake pipe");
  impl_->wake_r = pipe_fds[0];
  impl_->wake_w = pipe_fds[1];
  set_nonblocking(impl_->wake_r);
  set_nonblocking(impl_->wake_w);
  if (!impl_->options.port_file.empty()) {
    std::ofstream file(impl_->options.port_file);
    file << impl_->bound_port << "\n";
    util::require(file.good(), "cannot write port file '" +
                                   impl_->options.port_file + "'");
  }
  // Telemetry plane: set up before any thread runs so the event loop
  // never races the access-log open and the first scrape finds a window
  // baseline.  Any telemetry flag turns metrics collection on — the
  // registry renders to HTTP/side files only, so wire responses and
  // stdout are untouched.
  if (impl_->options.metrics_http || !impl_->options.access_log.empty()) {
    obs::set_metrics_enabled(true);
    impl_->ticker.start(impl_->options.window_interval);
  }
  if (!impl_->options.access_log.empty()) {
    impl_->access_log.open(impl_->options.access_log, std::ios::app);
    util::require(impl_->access_log.is_open(),
                  "cannot open access log '" + impl_->options.access_log +
                      "'");
    // Seed rotation accounting with whatever an earlier run left behind.
    const auto pos = impl_->access_log.tellp();
    impl_->access_log_bytes =
        pos > 0 ? static_cast<std::uint64_t>(pos) : 0;
  }
  // A journal retention ring needs the tap from the first request on;
  // `tail` subscribers install it lazily otherwise.
  if (impl_->options.journal_ring > 0) impl_->install_tap();
  if (impl_->options.metrics_http) {
    HttpdOptions http_options;
    http_options.host = impl_->options.metrics_host;
    http_options.port = impl_->options.metrics_port;
    http_options.port_file = impl_->options.metrics_port_file;
    Impl* impl = impl_.get();
    impl_->httpd.start(
        http_options,
        [impl](const std::string& method,
               const std::string& path) -> HttpResponse {
          if (method != "GET") {
            return {405, "text/plain; charset=utf-8", "method not allowed\n"};
          }
          if (path == "/metrics") {
            return {200, "text/plain; version=0.0.4; charset=utf-8",
                    impl->exposition()};
          }
          if (path == "/healthz") {
            return {200, "text/plain; charset=utf-8", "ok\n"};
          }
          if (path == "/debug/slowreqs") {
            return {200, "application/json; charset=utf-8",
                    impl->slowreqs_json()};
          }
          if (path == "/readyz") {
            // Readiness flips during drain so a load balancer stops
            // routing to a daemon that will `busy` every job.
            return impl->draining.load(std::memory_order_relaxed)
                       ? HttpResponse{503, "text/plain; charset=utf-8",
                                      "draining\n"}
                       : HttpResponse{200, "text/plain; charset=utf-8",
                                      "ready\n"};
          }
          return {404, "text/plain; charset=utf-8", "not found\n"};
        });
  }
  impl_->workers.reserve(impl_->options.threads);
  for (unsigned t = 0; t < impl_->options.threads; ++t) {
    impl_->workers.emplace_back([this, t] { impl_->worker_main(t); });
  }
  impl_->loop_thread = std::thread([this] { impl_->loop_main(); });
  impl_->started = true;
}

unsigned short Server::port() const { return impl_->bound_port; }

unsigned short Server::metrics_port() const { return impl_->httpd.port(); }

void Server::request_drain() {
  impl_->drain_requested.store(true, std::memory_order_release);
  if (impl_->started) impl_->wake();
}

void Server::wait() {
  if (!impl_->started || impl_->joined) return;
  impl_->loop_thread.join();
  for (auto& worker : impl_->workers) worker.join();
  if (impl_->profile_thread.joinable()) impl_->profile_thread.join();
  impl_->uninstall_tap();
  // The telemetry listener outlives the event loop on purpose: /readyz
  // answers 503 for the whole drain, and the last scrape still sees the
  // final counters.  Stop it only once the daemon is fully quiesced.
  impl_->httpd.stop();
  impl_->ticker.stop();
  if (impl_->access_log.is_open()) impl_->access_log.close();
  impl_->joined = true;
}

ServerStats Server::stats() const { return impl_->snapshot(); }

void Server::install_signal_handlers() {
  util::require(impl_->started,
                "install_signal_handlers needs a started server");
  g_signal_drain_flag = &impl_->drain_requested;
  g_signal_wake_fd.store(impl_->wake_w, std::memory_order_relaxed);
  struct sigaction action = {};
  action.sa_handler = on_drain_signal;
  ::sigemptyset(&action.sa_mask);
  ::sigaction(SIGTERM, &action, nullptr);
  ::sigaction(SIGINT, &action, nullptr);
}

}  // namespace socet::service
