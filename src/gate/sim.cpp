#include "socet/gate/sim.hpp"

namespace socet::gate {

void eval_comb(const GateNetlist& netlist, std::vector<std::uint64_t>& values) {
  util::require(values.size() == netlist.gate_count(),
                "eval_comb: value vector size mismatch");
  const auto& gates = netlist.gates();
  for (GateId id : netlist.topo_order()) {
    const Gate& g = gates[id.index()];
    std::uint64_t v = 0;
    switch (g.kind) {
      case GateKind::kInput:
      case GateKind::kDff:
        continue;  // preset by caller
      case GateKind::kConst0:
        v = 0;
        break;
      case GateKind::kConst1:
        v = ~0ULL;
        break;
      case GateKind::kBuf:
        v = values[g.fanin[0].index()];
        break;
      case GateKind::kNot:
        v = ~values[g.fanin[0].index()];
        break;
      case GateKind::kAnd:
      case GateKind::kNand:
        v = ~0ULL;
        for (GateId f : g.fanin) v &= values[f.index()];
        if (g.kind == GateKind::kNand) v = ~v;
        break;
      case GateKind::kOr:
      case GateKind::kNor:
        v = 0;
        for (GateId f : g.fanin) v |= values[f.index()];
        if (g.kind == GateKind::kNor) v = ~v;
        break;
      case GateKind::kXor:
        v = values[g.fanin[0].index()] ^ values[g.fanin[1].index()];
        break;
      case GateKind::kXnor:
        v = ~(values[g.fanin[0].index()] ^ values[g.fanin[1].index()]);
        break;
    }
    values[id.index()] = v;
  }
}

SequentialSim::SequentialSim(const GateNetlist& netlist)
    : netlist_(netlist),
      values_(netlist.gate_count(), 0),
      state_(netlist.dffs().size(), 0) {}

void SequentialSim::reset() {
  state_.assign(state_.size(), 0);
  values_.assign(values_.size(), 0);
}

void SequentialSim::step(const std::vector<std::uint64_t>& pi_values) {
  const auto& inputs = netlist_.inputs();
  util::require(pi_values.size() == inputs.size(),
                "SequentialSim::step: wrong number of input words");
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    values_[inputs[i].index()] = pi_values[i];
  }
  const auto& dffs = netlist_.dffs();
  for (std::size_t i = 0; i < dffs.size(); ++i) {
    values_[dffs[i].index()] = state_[i];
  }
  eval_comb(netlist_, values_);
  for (std::size_t i = 0; i < dffs.size(); ++i) {
    state_[i] = values_[netlist_.gate(dffs[i]).fanin[0].index()];
  }
  // Re-settle with the captured state so values() presents the post-edge
  // view: Q pins show the newly loaded data under the same held inputs.
  for (std::size_t i = 0; i < dffs.size(); ++i) {
    values_[dffs[i].index()] = state_[i];
  }
  eval_comb(netlist_, values_);
}

}  // namespace socet::gate
