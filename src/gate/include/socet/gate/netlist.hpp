// Gate-level netlist.
//
// The synthesis module elaborates RTL cores into this representation; the
// fault simulator and the PODEM test generator operate on it.  Only
// primitive cells appear (simple gates plus D flip-flops) — multiplexers
// and functional units are decomposed during elaboration.
//
// Full-scan view: when a circuit is tested with HSCAN or FSCAN, every
// flip-flop is controllable and observable through scan.  Algorithms that
// need the combinational view treat each DFF's Q as a pseudo primary input
// (PPI) and each DFF's D as a pseudo primary output (PPO).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "socet/util/error.hpp"
#include "socet/util/ids.hpp"

namespace socet::gate {

struct GateTag {};
using GateId = util::Id<GateTag>;

enum class GateKind : std::uint8_t {
  kInput,  ///< primary input (no fanin)
  kConst0,
  kConst1,
  kBuf,
  kNot,
  kAnd,   ///< n-ary
  kOr,    ///< n-ary
  kNand,  ///< n-ary
  kNor,   ///< n-ary
  kXor,   ///< 2-input
  kXnor,  ///< 2-input
  kDff,   ///< single fanin (D); Q is this gate's output value
};

struct Gate {
  GateKind kind = GateKind::kBuf;
  std::vector<GateId> fanin;
  std::string name;  ///< optional; useful for diagnostics
};

/// Area in "cells" (gate-equivalents) per primitive, used for all the
/// paper's area-overhead accounting.  One combinational cell = 1; a flip
/// flop is several gate-equivalents.
struct CellLibrary {
  double gate_area = 1.0;
  double dff_area = 4.0;

  [[nodiscard]] double area_of(GateKind kind) const {
    switch (kind) {
      case GateKind::kInput:
      case GateKind::kConst0:
      case GateKind::kConst1:
        return 0.0;
      case GateKind::kDff:
        return dff_area;
      default:
        return gate_area;
    }
  }
};

class GateNetlist {
 public:
  explicit GateNetlist(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  GateId add_input(const std::string& name);
  GateId add_gate(GateKind kind, std::vector<GateId> fanin,
                  const std::string& name = {});
  GateId add_dff(GateId d, const std::string& name = {});

  /// Create a DFF whose D input is wired up later with set_dff_input —
  /// needed when flip-flop outputs feed logic that eventually computes
  /// their own next-state (the usual case).
  GateId add_dff_floating(const std::string& name = {});
  void set_dff_input(GateId dff, GateId d);

  /// Mark a gate's output as a primary output of the circuit.
  void mark_output(GateId gate);

  const std::vector<Gate>& gates() const { return gates_; }
  const Gate& gate(GateId id) const { return gates_.at(id.index()); }
  const std::vector<GateId>& inputs() const { return inputs_; }
  const std::vector<GateId>& outputs() const { return outputs_; }
  const std::vector<GateId>& dffs() const { return dffs_; }

  std::size_t gate_count() const { return gates_.size(); }
  /// Count of combinational cells + flip-flops (excludes inputs/constants).
  std::size_t cell_count() const;
  double area(const CellLibrary& lib = {}) const;

  /// Gates in combinational topological order: inputs, constants and DFFs
  /// first (as value sources), then every combinational gate after its
  /// fanins.  Throws util::Error on a combinational cycle.
  const std::vector<GateId>& topo_order() const;

  /// Fanout lists (computed lazily alongside topo_order).
  const std::vector<std::vector<GateId>>& fanouts() const;

 private:
  void build_order() const;

  std::string name_;
  std::vector<Gate> gates_;
  std::vector<GateId> inputs_;
  std::vector<GateId> outputs_;
  std::vector<GateId> dffs_;

  mutable std::vector<GateId> topo_;          // cached
  mutable std::vector<std::vector<GateId>> fanouts_;  // cached
  mutable bool order_valid_ = false;
};

}  // namespace socet::gate
