// Gate-level logic simulation, 64 patterns in parallel.
//
// Each gate's value is a 64-bit word: bit k is the gate's logic value under
// pattern k.  This is the classic parallel-pattern technique that the fault
// simulator builds on.
#pragma once

#include <cstdint>
#include <vector>

#include "socet/gate/netlist.hpp"

namespace socet::gate {

/// Evaluates the combinational view of `netlist`.
///
/// `values` must have one word per gate.  The caller presets the words of
/// primary inputs and DFF outputs (pseudo primary inputs); `eval` fills in
/// every other gate, including constants.
void eval_comb(const GateNetlist& netlist, std::vector<std::uint64_t>& values);

/// Cycle-accurate sequential simulator (64 parallel runs).
class SequentialSim {
 public:
  explicit SequentialSim(const GateNetlist& netlist);

  /// Reset all flip-flops to 0 in every parallel run.
  void reset();

  /// Apply one clock cycle: `pi_values[i]` is the 64-pattern word for
  /// `netlist.inputs()[i]`.  After the call, `values()` holds the settled
  /// combinational values and the flip-flops have captured.
  void step(const std::vector<std::uint64_t>& pi_values);

  /// Word of an arbitrary gate after the last step().
  std::uint64_t value(GateId gate) const { return values_.at(gate.index()); }

  const std::vector<std::uint64_t>& values() const { return values_; }

 private:
  const GateNetlist& netlist_;
  std::vector<std::uint64_t> values_;
  std::vector<std::uint64_t> state_;  ///< DFF contents, indexed like dffs()
};

}  // namespace socet::gate
