#include "socet/gate/netlist.hpp"

#include <algorithm>

namespace socet::gate {

namespace {

bool arity_ok(GateKind kind, std::size_t n) {
  switch (kind) {
    case GateKind::kInput:
    case GateKind::kConst0:
    case GateKind::kConst1:
      return n == 0;
    case GateKind::kBuf:
    case GateKind::kNot:
    case GateKind::kDff:
      return n == 1;
    case GateKind::kXor:
    case GateKind::kXnor:
      return n == 2;
    case GateKind::kAnd:
    case GateKind::kOr:
    case GateKind::kNand:
    case GateKind::kNor:
      return n >= 2;
  }
  return false;
}

}  // namespace

GateId GateNetlist::add_input(const std::string& name) {
  gates_.push_back(Gate{GateKind::kInput, {}, name});
  const GateId id(static_cast<std::uint32_t>(gates_.size() - 1));
  inputs_.push_back(id);
  order_valid_ = false;
  return id;
}

GateId GateNetlist::add_gate(GateKind kind, std::vector<GateId> fanin,
                             const std::string& name) {
  util::require(kind != GateKind::kInput, "add_gate: use add_input");
  util::require(kind != GateKind::kDff, "add_gate: use add_dff");
  util::require(arity_ok(kind, fanin.size()),
                "add_gate: wrong fanin count for gate kind on '" + name + "'");
  for (GateId f : fanin) {
    util::require(f.index() < gates_.size(), "add_gate: dangling fanin");
  }
  gates_.push_back(Gate{kind, std::move(fanin), name});
  order_valid_ = false;
  return GateId(static_cast<std::uint32_t>(gates_.size() - 1));
}

GateId GateNetlist::add_dff(GateId d, const std::string& name) {
  util::require(d.index() < gates_.size(), "add_dff: dangling fanin");
  gates_.push_back(Gate{GateKind::kDff, {d}, name});
  const GateId id(static_cast<std::uint32_t>(gates_.size() - 1));
  dffs_.push_back(id);
  order_valid_ = false;
  return id;
}

GateId GateNetlist::add_dff_floating(const std::string& name) {
  gates_.push_back(Gate{GateKind::kDff, {}, name});
  const GateId id(static_cast<std::uint32_t>(gates_.size() - 1));
  dffs_.push_back(id);
  order_valid_ = false;
  return id;
}

void GateNetlist::set_dff_input(GateId dff, GateId d) {
  util::require(dff.index() < gates_.size(), "set_dff_input: bad dff id");
  Gate& g = gates_[dff.index()];
  util::require(g.kind == GateKind::kDff, "set_dff_input: gate is not a DFF");
  util::require(g.fanin.empty(), "set_dff_input: D already connected");
  util::require(d.index() < gates_.size(), "set_dff_input: dangling fanin");
  g.fanin = {d};
  order_valid_ = false;
}

void GateNetlist::mark_output(GateId gate) {
  util::require(gate.index() < gates_.size(), "mark_output: bad gate id");
  outputs_.push_back(gate);
}

std::size_t GateNetlist::cell_count() const {
  std::size_t n = 0;
  for (const auto& g : gates_) {
    if (g.kind != GateKind::kInput && g.kind != GateKind::kConst0 &&
        g.kind != GateKind::kConst1) {
      ++n;
    }
  }
  return n;
}

double GateNetlist::area(const CellLibrary& lib) const {
  double total = 0.0;
  for (const auto& g : gates_) total += lib.area_of(g.kind);
  return total;
}

const std::vector<GateId>& GateNetlist::topo_order() const {
  if (!order_valid_) build_order();
  return topo_;
}

const std::vector<std::vector<GateId>>& GateNetlist::fanouts() const {
  if (!order_valid_) build_order();
  return fanouts_;
}

void GateNetlist::build_order() const {
  const std::size_t n = gates_.size();
  for (const GateId id : dffs_) {
    util::require(gates_[id.index()].fanin.size() == 1,
                  "topo_order: DFF left floating in " + name_);
  }
  fanouts_.assign(n, {});
  std::vector<std::uint32_t> pending(n, 0);

  for (std::size_t i = 0; i < n; ++i) {
    const auto& g = gates_[i];
    if (g.kind == GateKind::kDff) continue;  // DFF is a source in comb. view
    pending[i] = static_cast<std::uint32_t>(g.fanin.size());
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (GateId f : gates_[i].fanin) {
      fanouts_[f.index()].push_back(GateId(static_cast<std::uint32_t>(i)));
    }
  }

  topo_.clear();
  topo_.reserve(n);
  std::vector<GateId> ready;
  for (std::size_t i = 0; i < n; ++i) {
    if (pending[i] == 0) ready.push_back(GateId(static_cast<std::uint32_t>(i)));
  }
  while (!ready.empty()) {
    const GateId id = ready.back();
    ready.pop_back();
    topo_.push_back(id);
    for (GateId out : fanouts_[id.index()]) {
      if (gates_[out.index()].kind == GateKind::kDff) continue;
      if (--pending[out.index()] == 0) ready.push_back(out);
    }
  }
  util::require(topo_.size() == n,
                "topo_order: combinational cycle in " + name_);
  order_valid_ = true;
}

}  // namespace socet::gate
