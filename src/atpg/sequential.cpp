#include "socet/atpg/sequential.hpp"

#include <algorithm>

namespace socet::atpg {

namespace {

using faultsim::Fault;
using faultsim::FaultStatus;
using gate::GateId;
using gate::GateKind;

}  // namespace

UnrolledCircuit unroll(const gate::GateNetlist& sequential, unsigned frames) {
  util::require(frames >= 1, "unroll: need at least one frame");
  UnrolledCircuit out;
  out.netlist = gate::GateNetlist(sequential.name() + ".x" +
                                  std::to_string(frames));
  out.frames = frames;
  out.frame_map.assign(frames, std::vector<GateId>(sequential.gate_count()));
  out.pi_map.assign(frames, {});

  GateId const0;
  bool have_const0 = false;
  auto zero = [&]() {
    if (!have_const0) {
      const0 = out.netlist.add_gate(GateKind::kConst0, {}, "reset0");
      have_const0 = true;
    }
    return const0;
  };

  const auto& order = sequential.topo_order();
  for (unsigned f = 0; f < frames; ++f) {
    auto& map = out.frame_map[f];
    for (GateId id : order) {
      const auto& g = sequential.gate(id);
      switch (g.kind) {
        case GateKind::kInput: {
          map[id.index()] =
              out.netlist.add_input(g.name + "@" + std::to_string(f));
          break;
        }
        case GateKind::kDff: {
          // Frame 0 reads the reset state; later frames read the previous
          // frame's D value.  An explicit BUF keeps the flip-flop's output
          // a distinct line so its stem faults map onto exactly one site
          // per frame (aliasing the driver would corrupt the previous
          // frame's own readers of that driver).
          const GateId src =
              f == 0 ? zero() : out.frame_map[f - 1][g.fanin[0].index()];
          map[id.index()] =
              out.netlist.add_gate(GateKind::kBuf, {src}, g.name);
          break;
        }
        default: {
          std::vector<GateId> fanin;
          fanin.reserve(g.fanin.size());
          for (GateId src : g.fanin) fanin.push_back(map[src.index()]);
          map[id.index()] =
              out.netlist.add_gate(g.kind, std::move(fanin), g.name);
          break;
        }
      }
    }
    for (GateId po : sequential.outputs()) {
      out.netlist.mark_output(map[po.index()]);
    }
    // pi_map is indexed by the *original* input position (topo order may
    // visit sources in any order, so record the correspondence explicitly).
    for (GateId original : sequential.inputs()) {
      out.pi_map[f].push_back(map[original.index()]);
    }
  }
  return out;
}

std::vector<Fault> map_fault(const UnrolledCircuit& unrolled,
                             const Fault& fault) {
  std::vector<Fault> sites;
  for (unsigned f = 0; f < unrolled.frames; ++f) {
    const GateId mapped = unrolled.frame_map[f][fault.gate.index()];
    // DFF sites alias an earlier frame's gate (or the reset constant) —
    // a stem fault there is a stem fault on the aliased gate, which an
    // earlier frame's site already covers; skip duplicates and constants.
    const auto kind = unrolled.netlist.gate(mapped).kind;
    if (kind == GateKind::kConst0 || kind == GateKind::kConst1) continue;
    bool duplicate = false;
    for (const Fault& existing : sites) duplicate |= existing.gate == mapped;
    if (duplicate) continue;
    sites.push_back(Fault{mapped, fault.pin, fault.stuck_at});
  }
  return sites;
}

SeqAtpgResult sequential_atpg(const gate::GateNetlist& netlist,
                              const SeqAtpgOptions& options) {
  SeqAtpgResult result;
  result.faults = faultsim::enumerate_faults(netlist);
  result.statuses.assign(result.faults.size(), FaultStatus::kUndetected);

  faultsim::SequentialFaultSim sim(netlist);

  // Phase 1: one random sequence from reset (kept if useful).
  util::Rng rng(options.seed);
  if (options.random_cycles > 0) {
    std::vector<util::BitVector> sequence;
    for (unsigned c = 0; c < options.random_cycles; ++c) {
      sequence.push_back(
          util::BitVector::random(netlist.inputs().size(), rng));
    }
    const auto before = faultsim::summarize(result.statuses).detected;
    sim.run(result.faults, sequence, result.statuses);
    if (faultsim::summarize(result.statuses).detected > before) {
      result.sequences.push_back(std::move(sequence));
    }
  }

  // Phase 2: time-frame PODEM with growing horizons.
  std::vector<unsigned> horizons;
  for (unsigned k = 1; k <= options.max_frames; k *= 2) horizons.push_back(k);
  if (horizons.empty() || horizons.back() != options.max_frames) {
    horizons.push_back(options.max_frames);
  }

  for (unsigned k : horizons) {
    const UnrolledCircuit unrolled = unroll(netlist, k);
    PodemOptions podem_options;
    podem_options.backtrack_limit = options.backtrack_limit;

    // Pattern bits are indexed by the unrolled circuit's inputs() order;
    // map each unrolled input gate back to its bit position.
    std::vector<std::size_t> bit_of(unrolled.netlist.gate_count(), 0);
    for (std::size_t p = 0; p < unrolled.netlist.inputs().size(); ++p) {
      bit_of[unrolled.netlist.inputs()[p].index()] = p;
    }

    for (std::size_t fi = 0; fi < result.faults.size(); ++fi) {
      if (result.statuses[fi] != FaultStatus::kUndetected) continue;
      const auto sites = map_fault(unrolled, result.faults[fi]);
      if (sites.empty()) continue;  // fault site vanished (reset constant)
      PodemResult pr = podem_multi(unrolled.netlist, sites, podem_options);
      if (pr.outcome != PodemResult::Outcome::kFound) continue;

      // Decode the per-frame input assignment into a cycle sequence.
      std::vector<util::BitVector> sequence(
          k, util::BitVector(netlist.inputs().size()));
      for (unsigned f = 0; f < k; ++f) {
        for (std::size_t i = 0; i < unrolled.pi_map[f].size(); ++i) {
          sequence[f].set(
              i, pr.pattern.pi.get(bit_of[unrolled.pi_map[f][i].index()]));
        }
      }
      // Independent verification + dropping through the sequential
      // simulator; only verified sequences are kept.
      const auto before = result.statuses[fi];
      sim.run(result.faults, sequence, result.statuses);
      if (result.statuses[fi] == FaultStatus::kDetected) {
        result.sequences.push_back(std::move(sequence));
      } else {
        result.statuses[fi] = before;  // defensive; should not happen
      }
    }
  }

  // Bounded horizons cannot prove redundancy: leftovers are aborted.
  for (auto& status : result.statuses) {
    if (status == FaultStatus::kUndetected) status = FaultStatus::kAborted;
  }
  return result;
}

}  // namespace socet::atpg
