#include "socet/atpg/atpg.hpp"

#include <algorithm>

#include "socet/obs/metrics.hpp"
#include "socet/obs/resource.hpp"
#include "socet/obs/trace.hpp"

namespace socet::atpg {

namespace {

using faultsim::Fault;
using faultsim::FaultStatus;
using faultsim::ParallelScanFaultSim;
using faultsim::ParallelSimOptions;
using faultsim::ScanFaultSim;
using faultsim::ScanPattern;

ParallelSimOptions sim_options(unsigned threads) {
  ParallelSimOptions o;
  o.threads = threads;  // 0 keeps the simulator's hardware-concurrency pick
  return o;
}

ScanPattern random_pattern(const gate::GateNetlist& netlist, util::Rng& rng) {
  ScanPattern p;
  p.pi = util::BitVector::random(netlist.inputs().size(), rng);
  p.ppi = util::BitVector::random(netlist.dffs().size(), rng);
  return p;
}

}  // namespace

AtpgResult generate_tests(const gate::GateNetlist& netlist,
                          const AtpgOptions& options) {
  SOCET_SPAN("atpg/generate_tests");
  SOCET_RESOURCE_SCOPE("atpg/generate_tests");
  AtpgResult result;
  result.faults = faultsim::enumerate_faults(netlist);
  result.statuses.assign(result.faults.size(), FaultStatus::kUndetected);

  util::Rng rng(options.seed);
  ParallelScanFaultSim sim(netlist, sim_options(options.sim_threads));

  // Phase 1: random patterns, kept only if they detect something new.
  std::vector<ScanPattern> batch;
  for (unsigned i = 0; i < options.random_patterns; i += 16) {
    batch.clear();
    for (unsigned k = 0; k < 16 && i + k < options.random_patterns; ++k) {
      batch.push_back(random_pattern(netlist, rng));
    }
    auto before = faultsim::summarize(result.statuses).detected;
    sim.run(result.faults, batch, result.statuses);
    auto after = faultsim::summarize(result.statuses).detected;
    if (after > before) {
      SOCET_COUNT_N("atpg/random_patterns_kept", batch.size());
      result.patterns.insert(result.patterns.end(), batch.begin(),
                             batch.end());
    }
  }

  // Phase 2: deterministic PODEM, two passes — a fail-fast pass with a
  // small backtrack budget (most faults are easy; fault dropping thins the
  // list), then a patient pass for the leftovers.
  const unsigned limits[2] = {
      std::min(options.backtrack_limit, 24u), options.backtrack_limit};
  for (unsigned pass = 0; pass < 2; ++pass) {
    PodemOptions podem_options;
    podem_options.backtrack_limit = limits[pass];
    for (std::size_t fi = 0; fi < result.faults.size(); ++fi) {
      if (result.statuses[fi] != FaultStatus::kUndetected &&
          !(pass == 1 && result.statuses[fi] == FaultStatus::kAborted)) {
        continue;
      }
      PodemResult pr = podem(netlist, result.faults[fi], podem_options);
      SOCET_COUNT("atpg/podem_calls");
      SOCET_COUNT_N("atpg/backtracks", pr.backtracks);
      switch (pr.outcome) {
        case PodemResult::Outcome::kUntestable:
          result.statuses[fi] = FaultStatus::kUntestable;
          break;
        case PodemResult::Outcome::kAborted:
          result.statuses[fi] = FaultStatus::kAborted;
          break;
        case PodemResult::Outcome::kFound: {
          result.statuses[fi] = FaultStatus::kUndetected;  // for the sim
          // Random-fill the don't-cares for incidental detection.
          for (std::size_t b = 0; b < pr.pi_dont_care.size(); ++b) {
            if (pr.pi_dont_care[b]) pr.pattern.pi.set(b, rng.next_bool());
          }
          for (std::size_t b = 0; b < pr.ppi_dont_care.size(); ++b) {
            if (pr.ppi_dont_care[b]) pr.pattern.ppi.set(b, rng.next_bool());
          }
          sim.run(result.faults, {pr.pattern}, result.statuses);
          SOCET_ASSERT(result.statuses[fi] == FaultStatus::kDetected,
                       "PODEM pattern failed to detect its target fault");
          result.patterns.push_back(std::move(pr.pattern));
          break;
        }
      }
    }
  }

  // Final regrade: a fault that aborted early may still be detected
  // incidentally by patterns generated later (dropping skipped it once it
  // was marked).  One full-set simulation settles it.
  std::vector<std::size_t> aborted;
  for (std::size_t fi = 0; fi < result.faults.size(); ++fi) {
    if (result.statuses[fi] == FaultStatus::kAborted) {
      aborted.push_back(fi);
      result.statuses[fi] = FaultStatus::kUndetected;
    }
  }
  if (!aborted.empty()) {
    sim.run(result.faults, result.patterns, result.statuses);
    for (std::size_t fi : aborted) {
      if (result.statuses[fi] == FaultStatus::kUndetected) {
        result.statuses[fi] = FaultStatus::kAborted;
      }
    }
  }
  std::size_t aborted_final = 0;
  for (const FaultStatus status : result.statuses) {
    if (status == FaultStatus::kAborted) ++aborted_final;
  }
  SOCET_COUNT_N("atpg/aborted_faults", aborted_final);
  return result;
}

faultsim::CoverageSummary grade_patterns(
    const gate::GateNetlist& netlist,
    const std::vector<ScanPattern>& patterns, unsigned sim_threads) {
  auto faults = faultsim::enumerate_faults(netlist);
  std::vector<FaultStatus> statuses(faults.size(), FaultStatus::kUndetected);
  ParallelScanFaultSim sim(netlist, sim_options(sim_threads));
  sim.run(faults, patterns, statuses);
  return faultsim::summarize(statuses);
}

std::vector<ScanPattern> compact_patterns(
    const gate::GateNetlist& netlist,
    const std::vector<ScanPattern>& patterns) {
  auto faults = faultsim::enumerate_faults(netlist);
  std::vector<FaultStatus> statuses(faults.size(), FaultStatus::kUndetected);
  ScanFaultSim sim(netlist);
  std::vector<ScanPattern> kept;
  kept.reserve(patterns.size());
  for (auto it = patterns.rbegin(); it != patterns.rend(); ++it) {
    const auto before = faultsim::summarize(statuses).detected;
    sim.run(faults, {*it}, statuses);
    if (faultsim::summarize(statuses).detected > before) {
      kept.push_back(*it);
    }
  }
  // Keep the (reverse-simulation) detection order stable for determinism.
  std::reverse(kept.begin(), kept.end());
  return kept;
}

std::vector<util::BitVector> random_sequence(const gate::GateNetlist& netlist,
                                             std::size_t cycles,
                                             std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<util::BitVector> sequence;
  sequence.reserve(cycles);
  for (std::size_t c = 0; c < cycles; ++c) {
    sequence.push_back(
        util::BitVector::random(netlist.inputs().size(), rng));
  }
  return sequence;
}

faultsim::CoverageSummary sequential_coverage(const gate::GateNetlist& netlist,
                                              std::size_t cycles,
                                              std::uint64_t seed) {
  auto faults = faultsim::enumerate_faults(netlist);
  std::vector<FaultStatus> statuses(faults.size(), FaultStatus::kUndetected);
  faultsim::SequentialFaultSim sim(netlist);
  sim.run(faults, random_sequence(netlist, cycles, seed), statuses);
  return faultsim::summarize(statuses);
}

}  // namespace socet::atpg
