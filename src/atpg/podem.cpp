#include "socet/atpg/podem.hpp"

#include <algorithm>

namespace socet::atpg {

namespace {

using faultsim::Fault;
using gate::Gate;
using gate::GateId;
using gate::GateKind;

V3 v3_not(V3 a) {
  if (a == V3::kX) return V3::kX;
  return a == V3::k0 ? V3::k1 : V3::k0;
}

V3 v3_and(V3 a, V3 b) {
  if (a == V3::k0 || b == V3::k0) return V3::k0;
  if (a == V3::k1 && b == V3::k1) return V3::k1;
  return V3::kX;
}

V3 v3_or(V3 a, V3 b) {
  if (a == V3::k1 || b == V3::k1) return V3::k1;
  if (a == V3::k0 && b == V3::k0) return V3::k0;
  return V3::kX;
}

V3 v3_xor(V3 a, V3 b) {
  if (a == V3::kX || b == V3::kX) return V3::kX;
  return a == b ? V3::k0 : V3::k1;
}

class Podem {
 public:
  Podem(const gate::GateNetlist& netlist, std::vector<Fault> faults,
        const PodemOptions& options)
      : netlist_(netlist), faults_(std::move(faults)), options_(options) {
    util::require(!faults_.empty(), "podem: need at least one fault site");
    // Per-gate fault lookup (at most one site per gate).
    site_pin_.assign(netlist.gate_count(), kNoFault);
    site_value_.assign(netlist.gate_count(), 0);
    for (const Fault& f : faults_) {
      util::require(site_pin_[f.gate.index()] == kNoFault,
                    "podem: two fault sites on one gate");
      site_pin_[f.gate.index()] = f.pin;
      site_value_[f.gate.index()] = f.stuck_at ? 1 : 0;
    }
    // Decision variables: PIs then PPIs.
    for (GateId id : netlist.inputs()) lines_.push_back(id);
    for (GateId id : netlist.dffs()) lines_.push_back(id);
    line_pos_.assign(netlist.gate_count(), -1);
    for (std::size_t i = 0; i < lines_.size(); ++i) {
      line_pos_[lines_[i].index()] = static_cast<std::int32_t>(i);
    }
    assign_.assign(lines_.size(), V3::kX);
    good_.assign(netlist.gate_count(), V3::kX);
    faulty_.assign(netlist.gate_count(), V3::kX);

    observe_ = netlist.outputs();
    for (GateId dff : netlist.dffs()) {
      observe_.push_back(netlist.gate(dff).fanin[0]);
    }
    std::sort(observe_.begin(), observe_.end());
    observe_.erase(std::unique(observe_.begin(), observe_.end()),
                   observe_.end());

    // Static guidance: distance-to-observation for D-frontier selection
    // and logic depth for backtrace input choice (a SCOAP-lite).
    obs_dist_.assign(netlist.gate_count(), kFarAway);
    for (GateId id : observe_) obs_dist_[id.index()] = 0;
    const auto& order = netlist.topo_order();
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
      const unsigned here = obs_dist_[it->index()];
      if (here == kFarAway) continue;
      for (GateId f : netlist.gate(*it).fanin) {
        obs_dist_[f.index()] = std::min(obs_dist_[f.index()], here + 1);
      }
    }
    depth_.assign(netlist.gate_count(), 0);
    for (GateId id : order) {
      unsigned d = 0;
      for (GateId f : netlist.gate(id).fanin) {
        d = std::max(d, depth_[f.index()] + 1);
      }
      const auto kind = netlist.gate(id).kind;
      depth_[id.index()] =
          (kind == GateKind::kInput || kind == GateKind::kDff) ? 0 : d;
    }
  }

  static constexpr unsigned kFarAway = 1u << 30;

  PodemResult run() {
    PodemResult result;
    struct Decision {
      std::size_t pos;
      bool flipped;
    };
    std::vector<Decision> stack;

    imply();
    while (true) {
      if (!conflict() && detected()) {
        result.outcome = PodemResult::Outcome::kFound;
        fill_pattern(result);
        result.backtracks = backtracks_;
        return result;
      }

      std::int32_t obj_pos = -1;
      bool obj_value = false;
      const bool progress =
          !conflict() && x_path_exists() && next_objective(obj_pos, obj_value);

      if (progress) {
        stack.push_back(Decision{static_cast<std::size_t>(obj_pos), false});
        assign_[obj_pos] = obj_value ? V3::k1 : V3::k0;
        imply();
        continue;
      }

      // Backtrack.
      ++backtracks_;
      if (backtracks_ > options_.backtrack_limit) {
        result.outcome = PodemResult::Outcome::kAborted;
        result.backtracks = backtracks_;
        return result;
      }
      bool resumed = false;
      while (!stack.empty()) {
        Decision& top = stack.back();
        if (!top.flipped) {
          top.flipped = true;
          assign_[top.pos] = v3_not(assign_[top.pos]);
          imply();
          resumed = true;
          break;
        }
        assign_[top.pos] = V3::kX;
        stack.pop_back();
      }
      if (!resumed) {
        imply();
        result.outcome = PodemResult::Outcome::kUntestable;
        result.backtracks = backtracks_;
        return result;
      }
    }
  }

 private:
  /// Full-circuit composite implication from the current assignments.
  void imply() {
    for (std::size_t i = 0; i < lines_.size(); ++i) {
      good_[lines_[i].index()] = assign_[i];
      faulty_[lines_[i].index()] = assign_[i];
    }
    // Stem faults on input lines force the faulty side immediately.
    for (GateId id : netlist_.topo_order()) {
      const Gate& g = netlist_.gate(id);
      if (g.kind == GateKind::kInput || g.kind == GateKind::kDff) {
        apply_fault_at(id);
        continue;
      }
      good_[id.index()] = eval3(g, good_, -1, false);
      const std::int32_t pin = site_pin_[id.index()];
      faulty_[id.index()] =
          eval3(g, faulty_, pin >= 0 ? pin : -1,
                site_value_[id.index()] != 0);
      apply_fault_at(id);
    }
  }

  void apply_fault_at(GateId id) {
    if (site_pin_[id.index()] == -1) {  // stem fault
      faulty_[id.index()] = site_value_[id.index()] ? V3::k1 : V3::k0;
    }
  }

  V3 eval3(const Gate& g, const std::vector<V3>& values,
           std::int32_t forced_pin, bool forced_value) const {
    auto in = [&](std::size_t p) -> V3 {
      if (static_cast<std::int32_t>(p) == forced_pin) {
        return forced_value ? V3::k1 : V3::k0;
      }
      return values[g.fanin[p].index()];
    };
    switch (g.kind) {
      case GateKind::kConst0:
        return V3::k0;
      case GateKind::kConst1:
        return V3::k1;
      case GateKind::kBuf:
        return in(0);
      case GateKind::kNot:
        return v3_not(in(0));
      case GateKind::kAnd:
      case GateKind::kNand: {
        V3 v = V3::k1;
        for (std::size_t p = 0; p < g.fanin.size(); ++p) v = v3_and(v, in(p));
        return g.kind == GateKind::kNand ? v3_not(v) : v;
      }
      case GateKind::kOr:
      case GateKind::kNor: {
        V3 v = V3::k0;
        for (std::size_t p = 0; p < g.fanin.size(); ++p) v = v3_or(v, in(p));
        return g.kind == GateKind::kNor ? v3_not(v) : v;
      }
      case GateKind::kXor:
        return v3_xor(in(0), in(1));
      case GateKind::kXnor:
        return v3_not(v3_xor(in(0), in(1)));
      default:
        return V3::kX;
    }
  }

  /// The good-side value a site's line must take to excite that site.
  static V3 required_site_value(const Fault& f) {
    return f.stuck_at ? V3::k0 : V3::k1;
  }

  /// The good-circuit line whose value excites a site: the gate itself
  /// for stem faults, the driving gate for pin faults.
  GateId excitation_line(const Fault& f) const {
    if (f.pin < 0) return f.gate;
    return netlist_.gate(f.gate).fanin[f.pin];
  }

  /// Some site is excited (the fault effect originates somewhere).
  bool excited() const {
    for (const Fault& f : faults_) {
      if (good_[excitation_line(f).index()] == required_site_value(f)) {
        return true;
      }
    }
    return false;
  }

  /// Every site's excitation line settled to the stuck value: no test
  /// exists down this branch.
  bool conflict() const {
    for (const Fault& f : faults_) {
      if (good_[excitation_line(f).index()] !=
          v3_not(required_site_value(f))) {
        return false;
      }
    }
    return true;
  }

  bool is_d(GateId id) const {
    const V3 g = good_[id.index()];
    const V3 f = faulty_[id.index()];
    return g != V3::kX && f != V3::kX && g != f;
  }

  /// A line is still assignable/propagatable when either side is unknown.
  /// (Inside the fault cone the two sides diverge: a line can be known
  /// good but X faulty — e.g. AND(fault-site, unassigned) — and the
  /// objective machinery must still drive the unassigned support.)
  bool is_x(GateId id) const {
    return good_[id.index()] == V3::kX || faulty_[id.index()] == V3::kX;
  }

  bool detected() const {
    return std::any_of(observe_.begin(), observe_.end(),
                       [this](GateId id) { return is_d(id); });
  }

  /// An excited input-pin fault puts the D on the pin itself rather than on
  /// any circuit line, so the fault gate must join the D-frontier directly.
  void pending_pin_sites(std::vector<GateId>& out) const {
    for (const Fault& f : faults_) {
      if (f.pin < 0) continue;
      if (good_[excitation_line(f).index()] != required_site_value(f)) {
        continue;
      }
      if (good_[f.gate.index()] == V3::kX ||
          faulty_[f.gate.index()] == V3::kX) {
        out.push_back(f.gate);
      }
    }
  }

  bool pin_fault_pending() const {
    std::vector<GateId> pending;
    pending_pin_sites(pending);
    return !pending.empty();
  }

  /// D-frontier: gates whose output is X on either side but with a D on
  /// some input (plus fault gates with excited pin faults).
  std::vector<GateId> d_frontier() const {
    std::vector<GateId> frontier;
    pending_pin_sites(frontier);
    for (GateId id : netlist_.topo_order()) {
      const Gate& g = netlist_.gate(id);
      if (g.kind == GateKind::kInput || g.kind == GateKind::kDff) continue;
      if (good_[id.index()] != V3::kX && faulty_[id.index()] != V3::kX) {
        continue;
      }
      for (GateId f : g.fanin) {
        if (is_d(f)) {
          frontier.push_back(id);
          break;
        }
      }
    }
    return frontier;
  }

  /// Does any D still have a potential sensitized path to an observe point
  /// through X gates?
  bool x_path_exists() const {
    if (!excited()) return true;  // excitation itself is still pending
    if (detected()) return true;
    std::vector<char> seen(netlist_.gate_count(), 0);
    std::vector<GateId> queue;
    {
      std::vector<GateId> pending;
      pending_pin_sites(pending);
      for (GateId id : pending) {
        if (!seen[id.index()]) {
          queue.push_back(id);
          seen[id.index()] = 1;
        }
      }
    }
    for (GateId id : netlist_.topo_order()) {
      if (is_d(id)) {
        queue.push_back(id);
        seen[id.index()] = 1;
      }
    }
    const auto& fanouts = netlist_.fanouts();
    std::vector<char> observable(netlist_.gate_count(), 0);
    for (GateId id : observe_) observable[id.index()] = 1;
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const GateId id = queue[head];
      if (observable[id.index()]) return true;
      for (GateId next : fanouts[id.index()]) {
        if (seen[next.index()]) continue;
        const Gate& g = netlist_.gate(next);
        if (g.kind == GateKind::kDff) continue;
        // A gate can still pass the effect only if its output is X on some
        // side (otherwise it is already decided).
        if (good_[next.index()] != V3::kX &&
            faulty_[next.index()] != V3::kX) {
          continue;
        }
        seen[next.index()] = 1;
        queue.push_back(next);
      }
    }
    return false;
  }

  /// Pick the next objective (line, value).  Returns false when stuck.
  bool next_objective(std::int32_t& out_pos, bool& out_value) {
    GateId line;
    bool value = false;
    if (!excited()) {
      bool found = false;
      for (const Fault& f : faults_) {
        const GateId candidate = excitation_line(f);
        if (good_[candidate.index()] == V3::kX) {
          line = candidate;
          value = required_site_value(f) == V3::k1;
          found = true;
          break;
        }
      }
      if (!found) return false;
    } else {
      auto frontier = d_frontier();
      if (frontier.empty()) return false;
      GateId chosen = frontier.front();
      for (GateId cand : frontier) {
        if (obs_dist_[cand.index()] < obs_dist_[chosen.index()]) {
          chosen = cand;
        }
      }
      const Gate& g = netlist_.gate(chosen);
      std::int32_t x_pin = -1;
      for (std::size_t p = 0; p < g.fanin.size(); ++p) {
        if (is_x(g.fanin[p])) {
          x_pin = static_cast<std::int32_t>(p);
          break;
        }
      }
      if (x_pin < 0) return false;
      line = g.fanin[x_pin];
      switch (g.kind) {
        case GateKind::kAnd:
        case GateKind::kNand:
          value = true;  // non-controlling
          break;
        case GateKind::kOr:
        case GateKind::kNor:
          value = false;
          break;
        default:
          value = false;  // XOR/XNOR propagate either way
          break;
      }
    }
    return backtrace(line, value, out_pos, out_value);
  }

  /// Walk the objective back to an unassigned input line.
  bool backtrace(GateId line, bool value, std::int32_t& out_pos,
                 bool& out_value) const {
    for (unsigned guard = 0; guard < netlist_.gate_count() + 1; ++guard) {
      const std::int32_t pos = line_pos_[line.index()];
      if (pos >= 0) {
        if (assign_[pos] != V3::kX) return false;  // already decided
        out_pos = pos;
        out_value = value;
        return true;
      }
      const Gate& g = netlist_.gate(line);
      std::int32_t x_pin = -1;
      for (std::size_t p = 0; p < g.fanin.size(); ++p) {
        if (!is_x(g.fanin[p])) continue;
        if (x_pin < 0 ||
            depth_[g.fanin[p].index()] < depth_[g.fanin[x_pin].index()]) {
          x_pin = static_cast<std::int32_t>(p);
        }
      }
      if (x_pin < 0) return false;
      switch (g.kind) {
        case GateKind::kNot:
        case GateKind::kNand:
        case GateKind::kNor:
        case GateKind::kXnor:
          value = !value;
          break;
        default:
          break;  // AND/OR/BUF/XOR keep parity
      }
      line = g.fanin[x_pin];
    }
    return false;
  }

  void fill_pattern(PodemResult& result) const {
    const std::size_t n_pi = netlist_.inputs().size();
    const std::size_t n_ppi = netlist_.dffs().size();
    result.pattern.pi = util::BitVector(n_pi);
    result.pattern.ppi = util::BitVector(n_ppi);
    result.pi_dont_care.assign(n_pi, false);
    result.ppi_dont_care.assign(n_ppi, false);
    for (std::size_t i = 0; i < lines_.size(); ++i) {
      const bool is_pi = i < n_pi;
      const std::size_t k = is_pi ? i : i - n_pi;
      if (assign_[i] == V3::kX) {
        (is_pi ? result.pi_dont_care : result.ppi_dont_care)[k] = true;
      } else if (assign_[i] == V3::k1) {
        (is_pi ? result.pattern.pi : result.pattern.ppi).set(k, true);
      }
    }
  }

  static constexpr std::int32_t kNoFault = -2;

  const gate::GateNetlist& netlist_;
  const std::vector<Fault> faults_;
  const PodemOptions options_;
  std::vector<std::int32_t> site_pin_;   ///< kNoFault / -1 stem / pin index
  std::vector<std::uint8_t> site_value_;

  std::vector<GateId> lines_;
  std::vector<std::int32_t> line_pos_;
  std::vector<V3> assign_;
  std::vector<V3> good_;
  std::vector<V3> faulty_;
  std::vector<GateId> observe_;
  std::vector<unsigned> obs_dist_;
  std::vector<unsigned> depth_;
  unsigned backtracks_ = 0;
};

}  // namespace

PodemResult podem(const gate::GateNetlist& netlist, const faultsim::Fault& fault,
                  const PodemOptions& options) {
  return Podem(netlist, {fault}, options).run();
}

PodemResult podem_multi(const gate::GateNetlist& netlist,
                        const std::vector<faultsim::Fault>& sites,
                        const PodemOptions& options) {
  return Podem(netlist, sites, options).run();
}

}  // namespace socet::atpg
