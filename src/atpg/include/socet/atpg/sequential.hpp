// Sequential ATPG by time-frame expansion — the library's equivalent of
// the paper's "in-house sequential test generation tool" (used for
// Table 3's original-circuit row).
//
// The sequential circuit is unrolled into k combinational frames starting
// from the reset state (frame 0 flip-flops read 0); a permanent stuck-at
// fault becomes one fault site per frame, handled by the multi-site PODEM
// engine; primary outputs of every frame are observable.  A found test is
// a k-cycle input sequence, independently verified against the sequential
// fault simulator before being kept.
//
// Bounded unrolling cannot prove sequential redundancy (a fault untestable
// in k frames may be testable in k+1), so undetected faults are reported
// kAborted, never kUntestable — test efficiency stays honest.
#pragma once

#include <vector>

#include "socet/atpg/podem.hpp"
#include "socet/faultsim/seq_sim.hpp"
#include "socet/util/rng.hpp"

namespace socet::atpg {

/// A sequential circuit unrolled into combinational frames.
struct UnrolledCircuit {
  gate::GateNetlist netlist;
  /// frame_map[f][g] = gate in `netlist` carrying original gate g's value
  /// in frame f.
  std::vector<std::vector<gate::GateId>> frame_map;
  /// pi_map[f][i] = unrolled input gate for original input i in frame f.
  std::vector<std::vector<gate::GateId>> pi_map;
  unsigned frames = 0;

  UnrolledCircuit() : netlist("") {}
};

/// Unroll `sequential` for `frames` cycles from the all-zero reset state.
UnrolledCircuit unroll(const gate::GateNetlist& sequential, unsigned frames);

/// Map a permanent fault of the sequential circuit onto every frame of the
/// unrolled circuit (one multi-site fault list).
std::vector<faultsim::Fault> map_fault(const UnrolledCircuit& unrolled,
                                       const faultsim::Fault& fault);

struct SeqAtpgOptions {
  unsigned max_frames = 6;
  unsigned backtrack_limit = 256;
  /// Random sequential vectors tried (and kept on success) before PODEM.
  unsigned random_cycles = 64;
  std::uint64_t seed = 1;
};

struct SeqAtpgResult {
  /// Each test is a vector-per-cycle input sequence applied from reset.
  std::vector<std::vector<util::BitVector>> sequences;
  std::vector<faultsim::Fault> faults;
  std::vector<faultsim::FaultStatus> statuses;

  [[nodiscard]] faultsim::CoverageSummary coverage() const {
    return faultsim::summarize(statuses);
  }
};

/// Generate test sequences for the (non-scan) sequential circuit.
SeqAtpgResult sequential_atpg(const gate::GateNetlist& netlist,
                              const SeqAtpgOptions& options = {});

}  // namespace socet::atpg
