// Full-scan test generation driver.
//
// This is the library's stand-in for the paper's "commercial combinational
// ATPG tool": a random-pattern phase with fault dropping followed by
// deterministic PODEM for the remaining faults, producing the precomputed
// test set every core ships with, plus fault coverage / test efficiency
// numbers (Table 3's FC and TEff columns).
#pragma once

#include <cstdint>
#include <vector>

#include "socet/atpg/podem.hpp"
#include "socet/faultsim/parallel_sim.hpp"
#include "socet/faultsim/scan_sim.hpp"
#include "socet/faultsim/seq_sim.hpp"
#include "socet/util/rng.hpp"

namespace socet::atpg {

struct AtpgOptions {
  /// Patterns tried in the random phase before PODEM takes over.
  unsigned random_patterns = 64;
  unsigned backtrack_limit = 512;
  std::uint64_t seed = 1;
  /// Worker threads for fault simulation (fault-partitioned; results are
  /// byte-identical at any count).  0 = hardware concurrency, 1 = serial.
  unsigned sim_threads = 1;
};

struct AtpgResult {
  std::vector<faultsim::ScanPattern> patterns;
  std::vector<faultsim::Fault> faults;
  std::vector<faultsim::FaultStatus> statuses;

  [[nodiscard]] faultsim::CoverageSummary coverage() const {
    return faultsim::summarize(statuses);
  }
  /// Number of scan vectors in the generated test set.
  [[nodiscard]] std::size_t vector_count() const { return patterns.size(); }
};

/// Generate a compact full-scan test set for every collapsed stuck-at
/// fault of `netlist`.
AtpgResult generate_tests(const gate::GateNetlist& netlist,
                          const AtpgOptions& options = {});

/// Fault-simulate an existing pattern set (e.g. a neighbouring core's test
/// set or a truncated set) and report coverage.  `sim_threads` as in
/// AtpgOptions: the coverage numbers are identical at any thread count.
faultsim::CoverageSummary grade_patterns(
    const gate::GateNetlist& netlist,
    const std::vector<faultsim::ScanPattern>& patterns,
    unsigned sim_threads = 1);

/// Static test-set compaction: fault-simulate the patterns in reverse
/// order with fault dropping and keep only the ones that detect something
/// new.  (Reverse order works because deterministic patterns late in the
/// set often cover the easy faults the early random patterns were kept
/// for.)  Coverage is preserved exactly; the returned set is typically
/// 20-40% smaller, which shortens every HSCAN sequence and therefore the
/// chip TAT linearly.
std::vector<faultsim::ScanPattern> compact_patterns(
    const gate::GateNetlist& netlist,
    const std::vector<faultsim::ScanPattern>& patterns);

/// Random functional vector sequence for sequential (no-DFT) testing — the
/// paper's "in-house sequential test generation tool" baseline row.
std::vector<util::BitVector> random_sequence(const gate::GateNetlist& netlist,
                                             std::size_t cycles,
                                             std::uint64_t seed);

/// Coverage of `netlist` under random sequential testing from reset.
faultsim::CoverageSummary sequential_coverage(const gate::GateNetlist& netlist,
                                              std::size_t cycles,
                                              std::uint64_t seed);

}  // namespace socet::atpg
