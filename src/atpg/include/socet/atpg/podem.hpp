// PODEM test generation for one stuck-at fault.
//
// Operates on the full-scan combinational view: decision variables are the
// primary inputs and the flip-flop contents (pseudo primary inputs); a
// fault is detected when the composite (good, faulty) simulation shows a
// discrepancy at a primary output or a flip-flop D pin.
//
// The implementation is textbook PODEM: objective selection (activate the
// fault, then advance the D-frontier), backtrace to an input assignment,
// full 5-valued implication, X-path pruning, and chronological
// backtracking with a configurable limit.  Exhausting the decision tree
// proves the fault untestable (redundant).
#pragma once

#include <cstdint>
#include <vector>

#include "socet/faultsim/faults.hpp"
#include "socet/faultsim/scan_sim.hpp"

namespace socet::atpg {

/// Three-valued logic for each of the good and faulty circuits.
enum class V3 : std::uint8_t { k0, k1, kX };

struct PodemOptions {
  unsigned backtrack_limit = 512;
};

struct PodemResult {
  enum class Outcome { kFound, kUntestable, kAborted };
  Outcome outcome = Outcome::kAborted;
  /// Valid when outcome == kFound.  Unassigned inputs are left 0; the
  /// `dont_care` vector flags them so the caller may refill.
  faultsim::ScanPattern pattern;
  std::vector<bool> pi_dont_care;
  std::vector<bool> ppi_dont_care;
  unsigned backtracks = 0;
};

PodemResult podem(const gate::GateNetlist& netlist, const faultsim::Fault& fault,
                  const PodemOptions& options = {});

/// Multi-site PODEM: every site is injected simultaneously (at most one
/// per gate) and a pattern detecting the combined effect is sought.  This
/// is the engine behind time-frame sequential ATPG, where one permanent
/// fault appears once per unrolled frame.
PodemResult podem_multi(const gate::GateNetlist& netlist,
                        const std::vector<faultsim::Fault>& sites,
                        const PodemOptions& options = {});

}  // namespace socet::atpg
