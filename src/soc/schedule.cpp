#include "socet/soc/schedule.hpp"

#include <algorithm>
#include <limits>
#include <queue>

#include <map>
#include <set>

#include "socet/obs/journal.hpp"
#include "socet/obs/metrics.hpp"
#include "socet/obs/resource.hpp"
#include "socet/obs/trace.hpp"

namespace socet::soc {

namespace {

constexpr unsigned kInf = std::numeric_limits<unsigned>::max() / 4;

/// Reservation duration of an edge: latency-0 interconnect still occupies
/// its wire for the cycle in which the value crosses it.
unsigned duration_of(const CcgEdge& edge) {
  return std::max(edge.latency, 1u);
}

struct Label {
  unsigned arrival;
  std::uint32_t node;
  friend bool operator>(const Label& a, const Label& b) {
    return a.arrival > b.arrival;
  }
};

/// Time-aware Dijkstra from a set of sources.  Returns per-node arrival
/// times and predecessor edges.
void dijkstra(const Ccg& ccg, const std::vector<std::uint32_t>& sources,
              const Reservations& reservations, unsigned earliest,
              std::int32_t banned_core, std::vector<unsigned>& arrival,
              std::vector<std::int32_t>& pred_edge) {
  SOCET_COUNT("ccg/dijkstra_runs");
  arrival.assign(ccg.nodes().size(), kInf);
  pred_edge.assign(ccg.nodes().size(), -1);
  std::priority_queue<Label, std::vector<Label>, std::greater<>> heap;
  for (std::uint32_t s : sources) {
    arrival[s] = earliest;
    heap.push(Label{earliest, s});
  }
  while (!heap.empty()) {
    const Label top = heap.top();
    heap.pop();
    if (top.arrival > arrival[top.node]) continue;
    for (std::uint32_t e : ccg.out_edges()[top.node]) {
      const CcgEdge& edge = ccg.edges()[e];
      // The core under test sits in scan mode: its own transparency
      // edges are unavailable for routing.
      if (banned_core >= 0 && edge.core == banned_core) continue;
      // The value departs once the shared resource is free, then takes
      // `latency` cycles to cross.
      SOCET_COUNT("ccg/relaxations");
      const unsigned depart =
          reservations.earliest_free(edge.resource, top.arrival,
                                     duration_of(edge));
      if (depart != top.arrival) SOCET_COUNT("ccg/reservation_conflicts");
      const unsigned reach = depart + edge.latency;
      if (reach < arrival[edge.dst]) {
        arrival[edge.dst] = reach;
        pred_edge[edge.dst] = static_cast<std::int32_t>(e);
        heap.push(Label{reach, edge.dst});
      }
    }
  }
}

Route extract_route(const Ccg& ccg, const std::vector<unsigned>& arrival,
                    const std::vector<std::int32_t>& pred_edge,
                    std::uint32_t target, Reservations& reservations) {
  SOCET_COUNT("ccg/routes_found");
  Route route;
  route.arrival = arrival[target];
  std::uint32_t node = target;
  while (pred_edge[node] >= 0) {
    const std::uint32_t e = static_cast<std::uint32_t>(pred_edge[node]);
    const CcgEdge& edge = ccg.edges()[e];
    const unsigned arrive = arrival[node];
    route.steps.push_back(RouteStep{e, arrive - edge.latency, arrive});
    node = edge.src;
  }
  std::reverse(route.steps.begin(), route.steps.end());
  for (const RouteStep& step : route.steps) {
    reservations.reserve(ccg.edges()[step.edge].resource, step.depart,
                         duration_of(ccg.edges()[step.edge]));
  }
  return route;
}

}  // namespace

unsigned Reservations::earliest_free(std::uint32_t resource, unsigned t,
                                     unsigned duration) const {
  const auto& intervals = busy_.at(resource);
  unsigned start = t;
  bool moved = true;
  while (moved) {
    moved = false;
    for (const auto& [lo, hi] : intervals) {
      if (start < hi && lo < start + duration) {
        start = hi;
        moved = true;
      }
    }
  }
  return start;
}

void Reservations::reserve(std::uint32_t resource, unsigned t,
                           unsigned duration) {
  busy_.at(resource).emplace_back(t, t + duration);
}

std::optional<Route> route_from_pis(const Ccg& ccg, std::uint32_t target,
                                    Reservations& reservations,
                                    unsigned earliest,
                                    std::int32_t banned_core) {
  std::vector<std::uint32_t> sources;
  for (std::uint32_t i = 0; i < ccg.nodes().size(); ++i) {
    if (ccg.nodes()[i].kind == CcgNodeKind::kPi) sources.push_back(i);
  }
  std::vector<unsigned> arrival;
  std::vector<std::int32_t> pred;
  dijkstra(ccg, sources, reservations, earliest, banned_core, arrival, pred);
  if (arrival[target] >= kInf) return std::nullopt;
  return extract_route(ccg, arrival, pred, target, reservations);
}

std::optional<Route> route_to_pos(const Ccg& ccg, std::uint32_t source,
                                  Reservations& reservations,
                                  unsigned earliest,
                                  std::int32_t banned_core) {
  std::vector<unsigned> arrival;
  std::vector<std::int32_t> pred;
  dijkstra(ccg, {source}, reservations, earliest, banned_core, arrival, pred);
  std::uint32_t best = kInf;
  unsigned best_arrival = kInf;
  for (std::uint32_t i = 0; i < ccg.nodes().size(); ++i) {
    if (ccg.nodes()[i].kind == CcgNodeKind::kPo &&
        arrival[i] < best_arrival) {
      best = i;
      best_arrival = arrival[i];
    }
  }
  if (best_arrival >= kInf) return std::nullopt;
  return extract_route(ccg, arrival, pred, best, reservations);
}

ChipTestPlan plan_chip_test(const Soc& soc,
                            const std::vector<unsigned>& selection,
                            const PlanOptions& options) {
  SOCET_SPAN("soc/plan_chip_test");
  SOCET_RESOURCE_SCOPE("soc/plan_chip_test");
  SOCET_COUNT("soc/plans");
  soc.validate();
  Ccg ccg(soc, selection);
  ChipTestPlan plan;
  plan.controller_cells = options.controller_cells;
  for (std::uint32_t c = 0; c < soc.cores().size(); ++c) {
    plan.version_cells += soc.core(c).version(selection[c]).extra_cells;
  }

  std::set<CorePortRef> forced_in(options.forced_input_muxes.begin(),
                                  options.forced_input_muxes.end());
  std::set<CorePortRef> forced_out(options.forced_output_muxes.begin(),
                                   options.forced_output_muxes.end());

  // Journal rendering of a chosen route: the node path with any
  // reservation-forced departure slides called out (` =+2=> ` means the
  // value waited two cycles for the shared resource).  `shift` sums the
  // slides — Section 5.1's serialization cost made visible.
  const auto describe_route = [&ccg, &soc](const Route& route,
                                           unsigned* shift_out) {
    std::string path;
    unsigned shift = 0;
    unsigned at = 0;
    for (std::size_t i = 0; i < route.steps.size(); ++i) {
      const RouteStep& step = route.steps[i];
      const CcgEdge& edge = ccg.edges()[step.edge];
      if (i == 0) path = ccg.node_name(soc, edge.src);
      const unsigned slide = step.depart - at;
      shift += slide;
      path += slide > 0 ? " =+" + std::to_string(slide) + "=> " : " -> ";
      path += ccg.node_name(soc, edge.dst);
      at = step.arrive;
    }
    *shift_out = shift;
    return path;
  };

  for (std::uint32_t c = 0; c < soc.cores().size(); ++c) {
    const core::Core& cut = soc.core(c);
    util::require(cut.scan_vectors() > 0,
                  "plan_chip_test: core '" + cut.name() +
                      "' has no test set (set_scan_vectors first)");
    SOCET_SPAN("ccg/plan_core");
    CoreTestPlan core_plan;
    core_plan.core = c;
    Reservations reservations(ccg.resource_count());

    // Justify every input of the core under test from the chip PIs.
    unsigned period = 1;
    for (std::uint32_t p = 0; p < cut.netlist().ports().size(); ++p) {
      const rtl::PortId port(p);
      if (cut.netlist().port(port).dir != rtl::PortDir::kInput) continue;
      const std::uint32_t target = ccg.core_in_node(CorePortRef{c, port});
      std::optional<Route> route;
      if (!forced_in.count(CorePortRef{c, port})) {
        if (options.ignore_reservations) {
          Reservations scratch(ccg.resource_count());
          route = route_from_pis(ccg, target, scratch, 0,
                                 static_cast<std::int32_t>(c));
        } else {
          route = route_from_pis(ccg, target, reservations, 0,
                                 static_cast<std::int32_t>(c));
        }
      }
      if (!route) {
        SOCET_COUNT("ccg/mux_fallbacks");
        Route mux_route;
        mux_route.via_system_mux = true;
        mux_route.arrival = 1;  // PI -> test mux -> core input, one cycle
        const unsigned mux_cells =
            options.system_mux_per_bit * cut.netlist().port(port).width +
            options.system_mux_control;
        core_plan.system_mux_cells += mux_cells;
        SOCET_EVENT("ccg/mux", {"core", cut.name()},
                    {"port", cut.netlist().port(port).name},
                    {"dir", "justify"},
                    {"width", cut.netlist().port(port).width},
                    {"cells", mux_cells},
                    {"reason", forced_in.count(CorePortRef{c, port}) != 0
                                   ? "forced"
                                   : "no_route"});
        route = mux_route;
      } else if (obs::journal_enabled()) {
        unsigned shift = 0;
        const std::string path = describe_route(*route, &shift);
        SOCET_EVENT("ccg/route", {"core", cut.name()},
                    {"port", cut.netlist().port(port).name},
                    {"dir", "justify"}, {"arrival", route->arrival},
                    {"shift", shift}, {"steps", route->steps.size()},
                    {"path", path});
      }
      period = std::max(period, std::max(route->arrival, 1u));
      core_plan.input_routes.emplace_back(port, std::move(*route));
    }

    // Observe every output at the chip POs.
    Reservations observe_reservations(ccg.resource_count());
    unsigned observe = 0;
    for (std::uint32_t p = 0; p < cut.netlist().ports().size(); ++p) {
      const rtl::PortId port(p);
      if (cut.netlist().port(port).dir != rtl::PortDir::kOutput) continue;
      const std::uint32_t source = ccg.core_out_node(CorePortRef{c, port});
      std::optional<Route> route;
      if (!forced_out.count(CorePortRef{c, port})) {
        if (options.ignore_reservations) {
          Reservations scratch(ccg.resource_count());
          route = route_to_pos(ccg, source, scratch, 0,
                               static_cast<std::int32_t>(c));
        } else {
          route = route_to_pos(ccg, source, observe_reservations, 0,
                               static_cast<std::int32_t>(c));
        }
      }
      if (!route) {
        SOCET_COUNT("ccg/mux_fallbacks");
        Route mux_route;
        mux_route.via_system_mux = true;
        mux_route.arrival = 0;  // core output -> test mux -> PO
        const unsigned mux_cells =
            options.system_mux_per_bit * cut.netlist().port(port).width +
            options.system_mux_control;
        core_plan.system_mux_cells += mux_cells;
        SOCET_EVENT("ccg/mux", {"core", cut.name()},
                    {"port", cut.netlist().port(port).name},
                    {"dir", "observe"},
                    {"width", cut.netlist().port(port).width},
                    {"cells", mux_cells},
                    {"reason", forced_out.count(CorePortRef{c, port}) != 0
                                   ? "forced"
                                   : "no_route"});
        route = mux_route;
      } else if (obs::journal_enabled()) {
        unsigned shift = 0;
        const std::string path = describe_route(*route, &shift);
        SOCET_EVENT("ccg/route", {"core", cut.name()},
                    {"port", cut.netlist().port(port).name},
                    {"dir", "observe"}, {"arrival", route->arrival},
                    {"shift", shift}, {"steps", route->steps.size()},
                    {"path", path});
      }
      observe = std::max(observe, route->arrival);
      core_plan.output_routes.emplace_back(port, std::move(*route));
    }

    // Edge-usage statistics for the optimizer.
    auto count_route = [&](const Route& route) {
      for (const RouteStep& step : route.steps) {
        const CcgEdge& edge = ccg.edges()[step.edge];
        if (edge.core < 0) continue;
        const auto& in = ccg.nodes()[edge.src].core_port.port;
        const auto& out = ccg.nodes()[edge.dst].core_port.port;
        ++plan.edge_use[{static_cast<std::uint32_t>(edge.core), in, out}];
      }
    };
    for (const auto& [port, route] : core_plan.input_routes) {
      count_route(route);
    }
    for (const auto& [port, route] : core_plan.output_routes) {
      count_route(route);
    }

    core_plan.period = period;
    const unsigned depth = cut.hscan().max_depth;
    core_plan.flush = (depth > 0 ? depth - 1 : 0) + observe;
    const unsigned long long vectors = cut.hscan_vectors();
    if (options.allow_pipelining && vectors > 0) {
      // Initiation interval: the busiest resource's occupancy during one
      // vector's justification schedule bounds how often a new vector can
      // be launched behind the previous one.
      std::map<std::uint32_t, unsigned> occupancy;
      unsigned ii = 1;
      for (const auto& [port, route] : core_plan.input_routes) {
        for (const RouteStep& step : route.steps) {
          const CcgEdge& edge = ccg.edges()[step.edge];
          occupancy[edge.resource] += duration_of(edge);
          ii = std::max(ii, occupancy[edge.resource]);
        }
      }
      core_plan.tat = period + (vectors - 1) * ii + core_plan.flush;
    } else {
      core_plan.tat =
          vectors * static_cast<unsigned long long>(period) + core_plan.flush;
    }
    SOCET_EVENT("soc/core_planned", {"core", cut.name()},
                {"version", soc.core(c).version(selection[c]).name},
                {"period", core_plan.period}, {"flush", core_plan.flush},
                {"vectors", vectors}, {"tat", core_plan.tat},
                {"mux_cells", core_plan.system_mux_cells},
                {"pipelined", options.allow_pipelining});
    plan.system_mux_cells += core_plan.system_mux_cells;
    plan.total_tat += core_plan.tat;
    plan.cores.push_back(std::move(core_plan));
  }
  return plan;
}

std::string plan_options_key(const PlanOptions& options) {
  std::string key = "mux=" + std::to_string(options.system_mux_per_bit) + "+" +
                    std::to_string(options.system_mux_control) +
                    ";ctrl=" + std::to_string(options.controller_cells) +
                    ";resv=" + std::to_string(options.ignore_reservations) +
                    ";pipe=" + std::to_string(options.allow_pipelining);
  const auto append_refs = [&key](const char* label,
                                  const std::vector<CorePortRef>& refs) {
    key += std::string(";") + label + "=";
    for (const CorePortRef& ref : refs) {
      key += std::to_string(ref.core) + ":" + std::to_string(ref.port.value()) +
             ",";
    }
  };
  append_refs("fin", options.forced_input_muxes);
  append_refs("fout", options.forced_output_muxes);
  return key;
}

}  // namespace socet::soc
