#include "socet/soc/ccg.hpp"

#include <map>

#include "socet/obs/metrics.hpp"
#include "socet/obs/resource.hpp"
#include "socet/obs/trace.hpp"

namespace socet::soc {

Ccg::Ccg(const Soc& soc, const std::vector<unsigned>& selection) {
  SOCET_SPAN("ccg/build");
  SOCET_RESOURCE_SCOPE("ccg/build");
  util::require(selection.size() == soc.cores().size(),
                "Ccg: selection size must match core count");

  // Nodes: PIs, POs, then per-core ports.
  for (std::uint32_t i = 0; i < soc.pis().size(); ++i) {
    nodes_.push_back(CcgNode{CcgNodeKind::kPi, i, {}});
  }
  for (std::uint32_t i = 0; i < soc.pos().size(); ++i) {
    nodes_.push_back(CcgNode{CcgNodeKind::kPo, i, {}});
  }
  for (std::uint32_t c = 0; c < soc.cores().size(); ++c) {
    const auto& netlist = soc.core(c).netlist();
    for (std::uint32_t p = 0; p < netlist.ports().size(); ++p) {
      const rtl::PortId port(p);
      const auto kind = netlist.port(port).dir == rtl::PortDir::kInput
                            ? CcgNodeKind::kCoreIn
                            : CcgNodeKind::kCoreOut;
      nodes_.push_back(CcgNode{kind, 0, CorePortRef{c, port}});
    }
  }

  // Interconnect edges (latency 0), each with its own resource.
  auto from_node = [&](const std::variant<PiId, CorePortRef>& endpoint) {
    if (const auto* pi = std::get_if<PiId>(&endpoint)) return pi_node(*pi);
    return core_out_node(std::get<CorePortRef>(endpoint));
  };
  auto to_node = [&](const std::variant<PoId, CorePortRef>& endpoint) {
    if (const auto* po = std::get_if<PoId>(&endpoint)) return po_node(*po);
    return core_in_node(std::get<CorePortRef>(endpoint));
  };
  for (const Link& link : soc.links()) {
    edges_.push_back(CcgEdge{from_node(link.from), to_node(link.to), 0,
                             next_resource_++, -1});
  }

  // Transparency edges from the selected version of each core; serial
  // groups map onto shared resources.
  for (std::uint32_t c = 0; c < soc.cores().size(); ++c) {
    const auto& version = soc.core(c).version(selection[c]);
    std::map<int, std::uint32_t> group_resource;
    for (const auto& spec : version.edges) {
      std::uint32_t resource;
      if (spec.serial_group >= 0) {
        auto it = group_resource.find(spec.serial_group);
        if (it == group_resource.end()) {
          resource = next_resource_++;
          group_resource.emplace(spec.serial_group, resource);
        } else {
          resource = it->second;
        }
      } else {
        resource = next_resource_++;
      }
      edges_.push_back(
          CcgEdge{core_in_node(CorePortRef{c, spec.input}),
                  core_out_node(CorePortRef{c, spec.output}), spec.latency,
                  resource, static_cast<std::int32_t>(c)});
    }
  }

  adjacency_.assign(nodes_.size(), {});
  for (std::uint32_t e = 0; e < edges_.size(); ++e) {
    adjacency_[edges_[e].src].push_back(e);
  }
  SOCET_GAUGE_MAX("ccg/nodes", nodes_.size());
  SOCET_GAUGE_MAX("ccg/edges", edges_.size());
}

std::uint32_t Ccg::pi_node(PiId pi) const {
  return static_cast<std::uint32_t>(pi.index());
}

std::uint32_t Ccg::po_node(PoId po) const {
  // POs come right after the PIs; counts are implicit in node layout.
  std::uint32_t base = 0;
  while (base < nodes_.size() && nodes_[base].kind == CcgNodeKind::kPi) {
    ++base;
  }
  return base + po.value();
}

std::uint32_t Ccg::core_in_node(const CorePortRef& ref) const {
  for (std::uint32_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].kind == CcgNodeKind::kCoreIn &&
        nodes_[i].core_port == ref) {
      return i;
    }
  }
  util::raise("Ccg: core input node not found");
}

std::uint32_t Ccg::core_out_node(const CorePortRef& ref) const {
  for (std::uint32_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].kind == CcgNodeKind::kCoreOut &&
        nodes_[i].core_port == ref) {
      return i;
    }
  }
  util::raise("Ccg: core output node not found");
}

std::string Ccg::node_name(const Soc& soc, std::uint32_t node) const {
  const CcgNode& n = nodes_.at(node);
  switch (n.kind) {
    case CcgNodeKind::kPi:
      return "PI:" + soc.pis().at(n.pin).name;
    case CcgNodeKind::kPo:
      return "PO:" + soc.pos().at(n.pin).name;
    case CcgNodeKind::kCoreIn:
    case CcgNodeKind::kCoreOut:
      return soc.core(n.core_port.core).name() + "." +
             soc.core(n.core_port.core)
                 .netlist()
                 .port(n.core_port.port)
                 .name;
  }
  return "?";
}

}  // namespace socet::soc
