#include "socet/soc/flatten.hpp"

namespace socet::soc {

FlattenResult flatten(const Soc& soc) {
  FlattenResult result;
  result.chip = rtl::Netlist(soc.name());
  rtl::Netlist& chip = result.chip;

  std::vector<rtl::PortId> pi_ports;
  std::vector<rtl::PortId> po_ports;
  for (const ChipPin& pin : soc.pis()) {
    pi_ports.push_back(chip.add_input(pin.name, pin.width));
  }
  for (const ChipPin& pin : soc.pos()) {
    po_ports.push_back(chip.add_output(pin.name, pin.width));
  }
  for (const core::Core* core : soc.cores()) {
    result.instances.push_back(
        rtl::instantiate(chip, core->netlist(), core->name()));
  }

  auto driver_pin = [&](const std::variant<PiId, CorePortRef>& from) {
    if (const auto* pi = std::get_if<PiId>(&from)) {
      return chip.pin(pi_ports.at(pi->index()));
    }
    const auto& ref = std::get<CorePortRef>(from);
    const auto& name = soc.core(ref.core).netlist().port(ref.port).name;
    return chip.fu_out(result.instances[ref.core].port_proxies.at(name));
  };
  auto sink_pin = [&](const std::variant<PoId, CorePortRef>& to) {
    if (const auto* po = std::get_if<PoId>(&to)) {
      return chip.pin(po_ports.at(po->index()));
    }
    const auto& ref = std::get<CorePortRef>(to);
    const auto& name = soc.core(ref.core).netlist().port(ref.port).name;
    return chip.fu_in(result.instances[ref.core].port_proxies.at(name), 0);
  };
  for (const Link& link : soc.links()) {
    chip.connect(driver_pin(link.from), sink_pin(link.to));
  }
  chip.validate();
  return result;
}

}  // namespace socet::soc
