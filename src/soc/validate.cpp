#include "socet/soc/validate.hpp"

#include <map>

#include "socet/soc/ccg.hpp"

namespace socet::soc {

namespace {

unsigned duration_of(const CcgEdge& edge) { return std::max(edge.latency, 1u); }

}  // namespace

std::vector<std::string> validate_plan(const Soc& soc,
                                       const std::vector<unsigned>& selection,
                                       const ChipTestPlan& plan,
                                       const PlanOptions& options) {
  std::vector<std::string> violations;
  auto fail = [&violations](std::string message) {
    violations.push_back(std::move(message));
  };
  Ccg ccg(soc, selection);

  if (plan.cores.size() != soc.cores().size()) {
    fail("plan does not cover every core");
    return violations;
  }

  unsigned long long tat_sum = 0;
  for (const CoreTestPlan& core_plan : plan.cores) {
    const core::Core& cut = soc.core(core_plan.core);
    const std::string who = cut.name();

    // --- route structure and timing -------------------------------------
    auto check_route = [&](const Route& route, std::uint32_t endpoint,
                           bool justification, const std::string& label) {
      if (route.via_system_mux) {
        if (!route.steps.empty()) {
          fail(who + "/" + label + ": system-mux route has steps");
        }
        return;
      }
      if (route.steps.empty()) {
        fail(who + "/" + label + ": empty route without a system mux");
        return;
      }
      unsigned cursor = 0;
      for (std::size_t s = 0; s < route.steps.size(); ++s) {
        const RouteStep& step = route.steps[s];
        const CcgEdge& edge = ccg.edges()[step.edge];
        if (step.arrive != step.depart + edge.latency) {
          fail(who + "/" + label + ": step arrive != depart + latency");
        }
        if (step.depart < cursor) {
          fail(who + "/" + label + ": step departs before data arrives");
        }
        cursor = step.arrive;
        if (s > 0 &&
            ccg.edges()[route.steps[s - 1].edge].dst != edge.src) {
          fail(who + "/" + label + ": disconnected route");
        }
        if (edge.core == static_cast<std::int32_t>(core_plan.core)) {
          fail(who + "/" + label +
               ": route uses the core under test's own transparency");
        }
      }
      if (route.arrival != cursor) {
        fail(who + "/" + label + ": recorded arrival mismatches steps");
      }
      const std::uint32_t first_node =
          ccg.edges()[route.steps.front().edge].src;
      const std::uint32_t last_node = ccg.edges()[route.steps.back().edge].dst;
      if (justification) {
        if (ccg.nodes()[first_node].kind != CcgNodeKind::kPi) {
          fail(who + "/" + label + ": justification must start at a PI");
        }
        if (last_node != endpoint) {
          fail(who + "/" + label + ": justification ends at wrong node");
        }
      } else {
        if (first_node != endpoint) {
          fail(who + "/" + label + ": observation starts at wrong node");
        }
        if (ccg.nodes()[last_node].kind != CcgNodeKind::kPo) {
          fail(who + "/" + label + ": observation must end at a PO");
        }
      }
    };

    unsigned period = 1;
    for (const auto& [port, route] : core_plan.input_routes) {
      check_route(route, ccg.core_in_node(CorePortRef{core_plan.core, port}),
                  /*justification=*/true,
                  "in:" + cut.netlist().port(port).name);
      period = std::max(period, std::max(route.arrival, 1u));
    }
    unsigned observe = 0;
    for (const auto& [port, route] : core_plan.output_routes) {
      check_route(route, ccg.core_out_node(CorePortRef{core_plan.core, port}),
                  /*justification=*/false,
                  "out:" + cut.netlist().port(port).name);
      observe = std::max(observe, route.arrival);
    }

    // --- resource exclusivity across this core's justification phase ----
    std::map<std::uint32_t, std::vector<std::pair<unsigned, unsigned>>>
        windows;
    for (const auto& [port, route] : core_plan.input_routes) {
      for (const RouteStep& step : route.steps) {
        const CcgEdge& edge = ccg.edges()[step.edge];
        auto& spans = windows[edge.resource];
        const unsigned lo = step.depart;
        const unsigned hi = step.depart + duration_of(edge);
        for (const auto& [olo, ohi] : spans) {
          if (lo < ohi && olo < hi) {
            fail(who + ": resource " + std::to_string(edge.resource) +
                 " double-booked in cycles [" + std::to_string(lo) + "," +
                 std::to_string(hi) + ")");
          }
        }
        spans.emplace_back(lo, hi);
      }
    }

    // --- accounting ------------------------------------------------------
    if (core_plan.period != period) {
      fail(who + ": period mismatch (recorded " +
           std::to_string(core_plan.period) + ", derived " +
           std::to_string(period) + ")");
    }
    const unsigned depth = cut.hscan().max_depth;
    const unsigned flush = (depth > 0 ? depth - 1 : 0) + observe;
    if (core_plan.flush != flush) {
      fail(who + ": flush mismatch");
    }
    const unsigned long long vectors = cut.hscan_vectors();
    unsigned long long tat;
    if (options.allow_pipelining && vectors > 0) {
      std::map<std::uint32_t, unsigned> occupancy;
      unsigned ii = 1;
      for (const auto& [port, route] : core_plan.input_routes) {
        for (const RouteStep& step : route.steps) {
          const CcgEdge& edge = ccg.edges()[step.edge];
          occupancy[edge.resource] += duration_of(edge);
          ii = std::max(ii, occupancy[edge.resource]);
        }
      }
      tat = period + (vectors - 1) * ii + flush;
    } else {
      tat = vectors * static_cast<unsigned long long>(period) + flush;
    }
    if (core_plan.tat != tat) {
      fail(who + ": TAT mismatch");
    }
    tat_sum += core_plan.tat;
  }
  if (plan.total_tat != tat_sum) {
    fail("total TAT does not sum core TATs");
  }
  return violations;
}

}  // namespace socet::soc
