#include "socet/soc/testprogram.hpp"

#include <algorithm>
#include <sstream>

namespace socet::soc {

namespace {
constexpr std::uint32_t kSystemMuxPin = ~0u;
}  // namespace

TestProgram assemble_test_program(const Soc& soc,
                                  const std::vector<unsigned>& selection,
                                  const ChipTestPlan& plan) {
  Ccg ccg(soc, selection);
  TestProgram program;

  for (const CoreTestPlan& core_plan : plan.cores) {
    CoreTestProgram cp;
    cp.core = core_plan.core;
    cp.period = core_plan.period;
    cp.vectors = soc.core(core_plan.core).hscan_vectors();
    cp.total_cycles = core_plan.tat;

    for (const auto& [port, route] : core_plan.input_routes) {
      if (route.via_system_mux) {
        // Direct drive through the inserted mux: the PI assignment is
        // synthetic (the mux's source pin), modeled as a drive at cycle 0.
        TestProgramEvent ev;
        ev.kind = TestProgramEvent::Kind::kDrivePi;
        ev.cycle = 0;
        ev.pi = kSystemMuxPin;
        ev.target = port;
        cp.frame.push_back(ev);
        continue;
      }
      for (std::size_t s = 0; s < route.steps.size(); ++s) {
        const RouteStep& step = route.steps[s];
        const CcgEdge& edge = ccg.edges()[step.edge];
        if (s == 0) {
          TestProgramEvent ev;
          ev.kind = TestProgramEvent::Kind::kDrivePi;
          ev.cycle = step.depart;
          ev.pi = ccg.nodes()[edge.src].pin;
          ev.target = port;
          cp.frame.push_back(ev);
        }
        if (edge.core >= 0) {
          TestProgramEvent ev;
          ev.kind = TestProgramEvent::Kind::kTransfer;
          ev.cycle = step.depart;
          ev.core = static_cast<std::uint32_t>(edge.core);
          ev.target = port;
          cp.frame.push_back(ev);
        }
      }
    }

    TestProgramEvent capture;
    capture.kind = TestProgramEvent::Kind::kCapture;
    capture.cycle = core_plan.period == 0 ? 0 : core_plan.period - 1;
    capture.core = core_plan.core;
    cp.frame.push_back(capture);

    for (const auto& [port, route] : core_plan.output_routes) {
      TestProgramEvent ev;
      ev.kind = TestProgramEvent::Kind::kObservePo;
      ev.target = port;
      if (route.via_system_mux || route.steps.empty()) {
        ev.cycle = capture.cycle;
      } else {
        ev.cycle = capture.cycle + route.arrival;
        ev.po = ccg.nodes()[ccg.edges()[route.steps.back().edge].dst].pin;
      }
      cp.frame.push_back(ev);
    }

    std::stable_sort(cp.frame.begin(), cp.frame.end(),
                     [](const TestProgramEvent& a, const TestProgramEvent& b) {
                       return a.cycle < b.cycle;
                     });
    program.total_cycles += cp.total_cycles;
    program.cores.push_back(std::move(cp));
  }
  return program;
}

std::string describe_test_program(const Soc& soc,
                                  const TestProgram& program) {
  std::ostringstream out;
  out << "chip test program: " << program.total_cycles << " cycles total\n";
  for (const CoreTestProgram& cp : program.cores) {
    const core::Core& cut = soc.core(cp.core);
    out << "-- " << cut.name() << ": " << cp.vectors
        << " vectors x period " << cp.period << " -> " << cp.total_cycles
        << " cycles; per-vector frame:\n";
    for (const TestProgramEvent& ev : cp.frame) {
      out << "   t+" << ev.cycle << ": ";
      switch (ev.kind) {
        case TestProgramEvent::Kind::kDrivePi:
          if (ev.pi == kSystemMuxPin) {
            out << "drive system test mux with V[k]."
                << cut.netlist().port(ev.target).name;
          } else {
            out << "drive " << soc.pis().at(ev.pi).name << " with V[k]."
                << cut.netlist().port(ev.target).name;
          }
          break;
        case TestProgramEvent::Kind::kTransfer:
          out << "run clock of " << soc.core(ev.core).name()
              << " (transparency toward "
              << cut.netlist().port(ev.target).name << ")";
          break;
        case TestProgramEvent::Kind::kCapture:
          out << "capture into " << cut.name() << " scan chains";
          break;
        case TestProgramEvent::Kind::kObservePo:
          out << "strobe response of " << cut.netlist().port(ev.target).name;
          break;
      }
      out << "\n";
    }
  }
  return out.str();
}

}  // namespace socet::soc
