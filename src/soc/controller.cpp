#include "socet/soc/controller.hpp"

#include <algorithm>

namespace socet::soc {

ControllerSpec derive_controller_spec(const Soc& soc, const Ccg& ccg,
                                      const ChipTestPlan& plan) {
  ControllerSpec spec;
  spec.core_count = static_cast<unsigned>(soc.cores().size());
  for (const CoreTestPlan& core_plan : plan.cores) {
    spec.period = std::max(spec.period, core_plan.period);
  }
  spec.clock_enables.assign(spec.period,
                            util::BitVector(spec.core_count));

  // A core's clock must run in every cycle one of its transparency edges
  // carries data during the (repeating) justification period.
  for (const CoreTestPlan& core_plan : plan.cores) {
    for (const auto& [port, route] : core_plan.input_routes) {
      for (const RouteStep& step : route.steps) {
        const CcgEdge& edge = ccg.edges()[step.edge];
        if (edge.core < 0) continue;
        for (unsigned t = step.depart;
             t < step.arrive && t < spec.period; ++t) {
          spec.clock_enables[t].set(static_cast<unsigned>(edge.core), true);
        }
      }
    }
    // The core under test captures at the end of the period.
    spec.clock_enables[spec.period - 1].set(core_plan.core, true);
  }
  return spec;
}

rtl::Netlist generate_controller_rtl(const ControllerSpec& spec) {
  rtl::Netlist n("TestController");
  util::require(spec.core_count > 0, "controller: no cores");
  util::require(!spec.clock_enables.empty(), "controller: empty schedule");

  unsigned counter_bits = 1;
  while ((1u << counter_bits) < spec.period) ++counter_bits;

  auto test_mode = n.add_input("TestMode", 1, rtl::PortKind::kControl);
  auto clk_en = n.add_output("ClockEnable", spec.core_count,
                             rtl::PortKind::kControl);
  auto strobe = n.add_output("ScanStrobe", 1, rtl::PortKind::kControl);

  // Cycle counter: wraps at the period (counter + 1 muxed with 0).
  auto counter = n.add_register("CYCLE", counter_bits,
                                /*has_load_enable=*/false);
  auto inc = n.add_fu("INC", rtl::FuKind::kIncrement, counter_bits, 1);
  auto wrap_cmp = n.add_fu("WRAP", rtl::FuKind::kEqual, counter_bits, 2);
  auto last = n.add_constant(
      "LAST", util::BitVector(counter_bits, spec.period - 1));
  auto zero = n.add_constant("ZERO", util::BitVector(counter_bits, 0));
  auto m = n.add_mux("m_cnt", counter_bits, 2);
  n.connect(n.reg_q(counter), n.fu_in(inc, 0));
  n.connect(n.reg_q(counter), n.fu_in(wrap_cmp, 0));
  n.connect(n.const_out(last), n.fu_in(wrap_cmp, 1));
  n.connect(n.fu_out(inc), n.mux_in(m, 0));
  n.connect(n.const_out(zero), n.mux_in(m, 1));
  n.connect(n.fu_out(wrap_cmp), 0, n.mux_select(m), 0, 1);
  n.connect(n.mux_out(m), n.reg_d(counter));

  // Decode ROM: per core, OR of comparators against the cycles in which
  // its clock runs.  Built as an equality-compare per distinct enabled
  // cycle, OR-reduced through kOr units, then gated by TestMode.
  for (unsigned core = 0; core < spec.core_count; ++core) {
    std::optional<rtl::PinRef> acc;
    for (unsigned t = 0; t < spec.clock_enables.size(); ++t) {
      if (!spec.clock_enables[t].get(core)) continue;
      auto cmp = n.add_fu("EQ_c" + std::to_string(core) + "_t" +
                              std::to_string(t),
                          rtl::FuKind::kEqual, counter_bits, 2);
      auto k = n.add_constant(
          "T" + std::to_string(core) + "_" + std::to_string(t),
          util::BitVector(counter_bits, t));
      n.connect(n.reg_q(counter), n.fu_in(cmp, 0));
      n.connect(n.const_out(k), n.fu_in(cmp, 1));
      if (!acc) {
        acc = n.fu_out(cmp);
      } else {
        auto oru = n.add_fu("OR_c" + std::to_string(core) + "_t" +
                                std::to_string(t),
                            rtl::FuKind::kOr, 1, 2);
        n.connect(*acc, 0, n.fu_in(oru, 0), 0, 1);
        n.connect(n.fu_out(cmp), 0, n.fu_in(oru, 1), 0, 1);
        acc = n.fu_out(oru);
      }
    }
    // Gate with TestMode (functional mode: clocks free-run, handled
    // off-chip; the enable output is only honoured in test mode).
    auto gate = n.add_fu("EN_c" + std::to_string(core), rtl::FuKind::kAnd,
                         1, 2);
    if (acc) {
      n.connect(*acc, 0, n.fu_in(gate, 0), 0, 1);
    }  // else input 0 reads as constant 0
    n.connect(n.pin(test_mode), 0, n.fu_in(gate, 1), 0, 1);
    n.connect(n.fu_out(gate), 0, n.pin(clk_en), core, 1);
  }

  // Scan strobe: asserted on the wrap cycle.
  auto strobe_gate = n.add_fu("STROBE", rtl::FuKind::kAnd, 1, 2);
  n.connect(n.fu_out(wrap_cmp), 0, n.fu_in(strobe_gate, 0), 0, 1);
  n.connect(n.pin(test_mode), 0, n.fu_in(strobe_gate, 1), 0, 1);
  n.connect(n.fu_out(strobe_gate), 0, n.pin(strobe), 0, 1);

  n.validate();
  return n;
}

}  // namespace socet::soc
