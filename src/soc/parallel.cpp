#include "socet/soc/parallel.hpp"

#include <algorithm>
#include <set>

#include "socet/obs/journal.hpp"

namespace socet::soc {

namespace {

/// Everything a core's test session occupies: the cores whose clocks it
/// drives (conduits + itself) and the CCG resources its routes reserve.
struct SessionFootprint {
  std::set<std::uint32_t> cores;      ///< conduit cores + the CUT
  std::set<std::uint32_t> resources;  ///< CCG resource ids
};

SessionFootprint footprint(const Ccg& ccg, const CoreTestPlan& plan) {
  SessionFootprint fp;
  fp.cores.insert(plan.core);
  auto absorb = [&](const Route& route) {
    for (const RouteStep& step : route.steps) {
      const CcgEdge& edge = ccg.edges()[step.edge];
      fp.resources.insert(edge.resource);
      if (edge.core >= 0) {
        fp.cores.insert(static_cast<std::uint32_t>(edge.core));
      }
    }
  };
  for (const auto& [port, route] : plan.input_routes) absorb(route);
  for (const auto& [port, route] : plan.output_routes) absorb(route);
  return fp;
}

bool disjoint(const std::set<std::uint32_t>& a,
              const std::set<std::uint32_t>& b) {
  for (std::uint32_t x : a) {
    if (b.count(x)) return false;
  }
  return true;
}

}  // namespace

bool sessions_compatible(const Soc& soc, const Ccg& ccg,
                         const ChipTestPlan& plan, std::uint32_t a,
                         std::uint32_t b) {
  (void)soc;
  const CoreTestPlan* plan_a = nullptr;
  const CoreTestPlan* plan_b = nullptr;
  for (const auto& core_plan : plan.cores) {
    if (core_plan.core == a) plan_a = &core_plan;
    if (core_plan.core == b) plan_b = &core_plan;
  }
  util::require(plan_a != nullptr && plan_b != nullptr,
                "sessions_compatible: core not in plan");
  const SessionFootprint fa = footprint(ccg, *plan_a);
  const SessionFootprint fb = footprint(ccg, *plan_b);
  // A core being tested is in scan mode and cannot serve as the other
  // session's conduit; shared resources would interleave two data streams.
  return disjoint(fa.cores, fb.cores) && disjoint(fa.resources, fb.resources);
}

ParallelSchedule schedule_parallel(const Soc& soc,
                                   const std::vector<unsigned>& selection,
                                   const ChipTestPlan& plan) {
  Ccg ccg(soc, selection);
  ParallelSchedule schedule;
  schedule.sequential_tat = plan.total_tat;

  // Longest-first greedy packing.
  std::vector<const CoreTestPlan*> order;
  for (const auto& core_plan : plan.cores) order.push_back(&core_plan);
  std::sort(order.begin(), order.end(),
            [](const CoreTestPlan* x, const CoreTestPlan* y) {
              return x->tat > y->tat;
            });

  std::vector<SessionFootprint> session_footprints;
  std::vector<unsigned long long> session_tats;
  for (const CoreTestPlan* core_plan : order) {
    const SessionFootprint fp = footprint(ccg, *core_plan);
    const std::string& core_name = soc.core(core_plan->core).name();
    bool placed = false;
    for (std::size_t s = 0; s < schedule.sessions.size(); ++s) {
      const bool cores_ok = disjoint(session_footprints[s].cores, fp.cores);
      const bool resources_ok =
          disjoint(session_footprints[s].resources, fp.resources);
      if (cores_ok && resources_ok) {
        schedule.sessions[s].push_back(core_plan->core);
        session_footprints[s].cores.insert(fp.cores.begin(), fp.cores.end());
        session_footprints[s].resources.insert(fp.resources.begin(),
                                               fp.resources.end());
        session_tats[s] = std::max(session_tats[s], core_plan->tat);
        SOCET_EVENT("parallel/place", {"core", core_name}, {"session", s + 1},
                    {"new_session", false}, {"tat", core_plan->tat});
        placed = true;
        break;
      }
      SOCET_EVENT("parallel/conflict", {"core", core_name},
                  {"session", s + 1},
                  {"shared", cores_ok ? "resources" : "cores"});
    }
    if (!placed) {
      schedule.sessions.push_back({core_plan->core});
      session_footprints.push_back(fp);
      session_tats.push_back(core_plan->tat);
      SOCET_EVENT("parallel/place", {"core", core_name},
                  {"session", schedule.sessions.size()},
                  {"new_session", true}, {"tat", core_plan->tat});
    }
  }
  for (unsigned long long tat : session_tats) schedule.total_tat += tat;
  return schedule;
}

}  // namespace socet::soc
