// Chip test controller generation — the "small finite-state machine"
// of Section 5.2.
//
// During test application, something on-chip must sequence each core's
// transparency-mode selects, freeze per-core clocks while data is in
// flight, and pulse the core under test's scan clock once per delivered
// vector.  From a ChipTestPlan this module generates that controller as
// ordinary RTL: a cycle counter spanning the longest per-vector period, a
// vector counter, and a decoded control word per core (clock-enable +
// transparency-mode strobe), so the controller's area is *measured* from
// its own elaboration rather than guessed.
#pragma once

#include "socet/soc/schedule.hpp"

namespace socet::soc {

struct ControllerSpec {
  /// Cycle-accurate control words: for each cycle of the longest period,
  /// a bit per core: 1 = the core's clock runs this cycle.
  std::vector<util::BitVector> clock_enables;
  unsigned period = 1;
  unsigned core_count = 0;
};

/// Derive the per-cycle clock-enable schedule from a plan: an intermediate
/// core's clock runs exactly while one of its transparency edges carries
/// data (a route step of some justification route), and the core under
/// test captures on the last cycle of the period.
ControllerSpec derive_controller_spec(const Soc& soc, const Ccg& ccg,
                                      const ChipTestPlan& plan);

/// Generate the controller as RTL: cycle counter + decode logic producing
/// one clock-enable output per core plus a scan strobe.  Elaborate it to
/// measure the real controller area.
rtl::Netlist generate_controller_rtl(const ControllerSpec& spec);

}  // namespace socet::soc
