// The system-on-chip model: prepared cores plus chip-level wiring.
//
// A Soc owns nothing heavy: it references prepared cores (which carry
// their version menus and test sets) and records how chip pins and core
// ports are wired — everything the CCG construction and the test
// scheduler need.
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "socet/core/core.hpp"

namespace socet::soc {

struct PiTag {};
struct PoTag {};
using PiId = util::Id<PiTag>;
using PoId = util::Id<PoTag>;

struct ChipPin {
  std::string name;
  unsigned width = 1;
};

/// A core port addressed from chip level.
struct CorePortRef {
  std::uint32_t core = 0;
  rtl::PortId port;

  friend bool operator==(const CorePortRef&, const CorePortRef&) = default;
  friend auto operator<=>(const CorePortRef&, const CorePortRef&) = default;
};

/// One chip-level wire: a PI or core output driving a core input or PO.
struct Link {
  std::variant<PiId, CorePortRef> from;
  std::variant<PoId, CorePortRef> to;
};

class Soc {
 public:
  explicit Soc(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  PiId add_pi(const std::string& name, unsigned width);
  PoId add_po(const std::string& name, unsigned width);
  /// Register a prepared core.  The pointer must outlive the Soc.
  std::uint32_t add_core(const core::Core* core);

  void connect(PiId pi, std::uint32_t core, const std::string& input_port);
  void connect(std::uint32_t from_core, const std::string& output_port,
               std::uint32_t to_core, const std::string& input_port);
  void connect(std::uint32_t core, const std::string& output_port, PoId po);

  const std::vector<ChipPin>& pis() const { return pis_; }
  const std::vector<ChipPin>& pos() const { return pos_; }
  const std::vector<const core::Core*>& cores() const { return cores_; }
  const core::Core& core(std::uint32_t index) const {
    return *cores_.at(index);
  }
  const std::vector<Link>& links() const { return links_; }

  PiId find_pi(const std::string& name) const;
  PoId find_po(const std::string& name) const;
  std::uint32_t find_core(const std::string& name) const;

  /// Original chip area in cells: sum over cores of `area_fn` — supplied
  /// externally because area comes from gate-level elaboration.
  /// (Convenience for benches; the Soc itself carries no gate netlists.)

  /// Checks every connection's widths and that no core input or PO is
  /// driven twice.  Throws util::Error on violation.
  void validate() const;

 private:
  unsigned width_of(const std::variant<PiId, CorePortRef>& endpoint) const;
  unsigned width_of(const std::variant<PoId, CorePortRef>& endpoint) const;

  std::string name_;
  std::vector<ChipPin> pis_;
  std::vector<ChipPin> pos_;
  std::vector<const core::Core*> cores_;
  std::vector<Link> links_;
};

}  // namespace socet::soc
