// Chip-test-plan validation.
//
// A ChipTestPlan is only as good as its schedule: every route must be a
// connected CCG path with consistent step timing, no two routes of the
// same core's justification phase may occupy a shared resource in
// overlapping cycle windows (that is exactly what the reservations are
// for), and the per-core TAT must match the vectors x period + flush
// accounting.  The validator re-derives all of this from first principles
// so the scheduler's bookkeeping is independently checkable — the
// property suite runs it over randomized SOCs.
#pragma once

#include <string>
#include <vector>

#include "socet/soc/schedule.hpp"

namespace socet::soc {

/// Returns human-readable violations; empty means the plan is sound.
/// Pass the same options the plan was made with (TAT accounting and the
/// exclusivity rules depend on them; a naive ignore_reservations plan
/// fails validation by design).
std::vector<std::string> validate_plan(const Soc& soc,
                                       const std::vector<unsigned>& selection,
                                       const ChipTestPlan& plan,
                                       const PlanOptions& options = {});

}  // namespace socet::soc
