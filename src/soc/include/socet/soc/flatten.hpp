// Flatten a Soc into a single RTL netlist (cores instantiated with their
// names as prefixes, chip pins as ports, links as connections).
//
// The flat netlist is what the whole-chip rows of Table 3 are measured
// on: elaborate it to gates and fault-simulate functionally ("Orig."), or
// elaborate it with each core's scan chains physically inserted ("HSCAN"
// — which shows why core-level DFT alone leaves chip-level coverage low:
// the chains' scan-in pins hang on internal nets).
#pragma once

#include <vector>

#include "socet/rtl/instantiate.hpp"
#include "socet/soc/soc.hpp"

namespace socet::soc {

struct FlattenResult {
  rtl::Netlist chip;
  /// Per core (same order as Soc::cores()): the port-proxy map.
  std::vector<rtl::Instance> instances;

  FlattenResult() : chip("") {}
};

FlattenResult flatten(const Soc& soc);

}  // namespace socet::soc
