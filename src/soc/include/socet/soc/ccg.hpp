// Core connectivity graph (CCG) — paper Section 5, Figure 9.
//
// Nodes: chip PIs and POs plus every core input and output port (ports
// that the paper draws as split nodes are modeled as separate RTL ports,
// e.g. the CPU's Address(7..0) / Address(11..8)).  Edges:
//   * interconnect wires (latency 0), straight from the Soc link list;
//   * transparency edges inside each core, taken from the version
//     currently selected for that core, weighted by transparency latency.
//
// Every edge names a *resource*: transparency edges of the same serial
// group share one resource (their shared internal logic), so the
// scheduler's reservations serialize them — the paper's "6 + 2 = 8"
// CPU behaviour.
#pragma once

#include <cstdint>
#include <vector>

#include "socet/soc/soc.hpp"

namespace socet::soc {

enum class CcgNodeKind : std::uint8_t { kPi, kPo, kCoreIn, kCoreOut };

struct CcgNode {
  CcgNodeKind kind = CcgNodeKind::kPi;
  std::uint32_t pin = 0;   ///< PI/PO index when kind is kPi/kPo
  CorePortRef core_port;   ///< valid when kind is kCoreIn/kCoreOut
};

struct CcgEdge {
  std::uint32_t src = 0;
  std::uint32_t dst = 0;
  unsigned latency = 0;
  /// Reservation resource id; edges sharing internal logic share the id.
  std::uint32_t resource = 0;
  /// Core whose transparency provides this edge; -1 for interconnect.
  std::int32_t core = -1;
};

class Ccg {
 public:
  /// Build the CCG for `soc` with `selection[i]` = version index of core i.
  Ccg(const Soc& soc, const std::vector<unsigned>& selection);

  const std::vector<CcgNode>& nodes() const { return nodes_; }
  const std::vector<CcgEdge>& edges() const { return edges_; }
  const std::vector<std::vector<std::uint32_t>>& out_edges() const {
    return adjacency_;
  }

  std::uint32_t pi_node(PiId pi) const;
  std::uint32_t po_node(PoId po) const;
  std::uint32_t core_in_node(const CorePortRef& ref) const;
  std::uint32_t core_out_node(const CorePortRef& ref) const;

  std::uint32_t resource_count() const { return next_resource_; }

  std::string node_name(const Soc& soc, std::uint32_t node) const;

 private:
  std::vector<CcgNode> nodes_;
  std::vector<CcgEdge> edges_;
  std::vector<std::vector<std::uint32_t>> adjacency_;
  std::uint32_t next_resource_ = 0;
};

}  // namespace socet::soc
