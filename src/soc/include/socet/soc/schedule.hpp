// Chip-level test scheduling — paper Section 5.1.
//
// For every core under test, each input port gets a justification route
// from a chip PI and each output port an observation route to a chip PO,
// found by a reservation-aware Dijkstra over the CCG: when a route reuses
// an edge (or an edge sharing the same serial-group resource), its
// departure slides past the existing reservations — exactly the paper's
// "the edge (NUM, DB) can only be utilized from cycle 6 onwards".
//
// Where no route exists, a system-level test multiplexer is inserted (the
// PREPROCESSOR's Address output in Figure 9) at a recorded area cost.
//
// Test application time accounting follows the worked example:
//   TAT(core) = hscan_vectors x period + flush
// with `period` the serialized per-vector justification latency (the 9 in
// 525 x 9) and `flush = (max chain depth - 1) + slowest observation route`
// (the +3: the last response drains from depth-4 chains through latency-0
// observation paths).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "socet/soc/ccg.hpp"

namespace socet::soc {

struct PlanOptions {
  /// Cells per bit of an inserted system-level test mux, plus its select
  /// driver.
  unsigned system_mux_per_bit = 1;
  unsigned system_mux_control = 1;
  /// The chip test controller FSM (clock gating + transparency mode
  /// sequencing) — a small constant.
  unsigned controller_cells = 8;
  /// Core inputs/outputs the optimizer decided to wire straight to chip
  /// pins through test muxes (Section 5.2's escalation); routing skips
  /// them and the mux cost is charged.
  std::vector<CorePortRef> forced_input_muxes;
  std::vector<CorePortRef> forced_output_muxes;
  /// Ablation: route each value independently, ignoring the cycle
  /// reservations of earlier routes (Section 5.1's edge-reuse shifting
  /// disabled).  Underestimates TAT when paths share edges.
  bool ignore_reservations = false;
  /// Extension: allow test data to be pipelined through transparency
  /// paths.  The paper assumes one vector fully drains before the next
  /// enters ("we have assumed that test data cannot be pipelined through
  /// a core"), making the per-vector period the full justification
  /// latency.  With pipelining, after the first vector's fill, a new
  /// vector can be injected every *initiation interval* — the busiest
  /// shared resource's occupancy:
  ///   TAT = fill + (vectors - 1) x II + flush.
  bool allow_pipelining = false;
};

struct RouteStep {
  std::uint32_t edge = 0;
  unsigned depart = 0;
  unsigned arrive = 0;
};

struct Route {
  std::vector<RouteStep> steps;
  unsigned arrival = 0;
  bool via_system_mux = false;
};

/// Busy intervals per resource.
class Reservations {
 public:
  explicit Reservations(std::uint32_t resources) : busy_(resources) {}

  /// Earliest t' >= t such that [t', t' + duration) is free.
  unsigned earliest_free(std::uint32_t resource, unsigned t,
                         unsigned duration) const;
  void reserve(std::uint32_t resource, unsigned t, unsigned duration);

 private:
  std::vector<std::vector<std::pair<unsigned, unsigned>>> busy_;
};

struct CoreTestPlan {
  std::uint32_t core = 0;
  /// Route per data input port (port order of the core netlist).
  std::vector<std::pair<rtl::PortId, Route>> input_routes;
  std::vector<std::pair<rtl::PortId, Route>> output_routes;
  unsigned period = 1;
  unsigned flush = 0;
  unsigned long long tat = 0;
  unsigned system_mux_cells = 0;
};

struct ChipTestPlan {
  std::vector<CoreTestPlan> cores;
  unsigned long long total_tat = 0;
  unsigned version_cells = 0;
  unsigned system_mux_cells = 0;
  unsigned controller_cells = 0;
  /// Times each CCG transparency edge was used across all routes, keyed by
  /// (core index, input port, output port) — drives the optimizer's
  /// latency-improvement numbers (Section 5.2).
  std::map<std::tuple<std::uint32_t, rtl::PortId, rtl::PortId>, unsigned>
      edge_use;

  [[nodiscard]] unsigned total_overhead_cells() const {
    return version_cells + system_mux_cells + controller_cells;
  }
};

/// Route one value from any PI to `target` (a kCoreIn node), honouring and
/// extending `reservations`.  `earliest` is the first cycle the source
/// value may leave the PI.
std::optional<Route> route_from_pis(const Ccg& ccg, std::uint32_t target,
                                    Reservations& reservations,
                                    unsigned earliest = 0,
                                    std::int32_t banned_core = -1);

/// Route one value from `source` (a kCoreOut node) to any PO.
std::optional<Route> route_to_pos(const Ccg& ccg, std::uint32_t source,
                                  Reservations& reservations,
                                  unsigned earliest = 0,
                                  std::int32_t banned_core = -1);

/// Full plan for testing every core of `soc` (in order) with the given
/// version selection.  Every core must have scan_vectors set.
ChipTestPlan plan_chip_test(const Soc& soc,
                            const std::vector<unsigned>& selection,
                            const PlanOptions& options = {});

/// Stable, injective text encoding of every PlanOptions field.  Two option
/// sets produce the same key iff plan_chip_test behaves identically for
/// them — the planning service folds this into its content-addressed
/// cache key.
std::string plan_options_key(const PlanOptions& options);

}  // namespace socet::soc
