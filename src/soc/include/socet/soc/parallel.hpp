// Parallel test scheduling — the extension the paper leaves on the table
// (its global TAT simply sums per-core sessions).
//
// Two cores can be tested *simultaneously* when their test sessions are
// compatible: neither is used as a transparency conduit by the other, and
// their justification/observation routes touch disjoint CCG resources
// (PIs, interconnect wires, transparency serial groups) — otherwise one
// session's data would corrupt the other's.  Under those conditions the
// chip TAT becomes the sum over *sessions* of the longest member, not the
// sum over cores.
//
// The scheduler is the classic greedy conflict-graph coloring used by the
// post-1998 SOC test-scheduling literature: sort cores by decreasing TAT,
// open a new session only when a core conflicts with every existing one.
#pragma once

#include <vector>

#include "socet/soc/schedule.hpp"

namespace socet::soc {

struct ParallelSchedule {
  /// Each session: core indices tested concurrently.
  std::vector<std::vector<std::uint32_t>> sessions;
  /// Sum over sessions of the slowest member's TAT.
  unsigned long long total_tat = 0;
  /// The sequential TAT (sum over cores), for comparison.
  unsigned long long sequential_tat = 0;

  [[nodiscard]] double speedup() const {
    return total_tat == 0 ? 1.0
                          : static_cast<double>(sequential_tat) /
                                static_cast<double>(total_tat);
  }
};

/// True if testing `a` and `b` concurrently is safe under `plan`.
bool sessions_compatible(const Soc& soc, const Ccg& ccg,
                         const ChipTestPlan& plan, std::uint32_t a,
                         std::uint32_t b);

/// Greedy parallel schedule for `plan`.
ParallelSchedule schedule_parallel(const Soc& soc,
                                   const std::vector<unsigned>& selection,
                                   const ChipTestPlan& plan);

}  // namespace socet::soc
