// Chip-level test program assembly.
//
// A ChipTestPlan says *which* routes carry data *when*; a tester needs the
// flattened consequence: for each core under test, a per-vector frame of
// timed events — drive this PI slice at cycle t with the vector's bits for
// that core input, let these cores' clocks run, capture at the frame's
// end, and strobe these POs when responses emerge.  This module assembles
// that program (symbolically over vector indices, since the actual bits
// are each core's precomputed test set) and renders it as text for
// inspection or an ATE-format generator to consume.
#pragma once

#include <string>
#include <vector>

#include "socet/soc/ccg.hpp"
#include "socet/soc/schedule.hpp"

namespace socet::soc {

struct TestProgramEvent {
  enum class Kind : std::uint8_t {
    kDrivePi,    ///< apply the vector slice for `target` at `pi`
    kTransfer,   ///< data crosses a transparency edge (core clocks run)
    kCapture,    ///< the core under test captures the delivered vector
    kObservePo,  ///< a response slice emerges at `po`
  };
  Kind kind = Kind::kDrivePi;
  unsigned cycle = 0;  ///< within the repeating per-vector frame
  std::uint32_t pi = 0;
  std::uint32_t po = 0;
  /// Core whose clock must run (kTransfer) or that captures (kCapture).
  std::uint32_t core = 0;
  /// The core-under-test port this event serves.
  rtl::PortId target;
};

struct CoreTestProgram {
  std::uint32_t core = 0;
  unsigned period = 1;
  unsigned vectors = 0;
  std::vector<TestProgramEvent> frame;  ///< events of one vector frame
  unsigned long long total_cycles = 0;
};

struct TestProgram {
  std::vector<CoreTestProgram> cores;
  unsigned long long total_cycles = 0;
};

/// Assemble the program implied by `plan`.
TestProgram assemble_test_program(const Soc& soc,
                                  const std::vector<unsigned>& selection,
                                  const ChipTestPlan& plan);

/// Human-readable rendering (used by the walkthrough example).
std::string describe_test_program(const Soc& soc, const TestProgram& program);

}  // namespace socet::soc
