#include "socet/soc/soc.hpp"

#include <map>

namespace socet::soc {

PiId Soc::add_pi(const std::string& name, unsigned width) {
  util::require(width > 0, "add_pi: width must be positive");
  pis_.push_back(ChipPin{name, width});
  return PiId(static_cast<std::uint32_t>(pis_.size() - 1));
}

PoId Soc::add_po(const std::string& name, unsigned width) {
  util::require(width > 0, "add_po: width must be positive");
  pos_.push_back(ChipPin{name, width});
  return PoId(static_cast<std::uint32_t>(pos_.size() - 1));
}

std::uint32_t Soc::add_core(const core::Core* core) {
  util::require(core != nullptr, "add_core: null core");
  cores_.push_back(core);
  return static_cast<std::uint32_t>(cores_.size() - 1);
}

void Soc::connect(PiId pi, std::uint32_t core, const std::string& input_port) {
  util::require(core < cores_.size(), "connect: bad core index");
  const rtl::PortId port = cores_[core]->netlist().find_port(input_port);
  util::require(
      cores_[core]->netlist().port(port).dir == rtl::PortDir::kInput,
      "connect: '" + input_port + "' is not an input of " +
          cores_[core]->name());
  links_.push_back(Link{pi, CorePortRef{core, port}});
}

void Soc::connect(std::uint32_t from_core, const std::string& output_port,
                  std::uint32_t to_core, const std::string& input_port) {
  util::require(from_core < cores_.size() && to_core < cores_.size(),
                "connect: bad core index");
  const rtl::PortId out = cores_[from_core]->netlist().find_port(output_port);
  const rtl::PortId in = cores_[to_core]->netlist().find_port(input_port);
  util::require(
      cores_[from_core]->netlist().port(out).dir == rtl::PortDir::kOutput,
      "connect: '" + output_port + "' is not an output of " +
          cores_[from_core]->name());
  util::require(
      cores_[to_core]->netlist().port(in).dir == rtl::PortDir::kInput,
      "connect: '" + input_port + "' is not an input of " +
          cores_[to_core]->name());
  links_.push_back(
      Link{CorePortRef{from_core, out}, CorePortRef{to_core, in}});
}

void Soc::connect(std::uint32_t core, const std::string& output_port,
                  PoId po) {
  util::require(core < cores_.size(), "connect: bad core index");
  const rtl::PortId port = cores_[core]->netlist().find_port(output_port);
  util::require(
      cores_[core]->netlist().port(port).dir == rtl::PortDir::kOutput,
      "connect: '" + output_port + "' is not an output of " +
          cores_[core]->name());
  links_.push_back(Link{CorePortRef{core, port}, po});
}

PiId Soc::find_pi(const std::string& name) const {
  for (std::size_t i = 0; i < pis_.size(); ++i) {
    if (pis_[i].name == name) return PiId(static_cast<std::uint32_t>(i));
  }
  util::raise("find_pi: no PI named '" + name + "'");
}

PoId Soc::find_po(const std::string& name) const {
  for (std::size_t i = 0; i < pos_.size(); ++i) {
    if (pos_[i].name == name) return PoId(static_cast<std::uint32_t>(i));
  }
  util::raise("find_po: no PO named '" + name + "'");
}

std::uint32_t Soc::find_core(const std::string& name) const {
  for (std::size_t i = 0; i < cores_.size(); ++i) {
    if (cores_[i]->name() == name) return static_cast<std::uint32_t>(i);
  }
  util::raise("find_core: no core named '" + name + "'");
}

unsigned Soc::width_of(const std::variant<PiId, CorePortRef>& endpoint) const {
  if (const auto* pi = std::get_if<PiId>(&endpoint)) {
    return pis_.at(pi->index()).width;
  }
  const auto& ref = std::get<CorePortRef>(endpoint);
  return cores_.at(ref.core)->netlist().port(ref.port).width;
}

unsigned Soc::width_of(const std::variant<PoId, CorePortRef>& endpoint) const {
  if (const auto* po = std::get_if<PoId>(&endpoint)) {
    return pos_.at(po->index()).width;
  }
  const auto& ref = std::get<CorePortRef>(endpoint);
  return cores_.at(ref.core)->netlist().port(ref.port).width;
}

void Soc::validate() const {
  std::map<std::variant<PoId, CorePortRef>, int> sink_count;
  for (const Link& link : links_) {
    util::require(width_of(link.from) == width_of(link.to),
                  "validate: width mismatch on a chip-level link in " + name_);
    ++sink_count[link.to];
  }
  for (const auto& [sink, count] : sink_count) {
    util::require(count == 1, "validate: a core input or PO in " + name_ +
                                  " is driven more than once");
  }
}

}  // namespace socet::soc
