#include "socet/obs/report.hpp"

#include <cmath>
#include <cstdio>
#include <map>

#include "socet/obs/metrics.hpp"
#include "socet/obs/resource.hpp"
#include "socet/obs/trace.hpp"

namespace socet::obs {

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double value) {
  // Emit non-finite values as null — a NaN metric rendered as "0" would
  // let a broken computation masquerade as a perfect one.  Readers
  // (obs::json_parse / the bench gate) treat null as "not a number",
  // never as zero.
  if (!std::isfinite(value)) return "null";
  if (value == std::floor(value) && std::fabs(value) < 1e15) {
    return std::to_string(static_cast<long long>(value));
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  return buf;
}

namespace {

struct SpanRollup {
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;
  std::uint64_t min_ns = ~0ull;
  std::uint64_t max_ns = 0;
};

std::string us(std::uint64_t ns) {
  return json_number(static_cast<double>(ns) / 1e3);
}

}  // namespace

std::string run_report_json(const std::string& command) {
  // Per-span-name and per-stage (leading path segment) rollups.
  std::map<std::string, SpanRollup> spans;
  std::map<std::string, SpanRollup> stages;
  for (const TraceEvent& event : collect_trace_events()) {
    const std::uint64_t ns = event.end_ns - event.start_ns;
    const std::string name = event.name;
    const std::string stage = name.substr(0, name.find('/'));
    for (SpanRollup* roll : {&spans[name], &stages[stage]}) {
      ++roll->count;
      roll->total_ns += ns;
      roll->min_ns = std::min(roll->min_ns, ns);
      roll->max_ns = std::max(roll->max_ns, ns);
    }
  }

  std::string out = "{\"schema\":\"socet-report-v1\",\"command\":\"" +
                    json_escape(command) + "\",\"metrics\":" +
                    Registry::instance().json() + ",\"spans\":{";
  bool first = true;
  for (const auto& [name, roll] : spans) {
    if (!first) out += ',';
    first = false;
    out += "\"" + json_escape(name) + "\":{\"count\":" +
           std::to_string(roll.count) + ",\"total_us\":" + us(roll.total_ns) +
           ",\"mean_us\":" +
           json_number(static_cast<double>(roll.total_ns) /
                       static_cast<double>(roll.count) / 1e3) +
           ",\"min_us\":" + us(roll.min_ns) +
           ",\"max_us\":" + us(roll.max_ns) + "}";
  }
  out += "},\"stages\":{";
  first = true;
  for (const auto& [stage, roll] : stages) {
    if (!first) out += ',';
    first = false;
    out += "\"" + json_escape(stage) + "\":{\"spans\":" +
           std::to_string(roll.count) +
           ",\"total_us\":" + us(roll.total_ns) + "}";
  }
  // Additive since v1: rusage/hw-counter accounting (obs/resource.hpp).
  out += "},\"resources\":" + resources_json() + "}";
  return out;
}

}  // namespace socet::obs
