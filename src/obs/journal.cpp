#include "socet/obs/journal.hpp"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "socet/obs/report.hpp"
#include "socet/obs/timer.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <csignal>
#include <unistd.h>
#define SOCET_JOURNAL_HAS_SIGNALS 1
#else
#define SOCET_JOURNAL_HAS_SIGNALS 0
#endif

namespace socet::obs {

namespace {

constexpr std::size_t kMaxThreads = 256;    ///< crash-visible thread slots
constexpr std::size_t kMaxSpanDepth = 32;   ///< active-span stack per thread
constexpr std::size_t kCorrBytes = 48;      ///< correlation id storage
constexpr std::size_t kSlotText = 512;      ///< flight-recorder line storage
constexpr std::size_t kMinFlight = 16;
constexpr std::size_t kMaxFlight = 65536;

std::atomic<bool> g_enabled{false};
std::atomic<bool> g_memory{false};
std::atomic<bool> g_flight{false};
std::atomic<bool> g_tap{false};

/// The installed tap.  Swapped under a mutex; callers copy the
/// shared_ptr so an uninstall never destroys a function mid-call.
std::mutex& tap_mutex() {
  static std::mutex mutex;
  return mutex;
}
std::shared_ptr<const JournalTapFn>& tap_fn() {
  static std::shared_ptr<const JournalTapFn> fn;
  return fn;
}
std::atomic<std::uint64_t> g_seq{0};
std::atomic<std::uint64_t> g_epoch_ns{0};

/// Per-thread journal state.  Lives in a fixed static pool (not on the
/// heap, not thread_local) so the fatal-signal handler can walk every
/// thread's active spans with nothing but atomic loads.  The owning
/// thread is the only writer of `spans`/`corr`/`lines`; `span_depth`
/// publishes the stack to the crash handler.
struct ThreadSlot {
  std::atomic<bool> in_use{false};
  std::uint32_t tid = 0;
  std::atomic<std::uint32_t> span_depth{0};
  const char* spans[kMaxSpanDepth] = {};  ///< static-storage span names
  char corr[kCorrBytes] = {};
  std::vector<std::pair<std::uint64_t, std::string>> lines;  ///< memory sink
};

ThreadSlot g_slots[kMaxThreads];

/// One pre-rendered line of the flight-recorder ring.  `published`
/// holds seq+1 once `text` is complete (0 = empty/in flight), so the
/// dumper can skip torn slots.
struct FlightSlot {
  std::atomic<std::uint64_t> published{0};
  char text[kSlotText] = {};
};

// Allocated once on first journal_start_flight and never freed: the
// crash handler must be able to rely on the pointer staying valid.
std::atomic<FlightSlot*> g_ring{nullptr};
std::atomic<std::size_t> g_ring_capacity{0};

/// Merge point for memory-sink lines of exited threads, plus the tid
/// counter shared by both sinks.
struct JournalSink {
  std::mutex mutex;
  std::uint32_t next_tid = 1;
  std::vector<std::pair<std::uint64_t, std::string>> retired;

  static JournalSink& instance() {
    static JournalSink sink;
    return sink;
  }
};

/// Claims a pool slot on first use; retires buffered lines and frees
/// the slot when the thread exits.
struct SlotHolder {
  ThreadSlot* slot = nullptr;

  SlotHolder() {
    JournalSink& sink = JournalSink::instance();
    std::lock_guard<std::mutex> lock(sink.mutex);
    for (std::size_t i = 0; i < kMaxThreads; ++i) {
      if (!g_slots[i].in_use.load(std::memory_order_relaxed)) {
        slot = &g_slots[i];
        slot->tid = sink.next_tid++;
        slot->span_depth.store(0, std::memory_order_relaxed);
        slot->corr[0] = '\0';
        slot->in_use.store(true, std::memory_order_release);
        break;
      }
    }
    // Pool exhausted (> kMaxThreads concurrently journaling threads):
    // this thread records nothing rather than blocking or crashing.
  }

  ~SlotHolder() {
    if (slot == nullptr) return;
    JournalSink& sink = JournalSink::instance();
    std::lock_guard<std::mutex> lock(sink.mutex);
    sink.retired.insert(sink.retired.end(),
                        std::make_move_iterator(slot->lines.begin()),
                        std::make_move_iterator(slot->lines.end()));
    slot->lines.clear();
    slot->span_depth.store(0, std::memory_order_relaxed);
    slot->corr[0] = '\0';
    slot->in_use.store(false, std::memory_order_release);
  }
};

ThreadSlot* local_slot() {
  thread_local SlotHolder holder;
  return holder.slot;
}

// --- async-signal-safe output helpers (write(2) only) -----------------

#if SOCET_JOURNAL_HAS_SIGNALS

void safe_write(int fd, const char* data, std::size_t size) {
  while (size > 0) {
    const ssize_t n = ::write(fd, data, size);
    if (n <= 0) return;
    data += n;
    size -= static_cast<std::size_t>(n);
  }
}

void safe_write_str(int fd, const char* text) {
  safe_write(fd, text, std::strlen(text));
}

void safe_write_u64(int fd, std::uint64_t value) {
  char buf[24];
  char* p = buf + sizeof(buf);
  do {
    *--p = static_cast<char>('0' + value % 10);
    value /= 10;
  } while (value > 0);
  safe_write(fd, p, static_cast<std::size_t>(buf + sizeof(buf) - p));
}

/// Write `text` as the body of a JSON string: quotes, backslashes and
/// control bytes are replaced with '?'.  (Real escaping allocates;
/// the sanitized form is enough for span names and job ids.)
void safe_write_json_body(int fd, const char* text) {
  char buf[kSlotText];
  std::size_t n = 0;
  for (; text[n] != '\0' && n < sizeof(buf); ++n) {
    const char c = text[n];
    buf[n] = (c == '"' || c == '\\' || static_cast<unsigned char>(c) < 0x20)
                 ? '?'
                 : c;
  }
  safe_write(fd, buf, n);
}

#endif  // SOCET_JOURNAL_HAS_SIGNALS

#if SOCET_JOURNAL_HAS_SIGNALS

constexpr int kFatalSignals[] = {SIGSEGV, SIGABRT, SIGBUS, SIGFPE, SIGILL};

std::atomic<bool> g_handler_installed{false};
std::atomic<int> g_crash_entered{0};

void crash_handler(int sig) {
  // First thread in dumps; any concurrent crasher goes straight to the
  // default disposition.
  if (g_crash_entered.exchange(1) == 0) {
    safe_write_str(STDERR_FILENO,
                   "\n=== socet flight recorder (fatal signal ");
    safe_write_u64(STDERR_FILENO, static_cast<std::uint64_t>(sig));
    safe_write_str(STDERR_FILENO, ") ===\n");
    journal_dump_flight(STDERR_FILENO);
    safe_write_str(STDERR_FILENO, "=== end flight recorder ===\n");
  }
  ::signal(sig, SIG_DFL);
  ::raise(sig);
}

void install_crash_handler_once() {
  if (g_handler_installed.exchange(true)) return;
  struct sigaction action;
  std::memset(&action, 0, sizeof(action));
  action.sa_handler = crash_handler;
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;
  for (int sig : kFatalSignals) sigaction(sig, &action, nullptr);
}

#else

void install_crash_handler_once() {}

#endif  // SOCET_JOURNAL_HAS_SIGNALS

}  // namespace

bool journal_enabled() {
  return g_enabled.load(std::memory_order_relaxed) ||
         g_tap.load(std::memory_order_relaxed);
}

std::uint64_t journal_event_count() {
  return g_seq.load(std::memory_order_relaxed);
}

void journal_start_memory() {
  std::uint64_t expected = 0;
  g_epoch_ns.compare_exchange_strong(expected, now_ns(),
                                     std::memory_order_relaxed);
  g_memory.store(true, std::memory_order_relaxed);
  g_enabled.store(true, std::memory_order_release);
}

void journal_start_flight(std::size_t capacity, bool install_crash_handler) {
  std::uint64_t expected = 0;
  g_epoch_ns.compare_exchange_strong(expected, now_ns(),
                                     std::memory_order_relaxed);
  capacity = std::max(kMinFlight, std::min(kMaxFlight, capacity));
  if (g_ring.load(std::memory_order_acquire) == nullptr) {
    // Leaked deliberately: the crash handler may run at any point
    // after this, including during static destruction.
    FlightSlot* ring = new FlightSlot[capacity];
    g_ring_capacity.store(capacity, std::memory_order_relaxed);
    g_ring.store(ring, std::memory_order_release);
  }
  if (install_crash_handler) install_crash_handler_once();
  g_flight.store(true, std::memory_order_relaxed);
  g_enabled.store(true, std::memory_order_release);
}

void journal_set_tap(JournalTapFn fn) {
  const bool active = static_cast<bool>(fn);
  if (active) {
    std::uint64_t expected = 0;
    g_epoch_ns.compare_exchange_strong(expected, now_ns(),
                                       std::memory_order_relaxed);
  }
  {
    std::lock_guard<std::mutex> lock(tap_mutex());
    tap_fn() = active ? std::make_shared<const JournalTapFn>(std::move(fn))
                      : nullptr;
  }
  g_tap.store(active, std::memory_order_release);
}

void journal_stop() {
  g_enabled.store(false, std::memory_order_release);
}

void journal_reset() {
  g_enabled.store(false, std::memory_order_release);
  g_memory.store(false, std::memory_order_relaxed);
  g_flight.store(false, std::memory_order_relaxed);
  journal_set_tap({});
  JournalSink& sink = JournalSink::instance();
  std::lock_guard<std::mutex> lock(sink.mutex);
  sink.retired.clear();
  for (ThreadSlot& slot : g_slots) {
    if (slot.in_use.load(std::memory_order_acquire)) slot.lines.clear();
  }
  FlightSlot* ring = g_ring.load(std::memory_order_acquire);
  if (ring != nullptr) {
    const std::size_t capacity = g_ring_capacity.load(std::memory_order_relaxed);
    for (std::size_t i = 0; i < capacity; ++i) {
      ring[i].published.store(0, std::memory_order_relaxed);
      ring[i].text[0] = '\0';
    }
  }
  g_seq.store(0, std::memory_order_relaxed);
  g_epoch_ns.store(0, std::memory_order_relaxed);
}

// --- field rendering --------------------------------------------------

JournalField::JournalField(const char* key, const char* value)
    : key_(key), json_('"' + json_escape(value) + '"') {}
JournalField::JournalField(const char* key, const std::string& value)
    : key_(key), json_('"' + json_escape(value) + '"') {}
JournalField::JournalField(const char* key, bool value)
    : key_(key), json_(value ? "true" : "false") {}
JournalField::JournalField(const char* key, double value)
    : key_(key), json_(json_number(value)) {}
JournalField::JournalField(const char* key, int value)
    : key_(key), json_(std::to_string(value)) {}
JournalField::JournalField(const char* key, long value)
    : key_(key), json_(std::to_string(value)) {}
JournalField::JournalField(const char* key, long long value)
    : key_(key), json_(std::to_string(value)) {}
JournalField::JournalField(const char* key, unsigned value)
    : key_(key), json_(std::to_string(value)) {}
JournalField::JournalField(const char* key, unsigned long value)
    : key_(key), json_(std::to_string(value)) {}
JournalField::JournalField(const char* key, unsigned long long value)
    : key_(key), json_(std::to_string(value)) {}

void journal_event(const char* type,
                   std::initializer_list<JournalField> fields) {
  if (!journal_enabled()) return;
  ThreadSlot* slot = local_slot();
  if (slot == nullptr) return;

  const std::uint64_t seq = g_seq.fetch_add(1, std::memory_order_relaxed);
  const double ts_us =
      static_cast<double>(now_ns() -
                          g_epoch_ns.load(std::memory_order_relaxed)) /
      1e3;

  std::string line;
  line.reserve(192);
  line += "{\"seq\":";
  line += std::to_string(seq);
  line += ",\"ts_us\":";
  line += json_number(ts_us);
  line += ",\"tid\":";
  line += std::to_string(slot->tid);
  if (slot->corr[0] != '\0') {
    line += ",\"corr\":\"";
    line += json_escape(slot->corr);
    line += '"';
  }
  const std::uint32_t depth =
      slot->span_depth.load(std::memory_order_relaxed);
  if (depth > 0 && depth <= kMaxSpanDepth) {
    line += ",\"span\":\"";
    line += json_escape(slot->spans[depth - 1]);
    line += '"';
  }
  line += ",\"type\":\"";
  line += json_escape(type);
  line += '"';
  for (const JournalField& field : fields) {
    line += ",\"";
    line += json_escape(field.key());
    line += "\":";
    line += field.json();
  }
  line += '}';

  if (g_memory.load(std::memory_order_relaxed)) {
    slot->lines.emplace_back(seq, line);
  }
  FlightSlot* ring = g_ring.load(std::memory_order_acquire);
  if (g_flight.load(std::memory_order_relaxed) && ring != nullptr) {
    const std::size_t capacity =
        g_ring_capacity.load(std::memory_order_relaxed);
    FlightSlot& out = ring[seq % capacity];
    out.published.store(0, std::memory_order_relaxed);
    const std::size_t n = std::min(line.size(), kSlotText - 1);
    std::memcpy(out.text, line.data(), n);
    out.text[n] = '\0';
    out.published.store(seq + 1, std::memory_order_release);
  }
  if (g_tap.load(std::memory_order_acquire)) {
    std::shared_ptr<const JournalTapFn> fn;
    {
      std::lock_guard<std::mutex> lock(tap_mutex());
      fn = tap_fn();
    }
    if (fn != nullptr) (*fn)(type, slot->corr, line);
  }
}

std::string journal_jsonl() {
  JournalSink& sink = JournalSink::instance();
  std::vector<std::pair<std::uint64_t, std::string>> lines;
  {
    std::lock_guard<std::mutex> lock(sink.mutex);
    lines = sink.retired;
    for (const ThreadSlot& slot : g_slots) {
      if (!slot.in_use.load(std::memory_order_acquire)) continue;
      lines.insert(lines.end(), slot.lines.begin(), slot.lines.end());
    }
  }
  std::sort(lines.begin(), lines.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::string out = "{\"schema\":\"socet-journal-v1\",\"events\":" +
                    std::to_string(lines.size()) + "}\n";
  for (const auto& [seq, line] : lines) {
    out += line;
    out += '\n';
  }
  return out;
}

void journal_dump_flight(int fd) {
#if SOCET_JOURNAL_HAS_SIGNALS
  safe_write_str(fd, "{\"schema\":\"socet-journal-v1\",\"kind\":\"flight\"}\n");
  FlightSlot* ring = g_ring.load(std::memory_order_acquire);
  const std::size_t capacity = g_ring_capacity.load(std::memory_order_relaxed);
  if (ring != nullptr && capacity > 0) {
    const std::uint64_t head = g_seq.load(std::memory_order_acquire);
    const std::uint64_t lo = head > capacity ? head - capacity : 0;
    for (std::uint64_t seq = lo; seq < head; ++seq) {
      FlightSlot& slot = ring[seq % capacity];
      if (slot.published.load(std::memory_order_acquire) != seq + 1) continue;
      safe_write(fd, slot.text,
                 std::min(std::strlen(slot.text), kSlotText - 1));
      safe_write(fd, "\n", 1);
    }
  }
  // Active span stacks: what every journaling thread was doing.
  for (ThreadSlot& slot : g_slots) {
    if (!slot.in_use.load(std::memory_order_acquire)) continue;
    std::uint32_t depth = slot.span_depth.load(std::memory_order_acquire);
    if (depth > kMaxSpanDepth) depth = kMaxSpanDepth;
    safe_write_str(fd, "{\"type\":\"crash/active_spans\",\"tid\":");
    safe_write_u64(fd, slot.tid);
    if (slot.corr[0] != '\0') {
      safe_write_str(fd, ",\"corr\":\"");
      safe_write_json_body(fd, slot.corr);
      safe_write_str(fd, "\"");
    }
    safe_write_str(fd, ",\"spans\":[");
    for (std::uint32_t i = 0; i < depth; ++i) {
      if (i > 0) safe_write_str(fd, ",");
      safe_write_str(fd, "\"");
      safe_write_json_body(fd, slot.spans[i]);
      safe_write_str(fd, "\"");
    }
    safe_write_str(fd, "]}\n");
  }
#else
  (void)fd;
#endif
}

JournalScope::JournalScope(const std::string& id) {
  if (!journal_enabled()) return;
  ThreadSlot* slot = local_slot();
  if (slot == nullptr) return;
  active_ = true;
  previous_ = slot->corr;
  const std::size_t n = std::min(id.size(), kCorrBytes - 1);
  std::memcpy(slot->corr, id.data(), n);
  slot->corr[n] = '\0';
}

JournalScope::~JournalScope() {
  if (!active_) return;
  ThreadSlot* slot = local_slot();
  if (slot == nullptr) return;
  const std::size_t n = std::min(previous_.size(), kCorrBytes - 1);
  std::memcpy(slot->corr, previous_.data(), n);
  slot->corr[n] = '\0';
}

namespace detail {

void journal_push_span(const char* name) {
  ThreadSlot* slot = local_slot();
  if (slot == nullptr) return;
  const std::uint32_t depth =
      slot->span_depth.load(std::memory_order_relaxed);
  if (depth < kMaxSpanDepth) slot->spans[depth] = name;
  slot->span_depth.store(depth + 1, std::memory_order_release);
}

void journal_pop_span() {
  ThreadSlot* slot = local_slot();
  if (slot == nullptr) return;
  const std::uint32_t depth =
      slot->span_depth.load(std::memory_order_relaxed);
  if (depth > 0) slot->span_depth.store(depth - 1, std::memory_order_release);
}

}  // namespace detail

}  // namespace socet::obs
