#include "socet/obs/jsonin.hpp"

#include <cctype>
#include <cstdlib>

namespace socet::obs {

namespace {

class Parser {
 public:
  Parser(std::string_view text, std::string* error)
      : text_(text), error_(error) {}

  bool parse_document(JsonValue* out) {
    skip_ws();
    if (!parse_value(out)) return false;
    skip_ws();
    if (pos_ != text_.size()) return fail("trailing garbage");
    return true;
  }

 private:
  // Containers recurse through parse_value; a hostile input of 100k
  // '[' characters would otherwise turn into 100k stack frames.
  static constexpr int kMaxDepth = 96;

  bool parse_value(JsonValue* out) {
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    switch (text_[pos_]) {
      case '{':
        if (depth_ >= kMaxDepth) return fail("nesting too deep");
        return parse_object(out);
      case '[':
        if (depth_ >= kMaxDepth) return fail("nesting too deep");
        return parse_array(out);
      case '"':
        out->kind = JsonValue::Kind::kString;
        return parse_string(&out->string_value);
      case 't':
        out->kind = JsonValue::Kind::kBool;
        out->bool_value = true;
        return expect_word("true");
      case 'f':
        out->kind = JsonValue::Kind::kBool;
        out->bool_value = false;
        return expect_word("false");
      case 'n':
        out->kind = JsonValue::Kind::kNull;
        return expect_word("null");
      default:
        return parse_number(out);
    }
  }

  bool parse_object(JsonValue* out) {
    out->kind = JsonValue::Kind::kObject;
    ++depth_;
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      --depth_;
      return true;
    }
    while (true) {
      skip_ws();
      if (peek() != '"') return fail("expected object key");
      std::string key;
      if (!parse_string(&key)) return false;
      skip_ws();
      if (peek() != ':') return fail("expected ':'");
      ++pos_;
      skip_ws();
      JsonValue value;
      if (!parse_value(&value)) return false;
      out->object_value.emplace_back(std::move(key), std::move(value));
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') {
        ++pos_;
        --depth_;
        return true;
      }
      return fail("expected ',' or '}'");
    }
  }

  bool parse_array(JsonValue* out) {
    out->kind = JsonValue::Kind::kArray;
    ++depth_;
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      --depth_;
      return true;
    }
    while (true) {
      skip_ws();
      JsonValue value;
      if (!parse_value(&value)) return false;
      out->array_value.push_back(std::move(value));
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') {
        ++pos_;
        --depth_;
        return true;
      }
      return fail("expected ',' or ']'");
    }
  }

  bool parse_string(std::string* out) {
    ++pos_;  // opening quote
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return fail("dangling escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return fail("bad \\u escape");
          }
          // Our emitter only writes \u00XX for control bytes; encode the
          // general case as UTF-8 anyway.
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (code >> 12)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return fail("unknown escape");
      }
    }
    return fail("unterminated string");
  }

  bool parse_number(JsonValue* out) {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return fail("expected a value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') return fail("bad number");
    out->kind = JsonValue::Kind::kNumber;
    out->number_value = value;
    return true;
  }

  bool expect_word(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return fail("bad literal");
    pos_ += word.size();
    return true;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  [[nodiscard]] char peek() const {
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  bool fail(const char* what) {
    if (error_ != nullptr) {
      *error_ = std::string(what) + " at byte " + std::to_string(pos_);
    }
    return false;
  }

  std::string_view text_;
  std::string* error_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

bool json_parse(std::string_view text, JsonValue* out, std::string* error) {
  *out = JsonValue();
  return Parser(text, error).parse_document(out);
}

}  // namespace socet::obs
